package maprat

import (
	"fmt"
	"time"
)

// DatasetInfo describes one mounted dataset for monitoring (/statsz)
// and the snap CLI: where it came from and what opening it cost.
type DatasetInfo struct {
	// Name is the mount name requests select the dataset by.
	Name string
	// Source is how the dataset was opened: "snapshot", "text" or
	// "generated".
	Source string
	// Path is the snapshot file or data directory ("" for generated).
	Path string
	// FileSize is the snapshot file's size in bytes (0 when not file-backed).
	FileSize int64
	// OpenDuration is the wall time from bytes to a ready engine.
	OpenDuration time.Duration
}

// Mount pairs a mounted miner with its dataset identity. The field keeps
// the name Engine from the single-node era, but any Miner mounts — a
// coordinator mount serves the same surface as a local engine.
type Mount struct {
	Name   string
	Engine Miner
	Info   DatasetInfo
}

// Registry is an ordered set of mounted datasets served by one process.
// The first mount is the default — requests that name no dataset get it,
// which keeps a single-dataset server's behaviour unchanged. A Registry
// is built once at startup and read-only afterwards, so lookups need no
// locking on the request path.
type Registry struct {
	mounts []*Mount
	byName map[string]*Mount
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Mount)}
}

// NewSingleRegistry wraps one engine as the sole (default) mount — the
// compatibility construction for servers that predate multi-dataset
// serving.
func NewSingleRegistry(name string, eng Miner, info DatasetInfo) *Registry {
	r := NewRegistry()
	if err := r.Add(name, eng, info); err != nil {
		// Only a duplicate name can fail, impossible with one mount.
		panic(err)
	}
	return r
}

// Add mounts a miner under a name. Names are case-sensitive and must
// be unique; the first Add becomes the default dataset.
func (r *Registry) Add(name string, eng Miner, info DatasetInfo) error {
	if name == "" {
		return fmt.Errorf("maprat: empty dataset name")
	}
	if eng == nil {
		return fmt.Errorf("maprat: nil engine for dataset %q", name)
	}
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("maprat: dataset %q mounted twice", name)
	}
	info.Name = name
	m := &Mount{Name: name, Engine: eng, Info: info}
	r.mounts = append(r.mounts, m)
	r.byName[name] = m
	return nil
}

// Default returns the first mount, or nil for an empty registry.
func (r *Registry) Default() *Mount {
	if len(r.mounts) == 0 {
		return nil
	}
	return r.mounts[0]
}

// Lookup resolves a request's dataset name; "" selects the default.
func (r *Registry) Lookup(name string) (*Mount, bool) {
	if name == "" {
		m := r.Default()
		return m, m != nil
	}
	m, ok := r.byName[name]
	return m, ok
}

// Names returns the mount names in mount order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.mounts))
	for i, m := range r.mounts {
		out[i] = m.Name
	}
	return out
}

// Mounts returns the mounts in mount order. The slice is shared; treat
// it as read-only.
func (r *Registry) Mounts() []*Mount { return r.mounts }

// Len returns the number of mounted datasets.
func (r *Registry) Len() int { return len(r.mounts) }

// Close closes every mounted engine, returning the first error.
func (r *Registry) Close() error {
	var first error
	for _, m := range r.mounts {
		if err := m.Engine.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
