package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/server"
)

var (
	tsOnce sync.Once
	tsMemo *httptest.Server
)

// testServer mounts the full MapRat server (HTML + v1 + jobs) over one
// shared small engine.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	tsOnce.Do(func() {
		ds, err := maprat.Generate(maprat.SmallGenConfig())
		if err != nil {
			panic(err)
		}
		eng, err := maprat.Open(ds, nil)
		if err != nil {
			panic(err)
		}
		tsMemo = httptest.NewServer(server.New(eng))
	})
	return tsMemo
}

func testClient(t *testing.T, opts ...Option) *Client {
	t.Helper()
	c, err := New(testServer(t).URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func intp(v int) *int { return &v }

func TestNewValidatesBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "/just/a/path"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	c, err := New("http://example.test:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.url("/api/v1/browse"); got != "http://example.test:8080/api/v1/browse" {
		t.Fatalf("url joined to %q", got)
	}
}

func TestSyncRoundTrips(t *testing.T) {
	c := testClient(t)
	ctx := context.Background()
	q := `movie:"Toy Story"`

	ex, err := c.Explain(ctx, Params{Q: q, K: intp(2)})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.NumRatings == 0 || len(ex.Tasks) != 2 {
		t.Fatalf("explain payload: %+v", ex)
	}
	key := ex.Tasks[0].Groups[0].Key

	g, err := c.Group(ctx, Params{Q: q, Key: key})
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if g.Group.Key != key || g.Group.Count == 0 {
		t.Fatalf("group payload: %+v", g.Group)
	}

	if _, err := c.Refine(ctx, Params{Q: q, Key: key}); err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if _, err := c.Drill(ctx, Params{Q: q, Key: key, K: intp(2)}); err != nil {
		t.Fatalf("Drill: %v", err)
	}

	from, to := 1999, 2000
	ev, err := c.Evolution(ctx, Params{Q: q, From: &from, To: &to, Tasks: []string{"sm"}})
	if err != nil {
		t.Fatalf("Evolution: %v", err)
	}
	if len(ev.Points) == 0 {
		t.Fatal("evolution returned no points")
	}

	b, err := c.Browse(ctx)
	if err != nil {
		t.Fatalf("Browse: %v", err)
	}
	if len(b.States) == 0 {
		t.Fatal("browse returned no states")
	}

	batch, err := c.Batch(ctx, []Params{{Q: q, K: intp(2)}, {Q: `movie:"No Such Film Exists"`}})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(batch.Results) != 2 || batch.Results[0].Explain == nil || batch.Results[1].Error == nil {
		t.Fatalf("batch payload: %+v", batch.Results)
	}
}

func TestAPIErrorDecoding(t *testing.T) {
	c := testClient(t)
	_, err := c.Explain(context.Background(), Params{Q: ""})
	var ae *APIError
	if !asAPIError(err, &ae) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if ae.Status != http.StatusBadRequest || ae.Code != "bad_request" || ae.Message == "" {
		t.Fatalf("api error: %+v", ae)
	}
	if ae.Temporary() {
		t.Fatal("bad_request must not be retried")
	}
}

func asAPIError(err error, out **APIError) bool {
	for ; err != nil; err = unwrap(err) {
		if ae, ok := err.(*APIError); ok {
			*out = ae
			return true
		}
	}
	return false
}

func asJobFailed(err error, out **JobFailedError) bool {
	for ; err != nil; err = unwrap(err) {
		if je, ok := err.(*JobFailedError); ok {
			*out = je
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// TestJobSubmitWaitStream drives the full async lifecycle through the
// SDK: submit, stream progress over SSE, and compare the job's result
// with the synchronous endpoint.
func TestJobSubmitWaitStream(t *testing.T) {
	c := testClient(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Knobs no other test uses, so the solver runs and emits progress.
	p := Params{Q: `genre:Drama`, K: intp(2), Seed: int64p(77), Restarts: intp(18)}
	job, err := c.SubmitJob(ctx, "explain", p)
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if job.ID == "" {
		t.Fatalf("submit status: %+v", job)
	}

	var progress int
	st, err := c.StreamJob(ctx, job.ID, func(ev JobEvent) error {
		if pr := ev.Progress(); pr != nil {
			progress++
			if pr.Total != 18 {
				t.Errorf("progress total = %d, want 18", pr.Total)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("StreamJob: %v", err)
	}
	if st.State != "done" || len(st.Result) == 0 {
		t.Fatalf("terminal status: %+v", st)
	}
	if progress < 1 {
		t.Fatal("stream delivered no progress events")
	}

	var jobEx ExplainResponse
	if err := json.Unmarshal(st.Result, &jobEx); err != nil {
		t.Fatalf("result decode: %v", err)
	}
	syncEx, err := c.Explain(ctx, p)
	if err != nil {
		t.Fatalf("sync Explain: %v", err)
	}
	jobEx.ElapsedMS, syncEx.ElapsedMS = 0, 0
	jobEx.FromCache, syncEx.FromCache = false, false
	a, _ := json.Marshal(&jobEx)
	b, _ := json.Marshal(syncEx)
	if string(a) != string(b) {
		t.Errorf("job result diverges from sync explain:\njob:  %s\nsync: %s", a, b)
	}

	// WaitJob on an already-terminal job returns immediately.
	st2, err := c.WaitJob(ctx, job.ID)
	if err != nil || st2.State != "done" {
		t.Fatalf("WaitJob: %v %+v", err, st2)
	}

	// Canceling a terminal job is an idempotent no-op.
	st3, err := c.CancelJob(ctx, job.ID)
	if err != nil || st3.State != "done" {
		t.Fatalf("CancelJob on terminal job: %v %+v", err, st3)
	}
}

func int64p(v int64) *int64 { return &v }

func TestGetJobNotFound(t *testing.T) {
	c := testClient(t)
	_, err := c.GetJob(context.Background(), "job-424242")
	var ae *APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusNotFound || ae.Code != "job_not_found" {
		t.Fatalf("got %v, want 404 job_not_found", err)
	}
}

// TestRetryBackoff pins the retry loop: transient statuses are retried
// within the budget, and the server's Retry-After hint is honored.
func TestRetryBackoff(t *testing.T) {
	var mu sync.Mutex
	fails := 2
	hits := 0
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		hits++
		if hits <= fails {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"queue_full","message":"full"}}`))
			return
		}
		w.Write([]byte(`{"id":"job-000001","op":"explain","state":"queued","created":"2026-01-01T00:00:00Z"}`))
	}))
	defer fake.Close()

	c, err := New(fake.URL, WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.SubmitJob(context.Background(), "explain", Params{Q: "x"})
	if err != nil {
		t.Fatalf("retries exhausted: %v", err)
	}
	if st.ID != "job-000001" || hits != 3 {
		t.Fatalf("status %+v after %d hits", st, hits)
	}

	// With the budget too small, the terminal failure surfaces.
	mu.Lock()
	hits, fails = 0, 99
	mu.Unlock()
	c2, _ := New(fake.URL, WithRetry(2, time.Millisecond))
	_, err = c2.SubmitJob(context.Background(), "explain", Params{Q: "x"})
	var ae *APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("got %v, want 429 after retries", err)
	}
	mu.Lock()
	if hits != 2 {
		t.Fatalf("hits = %d, want exactly the retry budget", hits)
	}
	mu.Unlock()
}

// TestJitterBounds pins the jitter contract the backoff math relies on:
// zero max draws zero, and every draw stays inside [0, max).
func TestJitterBounds(t *testing.T) {
	if got := randJitter(0); got != 0 {
		t.Errorf("randJitter(0) = %v, want 0", got)
	}
	if got := randJitter(-time.Second); got != 0 {
		t.Errorf("randJitter(-1s) = %v, want 0", got)
	}
	const max = 100 * time.Millisecond
	for i := 0; i < 256; i++ {
		if got := randJitter(max); got < 0 || got >= max {
			t.Fatalf("randJitter(%v) = %v, outside [0, max)", max, got)
		}
	}
}

// TestSleepHonorsContext: the retry backoff must select on ctx, not
// block through it — a canceled caller is released immediately.
func TestSleepHonorsContext(t *testing.T) {
	c, err := New("http://example.test", WithRetry(3, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := c.sleep(ctx, nil, 1); err != context.DeadlineExceeded {
		t.Fatalf("sleep returned %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("canceled sleep blocked for %v", d)
	}
}

// TestSleepJittersBackoffAndRetryAfter pins the two jitter shapes:
// exponential backoff draws from [d/2, d), a Retry-After hint is only
// ever stretched upward (never served early), by at most 25%.
func TestSleepJittersBackoffAndRetryAfter(t *testing.T) {
	c, err := New("http://example.test", WithRetry(3, 80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var draws []time.Duration
	c.jitter = func(max time.Duration) time.Duration {
		draws = append(draws, max)
		return max - 1 // worst case: the largest admissible draw
	}

	// Plain exponential backoff: attempt 1 waits within [base/2, base).
	start := time.Now()
	if err := c.sleep(context.Background(), nil, 1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("backoff slept %v, want >= base/2", d)
	}
	if len(draws) != 1 || draws[0] != 40*time.Millisecond {
		t.Fatalf("backoff jitter draws = %v, want [base/2]", draws)
	}

	// Retry-After overrides the computed backoff and jitters upward.
	draws = nil
	hint := &APIError{Status: http.StatusTooManyRequests, RetryAfter: 40 * time.Millisecond}
	start = time.Now()
	if err := c.sleep(context.Background(), hint, 1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("Retry-After slept %v, retried before the server asked", d)
	}
	if len(draws) != 1 || draws[0] != 10*time.Millisecond {
		t.Fatalf("Retry-After jitter draws = %v, want [hint/4]", draws)
	}
}

// TestWaitJobRidesOut429 pins the admission-control contract: a 429
// from the status poll is not a wait failure — the server's Retry-After
// becomes the next poll delay and the wait continues to the terminal
// state.
func TestWaitJobRidesOut429(t *testing.T) {
	var mu sync.Mutex
	polls := 0
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		polls++
		w.Header().Set("Content-Type", "application/json")
		if polls <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"queue_full","message":"busy"}}`))
			return
		}
		w.Write([]byte(`{"id":"job-000007","op":"explain","state":"done","created":"2026-01-01T00:00:00Z"}`))
	}))
	defer fake.Close()

	// WithRetry(1, 0) turns off do()'s own retries, so WaitJob's loop is
	// the only thing keeping the poll alive.
	c, err := New(fake.URL, WithRetry(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	st, err := c.WaitJob(ctx, "job-000007")
	if err != nil {
		t.Fatalf("WaitJob failed on 429: %v", err)
	}
	if st.State != "done" {
		t.Fatalf("state = %q, want done", st.State)
	}
	// Two 429s each carrying Retry-After: 1 → at least ~2s of hint-driven
	// delay before the third poll succeeds.
	if d := time.Since(start); d < 2*time.Second {
		t.Errorf("wait finished in %v; Retry-After hints were not honored", d)
	}
	mu.Lock()
	if polls != 3 {
		t.Errorf("polled %d times, want 3", polls)
	}
	mu.Unlock()
}

// TestWaitJobReturnsTypedFailure: a job that terminates in "failed"
// surfaces both the terminal status and a *JobFailedError carrying the
// envelope code.
func TestWaitJobReturnsTypedFailure(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"job-000008","op":"explain","state":"failed","created":"2026-01-01T00:00:00Z","error":{"code":"bad_query","message":"unknown field"}}`))
	}))
	defer fake.Close()

	c, err := New(fake.URL, WithRetry(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitJob(context.Background(), "job-000008")
	if st == nil || st.State != "failed" {
		t.Fatalf("terminal status = %+v, want the failed snapshot alongside the error", st)
	}
	var jfe *JobFailedError
	if !asJobFailed(err, &jfe) {
		t.Fatalf("WaitJob returned %v, want *JobFailedError", err)
	}
	if jfe.ID != "job-000008" || string(jfe.Code) != "bad_query" || jfe.Message != "unknown field" {
		t.Errorf("JobFailedError = %+v, envelope fields not carried over", jfe)
	}
}

// TestStreamJobReturnsTypedFailure: the SSE path classifies a failed
// terminal event the same way WaitJob does.
func TestStreamJobReturnsTypedFailure(t *testing.T) {
	status := `{"id":"job-000009","op":"explain","state":"failed","created":"2026-01-01T00:00:00Z","error":{"code":"internal","message":"solver blew up"}}`
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Accept") == "text/event-stream" {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Write([]byte("event: failed\ndata: " + status + "\n\n"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(status))
	}))
	defer fake.Close()

	c, err := New(fake.URL, WithRetry(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	var sawTerminal bool
	st, err := c.StreamJob(context.Background(), "job-000009", func(ev JobEvent) error {
		if ev.Terminal() {
			sawTerminal = true
		}
		return nil
	})
	if !sawTerminal {
		t.Error("terminal SSE event never reached the callback")
	}
	if st == nil || st.State != "failed" {
		t.Fatalf("terminal status = %+v, want the failed snapshot alongside the error", st)
	}
	var jfe *JobFailedError
	if !asJobFailed(err, &jfe) {
		t.Fatalf("StreamJob returned %v, want *JobFailedError", err)
	}
	if string(jfe.Code) != "internal" || jfe.Message != "solver blew up" {
		t.Errorf("JobFailedError = %+v, envelope fields not carried over", jfe)
	}
}
