package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
)

// JobEvent is one Server-Sent Event from /api/v1/jobs/{id}/events.
type JobEvent struct {
	// Type is "state", "progress", or a terminal "done"/"failed"/
	// "canceled".
	Type string
	// Data is the raw JSON payload: a JobStatus for state and terminal
	// events, a JobProgress for progress events.
	Data json.RawMessage
}

// Progress decodes a progress event's payload (nil for other types).
func (ev JobEvent) Progress() *JobProgress {
	if ev.Type != "progress" {
		return nil
	}
	var p JobProgress
	if err := json.Unmarshal(ev.Data, &p); err != nil {
		return nil
	}
	return &p
}

// Status decodes a state/terminal event's payload (nil for progress).
func (ev JobEvent) Status() *JobStatus {
	if ev.Type == "progress" || ev.Type == "" {
		return nil
	}
	var st JobStatus
	if err := json.Unmarshal(ev.Data, &st); err != nil {
		return nil
	}
	return &st
}

// Terminal reports whether the event ends the stream.
func (ev JobEvent) Terminal() bool { return Terminal(ev.Type) }

// StreamJob consumes a job's SSE progress stream, invoking fn for every
// event until the terminal event arrives, the callback returns an error,
// or ctx ends. On a clean terminal event it then fetches and returns the
// full job status (with the result document) via GetJob. The stream
// itself is not retried — a caller that loses it mid-job falls back to
// WaitJob, which is what StreamJob does if the connection drops after
// the job was observed running. Like WaitJob, a job that terminates in
// the "failed" state returns its status and a *JobFailedError.
func (c *Client) StreamJob(ctx context.Context, id string, fn func(JobEvent) error) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.url("/api/v1/jobs/"+url.PathEscape(id)+"/events"), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiErrorFrom(resp)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return nil, fmt.Errorf("client: job events answered %q, want text/event-stream", ct)
	}

	terminal := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var ev JobEvent
	flush := func() error {
		if ev.Type == "" {
			ev = JobEvent{}
			return nil
		}
		e := ev
		ev = JobEvent{}
		if e.Terminal() {
			terminal = true
		}
		if fn != nil {
			return fn(e)
		}
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return nil, err
			}
			if terminal {
				st, err := c.GetJob(ctx, id)
				if err != nil {
					return nil, err
				}
				// Like WaitJob: a failed job surfaces as a typed error
				// alongside its terminal status.
				return st, failedJobError(st)
			}
		case strings.HasPrefix(line, "event:"):
			ev.Type = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			ev.Data = json.RawMessage(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
		// id: and comment lines are ignored.
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		// The connection dropped mid-stream; the job is still running
		// server-side, so fall back to polling.
		return c.WaitJob(ctx, id)
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// EOF without a terminal event (server shut the stream down): poll.
	return c.WaitJob(ctx, id)
}
