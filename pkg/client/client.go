// Package client is the Go SDK for a running MapRat server: typed calls
// for every synchronous /api/v1 endpoint, the asynchronous job surface
// (submit, poll, cancel, wait, stream progress over SSE), and
// retry-with-backoff around the transport. The wire types are shared
// with the server's transport package, so the SDK cannot drift from the
// contract it consumes.
//
// Typical use:
//
//	c, _ := client.New("http://localhost:8080")
//	ex, err := c.Explain(ctx, client.Params{Q: `movie:"Toy Story"`})
//
// and the async lifecycle:
//
//	job, _ := c.SubmitJob(ctx, "explain", client.Params{Q: ...})
//	st, _ := c.StreamJob(ctx, job.ID, func(ev client.JobEvent) error {
//	    log.Printf("%s %s", ev.Type, ev.Data)
//	    return nil
//	})
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
)

// The wire types, re-exported so SDK users need only this package.
type (
	// Params is the knob set shared by every mining endpoint.
	Params = api.Params
	// ErrorBody is the machine-readable failure a server answers with.
	ErrorBody = api.ErrorBody
	// ExplainResponse is the /api/v1/explain payload.
	ExplainResponse = api.ExplainResponse
	// GroupResponse is the /api/v1/group payload.
	GroupResponse = api.GroupResponse
	// RefinementsResponse is the /api/v1/refine payload.
	RefinementsResponse = api.RefinementsResponse
	// DrillResponse is the /api/v1/drill payload.
	DrillResponse = api.DrillResponse
	// EvolutionResponse is the /api/v1/evolution payload.
	EvolutionResponse = api.EvolutionResponse
	// BrowseResponse is the /api/v1/browse payload.
	BrowseResponse = api.BrowseResponse
	// BatchResponse is the /api/v1/batch payload.
	BatchResponse = api.BatchResponse
	// JobStatus is the job resource the async endpoints return.
	JobStatus = api.JobStatus
	// JobProgress is a job's latest restart progress.
	JobProgress = api.JobProgress
	// RatingInput is one rating of an append batch.
	RatingInput = api.RatingInput
	// AppendResponse is the /api/v1/ratings payload: the assigned epoch.
	AppendResponse = api.AppendResponse
)

// APIError is a structured failure from the server: the HTTP status plus
// the error envelope's code and message.
type APIError struct {
	Status  int
	Code    api.ErrorCode
	Message string
	// RetryAfter is the server's backoff hint on 429 (zero if absent).
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("maprat server: %d %s: %s", e.Status, e.Code, e.Message)
}

// Temporary reports whether retrying the identical request can succeed:
// admission-control rejections and gateway-class failures clear on their
// own; everything else needs a different request.
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests ||
		e.Status == http.StatusBadGateway ||
		e.Status == http.StatusServiceUnavailable ||
		e.Status == http.StatusGatewayTimeout
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry sets the retry budget: attempts is the total number of tries
// (1 disables retrying), base the first backoff delay (doubling per
// retry, capped at 10s). The server's Retry-After hint, when present,
// overrides the computed backoff.
func WithRetry(attempts int, base time.Duration) Option {
	return func(c *Client) { c.attempts, c.backoff = attempts, base }
}

// Client talks to one MapRat server.
type Client struct {
	base     *url.URL
	hc       *http.Client
	attempts int
	backoff  time.Duration
	// jitter draws a random duration from [0, max); tests substitute a
	// deterministic one.
	jitter func(max time.Duration) time.Duration
}

func randJitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(max)))
}

// New builds a client for a server base URL like "http://host:8080".
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	u.Path = strings.TrimRight(u.Path, "/")
	c := &Client{
		base:     u,
		hc:       &http.Client{},
		attempts: 3,
		backoff:  200 * time.Millisecond,
		jitter:   randJitter,
	}
	for _, o := range opts {
		o(c)
	}
	if c.attempts < 1 {
		c.attempts = 1
	}
	return c, nil
}

// do runs one HTTP call with retry+backoff and decodes a JSON success
// into out. Request bodies are byte slices, so every retry replays the
// identical payload. Retried failures: transport errors and Temporary
// API errors (429 honoring Retry-After, 502/503/504).
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, lastErr, attempt); err != nil {
				return err
			}
		}
		err := c.once(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		var ae *APIError
		if errors.As(err, &ae) && !ae.Temporary() {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// sleep waits out the backoff before retry #attempt, preferring the
// server's Retry-After hint when the last failure carried one. The wait
// always selects on ctx, so cancellation cuts it short. Both waits are
// jittered: the exponential backoff with equal jitter ([d/2, d)), the
// Retry-After hint upward by up to 25% — many synchronized callers (the
// coordinator's scatter-gather retries after a worker blip) otherwise
// all reach the recovering server on the same tick and knock it over
// again.
func (c *Client) sleep(ctx context.Context, lastErr error, attempt int) error {
	d := c.backoff << (attempt - 1)
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	var ae *APIError
	if errors.As(lastErr, &ae) && ae.RetryAfter > 0 {
		// Never retry before the server asked; spread the herd after it.
		d = ae.RetryAfter + c.jitter(ae.RetryAfter/4)
	} else if d > 0 {
		d = d/2 + c.jitter(d/2)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) url(path string) string { return c.base.String() + path }

func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return apiErrorFrom(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiErrorFrom reads an error response into an APIError, decoding the
// envelope when present and falling back to the raw body otherwise.
func apiErrorFrom(resp *http.Response) *APIError {
	ae := &APIError{Status: resp.StatusCode, Code: api.CodeInternal}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		ae.RetryAfter = time.Duration(secs) * time.Second
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
	} else {
		ae.Message = strings.TrimSpace(string(raw))
	}
	return ae
}

// post marshals p and POSTs it; every mining endpoint accepts the same
// JSON body it accepts as GET query parameters.
func (c *Client) post(ctx context.Context, path string, p any, out any) error {
	body, err := json.Marshal(p)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, body, out)
}

// Explain runs the full SM/DM mining pipeline.
func (c *Client) Explain(ctx context.Context, p Params) (*ExplainResponse, error) {
	var out ExplainResponse
	if err := c.post(ctx, "/api/v1/explain", p, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Group runs the per-group exploration (stats, related, refinements).
func (c *Client) Group(ctx context.Context, p Params) (*GroupResponse, error) {
	var out GroupResponse
	if err := c.post(ctx, "/api/v1/group", p, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Refine returns the drill-deeper refinements of a group.
func (c *Client) Refine(ctx context.Context, p Params) (*RefinementsResponse, error) {
	var out RefinementsResponse
	if err := c.post(ctx, "/api/v1/refine", p, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Drill mines city-anchored sub-groups inside a state group.
func (c *Client) Drill(ctx context.Context, p Params) (*DrillResponse, error) {
	var out DrillResponse
	if err := c.post(ctx, "/api/v1/drill", p, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Evolution runs the yearly time slider.
func (c *Client) Evolution(ctx context.Context, p Params) (*EvolutionResponse, error) {
	var out EvolutionResponse
	if err := c.post(ctx, "/api/v1/evolution", p, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Browse fetches the whole-log per-state choropleth.
func (c *Client) Browse(ctx context.Context) (*BrowseResponse, error) {
	var out BrowseResponse
	if err := c.do(ctx, http.MethodGet, "/api/v1/browse", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BrowseAt fetches the per-state choropleth pinned at an epoch (0 =
// latest): the payload is byte-identical no matter how many batches were
// appended after that epoch.
func (c *Client) BrowseAt(ctx context.Context, epoch uint64) (*BrowseResponse, error) {
	path := "/api/v1/browse"
	if epoch != 0 {
		path += "?epoch=" + strconv.FormatUint(epoch, 10)
	}
	var out BrowseResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AppendRatings appends one batch of new ratings and returns the epoch
// the server accepted it at. dataset selects the mounted dataset ("" =
// default). The batch is all-or-nothing and WAL-durable before the
// server answers. A queue-full 429 retries within the client's retry
// budget honoring the server's Retry-After — safe, because admission
// rejections happen before the batch is logged.
func (c *Client) AppendRatings(ctx context.Context, dataset string, ratings []RatingInput) (*AppendResponse, error) {
	var out AppendResponse
	req := api.AppendRequest{Dataset: dataset, Ratings: ratings}
	if err := c.post(ctx, "/api/v1/ratings", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch fans up to the server's MaxBatch explain requests out in one
// call; results are index-aligned and fail independently.
func (c *Client) Batch(ctx context.Context, reqs []Params) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.post(ctx, "/api/v1/batch", api.BatchRequest{Requests: reqs}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitJob submits an asynchronous job: op is one of explain, group,
// refine, drill, evolution, and p carries the same knobs as the
// synchronous endpoint. A 429 (queue full) is retried within the
// client's retry budget, honoring the server's Retry-After.
func (c *Client) SubmitJob(ctx context.Context, op string, p Params) (*JobStatus, error) {
	var out JobStatus
	if err := c.post(ctx, "/api/v1/jobs", api.JobSubmitRequest{Op: op, Params: p}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetJob polls a job; the result document rides along once done.
func (c *Client) GetJob(ctx context.Context, id string) (*JobStatus, error) {
	var out JobStatus
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelJob requests cancellation. Canceling an already-terminal job is
// a no-op that answers the current status.
func (c *Client) CancelJob(ctx context.Context, id string) (*JobStatus, error) {
	var out JobStatus
	if err := c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Terminal reports whether a polled state string is an end state.
func Terminal(state string) bool {
	return state == "done" || state == "failed" || state == "canceled"
}

// JobFailedError is the typed error WaitJob and StreamJob return for a
// job that reached the terminal "failed" state, carrying the envelope
// code so callers can dispatch on it (errors.As). The terminal status
// is still returned alongside the error.
type JobFailedError struct {
	ID      string
	Code    api.ErrorCode
	Message string
}

// Error implements error.
func (e *JobFailedError) Error() string {
	return fmt.Sprintf("maprat job %s failed: %s: %s", e.ID, e.Code, e.Message)
}

// failedJobError converts a terminal snapshot into its typed error (nil
// unless the state is "failed"). A canceled job is not an error: the
// caller asked for that outcome.
func failedJobError(st *JobStatus) error {
	if st.State != "failed" {
		return nil
	}
	e := &JobFailedError{ID: st.ID, Code: api.CodeInternal, Message: "job failed"}
	if st.Error != nil {
		e.Code, e.Message = st.Error.Code, st.Error.Message
	}
	return e
}

// WaitJob polls until the job reaches a terminal state (or ctx ends),
// backing off from 50ms to 1s between polls. A 429 from the poll —
// admission control pushing back harder than the do() retry budget —
// does not fail the wait: the server's Retry-After becomes the next
// poll delay. A job that terminates in the "failed" state returns its
// status AND a *JobFailedError carrying the envelope code; "done" and
// "canceled" return a nil error.
func (c *Client) WaitJob(ctx context.Context, id string) (*JobStatus, error) {
	delay := 50 * time.Millisecond
	for {
		st, err := c.GetJob(ctx, id)
		if err != nil {
			var ae *APIError
			if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests || ctx.Err() != nil {
				return nil, err
			}
			if ae.RetryAfter > delay {
				delay = ae.RetryAfter
			}
		} else if Terminal(st.State) {
			return st, failedJobError(st)
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}
