package client

import (
	"context"
	"net/http"

	"repro/internal/api"
)

// The scatter-gather wire types, re-exported like the rest of the
// contract.
type (
	// ShardInfoResponse is the worker identity handshake payload.
	ShardInfoResponse = api.ShardInfoResponse
	// ShardGatherRequest asks a worker for the R_I slice owned by a set
	// of hash slots.
	ShardGatherRequest = api.ShardGatherRequest
	// ShardGatherResponse is one worker's slice of a gather.
	ShardGatherResponse = api.ShardGatherResponse
)

// ShardInfo fetches the worker's dataset identity — the coordinator's
// boot handshake and health probe.
func (c *Client) ShardInfo(ctx context.Context) (*ShardInfoResponse, error) {
	var out ShardInfoResponse
	if err := c.do(ctx, http.MethodGet, "/api/v1/shard/info", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GatherShard fetches the query's R_I slice for the requested slots.
// Coordinators construct their clients with WithRetry(1, 0): the shard
// layer owns retries, backoff and hedging, and double-retrying here
// would blur its breaker accounting.
func (c *Client) GatherShard(ctx context.Context, req ShardGatherRequest) (*ShardGatherResponse, error) {
	var out ShardGatherResponse
	if err := c.post(ctx, "/api/v1/shard/gather", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
