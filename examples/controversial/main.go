// Controversial: the paper's introductory example. "The Twilight Saga:
// Eclipse" averages a mediocre score, but the average hides a controversy:
// female reviewers under 18 (and above 45) love it while male reviewers
// under 18 hate it. Diversity Mining surfaces exactly that sibling split —
// something no overall aggregate or pre-defined IMDB breakdown shows.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cube"
)

func main() {
	log.SetFlags(0)

	ds, err := maprat.Generate(maprat.SmallGenConfig())
	if err != nil {
		log.Fatal(err)
	}
	eng, err := maprat.Open(ds, nil)
	if err != nil {
		log.Fatal(err)
	}

	q, err := eng.ParseQuery(`movie:"The Twilight Saga: Eclipse"`)
	if err != nil {
		log.Fatal(err)
	}

	// The intro's analysis is framework mode: disagreeing demographic
	// groups, no geo-condition required. The controversial split lives in
	// a small slice of the audience (the under-18 reviewers), so the
	// coverage requirement must be low enough not to exclude it.
	settings := maprat.DefaultSettings()
	settings.K = 2
	settings.Coverage = 0.04
	free := cube.Config{RequireState: false, MinSupport: 6, MaxAVPairs: 2, SkipApex: true}

	ex, err := eng.Explain(maprat.ExplainRequest{
		Query:      q,
		Settings:   settings,
		Tasks:      []maprat.Task{maprat.DiversityMining},
		CubeConfig: &free,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s\n", ex.Query)
	fmt.Printf("overall: μ=%.2f over %d ratings — looks like a mediocre movie\n\n",
		ex.Overall.Mean(), ex.NumRatings)

	dm := ex.Result(maprat.DiversityMining)
	fmt.Println("Diversity Mining disagrees:")
	for _, g := range dm.Groups {
		verdict := "love it"
		switch {
		case g.Agg.Mean() < 2.5:
			verdict = "hate it"
		case g.Agg.Mean() < 3.5:
			verdict = "shrug"
		}
		fmt.Printf("   %-42s μ=%.2f n=%-4d → they %s\n", g.Phrase, g.Agg.Mean(), g.Agg.Count, verdict)
	}
	if len(dm.Groups) >= 2 {
		gap := dm.Groups[0].Agg.Mean() - dm.Groups[1].Agg.Mean()
		if gap < 0 {
			gap = -gap
		}
		fmt.Printf("\nThe two groups disagree by %.1f stars; the overall average hides a controversy.\n", gap)
	}
}
