// Quickstart: generate a synthetic collaborative rating site, ask MapRat
// to explain the ratings of one movie, and print both interpretations
// (Similarity Mining and Diversity Mining) with their choropleth maps.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)

	// 1. A dataset. Generate substitutes for MovieLens 1M + IMDB; use
	//    maprat.LoadDir to run on the real files instead.
	ds, err := maprat.Generate(maprat.SmallGenConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 2. An engine: joins ratings with reviewer demographics, builds the
	//    attribute indexes and the result cache.
	eng, err := maprat.Open(ds, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A query over item attributes, exactly like the demo's Figure 1.
	q, err := eng.ParseQuery(`movie:"Toy Story"`)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Explain: mines the best reviewer groups for both sub-problems.
	//    The context bounds the mine — RHE restarts run across all cores
	//    and stop early if the deadline fires (plain eng.Explain works too
	//    when no deadline is wanted).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ex, err := eng.ExplainContext(ctx, maprat.ExplainRequest{Query: q})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query      : %s\n", ex.Query)
	fmt.Printf("ratings    : %d (overall μ=%.2f — the single number the paper argues is not enough)\n",
		ex.NumRatings, ex.Overall.Mean())
	fmt.Printf("mined in   : %s\n\n", ex.Elapsed)

	for _, tr := range ex.Results {
		fmt.Printf("— %s: %d groups, coverage %.0f%%\n", tr.Task, len(tr.Groups), tr.Coverage*100)
		for _, g := range tr.Groups {
			fmt.Printf("   %-58s μ=%.2f σ=%.2f n=%d (%.1f%% of ratings)\n",
				g.Phrase, g.Agg.Mean(), g.Agg.Std(), g.Agg.Count, g.Share*100)
		}
		fmt.Println()
	}

	// 5. The geo-visualization: each group is anchored on its state and
	//    shaded red→green by its average rating.
	fmt.Print(eng.RenderExploration(ex).ASCII(false))
}
