// Geotrends: the Figure-3 scenario. Explain a movie's ratings, pick the
// top Similarity-Mining group, and drill into it: score distribution,
// state→city drill-down, rating evolution, and the sibling groups a user
// would compare it against.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	ds, err := maprat.Generate(maprat.SmallGenConfig())
	if err != nil {
		log.Fatal(err)
	}
	eng, err := maprat.Open(ds, nil)
	if err != nil {
		log.Fatal(err)
	}

	q, err := eng.ParseQuery(`movie:"Toy Story"`)
	if err != nil {
		log.Fatal(err)
	}
	ex, err := eng.Explain(maprat.ExplainRequest{
		Query: q, Tasks: []maprat.Task{maprat.SimilarityMining},
	})
	if err != nil {
		log.Fatal(err)
	}

	sm := ex.Result(maprat.SimilarityMining)
	fmt.Printf("Similarity Mining for %s (%d ratings):\n", ex.Query, ex.NumRatings)
	for _, g := range sm.Groups {
		fmt.Printf("   %-58s μ=%.2f n=%d\n", g.Phrase, g.Agg.Mean(), g.Agg.Count)
	}

	// Drill into the largest group — the demo clicks "male reviewers from
	// California" here.
	top := sm.Groups[0]
	fmt.Printf("\n=== exploring: %s ===\n", top.Phrase)
	stats, related, err := eng.ExploreGroup(q, top.Key, 6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nscore distribution:")
	for s := 1; s < len(stats.Histogram); s++ {
		fmt.Printf("   %d★ %4d  %s\n", s, stats.Histogram[s], hashes(stats.Histogram[s], stats.Agg.Count))
	}

	if len(stats.Cities) > 0 {
		fmt.Println("\ncity-level drill-down (the paper's state→city navigation):")
		for _, c := range stats.Cities {
			fmt.Printf("   %-20s μ=%.2f n=%d\n", c.City, c.Agg.Mean(), c.Agg.Count)
		}
	}

	fmt.Println("\nrating evolution:")
	for _, b := range stats.Timeline {
		if b.Agg.Count == 0 {
			continue
		}
		fmt.Printf("   %-18s μ=%.2f n=%d\n", b.Label(), b.Agg.Mean(), b.Agg.Count)
	}

	if len(related) > 0 {
		fmt.Println("\nrelated groups (one attribute away):")
		limit := related
		if len(limit) > 5 {
			limit = limit[:5]
		}
		for _, g := range limit {
			fmt.Printf("   %-58s μ=%.2f n=%d\n", g.Phrase, g.Agg.Mean(), g.Agg.Count)
		}
	}
}

func hashes(n, total int) string {
	if total == 0 {
		return ""
	}
	w := n * 50 / total
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
