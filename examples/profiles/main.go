// Profiles: §3.1's personalization. "MapRat can exploit any user
// demographic information (gender, age, location or occupation) available
// to constrain the groups that are highlighted. This ensures that the
// resulting groups are the ones that user most self-identifies with."
// Explain the same movie for three different visitor profiles and watch
// the returned groups change.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cube"
	"repro/internal/model"
)

func main() {
	log.SetFlags(0)

	ds, err := maprat.Generate(maprat.SmallGenConfig())
	if err != nil {
		log.Fatal(err)
	}
	eng, err := maprat.Open(ds, nil)
	if err != nil {
		log.Fatal(err)
	}
	q, err := eng.ParseQuery(`movie:"Forrest Gump"`)
	if err != nil {
		log.Fatal(err)
	}

	profiles := []struct {
		who string
		key maprat.Key
	}{
		{"anonymous visitor (no profile)", cube.KeyAll},
		{"female visitor", cube.KeyAll.With(cube.Gender, int16(model.Female))},
		{"male 25-34 visitor from California", cube.KeyAll.
			With(cube.Gender, int16(model.Male)).
			With(cube.Age, int16(model.Age25to34)).
			With(cube.State, cube.StateIndex("CA"))},
	}

	for _, p := range profiles {
		s := maprat.DefaultSettings()
		s.Profile = p.key
		ex, err := eng.Explain(maprat.ExplainRequest{
			Query: q, Settings: s, Tasks: []maprat.Task{maprat.SimilarityMining},
		})
		if err != nil {
			log.Fatalf("%s: %v", p.who, err)
		}
		sm := ex.Result(maprat.SimilarityMining)
		fmt.Printf("— as %s:\n", p.who)
		for _, g := range sm.Groups {
			fmt.Printf("   %-58s μ=%.2f n=%d\n", g.Phrase, g.Agg.Mean(), g.Agg.Count)
		}
		fmt.Println()
	}
	fmt.Println("Each profile only sees groups it could belong to — the rating a user")
	fmt.Println("adopts is the one from the group she most self-identifies with.")
}
