// Timetravel: the §3.1 time-slider scenario. Mine the same query once per
// calendar year and watch how the best explanation groups — and the
// movie's reception — evolve over the rating log's eight years.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)

	ds, err := maprat.Generate(maprat.SmallGenConfig())
	if err != nil {
		log.Fatal(err)
	}
	eng, err := maprat.Open(ds, nil)
	if err != nil {
		log.Fatal(err)
	}

	q, err := eng.ParseQuery(`movie:"Toy Story"`)
	if err != nil {
		log.Fatal(err)
	}

	points, err := eng.Evolution(maprat.ExplainRequest{
		Query: q, Tasks: []maprat.Task{maprat.SimilarityMining},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("time slider — %s\n", q)
	fmt.Println("(Toy Story is planted with a negative drift: its reception cools over the years)")
	var prevMean float64
	for _, p := range points {
		year := time.Unix(p.Window.From, 0).UTC().Year()
		if p.Err != nil || p.Explanation == nil {
			fmt.Printf("\n%d — no mineable ratings (%v)\n", year, p.Err)
			continue
		}
		mean := p.Explanation.Overall.Mean()
		trend := " "
		switch {
		case prevMean != 0 && mean < prevMean-0.01:
			trend = "↓"
		case prevMean != 0 && mean > prevMean+0.01:
			trend = "↑"
		}
		prevMean = mean
		fmt.Printf("\n%d — %4d ratings, μ=%.2f %s\n", year, p.Explanation.NumRatings, mean, trend)
		if sm := p.Explanation.Result(maprat.SimilarityMining); sm != nil {
			for _, g := range sm.Groups {
				fmt.Printf("     %-55s μ=%.2f n=%d\n", g.Phrase, g.Agg.Mean(), g.Agg.Count)
			}
		}
	}
}
