package maprat

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// snapshotPair opens the same generated dataset twice: once directly
// (the text-equivalent path: Generate → Open joins and indexes from
// scratch) and once through a written-then-mapped snapshot. Every
// differential test below must observe zero divergence between the two.
func snapshotPair(t *testing.T) (direct, snapped *Engine) {
	t.Helper()
	cfg := SmallGenConfig()
	cfg.Users = 400
	cfg.Movies = 160
	cfg.Ratings = 10_000
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err = Open(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pair.msnap")
	if err := WriteSnapshot(path, ds, SnapshotMeta{Source: "generated", Provenance: cfg.Provenance()}); err != nil {
		t.Fatal(err)
	}
	snapped, err = OpenSnapshot(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { snapped.Close() })
	return direct, snapped
}

// TestSnapshotMiningIdentity is the format's correctness bar: a
// snapshot-opened engine must produce byte-identical mining results to
// an engine that joined the same dataset from scratch, and report the
// same fingerprint (so ETags agree across the two server boot paths).
func TestSnapshotMiningIdentity(t *testing.T) {
	direct, snapped := snapshotPair(t)

	if direct.Fingerprint() != snapped.Fingerprint() {
		t.Fatalf("fingerprints diverge: direct %016x, snapshot %016x",
			direct.Fingerprint(), snapped.Fingerprint())
	}

	queries := []string{
		`movie:"Toy Story"`,
		`genre:Drama`,
		`genre:Comedy`,
	}
	for _, qs := range queries {
		q1, err := direct.ParseQuery(qs)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", qs, err)
		}
		q2, err := snapped.ParseQuery(qs)
		if err != nil {
			t.Fatalf("snapshot ParseQuery(%q): %v", qs, err)
		}
		ex1, err1 := direct.Explain(ExplainRequest{Query: q1})
		ex2, err2 := snapped.Explain(ExplainRequest{Query: q2})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%q: direct err=%v, snapshot err=%v", qs, err1, err2)
		}
		if err1 != nil {
			continue
		}
		// Byte-level comparison over the serialized result, with the
		// non-deterministic fields (timing, cache provenance) zeroed.
		ex1.Elapsed, ex2.Elapsed = 0, 0
		ex1.FromCache, ex2.FromCache = false, false
		b1, err := json.Marshal(ex1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := json.Marshal(ex2)
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Errorf("%q: mining results diverge\ndirect:   %.400s\nsnapshot: %.400s", qs, b1, b2)
		}
	}

	// The exploration surface runs over the item index and the global
	// cube — pin those too.
	lo1, hi1 := direct.TimeRange()
	lo2, hi2 := snapped.TimeRange()
	if lo1 != lo2 || hi1 != hi2 {
		t.Errorf("time ranges diverge: direct [%d,%d], snapshot [%d,%d]", lo1, hi1, lo2, hi2)
	}
	s1 := direct.BrowseStates()
	s2 := snapped.BrowseStates()
	b1, _ := json.Marshal(s1)
	b2, _ := json.Marshal(s2)
	if string(b1) != string(b2) {
		t.Error("browse states diverge between direct and snapshot engines")
	}
}

// TestOpenSnapshotMissing pins the open error for a path that does not
// exist — the server must fail fast, not mount an empty dataset.
func TestOpenSnapshotMissing(t *testing.T) {
	if _, err := OpenSnapshot(filepath.Join(t.TempDir(), "nope.msnap"), nil); err == nil {
		t.Fatal("OpenSnapshot of a missing file succeeded")
	}
}

// TestEngineCloseIdempotent: Close on a snapshot engine releases the
// mapping once; a second Close and a Close on a non-snapshot engine are
// no-ops.
func TestEngineCloseIdempotent(t *testing.T) {
	_, snapped := snapshotPair(t)
	if err := snapped.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := snapped.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	e := testEngine(t)
	if err := e.Close(); err != nil {
		t.Fatalf("close of a non-snapshot engine: %v", err)
	}
}
