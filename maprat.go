// Package maprat is a reproduction of MapRat (Thirumuruganathan et al.,
// PVLDB 5(12), 2012): meaningful explanation, interactive exploration and
// geo-visualization of collaborative ratings.
//
// Given one or more items selected by a query over item attributes, the
// engine mines the associated ratings for two kinds of meaningful
// interpretations — Similarity Mining (groups of reviewers that agree) and
// Diversity Mining (groups that consistently disagree) — using the
// Randomized Hill Exploration algorithm over data-cube reviewer groups,
// and renders each interpretation as a choropleth map anchored on the
// groups' state geo-conditions.
//
// Typical use:
//
//	ds, _ := dataset.Generate(dataset.DefaultGenConfig())
//	eng, _ := maprat.Open(ds, nil)
//	q, _ := eng.ParseQuery(`movie:"Toy Story"`)
//	ex, _ := eng.Explain(maprat.ExplainRequest{Query: q})
//	fmt.Println(eng.RenderExploration(ex).ASCII(false))
package maprat

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/dataset"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/viz"
)

// Re-exported substrate types, so engine users need only this package.
type (
	// Dataset is the collaborative rating site ⟨I, U, R⟩.
	Dataset = model.Dataset
	// GenConfig parameterizes the synthetic MovieLens-1M-shaped generator.
	GenConfig = dataset.GenConfig
	// Query is a parsed item query.
	Query = query.Query
	// TimeWindow restricts ratings to an interval (zero = all time).
	TimeWindow = store.TimeWindow
	// Key is a canonical group descriptor over reviewer attributes.
	Key = cube.Key
	// Agg is a group rating aggregate (count / mean / stddev).
	Agg = cube.Agg
	// Settings are the mining knobs (K, coverage α, RHE parameters).
	Settings = core.Settings
	// Task selects a mining sub-problem.
	Task = core.Task
	// GroupStats is the Figure-3 exploration payload.
	GroupStats = explore.GroupStats
)

// The two mining sub-problems.
const (
	SimilarityMining = core.SimilarityMining
	DiversityMining  = core.DiversityMining
)

// Generate builds a synthetic dataset (see internal/dataset for the
// planted structure that substitutes for the real MovieLens+IMDB data).
func Generate(cfg GenConfig) (*Dataset, error) { return dataset.Generate(cfg) }

// DefaultGenConfig is the full MovieLens 1M scale (~1M ratings).
func DefaultGenConfig() GenConfig { return dataset.DefaultGenConfig() }

// SmallGenConfig is a 1/12-scale configuration for tests and examples.
func SmallGenConfig() GenConfig { return dataset.SmallGenConfig() }

// LoadDir loads a MovieLens-1M-format directory (users.dat, movies.dat,
// ratings.dat, optional cast.dat).
func LoadDir(dir string) (*Dataset, error) { return dataset.LoadDir(dir) }

// WriteDir writes a dataset in MovieLens 1M format.
func WriteDir(dir string, ds *Dataset) error { return dataset.WriteDir(dir, ds) }

// DirProvenance hashes the source files of a MovieLens-format directory,
// for stamping into a snapshot packed from it.
func DirProvenance(dir string) (uint64, error) { return dataset.DirProvenance(dir) }

// DefaultSettings mirrors the demo defaults (3 groups, 30% coverage).
func DefaultSettings() Settings { return core.DefaultSettings() }

// Options configures Open.
type Options struct {
	// Store controls indexing, precomputation and the result cache.
	Store store.Options
	// Cube is the candidate-group construction config used per query.
	Cube cube.Config
}

// DefaultOptions enables precomputation, caching and geo-anchored groups.
func DefaultOptions() Options {
	return Options{Store: store.DefaultOptions(), Cube: cube.DefaultConfig()}
}

// Engine is an opened MapRat instance over one dataset. An Engine is safe
// for concurrent use: the store is read-only after Open, the result cache
// and the singleflight layer are internally synchronized, and each mining
// request solves on its own problem instance. Cubes shared through the
// plan tier populate their derived caches (coverage bitsets, sibling
// table) lazily under sync.Once, so concurrent first use is safe and
// every later solve or exploration on the same plan gets them for free.
type Engine struct {
	st      *store.Store
	cubeCfg cube.Config

	// flight deduplicates concurrent identical Explain calls in front of
	// the LRU: a burst of the same query mines once.
	flight store.Flight
	// mines counts full mining-pipeline executions (cache misses that also
	// lost the singleflight race are not counted — they never mined).
	mines atomic.Uint64

	fpOnce sync.Once
	fp     uint64

	// ingest is the live-append state (WAL, writer admission, counters);
	// nil until EnableIngest arms the write path.
	ingest *ingestState

	// closer releases the open path's resources — the snapshot mapping
	// for a snapshot-opened engine, nil otherwise.
	closer interface{ Close() error }
}

// Open indexes a dataset and returns the engine. A nil opts uses
// DefaultOptions.
func Open(ds *Dataset, opts *Options) (*Engine, error) {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	st, err := store.Open(ds, o.Store)
	if err != nil {
		return nil, err
	}
	return &Engine{st: st, cubeCfg: o.Cube}, nil
}

// SnapshotMeta is the builder identity stamped into a snapshot header
// (source label, provenance hash).
type SnapshotMeta = snapshot.Meta

// WriteSnapshot writes ds as a .msnap columnar snapshot — the versioned
// binary format OpenSnapshot memory-maps for near-instant start.
func WriteSnapshot(path string, ds *Dataset, meta SnapshotMeta) error {
	return snapshot.WriteFile(path, ds, meta)
}

// OpenSnapshot opens an engine over a .msnap snapshot. The file is
// memory-mapped where the platform allows it and the pre-joined rating
// tuple log is served straight from the mapped pages, so opening skips
// both text parsing and the store's join. The snapshot's stored
// fingerprint seeds Engine.Fingerprint, making ETags from a
// snapshot-opened server byte-identical to a text-opened one over the
// same data. Call Close on the returned engine to release the mapping.
func OpenSnapshot(path string, opts *Options) (*Engine, error) {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
	}
	snap, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	lo, hi := snap.TimeRange()
	st, err := store.OpenPrejoined(snap.Dataset(), o.Store, store.Prejoined{
		Tuples:     snap.Tuples(),
		ItemTuples: snap.ItemTuples(),
		MinUnix:    lo,
		MaxUnix:    hi,
	})
	if err != nil {
		_ = snap.Close()
		return nil, err
	}
	e := &Engine{st: st, cubeCfg: o.Cube, closer: snap}
	// The header's fingerprint is the value model.Fingerprint would
	// recompute over the reconstructed data; trusting it saves the
	// strided scan and keeps the identity authoritative in one place.
	e.fpOnce.Do(func() { e.fp = snap.Fingerprint() })
	return e, nil
}

// Close releases resources held by the engine's open path — the mapped
// snapshot file for a snapshot-opened engine and the ingest WAL when the
// write path was enabled. The engine (including any slices handed out by
// its store) must not be used afterwards. Engines opened over in-memory
// datasets close to a no-op. Close is idempotent.
func (e *Engine) Close() error {
	var err error
	if ig := e.ingest; ig != nil {
		e.ingest = nil
		err = ig.wal.Close()
	}
	c := e.closer
	e.closer = nil
	if c != nil {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Store exposes the underlying store for advanced callers (benchmarks,
// the web front-end's browse endpoints).
func (e *Engine) Store() *store.Store { return e.st }

// Dataset returns the engine's dataset.
func (e *Engine) Dataset() *Dataset { return e.st.Dataset() }

// TimeRange returns the dataset's [min, max] rating timestamps.
func (e *Engine) TimeRange() (int64, int64) { return e.st.TimeRange() }

// ParseQuery parses the Figure-1 query syntax, e.g.
// `actor:"Tom Hanks" AND genre:Thriller`.
func (e *Engine) ParseQuery(s string) (Query, error) { return query.Parse(s) }

// ExplainRequest selects what to mine.
type ExplainRequest struct {
	Query Query
	// Settings defaults to DefaultSettings when zero-valued (detected via
	// K == 0).
	Settings Settings
	// Tasks defaults to both sub-problems.
	Tasks []Task
	// CubeConfig overrides the engine's candidate-group construction for
	// this request. The demo default anchors every group on a state; the
	// intro's Twilight analysis (male-under-18 vs female-under-18) is the
	// un-anchored framework mode — pass a config with RequireState=false
	// to reproduce it.
	CubeConfig *cube.Config
	// DisableCache bypasses the store's result cache AND the plan
	// materialization tier: the full resolve → gather → cube → mine
	// pipeline runs from scratch, paying the packed cube build and a
	// fresh coverage-bitset build (BenchmarkColdExplain measures this
	// path).
	DisableCache bool
	// DisableRelax fails immediately on an unsatisfiable coverage
	// constraint instead of relaxing α stepwise (the web demo relaxes so
	// every query renders something).
	DisableRelax bool
}

// GroupResult is one explanation group.
type GroupResult struct {
	Key    Key
	Phrase string // "female under-18 K-12 student reviewers from New York"
	Icons  string // "♀ · under 18 · K-12 student"
	State  string // two-letter geo-condition ("" if none)
	Agg    Agg
	// Share is the fraction of the query's ratings this group covers.
	Share float64
}

// TaskResult is the outcome of one mining sub-problem.
type TaskResult struct {
	Task      Task
	Groups    []GroupResult
	Objective float64
	Coverage  float64
	Feasible  bool
	Evals     int
	// RelaxedCoverage is the α actually used after automatic relaxation
	// (equal to the requested α when no relaxation was needed).
	RelaxedCoverage float64
	// Degraded lists the shards that could not contribute to this result.
	// A single-node engine never sets it; a distributed serving tier sets
	// it on results mined from a partial gather (see Explanation.Degraded).
	Degraded []string
}

// Explanation is the full result of Explain: everything Figure 2 renders.
type Explanation struct {
	Query      Query
	ItemIDs    []int
	NumRatings int
	Overall    Agg // the single aggregate the paper argues is insufficient
	Results    []TaskResult
	FromCache  bool
	Elapsed    time.Duration
	// Degraded lists the shards (worker names) whose data is missing from
	// this result. It is empty/nil for a complete result — including every
	// result from a single-node engine — and non-empty only when a
	// distributed serving tier answered from a partial gather rather than
	// failing the query. Callers that cannot tolerate partial answers
	// should treat a non-empty Degraded as an error.
	Degraded []string
}

// Result returns the TaskResult for a task, or nil.
func (ex *Explanation) Result(t Task) *TaskResult {
	for i := range ex.Results {
		if ex.Results[i].Task == t {
			return &ex.Results[i]
		}
	}
	return nil
}

// Clone returns a deep copy: the copy's ItemIDs, Results and per-task
// Groups slices are freshly allocated, so mutating them never touches the
// original. Every cache hit and singleflight share hands out a clone —
// a shallow copy would alias the cached slices and let one caller poison
// the cache for everyone.
func (ex *Explanation) Clone() *Explanation {
	out := *ex
	out.Query.Preds = append([]query.Pred(nil), ex.Query.Preds...)
	out.ItemIDs = append([]int(nil), ex.ItemIDs...)
	out.Degraded = append([]string(nil), ex.Degraded...)
	out.Results = make([]TaskResult, len(ex.Results))
	for i, tr := range ex.Results {
		tr.Groups = append([]GroupResult(nil), tr.Groups...)
		tr.Degraded = append([]string(nil), tr.Degraded...)
		out.Results[i] = tr
	}
	return &out
}

// Errors reported by the mining pipelines. All three mark requests that
// asked for something that does not exist — the HTTP layer maps them to
// 404, unlike internal mining failures.
var (
	ErrNoItems   = errors.New("maprat: query matched no items")
	ErrNoRatings = errors.New("maprat: query matched items but no ratings in the window")
	// ErrNoGroup reports a group key that does not materialize in the
	// query's candidate cube (a stale or mistyped key).
	ErrNoGroup = errors.New("maprat: group not present for query")
)

// ErrUnavailable reports that a distributed serving tier could not reach
// enough of its workers to answer at all. Partial shard failures degrade
// instead (Explanation.Degraded); total failure is this error, which the
// HTTP layer maps to 503 so clients retry.
var ErrUnavailable = errors.New("maprat: no shards reachable")

func groupNotFound(key Key, q Query) error {
	return fmt.Errorf("%w: %v (query %s)", ErrNoGroup, key, q)
}

// Explain runs the full §2.3 pipeline: resolve the query to items, gather
// R_I, construct the candidate groups, and solve each requested mining
// sub-problem with RHE.
func (e *Engine) Explain(req ExplainRequest) (*Explanation, error) {
	return e.ExplainContext(context.Background(), req) //maprat:allow(ctxflow) compat wrapper: preserves the pre-context API
}

// ExplainContext is Explain with a request lifecycle: mining stops between
// hill-climb iterations once ctx is done (returning ctx.Err()), and
// concurrent callers with the same request share one mining run through
// the singleflight layer in front of the result cache.
func (e *Engine) ExplainContext(ctx context.Context, req ExplainRequest) (*Explanation, error) {
	start := time.Now()
	if req.Settings.K == 0 {
		req.Settings = DefaultSettings()
	}
	if len(req.Tasks) == 0 {
		req.Tasks = []Task{SimilarityMining, DiversityMining}
	}
	// The resolved epoch is an internal coordinate — cache keys, plan
	// versions and tuple gathers all use it — but the returned
	// Explanation echoes the epoch the caller asked for, so a serving
	// tier without an epoch clock (the scatter-gather coordinator
	// assembles plans itself) stays byte-identical to a single node.
	reqEpoch := req.Query.Epoch
	q, err := e.pinQuery(req.Query)
	if err != nil {
		return nil, err
	}
	req.Query = q

	if req.DisableCache || e.st.Cache() == nil {
		ex, err := e.explainUncached(ctx, req, start)
		if err != nil {
			return nil, err
		}
		ex.Query.Epoch = reqEpoch
		return ex, nil
	}

	cacheKey := e.cacheKey(req)
	if v, ok := e.st.Cache().Get(cacheKey); ok {
		hit := v.(*Explanation).Clone()
		hit.FromCache = true
		hit.Elapsed = time.Since(start)
		hit.Query.Epoch = reqEpoch
		return hit, nil
	}
	v, shared, err := e.flight.Do(ctx, cacheKey, func() (any, error) {
		ex, err := e.explainUncached(ctx, req, start)
		if err != nil {
			return nil, err
		}
		e.st.Cache().Put(cacheKey, ex)
		return ex, nil
	})
	if err != nil {
		return nil, err
	}
	// The leader's value is the cached Explanation itself and a follower's
	// aliases it; clone either way so no caller can mutate the cache.
	ex := v.(*Explanation).Clone()
	// A follower's result came from another request's mining run — from
	// the caller's perspective that is a cache hit.
	ex.FromCache = shared
	ex.Elapsed = time.Since(start)
	ex.Query.Epoch = reqEpoch
	return ex, nil
}

// explainUncached executes the mining pipeline, bypassing the result
// cache and its singleflight. The pre-mining stages still come from the
// plan materialization tier unless the request disables caching.
func (e *Engine) explainUncached(ctx context.Context, req ExplainRequest, start time.Time) (*Explanation, error) {
	base := e.baseCubeConfig(req.CubeConfig)
	var p *store.Plan
	var err error
	if req.DisableCache {
		p, err = e.buildPlan(req.Query, base)
	} else {
		p, err = e.planFor(ctx, req.Query, base)
	}
	if err != nil {
		return nil, err
	}
	ex, err := MinePlan(ctx, p, req)
	if err != nil {
		return nil, err
	}
	ex.Elapsed = time.Since(start)
	e.mines.Add(1)
	return ex, nil
}

// MinePlan runs the mining stage of Explain over an already-materialized
// plan: one RHE solve per requested sub-problem, with the same defaults
// and coverage relaxation Explain applies. Exported for serving tiers
// that assemble plans outside a local engine — the scatter-gather
// coordinator gathers R_I from its workers, rebuilds the cube locally,
// and mines here; routing both through this one function is what makes
// distributed results byte-identical to single-node ones. The returned
// Explanation's Elapsed is zero; the caller stamps it.
func MinePlan(ctx context.Context, p *store.Plan, req ExplainRequest) (*Explanation, error) {
	if req.Settings.K == 0 {
		req.Settings = DefaultSettings()
	}
	if len(req.Tasks) == 0 {
		req.Tasks = []Task{SimilarityMining, DiversityMining}
	}
	ex := &Explanation{
		Query: req.Query,
		// Copy out of the shared plan; ex may be cached and cloned on the
		// way out, but the construction-time copy keeps the uncached path
		// safe to mutate too.
		ItemIDs:    append([]int(nil), p.ItemIDs...),
		NumRatings: len(p.Tuples),
		Overall:    p.Overall,
	}
	for _, task := range req.Tasks {
		tr, err := solveTask(ctx, task, p.Cube, req)
		if err != nil {
			if errors.Is(err, ctx.Err()) {
				return nil, err
			}
			return nil, fmt.Errorf("%v: %w", task, err)
		}
		ex.Results = append(ex.Results, tr)
	}
	return ex, nil
}

// baseCubeConfig resolves the pre-adaptation cube config for a request:
// the per-request override when present, the engine default otherwise.
func (e *Engine) baseCubeConfig(override *cube.Config) cube.Config {
	if override != nil {
		return *override
	}
	return e.cubeCfg
}

// GroupCubeConfig picks the base cube config a group key needs: a key
// without a state condition came from a framework-mode (un-anchored)
// mining run, so the cube must be rebuilt accordingly or the key cannot
// materialize. Exported so plan-assembling serving tiers derive exactly
// the config the engine would for the same key.
func GroupCubeConfig(base cube.Config, key Key) cube.Config {
	if !key.Has(cube.State) {
		base.RequireState = false
	}
	return base
}

func (e *Engine) groupCubeConfig(key Key) cube.Config {
	return GroupCubeConfig(e.cubeCfg, key)
}

// PlanKey canonicalizes the (query, window, cube config) triple the
// materialization tier is keyed by; the window rides inside
// Query.String(). The config is the pre-adaptation base: MinSupport
// adaptation is a pure function of the gathered tuple count, which is
// itself determined by the key, so keying on the base config is sound.
// Exported so external plan caches key identically to the engine's.
func PlanKey(q Query, cfg cube.Config) string {
	return fmt.Sprintf("plan|%s|cube=%+v", q.String(), cfg)
}

// buildPlan runs the §2.3 pre-mining pipeline from scratch: resolve the
// query to items, gather R_I as of the query's (resolved) epoch, build
// the candidate cube over it. Item resolution is epoch-independent — the
// catalog is immutable under append; only the rating gather is pinned.
func (e *Engine) buildPlan(q Query, base cube.Config) (*store.Plan, error) {
	ids, err := query.Resolve(e.st, q)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, ErrNoItems
	}
	tuples := e.st.TuplesForItemsAt(ids, q.Window, q.Epoch)
	if len(tuples) == 0 {
		return nil, ErrNoRatings
	}
	p := &store.Plan{
		ItemIDs: ids,
		Tuples:  tuples,
		Cube:    cube.Build(tuples, AdaptCubeConfig(base, len(tuples))),
	}
	for i := range tuples {
		p.Overall.Add(tuples[i].Score)
	}
	return p, nil
}

// planFor fetches the materialized plan for (q, base) from the store's
// materialization tier, building and caching it on first use. All five
// pipelines — Explain, ExploreGroup, RefineGroup, DrillMine and each
// Evolution window — fetch through here, so a group click after an
// Explain performs zero query resolution and zero cube builds. With the
// tier disabled the plan is built fresh.
func (e *Engine) planFor(ctx context.Context, q Query, base cube.Config) (*store.Plan, error) {
	if q.Epoch == 0 {
		q.Epoch = e.st.CurrentEpoch()
	}
	pc := e.st.Plans()
	if pc == nil {
		return e.buildPlan(q, base)
	}
	// The key is epoch-free (Query.String() excludes Epoch); the tier
	// versions entries by epoch range underneath it, so an append seals
	// only the plans whose item sets the batch touched.
	p, _, err := pc.GetOrBuildAt(ctx, PlanKey(q, base), q.Epoch, func() (*store.Plan, error) {
		return e.buildPlan(q, base)
	})
	return p, err //maprat:allow(clonecheck) store.Plan is immutable by contract (see the Plan doc); consumers only read, so the shared pointer is safe
}

// PlanStats returns a snapshot of the materialization tier's counters
// (zero-valued when the tier is disabled) — the monitoring hook behind
// the server's /statsz endpoint.
func (e *Engine) PlanStats() store.PlanStats {
	if pc := e.st.Plans(); pc != nil {
		return pc.Stats()
	}
	return store.PlanStats{}
}

// MineCount returns how many full mining-pipeline executions the engine
// has completed (failed resolves and cancelled mines are not counted) — a
// monitoring hook for observing cache and singleflight effectiveness.
func (e *Engine) MineCount() uint64 { return e.mines.Load() }

// Fingerprint returns a stable 64-bit hash identifying the opened
// dataset AT ITS CURRENT EPOCH: the base-log fingerprint (entity counts,
// rating time range, a strided sample of the log) mixed with the current
// epoch when appends have grown the data. Two engines opened over the
// same data agree on it; any edit to the log (new ratings, different
// scores, reordered load) almost surely changes it, and every accepted
// append batch rolls it. Seeded mining is a pure function of (dataset,
// epoch, request), so the HTTP layer folds the fingerprint into its
// ETags: a tag stays valid exactly as long as the data underneath it
// does — an append immediately invalidates previously issued 304s.
func (e *Engine) Fingerprint() uint64 {
	return e.FingerprintAt(e.st.CurrentEpoch())
}

// FingerprintAt is the fingerprint of one epoch's view of the data. The
// base epoch's value is the plain dataset fingerprint — identical
// whether the engine was opened from text or from a snapshot, and
// identical to the value before ingestion existed; later epochs mix the
// epoch in, so every epoch's ETags are distinct and a pinned read's tag
// stays stable across later appends.
func (e *Engine) FingerprintAt(epoch uint64) uint64 {
	e.fpOnce.Do(func() {
		lo, hi := e.st.TimeRange()
		e.fp = model.Fingerprint(e.st.Dataset(), lo, hi)
	})
	if epoch <= 1 {
		return e.fp
	}
	return mixFP(e.fp, epoch)
}

// mixFP folds an epoch into the base fingerprint (a splitmix64-style
// finalizer, so adjacent epochs land far apart).
func mixFP(fp, epoch uint64) uint64 {
	x := fp ^ (epoch * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// AdaptCubeConfig scales a cube config's MinSupport down for small tuple
// sets so sparse queries still produce candidates — the adaptation every
// mining pipeline applies between gathering R_I and building its cube.
// Exported so benchmarks and experiments constructing cubes outside
// Explain build exactly the configuration the engine would.
func AdaptCubeConfig(cfg cube.Config, numTuples int) cube.Config {
	if adaptive := numTuples / 50; adaptive < cfg.MinSupport {
		cfg.MinSupport = adaptive
		if cfg.MinSupport < 3 {
			cfg.MinSupport = 3
		}
	}
	return cfg
}

// solveTask runs one sub-problem, relaxing the coverage constraint
// stepwise when the instance is infeasible (unless disabled).
func solveTask(ctx context.Context, task Task, c *cube.Cube, req ExplainRequest) (TaskResult, error) {
	s := req.Settings
	alphas := []float64{s.Coverage}
	if !req.DisableRelax {
		for a := s.Coverage; a > 0.02; a /= 2 {
			alphas = append(alphas, a/2)
		}
		alphas = append(alphas, 0)
	}
	var lastErr error
	for _, alpha := range alphas {
		s.Coverage = alpha
		p, err := core.NewProblem(task, c, s)
		if err != nil {
			lastErr = err
			if errors.Is(err, core.ErrInfeasible) {
				continue
			}
			return TaskResult{}, err
		}
		sol, err := p.SolveRHECtx(ctx)
		if err != nil {
			return TaskResult{}, err
		}
		if !sol.Feasible {
			lastErr = core.ErrInfeasible
			continue
		}
		tr := TaskResult{
			Task:            task,
			Objective:       sol.Objective,
			Coverage:        sol.Coverage,
			Feasible:        sol.Feasible,
			Evals:           sol.Evals,
			RelaxedCoverage: alpha,
		}
		for _, gi := range sol.Groups {
			tr.Groups = append(tr.Groups, groupResult(&c.Groups[gi], len(c.Tuples)))
		}
		return tr, nil
	}
	return TaskResult{}, lastErr
}

func groupResult(g *cube.Group, total int) GroupResult {
	state := ""
	if g.Key.Has(cube.State) {
		state = cube.StateCode(g.Key[cube.State])
	}
	share := 0.0
	if total > 0 {
		share = float64(len(g.Members)) / float64(total)
	}
	return GroupResult{
		Key:    g.Key,
		Phrase: g.Key.Phrase(),
		Icons:  viz.Icons(g.Key),
		State:  state,
		Agg:    g.Agg,
		Share:  share,
	}
}

func (e *Engine) cacheKey(req ExplainRequest) string {
	cubeCfg := e.cubeCfg
	if req.CubeConfig != nil {
		cubeCfg = *req.CubeConfig
	}
	// Every result-affecting setting participates; Workers is left out on
	// purpose — it is result-neutral by construction. The epoch rides
	// outside Query.String(): callers resolve it before keying, so a
	// pinned read at the current epoch and a latest read share an entry,
	// and entries for old epochs stay valid forever (results are pure
	// functions of (query, epoch)).
	return fmt.Sprintf("explain|%s|e=%d|k=%d|a=%.3f|l=%.2f|sb=%.2f|p=%v|seed=%d|r=%d|mi=%d|ss=%d|tasks=%v|relax=%v|cube=%+v",
		req.Query.String(), req.Query.Epoch, req.Settings.K, req.Settings.Coverage,
		req.Settings.Lambda, req.Settings.SiblingBoost, req.Settings.Profile,
		req.Settings.Seed, req.Settings.Restarts, req.Settings.MaxIters,
		req.Settings.SampleSize, req.Tasks, !req.DisableRelax, cubeCfg)
}

// GroupExploration bundles everything the per-group exploration renders —
// the Figure-3 statistics, the sibling groups to compare against, and the
// most deviant drill-deeper refinements — all computed from the same
// materialized plan, so one group click performs at most one plan fetch.
type GroupExploration struct {
	Stats   GroupStats
	Related []GroupResult
	// Refinements is nil when the exploration was requested without them
	// (refineLimit < 0) or when the group has no drill-deeper children in
	// the cube.
	Refinements []Refinement
	// Degraded lists the shards missing from the underlying gather (see
	// Explanation.Degraded); always nil from a single-node engine.
	Degraded []string
}

// ExploreGroup recomputes the Figure-3 exploration for one explanation
// group: full statistics (histogram, city drill-down, timeline) plus the
// sibling groups to compare against.
func (e *Engine) ExploreGroup(q Query, key Key, buckets int) (*GroupStats, []GroupResult, error) {
	return e.ExploreGroupContext(context.Background(), q, key, buckets) //maprat:allow(ctxflow) compat wrapper: preserves the pre-context API
}

// ExploreGroupContext is ExploreGroup with cancellation between the
// pipeline's stages. It is a thin wrapper over ExploreFullContext that
// skips the refinement stage.
func (e *Engine) ExploreGroupContext(ctx context.Context, q Query, key Key, buckets int) (*GroupStats, []GroupResult, error) {
	ge, err := e.ExploreFullContext(ctx, q, key, buckets, -1)
	if err != nil {
		return nil, nil, err
	}
	return &ge.Stats, ge.Related, nil
}

// ExploreFull is ExploreFullContext without cancellation.
func (e *Engine) ExploreFull(q Query, key Key, buckets, refineLimit int) (*GroupExploration, error) {
	return e.ExploreFullContext(context.Background(), q, key, buckets, refineLimit) //maprat:allow(ctxflow) compat wrapper: preserves the pre-context API
}

// ExploreFullContext computes the whole per-group exploration — stats,
// related groups and refinements — from one plan fetch. The resolve →
// gather → cube stages come from the materialization tier, so exploring a
// group right after its Explain does no pipeline work at all. refineLimit
// caps the refinement list (0 = all); a negative refineLimit skips the
// refinement stage entirely. Both the HTML front-end and the /api/v1
// handlers consume this one call.
func (e *Engine) ExploreFullContext(ctx context.Context, q Query, key Key, buckets, refineLimit int) (*GroupExploration, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q, err := e.pinQuery(q)
	if err != nil {
		return nil, err
	}
	p, err := e.planFor(ctx, q, e.groupCubeConfig(key))
	if err != nil {
		return nil, err
	}
	return ExplorePlan(ctx, p, q, key, buckets, refineLimit)
}

// ExplorePlan computes the per-group exploration from an
// already-materialized plan — the plan-parameterized core of
// ExploreFullContext, exported for plan-assembling serving tiers.
func ExplorePlan(ctx context.Context, p *store.Plan, q Query, key Key, buckets, refineLimit int) (*GroupExploration, error) {
	g, ok := p.Cube.Group(key)
	if !ok {
		return nil, groupNotFound(key, q)
	}
	ge := &GroupExploration{Stats: explore.Stats(p.Tuples, g, buckets)}
	for _, rg := range explore.Related(p.Cube, g) {
		ge.Related = append(ge.Related, groupResult(rg, len(p.Tuples)))
	}
	if refineLimit < 0 {
		return ge, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ge.Refinements = refinementsFor(p, g, refineLimit)
	return ge, nil
}

// refinementsFor converts a group's drill-deeper children into
// Refinement results, capped at limit (0 = all) — the one construction
// both ExploreFullContext and RefineGroupContext serve.
func refinementsFor(p *store.Plan, g *cube.Group, limit int) []Refinement {
	var out []Refinement
	for _, ref := range explore.Refinements(p.Cube, g) {
		out = append(out, Refinement{
			Group: groupResult(ref.Group, len(p.Tuples)),
			Added: ref.Added.String(),
			Delta: ref.Delta,
		})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Refinement pairs a drill-deeper group (the parent's description plus
// one more attribute-value pair) with its behavioural deviation.
type Refinement struct {
	Group GroupResult
	// Added names the attribute the refinement constrains beyond the
	// parent ("gender", "age", "occupation", "state").
	Added string
	// Delta is the refinement's mean minus the parent's mean.
	Delta float64
}

// RefineGroup returns the most deviant drill-deeper refinements of a
// group for the query, capped at limit (0 = all) — the paper's "drill
// deeper" exploration beyond city statistics.
func (e *Engine) RefineGroup(q Query, key Key, limit int) ([]Refinement, error) {
	return e.RefineGroupContext(context.Background(), q, key, limit) //maprat:allow(ctxflow) compat wrapper: preserves the pre-context API
}

// RefineGroupContext is RefineGroup with cancellation between the
// pipeline's stages, served from the materialization tier like
// ExploreGroupContext.
func (e *Engine) RefineGroupContext(ctx context.Context, q Query, key Key, limit int) ([]Refinement, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q, err := e.pinQuery(q)
	if err != nil {
		return nil, err
	}
	p, err := e.planFor(ctx, q, e.groupCubeConfig(key))
	if err != nil {
		return nil, err
	}
	return RefinePlan(p, q, key, limit)
}

// RefinePlan computes a group's drill-deeper refinements from an
// already-materialized plan — the plan-parameterized core of
// RefineGroupContext, exported for plan-assembling serving tiers.
func RefinePlan(p *store.Plan, q Query, key Key, limit int) ([]Refinement, error) {
	g, ok := p.Cube.Group(key)
	if !ok {
		return nil, groupNotFound(key, q)
	}
	return refinementsFor(p, g, limit), nil
}

// DrillMine runs the paper's drill-down one level further than statistics:
// given a geo-anchored explanation group, it mines the best city-anchored
// sub-groups *inside* that group ("if the original geo condition was over
// a state, the drill down provides city level" views). The returned
// TaskResult's groups all carry a city condition.
func (e *Engine) DrillMine(q Query, parent Key, task Task, s Settings) (*TaskResult, error) {
	return e.DrillMineContext(context.Background(), q, parent, task, s) //maprat:allow(ctxflow) compat wrapper: preserves the pre-context API
}

// DrillMineContext is DrillMine with cancellation threaded through the
// sub-problem's RHE run. The parent cube comes from the materialization
// tier; only the city-anchored sub-cube over the parent's tuples is built
// per call.
func (e *Engine) DrillMineContext(ctx context.Context, q Query, parent Key, task Task, s Settings) (*TaskResult, error) {
	if s.K == 0 {
		s = DefaultSettings()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q, err := e.pinQuery(q)
	if err != nil {
		return nil, err
	}
	p, err := e.planFor(ctx, q, e.groupCubeConfig(parent))
	if err != nil {
		return nil, err
	}
	return DrillPlan(ctx, p, q, parent, task, s)
}

// DrillPlan mines the city-anchored sub-groups inside a parent group from
// an already-materialized plan — the plan-parameterized core of
// DrillMineContext, exported for plan-assembling serving tiers. Settings
// must already be defaulted (s.K > 0).
func DrillPlan(ctx context.Context, p *store.Plan, q Query, parent Key, task Task, s Settings) (*TaskResult, error) {
	if s.K == 0 {
		s = DefaultSettings()
	}
	pg, ok := p.Cube.Group(parent)
	if !ok {
		return nil, groupNotFound(parent, q)
	}

	// The sub-problem operates on the parent's tuples only; candidates are
	// city-anchored cells of that slice.
	sub := make([]cube.Tuple, 0, len(pg.Members))
	for _, ti := range pg.Members {
		sub = append(sub, p.Tuples[ti])
	}
	cfg := cube.Config{
		RequireCity: true,
		MinSupport:  max(3, len(sub)/50),
		MaxAVPairs:  parent.NumConstrained() + 2,
		SkipApex:    true,
	}
	c := cube.Build(sub, cfg)
	prob, err := core.NewProblem(task, c, s)
	if err != nil {
		return nil, fmt.Errorf("maprat: drill mining: %w", err)
	}
	sol, err := prob.SolveRHECtx(ctx)
	if err != nil {
		return nil, err
	}
	tr := &TaskResult{
		Task:            task,
		Objective:       sol.Objective,
		Coverage:        sol.Coverage,
		Feasible:        sol.Feasible,
		Evals:           sol.Evals,
		RelaxedCoverage: s.Coverage,
	}
	for _, gi := range sol.Groups {
		tr.Groups = append(tr.Groups, groupResult(&c.Groups[gi], len(sub)))
	}
	return tr, nil
}

// StateOverview is one row of the browse-mode choropleth: a state's
// overall rating behaviour across the whole log (served from the store's
// per-epoch state aggregates, so it is O(states · epochs) and exact at
// every epoch).
type StateOverview struct {
	State string
	Agg   Agg
}

// BrowseStates returns every state's whole-log aggregate at the latest
// epoch, sorted by rating count descending. It requires the store to
// have been opened with precomputation (the default); otherwise it
// returns nil.
func (e *Engine) BrowseStates() []StateOverview {
	out, err := e.BrowseStatesAt(0)
	if err != nil {
		return nil
	}
	return out
}

// BrowseStatesAt is BrowseStates pinned to an epoch (0 = latest). The
// rows are exactly the state-only groups the global cube would surface
// at that epoch: same aggregates, same minimum-support cut. A future
// epoch is ErrFutureEpoch; a store opened without precomputation yields
// (nil, nil), matching BrowseStates.
func (e *Engine) BrowseStatesAt(epoch uint64) ([]StateOverview, error) {
	ep, err := e.resolveEpoch(epoch)
	if err != nil {
		return nil, err
	}
	aggs, minSupport, ok := e.st.StateAggsAt(ep)
	if !ok {
		return nil, nil
	}
	var out []StateOverview
	for i, a := range aggs {
		if a.Count == 0 || a.Count < minSupport {
			continue
		}
		out = append(out, StateOverview{State: cube.StateCode(int16(i)), Agg: a})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Agg.Count != out[b].Agg.Count {
			return out[a].Agg.Count > out[b].Agg.Count
		}
		return out[a].State < out[b].State
	})
	return out, nil
}

// EvolutionPoint is one time-slider position: the explanation mined from
// one window of the rating log.
type EvolutionPoint struct {
	Window      TimeWindow
	Explanation *Explanation
	// Err records windows that could not be mined (e.g. no ratings);
	// the slider renders them as gaps rather than failing the whole
	// sweep.
	Err error
}

// Evolution mines the same query across consecutive yearly windows — the
// §3.1 time slider ("observe reviewer groups ... and how they change over
// time").
func (e *Engine) Evolution(req ExplainRequest) ([]EvolutionPoint, error) {
	return e.EvolutionContext(context.Background(), req) //maprat:allow(ctxflow) compat wrapper: preserves the pre-context API
}

// EvolutionContext is Evolution with cancellation: the sweep stops at the
// first window whose mining run is cut short by ctx. The window sweep is
// anchored at the query's (resolved) epoch: at the latest epoch a batch
// of fresh ratings extends the time range, so the sweep gains a live
// window covering the newest data, while a pinned epoch replays exactly
// the windows that epoch had.
func (e *Engine) EvolutionContext(ctx context.Context, req ExplainRequest) ([]EvolutionPoint, error) {
	// Resolve the epoch once and forward the resolved value to every
	// window's Explain: if an append lands mid-sweep, re-resolving a
	// latest (0) epoch per point would mine later windows at a newer
	// epoch than the one the sweep's bounds came from — one response
	// must be internally consistent at a single epoch. The per-point
	// Explanations still echo the epoch the caller asked for, matching
	// ExplainContext's contract.
	origEpoch := req.Query.Epoch
	q, err := e.pinQuery(req.Query)
	if err != nil {
		return nil, err
	}
	lo, hi := e.st.TimeRangeAt(q.Epoch)
	w := req.Query.Window
	if w.BoundedFrom() {
		lo = w.From
	}
	if w.BoundedTo() {
		hi = w.To
	}
	windows := explore.YearWindows(lo, hi)
	if len(windows) == 0 {
		return nil, fmt.Errorf("maprat: empty time range")
	}
	out := make([]EvolutionPoint, 0, len(windows))
	for _, win := range windows {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		r := req
		r.Query = q
		r.Query.Window = win
		ex, err := e.ExplainContext(ctx, r)
		if ex != nil {
			ex.Query.Epoch = origEpoch
		}
		out = append(out, EvolutionPoint{Window: win, Explanation: ex, Err: err})
	}
	return out, nil
}

// RenderExploration converts an explanation into the paper's set of
// choropleth maps (one per sub-problem), ready for SVG or terminal
// rendering. The engine method delegates here; the package-level form
// serves front-ends rendering explanations mined elsewhere (e.g. behind
// a coordinator).
func (e *Engine) RenderExploration(ex *Explanation) *viz.Exploration {
	return RenderExploration(ex)
}

// RenderExploration is the package-level form of
// (*Engine).RenderExploration — it depends only on the explanation.
func RenderExploration(ex *Explanation) *viz.Exploration {
	out := &viz.Exploration{Query: ex.Query.String()}
	for _, tr := range ex.Results {
		m := viz.Map{Title: taskTitle(tr.Task, ex)}
		for _, g := range tr.Groups {
			m.Shades = append(m.Shades, viz.Shade{
				State:   g.State,
				Mean:    g.Agg.Mean(),
				Support: g.Agg.Count,
				Label:   g.Phrase,
				Icons:   g.Icons,
			})
		}
		out.Maps = append(out.Maps, m)
	}
	return out
}

func taskTitle(t Task, ex *Explanation) string {
	name := "Similarity Mining (reviewers who agree)"
	if t == DiversityMining {
		name = "Diversity Mining (reviewers who disagree)"
	}
	return fmt.Sprintf("%s — %s (%d ratings, overall μ=%.2f)",
		name, ex.Query.String(), ex.NumRatings, ex.Overall.Mean())
}
