package maprat

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/model"
)

var (
	ingestDSOnce sync.Once
	ingestDSMemo *Dataset
)

// ingestDataset memoizes one dataset for the ingest suite; engines over
// it are opened per test because appends mutate engine state.
func ingestDataset(t testing.TB) *Dataset {
	t.Helper()
	ingestDSOnce.Do(func() {
		ds, err := Generate(SmallGenConfig())
		if err != nil {
			panic(err)
		}
		ingestDSMemo = ds
	})
	return ingestDSMemo
}

// ingestEngine opens a fresh engine with live ingestion armed on a
// per-test WAL.
func ingestEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := Open(ingestDataset(t), nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	epoch, err := e.EnableIngest(filepath.Join(t.TempDir(), "ingest.wal"))
	if err != nil {
		t.Fatalf("EnableIngest: %v", err)
	}
	if epoch != 1 {
		t.Fatalf("fresh WAL replayed to epoch %d, want 1", epoch)
	}
	return e
}

// ratingsFor builds n valid ratings for one item, timestamped just past
// the log's maximum.
func ratingsFor(t testing.TB, e *Engine, itemID, n int) []model.Rating {
	t.Helper()
	ds := ingestDataset(t)
	_, maxUnix := e.TimeRange()
	out := make([]model.Rating, n)
	for i := range out {
		out[i] = model.Rating{
			UserID: ds.Users[i%len(ds.Users)].ID,
			ItemID: itemID,
			Score:  5,
			Unix:   maxUnix + int64(i+1),
		}
	}
	return out
}

func itemIDByTitle(t testing.TB, title string) int {
	t.Helper()
	items := ingestDataset(t).ItemsByTitle(title)
	if len(items) == 0 {
		t.Fatalf("fixture movie %q missing", title)
	}
	return items[0].ID
}

// explainJSON renders an explanation with the nondeterministic fields
// (timing, cache provenance) zeroed, for byte-level comparison.
func explainJSON(t testing.TB, ex *Explanation) []byte {
	t.Helper()
	c := ex.Clone()
	c.Elapsed = 0
	c.FromCache = false
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal explanation: %v", err)
	}
	return b
}

func TestAppendBumpsEpochAndFingerprint(t *testing.T) {
	e := ingestEngine(t)
	fp1 := e.Fingerprint()
	if e.CurrentEpoch() != 1 {
		t.Fatalf("fresh engine at epoch %d", e.CurrentEpoch())
	}
	epoch, err := e.AppendRatings(context.Background(), ratingsFor(t, e, itemIDByTitle(t, "Toy Story"), 3))
	if err != nil {
		t.Fatalf("AppendRatings: %v", err)
	}
	if epoch != 2 || e.CurrentEpoch() != 2 {
		t.Fatalf("epoch = %d (engine %d), want 2", epoch, e.CurrentEpoch())
	}
	// The live fingerprint rolls; the pinned epoch-1 fingerprint is the
	// pre-ingestion value, so previously issued pinned ETags stay valid.
	if e.Fingerprint() == fp1 {
		t.Fatal("append did not roll the fingerprint")
	}
	if e.FingerprintAt(1) != fp1 {
		t.Fatal("pinned epoch-1 fingerprint changed across an append")
	}
	if e.FingerprintAt(2) != e.Fingerprint() {
		t.Fatal("latest fingerprint is not the current epoch's")
	}
}

func TestAppendValidation(t *testing.T) {
	e := ingestEngine(t)
	ctx := context.Background()
	item := itemIDByTitle(t, "Toy Story")
	good := ratingsFor(t, e, item, 1)

	cases := []struct {
		name string
		mut  func(r model.Rating) model.Rating
	}{
		{"unknown user", func(r model.Rating) model.Rating { r.UserID = 99999999; return r }},
		{"unknown item", func(r model.Rating) model.Rating { r.ItemID = 99999999; return r }},
		{"score out of range", func(r model.Rating) model.Rating { r.Score = 9; return r }},
		{"missing timestamp", func(r model.Rating) model.Rating { r.Unix = 0; return r }},
	}
	for _, tc := range cases {
		if _, err := e.AppendRatings(ctx, []model.Rating{tc.mut(good[0])}); !errors.Is(err, ErrBadRating) {
			t.Errorf("%s: err = %v, want ErrBadRating", tc.name, err)
		}
	}
	if _, err := e.AppendRatings(ctx, nil); !errors.Is(err, ErrBadRating) {
		t.Errorf("empty batch: err = %v, want ErrBadRating", err)
	}
	// The whole batch is rejected: one bad rating blocks the good one.
	if _, err := e.AppendRatings(ctx, []model.Rating{good[0], tc0bad(good[0])}); !errors.Is(err, ErrBadRating) {
		t.Errorf("mixed batch: err = %v, want ErrBadRating", err)
	}
	if e.CurrentEpoch() != 1 {
		t.Fatalf("rejected batches advanced the epoch to %d", e.CurrentEpoch())
	}

	// An engine without EnableIngest refuses writes outright.
	plain := testEngine(t)
	if _, err := plain.AppendRatings(ctx, good); !errors.Is(err, ErrIngestDisabled) {
		t.Errorf("disabled engine: err = %v, want ErrIngestDisabled", err)
	}
}

func tc0bad(r model.Rating) model.Rating {
	r.Score = 0
	return r
}

func TestFutureEpochRejected(t *testing.T) {
	e := ingestEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	q.Epoch = 99
	if _, err := e.Explain(ExplainRequest{Query: q}); !errors.Is(err, ErrFutureEpoch) {
		t.Fatalf("err = %v, want ErrFutureEpoch", err)
	}
	if _, err := e.BrowseStatesAt(99); !errors.Is(err, ErrFutureEpoch) {
		t.Fatalf("browse err = %v, want ErrFutureEpoch", err)
	}
}

// TestPinnedReadByteIdentical is the determinism acceptance check: a
// read pinned at epoch 1 returns byte-identical results before and after
// later appends land — even with every cache disabled, so the identity
// comes from the epoch watermark, not from a cached payload.
func TestPinnedReadByteIdentical(t *testing.T) {
	e := ingestEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	q.Epoch = 1
	req := ExplainRequest{Query: q, DisableCache: true}

	before, err := e.Explain(req)
	if err != nil {
		t.Fatalf("Explain before append: %v", err)
	}
	beforeJSON := explainJSON(t, before)

	item := itemIDByTitle(t, "Toy Story")
	for i := 0; i < 2; i++ {
		if _, err := e.AppendRatings(context.Background(), ratingsFor(t, e, item, 3)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	after, err := e.Explain(req)
	if err != nil {
		t.Fatalf("Explain after append: %v", err)
	}
	if !bytes.Equal(beforeJSON, explainJSON(t, after)) {
		t.Fatal("epoch-1 pinned explanation changed across appends")
	}

	// The latest view, by contrast, sees the 6 new ratings.
	qLatest := q
	qLatest.Epoch = 0
	latest, err := e.Explain(ExplainRequest{Query: qLatest, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if latest.NumRatings != before.NumRatings+6 {
		t.Fatalf("latest NumRatings = %d, want %d", latest.NumRatings, before.NumRatings+6)
	}
}

// TestPlanCacheSurvivesDisjointAppend: an append seals only the plans
// whose item set intersects the batch; a plan for an untouched movie
// keeps serving warm hits at the new epoch.
func TestPlanCacheSurvivesDisjointAppend(t *testing.T) {
	e := ingestEngine(t)
	toy := mustQuery(t, e, `movie:"Toy Story"`)
	heat := mustQuery(t, e, `movie:"Heat"`)
	for _, q := range []Query{toy, heat} {
		if _, err := e.Explain(ExplainRequest{Query: q}); err != nil {
			t.Fatalf("prime %s: %v", q, err)
		}
	}
	ps := e.PlanStats()
	if ps.Invalidated != 0 || ps.Surviving != 0 {
		t.Fatalf("counters before append: %+v", ps)
	}
	buildsBefore := ps.Builds

	if _, err := e.AppendRatings(context.Background(), ratingsFor(t, e, itemIDByTitle(t, "Toy Story"), 2)); err != nil {
		t.Fatal(err)
	}
	ps = e.PlanStats()
	if ps.Invalidated < 1 {
		t.Fatalf("append touching Toy Story sealed no plans: %+v", ps)
	}
	if ps.Surviving < 1 {
		t.Fatalf("append sealed every plan — invalidation is not surgical: %+v", ps)
	}

	// Heat at the new epoch rides the surviving plan: no new build.
	if _, err := e.Explain(ExplainRequest{Query: heat}); err != nil {
		t.Fatal(err)
	}
	if got := e.PlanStats().Builds; got != buildsBefore {
		t.Fatalf("untouched plan rebuilt: builds %d -> %d", buildsBefore, got)
	}
	// Toy Story at the new epoch must rebuild against the fresh data.
	if _, err := e.Explain(ExplainRequest{Query: toy}); err != nil {
		t.Fatal(err)
	}
	if got := e.PlanStats().Builds; got != buildsBefore+1 {
		t.Fatalf("touched plan did not rebuild: builds %d -> %d", buildsBefore, got)
	}

	st, on := e.IngestStats()
	if !on {
		t.Fatal("IngestStats off on an armed engine")
	}
	if st.Epoch != 2 || st.Batches != 1 || st.Tuples != 2 {
		t.Fatalf("ingest stats = %+v", st)
	}
	if st.PlansInvalidated != ps.Invalidated || st.PlansSurviving != ps.Surviving {
		t.Fatalf("ingest stats disagree with plan stats: %+v vs %+v", st, ps)
	}
}

// TestWALCrashRecovery is the crash acceptance check: a second engine
// replaying the same WAL lands on exactly the pre-crash epoch and serves
// byte-identical results.
func TestWALCrashRecovery(t *testing.T) {
	ds := ingestDataset(t)
	wal := filepath.Join(t.TempDir(), "ingest.wal")
	e1, err := Open(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.EnableIngest(wal); err != nil {
		t.Fatal(err)
	}
	item := itemIDByTitle(t, "Toy Story")
	for i := 0; i < 3; i++ {
		if _, err := e1.AppendRatings(context.Background(), ratingsFor(t, e1, item, 2)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	q := mustQuery(t, e1, `movie:"Toy Story"`)
	req := ExplainRequest{Query: q, DisableCache: true}
	want, err := e1.Explain(req)
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": abandon e1, rebuild from the dataset + WAL alone.
	e2, err := Open(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := e2.EnableIngest(wal)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if epoch != 4 {
		t.Fatalf("replayed to epoch %d, want the pre-crash 4", epoch)
	}
	if e2.Fingerprint() != e1.Fingerprint() {
		t.Fatal("replayed engine's fingerprint differs")
	}
	got, err := e2.Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(explainJSON(t, want), explainJSON(t, got)) {
		t.Fatal("replayed engine serves different results")
	}
}

// TestEvolutionGainsLiveWindow: a batch of fresh ratings extends the
// time range, so the latest-epoch slider gains a live window while a
// pinned sweep replays exactly the windows its epoch had.
func TestEvolutionGainsLiveWindow(t *testing.T) {
	e := ingestEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	before, err := e.Evolution(ExplainRequest{Query: q})
	if err != nil {
		t.Fatal(err)
	}

	// Land the batch two years past the newest rating.
	ds := ingestDataset(t)
	_, maxUnix := e.TimeRange()
	batch := []model.Rating{{
		UserID: ds.Users[0].ID,
		ItemID: itemIDByTitle(t, "Toy Story"),
		Score:  4,
		Unix:   maxUnix + 2*365*24*3600,
	}}
	if _, err := e.AppendRatings(context.Background(), batch); err != nil {
		t.Fatal(err)
	}

	after, err := e.Evolution(ExplainRequest{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) {
		t.Fatalf("live sweep has %d windows, want more than the %d pre-append", len(after), len(before))
	}
	pinnedQ := q
	pinnedQ.Epoch = 1
	pinned, err := e.Evolution(ExplainRequest{Query: pinnedQ})
	if err != nil {
		t.Fatal(err)
	}
	if len(pinned) != len(before) {
		t.Fatalf("pinned sweep has %d windows, want the original %d", len(pinned), len(before))
	}
}

// TestAppendWhileMining races the write path against concurrent readers;
// run under -race it pins the locking discipline end to end.
func TestAppendWhileMining(t *testing.T) {
	e := ingestEngine(t)
	item := itemIDByTitle(t, "Toy Story")
	q := mustQuery(t, e, `movie:"Toy Story"`)
	pinned := q
	pinned.Epoch = 1

	stop := make(chan struct{})
	var readers sync.WaitGroup
	errs := make(chan error, 64)
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := ExplainRequest{Query: q}
				if r%2 == 1 {
					req.Query = pinned
				}
				if i%3 == 0 {
					req.DisableCache = true
				}
				if _, err := e.Explain(req); err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if _, err := e.BrowseStatesAt(0); err != nil {
					errs <- fmt.Errorf("reader %d browse: %w", r, err)
					return
				}
			}
		}(r)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.AppendRatings(context.Background(), ratingsFor(t, e, item, 3)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if e.CurrentEpoch() != 6 {
		t.Fatalf("epoch = %d after 5 appends, want 6", e.CurrentEpoch())
	}
}
