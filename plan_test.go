package maprat

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/cube"
	"repro/internal/store"
)

// TestPlanReuseAcrossPipelines is the ISSUE's core acceptance: after one
// Explain, ExploreGroup, RefineGroup and DrillMine on the same query do
// zero query-resolution and zero cube-build work — the materialized plan
// serves all of them.
func TestPlanReuseAcrossPipelines(t *testing.T) {
	e := freshEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)

	ex, err := e.Explain(ExplainRequest{Query: q, Tasks: []Task{SimilarityMining}})
	if err != nil {
		t.Fatal(err)
	}
	key := ex.Result(SimilarityMining).Groups[0].Key
	after := e.PlanStats()
	if after.Builds != 1 {
		t.Fatalf("Explain built %d plans, want 1 (stats %+v)", after.Builds, after)
	}

	if _, _, err := e.ExploreGroup(q, key, 8); err != nil {
		t.Fatalf("ExploreGroup: %v", err)
	}
	if _, err := e.RefineGroup(q, key, 5); err != nil {
		t.Fatalf("RefineGroup: %v", err)
	}
	if _, err := e.DrillMine(q, key, SimilarityMining, DefaultSettings()); err != nil {
		t.Fatalf("DrillMine: %v", err)
	}

	st := e.PlanStats()
	if st.Builds != 1 {
		t.Errorf("Explore/Refine/DrillMine re-built the plan: builds = %d, want 1", st.Builds)
	}
	if st.Hits < 3 {
		t.Errorf("plan hits = %d, want ≥ 3 (one per follow-up interaction)", st.Hits)
	}
	if st.Tuples == 0 || st.Bytes == 0 {
		t.Errorf("budget accounting empty: %+v", st)
	}
}

// TestPlanDisabledEngineStillWorks drives every pipeline with the
// materialization tier off; planFor must fall back to fresh builds.
func TestPlanDisabledEngineStillWorks(t *testing.T) {
	ds, err := Generate(SmallGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Store.PlanCacheTuples = 0
	e, err := Open(ds, &opts)
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, e, `movie:"Toy Story"`)
	ex, err := e.Explain(ExplainRequest{Query: q, Tasks: []Task{SimilarityMining}})
	if err != nil {
		t.Fatal(err)
	}
	key := ex.Result(SimilarityMining).Groups[0].Key
	if _, _, err := e.ExploreGroup(q, key, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RefineGroup(q, key, 5); err != nil {
		t.Fatal(err)
	}
	if st := e.PlanStats(); st != (store.PlanStats{}) {
		t.Errorf("disabled tier reported stats: %+v", st)
	}
}

// TestMaterializationDeterminism: mined Solutions for a fixed seed are
// byte-identical with the materialization tier on and off, and the
// exploration payloads match too.
func TestMaterializationDeterminism(t *testing.T) {
	ds, err := Generate(SmallGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	on, err := Open(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	offOpts := DefaultOptions()
	offOpts.Store.PlanCacheTuples = 0
	offOpts.Store.CacheSize = 0
	off, err := Open(ds, &offOpts)
	if err != nil {
		t.Fatal(err)
	}

	for _, qs := range []string{`movie:"Toy Story"`, `actor:"Tom Hanks"`} {
		q := mustQuery(t, on, qs)
		req := ExplainRequest{Query: q}
		exOn, err := on.Explain(req)
		if err != nil {
			t.Fatalf("%s (tier on): %v", qs, err)
		}
		exOff, err := off.Explain(req)
		if err != nil {
			t.Fatalf("%s (tier off): %v", qs, err)
		}
		if !reflect.DeepEqual(stripVolatile(exOn), stripVolatile(exOff)) {
			t.Errorf("%s: explanations diverge with the tier on/off:\non  %+v\noff %+v",
				qs, stripVolatile(exOn), stripVolatile(exOff))
		}

		key := exOn.Results[0].Groups[0].Key
		stOn, relOn, err := on.ExploreGroup(q, key, 8)
		if err != nil {
			t.Fatal(err)
		}
		stOff, relOff, err := off.ExploreGroup(q, key, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stOn, stOff) || !reflect.DeepEqual(relOn, relOff) {
			t.Errorf("%s: exploration diverges with the tier on/off", qs)
		}
	}
}

// TestExplainCacheHitIsDeepCopy is the regression test for the
// cache-aliasing bug: a caller mutating its Explanation must not poison
// the cached value other callers receive.
func TestExplainCacheHitIsDeepCopy(t *testing.T) {
	e := freshEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	req := ExplainRequest{Query: q, Tasks: []Task{SimilarityMining}}

	first, err := e.Explain(req) // leader: its value IS the cached one
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := append([]int(nil), first.ItemIDs...)
	wantQuery := first.Query.String()
	wantPhrase := first.Results[0].Groups[0].Phrase
	wantGroups := len(first.Results[0].Groups)

	// Maul the leader's copy in every aliased dimension.
	first.ItemIDs[0] = -999
	first.Query.Preds[0].Value = "poisoned"
	first.Results[0].Groups[0].Phrase = "poisoned"
	first.Results[0].Groups = first.Results[0].Groups[:0]
	first.Results = first.Results[:0]

	second, err := e.Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Fatal("second fetch missed the cache")
	}
	if !reflect.DeepEqual(second.ItemIDs, wantIDs) {
		t.Errorf("ItemIDs poisoned through the cache: %v", second.ItemIDs)
	}
	if got := second.Query.String(); got != wantQuery {
		t.Errorf("Query.Preds poisoned through the cache: %q, want %q", got, wantQuery)
	}
	if len(second.Results) != 1 || len(second.Results[0].Groups) != wantGroups {
		t.Fatalf("Results/Groups poisoned through the cache: %+v", second.Results)
	}
	if got := second.Results[0].Groups[0].Phrase; got != wantPhrase {
		t.Errorf("Phrase = %q, want %q", got, wantPhrase)
	}

	// And a hit's copy must not poison the next hit either.
	second.Results[0].Groups[0].Phrase = "poisoned again"
	third, err := e.Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := third.Results[0].Groups[0].Phrase; got != wantPhrase {
		t.Errorf("hit-to-hit aliasing: Phrase = %q, want %q", got, wantPhrase)
	}
}

// TestConcurrentExploresBuildPlanOnce is the -race check that concurrent
// first-touch interactions on one query collapse into a single plan build
// through the tier's singleflight front.
func TestConcurrentExploresBuildPlanOnce(t *testing.T) {
	e := freshEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	// The CA state group materializes for every Toy-Story-scale query.
	key := cube.KeyAll.With(cube.State, cube.StateIndex("CA"))

	const callers = 12
	var wg sync.WaitGroup
	stats := make([]*GroupStats, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			stats[i], _, errs[i] = e.ExploreGroup(q, key, 8)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(*stats[i], *stats[0]) {
			t.Fatalf("caller %d diverged", i)
		}
	}
	if st := e.PlanStats(); st.Builds != 1 {
		t.Fatalf("burst of %d explores built %d plans, want 1 (stats %+v)", callers, st.Builds, st)
	}
}

// TestPlanSharedBetweenExplainAndFrameworkMode: a framework-mode
// (un-anchored) request uses a different cube config and therefore a
// different plan — the tier must key them apart.
func TestPlanKeyedByCubeConfig(t *testing.T) {
	e := freshEngine(t)
	q := mustQuery(t, e, `movie:"The Twilight Saga: Eclipse"`)
	s := DefaultSettings()
	s.K = 2
	s.Coverage = 0.10
	if _, err := e.Explain(ExplainRequest{Query: q, Settings: s, Tasks: []Task{DiversityMining}}); err != nil {
		t.Fatal(err)
	}
	free := cube.Config{RequireState: false, MinSupport: 8, MaxAVPairs: 2, SkipApex: true}
	if _, err := e.Explain(ExplainRequest{Query: q, Settings: s, Tasks: []Task{DiversityMining}, CubeConfig: &free}); err != nil {
		t.Fatal(err)
	}
	if st := e.PlanStats(); st.Builds != 2 {
		t.Errorf("distinct cube configs shared a plan: builds = %d, want 2", st.Builds)
	}
}
