package maprat

// One benchmark per experiment in DESIGN.md's index (E1–E9), mirroring the
// workloads of internal/bench so `go test -bench=.` regenerates the
// latency side of every figure/claim. Benchmarks default to the small
// (80k-rating) dataset so the suite stays minutes-fast; set
// MAPRAT_BENCH_SCALE=full for the MovieLens-1M scale the paper demos on
// (cmd/maprat-bench always uses full scale).

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/query"
	"repro/internal/viz"
)

var (
	benchOnce sync.Once
	benchDS   *Dataset
	benchEng  *Engine
)

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	benchOnce.Do(func() {
		cfg := SmallGenConfig()
		if os.Getenv("MAPRAT_BENCH_SCALE") == "full" {
			cfg = DefaultGenConfig()
		}
		var err error
		benchDS, err = Generate(cfg)
		if err != nil {
			panic(err)
		}
		benchEng, err = Open(benchDS, nil)
		if err != nil {
			panic(err)
		}
	})
	return benchEng
}

func benchQuery(b *testing.B, e *Engine, s string) Query {
	b.Helper()
	q, err := e.ParseQuery(s)
	if err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return q
}

// BenchmarkE1_QueryResolution measures Figure 1's query forms: parse,
// resolve to items, gather R_I.
func BenchmarkE1_QueryResolution(b *testing.B) {
	e := benchEngine(b)
	cases := []struct {
		name string
		q    string
	}{
		{"title", `movie:"Toy Story"`},
		{"actor", `actor:"Tom Hanks"`},
		{"conjunction", `director:"Steven Spielberg" AND genre:Thriller`},
		{"disjunction", `movie:"The Lord of the Rings: The Two Towers" OR movie:"Jaws"`},
		{"genre", `genre:Animation`},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			q := benchQuery(b, e, c.q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids, err := query.Resolve(e.Store(), q)
				if err != nil || len(ids) == 0 {
					b.Fatalf("resolve: %v (%d items)", err, len(ids))
				}
				tuples := e.Store().TuplesForItems(ids, q.Window)
				if len(tuples) == 0 {
					b.Fatal("no tuples")
				}
			}
		})
	}
}

// BenchmarkE2_SimilarityMining measures the Figure-2 pipeline end to end
// (resolve → cube → RHE), cache disabled.
func BenchmarkE2_SimilarityMining(b *testing.B) {
	e := benchEngine(b)
	q := benchQuery(b, e, `movie:"Toy Story"`)
	req := ExplainRequest{Query: q, Tasks: []Task{SimilarityMining}, DisableCache: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_Exploration measures the Figure-3 drill-down (stats,
// cities, timeline, related groups).
func BenchmarkE3_Exploration(b *testing.B) {
	e := benchEngine(b)
	q := benchQuery(b, e, `movie:"Toy Story"`)
	ex, err := e.Explain(ExplainRequest{Query: q, Tasks: []Task{SimilarityMining}})
	if err != nil {
		b.Fatal(err)
	}
	key := ex.Result(SimilarityMining).Groups[0].Key
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.ExploreGroup(q, key, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_DiversityMining measures the intro example: framework-mode
// DM on the polarized title.
func BenchmarkE4_DiversityMining(b *testing.B) {
	e := benchEngine(b)
	q := benchQuery(b, e, `movie:"The Twilight Saga: Eclipse"`)
	s := DefaultSettings()
	s.K = 2
	s.Coverage = 0.10
	free := cube.Config{RequireState: false, MinSupport: 10, MaxAVPairs: 2, SkipApex: true}
	req := ExplainRequest{
		Query: q, Settings: s, Tasks: []Task{DiversityMining},
		CubeConfig: &free, DisableCache: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_CachingAblation measures the §2.3 claim: the identical
// request cold (mining every time) vs warm (LRU result-cache hit).
func BenchmarkE5_CachingAblation(b *testing.B) {
	e := benchEngine(b)
	q := benchQuery(b, e, `actor:"Tom Hanks"`)
	b.Run("cold", func(b *testing.B) {
		req := ExplainRequest{Query: q, DisableCache: true}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Explain(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		req := ExplainRequest{Query: q}
		if _, err := e.Explain(req); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex, err := e.Explain(req)
			if err != nil {
				b.Fatal(err)
			}
			if !ex.FromCache {
				b.Fatal("expected cache hit")
			}
		}
	})
}

// benchProblem builds one solver instance outside the timed loop.
func benchProblem(b *testing.B, e *Engine, qs string, task Task) *core.Problem {
	b.Helper()
	q := benchQuery(b, e, qs)
	ids, err := query.Resolve(e.Store(), q)
	if err != nil || len(ids) == 0 {
		b.Fatalf("resolve: %v", err)
	}
	tuples := e.Store().TuplesForItems(ids, q.Window)
	cfg := AdaptCubeConfig(cube.DefaultConfig(), len(tuples))
	c := cube.Build(tuples, cfg)
	p, err := core.NewProblem(task, c, DefaultSettings())
	if err != nil {
		b.Fatalf("problem: %v", err)
	}
	return p
}

// BenchmarkE6_RHEvsBaselines compares the solvers on the identical SM
// instance (quality is reported by cmd/maprat-bench; this measures cost).
func BenchmarkE6_RHEvsBaselines(b *testing.B) {
	e := benchEngine(b)
	p := benchProblem(b, e, `movie:"Toy Story"`, SimilarityMining)
	b.Run("RHE", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if sol := p.SolveRHE(); !sol.Feasible {
				b.Fatal("infeasible")
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if sol := p.SolveGreedy(); !sol.Feasible {
				b.Fatal("infeasible")
			}
		}
	})
	b.Run("random", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if sol := p.SolveRandom(16); !sol.Feasible {
				b.Fatal("infeasible")
			}
		}
	})
}

// BenchmarkE7_Scalability sweeps RHE cost against the query's rating
// volume and against K.
func BenchmarkE7_Scalability(b *testing.B) {
	e := benchEngine(b)
	for _, qs := range []string{
		`movie:"Heat"`,
		`movie:"Toy Story"`,
		`actor:"Tom Hanks"`,
		`genre:Animation`,
		`genre:Drama`,
	} {
		p := benchProblem(b, e, qs, SimilarityMining)
		b.Run(fmt.Sprintf("ratings_%d", p.NumTuples()), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.SolveRHE()
			}
		})
	}
	for _, k := range []int{2, 3, 4, 6} {
		q := benchQuery(b, e, `actor:"Tom Hanks"`)
		ids, _ := query.Resolve(e.Store(), q)
		tuples := e.Store().TuplesForItems(ids, q.Window)
		c := cube.Build(tuples, AdaptCubeConfig(cube.DefaultConfig(), len(tuples)))
		s := DefaultSettings()
		s.K = k
		p, err := core.NewProblem(SimilarityMining, c, s)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("K_%d", k), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.SolveRHE()
			}
		})
	}
}

// BenchmarkE8_Rendering measures the visualization layer: SVG and ASCII
// choropleths for a full two-tab exploration.
func BenchmarkE8_Rendering(b *testing.B) {
	e := benchEngine(b)
	q := benchQuery(b, e, `movie:"Toy Story"`)
	ex, err := e.Explain(ExplainRequest{Query: q})
	if err != nil {
		b.Fatal(err)
	}
	v := e.RenderExploration(ex)
	b.Run("svg", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for m := range v.Maps {
				if len(v.Maps[m].SVG()) == 0 {
					b.Fatal("empty svg")
				}
			}
		}
	})
	b.Run("ascii", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(v.ASCII(true)) == 0 {
				b.Fatal("empty ascii")
			}
		}
	})
	b.Run("likert", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for m := 10; m <= 50; m++ {
				viz.Likert(float64(m) / 10)
			}
		}
	})
}

// BenchmarkE10_ParallelRestarts measures the worker-pool RHE through the
// public API: identical Solutions, wall clock scaling with Workers
// (workers=0 is the GOMAXPROCS default).
func BenchmarkE10_ParallelRestarts(b *testing.B) {
	e := benchEngine(b)
	q := benchQuery(b, e, `genre:Drama`)
	for _, workers := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := DefaultSettings()
			s.Restarts = 32
			s.Workers = workers
			req := ExplainRequest{Query: q, Settings: s, Tasks: []Task{SimilarityMining}, DisableCache: true}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Explain(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11_ConcurrentIdenticalQueries measures the demo-booth hot
// spot end to end: many clients asking the same question at once, served
// by the cache with the singleflight layer collapsing the misses.
func BenchmarkE11_ConcurrentIdenticalQueries(b *testing.B) {
	e := benchEngine(b)
	q := benchQuery(b, e, `genre:Comedy`)
	req := ExplainRequest{Query: q}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Explain(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWarmExplore measures the materialization tier's payoff on the
// repeated-interaction hot path — a group-page click after an Explain.
// cold disables the tier, so every exploration re-runs the full resolve →
// gather → cube-build pipeline; warm fetches the materialized plan and
// only computes the Figure-3 statistics. The tier's promise is the warm
// path running at least several times faster.
func BenchmarkWarmExplore(b *testing.B) {
	e := benchEngine(b)
	q := benchQuery(b, e, `movie:"Toy Story"`)
	ex, err := e.Explain(ExplainRequest{Query: q, Tasks: []Task{SimilarityMining}})
	if err != nil {
		b.Fatal(err)
	}
	key := ex.Result(SimilarityMining).Groups[0].Key

	b.Run("cold", func(b *testing.B) {
		opts := DefaultOptions()
		opts.Store.Precompute = false
		opts.Store.PlanCacheTuples = 0
		cold, err := Open(benchDS, &opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := cold.ExploreGroup(q, key, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		// Materialize the plan outside the timed loop.
		if _, _, err := e.ExploreGroup(q, key, 8); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.ExploreGroup(q, key, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColdExplain measures the first-response latency the paper's
// interactivity rests on: a full Explain with every cache tier disabled, so
// the run pays query resolution, the R_I gather, candidate-cube
// construction and the RHE solve from scratch. This is the cold path the
// packed-key cube build and the bitset coverage engine target; the warm
// path is covered by BenchmarkWarmExplore.
func BenchmarkColdExplain(b *testing.B) {
	e := benchEngine(b)
	for _, c := range []struct {
		name string
		q    string
	}{
		{"title", `movie:"Toy Story"`},
		{"actor", `actor:"Tom Hanks"`},
		{"genre", `genre:Animation`},
	} {
		b.Run(c.name, func(b *testing.B) {
			q := benchQuery(b, e, c.q)
			req := ExplainRequest{Query: q, DisableCache: true}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Explain(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9_TimeSlider measures the §3.1 per-year mining sweep.
func BenchmarkE9_TimeSlider(b *testing.B) {
	e := benchEngine(b)
	q := benchQuery(b, e, `movie:"Toy Story"`)
	req := ExplainRequest{Query: q, Tasks: []Task{SimilarityMining}, DisableCache: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := e.Evolution(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) < 4 {
			b.Fatalf("only %d windows", len(points))
		}
	}
}
