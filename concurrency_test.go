package maprat

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// freshEngine builds an unshared engine so MineCount and cache state start
// at zero.
func freshEngine(t testing.TB) *Engine {
	t.Helper()
	ds, err := Generate(SmallGenConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	eng, err := Open(ds, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return eng
}

// stripVolatile zeroes the per-call fields so Explanations can be compared
// structurally.
func stripVolatile(ex *Explanation) Explanation {
	out := *ex
	out.Elapsed = 0
	out.FromCache = false
	return out
}

// TestConcurrentIdenticalExplainsMineOnce drives a burst of identical
// queries through one engine: every caller must get the same explanation,
// and the cache + singleflight layers must collapse the burst into a
// single mining run.
func TestConcurrentIdenticalExplainsMineOnce(t *testing.T) {
	e := freshEngine(t)
	q := mustQuery(t, e, `genre:Drama`)

	const callers = 12
	var wg sync.WaitGroup
	results := make([]*Explanation, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = e.Explain(ExplainRequest{Query: q})
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	want := stripVolatile(results[0])
	for i := 1; i < callers; i++ {
		if got := stripVolatile(results[i]); !reflect.DeepEqual(got, want) {
			t.Fatalf("caller %d diverged:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
	if mines := e.MineCount(); mines != 1 {
		t.Fatalf("burst of %d identical queries mined %d times, want 1", callers, mines)
	}
}

// TestConcurrentMixedExplains is the -race canary for the whole engine:
// distinct queries, drill-downs and browse calls in flight at once.
func TestConcurrentMixedExplains(t *testing.T) {
	e := freshEngine(t)
	queries := []string{
		`genre:Drama`,
		`genre:Comedy`,
		`movie:"Toy Story"`,
		`genre:Action`,
	}
	var wg sync.WaitGroup
	for rep := 0; rep < 3; rep++ {
		for _, qs := range queries {
			wg.Add(1)
			go func(qs string) {
				defer wg.Done()
				q, err := e.ParseQuery(qs)
				if err != nil {
					t.Errorf("parse %q: %v", qs, err)
					return
				}
				if _, err := e.Explain(ExplainRequest{Query: q}); err != nil {
					t.Errorf("explain %q: %v", qs, err)
				}
			}(qs)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if states := e.BrowseStates(); len(states) == 0 {
				t.Error("BrowseStates empty")
			}
		}()
	}
	wg.Wait()
}

// TestEngineWorkersMatchSequential runs the same request with a sequential
// and a parallel solver through the public API; the mined groups must be
// identical (Elapsed differs, so compare Results).
func TestEngineWorkersMatchSequential(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `genre:Drama`)

	seqReq := ExplainRequest{Query: q, DisableCache: true, Settings: DefaultSettings()}
	seqReq.Settings.Workers = 1
	seq, err := e.Explain(seqReq)
	if err != nil {
		t.Fatal(err)
	}
	parReq := ExplainRequest{Query: q, DisableCache: true, Settings: DefaultSettings()}
	parReq.Settings.Workers = 4
	par, err := e.Explain(parReq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Results, par.Results) {
		t.Fatalf("results diverged:\nseq %+v\npar %+v", seq.Results, par.Results)
	}
}

func TestExplainContextPreCancelled(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `genre:Drama`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.ExplainContext(ctx, ExplainRequest{Query: q, DisableCache: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestExplainContextCancelMidMine makes the mine expensive enough that the
// deadline fires inside RHE, and checks the context error surfaces.
func TestExplainContextCancelMidMine(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `genre:Drama`)
	s := DefaultSettings()
	s.Restarts = 100_000
	s.MaxIters = 100_000
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := e.ExplainContext(ctx, ExplainRequest{Query: q, Settings: s, DisableCache: true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestContextVariantsPreCancelled sweeps the remaining Context APIs with a
// dead context; all must refuse immediately.
func TestContextVariantsPreCancelled(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `genre:Drama`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	ex, err := e.Explain(ExplainRequest{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	key := ex.Results[0].Groups[0].Key

	if _, _, err := e.ExploreGroupContext(ctx, q, key, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("ExploreGroupContext: %v", err)
	}
	if _, err := e.RefineGroupContext(ctx, q, key, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("RefineGroupContext: %v", err)
	}
	if _, err := e.DrillMineContext(ctx, q, key, SimilarityMining, DefaultSettings()); !errors.Is(err, context.Canceled) {
		t.Errorf("DrillMineContext: %v", err)
	}
	if _, err := e.EvolutionContext(ctx, ExplainRequest{Query: q}); !errors.Is(err, context.Canceled) {
		t.Errorf("EvolutionContext: %v", err)
	}
}
