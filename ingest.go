package maprat

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cube"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/query"
)

// Errors reported by the live-append path.
var (
	// ErrIngestDisabled reports an append against an engine whose write
	// path was never armed with EnableIngest; the HTTP layer maps it to
	// 503 — the deployment may simply route writes elsewhere.
	ErrIngestDisabled = errors.New("maprat: ingestion not enabled")
	// ErrFutureEpoch reports a read pinned beyond the current epoch — a
	// client asking for data that does not exist yet (400, not 404: the
	// epoch is part of the request, not a resource).
	ErrFutureEpoch = errors.New("maprat: epoch not reached yet")
	// ErrBadRating reports an append batch that failed validation
	// (unknown user or item, score outside [1,5], missing timestamp).
	ErrBadRating = errors.New("maprat: invalid rating")
)

// ingestState is the engine's armed write path: the durable WAL, a
// channel-based writer admission (one batch applies at a time; file I/O
// must not run under a mutex), and monitoring counters.
type ingestState struct {
	wal *ingest.WAL
	// sem admits one writer; acquisition is ctx-aware so a canceled
	// request never queues a batch.
	sem chan struct{}

	batches      atomic.Uint64
	tuples       atomic.Uint64
	applyTotalNS atomic.Int64
	applyLastNS  atomic.Int64
}

// EnableIngest arms the engine's live-append path with a write-ahead log
// at path, creating the file if needed and replaying any batches a
// previous process logged — the store lands on exactly the pre-crash
// epoch, which is returned. Call it once, after Open/OpenSnapshot and
// before serving; it is not safe to race with requests.
func (e *Engine) EnableIngest(path string) (uint64, error) {
	if e.ingest != nil {
		return 0, fmt.Errorf("maprat: ingest already enabled")
	}
	base := e.st.CurrentEpoch()
	wal, batches, err := ingest.Open(path, base)
	if err != nil {
		return 0, err
	}
	var replayed uint64
	for _, b := range batches {
		tuples, err := e.joinBatch(b.Ratings)
		if err != nil {
			_ = wal.Close()
			return 0, fmt.Errorf("maprat: wal replay epoch %d: %w", b.Epoch, err)
		}
		if err := e.st.Append(b.Epoch, tuples); err != nil {
			_ = wal.Close()
			return 0, fmt.Errorf("maprat: wal replay epoch %d: %w", b.Epoch, err)
		}
		replayed += uint64(len(b.Ratings))
	}
	ig := &ingestState{wal: wal, sem: make(chan struct{}, 1)}
	ig.batches.Store(uint64(len(batches)))
	ig.tuples.Store(replayed)
	e.ingest = ig
	return e.st.CurrentEpoch(), nil
}

// AppendRatings validates and applies one batch of new ratings,
// returning the epoch the batch was accepted at. The batch is durable
// (WAL-fsynced) before the method returns; reads at the returned epoch —
// or later — observe it, while reads pinned to earlier epochs never do.
// Writers are admitted one at a time; ctx bounds the wait. The batch is
// all-or-nothing: any invalid rating rejects the whole batch before
// anything is logged.
//
// Every rating must reference an existing user and item, carry a score
// in [1,5], and carry its own timestamp (Unix > 0) — the server never
// stamps time, so replaying the WAL is deterministic.
func (e *Engine) AppendRatings(ctx context.Context, ratings []model.Rating) (uint64, error) {
	ig := e.ingest
	if ig == nil {
		return 0, ErrIngestDisabled
	}
	if len(ratings) == 0 {
		return 0, fmt.Errorf("%w: empty batch", ErrBadRating)
	}
	tuples, err := e.joinBatch(ratings)
	if err != nil {
		return 0, err
	}
	select {
	case ig.sem <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	defer func() { <-ig.sem }()
	start := time.Now()
	epoch := e.st.CurrentEpoch() + 1
	if err := ig.wal.Append(epoch, ratings); err != nil {
		return 0, err
	}
	if err := e.st.Append(epoch, tuples); err != nil {
		// Unreachable under the writer admission (the WAL record will be
		// replayed on restart); surfaced for completeness.
		return 0, err
	}
	ig.batches.Add(1)
	ig.tuples.Add(uint64(len(ratings)))
	ns := time.Since(start).Nanoseconds()
	ig.applyTotalNS.Add(ns)
	ig.applyLastNS.Store(ns)
	return epoch, nil
}

// joinBatch validates a batch against the (immutable) catalog and joins
// each rating with its reviewer's demographics — the same join open
// performs over the base log.
func (e *Engine) joinBatch(ratings []model.Rating) ([]cube.Tuple, error) {
	ds := e.st.Dataset()
	out := make([]cube.Tuple, len(ratings))
	for i, r := range ratings {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("%w: rating %d: %v", ErrBadRating, i, err)
		}
		if r.Unix <= 0 {
			return nil, fmt.Errorf("%w: rating %d: missing timestamp", ErrBadRating, i)
		}
		u := ds.UserByID(r.UserID)
		if u == nil {
			return nil, fmt.Errorf("%w: rating %d: unknown user %d", ErrBadRating, i, r.UserID)
		}
		if ds.ItemByID(r.ItemID) == nil {
			return nil, fmt.Errorf("%w: rating %d: unknown item %d", ErrBadRating, i, r.ItemID)
		}
		out[i] = cube.JoinRating(r, u)
	}
	return out, nil
}

// CurrentEpoch returns the engine's data version: 1 for the base log,
// +1 per accepted append batch.
func (e *Engine) CurrentEpoch() uint64 { return e.st.CurrentEpoch() }

// resolveEpoch normalizes a requested epoch: 0 means latest, a pinned
// epoch must not lie in the future.
func (e *Engine) resolveEpoch(epoch uint64) (uint64, error) {
	cur := e.st.CurrentEpoch()
	if epoch == 0 || epoch == cur {
		return cur, nil
	}
	if epoch > cur {
		return 0, fmt.Errorf("%w: epoch %d requested, current is %d", ErrFutureEpoch, epoch, cur)
	}
	return epoch, nil
}

// pinQuery resolves a query's epoch before execution, so every pipeline
// below works with a concrete epoch: cache keys, plan versions and
// tuple gathers all agree on the view of the data, and a latest-epoch
// request and a request pinned at the current epoch share cache entries.
func (e *Engine) pinQuery(q Query) (Query, error) {
	ep, err := e.resolveEpoch(q.Epoch)
	if err != nil {
		return query.Query{}, err
	}
	q.Epoch = ep
	return q, nil
}

// IngestStats is the /statsz ingest section: the epoch clock, batch and
// tuple counters, WAL size, the plan-cache invalidation split proving
// appends are surgical, and apply latency. ok is false when the write
// path is not enabled.
type IngestStats struct {
	Epoch    uint64 `json:"epoch"`
	Batches  uint64 `json:"batches"`
	Tuples   uint64 `json:"tuples"`
	WALBytes int64  `json:"wal_bytes"`
	// PlansInvalidated / PlansSurviving split the plan-cache entries that
	// were live at each append into sealed (item set intersected the
	// batch) vs still-warm.
	PlansInvalidated uint64  `json:"plans_invalidated"`
	PlansSurviving   uint64  `json:"plans_surviving"`
	ApplyTotalMS     float64 `json:"apply_total_ms"`
	ApplyLastMS      float64 `json:"apply_last_ms"`
}

// IngestStats returns the live-append monitoring snapshot; ok is false
// when EnableIngest was never called.
func (e *Engine) IngestStats() (IngestStats, bool) {
	ig := e.ingest
	if ig == nil {
		return IngestStats{}, false
	}
	ps := e.PlanStats()
	return IngestStats{
		Epoch:            e.st.CurrentEpoch(),
		Batches:          ig.batches.Load(),
		Tuples:           ig.tuples.Load(),
		WALBytes:         ig.wal.Size(),
		PlansInvalidated: ps.Invalidated,
		PlansSurviving:   ps.Surviving,
		ApplyTotalMS:     float64(ig.applyTotalNS.Load()) / 1e6,
		ApplyLastMS:      float64(ig.applyLastNS.Load()) / 1e6,
	}, true
}
