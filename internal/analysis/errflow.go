package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Errflow enforces Go 1.13+ error discipline everywhere in the tree:
// sentinel errors must be matched with errors.Is (== breaks the moment
// anyone wraps the sentinel — the degradedPlan ride-through in the shard
// coordinator only works because of this), and fmt.Errorf over an error
// value must wrap with %w so errors.Is/As can see through the new layer.
// Both rules carry suggested fixes that `maprat-vet -fix` applies.
var Errflow = &Analyzer{
	Name: "errflow",
	Doc: "require errors.Is for sentinel comparisons (== / != against a " +
		"non-nil error breaks under wrapping) and %w when fmt.Errorf " +
		"formats an error value (%v/%s hide the chain from errors.Is/As); " +
		"both findings carry suggested fixes",
	Version: "1",
	Run:     runErrflow,
}

func runErrflow(pass *Pass) error {
	for _, file := range pass.Files {
		f := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, f, x)
			case *ast.CallExpr:
				checkErrorfWrap(pass, x)
			}
			return true
		})
	}
	return nil
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}

// checkSentinelCompare flags err == sentinel / err != sentinel where
// both sides are error-typed and neither is nil, and suggests the
// errors.Is rewrite (argument order: the checked error first, the
// package-level sentinel second).
func checkSentinelCompare(pass *Pass, file *ast.File, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	ltv, lok := pass.Info.Types[be.X]
	rtv, rok := pass.Info.Types[be.Y]
	if !lok || !rok || !isErrorType(ltv.Type) || !isErrorType(rtv.Type) {
		return
	}
	if isNilExpr(pass, be.X) || isNilExpr(pass, be.Y) {
		return
	}
	errSide, sentinelSide := be.X, be.Y
	if isPackageLevelVar(pass, be.X) && !isPackageLevelVar(pass, be.Y) {
		errSide, sentinelSide = be.Y, be.X
	}

	neg := ""
	if be.Op == token.NEQ {
		neg = "!"
	}
	replacement := fmt.Sprintf("%serrors.Is(%s, %s)", neg, types.ExprString(errSide), types.ExprString(sentinelSide))
	fix := SuggestedFix{
		Message: fmt.Sprintf("replace with %s", replacement),
		Edits:   []TextEdit{pass.Edit(be.Pos(), be.End(), replacement)},
	}
	if imp, ok := importEdit(pass, file, "errors"); ok {
		fix.Edits = append(fix.Edits, imp)
	}
	op := "=="
	if be.Op == token.NEQ {
		op = "!="
	}
	pass.ReportFix(be.Pos(), fix, "sentinel error compared with %s: wrapping (fmt.Errorf %%w) breaks identity comparison; use %serrors.Is(%s, %s)", op, neg, types.ExprString(errSide), types.ExprString(sentinelSide))
}

func isPackageLevelVar(pass *Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	obj := identObj(pass.Info, id)
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// importEdit returns a TextEdit adding an import of path to file, or
// ok=false when the file already imports it.
func importEdit(pass *Pass, file *ast.File, path string) (TextEdit, bool) {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return TextEdit{}, false
		}
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			// Insert in lexicographic position so the block stays sorted.
			for _, spec := range gd.Specs {
				imp, ok := spec.(*ast.ImportSpec)
				if !ok {
					continue
				}
				if strings.Trim(imp.Path.Value, `"`) > path {
					return pass.Edit(imp.Pos(), imp.Pos(), fmt.Sprintf("%q\n\t", path)), true
				}
			}
			if n := len(gd.Specs); n > 0 {
				last := gd.Specs[n-1]
				return pass.Edit(last.End(), last.End(), fmt.Sprintf("\n\t%q", path)), true
			}
			return pass.Edit(gd.Lparen+1, gd.Lparen+1, fmt.Sprintf("\n\t%q", path)), true
		}
		// Single-import form: prepend a separate declaration.
		return pass.Edit(gd.Pos(), gd.Pos(), fmt.Sprintf("import %q\n", path)), true
	}
	// No imports at all: add one right after the package clause.
	return pass.Edit(file.Name.End(), file.Name.End(), fmt.Sprintf("\n\nimport %q", path)), true
}

// checkErrorfWrap flags fmt.Errorf calls that format an error-typed
// argument without %w. When the format is a plain string literal with
// positional (non-indexed) verbs, the fix rewrites the error arguments'
// %v/%s verbs to %w in place.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	formatArg := call.Args[0]
	tv, ok := pass.Info.Types[formatArg]
	if !ok || tv.Value == nil {
		return // dynamic format: nothing provable
	}
	if tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	var errArgs []int // indexes into call.Args[1:]
	for i, a := range call.Args[1:] {
		atv, ok := pass.Info.Types[a]
		if ok && !atv.IsNil() && isErrorType(atv.Type) {
			errArgs = append(errArgs, i)
		}
	}
	if len(errArgs) == 0 {
		return
	}

	msg := "fmt.Errorf formats an error without %w: the cause is flattened to text and errors.Is/As can no longer see it"
	lit, isLit := ast.Unparen(formatArg).(*ast.BasicLit)
	if !isLit || lit.Kind != token.STRING {
		pass.Reportf(call.Pos(), "%s", msg)
		return
	}
	rewritten, ok := rewriteVerbs(lit.Value, errArgs)
	if !ok {
		pass.Reportf(call.Pos(), "%s", msg)
		return
	}
	fix := SuggestedFix{
		Message: "wrap the error with %w",
		Edits:   []TextEdit{pass.Edit(lit.Pos(), lit.End(), rewritten)},
	}
	pass.ReportFix(call.Pos(), fix, "%s", msg)
}

// rewriteVerbs walks the raw string literal (quotes included), maps each
// format verb to its argument index, and rewrites the verbs of the given
// argument indexes from v/s to w. It refuses (ok=false) on explicit
// argument indexes (%[1]v), star widths consuming arguments out of an
// order it would have to re-derive are handled (each * consumes one
// argument), and on verbs other than v/s for an error argument.
func rewriteVerbs(raw string, errArgs []int) (string, bool) {
	want := map[int]bool{}
	for _, i := range errArgs {
		want[i] = true
	}
	b := []byte(raw)
	arg := 0
	rewrote := 0
	for i := 0; i < len(b); i++ {
		if b[i] != '%' {
			continue
		}
		i++
		if i >= len(b) {
			return "", false
		}
		if b[i] == '%' {
			continue
		}
		// flags
		for i < len(b) && strings.ContainsRune("+-# 0", rune(b[i])) {
			i++
		}
		if i < len(b) && b[i] == '[' {
			return "", false // explicit argument index: bail
		}
		// width
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		if i < len(b) && b[i] == '*' {
			arg++
			i++
		}
		// precision
		if i < len(b) && b[i] == '.' {
			i++
			for i < len(b) && b[i] >= '0' && b[i] <= '9' {
				i++
			}
			if i < len(b) && b[i] == '*' {
				arg++
				i++
			}
		}
		if i >= len(b) {
			return "", false
		}
		verb := b[i]
		if want[arg] {
			if verb != 'v' && verb != 's' {
				return "", false
			}
			b[i] = 'w'
			rewrote++
		}
		arg++
	}
	if rewrote != len(errArgs) {
		return "", false
	}
	return string(b), true
}
