package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotPkgSuffixes are the PR 3 hot kernels: the cube scan/aggregate loops
// and the core mining passes, where per-iteration allocations dominate
// the profile long before algorithmic cost does.
var hotPkgSuffixes = []string{
	"internal/cube",
	"internal/core",
}

// Hotalloc flags the allocation patterns that repeatedly show up in the
// kernels' profiles: fmt formatting and string concatenation inside
// loops (one heap string per iteration), loop-filled slices declared
// without capacity (O(log n) regrows and copies), and capturing closures
// created per iteration.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "in the hot kernels internal/{cube,core}: flag fmt.Sprint*/string " +
		"concatenation inside loops, appends into never-presized slices " +
		"filled by a loop, and capturing closures allocated per iteration",
	Version: "1",
	Run:     runHotalloc,
}

func inHotPkg(path string) bool {
	for _, s := range hotPkgSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

func runHotalloc(pass *Pass) error {
	if !inHotPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkHotFunc(pass, fd.Body)
			return true
		})
	}
	return nil
}

func checkHotFunc(pass *Pass, body *ast.BlockStmt) {
	// Slices declared empty (no capacity) in this function, by object:
	// var x []T · x := []T{} · x := make([]T) / make([]T, 0).
	unsized := map[types.Object]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.DeclStmt:
			gd, ok := d.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := pass.Info.Defs[name]; obj != nil && isSliceType(obj.Type()) {
						unsized[obj] = name.Pos()
					}
				}
			}
		case *ast.AssignStmt:
			if d.Tok != token.DEFINE || len(d.Lhs) != len(d.Rhs) {
				return true
			}
			for i, lhs := range d.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil || !isSliceType(obj.Type()) {
					continue
				}
				if isEmptyNoCapSlice(pass, d.Rhs[i]) {
					unsized[obj] = id.Pos()
				}
			}
		}
		return true
	})

	// Immediately-invoked literals don't escape as values; exempt them
	// from the closure rule.
	invoked := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
		default:
			return true
		}
		checkLoopBody(pass, loopBody, unsized, invoked, n.Pos())
		return true
	})
}

func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isEmptyNoCapSlice matches []T{}, make([]T), and make([]T, 0) — the
// forms that guarantee append will regrow from capacity zero.
func isEmptyNoCapSlice(pass *Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		tv, ok := pass.Info.Types[x]
		return ok && isSliceType(tv.Type) && len(x.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return false
		}
		if len(x.Args) == 3 {
			return false // explicit capacity
		}
		tv, ok := pass.Info.Types[x]
		if !ok || !isSliceType(tv.Type) {
			return false
		}
		if len(x.Args) == 2 {
			v, exact := constInt(pass.Info, x.Args[1])
			return exact && v == 0
		}
		return true
	}
	return false
}

// checkLoopBody reports the three allocation patterns inside one loop
// body. Nested function literals are their own scopes: work inside them
// does not run per iteration of this loop (goroutine/callback bodies),
// so the walk prunes them — the closure *creation* is what the loop
// pays for, and that is reported at the literal itself.
func checkLoopBody(pass *Pass, body *ast.BlockStmt, unsized map[types.Object]token.Pos, invoked map[*ast.FuncLit]bool, loopPos token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if !invoked[x] && capturesOuter(pass, x) {
				pass.Reportf(x.Pos(), "capturing closure created inside a loop: one allocation per iteration in a hot kernel; hoist the closure (or the loop-invariant part of it) out of the loop")
			}
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				switch fn.Name() {
				case "Sprintf", "Sprint", "Sprintln":
					pass.Reportf(x.Pos(), "fmt.%s inside a hot-kernel loop allocates a string per iteration: use strconv.Append*/copy into a reused buffer", fn.Name())
				}
			}
		case *ast.AssignStmt:
			checkLoopAssign(pass, x, unsized, loopPos)
		}
		return true
	})
}

func checkLoopAssign(pass *Pass, as *ast.AssignStmt, unsized map[types.Object]token.Pos, loopPos token.Pos) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if tv, ok := pass.Info.Types[as.Lhs[0]]; ok {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				pass.Reportf(as.Pos(), "string concatenation inside a hot-kernel loop reallocates the whole string each iteration: use strings.Builder or a reused []byte")
			}
		}
		return
	}
	if (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinAppend(pass.Info, call) || len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := identObj(pass.Info, id)
	if obj == nil {
		return
	}
	declPos, ok := unsized[obj]
	// Only when the empty declaration precedes the loop: a slice born
	// inside the iteration is a different (per-iteration) problem, and a
	// presized one is already fine.
	if !ok || declPos >= loopPos {
		return
	}
	if types.ExprString(ast.Unparen(call.Args[0])) != types.ExprString(as.Lhs[0]) {
		return
	}
	pass.Reportf(as.Pos(), "append into %q grows from zero capacity inside a hot-kernel loop: presize with make(%s, 0, n) when the element count is knowable", id.Name, obj.Type().String())
}

// capturesOuter reports whether the literal references a local variable
// declared outside itself — the capture that forces a per-instance
// closure allocation (non-capturing literals compile to a shared static
// value).
func capturesOuter(pass *Pass, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() || v.IsField() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
			return false
		}
		return true
	})
	return captures
}
