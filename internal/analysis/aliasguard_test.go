package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestAliasguard(t *testing.T) {
	analysistest.Run(t, "testdata/aliasguard", analysis.Aliasguard)
}
