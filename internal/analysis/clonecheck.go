package analysis

import (
	"go/ast"
	"go/types"
)

// cacheFetchMethods maps internal/store cache types to the methods whose
// return values hand out a cached pointer: the LRU result cache, the
// singleflight layer in front of it, and the materialized-plan tier
// (both the current-epoch and the epoch-pinned fetch).
var cacheFetchMethods = map[string][]string{
	"LRU":       {"Get"},
	"Flight":    {"Do"},
	"PlanCache": {"GetOrBuild", "GetOrBuildAt"},
}

// Clonecheck statically catches the PR 2 cache-aliasing bug class:
// returning a pointer fetched from the result LRU, the singleflight
// layer or the plan cache without deep-copying it first. A caller that
// mutates such a pointer poisons the cache for everyone; every fetch
// that escapes via return must go through Clone (or carry an annotated
// immutability contract, like store.Plan).
var Clonecheck = &Analyzer{
	Name: "clonecheck",
	Doc: "a pointer fetched from store.LRU.Get / store.Flight.Do / " +
		"store.PlanCache.GetOrBuild(At) must not be returned without " +
		"calling Clone on it; cache hits must hand out deep copies",
	Version: "2",
	Run:     runClonecheck,
}

func runClonecheck(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkCloneFlow(pass, fn.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

// isCacheFetch reports whether call invokes one of the cache-fetch
// methods on an internal/store cache type, along with the type name.
func isCacheFetch(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pathHasSuffix(obj.Pkg().Path(), "internal/store") {
		return "", false
	}
	for _, want := range cacheFetchMethods[obj.Name()] {
		if fn.Name() == want {
			return obj.Name() + "." + want, true
		}
	}
	return "", false
}

// checkCloneFlow walks one function body in source order, tracking
// values fetched from a cache through assignments and type assertions,
// and flags any return that hands a tracked value out uncloned. The flow
// is local and forward-only — the shape every fetch in this codebase
// actually has — and a `.Clone()` call launders the taint.
func checkCloneFlow(pass *Pass, body *ast.BlockStmt) {
	tracked := map[types.Object]string{}

	// taintSource reports whether e produces a tracked value, and from
	// which cache it originated.
	var taintSource func(e ast.Expr) (string, bool)
	taintSource = func(e ast.Expr) (string, bool) {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if src, ok := isCacheFetch(pass, x); ok {
				return src, true
			}
		case *ast.TypeAssertExpr:
			return taintSource(x.X)
		case *ast.Ident:
			if obj := identObj(pass.Info, x); obj != nil {
				if src, ok := tracked[obj]; ok {
					return src, true
				}
			}
		}
		return "", false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if len(node.Rhs) != 1 {
				return true
			}
			src, isTaint := taintSource(node.Rhs[0])
			if id, ok := node.Lhs[0].(*ast.Ident); ok {
				if obj := identObj(pass.Info, id); obj != nil {
					if isTaint {
						tracked[obj] = src
					} else {
						// Reassignment from a clean source (including
						// `.Clone()`) launders the variable.
						delete(tracked, obj)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if src, ok := taintSource(res); ok {
					pass.Reportf(res.Pos(), "pointer fetched from store.%s escapes via return without Clone: cache hits must hand out deep copies, or the type's immutability contract must be annotated on this line", src)
				}
			}
		}
		return true
	})
}
