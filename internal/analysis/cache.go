package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// cacheSchema versions the on-disk entry format; bumping it invalidates
// every existing entry at once.
const cacheSchema = "maprat-vet-cache-1"

// DefaultCacheDir is where warm-run results live unless overridden:
// os.UserCacheDir()/maprat-vet. The MAPRAT_VET_CACHE_DIR environment
// variable (used by CI and tests) takes precedence over both.
func DefaultCacheDir() (string, error) {
	if env := os.Getenv("MAPRAT_VET_CACHE_DIR"); env != "" {
		return env, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("resolving user cache dir: %w", err)
	}
	return filepath.Join(base, "maprat-vet"), nil
}

// cache is the per-package findings store. Entries are one JSON file per
// key; the key hashes everything a package's findings can depend on, so
// entries never need explicit invalidation — a stale key is simply never
// looked up again.
type cache struct {
	dir string
	// expHash memoizes export-data file hashes across packages: the std
	// library's export files are deps of nearly every target.
	expHash map[string]string
}

func openCache(dir string) *cache {
	return &cache{dir: dir, expHash: map[string]string{}}
}

// entry is the stored result for one (package, analyzer set, sources,
// dependency exports) state.
type entry struct {
	Schema     string       `json:"schema"`
	ImportPath string       `json:"import_path"`
	Diags      []Diagnostic `json:"diags"`
}

// key derives the cache key for one target package. It covers:
//   - the entry schema and the Go toolchain version,
//   - the analyzer set with per-analyzer versions (AnalyzerSetHash),
//   - the package's import path and directory (finding positions are
//     absolute paths, so a moved checkout must miss),
//   - every source file's name and content,
//   - every dependency's export data (content-hashed, memoized) — a
//     changed dependency API re-analyzes the dependents, an untouched
//     one does not.
func (c *cache) key(t listedPkg, src map[string][]byte, exports map[string]string, setHash string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n%s\n%s\n", cacheSchema, runtime.Version(), setHash, t.ImportPath, t.Dir)
	for _, name := range t.GoFiles {
		b := src[filepath.Join(t.Dir, name)]
		fmt.Fprintf(h, "file %s %d\n", name, len(b))
		h.Write(b)
	}
	deps := append([]string(nil), t.Deps...)
	sort.Strings(deps)
	for _, d := range deps {
		exp, ok := exports[d]
		if !ok {
			continue // no export data (e.g. unsafe); nothing to hash
		}
		eh, err := c.exportHash(exp)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep %s %s\n", d, eh)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func (c *cache) exportHash(path string) (string, error) {
	if h, ok := c.expHash[path]; ok {
		return h, nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("reading export data %s: %w", path, err)
	}
	sum := sha256.Sum256(b)
	h := hex.EncodeToString(sum[:])
	c.expHash[path] = h
	return h, nil
}

// get returns the cached diagnostics for key, or ok=false on any miss —
// absent entry, unreadable file, or schema drift. Cache read failures
// are never errors: the package is simply re-analyzed.
func (c *cache) get(key string) ([]Diagnostic, bool) {
	b, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Schema != cacheSchema {
		return nil, false
	}
	return e.Diags, true
}

// put stores diagnostics under key. Writes go through a temp file +
// rename so a concurrent reader never sees a torn entry; write failures
// are returned but callers treat the cache as best-effort.
func (c *cache) put(key, importPath string, diags []Diagnostic) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	if diags == nil {
		diags = []Diagnostic{}
	}
	b, err := json.Marshal(entry{Schema: cacheSchema, ImportPath: importPath, Diags: diags})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(c.dir, key+".json"))
}

// AnalyzerSetHash fingerprints an analyzer selection: names and versions
// in canonical order, plus the suppression auditor (which always runs).
// It keys both the result cache and CI's actions/cache entry.
func AnalyzerSetHash(analyzers []*Analyzer) string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		v := a.Version
		if v == "" {
			v = "1"
		}
		names = append(names, a.Name+"@"+v)
	}
	sort.Strings(names)
	h := sha256.New()
	fmt.Fprintf(h, "suppress@%s\n", suppressVersion)
	for _, n := range names {
		fmt.Fprintln(h, n)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
