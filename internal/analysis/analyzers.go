package analysis

// All returns the full suite in its canonical order. The slice is fresh
// on every call so callers may filter it.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Ctxflow,
		Envelope,
		Aliasguard,
		Clonecheck,
		Lockcheck,
		Mergeorder,
		Errflow,
		Hotalloc,
	}
}

// ByName resolves an analyzer by its directive/flag name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
