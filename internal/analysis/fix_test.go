package analysis_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestApplyFixesGolden runs errflow over the fixgolden fixture, applies
// every suggested fix, and byte-compares the result against the checked
// in .golden files — the end-to-end contract of `maprat-vet -fix`.
func TestApplyFixesGolden(t *testing.T) {
	res, err := analysis.RunWithOptions("testdata/fixgolden",
		analysis.Options{Analyzers: []*analysis.Analyzer{analysis.Errflow}}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) == 0 {
		t.Fatal("fixture produced no findings")
	}
	for _, d := range res.Diags {
		if len(d.SuggestedFixes) == 0 {
			t.Errorf("finding without a fix: %s", d)
		}
	}

	fixed, applied, skipped, err := analysis.ApplyFixes(res.Diags, res.Sources)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
	if applied != len(res.Diags) {
		t.Errorf("applied = %d, want %d", applied, len(res.Diags))
	}
	if len(fixed) == 0 {
		t.Fatal("no files changed")
	}
	for file, got := range fixed {
		want, err := os.ReadFile(file + ".golden")
		if err != nil {
			t.Fatalf("missing golden for %s: %v", file, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: fixed output differs from golden:\n%s",
				filepath.Base(file), analysis.UnifiedDiff(filepath.Base(file)+".golden", want, got))
		}
	}
}

func TestApplyFixesOverlapAndDedup(t *testing.T) {
	src := map[string][]byte{"f.go": []byte("aaaa bbbb cccc")}
	diag := func(edits ...analysis.TextEdit) analysis.Diagnostic {
		return analysis.Diagnostic{
			File: "f.go", Line: 1,
			SuggestedFixes: []analysis.SuggestedFix{{Edits: edits}},
		}
	}

	t.Run("overlap vetoes the later fix entirely", func(t *testing.T) {
		fixed, applied, skipped, err := analysis.ApplyFixes([]analysis.Diagnostic{
			diag(analysis.TextEdit{File: "f.go", Start: 0, End: 4, New: "XX"}),
			// Overlaps the first edit, and carries a second edit that must
			// not be half-applied.
			diag(analysis.TextEdit{File: "f.go", Start: 2, End: 6, New: "YY"},
				analysis.TextEdit{File: "f.go", Start: 10, End: 14, New: "ZZ"}),
		}, src)
		if err != nil {
			t.Fatal(err)
		}
		if applied != 1 || skipped != 1 {
			t.Fatalf("applied=%d skipped=%d, want 1/1", applied, skipped)
		}
		if got := string(fixed["f.go"]); got != "XX bbbb cccc" {
			t.Fatalf("got %q", got)
		}
	})

	t.Run("identical edits from two fixes apply once", func(t *testing.T) {
		ins := analysis.TextEdit{File: "f.go", Start: 0, End: 0, New: "import\n"}
		fixed, applied, skipped, err := analysis.ApplyFixes([]analysis.Diagnostic{
			diag(ins, analysis.TextEdit{File: "f.go", Start: 0, End: 4, New: "X"}),
			diag(ins, analysis.TextEdit{File: "f.go", Start: 5, End: 9, New: "Y"}),
		}, src)
		if err != nil {
			t.Fatal(err)
		}
		if applied != 2 || skipped != 0 {
			t.Fatalf("applied=%d skipped=%d, want 2/0", applied, skipped)
		}
		if got := string(fixed["f.go"]); got != "import\nX Y cccc" {
			t.Fatalf("got %q", got)
		}
	})

	t.Run("out-of-range edit is an error", func(t *testing.T) {
		_, _, _, err := analysis.ApplyFixes([]analysis.Diagnostic{
			diag(analysis.TextEdit{File: "f.go", Start: 10, End: 99, New: "X"}),
		}, src)
		if err == nil {
			t.Fatal("want error for out-of-range edit")
		}
	})
}

func TestUnifiedDiff(t *testing.T) {
	a := []byte("one\ntwo\nthree\nfour\nfive\nsix\nseven\n")
	b := []byte("one\ntwo\nTHREE\nfour\nfive\nsix\nseven\n")
	d := analysis.UnifiedDiff("x.go", a, b)
	for _, want := range []string{"--- a/x.go", "+++ b/x.go", "-three", "+THREE", "@@"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
	if analysis.UnifiedDiff("x.go", a, a) != "" {
		t.Error("identical inputs must produce an empty diff")
	}
}
