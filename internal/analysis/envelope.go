package analysis

import (
	"go/ast"
)

// envelopePkgSuffixes are the HTTP transport packages whose error
// responses must carry the uniform v1 envelope (or the HTML front-end's
// single annotated text seam). The scatter-gather tier and its fault
// injector are included: both sit on the HTTP path (the coordinator
// serves /api/v1, the fault transport synthesizes worker responses), so
// a naked http.Error there would leak an envelope-less failure to SDK
// clients that decode the envelope shape.
var envelopePkgSuffixes = []string{
	"internal/api", "internal/server", "internal/shard", "internal/fault",
}

// Envelope enforces the /api/v1 error contract inside the transport
// packages: failures must flow through api.StatusForError and the
// envelope writers (api.WriteJSON / writeEnvelope). A naked http.Error
// or an error-status WriteHeader bypasses both the envelope shape and
// the /statsz per-endpoint status counters.
var Envelope = &Analyzer{
	Name: "envelope",
	Doc: "in internal/api and internal/server, flag http.Error and " +
		"error-status WriteHeader calls that bypass the uniform error " +
		"envelope and the /statsz counters; error paths must go through " +
		"api.StatusForError and the envelope writers",
	Run: runEnvelope,
}

func runEnvelope(pass *Pass) error {
	if !inEnvelopePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(pass.Info, call, "net/http", "Error") {
				pass.Reportf(call.Pos(), "http.Error bypasses the v1 error envelope and the /statsz counters; classify with api.StatusForError and write through an envelope/seam helper")
				return true
			}
			checkWriteHeader(pass, call)
			return true
		})
	}
	return nil
}

// checkWriteHeader flags WriteHeader calls that plainly write an error
// status: a constant >= 400, or a status freshly produced by the
// error-mapping helpers (StatusForError / statusForError / HTTPStatus).
// Success statuses and forwarded variables (middleware wrappers) pass.
func checkWriteHeader(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if v, ok := constInt(pass.Info, arg); ok {
		if v >= 400 {
			pass.Reportf(call.Pos(), "WriteHeader(%d) writes an error status outside the envelope writers; error paths must produce the {\"error\":{...}} envelope", v)
		}
		return
	}
	if inner, ok := arg.(*ast.CallExpr); ok {
		if fn := calleeFunc(pass.Info, inner); fn != nil {
			switch fn.Name() {
			case "StatusForError", "statusForError", "HTTPStatus":
				pass.Reportf(call.Pos(), "WriteHeader(%s(...)) writes a mapped error status directly; only the envelope writers may turn an error into a response", fn.Name())
			}
		}
	}
}

func inEnvelopePkg(path string) bool {
	for _, s := range envelopePkgSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}
