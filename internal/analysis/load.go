package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked, analyzable package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	// Files parallels GoFiles: the parsed non-test compiled sources.
	Files   []*ast.File
	GoFiles []string
	Types   *types.Package
	Info    *types.Info
	// Src holds each file's raw bytes, keyed by absolute path — the
	// suppression and fixture layers scan source lines directly.
	Src map[string][]byte
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Deps       []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// listing is the resolved module graph for one go-list invocation: the
// target packages plus export data for every dependency.
type listing struct {
	targets []listedPkg
	exports map[string]string // import path -> export data file
	fset    *token.FileSet
	imp     types.Importer
}

// golist resolves patterns (e.g. "./...") relative to dir via
// `go list -json -export -deps`, so the build cache supplies export data
// for every dependency — std and in-module alike. Test files are not
// listed: the invariants the suite enforces are production-code
// invariants, and every exemption the analyzers would grant tests falls
// out of that scope for free.
func golist(dir string, patterns ...string) (*listing, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	l := &listing{exports: map[string]string{}}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			l.targets = append(l.targets, p)
		}
	}
	sort.Slice(l.targets, func(i, j int) bool { return l.targets[i].ImportPath < l.targets[j].ImportPath })

	l.fset = token.NewFileSet()
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return l, nil
}

// Load resolves patterns relative to dir into fully type-checked
// packages.
func Load(dir string, patterns ...string) ([]*Package, error) {
	l, err := golist(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, t := range l.targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		src, err := readSources(t)
		if err != nil {
			return nil, err
		}
		pkg, err := l.checkPackage(t, src)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// readSources reads the package's non-test compiled Go files, keyed by
// absolute path.
func readSources(t listedPkg) (map[string][]byte, error) {
	src := make(map[string][]byte, len(t.GoFiles))
	for _, name := range t.GoFiles {
		path := filepath.Join(t.Dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		src[path] = b
	}
	return src, nil
}

// checkPackage parses and type-checks one target package from the
// already-read sources.
func (l *listing) checkPackage(t listedPkg, src map[string][]byte) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	paths := make([]string, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		path := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(l.fset, path, src[path], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(t.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       l.fset,
		Files:      files,
		GoFiles:    paths,
		Types:      tpkg,
		Info:       info,
		Src:        src,
	}, nil
}
