package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked, analyzable package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	// Files parallels GoFiles: the parsed non-test compiled sources.
	Files   []*ast.File
	GoFiles []string
	Types   *types.Package
	Info    *types.Info
	// Src holds each file's raw bytes, keyed by absolute path — the
	// suppression and fixture layers scan source lines directly.
	Src map[string][]byte
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir into fully
// type-checked packages. It shells out to `go list -json -export -deps`,
// so the build cache supplies export data for every dependency — std and
// in-module alike — and each target package is then parsed and checked
// from source. Test files are not loaded: the invariants the suite
// enforces are production-code invariants, and every exemption the
// analyzers would grant tests falls out of that scope for free.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one target package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, t listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	paths := make([]string, 0, len(t.GoFiles))
	src := make(map[string][]byte, len(t.GoFiles))
	for _, name := range t.GoFiles {
		path := filepath.Join(t.Dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, b, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
		paths = append(paths, path)
		src[path] = b
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		GoFiles:    paths,
		Types:      tpkg,
		Info:       info,
		Src:        src,
	}, nil
}
