package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata/lockcheck", analysis.Lockcheck)
}
