package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// TestRepoIsClean is the CI gate in test form: the repository itself
// must produce zero findings under the full analyzer suite. A rule that
// main cannot satisfy is a broken rule, and a violation that sneaks in
// should fail `go test` as well as `maprat-vet`.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(root, analysis.All(), "./...")
	if err != nil {
		t.Fatalf("running suite over repo: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d.String())
	}
}
