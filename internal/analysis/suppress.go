package analysis

import (
	"bytes"
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// SuppressName is the pseudo-analyzer that reports directive misuse:
// unknown analyzer names, missing reasons, and stale directives that
// suppress nothing. It cannot itself be suppressed.
const SuppressName = "suppress"

// suppressVersion feeds the incremental-cache key alongside the real
// analyzers' versions: suppression runs on every package, so a behavior
// change here must invalidate cached findings too.
const suppressVersion = "1"

// directive is one parsed //maprat:allow comment.
type directive struct {
	file string
	// line is where the comment sits; target is the line whose findings
	// it suppresses — the same line when the directive shares it with
	// code, the next line when the directive stands alone.
	line   int
	target int
	names  []string
	reason string
	used   bool
}

// allowRE matches the directive body after the mandatory "//maprat:allow"
// prefix. Analyzer names are lowercase identifiers; anything else (like
// the "<analyzer>" placeholder in documentation examples) is not a
// directive.
var allowRE = regexp.MustCompile(`^//maprat:allow\(([a-z][a-z0-9_, ]*)?\)(.*)$`)

// parseDirectives extracts //maprat:allow directives from the package's
// comments. Only real comments count — directive text quoted inside a
// string literal or an indented doc example never parses — and the
// directive must start the comment: "//maprat:allow(...)" with no space.
// A directive governs the line it shares with code, or the following
// line when the comment stands alone.
func parseDirectives(pkg *Package) []directive {
	var dirs []directive
	for i, file := range pkg.Files {
		src := pkg.Src[pkg.GoFiles[i]]
		lines := bytes.Split(src, []byte("\n"))
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				reason := strings.TrimSpace(m[2])
				// Fixture files stack a // want expectation after the
				// directive; it is not part of the reason.
				if w := strings.Index(reason, "// want"); w >= 0 {
					reason = strings.TrimSpace(reason[:w])
				}
				var names []string
				for _, n := range strings.Split(m[1], ",") {
					if n = strings.TrimSpace(n); n != "" {
						names = append(names, n)
					}
				}
				d := directive{
					file:   pos.Filename,
					line:   pos.Line,
					target: pos.Line,
					names:  names,
					reason: reason,
				}
				if onOwnLine(lines, pos) {
					d.target = pos.Line + 1
				}
				dirs = append(dirs, d)
			}
		}
	}
	sort.Slice(dirs, func(i, j int) bool {
		if dirs[i].file != dirs[j].file {
			return dirs[i].file < dirs[j].file
		}
		return dirs[i].line < dirs[j].line
	})
	return dirs
}

// onOwnLine reports whether only whitespace precedes the comment on its
// source line.
func onOwnLine(lines [][]byte, pos token.Position) bool {
	if pos.Line-1 >= len(lines) || pos.Column < 1 {
		return false
	}
	line := lines[pos.Line-1]
	if pos.Column-1 > len(line) {
		return false
	}
	return len(bytes.TrimSpace(line[:pos.Column-1])) == 0
}

// applySuppressions drops diagnostics covered by a well-formed directive
// and appends one SuppressName finding per misused directive: unknown
// analyzer name, missing reason, or a stale directive whose target line
// has no finding to suppress. Malformed directives never suppress —
// an unjustified silence would otherwise be quieter than the finding it
// hides.
func applySuppressions(diags []Diagnostic, dirs []directive, known map[string]bool) []Diagnostic {
	var out []Diagnostic

	type key struct {
		file string
		line int
		name string
	}
	// valid directives by (file, target line, analyzer)
	valid := map[key]*directive{}
	for i := range dirs {
		d := &dirs[i]
		if len(d.names) == 0 || d.reason == "" {
			continue
		}
		ok := true
		for _, n := range d.names {
			if !known[n] {
				ok = false
			}
		}
		if !ok {
			continue
		}
		for _, n := range d.names {
			valid[key{d.file, d.target, n}] = d
		}
	}

	for _, diag := range diags {
		if d, ok := valid[key{diag.File, diag.Line, diag.Analyzer}]; ok {
			d.used = true
			continue
		}
		out = append(out, diag)
	}

	for i := range dirs {
		d := &dirs[i]
		switch {
		case len(d.names) == 0:
			out = append(out, suppressFinding(d, "maprat:allow directive names no analyzer"))
		case d.reason == "":
			out = append(out, suppressFinding(d, fmt.Sprintf("maprat:allow(%s) has no reason; every suppression must say why the invariant does not apply", strings.Join(d.names, ","))))
		default:
			unknown := unknownNames(d.names, known)
			if len(unknown) > 0 {
				out = append(out, suppressFinding(d, fmt.Sprintf("maprat:allow names unknown analyzer %q (known: %s)", strings.Join(unknown, ","), knownList(known))))
			} else if !d.used {
				out = append(out, suppressFinding(d, fmt.Sprintf("stale maprat:allow(%s): no %s finding on the governed line; delete the directive", strings.Join(d.names, ","), strings.Join(d.names, "/"))))
			}
		}
	}
	return out
}

func suppressFinding(d *directive, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: SuppressName,
		File:     d.file,
		Line:     d.line,
		Col:      1,
		Message:  msg,
	}
}

func unknownNames(names []string, known map[string]bool) []string {
	var out []string
	for _, n := range names {
		if !known[n] {
			out = append(out, n)
		}
	}
	return out
}

func knownList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
