package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockPkgSuffixes are the packages lockcheck audits: the concurrency
// tiers whose mutexes guard shared state on serving paths. A lock held
// across a blocking call there stalls every contender — and in the
// scatter-gather tier, can wedge a whole fleet behind one slow worker.
var lockPkgSuffixes = []string{
	"internal/ingest",
	"internal/jobs",
	"internal/shard",
	"internal/store",
	"internal/fault",
}

// Lockcheck is a flow-sensitive mutex auditor: it walks every function
// body tracking which sync.Mutex/RWMutex receivers are held on each
// path, and reports (1) blocking operations — channel sends/receives,
// default-less selects, pkg/client RPCs, HTTP round trips, WaitGroup/
// Cond waits, sleeps, file I/O — executed while a lock is held, (2)
// return paths that leak a manually-managed lock, and (3) explicit
// Unlocks that a pending deferred Unlock will double-unlock.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc: "in internal/{ingest,jobs,shard,store,fault}: flag blocking calls " +
		"(channel ops, selects without default, pkg/client RPCs, HTTP, " +
		"Wait, Sleep, file I/O) while a sync.Mutex/RWMutex is held, " +
		"return paths that leak a held lock, and explicit Unlocks that a " +
		"deferred Unlock then double-unlocks",
	Version: "2",
	Run:     runLockcheck,
}

func inLockPkg(path string) bool {
	for _, s := range lockPkgSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

func runLockcheck(pass *Pass) error {
	if !inLockPkg(pass.Pkg.Path()) {
		return nil
	}
	w := &lockWalker{pass: pass}
	for _, file := range pass.Files {
		// Every function body — declarations and literals alike — is
		// analyzed as its own unit with an empty lock state. The walker
		// never descends into a nested FuncLit: a goroutine or callback
		// body does not inherit its creator's critical section.
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.walkFunc(fn.Body)
				}
			case *ast.FuncLit:
				w.walkFunc(fn.Body)
			}
			return true
		})
	}
	return nil
}

// lockState is the per-path abstract state: which mutex expressions are
// currently held, which have a deferred Unlock pending, and where a
// still-deferred lock was last explicitly released.
type lockState struct {
	held     map[string]token.Pos // manual holds: key -> Lock() position
	deferred map[string]token.Pos // pending deferred Unlocks: key -> defer position
	released map[string]token.Pos // explicit release while deferred pending
}

func newLockState() *lockState {
	return &lockState{
		held:     map[string]token.Pos{},
		deferred: map[string]token.Pos{},
		released: map[string]token.Pos{},
	}
}

func (st *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range st.held {
		c.held[k] = v
	}
	for k, v := range st.deferred {
		c.deferred[k] = v
	}
	for k, v := range st.released {
		c.released[k] = v
	}
	return c
}

// merge intersects branch states: a lock counts as held (or deferred)
// after a branch point only when every surviving branch agrees. The
// intersection under-approximates, which is the right bias for a linter
// — a must-hold fact produces no false "blocking while held" reports.
func mergeLockStates(states []*lockState) *lockState {
	if len(states) == 0 {
		return newLockState()
	}
	out := states[0].clone()
	for _, st := range states[1:] {
		for k := range out.held {
			if _, ok := st.held[k]; !ok {
				delete(out.held, k)
			}
		}
		for k := range out.deferred {
			if _, ok := st.deferred[k]; !ok {
				delete(out.deferred, k)
			}
		}
		for k, v := range st.released {
			out.released[k] = v
		}
	}
	return out
}

type lockWalker struct {
	pass *Pass
}

func (w *lockWalker) walkFunc(body *ast.BlockStmt) {
	st := newLockState()
	if terminated := w.walkStmts(body.List, st); !terminated {
		w.checkExit(st, body.Rbrace)
	}
}

// walkStmts threads st through the list, reporting as it goes, and
// returns whether the list definitely terminates (returns/branches/
// exits) before falling off the end.
func (w *lockWalker) walkStmts(list []ast.Stmt, st *lockState) bool {
	for _, s := range list {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, st *lockState) bool {
	switch stmt := s.(type) {
	case *ast.ExprStmt:
		if call, ok := stmt.X.(*ast.CallExpr); ok {
			if key, op, ok := w.lockOp(call); ok {
				w.applyLockOp(call.Pos(), key, op, st)
				w.scanExprs(st, call.Args...)
				return false
			}
			if isTerminalCall(w.pass.Info, call) {
				w.scanExprs(st, call.Args...)
				return true
			}
		}
		w.scanExprs(st, stmt.X)
	case *ast.AssignStmt:
		w.scanExprs(st, stmt.Rhs...)
		w.scanExprs(st, stmt.Lhs...)
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.scanExprs(st, vs.Values...)
				}
			}
		}
	case *ast.IncDecStmt:
		w.scanExprs(st, stmt.X)
	case *ast.SendStmt:
		w.reportBlocked(stmt.Pos(), "channel send", st)
		w.scanExprs(st, stmt.Chan, stmt.Value)
	case *ast.DeferStmt:
		w.applyDefer(stmt, st)
	case *ast.GoStmt:
		// The goroutine body runs concurrently with its own empty state
		// (analyzed separately); only the call's arguments evaluate now.
		w.scanExprs(st, stmt.Call.Args...)
	case *ast.ReturnStmt:
		w.scanExprs(st, stmt.Results...)
		w.checkExit(st, stmt.Pos())
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.walkStmts(stmt.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(stmt.Stmt, st)
	case *ast.IfStmt:
		return w.walkIf(stmt, st)
	case *ast.ForStmt:
		if stmt.Init != nil {
			w.walkStmt(stmt.Init, st)
		}
		w.scanExprs(st, stmt.Cond)
		body := st.clone()
		w.walkStmts(stmt.Body.List, body)
		if stmt.Post != nil {
			w.walkStmt(stmt.Post, body)
		}
		// After the loop, keep the entry state: zero iterations are
		// possible, and a body that locks/unlocks in balance converges to
		// the same state anyway.
	case *ast.RangeStmt:
		w.scanExprs(st, stmt.X)
		if tv, ok := w.pass.Info.Types[stmt.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.reportBlocked(stmt.Pos(), "range over channel", st)
			}
		}
		body := st.clone()
		w.walkStmts(stmt.Body.List, body)
	case *ast.SwitchStmt:
		if stmt.Init != nil {
			w.walkStmt(stmt.Init, st)
		}
		w.scanExprs(st, stmt.Tag)
		return w.walkCases(stmt.Body, st, true)
	case *ast.TypeSwitchStmt:
		if stmt.Init != nil {
			w.walkStmt(stmt.Init, st)
		}
		return w.walkCases(stmt.Body, st, true)
	case *ast.SelectStmt:
		return w.walkSelect(stmt, st)
	}
	return false
}

func (w *lockWalker) walkIf(stmt *ast.IfStmt, st *lockState) bool {
	if stmt.Init != nil {
		w.walkStmt(stmt.Init, st)
	}
	w.scanExprs(st, stmt.Cond)
	bodySt := st.clone()
	bodyTerm := w.walkStmts(stmt.Body.List, bodySt)
	if stmt.Else == nil {
		if !bodyTerm {
			*st = *mergeLockStates([]*lockState{st, bodySt})
		}
		return false
	}
	elseSt := st.clone()
	elseTerm := w.walkStmt(stmt.Else, elseSt)
	switch {
	case bodyTerm && elseTerm:
		return true
	case bodyTerm:
		*st = *elseSt
	case elseTerm:
		*st = *bodySt
	default:
		*st = *mergeLockStates([]*lockState{bodySt, elseSt})
	}
	return false
}

// walkCases handles switch/type-switch bodies: each case walks a clone,
// and the exit state is the merge of the surviving branches (plus the
// entry state when no default case guarantees a branch runs).
func (w *lockWalker) walkCases(body *ast.BlockStmt, st *lockState, includeEntryWithoutDefault bool) bool {
	var surviving []*lockState
	hasDefault := false
	anyCase := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		anyCase = true
		if cc.List == nil {
			hasDefault = true
		}
		w.scanExprs(st, cc.List...)
		caseSt := st.clone()
		if !w.walkStmts(cc.Body, caseSt) {
			surviving = append(surviving, caseSt)
		}
	}
	if !anyCase {
		return false
	}
	if includeEntryWithoutDefault && !hasDefault {
		surviving = append(surviving, st.clone())
	}
	if len(surviving) == 0 {
		return true
	}
	*st = *mergeLockStates(surviving)
	return false
}

func (w *lockWalker) walkSelect(stmt *ast.SelectStmt, st *lockState) bool {
	hasDefault := false
	for _, c := range stmt.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		w.reportBlocked(stmt.Pos(), "select without default", st)
	}
	var surviving []*lockState
	for _, c := range stmt.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		caseSt := st.clone()
		// The comm op itself is part of the select's blocking decision
		// (already reported above); only its side effects matter here.
		if cc.Comm != nil {
			if as, ok := cc.Comm.(*ast.AssignStmt); ok {
				w.scanExprs(caseSt, as.Lhs...)
			}
		}
		if !w.walkStmts(cc.Body, caseSt) {
			surviving = append(surviving, caseSt)
		}
	}
	if len(surviving) == 0 && len(stmt.Body.List) > 0 {
		return true
	}
	if len(surviving) > 0 {
		*st = *mergeLockStates(surviving)
	}
	return false
}

// lockOp classifies a call as one of the sync lock operations on a
// trackable receiver expression, returning the canonical receiver key.
func (w *lockWalker) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	recvName := typeName(sig.Recv().Type())
	if recvName != "Mutex" && recvName != "RWMutex" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	key = types.ExprString(sel.X)
	// Read and write locks pair independently: an RUnlock must not
	// balance a Lock.
	if fn.Name() == "RLock" || fn.Name() == "RUnlock" {
		key += " [read]"
	}
	return key, fn.Name(), true
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func (w *lockWalker) applyLockOp(pos token.Pos, key, op string, st *lockState) {
	switch op {
	case "Lock", "RLock":
		if prev, ok := st.held[key]; ok && op == "Lock" {
			w.pass.Reportf(pos, "%s.Lock while already held (locked at line %d): self-deadlock", displayKey(key), w.line(prev))
		}
		st.held[key] = pos
		delete(st.released, key)
	case "Unlock", "RUnlock":
		if _, ok := st.held[key]; ok {
			delete(st.held, key)
			if _, def := st.deferred[key]; def {
				st.released[key] = pos
			}
			return
		}
		if dpos, ok := st.deferred[key]; ok {
			w.pass.Reportf(pos, "explicit %s.%s with a deferred %s pending (deferred at line %d): double unlock", displayKey(key), op, op, w.line(dpos))
		}
		// Unlocking a lock this function never acquired (caller-held
		// handoff) is not locally provable either way; stay silent.
	}
}

// applyDefer registers deferred Unlocks — both the direct
// `defer mu.Unlock()` form and Unlock statements inside a deferred
// function literal.
func (w *lockWalker) applyDefer(stmt *ast.DeferStmt, st *lockState) {
	w.scanExprs(st, stmt.Call.Args...)
	if key, op, ok := w.lockOp(stmt.Call); ok && (op == "Unlock" || op == "RUnlock") {
		st.deferred[key] = stmt.Pos()
		return
	}
	if lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if key, op, ok := w.lockOp(call); ok && (op == "Unlock" || op == "RUnlock") {
					st.deferred[key] = stmt.Pos()
				}
			}
			return true
		})
	}
}

// checkExit audits one path exit (return or end of body): a manually
// managed lock still held leaks; a deferred Unlock whose lock was
// explicitly released double-unlocks.
func (w *lockWalker) checkExit(st *lockState, pos token.Pos) {
	for key, lpos := range st.held {
		if _, ok := st.deferred[key]; !ok {
			w.pass.Reportf(pos, "return while %s is still locked (Lock at line %d): missing Unlock on this path", displayKey(key), w.line(lpos))
		}
	}
	for key, dpos := range st.deferred {
		if _, held := st.held[key]; held {
			continue
		}
		if rpos, ok := st.released[key]; ok {
			w.pass.Reportf(rpos, "%s released here but a deferred Unlock (line %d) fires again on return: double unlock", displayKey(key), w.line(dpos))
		}
	}
}

// scanExprs looks for blocking operations inside the statement's
// expressions: channel receives and the blocking-call set. Function
// literals are opaque — their bodies run elsewhere (or are analyzed as
// their own unit).
func (w *lockWalker) scanExprs(st *lockState, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					w.reportBlocked(x.Pos(), "channel receive", st)
				}
			case *ast.CallExpr:
				if desc := w.blockingCall(x); desc != "" {
					w.reportBlocked(x.Pos(), desc, st)
				}
			}
			return true
		})
	}
}

func (w *lockWalker) reportBlocked(pos token.Pos, what string, st *lockState) {
	for key, lpos := range st.held {
		w.pass.Reportf(pos, "%s while holding %s (locked at line %d): a blocked critical section stalls every contender; release the lock first or move the blocking work out", what, displayKey(key), w.line(lpos))
	}
}

// blockingCall classifies calls that can block indefinitely (or for I/O
// time) and therefore must not run inside a critical section. The set is
// deliberately concrete — named std-lib operations plus anything in
// pkg/client, which is all RPC.
func (w *lockWalker) blockingCall(call *ast.CallExpr) string {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if pathHasSuffix(pkg, "pkg/client") {
		return "pkg/client RPC " + name
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = typeName(sig.Recv().Type())
	}
	switch pkg {
	case "sync":
		if name == "Wait" && (recv == "WaitGroup" || recv == "Cond") {
			return "sync." + recv + ".Wait"
		}
	case "time":
		if name == "Sleep" && recv == "" {
			return "time.Sleep"
		}
	case "net/http":
		if recv == "Client" && (name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head") {
			return "http.Client." + name
		}
		if recv == "" && (name == "Get" || name == "Post" || name == "PostForm" || name == "Head") {
			return "http." + name
		}
	case "os":
		if recv == "" && (name == "ReadFile" || name == "WriteFile" || name == "Open" || name == "OpenFile" || name == "Create") {
			return "os." + name
		}
		if recv == "File" && (name == "Read" || name == "Write" || name == "ReadAt" || name == "WriteAt" || name == "Sync") {
			return "os.File." + name
		}
	case "io":
		if recv == "" && (name == "ReadAll" || name == "Copy" || name == "CopyN" || name == "CopyBuffer" || name == "ReadFull") {
			return "io." + name
		}
	case "os/exec":
		if recv == "Cmd" && (name == "Run" || name == "Output" || name == "CombinedOutput" || name == "Wait") {
			return "exec.Cmd." + name
		}
	}
	if name == "RoundTrip" && recv != "" {
		return recv + ".RoundTrip"
	}
	return ""
}

func displayKey(key string) string {
	return key
}

func (w *lockWalker) line(pos token.Pos) int {
	return w.pass.Fset.Position(pos).Line
}

// isTerminalCall reports calls that never return: panic and the
// process-exit family.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	case "runtime":
		return fn.Name() == "Goexit"
	}
	return false
}
