package analysis

import (
	"fmt"
)

// Options parameterize a suite run.
type Options struct {
	// Analyzers is the set to run (required).
	Analyzers []*Analyzer
	// Cache enables the incremental per-package result cache; CacheDir
	// overrides its location (default DefaultCacheDir()).
	Cache    bool
	CacheDir string
}

// Result is a completed suite run.
type Result struct {
	// Diags are the surviving findings, sorted by position.
	Diags []Diagnostic
	// Packages is the number of target packages; Analyzed of them were
	// parsed, type-checked and analyzed this run, Cached were served from
	// the incremental cache.
	Packages, Analyzed, Cached int
	// Sources maps every loaded target file (absolute path) to its
	// content — the input ApplyFixes and the -diff/-fix paths work from.
	Sources map[string][]byte
}

// Run loads patterns relative to dir, runs every analyzer over every
// loaded package, applies //maprat:allow suppressions, and returns the
// surviving findings sorted by position. The returned slice is empty for
// a clean tree. Run never touches the incremental cache; maprat-vet
// enables it through RunWithOptions.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	res, err := RunWithOptions(dir, Options{Analyzers: analyzers}, patterns...)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// RunWithOptions is Run with the incremental cache and per-run stats.
// With opts.Cache set, each package's findings are keyed by a hash of
// its sources, its dependencies' export data and the analyzer
// set/versions; a warm run over an unchanged tree re-analyzes nothing.
func RunWithOptions(dir string, opts Options, patterns ...string) (*Result, error) {
	l, err := golist(dir, patterns...)
	if err != nil {
		return nil, err
	}

	var store *cache
	if opts.Cache {
		cdir := opts.CacheDir
		if cdir == "" {
			cdir, err = DefaultCacheDir()
			if err != nil {
				return nil, err
			}
		}
		store = openCache(cdir)
	}
	setHash := AnalyzerSetHash(opts.Analyzers)

	// Directive names validate against the whole suite, not just the
	// analyzers in this run: a //maprat:allow(ctxflow) is legitimate even
	// when only determinism is being re-run.
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range opts.Analyzers {
		known[a.Name] = true
	}

	res := &Result{Sources: map[string][]byte{}}
	for _, t := range l.targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		res.Packages++
		src, err := readSources(t)
		if err != nil {
			return nil, err
		}
		for p, b := range src {
			res.Sources[p] = b
		}

		var key string
		if store != nil {
			key, err = store.key(t, src, l.exports, setHash)
			if err != nil {
				return nil, err
			}
			if diags, ok := store.get(key); ok {
				res.Cached++
				res.Diags = append(res.Diags, diags...)
				continue
			}
		}

		pkg, err := l.checkPackage(t, src)
		if err != nil {
			return nil, err
		}
		diags, err := runPackage(pkg, opts.Analyzers, known)
		if err != nil {
			return nil, err
		}
		res.Analyzed++
		if store != nil {
			// Best-effort: a failed write costs the next run a re-analysis,
			// nothing more.
			_ = store.put(key, t.ImportPath, diags)
		}
		res.Diags = append(res.Diags, diags...)
	}
	sortDiagnostics(res.Diags)
	return res, nil
}

// runPackage runs the analyzers over one package and resolves its
// suppression directives. Directives are scoped to the package's own
// files, so a suppression can never reach across packages.
func runPackage(pkg *Package, analyzers []*Analyzer, known map[string]bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	dirs := parseDirectives(pkg)
	return applySuppressions(diags, dirs, known), nil
}
