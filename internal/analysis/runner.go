package analysis

import (
	"fmt"
)

// Run loads patterns relative to dir, runs every analyzer over every
// loaded package, applies //maprat:allow suppressions, and returns the
// surviving findings sorted by position. The returned slice is empty for
// a clean tree.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	// Directive names validate against the whole suite, not just the
	// analyzers in this run: a //maprat:allow(ctxflow) is legitimate even
	// when only determinism is being re-run.
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPackage(pkg, analyzers, known)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(all)
	return all, nil
}

// runPackage runs the analyzers over one package and resolves its
// suppression directives. Directives are scoped to the package's own
// files, so a suppression can never reach across packages.
func runPackage(pkg *Package, analyzers []*Analyzer, known map[string]bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	dirs := parseDirectives(pkg)
	return applySuppressions(diags, dirs, known), nil
}
