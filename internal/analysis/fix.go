package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// ApplyFixes applies the first suggested fix of every diagnostic to the
// given sources (absolute path → file bytes) and returns the new content
// of every file at least one edit touched. Fixes whose edits overlap an
// already-accepted edit are skipped rather than half-applied; skipped
// counts them. Edits with out-of-range offsets are an error — they mean
// a stale cache entry or an analyzer bug, not a user mistake.
func ApplyFixes(diags []Diagnostic, src map[string][]byte) (fixed map[string][]byte, applied, skipped int, err error) {
	type edit struct {
		TextEdit
		fixID int // edits of one fix commit or skip together
	}
	perFile := map[string][]edit{}
	fixID := 0
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		fix := d.SuggestedFixes[0]
		for _, e := range fix.Edits {
			b, have := src[e.File]
			if !have {
				return nil, 0, 0, fmt.Errorf("fix for %s:%d edits unloaded file %s", d.File, d.Line, e.File)
			}
			if e.Start < 0 || e.End < e.Start || e.End > len(b) {
				return nil, 0, 0, fmt.Errorf("fix for %s:%d has edit range [%d,%d) outside file %s (%d bytes)", d.File, d.Line, e.Start, e.End, e.File, len(b))
			}
		}
		for _, e := range fix.Edits {
			perFile[e.File] = append(perFile[e.File], edit{e, fixID})
		}
		fixID++
	}
	if fixID == 0 {
		return map[string][]byte{}, 0, 0, nil
	}

	// Decide which fixes survive: walk each file's edits in offset order
	// and veto any fix that overlaps an earlier-accepted edit. A vetoed
	// fix is vetoed everywhere (all its edits drop).
	vetoed := map[int]bool{}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		es := perFile[f]
		sort.SliceStable(es, func(i, j int) bool {
			if es[i].Start != es[j].Start {
				return es[i].Start < es[j].Start
			}
			return es[i].End < es[j].End
		})
		prevEnd := -1
		prevFix := -1
		for _, e := range es {
			if vetoed[e.fixID] {
				continue
			}
			if e.Start < prevEnd && e.fixID != prevFix {
				vetoed[e.fixID] = true
				continue
			}
			if e.End > prevEnd {
				prevEnd = e.End
			}
			prevFix = e.fixID
		}
	}
	skipped = len(vetoed)
	applied = fixID - skipped

	fixed = map[string][]byte{}
	for _, f := range files {
		var es []edit
		for _, e := range perFile[f] {
			if !vetoed[e.fixID] {
				es = append(es, e)
			}
		}
		if len(es) == 0 {
			continue
		}
		sort.SliceStable(es, func(i, j int) bool { return es[i].Start < es[j].Start })
		b := src[f]
		var out []byte
		last := 0
		for i, e := range es {
			// Identical edits from different fixes (e.g. two findings both
			// adding the same import) apply once.
			if i > 0 && e.TextEdit == es[i-1].TextEdit {
				continue
			}
			out = append(out, b[last:e.Start]...)
			out = append(out, e.New...)
			last = e.End
		}
		out = append(out, b[last:]...)
		fixed[f] = out
	}
	return fixed, applied, skipped, nil
}

// UnifiedDiff renders a unified diff (3 context lines) between a and b,
// labeled a/name and b/name. Empty when the contents are identical.
func UnifiedDiff(name string, a, b []byte) string {
	if string(a) == string(b) {
		return ""
	}
	al := splitLines(a)
	bl := splitLines(b)
	ops := diffLines(al, bl)

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- a/%s\n+++ b/%s\n", name, name)

	const ctx = 3
	i := 0
	for i < len(ops) {
		// Skip runs of equal lines to the next change.
		for i < len(ops) && ops[i].kind == opEq {
			i++
		}
		if i == len(ops) {
			break
		}
		// Hunk start: back up for leading context.
		start := i - ctx
		if start < 0 {
			start = 0
		}
		// Extend to cover changes separated by ≤ 2*ctx equal lines.
		end := i
		run := 0
		for j := i; j < len(ops); j++ {
			if ops[j].kind == opEq {
				run++
				if run > 2*ctx {
					break
				}
			} else {
				run = 0
				end = j + 1
			}
		}
		stop := end + ctx
		if stop > len(ops) {
			stop = len(ops)
		}

		aStart, bStart := ops[start].aLine, ops[start].bLine
		var aCount, bCount int
		var body strings.Builder
		for _, op := range ops[start:stop] {
			switch op.kind {
			case opEq:
				body.WriteString(" " + op.text + "\n")
				aCount++
				bCount++
			case opDel:
				body.WriteString("-" + op.text + "\n")
				aCount++
			case opAdd:
				body.WriteString("+" + op.text + "\n")
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart+1, aCount, bStart+1, bCount)
		sb.WriteString(body.String())
		i = stop
	}
	return sb.String()
}

type diffOpKind int

const (
	opEq diffOpKind = iota
	opDel
	opAdd
)

type diffOp struct {
	kind         diffOpKind
	text         string
	aLine, bLine int // 0-based line numbers at which this op sits
}

// splitLines splits without losing a missing trailing newline (the last
// line is a line either way; the diff is line-oriented, not byte-exact,
// which is fine for gofmt'd Go source that always ends in a newline).
func splitLines(b []byte) []string {
	s := string(b)
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// diffLines computes an edit script via longest-common-subsequence DP —
// quadratic, which is fine at source-file scale.
func diffLines(a, b []string) []diffOp {
	n, m := len(a), len(b)
	// lcs[i][j] = LCS length of a[i:], b[j:].
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{opEq, a[i], i, j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{opDel, a[i], i, j})
			i++
		default:
			ops = append(ops, diffOp{opAdd, b[j], i, j})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{opDel, a[i], i, j})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{opAdd, b[j], i, j})
	}
	return ops
}
