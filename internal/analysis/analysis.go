// Package analysis is MapRat's static-analysis suite: five analyzers
// that machine-enforce the invariants the repeatable-exploration claim
// rests on — deterministic mining (no wall clock, no global RNG, no map
// iteration order in results), context discipline, the uniform /api/v1
// error envelope, guarded zero-copy aliasing over mmap'd snapshot pages,
// and clone-on-return for cache-fetched pointers.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic, analysistest fixtures with // want comments) but is built
// entirely on the standard library: packages are loaded through
// `go list -json -export -deps` and type-checked from source against the
// toolchain's export data, so the suite needs no module dependencies and
// runs offline. Findings can be suppressed per line with
//
//	//maprat:allow(<analyzer>) <reason>
//
// where the reason is mandatory and unjustified, unknown, or stale
// directives are themselves findings (see suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. Run inspects a fully
// type-checked package through the Pass and reports findings; it must be
// deterministic and must not retain the Pass.
type Analyzer struct {
	// Name is the identifier used in findings, the -analyzers flag and
	// //maprat:allow directives. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph rule description shown by maprat-vet -list.
	Doc string
	// Version participates in the incremental-cache key; bump it whenever
	// the analyzer's logic changes so stale cached findings die with the
	// old behavior. Empty means "1".
	Version string
	// Run reports the analyzer's findings on one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test compiled Go files.
	Files []*ast.File
	// Pkg is the type-checked package; Path() is the full import path.
	Pkg *types.Package
	// Info holds the type information for Files.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying a suggested fix that
// `maprat-vet -fix` can apply (and `-diff` can preview).
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer:       p.Analyzer.Name,
		File:           position.Filename,
		Line:           position.Line,
		Col:            position.Column,
		Message:        fmt.Sprintf(format, args...),
		SuggestedFixes: []SuggestedFix{fix},
	})
}

// Edit builds a TextEdit replacing the source range [from, to) with new
// text, resolving token positions to byte offsets in the original file.
func (p *Pass) Edit(from, to token.Pos, new string) TextEdit {
	start := p.Fset.Position(from)
	end := p.Fset.Position(to)
	return TextEdit{File: start.Filename, Start: start.Offset, End: end.Offset, New: new}
}

// Diagnostic is one finding, positioned in the original source.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// SuggestedFixes are machine-applicable repairs for the finding; the
	// first one is what -fix applies. Empty for advice-only findings.
	SuggestedFixes []SuggestedFix `json:"suggested_fixes,omitempty"`
}

// SuggestedFix is one machine-applicable repair: a message plus the text
// edits that realize it. Edits within one fix must not overlap.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// TextEdit replaces the byte range [Start, End) of File with New.
type TextEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by (file, line, col, analyzer, message)
// so output never depends on analyzer scheduling or map iteration — the
// suite practices the determinism it preaches.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// pathHasSuffix reports whether importPath ends with suffix on a path
// segment boundary ("repro/internal/core" matches "internal/core" but
// "internal/corex" does not). Matching by suffix keeps the analyzers
// usable against the fixture modules, whose module names differ.
func pathHasSuffix(importPath, suffix string) bool {
	return importPath == suffix || strings.HasSuffix(importPath, "/"+suffix)
}

// isPkgFunc reports whether the call's callee is the package-level
// function pkgPath.name (e.g. "time".Now), resolved through the type
// info rather than the source text, so aliased imports are still caught.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// calleeFunc resolves a call's callee to the *types.Func it invokes, or
// nil for calls through function values, builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// constInt extracts an integer constant value from expr, if it is one.
func constInt(info *types.Info, expr ast.Expr) (int64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}

var _ = token.NoPos
