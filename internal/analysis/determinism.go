package analysis

import (
	"go/ast"
	"go/types"
)

// miningPkgSuffixes are the packages whose outputs feed mined results.
// Inside them, everything must be a pure function of (query, seed,
// epoch): PAPER.md's repeatable exploration, PR 1's sub-seeded restarts
// and PR 6's shard-merge identity all assume it.
var miningPkgSuffixes = []string{
	"internal/core",
	"internal/cube",
	"internal/explore",
	"internal/ingest",
	"internal/store",
}

func inMiningPkg(path string) bool {
	for _, s := range miningPkgSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// Determinism forbids nondeterminism sources in the mining packages:
// wall-clock reads, the process-global math/rand generators, ad-hoc
// rand.New/NewSource seeding (internal/rng is the one sanctioned seam),
// and map-iteration order leaking into returned slices without a sort.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now, global math/rand, ad-hoc rand.New and unsorted " +
		"map-iteration results in the mining packages (internal/core, " +
		"internal/cube, internal/explore, internal/ingest, internal/store); " +
		"mined results must be a pure function of (query, seed, epoch)",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !inMiningPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkDeterminismCall(pass, call)
			}
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapOrderLeak(pass, fd)
			}
			return true
		})
	}
	return nil
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods on a *rand.Rand value are the
	// deterministic, sub-seeded generators internal/rng hands out.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s in mining code: results must be a pure function of (query, seed, epoch), not the wall clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8":
			pass.Reportf(call.Pos(), "ad-hoc %s.%s in mining code: seed through repro/internal/rng so restarts stay sub-seeded and reproducible", fn.Pkg().Path(), fn.Name())
		default:
			pass.Reportf(call.Pos(), "global %s.%s in mining code: the process-wide generator is shared and unseeded; draw from a repro/internal/rng generator instead", fn.Pkg().Path(), fn.Name())
		}
	}
}

// checkMapOrderLeak flags range-over-map loops that append into a slice
// the function returns, unless the slice is also passed to a sort or
// slices call somewhere in the same function. Map iteration order is
// randomized per execution, so an unsorted result built this way differs
// run to run — the exact bug class that silently breaks shard-merge
// identity.
func checkMapOrderLeak(pass *Pass, fd *ast.FuncDecl) {
	type candidate struct {
		obj types.Object
		pos ast.Node
	}
	var cands []candidate

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			callRHS, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.Info, callRHS) {
				return true
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if obj := identObj(pass.Info, lhs); obj != nil {
				cands = append(cands, candidate{obj: obj, pos: rs})
			}
			return true
		})
		return true
	})
	if len(cands) == 0 {
		return
	}

	returned := map[types.Object]bool{}
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}
	sorted := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, e := range s.Results {
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					if obj := identObj(pass.Info, id); obj != nil {
						returned[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, s)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, a := range s.Args {
				if id, ok := ast.Unparen(a).(*ast.Ident); ok {
					if obj := identObj(pass.Info, id); obj != nil {
						sorted[obj] = true
					}
				}
			}
		}
		return true
	})

	for _, c := range cands {
		if returned[c.obj] && !sorted[c.obj] {
			pass.Reportf(c.pos.Pos(), "map iteration order leaks into returned slice %q: sort it (sort/slices) before returning, or build it from a deterministic order", c.obj.Name())
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
