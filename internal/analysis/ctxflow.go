package analysis

import (
	"go/ast"
)

// goroutineCtxSuffixes are the packages where a goroutine that cannot
// observe a context is a cancellation leak: the mining pipeline threads
// ctx solver→engine→HTTP (PR 1), the jobs subsystem owns per-job
// timeouts (PR 5), and the scatter-gather tier (internal/shard with its
// internal/fault chaos transport) fans goroutines out per slot batch —
// an unanchored goroutine in any of them keeps computing (or keeps a
// worker connection pinned) for callers that already hung up.
var goroutineCtxSuffixes = append(
	[]string{"internal/jobs", "internal/shard", "internal/fault"},
	miningPkgSuffixes...)

// Ctxflow enforces the context discipline: no context.Background()/TODO()
// outside main packages and annotated seams, context.Context only as the
// first parameter, and no context-blind goroutine launches in mining or
// jobs code.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background()/context.TODO() outside main packages " +
		"and annotated seams, context.Context parameters not in first " +
		"position, and goroutines in mining/jobs packages that capture no " +
		"context",
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) error {
	isMain := pass.Pkg.Name() == "main"
	checkGoroutines := inGoroutinePkg(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if isMain {
					return true
				}
				for _, name := range []string{"Background", "TODO"} {
					if isPkgFunc(pass.Info, node, "context", name) {
						pass.Reportf(node.Pos(), "context.%s() outside main: accept a ctx from the caller or annotate this seam with //maprat:allow(ctxflow) and a reason", name)
					}
				}
			case *ast.FuncType:
				checkCtxPosition(pass, node)
			case *ast.GoStmt:
				if checkGoroutines {
					checkGoroutineCtx(pass, node)
				}
			}
			return true
		})
	}
	return nil
}

func inGoroutinePkg(path string) bool {
	for _, s := range goroutineCtxSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// checkCtxPosition flags context.Context parameters that are not the
// first parameter. The convention is load-bearing, not cosmetic: every
// wrapper and seam in the codebase forwards ctx positionally.
func checkCtxPosition(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if ok && isContextType(tv.Type) && idx > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter, found at position %d", idx+1)
		}
		idx += width
	}
}

// checkGoroutineCtx flags `go` statements whose spawned work can see no
// context: neither an argument nor (for a function literal) a captured
// variable of type context.Context.
func checkGoroutineCtx(pass *Pass, gs *ast.GoStmt) {
	call := gs.Call
	for _, arg := range call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && isContextType(tv.Type) {
			return
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ctxSeen := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok || ctxSeen {
				return !ctxSeen
			}
			switch expr.(type) {
			case *ast.Ident, *ast.SelectorExpr:
				if tv, ok := pass.Info.Types[expr]; ok && isContextType(tv.Type) {
					ctxSeen = true
				}
			}
			return true
		})
		if ctxSeen {
			return
		}
	}
	pass.Reportf(gs.Pos(), "goroutine launched without a context in mining/jobs code: cancellation cannot reach it; pass or capture a ctx, or annotate the seam")
}
