package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestClonecheck(t *testing.T) {
	analysistest.Run(t, "testdata/clonecheck", analysis.Clonecheck)
}
