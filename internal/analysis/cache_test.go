package analysis_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
)

// TestCacheWarmRun pins the incremental cache's contract: a warm run
// over an unchanged tree re-analyzes zero packages (mtime-only touches
// included — keys hash contents, not stats) and reports byte-identical
// findings; a content change re-analyzes exactly the changed package.
func TestCacheWarmRun(t *testing.T) {
	work := t.TempDir()
	copyTree(t, "testdata/mergeorder", work)
	opts := analysis.Options{
		Analyzers: analysis.All(),
		Cache:     true,
		CacheDir:  t.TempDir(),
	}

	cold, err := analysis.RunWithOptions(work, opts, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Packages == 0 || cold.Analyzed != cold.Packages || cold.Cached != 0 {
		t.Fatalf("cold run: packages=%d analyzed=%d cached=%d, want all analyzed",
			cold.Packages, cold.Analyzed, cold.Cached)
	}
	if len(cold.Diags) == 0 {
		t.Fatal("fixture should produce findings")
	}

	// An mtime-only touch must not invalidate anything.
	touched := filepath.Join(work, "internal", "shard", "fixture.go")
	now := time.Now()
	if err := os.Chtimes(touched, now, now); err != nil {
		t.Fatal(err)
	}

	warm, err := analysis.RunWithOptions(work, opts, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if warm.Analyzed != 0 || warm.Cached != warm.Packages {
		t.Fatalf("warm run: packages=%d analyzed=%d cached=%d, want 0 re-analyzed",
			warm.Packages, warm.Analyzed, warm.Cached)
	}
	if !reflect.DeepEqual(cold.Diags, warm.Diags) {
		t.Errorf("warm findings differ from cold:\ncold: %v\nwarm: %v", cold.Diags, warm.Diags)
	}

	// A content change re-analyzes exactly the changed package.
	changed := filepath.Join(work, "internal", "other", "ok.go")
	b, err := os.ReadFile(changed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(changed, append(b, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	third, err := analysis.RunWithOptions(work, opts, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if third.Analyzed != 1 || third.Cached != third.Packages-1 {
		t.Fatalf("after content change: packages=%d analyzed=%d cached=%d, want exactly 1 re-analyzed",
			third.Packages, third.Analyzed, third.Cached)
	}
	if !reflect.DeepEqual(cold.Diags, third.Diags) {
		t.Errorf("findings changed after a comment-only edit:\ncold: %v\nthird: %v", cold.Diags, third.Diags)
	}
}

// TestAnalyzerSetHash pins that the cache key component tracks both the
// set membership and each analyzer's version.
func TestAnalyzerSetHash(t *testing.T) {
	all := analysis.AnalyzerSetHash(analysis.All())
	if len(all) != 32 {
		t.Fatalf("hash length = %d, want 32 hex chars", len(all))
	}
	if analysis.AnalyzerSetHash(analysis.All()) != all {
		t.Error("hash is not deterministic")
	}
	subset := analysis.AnalyzerSetHash([]*analysis.Analyzer{analysis.Lockcheck})
	if subset == all {
		t.Error("subset hash should differ from full-set hash")
	}
	bumped := &analysis.Analyzer{Name: analysis.Lockcheck.Name, Version: "test-bump", Run: analysis.Lockcheck.Run}
	if analysis.AnalyzerSetHash([]*analysis.Analyzer{bumped}) == subset {
		t.Error("version bump should change the hash")
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
