package analysis

import (
	"go/ast"
	"go/types"
)

// Aliasguard polices the zero-copy aliasing path (internal/snapshot and
// any future package that reinterprets raw pages): a file may call
// unsafe.Slice only if the same file declares a layout guard — code that
// checks unsafe.Sizeof/unsafe.Offsetof assumptions before the alias is
// trusted — and slices produced by aliasing must never be written
// through, because they may point into shared read-only mmap'd pages.
var Aliasguard = &Analyzer{
	Name: "aliasguard",
	Doc: "unsafe.Slice is only allowed in files that also verify the " +
		"aliased layout with unsafe.Sizeof/unsafe.Offsetof, and writes " +
		"through alias-produced slices (element stores, copy-into) are " +
		"errors: the pages may be mmap'd read-only and shared",
	Run: runAliasguard,
}

func runAliasguard(pass *Pass) error {
	aliasFns := aliasConstructors(pass)
	for _, file := range pass.Files {
		slices := unsafeSliceCalls(pass, file)
		if len(slices) > 0 && !fileHasLayoutGuard(pass, file) {
			for _, call := range slices {
				pass.Reportf(call.Pos(), "unsafe.Slice in a file with no layout guard: add a check of unsafe.Sizeof/unsafe.Offsetof assumptions in this file (see snapshot.tupleLayoutCompatible) so a struct change cannot silently alias garbage")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && fn.Body != nil {
				checkAliasWrites(pass, fn, aliasFns)
			}
			return true
		})
	}
	return nil
}

// isUnsafeRef reports whether expr is a selector on package unsafe with
// the given name. unsafe's members are builtins, not *types.Func, so the
// generic callee resolution does not apply.
func isUnsafeRef(pass *Pass, expr ast.Expr, name string) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "unsafe"
}

func unsafeSliceCalls(pass *Pass, file *ast.File) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(file, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isUnsafeRef(pass, call.Fun, "Slice") {
			out = append(out, call)
		}
		return true
	})
	return out
}

// fileHasLayoutGuard reports whether the file contains any use of
// unsafe.Sizeof or unsafe.Offsetof — the building blocks of a layout
// guard like snapshot.tupleLayoutCompatible.
func fileHasLayoutGuard(pass *Pass, file *ast.File) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if isUnsafeRef(pass, call.Fun, "Sizeof") || isUnsafeRef(pass, call.Fun, "Offsetof") {
				found = true
			}
		}
		return true
	})
	return found
}

// aliasConstructors returns the package-level functions whose bodies
// call unsafe.Slice and whose results include a slice — the package's
// alias factories (aliasTuples, aliasInt32). Values they return are
// treated as aliased in every function of the package.
func aliasConstructors(pass *Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Results == nil {
				continue
			}
			returnsSlice := false
			for _, r := range fd.Type.Results.List {
				if tv, ok := pass.Info.Types[r.Type]; ok {
					if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
						returnsSlice = true
					}
				}
			}
			if !returnsSlice {
				continue
			}
			uses := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isUnsafeRef(pass, call.Fun, "Slice") {
					uses = true
				}
				return !uses
			})
			if !uses {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = true
			}
		}
	}
	return out
}

// checkAliasWrites tracks, within one function, variables assigned from
// unsafe.Slice or an alias constructor, and flags element stores and
// copy-into through them. The tracking is local and syntactic by design:
// an alias that escapes into a struct is the consuming code's contract
// to uphold (and the snapshot package documents it), but a direct write
// in the same function is always a bug.
func checkAliasWrites(pass *Pass, fd *ast.FuncDecl, aliasFns map[*types.Func]bool) {
	tracked := map[types.Object]bool{}

	isAliasCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		if isUnsafeRef(pass, call.Fun, "Slice") {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		return fn != nil && aliasFns[fn]
	}
	trackedIdent := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := identObj(pass.Info, id)
		return obj != nil && tracked[obj]
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			// Track a fresh alias: v, ok := aliasTuples(b) / s := unsafe.Slice(...).
			// A plain reassignment (e.g. the decode fallback's
			// `arena = make([]int32, n)`) clears the taint again.
			if len(node.Rhs) == 1 {
				if id, ok := node.Lhs[0].(*ast.Ident); ok {
					if obj := identObj(pass.Info, id); obj != nil {
						if isAliasCall(node.Rhs[0]) {
							tracked[obj] = true
						} else {
							delete(tracked, obj)
						}
					}
				}
			}
			// Flag element stores through a tracked alias.
			for _, lhs := range node.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && trackedIdent(ix.X) {
					pass.Reportf(lhs.Pos(), "write through aliased slice: the backing pages may be mmap'd read-only and shared between processes; copy before mutating")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok {
				if b, isB := pass.Info.Uses[id].(*types.Builtin); isB && b.Name() == "copy" && len(node.Args) == 2 && trackedIdent(node.Args[0]) {
					pass.Reportf(node.Pos(), "copy into aliased slice: the backing pages may be mmap'd read-only and shared between processes; allocate a destination instead")
				}
			}
		}
		return true
	})
}
