package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestErrflow(t *testing.T) {
	analysistest.Run(t, "testdata/errflow", analysis.Errflow)
}
