package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestSuppressMisuse proves the directive cannot be abused: an unknown
// analyzer name, a missing reason, an empty name list, and a stale
// directive all surface as findings, and none of them silence the
// underlying diagnostic.
func TestSuppressMisuse(t *testing.T) {
	diags := analysistest.Run(t, "testdata/suppress", analysis.Determinism)

	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	// unknownName, missingReason, emptyName each leave their determinism
	// finding unsuppressed; wellFormed and ownLine suppress theirs.
	if got := counts[analysis.Determinism.Name]; got != 3 {
		t.Errorf("determinism findings surviving misused directives = %d, want 3", got)
	}
	// unknownName, missingReason, emptyName, stale each yield one misuse
	// finding.
	if got := counts[analysis.SuppressName]; got != 4 {
		t.Errorf("suppress misuse findings = %d, want 4", got)
	}
}

// TestSuppressKnownNames pins the misuse message to the full analyzer
// catalog so an unknown name tells the author what is available.
func TestSuppressKnownNames(t *testing.T) {
	diags := analysistest.Run(t, "testdata/suppress", analysis.Determinism)
	for _, d := range diags {
		if d.Analyzer != analysis.SuppressName || !strings.Contains(d.Message, "unknown analyzer") {
			continue
		}
		for _, a := range analysis.All() {
			if !strings.Contains(d.Message, a.Name) {
				t.Errorf("misuse message %q does not list known analyzer %q", d.Message, a.Name)
			}
		}
		return
	}
	t.Error("no unknown-analyzer misuse finding produced")
}
