package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestEnvelope(t *testing.T) {
	analysistest.Run(t, "testdata/envelope", analysis.Envelope)
}
