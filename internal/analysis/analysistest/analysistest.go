// Package analysistest runs analyzers over fixture modules and checks
// findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// A fixture is a self-contained Go module (its own go.mod) under the
// calling test's testdata directory, so `go list` loads it offline with
// whatever package paths the analyzer under test keys on. Expectations
// are written on the offending line:
//
//	time.Now() // want `time\.Now`
//
// Every unsuppressed diagnostic must be matched by a want on its line,
// and every want must match a diagnostic. Lines carrying a
// //maprat:allow directive with no want assert suppression by absence.
package analysistest

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture module at dir, runs the analyzers over ./...,
// applies suppression directives, and checks the surviving diagnostics
// against the fixture's // want comments. It returns the diagnostics
// for any further assertions.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("resolving fixture dir: %v", err)
	}
	diags, err := analysis.Run(abs, analyzers, "./...")
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}

	wants := collectWants(t, abs)

	type lineKey struct {
		file string
		line int
	}
	unmatched := map[lineKey][]*want{}
	for i := range wants {
		w := &wants[i]
		unmatched[lineKey{w.file, w.line}] = append(unmatched[lineKey{w.file, w.line}], w)
	}

	for _, d := range diags {
		ws := unmatched[lineKey{d.File, d.Line}]
		matched := false
		for _, w := range ws {
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
	return diags
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var (
	wantRE    = regexp.MustCompile(`// want (.*)$`)
	wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// collectWants scans every fixture .go file for // want comments.
func collectWants(t *testing.T, dir string) []want {
	t.Helper()
	var wants []want
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(b), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRE.FindAllString(m[1], -1)
			if len(args) == 0 {
				t.Errorf("%s:%d: malformed want comment %q", path, i+1, line)
				continue
			}
			for _, a := range args {
				var pat string
				if strings.HasPrefix(a, "`") {
					pat = strings.Trim(a, "`")
				} else {
					var uqErr error
					pat, uqErr = strconv.Unquote(a)
					if uqErr != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", path, i+1, a, uqErr)
						continue
					}
				}
				re, reErr := regexp.Compile(pat)
				if reErr != nil {
					t.Errorf("%s:%d: bad want regexp %q: %v", path, i+1, pat, reErr)
					continue
				}
				wants = append(wants, want{file: path, line: i + 1, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("collecting wants: %v", err)
	}
	return wants
}
