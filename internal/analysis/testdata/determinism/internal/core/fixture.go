package core

import (
	"math/rand"
	"sort"
	"time"

	"fixture/internal/rng"
)

func wallClock() int64 {
	return time.Now().Unix() // want `time\.Now in mining code`
}

func elapsed(t time.Time) time.Duration {
	return time.Since(t) // want `time\.Since in mining code`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn in mining code`
}

func adHocSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `ad-hoc math/rand\.New in mining code` `ad-hoc math/rand\.NewSource in mining code`
}

func seeded(seed int64) *rand.Rand {
	return rng.New(seed) // ok: the sanctioned seeding seam
}

func draw(gen *rand.Rand) int {
	return gen.Intn(10) // ok: method on an explicitly seeded generator
}

func leakOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order leaks into returned slice "keys"`
		keys = append(keys, k)
	}
	return keys
}

func sortedOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: sorted before returning
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func internalOnly(m map[string]int) int {
	var vals []int
	for _, v := range m { // ok: never returned
		vals = append(vals, v)
	}
	total := 0
	for _, v := range vals {
		total += v
	}
	return total
}

func annotatedSeam() int64 {
	return time.Now().Unix() //maprat:allow(determinism) fixture: annotated wall-clock seam
}
