// Package rng mirrors the real repro/internal/rng seam: the one place
// ad-hoc seeding is legitimate, outside the mining package scope.
package rng

import "math/rand"

// New returns a deterministic generator for seed.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
