// Package other sits outside the mining scope: the determinism rules do
// not apply here.
package other

import "time"

// Stamp may read the wall clock freely.
func Stamp() int64 { return time.Now().Unix() }
