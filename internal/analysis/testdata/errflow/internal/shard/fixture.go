package shard

import (
	"errors"
	"fmt"
)

var ErrGone = errors.New("worker gone")

type planError struct{ shard int }

func (e *planError) Error() string { return "degraded plan" }

// --- sentinel comparisons ------------------------------------------------

func compareEq(err error) bool {
	return err == ErrGone // want `sentinel error compared with ==: wrapping \(fmt\.Errorf %w\) breaks identity comparison; use errors\.Is\(err, ErrGone\)`
}

func compareNeq(err error) bool {
	return err != ErrGone // want `sentinel error compared with !=: wrapping \(fmt\.Errorf %w\) breaks identity comparison; use !errors\.Is\(err, ErrGone\)`
}

func compareFlipped(err error) bool {
	return ErrGone == err // want `sentinel error compared with ==`
}

func compareTyped(err error, sentinel *planError) bool {
	return err == sentinel // want `sentinel error compared with ==`
}

func compareNil(err error) bool {
	return err == nil // ok: nil checks are idiomatic
}

func compareIs(err error) bool {
	return errors.Is(err, ErrGone) // ok
}

// --- fmt.Errorf wrapping -------------------------------------------------

func wrapV(err error) error {
	return fmt.Errorf("scatter: %v", err) // want `fmt\.Errorf formats an error without %w: the cause is flattened to text`
}

func wrapS(name string, err error) error {
	return fmt.Errorf("shard %s failed: %s", name, err) // want `fmt\.Errorf formats an error without %w`
}

func wrapTwo(a, b error) error {
	return fmt.Errorf("gather: %v; hedge: %v", a, b) // want `fmt\.Errorf formats an error without %w`
}

func wrapOK(err error) error {
	return fmt.Errorf("scatter: %w", err) // ok
}

func wrapOneOfTwo(name string, err error) error {
	return fmt.Errorf("shard %s: %w", name, err) // ok
}

func noErrArg(n int) error {
	return fmt.Errorf("bad shard count %d", n) // ok: no error argument
}

func errString(err error) string {
	return fmt.Sprintf("note: %v", err) // ok: Sprintf does not build an error chain
}
