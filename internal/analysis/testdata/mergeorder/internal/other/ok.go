// Package other is outside mergeorder's scope.
package other

func leak(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: not a mergeorder package
		keys = append(keys, k)
	}
	return keys
}
