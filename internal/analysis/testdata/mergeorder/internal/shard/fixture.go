package shard

import "sort"

type resp struct {
	items   []string
	missing []string
}

// --- order leaks ---------------------------------------------------------

func leakReturnedSlice(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order leaks into "keys"`
		keys = append(keys, k)
	}
	return keys
}

func leakResponseField(m map[string]int) *resp {
	out := &resp{}
	for k := range m { // want `map iteration order leaks into "out\.items"`
		out.items = append(out.items, k)
	}
	return out
}

func leakThroughParam(m map[string]int, out *resp) {
	for k := range m { // want `map iteration order leaks into "out\.items"`
		out.items = append(out.items, k)
	}
}

func leakStringConcat(m map[string]int) string {
	s := ""
	for k := range m { // want `string concatenation of "s" inside a map range is order-dependent`
		s += k
	}
	return s
}

func leakFloatSum(m map[string]float64) (total float64) {
	for _, v := range m { // want `floating-point accumulation of "total" inside a map range is order-dependent`
		total += v
	}
	return total
}

// --- clean patterns ------------------------------------------------------

func sortedAfterLoop(m map[string]int) *resp {
	out := &resp{}
	for k := range m { // ok: sorted before it escapes
		out.missing = append(out.missing, k)
	}
	sort.Strings(out.missing)
	return out
}

func sortedLocal(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: sorted before return
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func localOnly(m map[string]int) int {
	var keys []string
	for k := range m { // ok: never escapes
		keys = append(keys, k)
	}
	return len(keys)
}

func intSum(m map[string]int) int {
	total := 0
	for _, v := range m { // ok: integer addition commutes
		total += v
	}
	return total
}

func rangeSlice(xs []string) []string {
	var out []string
	for _, x := range xs { // ok: slice iteration is ordered
		out = append(out, x)
	}
	return out
}
