package fixgolden

import (
	"fmt"
	"os"
)

var ErrStale = os.ErrDeadlineExceeded

func check(err error) bool {
	return err == ErrStale
}

func reject(err error) bool {
	return err != ErrStale
}

func wrap(err error) error {
	return fmt.Errorf("load: %v", err)
}

func wrapBoth(path string, err error) error {
	return fmt.Errorf("open %s: %s", path, err)
}
