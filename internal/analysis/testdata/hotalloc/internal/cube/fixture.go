package cube

import (
	"fmt"
	"sort"
)

// --- per-iteration allocations -------------------------------------------

func sprintfInLoop(xs []int) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, fmt.Sprintf("%d", x)) // want `fmt\.Sprintf inside a hot-kernel loop allocates a string per iteration`
	}
	return out
}

func concatInLoop(xs []string) string {
	s := ""
	for _, x := range xs {
		s += x // want `string concatenation inside a hot-kernel loop reallocates the whole string each iteration`
	}
	return s
}

func unsizedAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*x) // want `append into "out" grows from zero capacity inside a hot-kernel loop`
	}
	return out
}

func emptyLiteralAppend(xs []int) []int {
	out := []int{}
	for _, x := range xs {
		out = append(out, x) // want `append into "out" grows from zero capacity inside a hot-kernel loop`
	}
	return out
}

func closureInLoop(groups [][]int) {
	total := 0
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { // want `capturing closure created inside a loop: one allocation per iteration`
			total++
			return g[i] < g[j]
		})
	}
	_ = total
}

// --- clean patterns ------------------------------------------------------

func presized(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*x) // ok: capacity set up front
	}
	return out
}

func declaredInsideLoop(xs [][]int) int {
	n := 0
	for _, row := range xs {
		var tmp []int
		tmp = append(tmp, row...) // ok: born this iteration, not loop-grown
		n += len(tmp)
	}
	return n
}

func nonCapturingClosure(xs []int) {
	for range xs {
		f := func(a, b int) int { return a + b } // ok: captures nothing, shared static value
		_ = f
	}
}

func invokedClosure(xs []int) int {
	total := 0
	for _, x := range xs {
		func() { total += x }() // ok: immediately invoked, does not escape
	}
	return total
}

func sprintfOutsideLoop(n int) string {
	return fmt.Sprintf("n=%d", n) // ok: not in a loop
}
