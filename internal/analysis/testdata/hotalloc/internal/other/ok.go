// Package other is outside hotalloc's scope: allocations here are not
// on the kernel profile.
package other

import "fmt"

func sprintfInLoop(xs []int) []string {
	var out []string
	for _, x := range xs {
		out = append(out, fmt.Sprintf("%d", x)) // ok: not a hot package
	}
	return out
}
