// Package other is outside the api/server scope: the envelope rules do
// not apply here.
package other

import "net/http"

// Fail may use the plain text helper freely.
func Fail(w http.ResponseWriter) {
	http.Error(w, "nope", http.StatusTeapot)
}
