package server

import "net/http"

func naked(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http\.Error bypasses the v1 error envelope`
}

func errorStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusBadRequest) // want `WriteHeader\(400\)`
}

func successStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusAccepted) // ok: success statuses are not error paths
}

func mappedStatus(w http.ResponseWriter, err error) {
	w.WriteHeader(statusForError(err)) // want `WriteHeader\(statusForError\(\.\.\.\)\)`
}

func statusForError(err error) int {
	if err != nil {
		return http.StatusInternalServerError
	}
	return http.StatusOK
}

func forwarded(w http.ResponseWriter, code int) {
	w.WriteHeader(code) // ok: plain variable, middleware-style forwarding
}

func annotatedSeam(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusNotFound) //maprat:allow(envelope) fixture: the sanctioned text-error seam
}
