// Package core exercises directive misuse: malformed or stale
// //maprat:allow comments must surface as findings, never as silence.
package core

import "time"

func unknownName() int64 {
	return time.Now().Unix() //maprat:allow(nosuchcheck) bogus target // want `time\.Now in mining code` `maprat:allow names unknown analyzer "nosuchcheck"`
}

func missingReason() int64 {
	return time.Now().Unix() //maprat:allow(determinism) // want `time\.Now in mining code` `maprat:allow\(determinism\) has no reason`
}

func emptyName() int64 {
	return time.Now().Unix() //maprat:allow() forgot the analyzer // want `time\.Now in mining code` `maprat:allow directive names no analyzer`
}

func stale() int64 {
	return 42 //maprat:allow(determinism) nothing to suppress here // want `stale maprat:allow\(determinism\)`
}

func wellFormed() int64 {
	return time.Now().Unix() //maprat:allow(determinism) fixture: justified seam, suppressed cleanly
}

func ownLine() int64 {
	//maprat:allow(determinism) fixture: stand-alone directive governs the next line
	return time.Now().Unix()
}
