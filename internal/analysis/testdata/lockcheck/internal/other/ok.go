// Package other is outside lockcheck's scope: the same patterns that
// fire in internal/jobs are ignored here.
package other

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) sendWhileHeld(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v // ok: not a lockcheck package
}
