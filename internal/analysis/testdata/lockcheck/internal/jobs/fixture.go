package jobs

import (
	"os"
	"sync"
	"time"

	"fixture/pkg/client"
)

type manager struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	queue chan int
	wg    sync.WaitGroup
}

// --- blocking while held -------------------------------------------------

func (m *manager) sendWhileHeld(v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queue <- v // want `channel send while holding m\.mu \(locked at line \d+\)`
}

func (m *manager) recvWhileHeld() int {
	m.mu.Lock()
	v := <-m.queue // want `channel receive while holding m\.mu`
	m.mu.Unlock()
	return v
}

func (m *manager) selectWhileHeld(done chan struct{}) {
	m.mu.Lock()
	defer m.mu.Unlock()
	select { // want `select without default while holding m\.mu`
	case <-done:
	case m.queue <- 1:
	}
}

func (m *manager) rpcWhileHeld() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return client.Call() // want `pkg/client RPC Call while holding m\.mu`
}

func (m *manager) waitWhileHeld() {
	m.mu.Lock()
	m.wg.Wait() // want `sync\.WaitGroup\.Wait while holding m\.mu`
	m.mu.Unlock()
}

func (m *manager) sleepWhileHeld() {
	m.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding m\.mu`
	m.mu.Unlock()
}

func (m *manager) ioWhileHeld() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return os.ReadFile("x") // want `os\.ReadFile while holding m\.mu`
}

func (m *manager) readLockWhileHeld() int {
	m.rw.RLock()
	v := <-m.queue // want `channel receive while holding m\.rw \[read\]`
	m.rw.RUnlock()
	return v
}

func (m *manager) rangeChanWhileHeld() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for v := range m.queue { // want `range over channel while holding m\.mu`
		total += v
	}
	return total
}

// --- pairing and double unlock -------------------------------------------

func (m *manager) leakOnEarlyReturn(fail bool) error {
	m.mu.Lock()
	if fail {
		return errLeak // want `return while m\.mu is still locked \(Lock at line \d+\): missing Unlock on this path`
	}
	m.mu.Unlock()
	return nil
}

func (m *manager) leakAtEnd() {
	m.mu.Lock()
	m.queue = make(chan int)
} // want `return while m\.mu is still locked`

func (m *manager) doubleUnlockWithDefer(fail bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fail {
		m.mu.Unlock() // want `m\.mu released here but a deferred Unlock \(line \d+\) fires again on return: double unlock`
		return errLeak
	}
	return nil
}

func (m *manager) unlockAgainstDefer() {
	defer m.mu.Unlock()
	m.mu.Unlock() // want `explicit m\.mu\.Unlock with a deferred Unlock pending \(deferred at line \d+\): double unlock`
}

func (m *manager) selfDeadlock() {
	m.mu.Lock()
	m.mu.Lock() // want `m\.mu\.Lock while already held \(locked at line \d+\): self-deadlock`
	m.mu.Unlock()
}

var errLeak = os.ErrInvalid

// --- clean patterns ------------------------------------------------------

func (m *manager) nonBlockingSend(v int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	select { // ok: default makes the select non-blocking
	case m.queue <- v:
		return true
	default:
		return false
	}
}

func (m *manager) unlockBeforeBlocking() int {
	m.mu.Lock()
	q := m.queue
	m.mu.Unlock()
	return <-q // ok: released before blocking
}

func (m *manager) emptyCriticalSection() {
	m.mu.Lock()
	m.mu.Unlock()
	// ok: the lock is a memory barrier here
}

func (m *manager) goroutineDoesNotInherit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	go func() {
		m.wg.Wait() // ok: runs outside the creator's critical section
	}()
}

func (m *manager) releaseAndReacquire(fail bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fail {
		m.mu.Unlock()
		m.wg.Wait() // ok: released across the wait
		m.mu.Lock()
	}
}

func (m *manager) branchesBalance(fast bool) {
	m.mu.Lock()
	if fast {
		m.mu.Unlock()
		return
	}
	m.queue = nil
	m.mu.Unlock()
}

func (m *manager) readersPair() int {
	m.rw.RLock()
	defer m.rw.RUnlock()
	return len(m.queue)
}
