// Package client stands in for the real RPC client: every call in here
// counts as a blocking remote operation to lockcheck.
package client

func Call() error { return nil }
