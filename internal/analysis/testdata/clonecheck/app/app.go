package app

import "fixture/internal/store"

type Explanation struct{ IDs []int32 }

// Clone returns a deep copy safe for callers to mutate.
func (e *Explanation) Clone() *Explanation {
	if e == nil {
		return nil
	}
	out := &Explanation{IDs: make([]int32, len(e.IDs))}
	copy(out.IDs, e.IDs)
	return out
}

func returnAsserted(c *store.LRU, key string) *Explanation {
	if v, ok := c.Get(key); ok {
		return v.(*Explanation) // want `pointer fetched from store\.LRU\.Get escapes via return without Clone`
	}
	return nil
}

func returnCloned(c *store.LRU, key string) *Explanation {
	if v, ok := c.Get(key); ok {
		return v.(*Explanation).Clone() // ok: deep copy laundered the cache pointer
	}
	return nil
}

func returnViaVar(c *store.LRU, key string) *Explanation {
	v, _ := c.Get(key)
	ex := v.(*Explanation)
	return ex // want `pointer fetched from store\.LRU\.Get escapes via return without Clone`
}

func returnClonedVar(c *store.LRU, key string) *Explanation {
	v, _ := c.Get(key)
	ex := v.(*Explanation).Clone()
	return ex // ok: ex was assigned from Clone, not from the cache
}

func flightEscape(f *store.Flight, key string) (any, error) {
	v, _, err := f.Do(key, func() (any, error) { return &Explanation{}, nil })
	return v, err // want `pointer fetched from store\.Flight\.Do escapes via return without Clone`
}

func planContract(pc *store.PlanCache, key string) (*store.Plan, error) {
	p, _, err := pc.GetOrBuild(key, func() (*store.Plan, error) { return &store.Plan{}, nil })
	return p, err //maprat:allow(clonecheck) fixture: Plan is immutable by contract
}
