// Package store stubs the real repro/internal/store cache surface: the
// clonecheck analyzer keys on these type and method names under any
// internal/store package path.
package store

// LRU mimics the result cache.
type LRU struct{}

// Get returns the cached value for key, if present.
func (c *LRU) Get(key string) (any, bool) { return nil, false }

// Flight mimics the singleflight layer.
type Flight struct{}

// Do returns the cached or freshly built value for key.
func (f *Flight) Do(key string, fn func() (any, error)) (any, bool, error) {
	v, err := fn()
	return v, false, err
}

// Plan mimes the immutable materialized plan.
type Plan struct{ IDs []int32 }

// PlanCache mimics the materialized-plan tier.
type PlanCache struct{}

// GetOrBuild returns the cached plan or builds one.
func (pc *PlanCache) GetOrBuild(key string, build func() (*Plan, error)) (*Plan, bool, error) {
	p, err := build()
	return p, false, err
}
