package snap

import "unsafe"

// layoutOK is this file's layout guard, mirroring the real snapshot
// package's tupleLayoutCompatible check.
var layoutOK = unsafe.Sizeof(int32(0)) == 4

func aliasGuarded(b []byte) []int32 {
	if !layoutOK || len(b) < 4 {
		return nil
	}
	p := unsafe.Pointer(&b[0])
	return unsafe.Slice((*int32)(p), len(b)/4) // ok: file carries a layout guard
}

func writeThrough(b []byte) {
	s := aliasGuarded(b)
	if len(s) > 0 {
		s[0] = 1 // want `write through aliased slice`
	}
}

func copyInto(b []byte, src []int32) {
	s := aliasGuarded(b)
	copy(s, src) // want `copy into aliased slice`
}

func readOnly(b []byte) int32 {
	s := aliasGuarded(b)
	if len(s) == 0 {
		return 0
	}
	return s[0] // ok: reads through the alias are fine
}

func decodeFallback(b []byte) []int32 {
	s := aliasGuarded(b)
	if s == nil {
		s = make([]int32, len(b)/4)
		for i := range s {
			s[i] = int32(i) // ok: reassignment from make laundered the alias
		}
	}
	return s
}

func annotatedScratch(b []byte) {
	s := aliasGuarded(b)
	if len(s) > 0 {
		s[0] = 2 //maprat:allow(aliasguard) fixture: scratch region owned by this writer
	}
}
