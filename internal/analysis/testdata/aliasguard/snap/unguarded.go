package snap

import "unsafe"

func aliasNoGuard(b []byte) []int32 {
	if len(b) < 4 {
		return nil
	}
	p := unsafe.Pointer(&b[0])
	return unsafe.Slice((*int32)(p), len(b)/4) // want `unsafe\.Slice in a file with no layout guard`
}
