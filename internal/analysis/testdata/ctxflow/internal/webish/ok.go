// Package webish is outside the goroutine-scope packages: ctx-blind
// goroutines are not flagged here, but Background/TODO still are.
package webish

func Spawn() {
	done := make(chan struct{})
	go func() { close(done) }() // ok: outside the mining/jobs goroutine scope
	<-done
}
