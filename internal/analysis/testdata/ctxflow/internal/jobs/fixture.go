package jobs

import "context"

func background() context.Context {
	return context.Background() // want `context\.Background`
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO`
}

func badOrder(name string, ctx context.Context) { // want `context\.Context must be the first parameter`
	_ = name
	_ = ctx
}

func goodOrder(ctx context.Context, name string) {
	_ = name
	_ = ctx
}

func spawnBlind() {
	go func() {}() // want `goroutine launched without a context`
}

func spawnUsesCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func spawnPassesCtx(ctx context.Context) {
	go consume(ctx)
}

func consume(ctx context.Context) { <-ctx.Done() }

func annotatedRoot() context.Context {
	return context.Background() //maprat:allow(ctxflow) fixture: annotated lifecycle root
}

func annotatedSpawn() {
	//maprat:allow(ctxflow) fixture: bounded shard joined before return
	go func() {}()
}
