// Command tool shows the main-package exemption: Background is the
// legitimate context root here.
package main

import "context"

func main() {
	ctx := context.Background() // ok: main owns the root context
	run(ctx)
}

func run(ctx context.Context) { <-ctx.Done() }
