package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// mergePkgSuffixes are the distributed/serving packages where map
// iteration order must never reach merged output: the scatter-gather
// tier's byte-identical-to-single-node guarantee dies the first time a
// per-shard map range orders a response payload.
var mergePkgSuffixes = []string{
	"internal/shard",
	"internal/jobs",
	"internal/api",
	"internal/server",
	"internal/fault",
}

// Mergeorder flags map-range loops whose per-element effects escape the
// function — an appended slice or string/float aggregate that is
// returned, written through a parameter/receiver, or stored in a named
// result — without the slice ever passing through a sort. Go randomizes
// map iteration per execution, so such output differs run to run; in the
// scatter-gather tier that silently breaks k-way merge determinism.
var Mergeorder = &Analyzer{
	Name: "mergeorder",
	Doc: "in internal/{shard,jobs,api,server,fault}: forbid map-iteration " +
		"order from reaching escaping output — slices appended inside a " +
		"map range must be sorted somewhere in the same function, and " +
		"string/float aggregation inside a map range is order-dependent " +
		"and needs a deterministic iteration order instead",
	Version: "1",
	Run:     runMergeorder,
}

func inMergePkg(path string) bool {
	for _, s := range mergePkgSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

func runMergeorder(pass *Pass) error {
	if !inMergePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkMergeOrder(pass, fn.Type, fn.Recv, fn.Body)
				}
			case *ast.FuncLit:
				checkMergeOrder(pass, fn.Type, nil, fn.Body)
			}
			return true
		})
	}
	return nil
}

type mergeCandidate struct {
	expr ast.Expr  // the append target / aggregate LHS
	pos  token.Pos // the range statement
	kind string    // "append" or the aggregate description
}

// checkMergeOrder audits one function body. The analysis is keyed on
// types.ExprString of the written expression, which lets selector
// targets (out.missing, resp.Items) participate — the shard gatherer
// builds its missing-worker list exactly that way.
func checkMergeOrder(pass *Pass, ftype *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) {
	var cands []mergeCandidate

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Nested literals are audited as their own functions.
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		collectMapRangeEffects(pass, rs, &cands)
		return true
	})
	if len(cands) == 0 {
		return
	}

	escaping := escapingRoots(pass, ftype, recv, body)
	sorted := sortedExprs(pass, body)

	for _, c := range cands {
		root, ok := rootIdentObj(pass, c.expr)
		if !ok || !escaping[root] {
			continue
		}
		key := types.ExprString(c.expr)
		if c.kind == "append" {
			if sorted[key] {
				continue
			}
			pass.Reportf(c.pos, "map iteration order leaks into %q: the slice escapes this function unsorted; sort it (sort/slices) before it leaves, or iterate sorted keys", key)
			continue
		}
		pass.Reportf(c.pos, "%s of %q inside a map range is order-dependent: map iteration order is randomized per run; iterate sorted keys instead", c.kind, key)
	}
}

// collectMapRangeEffects gathers order-sensitive writes inside one
// map-range body: appends, and string/float accumulation (integer
// aggregation commutes and is exempt).
func collectMapRangeEffects(pass *Pass, rs *ast.RangeStmt, cands *[]mergeCandidate) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			if len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.Info, call) {
				return true
			}
			// Self-append only: x = append(x, ...). Append into a fresh
			// variable does not accumulate across iterations.
			if len(call.Args) == 0 || types.ExprString(ast.Unparen(call.Args[0])) != types.ExprString(lhs) {
				return true
			}
			*cands = append(*cands, mergeCandidate{expr: lhs, pos: rs.Pos(), kind: "append"})
		case token.ADD_ASSIGN, token.MUL_ASSIGN, token.SUB_ASSIGN, token.QUO_ASSIGN:
			tv, ok := pass.Info.Types[lhs]
			if !ok {
				return true
			}
			switch b, _ := tv.Type.Underlying().(*types.Basic); {
			case b == nil:
			case b.Info()&types.IsString != 0:
				*cands = append(*cands, mergeCandidate{expr: lhs, pos: rs.Pos(), kind: "string concatenation"})
			case b.Info()&(types.IsFloat|types.IsComplex) != 0:
				// Float addition does not associate; summation order changes
				// the low bits and two shards disagree byte-for-byte.
				*cands = append(*cands, mergeCandidate{expr: lhs, pos: rs.Pos(), kind: "floating-point accumulation"})
			}
		}
		return true
	})
}

// escapingRoots computes the objects whose mutations are visible outside
// the function: parameters and receivers (callers see writes through
// them), named results, and any identifier mentioned in a return
// statement.
func escapingRoots(pass *Pass, ftype *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addFields(recv)
	addFields(ftype.Params)
	addFields(ftype.Results)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ret.Results {
			if root, ok := rootIdentObj(pass, e); ok {
				out[root] = true
			}
		}
		return true
	})
	return out
}

// sortedExprs collects the ExprString of every argument handed to a
// sort/slices call anywhere in the function: an append target that later
// flows through sort.Strings or slices.SortFunc is order-safe no matter
// how it was built.
func sortedExprs(pass *Pass, body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			out[types.ExprString(ast.Unparen(a))] = true
			// sort.Slice(out.items, ...) sorts the field too; register the
			// unparenthesized sub-expressions of &x as well.
			if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
				out[types.ExprString(ast.Unparen(u.X))] = true
			}
		}
		return true
	})
	return out
}

// rootIdentObj resolves the base identifier of an lvalue expression
// (x, x.f, x.f[i]) to its object.
func rootIdentObj(pass *Pass, e ast.Expr) (types.Object, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := identObj(pass.Info, x)
			return obj, obj != nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}
