package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMergeorder(t *testing.T) {
	analysistest.Run(t, "testdata/mergeorder", analysis.Mergeorder)
}
