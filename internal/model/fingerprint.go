package model

import (
	"encoding/binary"
	"hash/fnv"
)

// Fingerprint returns the stable 64-bit dataset identity the engine's
// ETag machinery is built on: an FNV-64a hash of the entity counts, the
// rating time range [lo, hi], and a strided sample of the rating log.
// Two engines opened over the same data agree on it; any edit to the log
// (new ratings, different scores, reordered load) almost surely changes
// it.
//
// The algorithm lives here — not on the engine — because the snapshot
// writer must stamp the exact same value into a snapshot header that the
// engine will later trust without re-deriving it.
func Fingerprint(ds *Dataset, lo, hi int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(len(ds.Users)))
	put(uint64(len(ds.Items)))
	put(uint64(len(ds.Ratings)))
	put(uint64(lo))
	put(uint64(hi))
	// A strided sample bounds the hash to ~4K ratings regardless of
	// scale while still touching the whole log.
	stride := len(ds.Ratings)/4096 + 1
	for i := 0; i < len(ds.Ratings); i += stride {
		r := &ds.Ratings[i]
		put(uint64(r.UserID))
		put(uint64(r.ItemID))
		put(uint64(r.Score))
		put(uint64(r.Unix))
	}
	return h.Sum64()
}

// LogHash returns an FNV-64a hash over every rating in load order — the
// full-log identity a snapshot header carries next to the strided
// Fingerprint. Unlike Fingerprint it touches each rating, so two logs
// differing in any single tuple disagree on it with near certainty.
func LogHash(ratings []Rating) uint64 {
	h := fnv.New64a()
	var buf [32]byte
	for i := range ratings {
		r := &ratings[i]
		binary.LittleEndian.PutUint64(buf[0:], uint64(r.UserID))
		binary.LittleEndian.PutUint64(buf[8:], uint64(r.ItemID))
		binary.LittleEndian.PutUint64(buf[16:], uint64(r.Score))
		binary.LittleEndian.PutUint64(buf[24:], uint64(r.Unix))
		h.Write(buf[:])
	}
	return h.Sum64()
}
