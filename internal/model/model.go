// Package model defines the data model of a collaborative rating site as
// used by MapRat (VLDB 2012): a site D = ⟨I, U, R⟩ of items, reviewers and
// ratings, where each rating is a triple ⟨i, u, s⟩ with an integer score
// s ∈ [1,5], reviewers carry the MovieLens demographic attributes
// (age, gender, occupation, zip code) and items carry title, genres and the
// IMDB-style enrichment attributes (actors, directors).
package model

import (
	"fmt"
	"time"
)

// MinScore and MaxScore bound the integer rating scale s ∈ [1,5] from §2.1
// of the paper.
const (
	MinScore = 1
	MaxScore = 5
)

// Gender is a reviewer's gender as recorded by MovieLens.
type Gender uint8

// Gender values. MovieLens records exactly M and F.
const (
	Male Gender = iota
	Female
	NumGenders int = iota
)

// String returns the single-letter MovieLens code for g.
func (g Gender) String() string {
	switch g {
	case Male:
		return "M"
	case Female:
		return "F"
	}
	return fmt.Sprintf("Gender(%d)", uint8(g))
}

// Label returns a human-readable label used in group descriptions.
func (g Gender) Label() string {
	switch g {
	case Male:
		return "male"
	case Female:
		return "female"
	}
	return g.String()
}

// ParseGender converts a MovieLens gender code ("M" or "F") to a Gender.
func ParseGender(s string) (Gender, error) {
	switch s {
	case "M", "m":
		return Male, nil
	case "F", "f":
		return Female, nil
	}
	return 0, fmt.Errorf("model: unknown gender code %q", s)
}

// AgeBucket is a MovieLens age bucket. MovieLens 1M encodes reviewer age as
// one of seven bucket codes (1, 18, 25, 35, 45, 50, 56); we store the dense
// bucket index 0..6.
type AgeBucket uint8

// Age buckets in MovieLens 1M order.
const (
	AgeUnder18    AgeBucket = iota // code 1:  "Under 18"
	Age18to24                      // code 18: "18-24"
	Age25to34                      // code 25: "25-34"
	Age35to44                      // code 35: "35-44"
	Age45to49                      // code 45: "45-49"
	Age50to55                      // code 50: "50-55"
	Age56Plus                      // code 56: "56+"
	NumAgeBuckets int       = iota
)

var ageCodes = [NumAgeBuckets]int{1, 18, 25, 35, 45, 50, 56}

var ageLabels = [NumAgeBuckets]string{
	"under 18", "18-24", "25-34", "35-44", "45-49", "50-55", "56+",
}

// Code returns the MovieLens numeric code for the bucket (1, 18, 25, ...).
func (a AgeBucket) Code() int {
	if int(a) < NumAgeBuckets {
		return ageCodes[a]
	}
	return -1
}

// Label returns the human-readable age range for the bucket.
func (a AgeBucket) Label() string {
	if int(a) < NumAgeBuckets {
		return ageLabels[a]
	}
	return fmt.Sprintf("AgeBucket(%d)", uint8(a))
}

// String returns the bucket label.
func (a AgeBucket) String() string { return a.Label() }

// ParseAgeCode converts a MovieLens age code (1, 18, 25, 35, 45, 50, 56) to
// its AgeBucket.
func ParseAgeCode(code int) (AgeBucket, error) {
	for i, c := range ageCodes {
		if c == code {
			return AgeBucket(i), nil
		}
	}
	return 0, fmt.Errorf("model: unknown MovieLens age code %d", code)
}

// BucketForAge returns the bucket containing an exact age in years.
func BucketForAge(years int) AgeBucket {
	switch {
	case years < 18:
		return AgeUnder18
	case years <= 24:
		return Age18to24
	case years <= 34:
		return Age25to34
	case years <= 44:
		return Age35to44
	case years <= 49:
		return Age45to49
	case years <= 55:
		return Age50to55
	default:
		return Age56Plus
	}
}

// Occupation is a MovieLens occupation code (0..20).
type Occupation uint8

// NumOccupations is the size of the MovieLens 1M occupation vocabulary.
const NumOccupations = 21

var occupationLabels = [NumOccupations]string{
	"other", "academic/educator", "artist", "clerical/admin",
	"college/grad student", "customer service", "doctor/health care",
	"executive/managerial", "farmer", "homemaker", "K-12 student", "lawyer",
	"programmer", "retired", "sales/marketing", "scientist", "self-employed",
	"technician/engineer", "tradesman/craftsman", "unemployed", "writer",
}

// Label returns the MovieLens occupation label.
func (o Occupation) Label() string {
	if int(o) < NumOccupations {
		return occupationLabels[o]
	}
	return fmt.Sprintf("Occupation(%d)", uint8(o))
}

// String returns the occupation label.
func (o Occupation) String() string { return o.Label() }

// ParseOccupation validates a MovieLens occupation code.
func ParseOccupation(code int) (Occupation, error) {
	if code < 0 || code >= NumOccupations {
		return 0, fmt.Errorf("model: occupation code %d out of range [0,%d]", code, NumOccupations-1)
	}
	return Occupation(code), nil
}

// OccupationByLabel resolves a label such as "programmer" to its code.
func OccupationByLabel(label string) (Occupation, bool) {
	for i, l := range occupationLabels {
		if l == label {
			return Occupation(i), true
		}
	}
	return 0, false
}

// User is a reviewer: a member of U with the MovieLens demographic
// attribute set UA = {gender, age, occupation, zipcode}. State and City are
// derived from the zip code at load time (see internal/geo) because the
// paper's groups anchor on geography.
type User struct {
	ID         int
	Gender     Gender
	Age        AgeBucket
	Occupation Occupation
	Zip        string
	State      string // two-letter state code derived from Zip ("" if unknown)
	City       string // city derived from Zip ("" if unknown)
}

// Validate reports the first schema violation in u, if any.
func (u *User) Validate() error {
	if u.ID <= 0 {
		return fmt.Errorf("model: user id %d must be positive", u.ID)
	}
	if int(u.Gender) >= NumGenders {
		return fmt.Errorf("model: user %d has invalid gender %d", u.ID, u.Gender)
	}
	if int(u.Age) >= NumAgeBuckets {
		return fmt.Errorf("model: user %d has invalid age bucket %d", u.ID, u.Age)
	}
	if int(u.Occupation) >= NumOccupations {
		return fmt.Errorf("model: user %d has invalid occupation %d", u.ID, u.Occupation)
	}
	if u.Zip == "" {
		return fmt.Errorf("model: user %d has empty zip code", u.ID)
	}
	return nil
}

// Item is a ratable item: a member of I with attribute set IA. For movies
// the attributes are title, production year, genres and the IMDB-style
// enrichment (actors, directors) described in §3 of the paper.
type Item struct {
	ID        int
	Title     string // title without the year suffix, e.g. "Toy Story"
	Year      int
	Genres    []string
	Actors    []string
	Directors []string
}

// Validate reports the first schema violation in it, if any.
func (it *Item) Validate() error {
	if it.ID <= 0 {
		return fmt.Errorf("model: item id %d must be positive", it.ID)
	}
	if it.Title == "" {
		return fmt.Errorf("model: item %d has empty title", it.ID)
	}
	return nil
}

// Rating is one rating triple ⟨i, u, s⟩ plus the timestamp MovieLens records
// with every rating; the timestamp drives the paper's time-slider dimension.
type Rating struct {
	UserID int
	ItemID int
	Score  int   // integer score in [MinScore, MaxScore]
	Unix   int64 // seconds since the Unix epoch
}

// Time returns the rating's timestamp as a time.Time in UTC.
func (r Rating) Time() time.Time { return time.Unix(r.Unix, 0).UTC() }

// Validate reports the first schema violation in r, if any.
func (r Rating) Validate() error {
	if r.UserID <= 0 {
		return fmt.Errorf("model: rating has invalid user id %d", r.UserID)
	}
	if r.ItemID <= 0 {
		return fmt.Errorf("model: rating has invalid item id %d", r.ItemID)
	}
	if r.Score < MinScore || r.Score > MaxScore {
		return fmt.Errorf("model: rating score %d outside [%d,%d]", r.Score, MinScore, MaxScore)
	}
	return nil
}
