package model

import (
	"fmt"
	"sort"
)

// Dataset is a complete collaborative rating site D = ⟨I, U, R⟩ held in
// memory. Users and Items are addressable by ID through the lookup maps
// built by Reindex; Ratings is the flat rating log in load order.
type Dataset struct {
	Users   []User
	Items   []Item
	Ratings []Rating

	userByID map[int]int // user ID -> index into Users
	itemByID map[int]int // item ID -> index into Items
}

// NewDataset builds a dataset from pre-validated slices and indexes it.
func NewDataset(users []User, items []Item, ratings []Rating) (*Dataset, error) {
	d := &Dataset{Users: users, Items: items, Ratings: ratings}
	if err := d.Reindex(); err != nil {
		return nil, err
	}
	return d, nil
}

// Reindex rebuilds the ID lookup maps. It must be called after the Users or
// Items slices are mutated structurally.
func (d *Dataset) Reindex() error {
	d.userByID = make(map[int]int, len(d.Users))
	for i := range d.Users {
		id := d.Users[i].ID
		if _, dup := d.userByID[id]; dup {
			return fmt.Errorf("model: duplicate user id %d", id)
		}
		d.userByID[id] = i
	}
	d.itemByID = make(map[int]int, len(d.Items))
	for i := range d.Items {
		id := d.Items[i].ID
		if _, dup := d.itemByID[id]; dup {
			return fmt.Errorf("model: duplicate item id %d", id)
		}
		d.itemByID[id] = i
	}
	return nil
}

// UserByID returns the user with the given ID, or nil if absent.
func (d *Dataset) UserByID(id int) *User {
	if i, ok := d.userByID[id]; ok {
		return &d.Users[i]
	}
	return nil
}

// ItemByID returns the item with the given ID, or nil if absent.
func (d *Dataset) ItemByID(id int) *Item {
	if i, ok := d.itemByID[id]; ok {
		return &d.Items[i]
	}
	return nil
}

// Validate checks every user, item and rating and verifies referential
// integrity of the rating log. It returns the first violation found.
func (d *Dataset) Validate() error {
	for i := range d.Users {
		if err := d.Users[i].Validate(); err != nil {
			return err
		}
	}
	for i := range d.Items {
		if err := d.Items[i].Validate(); err != nil {
			return err
		}
	}
	for i := range d.Ratings {
		r := d.Ratings[i]
		if err := r.Validate(); err != nil {
			return fmt.Errorf("model: rating %d: %w", i, err)
		}
		if d.UserByID(r.UserID) == nil {
			return fmt.Errorf("model: rating %d references unknown user %d", i, r.UserID)
		}
		if d.ItemByID(r.ItemID) == nil {
			return fmt.Errorf("model: rating %d references unknown item %d", i, r.ItemID)
		}
	}
	return nil
}

// Stats summarizes a dataset for logging and sanity checks.
type Stats struct {
	Users      int
	Items      int
	Ratings    int
	MeanScore  float64
	MinUnix    int64
	MaxUnix    int64
	ScoreCount [MaxScore + 1]int // ScoreCount[s] = number of ratings with score s
}

// Stats computes summary statistics over the rating log.
func (d *Dataset) Stats() Stats {
	s := Stats{Users: len(d.Users), Items: len(d.Items), Ratings: len(d.Ratings)}
	if len(d.Ratings) == 0 {
		return s
	}
	s.MinUnix = d.Ratings[0].Unix
	s.MaxUnix = d.Ratings[0].Unix
	total := 0
	for _, r := range d.Ratings {
		total += r.Score
		if r.Score >= MinScore && r.Score <= MaxScore {
			s.ScoreCount[r.Score]++
		}
		if r.Unix < s.MinUnix {
			s.MinUnix = r.Unix
		}
		if r.Unix > s.MaxUnix {
			s.MaxUnix = r.Unix
		}
	}
	s.MeanScore = float64(total) / float64(len(d.Ratings))
	return s
}

// ItemsByTitle returns the items whose title matches exactly, sorted by
// year then ID. MovieLens titles (e.g. sequels) are not unique.
func (d *Dataset) ItemsByTitle(title string) []*Item {
	var out []*Item
	for i := range d.Items {
		if d.Items[i].Title == title {
			out = append(out, &d.Items[i])
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Year != out[b].Year {
			return out[a].Year < out[b].Year
		}
		return out[a].ID < out[b].ID
	})
	return out
}
