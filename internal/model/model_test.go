package model

import (
	"testing"
	"testing/quick"
)

func TestGenderRoundTrip(t *testing.T) {
	for g := Male; int(g) < NumGenders; g++ {
		parsed, err := ParseGender(g.String())
		if err != nil {
			t.Fatalf("ParseGender(%q): %v", g.String(), err)
		}
		if parsed != g {
			t.Errorf("round trip %v -> %q -> %v", g, g.String(), parsed)
		}
	}
}

func TestParseGenderLowercase(t *testing.T) {
	if g, err := ParseGender("f"); err != nil || g != Female {
		t.Errorf("ParseGender(\"f\") = %v, %v; want Female, nil", g, err)
	}
	if _, err := ParseGender("X"); err == nil {
		t.Error("ParseGender(\"X\") should fail")
	}
}

func TestAgeBucketRoundTrip(t *testing.T) {
	for a := AgeUnder18; int(a) < NumAgeBuckets; a++ {
		parsed, err := ParseAgeCode(a.Code())
		if err != nil {
			t.Fatalf("ParseAgeCode(%d): %v", a.Code(), err)
		}
		if parsed != a {
			t.Errorf("round trip %v -> %d -> %v", a, a.Code(), parsed)
		}
	}
	if _, err := ParseAgeCode(99); err == nil {
		t.Error("ParseAgeCode(99) should fail")
	}
}

func TestBucketForAge(t *testing.T) {
	cases := []struct {
		years int
		want  AgeBucket
	}{
		{5, AgeUnder18}, {17, AgeUnder18}, {18, Age18to24}, {24, Age18to24},
		{25, Age25to34}, {34, Age25to34}, {35, Age35to44}, {44, Age35to44},
		{45, Age45to49}, {49, Age45to49}, {50, Age50to55}, {55, Age50to55},
		{56, Age56Plus}, {90, Age56Plus},
	}
	for _, c := range cases {
		if got := BucketForAge(c.years); got != c.want {
			t.Errorf("BucketForAge(%d) = %v, want %v", c.years, got, c.want)
		}
	}
}

func TestBucketForAgeAlwaysValid(t *testing.T) {
	f := func(years uint8) bool {
		b := BucketForAge(int(years))
		return int(b) < NumAgeBuckets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOccupationRoundTrip(t *testing.T) {
	for code := 0; code < NumOccupations; code++ {
		o, err := ParseOccupation(code)
		if err != nil {
			t.Fatalf("ParseOccupation(%d): %v", code, err)
		}
		back, ok := OccupationByLabel(o.Label())
		if !ok || back != o {
			t.Errorf("label round trip for occupation %d (%q) failed", code, o.Label())
		}
	}
	if _, err := ParseOccupation(NumOccupations); err == nil {
		t.Error("ParseOccupation out of range should fail")
	}
	if _, err := ParseOccupation(-1); err == nil {
		t.Error("ParseOccupation(-1) should fail")
	}
}

func TestUserValidate(t *testing.T) {
	valid := User{ID: 1, Gender: Female, Age: Age18to24, Occupation: 4, Zip: "94110"}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid user rejected: %v", err)
	}
	cases := []User{
		{ID: 0, Zip: "94110"},
		{ID: 2, Gender: Gender(9), Zip: "94110"},
		{ID: 3, Age: AgeBucket(99), Zip: "94110"},
		{ID: 4, Occupation: Occupation(99), Zip: "94110"},
		{ID: 5},
	}
	for i, u := range cases {
		if err := u.Validate(); err == nil {
			t.Errorf("case %d: invalid user %+v accepted", i, u)
		}
	}
}

func TestRatingValidate(t *testing.T) {
	ok := Rating{UserID: 1, ItemID: 2, Score: 3, Unix: 0}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid rating rejected: %v", err)
	}
	bad := []Rating{
		{UserID: 0, ItemID: 1, Score: 3},
		{UserID: 1, ItemID: 0, Score: 3},
		{UserID: 1, ItemID: 1, Score: 0},
		{UserID: 1, ItemID: 1, Score: 6},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid rating %+v accepted", i, r)
		}
	}
}

func TestRatingScoreBoundsProperty(t *testing.T) {
	f := func(score int8) bool {
		r := Rating{UserID: 1, ItemID: 1, Score: int(score)}
		err := r.Validate()
		inRange := int(score) >= MinScore && int(score) <= MaxScore
		return (err == nil) == inRange
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	users := []User{
		{ID: 1, Gender: Male, Age: Age25to34, Occupation: 12, Zip: "94110"},
		{ID: 2, Gender: Female, Age: AgeUnder18, Occupation: 10, Zip: "10001"},
	}
	items := []Item{
		{ID: 1, Title: "Toy Story", Year: 1995, Genres: []string{"Animation", "Children's", "Comedy"}},
		{ID: 2, Title: "Heat", Year: 1995, Genres: []string{"Action", "Crime", "Thriller"}},
	}
	ratings := []Rating{
		{UserID: 1, ItemID: 1, Score: 5, Unix: 978300000},
		{UserID: 2, ItemID: 1, Score: 4, Unix: 978300100},
		{UserID: 1, ItemID: 2, Score: 3, Unix: 978300200},
	}
	d, err := NewDataset(users, items, ratings)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	return d
}

func TestDatasetLookups(t *testing.T) {
	d := testDataset(t)
	if u := d.UserByID(2); u == nil || u.Gender != Female {
		t.Errorf("UserByID(2) = %+v", u)
	}
	if u := d.UserByID(99); u != nil {
		t.Errorf("UserByID(99) should be nil, got %+v", u)
	}
	if it := d.ItemByID(1); it == nil || it.Title != "Toy Story" {
		t.Errorf("ItemByID(1) = %+v", it)
	}
	if it := d.ItemByID(42); it != nil {
		t.Errorf("ItemByID(42) should be nil, got %+v", it)
	}
}

func TestDatasetValidate(t *testing.T) {
	d := testDataset(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	d.Ratings = append(d.Ratings, Rating{UserID: 99, ItemID: 1, Score: 3})
	if err := d.Validate(); err == nil {
		t.Error("dangling user reference accepted")
	}
	d.Ratings[len(d.Ratings)-1] = Rating{UserID: 1, ItemID: 99, Score: 3}
	if err := d.Validate(); err == nil {
		t.Error("dangling item reference accepted")
	}
}

func TestDatasetDuplicateIDs(t *testing.T) {
	users := []User{{ID: 1, Zip: "1"}, {ID: 1, Zip: "2"}}
	if _, err := NewDataset(users, nil, nil); err == nil {
		t.Error("duplicate user id accepted")
	}
	items := []Item{{ID: 7, Title: "A"}, {ID: 7, Title: "B"}}
	if _, err := NewDataset(nil, items, nil); err == nil {
		t.Error("duplicate item id accepted")
	}
}

func TestDatasetStats(t *testing.T) {
	d := testDataset(t)
	s := d.Stats()
	if s.Users != 2 || s.Items != 2 || s.Ratings != 3 {
		t.Errorf("counts = %+v", s)
	}
	wantMean := (5.0 + 4.0 + 3.0) / 3.0
	if s.MeanScore != wantMean {
		t.Errorf("MeanScore = %f, want %f", s.MeanScore, wantMean)
	}
	if s.MinUnix != 978300000 || s.MaxUnix != 978300200 {
		t.Errorf("time range = [%d,%d]", s.MinUnix, s.MaxUnix)
	}
	if s.ScoreCount[5] != 1 || s.ScoreCount[4] != 1 || s.ScoreCount[3] != 1 {
		t.Errorf("score histogram = %v", s.ScoreCount)
	}
}

func TestStatsEmptyDataset(t *testing.T) {
	d := &Dataset{}
	if err := d.Reindex(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Ratings != 0 || s.MeanScore != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestItemsByTitle(t *testing.T) {
	items := []Item{
		{ID: 3, Title: "King Kong", Year: 2005},
		{ID: 1, Title: "King Kong", Year: 1933},
		{ID: 2, Title: "Heat", Year: 1995},
	}
	d, err := NewDataset(nil, items, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := d.ItemsByTitle("King Kong")
	if len(got) != 2 || got[0].Year != 1933 || got[1].Year != 2005 {
		t.Errorf("ItemsByTitle order wrong: %+v", got)
	}
	if got := d.ItemsByTitle("Nope"); len(got) != 0 {
		t.Errorf("ItemsByTitle miss returned %+v", got)
	}
}

func TestRatingTime(t *testing.T) {
	r := Rating{UserID: 1, ItemID: 1, Score: 5, Unix: 978307200}
	tm := r.Time()
	if tm.Year() != 2001 || tm.Month() != 1 || tm.Day() != 1 {
		t.Errorf("Time() = %v, want 2001-01-01", tm)
	}
}
