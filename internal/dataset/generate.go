package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cube"
	"repro/internal/geo"
	"repro/internal/model"
	"repro/internal/rng"
)

// GenConfig parameterizes the synthetic generator. The defaults reproduce
// the MovieLens 1M scale the paper demos on (§3: ~1M ratings over 3 900
// movies by 6 040 users).
type GenConfig struct {
	Seed   int64
	Users  int
	Movies int
	// Ratings is the target rating count; the realized count differs by a
	// small rounding margin because activity is distributed per user.
	Ratings int
	// Start and End bound rating timestamps. The real MovieLens 1M window
	// is Apr 2000–Feb 2003; the default widens it to 1996–2003 so the
	// paper's time-slider exploration has eight yearly windows to show.
	Start, End time.Time
}

// DefaultGenConfig is the full MovieLens-1M-scale configuration.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:    1,
		Users:   6040,
		Movies:  3900,
		Ratings: 1_000_000,
		Start:   time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC),
		End:     time.Date(2003, 2, 28, 0, 0, 0, 0, time.UTC),
	}
}

// SmallGenConfig is a reduced configuration for unit tests and examples:
// the same planted structure at ~1/12 scale.
func SmallGenConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Users = 1200
	cfg.Movies = 420
	cfg.Ratings = 80_000
	return cfg
}

// Planted describes a hand-placed movie whose rating behaviour the
// generator controls, so the paper's demo scenarios have the structure
// MapRat is supposed to surface. Titles, casts and franchise groupings
// mirror the queries in §3 of the paper.
type Planted struct {
	Title     string
	Year      int
	Genres    []string
	Directors []string
	Actors    []string
	Quality   float64 // base mean score before affinities
	Drift     float64 // linear mean shift across the full time window
	Polarized bool    // Twilight-style gender×age split (intro example)
}

// PlantedMovies is the fixed catalog head. Planted movies receive the top
// popularity ranks, so the demo queries always have ample ratings.
var PlantedMovies = []Planted{
	{Title: "Toy Story", Year: 1995, Genres: []string{"Animation", "Children's", "Comedy"},
		Directors: []string{"John Lasseter"}, Actors: []string{"Tom Hanks", "Tim Allen"},
		Quality: 4.25, Drift: -0.30},
	{Title: "Toy Story 2", Year: 1999, Genres: []string{"Animation", "Children's", "Comedy"},
		Directors: []string{"John Lasseter"}, Actors: []string{"Tom Hanks", "Tim Allen"},
		Quality: 4.10, Drift: -0.10},
	{Title: "The Twilight Saga: Eclipse", Year: 2000, Genres: []string{"Romance", "Drama", "Fantasy"},
		Directors: []string{"David Slade"}, Actors: []string{"Kristen Stewart", "Robert Pattinson"},
		Quality: 2.90, Polarized: true},
	{Title: "The Social Network", Year: 2000, Genres: []string{"Drama"},
		Directors: []string{"David Fincher"}, Actors: []string{"Jesse Eisenberg", "Andrew Garfield"},
		Quality: 4.20, Drift: 0.15},
	{Title: "The Lord of the Rings: The Fellowship of the Ring", Year: 2001,
		Genres:    []string{"Adventure", "Fantasy"},
		Directors: []string{"Peter Jackson"}, Actors: []string{"Elijah Wood", "Ian McKellen"},
		Quality: 4.40, Drift: 0.10},
	{Title: "The Lord of the Rings: The Two Towers", Year: 2002,
		Genres:    []string{"Adventure", "Fantasy"},
		Directors: []string{"Peter Jackson"}, Actors: []string{"Elijah Wood", "Ian McKellen"},
		Quality: 4.35, Drift: 0.10},
	{Title: "The Lord of the Rings: The Return of the King", Year: 2003,
		Genres:    []string{"Adventure", "Fantasy"},
		Directors: []string{"Peter Jackson"}, Actors: []string{"Elijah Wood", "Ian McKellen"},
		Quality: 4.45},
	{Title: "Forrest Gump", Year: 1994, Genres: []string{"Comedy", "Drama", "Romance", "War"},
		Directors: []string{"Robert Zemeckis"}, Actors: []string{"Tom Hanks", "Robin Wright"},
		Quality: 4.15, Drift: -0.05},
	{Title: "Saving Private Ryan", Year: 1998, Genres: []string{"Action", "Drama", "War"},
		Directors: []string{"Steven Spielberg"}, Actors: []string{"Tom Hanks", "Matt Damon"},
		Quality: 4.30, Drift: 0.05},
	{Title: "Cast Away", Year: 2000, Genres: []string{"Drama"},
		Directors: []string{"Robert Zemeckis"}, Actors: []string{"Tom Hanks", "Helen Hunt"},
		Quality: 3.90},
	{Title: "The Green Mile", Year: 1999, Genres: []string{"Drama", "Thriller"},
		Directors: []string{"Frank Darabont"}, Actors: []string{"Tom Hanks", "Michael Clarke Duncan"},
		Quality: 4.10},
	{Title: "Apollo 13", Year: 1995, Genres: []string{"Drama"},
		Directors: []string{"Ron Howard"}, Actors: []string{"Tom Hanks", "Kevin Bacon"},
		Quality: 4.00},
	{Title: "Jurassic Park", Year: 1993, Genres: []string{"Action", "Adventure", "Sci-Fi"},
		Directors: []string{"Steven Spielberg"}, Actors: []string{"Sam Neill", "Laura Dern"},
		Quality: 3.90, Drift: -0.15},
	{Title: "Schindler's List", Year: 1993, Genres: []string{"Drama", "War"},
		Directors: []string{"Steven Spielberg"}, Actors: []string{"Liam Neeson", "Ben Kingsley"},
		Quality: 4.50},
	{Title: "Minority Report", Year: 2002, Genres: []string{"Action", "Sci-Fi", "Thriller"},
		Directors: []string{"Steven Spielberg"}, Actors: []string{"Tom Cruise", "Colin Farrell"},
		Quality: 4.00},
	{Title: "Jaws", Year: 1975, Genres: []string{"Action", "Horror", "Thriller"},
		Directors: []string{"Steven Spielberg"}, Actors: []string{"Roy Scheider", "Richard Dreyfuss"},
		Quality: 4.00},
	{Title: "Annie Hall", Year: 1977, Genres: []string{"Comedy", "Romance"},
		Directors: []string{"Woody Allen"}, Actors: []string{"Woody Allen", "Diane Keaton"},
		Quality: 4.20},
	{Title: "Manhattan", Year: 1979, Genres: []string{"Comedy", "Drama", "Romance"},
		Directors: []string{"Woody Allen"}, Actors: []string{"Woody Allen", "Diane Keaton"},
		Quality: 4.00},
	{Title: "Deconstructing Harry", Year: 1997, Genres: []string{"Comedy", "Drama"},
		Directors: []string{"Woody Allen"}, Actors: []string{"Woody Allen", "Judy Davis"},
		Quality: 3.60},
	{Title: "Heat", Year: 1995, Genres: []string{"Action", "Crime", "Thriller"},
		Directors: []string{"Michael Mann"}, Actors: []string{"Al Pacino", "Robert De Niro"},
		Quality: 4.00},
}

// statePop approximates 2000-census population shares so synthetic
// reviewers concentrate in the states the demo screenshots highlight.
// Minnesota is boosted above census share as a nod to the MovieLens user
// base (GroupLens is at the University of Minnesota).
var statePop = map[string]float64{
	"CA": 12.0, "TX": 7.4, "NY": 6.7, "FL": 5.7, "IL": 4.4, "PA": 4.4,
	"OH": 4.0, "MI": 3.5, "NJ": 3.0, "GA": 2.9, "NC": 2.9, "VA": 2.5,
	"MA": 2.3, "IN": 2.2, "WA": 2.1, "TN": 2.0, "MO": 2.0, "WI": 1.9,
	"MD": 1.9, "AZ": 1.8, "MN": 2.6, "LA": 1.6, "AL": 1.6, "CO": 1.5,
	"KY": 1.4, "SC": 1.4, "OK": 1.2, "OR": 1.2, "CT": 1.2, "IA": 1.0,
	"MS": 1.0, "KS": 0.95, "AR": 0.95, "UT": 0.79, "NV": 0.71, "NM": 0.64,
	"WV": 0.64, "NE": 0.61, "ID": 0.46, "ME": 0.45, "NH": 0.44, "HI": 0.43,
	"RI": 0.37, "MT": 0.32, "DE": 0.28, "SD": 0.27, "ND": 0.23, "AK": 0.22,
	"VT": 0.22, "DC": 0.20, "WY": 0.17,
}

// Demographic priors approximating the published MovieLens 1M marginals
// (~72% male; 25–34 the dominant age bucket).
var (
	maleShare = 0.72
	agePrior  = [model.NumAgeBuckets]float64{0.04, 0.18, 0.35, 0.20, 0.09, 0.08, 0.06}
	occPrior  = [model.NumOccupations]float64{
		0.12, 0.09, 0.045, 0.03, 0.125, 0.02, 0.04, 0.11, 0.005, 0.015,
		0.035, 0.02, 0.07, 0.025, 0.05, 0.025, 0.04, 0.08, 0.015, 0.012, 0.033,
	}
)

// Planted affinity matrices: how much a demographic shifts a genre's score.
// These create the structure MapRat's Similarity Mining is supposed to
// recover (e.g. the young/male animation affinity behind Figure 2).
var genderAffinity = map[model.Gender]map[string]float64{
	model.Male: {
		"Action": 0.30, "War": 0.25, "Sci-Fi": 0.20, "Western": 0.15,
		"Animation": 0.15, "Crime": 0.15, "Horror": 0.10,
		"Romance": -0.35, "Musical": -0.25, "Children's": -0.10, "Drama": -0.05,
	},
	model.Female: {
		"Romance": 0.35, "Drama": 0.20, "Musical": 0.25, "Children's": 0.15,
		"Animation": 0.05,
		"Action":    -0.25, "War": -0.30, "Horror": -0.20, "Sci-Fi": -0.15, "Western": -0.20,
	},
}

var ageAffinity = map[model.AgeBucket]map[string]float64{
	model.AgeUnder18: {
		"Animation": 0.60, "Children's": 0.50, "Fantasy": 0.30, "Comedy": 0.20,
		"Horror": 0.20, "Sci-Fi": 0.15,
		"Film-Noir": -0.40, "Documentary": -0.35, "Western": -0.30, "Drama": -0.20, "War": -0.20,
	},
	model.Age18to24: {
		"Comedy": 0.25, "Horror": 0.25, "Action": 0.20, "Sci-Fi": 0.20, "Animation": 0.20,
		"Musical": -0.25, "Western": -0.25, "Film-Noir": -0.20,
	},
	model.Age25to34: {
		"Thriller": 0.15, "Crime": 0.15, "Sci-Fi": 0.10, "Action": 0.10,
	},
	model.Age35to44: {
		"Drama": 0.15, "Crime": 0.10, "Mystery": 0.10,
	},
	model.Age45to49: {
		"Drama": 0.20, "Documentary": 0.15, "Film-Noir": 0.10, "Musical": 0.10,
		"Animation": -0.15, "Horror": -0.25,
	},
	model.Age50to55: {
		"Western": 0.25, "Musical": 0.20, "Film-Noir": 0.20, "War": 0.15,
		"Horror": -0.35, "Animation": -0.10,
	},
	model.Age56Plus: {
		"Western": 0.35, "Musical": 0.30, "War": 0.25, "Film-Noir": 0.25, "Documentary": 0.20,
		"Horror": -0.45, "Sci-Fi": -0.20, "Animation": -0.15,
	},
}

var occAffinityByLabel = map[string]map[string]float64{
	"K-12 student":         {"Animation": 0.40, "Children's": 0.35, "Fantasy": 0.20},
	"college/grad student": {"Comedy": 0.20, "Sci-Fi": 0.15, "Horror": 0.15},
	"programmer":           {"Sci-Fi": 0.35, "Animation": 0.20, "Fantasy": 0.15},
	"scientist":            {"Sci-Fi": 0.30, "Documentary": 0.20},
	"executive/managerial": {"Drama": 0.15, "Thriller": 0.10},
	"retired":              {"Western": 0.30, "Musical": 0.20, "Film-Noir": 0.15},
	"artist":               {"Documentary": 0.25, "Film-Noir": 0.20, "Musical": 0.15},
	"farmer":               {"Western": 0.35},
	"homemaker":            {"Romance": 0.30, "Drama": 0.10},
	"lawyer":               {"Crime": 0.20, "Thriller": 0.15},
	"writer":               {"Drama": 0.20, "Film-Noir": 0.15},
	"doctor/health care":   {"Documentary": 0.10, "Drama": 0.10},
	"unemployed":           {"Comedy": 0.15},
}

// regionalPlanted gives a few states deliberate genre leanings so the
// choropleth has visible geographic trends (Fig 2's CA/MA/NY pattern).
var regionalPlanted = map[string]map[string]float64{
	"CA": {"Animation": 0.30, "Sci-Fi": 0.15},
	"MA": {"Animation": 0.25, "Documentary": 0.15},
	"NY": {"Drama": 0.20, "Animation": -0.10},
	"TX": {"Action": 0.20, "Western": 0.25},
	"WA": {"Sci-Fi": 0.25},
	"MN": {"Comedy": 0.10},
}

// Generate builds a complete synthetic dataset. The output is a pure
// function of cfg: identical configs produce byte-identical datasets.
func Generate(cfg GenConfig) (*model.Dataset, error) {
	if cfg.Users <= 0 || cfg.Movies <= 0 || cfg.Ratings <= 0 {
		return nil, fmt.Errorf("dataset: non-positive size in config %+v", cfg)
	}
	if cfg.Movies < len(PlantedMovies) {
		return nil, fmt.Errorf("dataset: need at least %d movies for the planted catalog", len(PlantedMovies))
	}
	if !cfg.End.After(cfg.Start) {
		return nil, fmt.Errorf("dataset: empty time window %v..%v", cfg.Start, cfg.End)
	}
	g := &generator{cfg: cfg, rng: rng.New(cfg.Seed)}
	g.buildUsers()
	g.buildMovies()
	g.buildRatings()
	return model.NewDataset(g.users, g.items, g.ratings)
}

type generator struct {
	cfg GenConfig
	rng *rand.Rand

	users   []model.User
	items   []model.Item
	ratings []model.Rating

	// per-movie score-model inputs, indexed by item position
	quality   []float64
	drift     []float64
	polarized []bool
	genreIdx  [][]int

	stateCodes []string
	stateCum   []float64
}

func (g *generator) buildUsers() {
	// Cumulative state distribution over the weighted population table.
	g.stateCodes = geo.StateCodes()
	total := 0.0
	for _, c := range g.stateCodes {
		total += statePop[c]
	}
	cum := 0.0
	g.stateCum = make([]float64, len(g.stateCodes))
	for i, c := range g.stateCodes {
		cum += statePop[c] / total
		g.stateCum[i] = cum
	}

	ageCum := cumulative(agePrior[:])
	occCum := cumulative(occPrior[:])

	g.users = make([]model.User, g.cfg.Users)
	for i := range g.users {
		u := &g.users[i]
		u.ID = i + 1
		if g.rng.Float64() < maleShare {
			u.Gender = model.Male
		} else {
			u.Gender = model.Female
		}
		u.Age = model.AgeBucket(pickCum(ageCum, g.rng.Float64()))
		u.Occupation = model.Occupation(pickCum(occCum, g.rng.Float64()))
		state := g.stateCodes[pickCum(g.stateCum, g.rng.Float64())]
		u.Zip = g.zipFor(state)
		cube.ResolveUser(u)
	}
}

// zipFor synthesizes a 5-digit zip inside a state's real prefix allocation.
func (g *generator) zipFor(state string) string {
	prefixes := geo.PrefixesFor(state)
	p := prefixes[g.rng.Intn(len(prefixes))]
	return fmt.Sprintf("%03d%02d", p, g.rng.Intn(100))
}

func (g *generator) buildMovies() {
	n := g.cfg.Movies
	g.items = make([]model.Item, 0, n)
	g.quality = make([]float64, 0, n)
	g.drift = make([]float64, 0, n)
	g.polarized = make([]bool, 0, n)

	for i, p := range PlantedMovies {
		g.items = append(g.items, model.Item{
			ID: i + 1, Title: p.Title, Year: p.Year,
			Genres:    append([]string(nil), p.Genres...),
			Actors:    append([]string(nil), p.Actors...),
			Directors: append([]string(nil), p.Directors...),
		})
		g.quality = append(g.quality, p.Quality)
		g.drift = append(g.drift, p.Drift)
		g.polarized = append(g.polarized, p.Polarized)
	}

	seenTitles := map[string]bool{}
	for i := range g.items {
		seenTitles[g.items[i].Title] = true
	}
	nActors := len(firstNames) * len(lastNames) / 4
	nDirectors := len(firstNames) * len(lastNames) / 12
	for i := len(PlantedMovies); i < n; i++ {
		title := syntheticTitle(i)
		for seenTitles[title] {
			title += " Redux"
		}
		seenTitles[title] = true
		year := 1935 + g.rng.Intn(66) // 1935..2000, recent-heavy below
		if g.rng.Float64() < 0.6 {
			year = 1985 + g.rng.Intn(16)
		}
		genres := g.pickGenres()
		actors := make([]string, 2+g.rng.Intn(4))
		for j := range actors {
			actors[j] = personName(g.rng.Intn(nActors))
		}
		directors := []string{personName(nActors + g.rng.Intn(nDirectors))}
		if g.rng.Float64() < 0.08 {
			directors = append(directors, personName(nActors+g.rng.Intn(nDirectors)))
		}
		g.items = append(g.items, model.Item{
			ID: i + 1, Title: title, Year: year,
			Genres: genres, Actors: actors, Directors: directors,
		})
		q := 3.55 + g.rng.NormFloat64()*0.45
		g.quality = append(g.quality, clampF(q, 1.8, 4.7))
		g.drift = append(g.drift, clampF(g.rng.NormFloat64()*0.25, -0.5, 0.5))
		g.polarized = append(g.polarized, false)
	}

	g.genreIdx = make([][]int, len(g.items))
	for i := range g.items {
		for _, gn := range g.items[i].Genres {
			if idx := GenreIndex(gn); idx >= 0 {
				g.genreIdx[i] = append(g.genreIdx[i], idx)
			}
		}
	}
}

func (g *generator) pickGenres() []string {
	k := 1 + g.rng.Intn(3)
	seen := map[int]bool{}
	var out []string
	for len(out) < k {
		gi := g.rng.Intn(len(Genres))
		if !seen[gi] {
			seen[gi] = true
			out = append(out, Genres[gi])
		}
	}
	sort.Strings(out)
	return out
}

func (g *generator) buildRatings() {
	// Per-user activity: lognormal, scaled so the total hits cfg.Ratings.
	raw := make([]float64, g.cfg.Users)
	sum := 0.0
	for i := range raw {
		raw[i] = math.Exp(g.rng.NormFloat64() * 0.9)
		sum += raw[i]
	}
	activity := make([]int, g.cfg.Users)
	for i := range raw {
		a := int(raw[i]/sum*float64(g.cfg.Ratings) + 0.5)
		if a < 3 {
			a = 3
		}
		if cap := g.cfg.Movies * 4 / 5; a > cap {
			a = cap
		}
		activity[i] = a
	}

	// Movie popularity: Zipf over ranks, planted movies on top.
	popCum := make([]float64, g.cfg.Movies)
	cum := 0.0
	for i := 0; i < g.cfg.Movies; i++ {
		cum += math.Pow(float64(i+1), -0.55)
		popCum[i] = cum
	}
	for i := range popCum {
		popCum[i] /= cum
	}

	window := g.cfg.End.Unix() - g.cfg.Start.Unix()
	precomp := g.precomputeAffinities()

	g.ratings = make([]model.Rating, 0, g.cfg.Ratings+g.cfg.Users)
	seen := make(map[int64]bool, 256)
	for ui := range g.users {
		u := &g.users[ui]
		clear(seen)
		// A user rates inside a personal sub-window, so the global rating
		// log spans the whole period with realistic per-user bursts.
		joined := g.cfg.Start.Unix() + int64(g.rng.Float64()*float64(window)*0.8)
		span := int64(float64(window) * (0.05 + g.rng.Float64()*0.20))
		// Popularity-weighted draws collide on the catalog head, so re-draw
		// duplicates (bounded) to keep the realized count near the target.
		attempts, maxAttempts := 0, activity[ui]*8
		for n := 0; n < activity[ui] && attempts < maxAttempts; attempts++ {
			mi := pickCum(popCum, g.rng.Float64())
			key := int64(ui)<<32 | int64(mi)
			if seen[key] {
				continue
			}
			seen[key] = true
			n++
			ts := joined + int64(g.rng.Float64()*float64(span))
			if ts > g.cfg.End.Unix() {
				ts = g.cfg.End.Unix()
			}
			score := g.score(u, mi, ts, precomp)
			g.ratings = append(g.ratings, model.Rating{
				UserID: u.ID, ItemID: g.items[mi].ID, Score: score, Unix: ts,
			})
		}
	}
}

// affinityTables is the dense precomputation of the sparse planted
// matrices, indexed by [gender|age|occ][genre].
type affinityTables struct {
	gender [model.NumGenders][]float64
	age    [model.NumAgeBuckets][]float64
	occ    [model.NumOccupations][]float64
	// regional[stateIdx][genre] combines planted leanings with small
	// deterministic per-(state,genre) noise so every state has texture.
	regional map[string][]float64
}

func (g *generator) precomputeAffinities() *affinityTables {
	t := &affinityTables{regional: map[string][]float64{}}
	ng := len(Genres)
	fill := func(dst []float64, src map[string]float64) {
		for gn, v := range src {
			dst[GenreIndex(gn)] = v
		}
	}
	for gi := 0; gi < model.NumGenders; gi++ {
		t.gender[gi] = make([]float64, ng)
		fill(t.gender[gi], genderAffinity[model.Gender(gi)])
	}
	for ai := 0; ai < model.NumAgeBuckets; ai++ {
		t.age[ai] = make([]float64, ng)
		fill(t.age[ai], ageAffinity[model.AgeBucket(ai)])
	}
	for oi := 0; oi < model.NumOccupations; oi++ {
		t.occ[oi] = make([]float64, ng)
		fill(t.occ[oi], occAffinityByLabel[model.Occupation(oi).Label()])
	}
	for si, code := range g.stateCodes {
		row := make([]float64, ng)
		for gi := range row {
			row[gi] = noise(g.cfg.Seed, si, gi) * 0.15
		}
		for gn, v := range regionalPlanted[code] {
			row[GenreIndex(gn)] += v
		}
		t.regional[code] = row
	}
	return t
}

// noise derives a deterministic value in [-1,1] from (seed, a, b) via
// SplitMix64, independent of the rng stream so the planted regional texture
// does not shift when sampling order changes.
func noise(seed int64, a, b int) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(a)<<32 + uint64(b) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53)*2 - 1
}

// score draws one integer rating from the behaviour model.
func (g *generator) score(u *model.User, mi int, ts int64, t *affinityTables) int {
	if g.polarized[mi] {
		return g.polarizedScore(u)
	}
	raw := g.quality[mi]
	genres := g.genreIdx[mi]
	if len(genres) > 0 {
		aff := 0.0
		regional := t.regional[u.State]
		for _, gi := range genres {
			aff += t.gender[u.Gender][gi] + t.age[u.Age][gi] + t.occ[u.Occupation][gi]
			if regional != nil {
				aff += regional[gi]
			}
		}
		raw += aff / float64(len(genres))
	}
	frac := float64(ts-g.cfg.Start.Unix()) / float64(g.cfg.End.Unix()-g.cfg.Start.Unix())
	raw += g.drift[mi] * (frac - 0.5)
	raw += g.rng.NormFloat64() * 0.65
	return clampScore(raw)
}

// polarizedScore implements the intro's Twilight example: female reviewers
// under 18 and above 45 love the title, male reviewers under 18 hate it,
// and everyone else is lukewarm — so the overall mean lands near the
// paper's 4.8/10 while Diversity Mining finds the sibling split.
func (g *generator) polarizedScore(u *model.User) int {
	base := 2.9
	switch {
	case u.Gender == model.Female && (u.Age == model.AgeUnder18 || u.Age >= model.Age45to49):
		base += 1.8
	case u.Gender == model.Female:
		base += 0.5
	case u.Gender == model.Male && u.Age == model.AgeUnder18:
		base -= 1.9
	default:
		base -= 0.6
	}
	base += g.rng.NormFloat64() * 0.45
	return clampScore(base)
}

func clampScore(raw float64) int {
	s := int(math.Round(raw))
	if s < model.MinScore {
		return model.MinScore
	}
	if s > model.MaxScore {
		return model.MaxScore
	}
	return s
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// cumulative turns a weight vector into a normalized cumulative
// distribution.
func cumulative(w []float64) []float64 {
	out := make([]float64, len(w))
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	cum := 0.0
	for i, v := range w {
		cum += v / sum
		out[i] = cum
	}
	return out
}

// pickCum samples an index from a cumulative distribution via binary
// search; u must be in [0,1).
func pickCum(cum []float64, u float64) int {
	i := sort.SearchFloat64s(cum, u)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return i
}
