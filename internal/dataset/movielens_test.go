package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
)

const usersSample = `1::F::1::10::48067
2::M::56::16::70072
3::M::25::15::55117
4::M::45::7::02460
5::M::25::20::55455-1234
`

const moviesSample = `1::Toy Story (1995)::Animation|Children's|Comedy
2::Jumanji (1995)::Adventure|Children's|Fantasy
3::Grumpier Old Men (1995)::Comedy|Romance
4::Untitled Project::
`

const ratingsSample = `1::1::5::978824268
1::2::3::978302109
2::1::4::978300760
3::3::4::978301968
`

func TestParseUsers(t *testing.T) {
	users, err := ParseUsers(strings.NewReader(usersSample))
	if err != nil {
		t.Fatalf("ParseUsers: %v", err)
	}
	if len(users) != 5 {
		t.Fatalf("parsed %d users, want 5", len(users))
	}
	u := users[0]
	if u.ID != 1 || u.Gender != model.Female || u.Age != model.AgeUnder18 ||
		u.Occupation != 10 || u.Zip != "48067" {
		t.Errorf("user 1 = %+v", u)
	}
	if u.State != "MI" {
		t.Errorf("user 1 state = %q, want MI (zip 48067)", u.State)
	}
	// ZIP+4 must be trimmed and still resolve.
	if users[4].Zip != "55455" || users[4].State != "MN" {
		t.Errorf("user 5 = %+v, want zip 55455 in MN", users[4])
	}
	if users[3].State != "MA" {
		t.Errorf("user 4 state = %q, want MA (zip 02460)", users[3].State)
	}
}

func TestParseUsersErrors(t *testing.T) {
	bad := []string{
		"1::F::1::10",            // missing field
		"x::F::1::10::48067",     // bad id
		"1::Q::1::10::48067",     // bad gender
		"1::F::17::10::48067",    // bad age code
		"1::F::1::99::48067",     // bad occupation
		"1::F::one::10::48067",   // non-numeric age
		"1::F::1::ninety::48067", // non-numeric occupation
		"not a movielens line at all",
	}
	for _, line := range bad {
		if _, err := ParseUsers(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ParseUsers(%q) should fail", line)
		}
	}
}

func TestParseMovies(t *testing.T) {
	items, err := ParseMovies(strings.NewReader(moviesSample))
	if err != nil {
		t.Fatalf("ParseMovies: %v", err)
	}
	if len(items) != 4 {
		t.Fatalf("parsed %d movies, want 4", len(items))
	}
	if items[0].Title != "Toy Story" || items[0].Year != 1995 {
		t.Errorf("movie 1 = %+v", items[0])
	}
	if len(items[0].Genres) != 3 || items[0].Genres[0] != "Animation" {
		t.Errorf("movie 1 genres = %v", items[0].Genres)
	}
	if items[3].Title != "Untitled Project" || items[3].Year != 0 || len(items[3].Genres) != 0 {
		t.Errorf("movie 4 = %+v", items[3])
	}
}

func TestSplitTitleYear(t *testing.T) {
	cases := []struct {
		in    string
		title string
		year  int
	}{
		{"Toy Story (1995)", "Toy Story", 1995},
		{"Seven (a.k.a. Se7en) (1995)", "Seven (a.k.a. Se7en)", 1995},
		{"No Year", "No Year", 0},
		{"Almost (19x5)", "Almost (19x5)", 0},
		{"(1999)", "", 1999},
	}
	for _, c := range cases {
		title, year := SplitTitleYear(c.in)
		if title != c.title || year != c.year {
			t.Errorf("SplitTitleYear(%q) = %q, %d; want %q, %d", c.in, title, year, c.title, c.year)
		}
	}
	if JoinTitleYear("Toy Story", 1995) != "Toy Story (1995)" {
		t.Error("JoinTitleYear with year")
	}
	if JoinTitleYear("No Year", 0) != "No Year" {
		t.Error("JoinTitleYear without year")
	}
}

func TestParseRatings(t *testing.T) {
	rs, err := ParseRatings(strings.NewReader(ratingsSample))
	if err != nil {
		t.Fatalf("ParseRatings: %v", err)
	}
	if len(rs) != 4 {
		t.Fatalf("parsed %d ratings, want 4", len(rs))
	}
	if rs[0] != (model.Rating{UserID: 1, ItemID: 1, Score: 5, Unix: 978824268}) {
		t.Errorf("rating 0 = %+v", rs[0])
	}
	for _, line := range []string{"1::1::9::978824268", "1::1::5", "a::1::5::9"} {
		if _, err := ParseRatings(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ParseRatings(%q) should fail", line)
		}
	}
}

func TestParseCast(t *testing.T) {
	items, err := ParseMovies(strings.NewReader(moviesSample))
	if err != nil {
		t.Fatal(err)
	}
	cast := "1::John Lasseter::Tom Hanks|Tim Allen\n2::Joe Johnston::Robin Williams\n"
	if err := ParseCast(strings.NewReader(cast), items); err != nil {
		t.Fatalf("ParseCast: %v", err)
	}
	if len(items[0].Actors) != 2 || items[0].Actors[0] != "Tom Hanks" {
		t.Errorf("movie 1 actors = %v", items[0].Actors)
	}
	if len(items[0].Directors) != 1 || items[0].Directors[0] != "John Lasseter" {
		t.Errorf("movie 1 directors = %v", items[0].Directors)
	}
	if err := ParseCast(strings.NewReader("99::A::B\n"), items); err == nil {
		t.Error("cast for unknown movie should fail")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	d := generateSmall(t)
	var users, movies, ratings, cast bytes.Buffer
	if err := WriteUsers(&users, d.Users); err != nil {
		t.Fatal(err)
	}
	if err := WriteMovies(&movies, d.Items); err != nil {
		t.Fatal(err)
	}
	if err := WriteRatings(&ratings, d.Ratings); err != nil {
		t.Fatal(err)
	}
	if err := WriteCast(&cast, d.Items); err != nil {
		t.Fatal(err)
	}

	gotUsers, err := ParseUsers(bytes.NewReader(users.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gotMovies, err := ParseMovies(bytes.NewReader(movies.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := ParseCast(bytes.NewReader(cast.Bytes()), gotMovies); err != nil {
		t.Fatal(err)
	}
	gotRatings, err := ParseRatings(bytes.NewReader(ratings.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if len(gotUsers) != len(d.Users) || len(gotMovies) != len(d.Items) || len(gotRatings) != len(d.Ratings) {
		t.Fatalf("round trip sizes: %d/%d users, %d/%d movies, %d/%d ratings",
			len(gotUsers), len(d.Users), len(gotMovies), len(d.Items), len(gotRatings), len(d.Ratings))
	}
	for i := range gotUsers {
		if gotUsers[i] != d.Users[i] {
			t.Fatalf("user %d round trip: %+v != %+v", i, gotUsers[i], d.Users[i])
		}
	}
	for i := range gotRatings {
		if gotRatings[i] != d.Ratings[i] {
			t.Fatalf("rating %d round trip: %+v != %+v", i, gotRatings[i], d.Ratings[i])
		}
	}
	for i := range gotMovies {
		a, b := gotMovies[i], d.Items[i]
		if a.ID != b.ID || a.Title != b.Title || a.Year != b.Year ||
			strings.Join(a.Genres, "|") != strings.Join(b.Genres, "|") ||
			strings.Join(a.Actors, "|") != strings.Join(b.Actors, "|") ||
			strings.Join(a.Directors, "|") != strings.Join(b.Directors, "|") {
			t.Fatalf("movie %d round trip: %+v != %+v", i, a, b)
		}
	}
}

func TestWriteLoadDir(t *testing.T) {
	d := generateSmall(t)
	dir := t.TempDir()
	if err := WriteDir(dir, d); err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	for _, f := range []string{UsersFile, MoviesFile, RatingsFile, CastFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(got.Users) != len(d.Users) || len(got.Items) != len(d.Items) || len(got.Ratings) != len(d.Ratings) {
		t.Fatalf("LoadDir sizes differ: %d/%d/%d vs %d/%d/%d",
			len(got.Users), len(got.Items), len(got.Ratings),
			len(d.Users), len(d.Items), len(d.Ratings))
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("loaded dataset invalid: %v", err)
	}
}

func TestLoadDirWithoutCast(t *testing.T) {
	d := generateSmall(t)
	dir := t.TempDir()
	if err := WriteDir(dir, d); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, CastFile)); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir without cast: %v", err)
	}
	for i := range got.Items {
		if len(got.Items[i].Actors) != 0 {
			t.Fatal("actors present despite missing cast file")
		}
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("LoadDir of missing directory should fail")
	}
}

func TestGenreIndex(t *testing.T) {
	for i, g := range Genres {
		if GenreIndex(g) != i {
			t.Errorf("GenreIndex(%q) = %d, want %d", g, GenreIndex(g), i)
		}
	}
	if GenreIndex("Telenovela") != -1 {
		t.Error("unknown genre should be -1")
	}
}

func TestParserHandlesLongLines(t *testing.T) {
	// A pathological title near the scanner's 1MB cap must not corrupt
	// parsing of subsequent lines.
	long := strings.Repeat("x", 500_000)
	input := "1::" + long + " (1999)::Drama\n2::Short (2000)::Comedy\n"
	items, err := ParseMovies(strings.NewReader(input))
	if err != nil {
		t.Fatalf("long line: %v", err)
	}
	if len(items) != 2 || items[1].Title != "Short" {
		t.Fatalf("parsed %d items", len(items))
	}
}

func TestParseRatingsEOFMidLine(t *testing.T) {
	// A truncated final line (no newline, missing fields) must error, not
	// silently drop data.
	if _, err := ParseRatings(strings.NewReader("1::1::5::978300000\n2::2::4")); err == nil {
		t.Error("truncated final rating accepted")
	}
}

func TestGenerateScalesDown(t *testing.T) {
	// The generator must stay correct at the smallest viable scale.
	cfg := SmallGenConfig()
	cfg.Users, cfg.Movies, cfg.Ratings = 30, len(PlantedMovies), 200
	d, err := Generate(cfg)
	if err != nil {
		t.Fatalf("tiny generate: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("tiny dataset invalid: %v", err)
	}
	if len(d.Items) != len(PlantedMovies) {
		t.Errorf("movies = %d", len(d.Items))
	}
}
