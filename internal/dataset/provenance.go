package dataset

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
)

// Provenance derives a stable 64-bit hash of the generator configuration,
// so a snapshot built from synthetic data records exactly which (config,
// seed) produced it.
func (cfg GenConfig) Provenance() uint64 {
	f := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		f.Write(buf[:])
	}
	f.Write([]byte("maprat-gen"))
	put(uint64(cfg.Seed))
	put(uint64(cfg.Users))
	put(uint64(cfg.Movies))
	put(uint64(cfg.Ratings))
	put(uint64(cfg.Start.Unix()))
	put(uint64(cfg.End.Unix()))
	return f.Sum64()
}

// DirProvenance hashes the MovieLens source files a text dataset was
// loaded from (names, sizes and contents, in a fixed order), so a
// snapshot packed from a directory records which bytes it came from. A
// missing optional file contributes its absence; a missing required file
// is the caller's problem and simply hashes as absent too.
func DirProvenance(dir string) (uint64, error) {
	f := fnv.New64a()
	for _, name := range []string{UsersFile, MoviesFile, RatingsFile, CastFile} {
		f.Write([]byte(name))
		f.Write([]byte{0})
		src, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				f.Write([]byte("absent"))
				f.Write([]byte{0})
				continue
			}
			return 0, err
		}
		if _, err := io.Copy(f, src); err != nil {
			src.Close()
			return 0, err
		}
		src.Close()
		f.Write([]byte{0})
	}
	return f.Sum64(), nil
}
