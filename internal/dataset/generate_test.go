package dataset

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

var (
	smallOnce sync.Once
	smallDS   *model.Dataset
	smallErr  error
)

// generateSmall memoizes one small dataset across the package's tests.
func generateSmall(t *testing.T) *model.Dataset {
	t.Helper()
	smallOnce.Do(func() {
		smallDS, smallErr = Generate(SmallGenConfig())
	})
	if smallErr != nil {
		t.Fatalf("Generate: %v", smallErr)
	}
	return smallDS
}

func TestGenerateShape(t *testing.T) {
	cfg := SmallGenConfig()
	d := generateSmall(t)
	if len(d.Users) != cfg.Users {
		t.Errorf("users = %d, want %d", len(d.Users), cfg.Users)
	}
	if len(d.Items) != cfg.Movies {
		t.Errorf("movies = %d, want %d", len(d.Items), cfg.Movies)
	}
	got, want := float64(len(d.Ratings)), float64(cfg.Ratings)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("ratings = %d, want within 15%% of %d", len(d.Ratings), cfg.Ratings)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("generated dataset invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SmallGenConfig()
	cfg.Users, cfg.Movies, cfg.Ratings = 200, 60, 4000
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ratings) != len(b.Ratings) {
		t.Fatal("rating counts differ across identical configs")
	}
	for i := range a.Ratings {
		if a.Ratings[i] != b.Ratings[i] {
			t.Fatalf("rating %d differs: %+v vs %+v", i, a.Ratings[i], b.Ratings[i])
		}
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Fatalf("user %d differs", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 2
	c, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := len(c.Ratings) == len(a.Ratings)
	if same {
		diff := false
		for i := range a.Ratings {
			if a.Ratings[i] != c.Ratings[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical rating logs")
	}
}

func TestGenerateInvalidConfigs(t *testing.T) {
	bad := []GenConfig{
		{},
		{Users: 10, Movies: 5, Ratings: 100}, // fewer movies than planted catalog
		func() GenConfig {
			c := SmallGenConfig()
			c.End = c.Start
			return c
		}(),
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestGeneratePlantedCatalogPresent(t *testing.T) {
	d := generateSmall(t)
	for _, p := range PlantedMovies {
		items := d.ItemsByTitle(p.Title)
		if len(items) != 1 {
			t.Errorf("planted title %q: found %d items", p.Title, len(items))
			continue
		}
		it := items[0]
		if it.Year != p.Year {
			t.Errorf("%q year = %d, want %d", p.Title, it.Year, p.Year)
		}
		if len(it.Actors) == 0 || len(it.Directors) == 0 {
			t.Errorf("%q missing cast", p.Title)
		}
	}
}

func TestGeneratePlantedMoviesPopular(t *testing.T) {
	d := generateSmall(t)
	counts := map[int]int{}
	for _, r := range d.Ratings {
		counts[r.ItemID]++
	}
	// Planted movies occupy the top popularity ranks; each must collect a
	// healthy rating sample for the demo queries.
	for i := range PlantedMovies {
		if counts[i+1] < 50 {
			t.Errorf("planted movie %q has only %d ratings", PlantedMovies[i].Title, counts[i+1])
		}
	}
}

func TestGenerateDemographicMarginals(t *testing.T) {
	d := generateSmall(t)
	males := 0
	for i := range d.Users {
		if d.Users[i].Gender == model.Male {
			males++
		}
	}
	share := float64(males) / float64(len(d.Users))
	if math.Abs(share-maleShare) > 0.04 {
		t.Errorf("male share = %.3f, want ≈ %.2f", share, maleShare)
	}
	states := map[string]int{}
	unresolved := 0
	for i := range d.Users {
		if d.Users[i].State == "" {
			unresolved++
		} else {
			states[d.Users[i].State]++
		}
	}
	if unresolved > 0 {
		t.Errorf("%d users with unresolvable zips", unresolved)
	}
	if states["CA"] < states["WY"] {
		t.Error("California should dominate Wyoming in the population model")
	}
}

func TestGenerateTimestampsInWindow(t *testing.T) {
	cfg := SmallGenConfig()
	d := generateSmall(t)
	lo, hi := cfg.Start.Unix(), cfg.End.Unix()
	var minTS, maxTS int64 = math.MaxInt64, 0
	for _, r := range d.Ratings {
		if r.Unix < lo || r.Unix > hi {
			t.Fatalf("rating timestamp %d outside window [%d,%d]", r.Unix, lo, hi)
		}
		if r.Unix < minTS {
			minTS = r.Unix
		}
		if r.Unix > maxTS {
			maxTS = r.Unix
		}
	}
	// The log should span most of the window (time-slider demo needs it).
	span := float64(maxTS-minTS) / float64(hi-lo)
	if span < 0.75 {
		t.Errorf("rating log spans only %.0f%% of the window", span*100)
	}
}

func TestGenerateNoDuplicateUserMoviePairs(t *testing.T) {
	d := generateSmall(t)
	seen := make(map[int64]bool, len(d.Ratings))
	for _, r := range d.Ratings {
		key := int64(r.UserID)<<32 | int64(r.ItemID)
		if seen[key] {
			t.Fatalf("duplicate rating for user %d movie %d", r.UserID, r.ItemID)
		}
		seen[key] = true
	}
}

func TestGeneratePolarizedStructure(t *testing.T) {
	d := generateSmall(t)
	eclipse := d.ItemsByTitle("The Twilight Saga: Eclipse")
	if len(eclipse) != 1 {
		t.Fatal("Eclipse missing")
	}
	id := eclipse[0].ID
	var maleU18, femaleU18, all sumCount
	for _, r := range d.Ratings {
		if r.ItemID != id {
			continue
		}
		all.add(r.Score)
		u := d.UserByID(r.UserID)
		if u.Age == model.AgeUnder18 {
			if u.Gender == model.Male {
				maleU18.add(r.Score)
			} else {
				femaleU18.add(r.Score)
			}
		}
	}
	if all.n < 100 {
		t.Fatalf("Eclipse has only %d ratings", all.n)
	}
	if m := all.mean(); m < 2.0 || m > 3.0 {
		t.Errorf("Eclipse overall mean = %.2f, want ≈ 2.4 (paper: 4.8/10)", m)
	}
	if maleU18.n < 5 || femaleU18.n < 5 {
		t.Skipf("too few under-18 ratings to check the split (%d male, %d female)", maleU18.n, femaleU18.n)
	}
	gap := femaleU18.mean() - maleU18.mean()
	if gap < 1.5 {
		t.Errorf("female-U18 minus male-U18 gap = %.2f, want ≥ 1.5 (intro's DM example)", gap)
	}
}

func TestGenerateAnimationAffinity(t *testing.T) {
	d := generateSmall(t)
	toyStory := d.ItemsByTitle("Toy Story")[0]
	var under18, over50 sumCount
	for _, r := range d.Ratings {
		if r.ItemID != toyStory.ID {
			continue
		}
		u := d.UserByID(r.UserID)
		switch {
		case u.Age == model.AgeUnder18:
			under18.add(r.Score)
		case u.Age >= model.Age50to55:
			over50.add(r.Score)
		}
	}
	if under18.n < 10 || over50.n < 10 {
		t.Skipf("too few ratings to compare (%d under-18, %d 50+)", under18.n, over50.n)
	}
	if under18.mean() <= over50.mean() {
		t.Errorf("planted animation affinity missing: under-18 mean %.2f ≤ 50+ mean %.2f",
			under18.mean(), over50.mean())
	}
}

func TestGenerateDriftObservable(t *testing.T) {
	cfg := SmallGenConfig()
	d := generateSmall(t)
	toyStory := d.ItemsByTitle("Toy Story")[0]
	mid := cfg.Start.Unix() + (cfg.End.Unix()-cfg.Start.Unix())/2
	var early, late sumCount
	for _, r := range d.Ratings {
		if r.ItemID != toyStory.ID {
			continue
		}
		if r.Unix < mid {
			early.add(r.Score)
		} else {
			late.add(r.Score)
		}
	}
	if early.n < 20 || late.n < 20 {
		t.Skipf("too few ratings per half (%d, %d)", early.n, late.n)
	}
	// Toy Story is planted with drift -0.30: later ratings trend lower.
	if early.mean() <= late.mean() {
		t.Errorf("planted negative drift missing: early %.2f ≤ late %.2f", early.mean(), late.mean())
	}
}

type sumCount struct {
	sum, n int
}

func (s *sumCount) add(score int) { s.sum += score; s.n++ }
func (s *sumCount) mean() float64 { return float64(s.sum) / float64(s.n) }

func TestDefaultConfigWindow(t *testing.T) {
	cfg := DefaultGenConfig()
	if cfg.Users != 6040 || cfg.Movies != 3900 || cfg.Ratings != 1_000_000 {
		t.Errorf("default scale = %+v, want MovieLens 1M scale", cfg)
	}
	years := cfg.End.Sub(cfg.Start) / (365 * 24 * time.Hour)
	if years < 7 {
		t.Errorf("default window spans %d years, want ≥ 7 for the time slider", years)
	}
}

func TestSyntheticTitlesUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		title := syntheticTitle(i)
		if seen[title] {
			t.Fatalf("syntheticTitle collision at %d: %q", i, title)
		}
		seen[title] = true
	}
}

func TestRoman(t *testing.T) {
	cases := map[int]string{1: "I", 2: "II", 4: "IV", 9: "IX", 14: "XIV", 40: "XL", 1987: "MCMLXXXVII"}
	for n, want := range cases {
		if got := roman(n); got != want {
			t.Errorf("roman(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestPersonNameDistinct(t *testing.T) {
	seen := map[string]bool{}
	n := len(firstNames) * len(lastNames)
	for i := 0; i < n; i++ {
		name := personName(i)
		if seen[name] {
			t.Fatalf("personName collision at %d: %q", i, name)
		}
		seen[name] = true
	}
}
