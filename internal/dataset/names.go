package dataset

// Vocabularies for the synthetic generator: person-name pools for the
// IMDB-style cast enrichment and word pools for synthetic movie titles.
// All synthesis is deterministic given the generator seed.

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Christopher",
	"Lisa", "Daniel", "Nancy", "Matthew", "Betty", "Anthony", "Margaret",
	"Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul",
	"Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Carol",
	"Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
	"Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
	"Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
	"Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
}

// personName derives the idx-th synthetic person name; indices range over
// len(firstNames)*len(lastNames) distinct combinations.
func personName(idx int) string {
	f := firstNames[idx%len(firstNames)]
	l := lastNames[(idx/len(firstNames))%len(lastNames)]
	return f + " " + l
}

var titleAdjectives = []string{
	"Crimson", "Silent", "Golden", "Broken", "Midnight", "Electric",
	"Forgotten", "Burning", "Frozen", "Hidden", "Savage", "Gentle",
	"Hollow", "Distant", "Restless", "Velvet", "Iron", "Paper", "Glass",
	"Neon", "Wandering", "Fearless", "Lonely", "Wicked", "Radiant",
	"Shattered", "Quiet", "Endless", "Stolen", "Secret",
}

var titleNouns = []string{
	"Harbor", "Empire", "Garden", "Horizon", "Shadow", "Summer", "Winter",
	"River", "Mountain", "Avenue", "Symphony", "Promise", "Journey",
	"Kingdom", "Letter", "Mirror", "Voyage", "Canyon", "Carnival",
	"Lantern", "Orchard", "Station", "Tempest", "Parade", "Compass",
	"Fortune", "Whisper", "Anthem", "Frontier", "Castle",
}

var titlePlaces = []string{
	"Veridia", "Ashford", "Bellmont", "Cedar Falls", "Duskwood", "Eastvale",
	"Fairpoint", "Glenrock", "Harlow", "Ivory Bay", "Juniper", "Kingsport",
	"Larkspur", "Meridian", "Northgate", "Oakhaven", "Pinecrest", "Quarry",
	"Redfield", "Silverlake",
}

// syntheticTitle derives the idx-th synthetic movie title. The index
// decomposes injectively into (pattern, adjective, noun), so the first
// 4·|adjectives|·|nouns| titles are unique by construction; beyond that a
// Roman-numeral sequel suffix disambiguates cycles.
func syntheticTitle(idx int) string {
	pattern := idx % 4
	adj := titleAdjectives[(idx/4)%len(titleAdjectives)]
	noun := titleNouns[(idx/(4*len(titleAdjectives)))%len(titleNouns)]
	place := titlePlaces[(idx/4)%len(titlePlaces)]
	var t string
	switch pattern {
	case 0:
		t = "The " + adj + " " + noun
	case 1:
		t = adj + " " + noun
	case 2:
		t = adj + " " + noun + " of " + place
	default:
		t = "A " + adj + " " + noun
	}
	if cycle := idx / (4 * len(titleAdjectives) * len(titleNouns)); cycle > 0 {
		t += " " + roman(cycle+1)
	}
	return t
}

// roman renders small positive integers as Roman numerals (sequel style).
func roman(n int) string {
	vals := []struct {
		v int
		s string
	}{{1000, "M"}, {900, "CM"}, {500, "D"}, {400, "CD"}, {100, "C"}, {90, "XC"},
		{50, "L"}, {40, "XL"}, {10, "X"}, {9, "IX"}, {5, "V"}, {4, "IV"}, {1, "I"}}
	out := ""
	for _, p := range vals {
		for n >= p.v {
			out += p.s
			n -= p.v
		}
	}
	return out
}
