package dataset

import (
	"bytes"
	"testing"
)

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := SmallGenConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseRatings(b *testing.B) {
	d, err := Generate(SmallGenConfig())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRatings(&buf, d.Ratings); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := ParseRatings(bytes.NewReader(raw))
		if err != nil || len(rs) != len(d.Ratings) {
			b.Fatalf("parse: %v (%d ratings)", err, len(rs))
		}
	}
}

func BenchmarkParseUsers(b *testing.B) {
	d, err := Generate(SmallGenConfig())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteUsers(&buf, d.Users); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		us, err := ParseUsers(bytes.NewReader(raw))
		if err != nil || len(us) != len(d.Users) {
			b.Fatalf("parse: %v", err)
		}
	}
}
