package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadDirCastOpenError pins the cast.dat error handling: only "the
// file does not exist" makes the cast optional. Any other open failure
// (here: a symlink loop, ELOOP) must surface as an error instead of
// silently loading the dataset without its cast enrichment.
func TestLoadDirCastOpenError(t *testing.T) {
	d := generateSmall(t)
	dir := t.TempDir()
	if err := WriteDir(dir, d); err != nil {
		t.Fatal(err)
	}
	castPath := filepath.Join(dir, CastFile)
	if err := os.Remove(castPath); err != nil {
		t.Fatal(err)
	}
	// A self-pointing symlink fails os.Open with ELOOP — a non-IsNotExist
	// error even for a root process (permission bits would not be).
	if err := os.Symlink(castPath, castPath); err != nil {
		t.Skipf("cannot create symlink: %v", err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("LoadDir swallowed a cast.dat open error that was not IsNotExist")
	}
}

func TestGenProvenance(t *testing.T) {
	a := DefaultGenConfig()
	b := DefaultGenConfig()
	if a.Provenance() != b.Provenance() {
		t.Error("identical configs hash differently")
	}
	b.Seed = 2
	if a.Provenance() == b.Provenance() {
		t.Error("different seeds hash identically")
	}
	c := DefaultGenConfig()
	c.Ratings++
	if a.Provenance() == c.Provenance() {
		t.Error("different rating targets hash identically")
	}
}

func TestDirProvenance(t *testing.T) {
	d := generateSmall(t)
	dir := t.TempDir()
	if err := WriteDir(dir, d); err != nil {
		t.Fatal(err)
	}
	p1, err := DirProvenance(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := DirProvenance(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("provenance of an unchanged directory differs between calls")
	}
	// Removing the optional cast file must change the hash (its absence
	// is part of the identity).
	if err := os.Remove(filepath.Join(dir, CastFile)); err != nil {
		t.Fatal(err)
	}
	p3, err := DirProvenance(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("provenance unchanged after removing cast.dat")
	}
	// Mutating a source file must change the hash.
	f, err := os.OpenFile(filepath.Join(dir, RatingsFile), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("1::1::5::978300760\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	p4, err := DirProvenance(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p3 {
		t.Error("provenance unchanged after appending a rating")
	}
}
