// Package dataset provides the data substrate for MapRat: a reader/writer
// for the MovieLens 1M file format the paper demos on, and a deterministic
// synthetic generator that emits the same schema at the same scale with
// planted rating structure (the substitution for the real MovieLens+IMDB
// data documented in DESIGN.md).
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cube"
	"repro/internal/model"
)

// File names inside a MovieLens 1M directory. Cast.dat is our IMDB-style
// enrichment side file (the paper integrates IMDB for actors/directors).
const (
	UsersFile   = "users.dat"
	MoviesFile  = "movies.dat"
	RatingsFile = "ratings.dat"
	CastFile    = "cast.dat"
)

const mlSep = "::"

// ParseUsers reads MovieLens `UserID::Gender::Age::Occupation::Zip-code`
// lines and resolves each user's state and city from the zip code.
func ParseUsers(r io.Reader) ([]model.User, error) {
	var users []model.User
	sc := newLineScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		f := strings.Split(line, mlSep)
		if len(f) != 5 {
			return nil, fmt.Errorf("dataset: users line %d: want 5 fields, got %d", sc.lineNo, len(f))
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: users line %d: bad id %q", sc.lineNo, f[0])
		}
		gender, err := model.ParseGender(f[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: users line %d: %w", sc.lineNo, err)
		}
		ageCode, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: users line %d: bad age %q", sc.lineNo, f[2])
		}
		age, err := model.ParseAgeCode(ageCode)
		if err != nil {
			return nil, fmt.Errorf("dataset: users line %d: %w", sc.lineNo, err)
		}
		occCode, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("dataset: users line %d: bad occupation %q", sc.lineNo, f[3])
		}
		occ, err := model.ParseOccupation(occCode)
		if err != nil {
			return nil, fmt.Errorf("dataset: users line %d: %w", sc.lineNo, err)
		}
		u := model.User{ID: id, Gender: gender, Age: age, Occupation: occ, Zip: zipBase(f[4])}
		cube.ResolveUser(&u)
		users = append(users, u)
	}
	return users, sc.Err()
}

// zipBase strips ZIP+4 suffixes ("98107-2117" -> "98107"), which appear in
// the real MovieLens files.
func zipBase(zip string) string {
	if i := strings.IndexByte(zip, '-'); i >= 0 {
		return zip[:i]
	}
	return zip
}

// ParseMovies reads MovieLens `MovieID::Title (Year)::Genre|Genre` lines.
func ParseMovies(r io.Reader) ([]model.Item, error) {
	var items []model.Item
	sc := newLineScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		f := strings.Split(line, mlSep)
		if len(f) != 3 {
			return nil, fmt.Errorf("dataset: movies line %d: want 3 fields, got %d", sc.lineNo, len(f))
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: movies line %d: bad id %q", sc.lineNo, f[0])
		}
		title, year := SplitTitleYear(f[1])
		var genres []string
		if f[2] != "" {
			genres = strings.Split(f[2], "|")
		}
		items = append(items, model.Item{ID: id, Title: title, Year: year, Genres: genres})
	}
	return items, sc.Err()
}

// SplitTitleYear splits "Toy Story (1995)" into ("Toy Story", 1995). Titles
// without a trailing year return year 0.
func SplitTitleYear(s string) (string, int) {
	s = strings.TrimSpace(s)
	if n := len(s); n >= 6 && s[n-1] == ')' && s[n-6] == '(' {
		if y, err := strconv.Atoi(s[n-5 : n-1]); err == nil {
			return strings.TrimSpace(s[:n-6]), y
		}
	}
	return s, 0
}

// JoinTitleYear is the inverse of SplitTitleYear.
func JoinTitleYear(title string, year int) string {
	if year == 0 {
		return title
	}
	return fmt.Sprintf("%s (%d)", title, year)
}

// ParseRatings reads MovieLens `UserID::MovieID::Rating::Timestamp` lines.
func ParseRatings(r io.Reader) ([]model.Rating, error) {
	var ratings []model.Rating
	sc := newLineScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		f := strings.Split(line, mlSep)
		if len(f) != 4 {
			return nil, fmt.Errorf("dataset: ratings line %d: want 4 fields, got %d", sc.lineNo, len(f))
		}
		var vals [3]int
		for i := 0; i < 3; i++ {
			v, err := strconv.Atoi(f[i])
			if err != nil {
				return nil, fmt.Errorf("dataset: ratings line %d: bad field %q", sc.lineNo, f[i])
			}
			vals[i] = v
		}
		ts, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: ratings line %d: bad timestamp %q", sc.lineNo, f[3])
		}
		rt := model.Rating{UserID: vals[0], ItemID: vals[1], Score: vals[2], Unix: ts}
		if err := rt.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: ratings line %d: %w", sc.lineNo, err)
		}
		ratings = append(ratings, rt)
	}
	return ratings, sc.Err()
}

// ParseCast reads our IMDB-enrichment side file:
// `MovieID::Director|Director::Actor|Actor|...`. It mutates items in place.
func ParseCast(r io.Reader, items []model.Item) error {
	byID := make(map[int]*model.Item, len(items))
	for i := range items {
		byID[items[i].ID] = &items[i]
	}
	sc := newLineScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		f := strings.Split(line, mlSep)
		if len(f) != 3 {
			return fmt.Errorf("dataset: cast line %d: want 3 fields, got %d", sc.lineNo, len(f))
		}
		id, err := strconv.Atoi(f[0])
		if err != nil {
			return fmt.Errorf("dataset: cast line %d: bad id %q", sc.lineNo, f[0])
		}
		it := byID[id]
		if it == nil {
			return fmt.Errorf("dataset: cast line %d: unknown movie %d", sc.lineNo, id)
		}
		if f[1] != "" {
			it.Directors = strings.Split(f[1], "|")
		}
		if f[2] != "" {
			it.Actors = strings.Split(f[2], "|")
		}
	}
	return sc.Err()
}

// LoadDir loads a complete MovieLens-1M-format directory. The cast file is
// optional (the real MovieLens distribution lacks it).
func LoadDir(dir string) (*model.Dataset, error) {
	users, err := loadParsed(filepath.Join(dir, UsersFile), ParseUsers)
	if err != nil {
		return nil, err
	}
	items, err := loadParsed(filepath.Join(dir, MoviesFile), ParseMovies)
	if err != nil {
		return nil, err
	}
	ratings, err := loadParsed(filepath.Join(dir, RatingsFile), ParseRatings)
	if err != nil {
		return nil, err
	}
	castPath := filepath.Join(dir, CastFile)
	if f, err := os.Open(castPath); err == nil {
		perr := ParseCast(bufio.NewReader(f), items)
		f.Close()
		if perr != nil {
			return nil, perr
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return model.NewDataset(users, items, ratings)
}

func loadParsed[T any](path string, parse func(io.Reader) ([]T, error)) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out, err := parse(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// WriteDir writes a dataset in MovieLens 1M format (plus cast.dat) so the
// generator's output can feed any MovieLens-compatible tool.
func WriteDir(dir string, d *model.Dataset) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writers := []struct {
		name  string
		write func(w io.Writer) error
	}{
		{UsersFile, func(w io.Writer) error { return WriteUsers(w, d.Users) }},
		{MoviesFile, func(w io.Writer) error { return WriteMovies(w, d.Items) }},
		{RatingsFile, func(w io.Writer) error { return WriteRatings(w, d.Ratings) }},
		{CastFile, func(w io.Writer) error { return WriteCast(w, d.Items) }},
	}
	for _, spec := range writers {
		if err := writeFile(filepath.Join(dir, spec.name), spec.write); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := write(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteUsers emits users.dat lines.
func WriteUsers(w io.Writer, users []model.User) error {
	for i := range users {
		u := &users[i]
		if _, err := fmt.Fprintf(w, "%d::%s::%d::%d::%s\n",
			u.ID, u.Gender, u.Age.Code(), u.Occupation, u.Zip); err != nil {
			return err
		}
	}
	return nil
}

// WriteMovies emits movies.dat lines.
func WriteMovies(w io.Writer, items []model.Item) error {
	for i := range items {
		it := &items[i]
		if _, err := fmt.Fprintf(w, "%d::%s::%s\n",
			it.ID, JoinTitleYear(it.Title, it.Year), strings.Join(it.Genres, "|")); err != nil {
			return err
		}
	}
	return nil
}

// WriteRatings emits ratings.dat lines.
func WriteRatings(w io.Writer, ratings []model.Rating) error {
	for _, r := range ratings {
		if _, err := fmt.Fprintf(w, "%d::%d::%d::%d\n", r.UserID, r.ItemID, r.Score, r.Unix); err != nil {
			return err
		}
	}
	return nil
}

// WriteCast emits cast.dat lines for items that have cast metadata.
func WriteCast(w io.Writer, items []model.Item) error {
	for i := range items {
		it := &items[i]
		if len(it.Directors) == 0 && len(it.Actors) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%d::%s::%s\n",
			it.ID, strings.Join(it.Directors, "|"), strings.Join(it.Actors, "|")); err != nil {
			return err
		}
	}
	return nil
}

// lineScanner wraps bufio.Scanner with 1-based line numbers for error
// reporting and a buffer large enough for any MovieLens line.
type lineScanner struct {
	*bufio.Scanner
	lineNo int
}

func newLineScanner(r io.Reader) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &lineScanner{Scanner: sc}
}

func (s *lineScanner) Scan() bool {
	ok := s.Scanner.Scan()
	if ok {
		s.lineNo++
	}
	return ok
}

// Genres is the MovieLens 1M genre vocabulary.
var Genres = []string{
	"Action", "Adventure", "Animation", "Children's", "Comedy", "Crime",
	"Documentary", "Drama", "Fantasy", "Film-Noir", "Horror", "Musical",
	"Mystery", "Romance", "Sci-Fi", "Thriller", "War", "Western",
}

// GenreIndex returns a genre's position in the vocabulary, or -1.
func GenreIndex(genre string) int {
	i := sort.SearchStrings(sortedGenres, genre)
	if i < len(sortedGenres) && sortedGenres[i] == genre {
		return genreRank[genre]
	}
	return -1
}

var (
	sortedGenres []string
	genreRank    = map[string]int{}
)

func init() {
	sortedGenres = append(sortedGenres, Genres...)
	sort.Strings(sortedGenres)
	for i, g := range Genres {
		genreRank[g] = i
	}
}
