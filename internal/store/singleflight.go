package store

import (
	"context"
	"errors"
	"sync"
)

// Flight deduplicates concurrent identical work: while one caller (the
// leader) computes the value for a key, followers arriving with the same
// key block and receive the leader's result instead of recomputing it.
// MapRat puts a Flight in front of the LRU result cache so a burst of
// identical queries — the demo-booth hot spot — mines once, not N times.
//
// The zero Flight is ready to use.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	// leads and joins count leader executions and follower waits, for
	// tests and monitoring.
	leads, joins uint64
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do executes fn once per key among concurrent callers and hands every
// caller the same (val, err). shared reports whether the value came from
// another caller's execution.
//
// Cancellation stays per-caller: a follower whose own ctx ends stops
// waiting and returns ctx.Err() without affecting the leader, and when the
// leader itself is cancelled its context error is not propagated to
// followers — a surviving follower retries as the new leader.
func (f *Flight) Do(ctx context.Context, key string, fn func() (any, error)) (val any, shared bool, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		f.mu.Lock()
		if f.calls == nil {
			f.calls = make(map[string]*flightCall)
		}
		if c, ok := f.calls[key]; ok {
			f.joins++
			f.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
				continue // the leader died of its own context; try again
			}
			return c.val, true, c.err
		}
		c := &flightCall{done: make(chan struct{})}
		f.calls[key] = c
		f.leads++
		f.mu.Unlock()

		// Deregister and wake followers even if fn panics — otherwise the
		// dead call would block every future caller for this key forever.
		func() {
			defer func() {
				f.mu.Lock()
				delete(f.calls, key)
				f.mu.Unlock()
				close(c.done)
			}()
			c.err = errFlightPanic
			c.val, c.err = fn()
		}()
		return c.val, false, c.err
	}
}

// errFlightPanic is what followers observe when a leader's fn panicked
// before assigning a result (the panic itself propagates to the leader).
var errFlightPanic = errors.New("store: singleflight leader panicked")

// Stats returns the cumulative leader and follower counts.
func (f *Flight) Stats() (leads, joins uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leads, f.joins
}
