package store

import (
	"container/list"
	"context"
	"strconv"
	"sync"

	"repro/internal/cube"
)

// Plan is one materialized query plan: everything the mining pipelines
// derive from a query before solving — the resolved item IDs, the gathered
// R_I tuple slice, the candidate cube built over it, and the overall
// aggregate the paper argues is insufficient on its own. Materializing the
// plan once makes every follow-up interaction on the same query (group
// click, drill-deeper, city mine, evolution window) skip the resolve →
// gather → cube-build pipeline entirely.
//
// Plans are shared across concurrent requests and MUST be treated as
// immutable by every consumer: the solver keeps its scratch per Problem,
// and the exploration layer only reads tuples and member lists. The one
// sanctioned exception is the cube's own lazily built, internally
// synchronized caches (coverage bitsets, sibling table), which populate
// once under sync.Once on first use and are immutable afterwards.
type Plan struct {
	ItemIDs []int
	Tuples  []cube.Tuple
	Cube    *cube.Cube
	Overall cube.Agg
}

// Cost is the plan's tuple count — the unit the cache budget is
// denominated in. Tuples dominate a plan's memory (the cube's member
// lists are proportional to them), so budgeting by tuples bounds memory
// without per-entry byte bookkeeping on the hot path.
func (p *Plan) Cost() int { return len(p.Tuples) }

// SizeBytes approximates the plan's resident memory. The cube's tuple
// slice is the plan's tuple slice, so it is counted once, via the cube.
func (p *Plan) SizeBytes() int64 {
	b := int64(len(p.ItemIDs)) * 8
	if p.Cube != nil {
		return b + p.Cube.SizeBytes()
	}
	return b + int64(len(p.Tuples))*cube.TupleBytes
}

// PlanStats is a monitoring snapshot of the materialization tier.
type PlanStats struct {
	// Hits counts fetches served without running their own build — from
	// the cache or by joining another caller's in-flight build (the
	// latter also counted in Shared). Misses counts fetches whose own
	// build ran or failed, so Hits+Misses equals the number of fetches.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Shared uint64 `json:"shared"`
	// Builds counts successful builder executions — the number of times
	// the full resolve → gather → cube pipeline actually ran and yielded
	// a plan (Misses minus failed builds).
	Builds    uint64 `json:"builds"`
	Evictions uint64 `json:"evictions"`
	// Invalidated counts live entries sealed by an append whose batch
	// intersected their resolved item set; Surviving counts live entries
	// an append left warm. Together they prove invalidation is surgical:
	// Surviving grows while untouched plans keep taking hits.
	Invalidated uint64 `json:"invalidated"`
	Surviving   uint64 `json:"surviving"`
	Entries     int    `json:"entries"`
	// Tuples is the current budget usage against MaxTuples.
	Tuples    int   `json:"tuples"`
	MaxTuples int   `json:"max_tuples"`
	Bytes     int64 `json:"bytes"`
}

// PlanCache is the materialization tier of §2.3's "aggressive data
// pre-processing, result pre-computation and caching": a memory-bounded,
// singleflight-fronted LRU of materialized query plans, keyed by the
// caller's canonical (query, window, cube config) fingerprint and sized
// by total tuple count rather than entry count — one whole-log query must
// not cost the same budget as a one-movie query.
//
// Under live ingestion the tier is versioned by epoch: every entry
// carries the epoch range it is valid for, and an append seals — rather
// than drops — exactly the live entries whose resolved item set
// intersects the batch. A sealed entry keeps serving epoch-pinned reads
// for its range until the LRU evicts it; entries the batch did not touch
// stay live and warm across the epoch bump. The cache key stays
// epoch-free: versions of one key chain under it.
type PlanCache struct {
	mu        sync.Mutex
	maxTuples int
	ll        *list.List // front = most recently used
	versions  map[string][]*list.Element
	tuples    int
	epoch     uint64 // current store epoch; entries built at >= epoch are live

	hits, misses, shared, builds, evictions, invalidated, surviving uint64

	// flight collapses concurrent builds of the same (key, epoch): a
	// burst of interactions on one query resolves and builds its cube
	// once.
	flight Flight
}

type planEntry struct {
	key  string
	plan *Plan
	// [lo, hi] is the entry's valid epoch range; hi == 0 means live
	// (valid from lo through the current epoch, until an intersecting
	// append seals it).
	lo, hi uint64
}

// validAt reports whether the entry serves reads pinned at epoch e.
func (e *planEntry) validAt(epoch uint64) bool {
	return e.lo <= epoch && (e.hi == 0 || epoch <= e.hi)
}

// NewPlanCache builds a cache bounded to maxTuples total tuples across
// cached plans (maxTuples must be positive).
func NewPlanCache(maxTuples int) *PlanCache {
	if maxTuples <= 0 {
		maxTuples = 1
	}
	return &PlanCache{
		maxTuples: maxTuples,
		ll:        list.New(),
		versions:  make(map[string][]*list.Element),
		epoch:     1,
	}
}

// GetOrBuild fetches the plan for key at the cache's current epoch. See
// GetOrBuildAt.
func (pc *PlanCache) GetOrBuild(ctx context.Context, key string, build func() (*Plan, error)) (plan *Plan, hit bool, err error) {
	pc.mu.Lock()
	epoch := pc.epoch
	pc.mu.Unlock()
	return pc.GetOrBuildAt(ctx, key, epoch, build) //maprat:allow(clonecheck) delegation inside the plan cache's own API; Plan is immutable by contract
}

// GetOrBuildAt returns the materialized plan for key as of epoch,
// building it with build on a miss. A version whose range covers the
// epoch serves the fetch — in particular a live entry built before the
// epoch, which is exactly the "untouched plan stays warm" case.
// Concurrent callers with the same key and epoch share a single build
// through the singleflight layer; hit reports whether the plan came from
// the cache (or another caller's build) rather than this caller's own
// build. Build errors are returned and never cached.
func (pc *PlanCache) GetOrBuildAt(ctx context.Context, key string, epoch uint64, build func() (*Plan, error)) (plan *Plan, hit bool, err error) {
	// Each logical fetch counts exactly once: as a hit when served from
	// the cache, a leader's re-check, or another caller's in-flight build
	// (the latter also counted in Shared), and as a miss only when this
	// caller's own build ran (or failed).
	if p, ok := pc.lookupAt(key, epoch); ok {
		return p, true, nil
	}
	flightKey := key + "@" + strconv.FormatUint(epoch, 10)
	v, sharedFlight, err := pc.flight.Do(ctx, flightKey, func() (any, error) {
		// Re-check under flight leadership: a previous leader may have
		// finished between this caller's lookup and its leadership.
		if p, ok := pc.lookupAt(key, epoch); ok {
			return p, nil
		}
		p, err := build()
		pc.mu.Lock()
		pc.misses++
		if err == nil {
			pc.builds++
		}
		pc.mu.Unlock()
		if err != nil {
			return nil, err
		}
		pc.put(key, p, epoch)
		return p, nil
	})
	if err != nil {
		return nil, false, err
	}
	if sharedFlight {
		pc.mu.Lock()
		pc.shared++
		pc.hits++
		pc.mu.Unlock()
	}
	return v.(*Plan), sharedFlight, nil //maprat:allow(clonecheck) GetOrBuildAt is the plan cache's own API; Plan is immutable by contract and documented above
}

// lookupAt returns the cached plan version valid at epoch, counting and
// marking a hit most recently used. Misses are not counted here —
// GetOrBuildAt charges them to the caller whose build actually ran.
func (pc *PlanCache) lookupAt(key string, epoch uint64) (*Plan, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for _, el := range pc.versions[key] {
		e := el.Value.(*planEntry)
		if e.validAt(epoch) {
			pc.ll.MoveToFront(el)
			pc.hits++
			return e.plan, true
		}
	}
	return nil, false
}

// put stores a plan built as of buildEpoch, evicting least-recently-used
// versions until the tuple budget holds. The entry is stored live when
// the build's epoch is still current, and sealed to the single epoch
// [buildEpoch, buildEpoch] when an append advanced the cache while the
// build ran — the builder saw the old watermark, so its plan must not
// serve later epochs. A plan that alone exceeds the budget is served
// uncached rather than wiping the whole tier for one query.
func (pc *PlanCache) put(key string, p *Plan, buildEpoch uint64) {
	cost := p.Cost()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if cost > pc.maxTuples {
		return
	}
	hi := uint64(0)
	if buildEpoch < pc.epoch {
		hi = buildEpoch
	}
	entry := &planEntry{key: key, plan: p, lo: buildEpoch, hi: hi}
	for _, el := range pc.versions[key] {
		e := el.Value.(*planEntry)
		if e.lo == buildEpoch && e.hi == hi {
			// A concurrent fetch of the same version raced us here;
			// replace its plan in place.
			pc.tuples -= e.plan.Cost()
			e.plan = p
			pc.ll.MoveToFront(el)
			pc.tuples += cost
			pc.evictLocked()
			return
		}
	}
	pc.versions[key] = append(pc.versions[key], pc.ll.PushFront(entry))
	pc.tuples += cost
	pc.evictLocked()
}

// evictLocked drops least-recently-used versions until the tuple budget
// holds. Callers hold mu.
func (pc *PlanCache) evictLocked() {
	for pc.tuples > pc.maxTuples {
		oldest := pc.ll.Back()
		if oldest == nil {
			break
		}
		pc.removeLocked(oldest)
		pc.evictions++
	}
}

// removeLocked unlinks one version from the LRU list and its key's
// version chain. Callers hold mu.
func (pc *PlanCache) removeLocked(el *list.Element) {
	e := el.Value.(*planEntry)
	pc.ll.Remove(el)
	pc.tuples -= e.plan.Cost()
	chain := pc.versions[e.key]
	for i, cand := range chain {
		if cand == el {
			chain = append(chain[:i], chain[i+1:]...)
			break
		}
	}
	if len(chain) == 0 {
		delete(pc.versions, e.key)
	} else {
		pc.versions[e.key] = chain
	}
}

// Advance moves the cache to newEpoch after an append whose batch
// touched the given sorted item IDs. Exactly the live entries whose
// resolved item set intersects the batch are sealed at newEpoch-1 (they
// keep serving epoch-pinned reads for their range); every other live
// entry stays live — its item set is disjoint from the batch, so the
// plan is byte-identical at the new epoch. The Invalidated/Surviving
// counters record the split.
func (pc *PlanCache) Advance(newEpoch uint64, itemIDs []int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if newEpoch <= pc.epoch {
		return
	}
	for el := pc.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*planEntry)
		if e.hi != 0 || e.lo >= newEpoch {
			continue
		}
		if intersectsSorted(e.plan.ItemIDs, itemIDs) {
			e.hi = newEpoch - 1
			pc.invalidated++
		} else {
			pc.surviving++
		}
	}
	pc.epoch = newEpoch
}

// intersectsSorted reports whether two ascending ID slices share an
// element.
func intersectsSorted(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Len returns the number of cached plan versions.
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.ll.Len()
}

// Stats returns a snapshot of the tier's counters and current usage.
// Bytes is recomputed from the live entries rather than carried from
// insert time: a cached plan's cube grows lazily built structures after
// caching (the solver's coverage bitsets, the sibling table), and the
// snapshot should account for them.
func (pc *PlanCache) Stats() PlanStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var bytes int64
	for el := pc.ll.Front(); el != nil; el = el.Next() {
		bytes += el.Value.(*planEntry).plan.SizeBytes()
	}
	return PlanStats{
		Hits:        pc.hits,
		Misses:      pc.misses,
		Shared:      pc.shared,
		Builds:      pc.builds,
		Evictions:   pc.evictions,
		Invalidated: pc.invalidated,
		Surviving:   pc.surviving,
		Entries:     pc.ll.Len(),
		Tuples:      pc.tuples,
		MaxTuples:   pc.maxTuples,
		Bytes:       bytes,
	}
}

// Reset clears the cache and its counters; the epoch clock is preserved
// so versioning stays aligned with the store.
func (pc *PlanCache) Reset() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.ll.Init()
	pc.versions = make(map[string][]*list.Element)
	pc.tuples = 0
	pc.hits, pc.misses, pc.shared, pc.builds, pc.evictions = 0, 0, 0, 0, 0
	pc.invalidated, pc.surviving = 0, 0
}
