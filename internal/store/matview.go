package store

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/cube"
)

// Plan is one materialized query plan: everything the mining pipelines
// derive from a query before solving — the resolved item IDs, the gathered
// R_I tuple slice, the candidate cube built over it, and the overall
// aggregate the paper argues is insufficient on its own. Materializing the
// plan once makes every follow-up interaction on the same query (group
// click, drill-deeper, city mine, evolution window) skip the resolve →
// gather → cube-build pipeline entirely.
//
// Plans are shared across concurrent requests and MUST be treated as
// immutable by every consumer: the solver keeps its scratch per Problem,
// and the exploration layer only reads tuples and member lists. The one
// sanctioned exception is the cube's own lazily built, internally
// synchronized caches (coverage bitsets, sibling table), which populate
// once under sync.Once on first use and are immutable afterwards.
type Plan struct {
	ItemIDs []int
	Tuples  []cube.Tuple
	Cube    *cube.Cube
	Overall cube.Agg
}

// Cost is the plan's tuple count — the unit the cache budget is
// denominated in. Tuples dominate a plan's memory (the cube's member
// lists are proportional to them), so budgeting by tuples bounds memory
// without per-entry byte bookkeeping on the hot path.
func (p *Plan) Cost() int { return len(p.Tuples) }

// SizeBytes approximates the plan's resident memory. The cube's tuple
// slice is the plan's tuple slice, so it is counted once, via the cube.
func (p *Plan) SizeBytes() int64 {
	b := int64(len(p.ItemIDs)) * 8
	if p.Cube != nil {
		return b + p.Cube.SizeBytes()
	}
	return b + int64(len(p.Tuples))*cube.TupleBytes
}

// PlanStats is a monitoring snapshot of the materialization tier.
type PlanStats struct {
	// Hits counts fetches served without running their own build — from
	// the cache or by joining another caller's in-flight build (the
	// latter also counted in Shared). Misses counts fetches whose own
	// build ran or failed, so Hits+Misses equals the number of fetches.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Shared uint64 `json:"shared"`
	// Builds counts successful builder executions — the number of times
	// the full resolve → gather → cube pipeline actually ran and yielded
	// a plan (Misses minus failed builds).
	Builds    uint64 `json:"builds"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	// Tuples is the current budget usage against MaxTuples.
	Tuples    int   `json:"tuples"`
	MaxTuples int   `json:"max_tuples"`
	Bytes     int64 `json:"bytes"`
}

// PlanCache is the materialization tier of §2.3's "aggressive data
// pre-processing, result pre-computation and caching": a memory-bounded,
// singleflight-fronted LRU of materialized query plans, keyed by the
// caller's canonical (query, window, cube config) fingerprint and sized
// by total tuple count rather than entry count — one whole-log query must
// not cost the same budget as a one-movie query.
type PlanCache struct {
	mu        sync.Mutex
	maxTuples int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	tuples    int

	hits, misses, shared, builds, evictions uint64

	// flight collapses concurrent builds of the same plan: a burst of
	// interactions on one query resolves and builds its cube once.
	flight Flight
}

type planEntry struct {
	key  string
	plan *Plan
}

// NewPlanCache builds a cache bounded to maxTuples total tuples across
// cached plans (maxTuples must be positive).
func NewPlanCache(maxTuples int) *PlanCache {
	if maxTuples <= 0 {
		maxTuples = 1
	}
	return &PlanCache{
		maxTuples: maxTuples,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
	}
}

// GetOrBuild returns the materialized plan for key, building it with
// build on a miss. Concurrent callers with the same key share a single
// build through the singleflight layer; hit reports whether the plan came
// from the cache (or another caller's build) rather than this caller's
// own build. Build errors are returned and never cached.
func (pc *PlanCache) GetOrBuild(ctx context.Context, key string, build func() (*Plan, error)) (plan *Plan, hit bool, err error) {
	// Each logical fetch counts exactly once: as a hit when served from
	// the cache, a leader's re-check, or another caller's in-flight build
	// (the latter also counted in Shared), and as a miss only when this
	// caller's own build ran (or failed).
	if p, ok := pc.lookup(key); ok {
		return p, true, nil
	}
	v, sharedFlight, err := pc.flight.Do(ctx, key, func() (any, error) {
		// Re-check under flight leadership: a previous leader may have
		// finished between this caller's lookup and its leadership.
		if p, ok := pc.lookup(key); ok {
			return p, nil
		}
		p, err := build()
		pc.mu.Lock()
		pc.misses++
		if err == nil {
			pc.builds++
		}
		pc.mu.Unlock()
		if err != nil {
			return nil, err
		}
		pc.put(key, p)
		return p, nil
	})
	if err != nil {
		return nil, false, err
	}
	if sharedFlight {
		pc.mu.Lock()
		pc.shared++
		pc.hits++
		pc.mu.Unlock()
	}
	return v.(*Plan), sharedFlight, nil //maprat:allow(clonecheck) GetOrBuild is the plan cache's own API; Plan is immutable by contract and documented above
}

// lookup returns the cached plan for key, counting and marking a hit
// most recently used. Misses are not counted here — GetOrBuild charges
// them to the caller whose build actually ran.
func (pc *PlanCache) lookup(key string) (*Plan, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.items[key]; ok {
		pc.ll.MoveToFront(el)
		pc.hits++
		return el.Value.(*planEntry).plan, true
	}
	return nil, false
}

// put stores a plan, evicting least-recently-used plans until the tuple
// budget holds. A plan that alone exceeds the budget is served uncached
// rather than wiping the whole tier for one query.
func (pc *PlanCache) put(key string, p *Plan) {
	cost := p.Cost()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if cost > pc.maxTuples {
		return
	}
	if el, ok := pc.items[key]; ok {
		e := el.Value.(*planEntry)
		pc.tuples -= e.plan.Cost()
		e.plan = p
		pc.ll.MoveToFront(el)
	} else {
		pc.items[key] = pc.ll.PushFront(&planEntry{key: key, plan: p})
	}
	pc.tuples += cost
	for pc.tuples > pc.maxTuples {
		oldest := pc.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*planEntry)
		pc.ll.Remove(oldest)
		delete(pc.items, e.key)
		pc.tuples -= e.plan.Cost()
		pc.evictions++
	}
}

// Len returns the number of cached plans.
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.ll.Len()
}

// Stats returns a snapshot of the tier's counters and current usage.
// Bytes is recomputed from the live entries rather than carried from
// insert time: a cached plan's cube grows lazily built structures after
// caching (the solver's coverage bitsets, the sibling table), and the
// snapshot should account for them.
func (pc *PlanCache) Stats() PlanStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var bytes int64
	for el := pc.ll.Front(); el != nil; el = el.Next() {
		bytes += el.Value.(*planEntry).plan.SizeBytes()
	}
	return PlanStats{
		Hits:      pc.hits,
		Misses:    pc.misses,
		Shared:    pc.shared,
		Builds:    pc.builds,
		Evictions: pc.evictions,
		Entries:   pc.ll.Len(),
		Tuples:    pc.tuples,
		MaxTuples: pc.maxTuples,
		Bytes:     bytes,
	}
}

// Reset clears the cache and its counters.
func (pc *PlanCache) Reset() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.ll.Init()
	pc.items = make(map[string]*list.Element)
	pc.tuples = 0
	pc.hits, pc.misses, pc.shared, pc.builds, pc.evictions = 0, 0, 0, 0, 0
}
