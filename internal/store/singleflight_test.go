package store

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightDeduplicatesConcurrentCalls(t *testing.T) {
	var f Flight
	var executions atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const followers = 8
	var wg sync.WaitGroup
	results := make([]any, followers+1)
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, _, err := f.Do(context.Background(), "k", func() (any, error) {
			executions.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0] = v
	}()

	<-started // the leader holds the key; everyone below must join it
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := f.Do(context.Background(), "k", func() (any, error) {
				executions.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			if !shared {
				t.Errorf("follower %d did not share", i)
			}
			results[i+1] = v
		}(i)
	}
	// Give followers a moment to park on the call before releasing.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone

	if n := executions.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %v, want 42", i, v)
		}
	}
}

func TestFlightPropagatesErrors(t *testing.T) {
	var f Flight
	boom := errors.New("boom")
	_, _, err := f.Do(context.Background(), "k", func() (any, error) { return nil, boom })
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
	// The failed call must not wedge the key.
	v, shared, err := f.Do(context.Background(), "k", func() (any, error) { return 7, nil })
	if err != nil || shared || v != 7 {
		t.Fatalf("retry after error: v=%v shared=%v err=%v", v, shared, err)
	}
}

func TestFlightFollowerCancellation(t *testing.T) {
	var f Flight
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go f.Do(context.Background(), "k", func() (any, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, _, err := f.Do(ctx, "k", func() (any, error) { return 2, nil })
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestFlightLeaderPanicDoesNotWedgeKey ensures a panicking leader
// deregisters its call: followers are woken with an error and the key is
// usable again.
func TestFlightLeaderPanicDoesNotWedgeKey(t *testing.T) {
	var f Flight
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate to the leader")
			}
		}()
		f.Do(context.Background(), "k", func() (any, error) { panic("boom") })
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	v, shared, err := f.Do(ctx, "k", func() (any, error) { return 9, nil })
	if err != nil || shared || v != 9 {
		t.Fatalf("key wedged after leader panic: v=%v shared=%v err=%v", v, shared, err)
	}
}

func TestFlightLeaderCancellationNotShared(t *testing.T) {
	// A leader cancelled by its own context must not poison followers:
	// the follower retries and computes the value itself.
	var f Flight
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	go f.Do(leaderCtx, "k", func() (any, error) {
		close(started)
		<-leaderCtx.Done()
		return nil, leaderCtx.Err()
	})
	<-started
	go cancelLeader()

	v, _, err := f.Do(context.Background(), "k", func() (any, error) { return "mine", nil })
	if err != nil || v != "mine" {
		t.Fatalf("follower after leader cancel: v=%v err=%v", v, err)
	}
}
