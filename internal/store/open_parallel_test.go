package store

import (
	"reflect"
	"runtime"
	"testing"
)

// TestOpenParallelMatchesSequential pins the sharded Open's contract: the
// joined tuple log, per-item indexes, time range and precomputed global
// cube must be identical whether the join ran on one goroutine or many.
// The small dataset (~80k ratings) is above openParallelMin, so the
// GOMAXPROCS>1 run actually takes the sharded path on multi-core hosts;
// on a single-core host both runs take the same path and the test is a
// (still valid) identity check.
func TestOpenParallelMatchesSequential(t *testing.T) {
	ds := smallDataset(t)
	if len(ds.Ratings) < openParallelMin {
		t.Fatalf("fixture has %d ratings, below the parallel threshold %d; the test would not exercise sharding",
			len(ds.Ratings), openParallelMin)
	}

	prev := runtime.GOMAXPROCS(1)
	seq, seqErr := Open(ds, DefaultOptions())
	if seqErr == nil {
		seq.GlobalCube() // force the lazy build on one goroutine
	}
	runtime.GOMAXPROCS(4)
	par, parErr := Open(ds, DefaultOptions())
	if parErr == nil {
		par.GlobalCube()
	}
	runtime.GOMAXPROCS(prev)
	if seqErr != nil || parErr != nil {
		t.Fatalf("Open failed: seq=%v par=%v", seqErr, parErr)
	}

	if !reflect.DeepEqual(seq.tuples, par.tuples) {
		t.Fatal("joined tuple logs differ")
	}
	if !reflect.DeepEqual(seq.itemTuples, par.itemTuples) {
		t.Fatal("per-item time indexes differ")
	}
	if seq.minUnix != par.minUnix || seq.maxUnix != par.maxUnix {
		t.Fatalf("time ranges differ: [%d,%d] vs [%d,%d]",
			seq.minUnix, seq.maxUnix, par.minUnix, par.maxUnix)
	}
	if !reflect.DeepEqual(seq.globalCube.Groups, par.globalCube.Groups) {
		t.Fatal("precomputed global cubes differ")
	}
	for _, m := range []struct {
		name     string
		seq, par map[string][]int
	}{
		{"byGenre", seq.byGenre, par.byGenre},
		{"byActor", seq.byActor, par.byActor},
		{"byDirector", seq.byDirector, par.byDirector},
		{"byTitle", seq.byTitle, par.byTitle},
		{"titleTerm", seq.titleTerm, par.titleTerm},
	} {
		if !reflect.DeepEqual(m.seq, m.par) {
			t.Fatalf("%s indexes differ", m.name)
		}
	}
}

// TestTimeWindowEpochBounds covers the historical bug: an explicit bound
// at Unix time 0 was read as "unbounded". The constructors mark bounds
// explicit, so the epoch is now a usable boundary.
func TestTimeWindowEpochBounds(t *testing.T) {
	w := Between(0, 100)
	if w.Contains(-1) {
		t.Error("Between(0,100) contains -1; epoch lower bound ignored")
	}
	if !w.Contains(0) || !w.Contains(100) {
		t.Error("Between(0,100) must contain its endpoints")
	}
	if w.IsAll() {
		t.Error("Between(0,100) reported as all-time")
	}

	u := Until(0)
	if u.Contains(1) {
		t.Error("Until(0) contains 1")
	}
	if !u.Contains(-5) || !u.Contains(0) {
		t.Error("Until(0) must contain pre-epoch timestamps and the epoch")
	}

	s := Since(0)
	if s.Contains(-1) {
		t.Error("Since(0) contains -1")
	}
	if s.IsAll() {
		t.Error("Since(0) reported as all-time")
	}

	// Documented legacy behaviour: a literal with zero bounds and no
	// flags is still the all-time window.
	var legacy TimeWindow
	if !legacy.IsAll() || !legacy.Contains(-1) || !legacy.Contains(1<<40) {
		t.Error("zero TimeWindow must remain all-time")
	}
	// And a non-zero literal without flags keeps its historical meaning.
	half := TimeWindow{From: 10}
	if half.Contains(9) || !half.Contains(10) {
		t.Error("TimeWindow{From: 10} must bound from 10")
	}
	if got := Between(0, 100).String(); got != "[0,100]" {
		t.Errorf("Between(0,100).String() = %q", got)
	}
	if got := Since(5).String(); got != "[5,*]" {
		t.Errorf("Since(5).String() = %q", got)
	}
}
