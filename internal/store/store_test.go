package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cube"
	"repro/internal/dataset"
	"repro/internal/model"
)

var (
	dsOnce sync.Once
	dsMemo *model.Dataset
)

func smallDataset(t testing.TB) *model.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		cfg := dataset.SmallGenConfig()
		var err error
		dsMemo, err = dataset.Generate(cfg)
		if err != nil {
			panic(err)
		}
	})
	return dsMemo
}

func openStore(t testing.TB, opts Options) *Store {
	t.Helper()
	s, err := Open(smallDataset(t), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestOpenBasics(t *testing.T) {
	s := openStore(t, DefaultOptions())
	ds := s.Dataset()
	if s.NumTuples() != len(ds.Ratings) {
		t.Errorf("NumTuples = %d, want %d", s.NumTuples(), len(ds.Ratings))
	}
	lo, hi := s.TimeRange()
	if lo <= 0 || hi < lo {
		t.Errorf("TimeRange = [%d,%d]", lo, hi)
	}
	if s.GlobalCube() == nil {
		t.Error("precompute enabled but GlobalCube is nil")
	}
	if s.Cache() == nil {
		t.Error("cache enabled but Cache is nil")
	}
}

func TestOpenWithoutPrecompute(t *testing.T) {
	s := openStore(t, Options{})
	if s.GlobalCube() != nil {
		t.Error("GlobalCube should be nil without precompute")
	}
	if s.Cache() != nil {
		t.Error("Cache should be nil when disabled")
	}
}

func TestOpenNil(t *testing.T) {
	if _, err := Open(nil, DefaultOptions()); err == nil {
		t.Error("Open(nil) should fail")
	}
}

func TestItemAttributeIndexes(t *testing.T) {
	s := openStore(t, Options{})
	ds := s.Dataset()

	ts := ds.ItemsByTitle("Toy Story")[0]
	ids := s.ItemsByTitle("toy story") // case-insensitive
	if len(ids) != 1 || ids[0] != ts.ID {
		t.Errorf("ItemsByTitle = %v, want [%d]", ids, ts.ID)
	}

	hanks := s.ItemsByActor("Tom Hanks")
	if len(hanks) < 5 {
		t.Errorf("Tom Hanks items = %d, want several planted titles", len(hanks))
	}
	found := false
	for _, id := range hanks {
		if id == ts.ID {
			found = true
		}
	}
	if !found {
		t.Error("Toy Story missing from Tom Hanks filmography")
	}

	spielberg := s.ItemsByDirector("steven spielberg")
	if len(spielberg) < 4 {
		t.Errorf("Spielberg items = %d", len(spielberg))
	}

	anim := s.ItemsByGenre("Animation")
	if len(anim) == 0 {
		t.Fatal("no animation items")
	}
	for _, id := range anim {
		it := ds.ItemByID(id)
		ok := false
		for _, g := range it.Genres {
			if g == "Animation" {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("item %d indexed under Animation without the genre", id)
		}
	}

	if got := s.ItemsByActor("Nobody Nobodyson"); got != nil {
		t.Errorf("unknown actor = %v", got)
	}
}

func TestItemsByTitleTerms(t *testing.T) {
	s := openStore(t, Options{})
	ids := s.ItemsByTitleTerms("lord rings")
	if len(ids) != 3 {
		t.Fatalf("'lord rings' matched %d items, want the 3 LOTR movies", len(ids))
	}
	for _, id := range ids {
		title := s.Dataset().ItemByID(id).Title
		if want := "The Lord of the Rings"; len(title) < len(want) || title[:len(want)] != want {
			t.Errorf("unexpected match %q", title)
		}
	}
	if ids := s.ItemsByTitleTerms("zzzunknownterm"); ids != nil {
		t.Errorf("unknown term matched %v", ids)
	}
	if ids := s.ItemsByTitleTerms("  "); ids != nil {
		t.Errorf("empty query matched %v", ids)
	}
	// Single very common term intersected with a rare one must stay exact.
	both := s.ItemsByTitleTerms("toy story")
	if len(both) != 2 { // Toy Story, Toy Story 2
		t.Errorf("'toy story' matched %d items, want 2", len(both))
	}
}

func TestTuplesForItems(t *testing.T) {
	s := openStore(t, Options{})
	ds := s.Dataset()
	ts := ds.ItemsByTitle("Toy Story")[0]

	tuples := s.TuplesForItems([]int{ts.ID}, TimeWindow{})
	if len(tuples) != s.RatingCount(ts.ID) {
		t.Fatalf("got %d tuples, RatingCount says %d", len(tuples), s.RatingCount(ts.ID))
	}
	// Cross-check against a raw scan of the rating log.
	want := 0
	for _, r := range ds.Ratings {
		if r.ItemID == ts.ID {
			want++
		}
	}
	if len(tuples) != want {
		t.Fatalf("got %d tuples, raw scan says %d", len(tuples), want)
	}
	for _, tp := range tuples {
		if tp.ItemID != int32(ts.ID) {
			t.Fatal("foreign tuple in result")
		}
	}
}

func TestTuplesForItemsWindow(t *testing.T) {
	s := openStore(t, Options{})
	ds := s.Dataset()
	ts := ds.ItemsByTitle("Toy Story")[0]
	lo, hi := s.TimeRange()
	mid := lo + (hi-lo)/2

	first := s.TuplesForItems([]int{ts.ID}, TimeWindow{To: mid})
	second := s.TuplesForItems([]int{ts.ID}, TimeWindow{From: mid + 1})
	all := s.TuplesForItems([]int{ts.ID}, TimeWindow{})
	if len(first)+len(second) != len(all) {
		t.Fatalf("window split %d + %d != %d", len(first), len(second), len(all))
	}
	for _, tp := range first {
		if tp.Unix > mid {
			t.Fatal("tuple after window end")
		}
	}
	for _, tp := range second {
		if tp.Unix <= mid {
			t.Fatal("tuple before window start")
		}
	}
	// Cross-check one bounded window against a raw scan.
	w := TimeWindow{From: lo + (hi-lo)/4, To: lo + (hi-lo)/2}
	got := s.TuplesForItems([]int{ts.ID}, w)
	want := 0
	for _, r := range ds.Ratings {
		if r.ItemID == ts.ID && w.Contains(r.Unix) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("windowed tuples = %d, raw scan = %d", len(got), want)
	}
}

func TestTuplesForItemsMultiItem(t *testing.T) {
	s := openStore(t, Options{})
	ids := s.ItemsByDirector("Steven Spielberg")
	tuples := s.TuplesForItems(ids, TimeWindow{})
	sum := 0
	for _, id := range ids {
		sum += s.RatingCount(id)
	}
	if len(tuples) != sum {
		t.Fatalf("multi-item tuples = %d, want %d", len(tuples), sum)
	}
}

func TestItemAgg(t *testing.T) {
	s := openStore(t, Options{})
	ds := s.Dataset()
	ts := ds.ItemsByTitle("Toy Story")[0]
	agg := s.ItemAgg(ts.ID, TimeWindow{})
	var want cube.Agg
	for _, r := range ds.Ratings {
		if r.ItemID == ts.ID {
			want.Add(int8(r.Score))
		}
	}
	if agg != want {
		t.Fatalf("ItemAgg = %+v, want %+v", agg, want)
	}
	if agg.Mean() < 3.5 {
		t.Errorf("Toy Story mean = %.2f, planted quality is 4.25", agg.Mean())
	}
}

func TestTimeWindowContains(t *testing.T) {
	w := TimeWindow{From: 100, To: 200}
	for ts, want := range map[int64]bool{99: false, 100: true, 150: true, 200: true, 201: false} {
		if w.Contains(ts) != want {
			t.Errorf("Contains(%d) = %v, want %v", ts, w.Contains(ts), want)
		}
	}
	all := TimeWindow{}
	if !all.IsAll() || !all.Contains(-5) || !all.Contains(1<<60) {
		t.Error("zero window must contain everything")
	}
	if all.String() != "[all]" {
		t.Errorf("all window String = %q", all.String())
	}
	if w.String() != "[100,200]" {
		t.Errorf("window String = %q", w.String())
	}
}

func TestGlobalCubePrecompute(t *testing.T) {
	s := openStore(t, DefaultOptions())
	gc := s.GlobalCube()
	if gc.Len() == 0 {
		t.Fatal("global cube empty")
	}
	// Every state-only group's aggregate must match a raw scan.
	ds := s.Dataset()
	caKey := cube.KeyAll.With(cube.State, cube.StateIndex("CA"))
	g, ok := gc.Group(caKey)
	if !ok {
		t.Fatal("CA group missing from global cube")
	}
	var want cube.Agg
	for _, r := range ds.Ratings {
		if ds.UserByID(r.UserID).State == "CA" {
			want.Add(int8(r.Score))
		}
	}
	if g.Agg != want {
		t.Fatalf("CA global agg = %+v, raw scan = %+v", g.Agg, want)
	}
}

func TestLRUBasics(t *testing.T) {
	c := NewLRU(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatal("miss on a")
	}
	c.Put("c", 3) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 3/2", hits, misses)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU(2)
	c.Put("a", 1)
	c.Put("a", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double put", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatal("update lost")
	}
}

func TestLRUReset(t *testing.T) {
	c := NewLRU(4)
	c.Put("a", 1)
	c.Get("a")
	c.Get("b")
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset left entries")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("Reset left counters")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%100)
				if v, ok := c.Get(key); ok {
					_ = v
				}
				c.Put(key, i)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache exceeded bound: %d", c.Len())
	}
}

func TestLRUZeroMax(t *testing.T) {
	c := NewLRU(0)
	c.Put("a", 1)
	if c.Len() != 1 {
		t.Fatal("NewLRU(0) should clamp to capacity 1")
	}
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Fatal("capacity-1 cache grew")
	}
}
