package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cube"
)

// fakePlan builds a plan of n zero-valued tuples — enough for budget and
// stats accounting, which only reads lengths.
func fakePlan(n int) *Plan {
	return &Plan{Tuples: make([]cube.Tuple, n)}
}

func TestPlanCacheHitMiss(t *testing.T) {
	pc := NewPlanCache(1000)
	ctx := context.Background()
	builds := 0
	build := func() (*Plan, error) { builds++; return fakePlan(10), nil }

	p1, hit, err := pc.GetOrBuild(ctx, "k", build)
	if err != nil || hit {
		t.Fatalf("first fetch: hit=%v err=%v", hit, err)
	}
	p2, hit, err := pc.GetOrBuild(ctx, "k", build)
	if err != nil || !hit {
		t.Fatalf("second fetch: hit=%v err=%v", hit, err)
	}
	if p1 != p2 {
		t.Error("hit returned a different plan instance")
	}
	if builds != 1 {
		t.Errorf("builds = %d, want 1", builds)
	}
	st := pc.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Builds != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Tuples != 10 || st.MaxTuples != 1000 {
		t.Errorf("budget accounting = %+v", st)
	}
	if st.Bytes <= 0 {
		t.Errorf("bytes accounting = %d, want > 0", st.Bytes)
	}
}

// TestPlanCacheEvictionUnderTupleBudget verifies the tier is sized by
// tuple count, not entry count: inserting past the budget evicts the
// least recently used plan and keeps usage within bounds.
func TestPlanCacheEvictionUnderTupleBudget(t *testing.T) {
	pc := NewPlanCache(100)
	ctx := context.Background()
	mk := func(n int) func() (*Plan, error) {
		return func() (*Plan, error) { return fakePlan(n), nil }
	}
	for i := 0; i < 3; i++ {
		if _, _, err := pc.GetOrBuild(ctx, fmt.Sprintf("k%d", i), mk(40)); err != nil {
			t.Fatal(err)
		}
	}
	st := pc.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Tuples != 80 {
		t.Fatalf("after 3x40 under budget 100: %+v", st)
	}
	// k0 was evicted: fetching it again must rebuild.
	rebuilt := false
	if _, hit, err := pc.GetOrBuild(ctx, "k0", func() (*Plan, error) {
		rebuilt = true
		return fakePlan(40), nil
	}); err != nil || hit {
		t.Fatalf("evicted key: hit=%v err=%v", hit, err)
	}
	if !rebuilt {
		t.Error("evicted plan was not rebuilt")
	}
	// k1 is now the LRU entry and must have been evicted by k0's return.
	if _, hit, _ := pc.GetOrBuild(ctx, "k2", mk(40)); !hit {
		t.Error("recently used k2 should have survived")
	}
}

// TestPlanCacheOversizePlanNotCached: a plan alone exceeding the budget
// is served but never stored (storing it would wipe the whole tier).
func TestPlanCacheOversizePlanNotCached(t *testing.T) {
	pc := NewPlanCache(50)
	ctx := context.Background()
	builds := 0
	build := func() (*Plan, error) { builds++; return fakePlan(80), nil }
	for i := 0; i < 2; i++ {
		if _, _, err := pc.GetOrBuild(ctx, "big", build); err != nil {
			t.Fatal(err)
		}
	}
	if builds != 2 {
		t.Errorf("oversize plan builds = %d, want 2 (never cached)", builds)
	}
	if st := pc.Stats(); st.Entries != 0 || st.Tuples != 0 {
		t.Errorf("oversize plan leaked into the cache: %+v", st)
	}
}

func TestPlanCacheBuildErrorNotCached(t *testing.T) {
	pc := NewPlanCache(100)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := pc.GetOrBuild(ctx, "k", func() (*Plan, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure is not cached; the next fetch builds and succeeds.
	p, hit, err := pc.GetOrBuild(ctx, "k", func() (*Plan, error) { return fakePlan(5), nil })
	if err != nil || hit || p == nil {
		t.Fatalf("after error: plan=%v hit=%v err=%v", p, hit, err)
	}
}

// TestPlanCacheConcurrentBuildOnce is the -race check for the
// singleflight front: a burst of identical fetches builds the plan once
// and hands every caller the same instance.
func TestPlanCacheConcurrentBuildOnce(t *testing.T) {
	pc := NewPlanCache(1000)
	var builds atomic.Int32
	build := func() (*Plan, error) {
		builds.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the race window
		return fakePlan(10), nil
	}

	const callers = 16
	var wg sync.WaitGroup
	plans := make([]*Plan, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			plans[i], _, errs[i] = pc.GetOrBuild(context.Background(), "k", build)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if plans[i] != plans[0] {
			t.Fatalf("caller %d got a different plan instance", i)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("burst of %d built %d times, want 1", callers, n)
	}
	// One logical fetch counts exactly once: hits+misses == fetches, one
	// miss for the leader's build, the rest hits (shared or cached).
	st := pc.Stats()
	if st.Hits+st.Misses != callers {
		t.Errorf("hits %d + misses %d != %d fetches", st.Hits, st.Misses, callers)
	}
	if st.Misses != 1 || st.Builds != 1 {
		t.Errorf("burst accounting: %+v", st)
	}
}

// TestPlanCacheFollowerCancellation: a follower whose context dies while
// the leader builds stops waiting with the context error.
func TestPlanCacheFollowerCancellation(t *testing.T) {
	pc := NewPlanCache(1000)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go pc.GetOrBuild(context.Background(), "k", func() (*Plan, error) {
		close(leaderIn)
		<-release
		return fakePlan(1), nil
	})
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := pc.GetOrBuild(ctx, "k", func() (*Plan, error) { return fakePlan(1), nil })
	close(release)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
}

func TestPlanCacheReset(t *testing.T) {
	pc := NewPlanCache(100)
	ctx := context.Background()
	pc.GetOrBuild(ctx, "k", func() (*Plan, error) { return fakePlan(10), nil })
	pc.Reset()
	if st := pc.Stats(); st.Entries != 0 || st.Tuples != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("after reset: %+v", st)
	}
}

func TestPlanSizeBytes(t *testing.T) {
	p := fakePlan(100)
	if got := p.SizeBytes(); got < 100*cube.TupleBytes {
		t.Errorf("SizeBytes = %d, want ≥ %d", got, 100*cube.TupleBytes)
	}
	withCube := &Plan{Tuples: p.Tuples, Cube: cube.Build(p.Tuples, cube.Config{MinSupport: 1})}
	if withCube.SizeBytes() < p.SizeBytes() {
		t.Error("cube-bearing plan should cost at least the bare tuples")
	}
}
