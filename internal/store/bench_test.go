package store

import (
	"fmt"
	"runtime"
	"strconv"
	"testing"
)

func benchStore(b *testing.B, opts Options) *Store {
	b.Helper()
	s, err := Open(smallDataset(b), opts)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkOpenNoPrecompute(b *testing.B) {
	ds := smallDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(ds, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenWithPrecompute(b *testing.B) {
	ds := smallDataset(b)
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(ds, opts)
		if err != nil {
			b.Fatal(err)
		}
		s.GlobalCube() // the cube is lazy; include its build in the measure
	}
}

// BenchmarkOpenPrecomputeGOMAXPROCS shows the open-time sharding: the join,
// per-item index and global-cube precompute all scale with GOMAXPROCS
// (identical output at every setting — see TestOpenParallelMatchesSequential).
func BenchmarkOpenPrecomputeGOMAXPROCS(b *testing.B) {
	ds := smallDataset(b)
	opts := DefaultOptions()
	for _, procs := range []int{1, 2, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := Open(ds, opts)
				if err != nil {
					b.Fatal(err)
				}
				s.GlobalCube()
			}
		})
	}
}

func BenchmarkTuplesForItems(b *testing.B) {
	s := benchStore(b, Options{})
	ids := s.ItemsByActor("Tom Hanks")
	if len(ids) == 0 {
		b.Fatal("no items")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tuples := s.TuplesForItems(ids, TimeWindow{}); len(tuples) == 0 {
			b.Fatal("no tuples")
		}
	}
}

func BenchmarkTuplesForItemsWindowed(b *testing.B) {
	s := benchStore(b, Options{})
	ids := s.ItemsByActor("Tom Hanks")
	lo, hi := s.TimeRange()
	w := TimeWindow{From: lo + (hi-lo)/4, To: lo + (hi-lo)/2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TuplesForItems(ids, w)
	}
}

func BenchmarkItemsByTitleTerms(b *testing.B) {
	s := benchStore(b, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ids := s.ItemsByTitleTerms("lord rings"); len(ids) != 3 {
			b.Fatalf("matched %d", len(ids))
		}
	}
}

func BenchmarkLRUGetPut(b *testing.B) {
	c := NewLRU(256)
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = "key-" + strconv.Itoa(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if _, ok := c.Get(k); !ok {
			c.Put(k, i)
		}
	}
}
