// Package store is MapRat's in-memory rating store: the "aggressive data
// pre-processing, result pre-computation and caching" layer of §2.3. It
// joins every rating with its reviewer's demographics once at open time,
// maintains inverted indexes from item attributes (title, genre, actor,
// director) to items and from items to rating tuples sorted by time, keeps
// a precomputed global cube for browse-mode statistics, and offers an LRU
// result cache for repeated queries.
package store

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cube"
	"repro/internal/model"
)

// TimeWindow restricts ratings to [From, To] (Unix seconds, inclusive).
// Zero bounds are unbounded, so the zero TimeWindow means "all time".
type TimeWindow struct {
	From, To int64
}

// Contains reports whether ts falls inside the window.
func (w TimeWindow) Contains(ts int64) bool {
	if w.From != 0 && ts < w.From {
		return false
	}
	if w.To != 0 && ts > w.To {
		return false
	}
	return true
}

// IsAll reports whether the window is unbounded on both sides.
func (w TimeWindow) IsAll() bool { return w.From == 0 && w.To == 0 }

// String renders the window for cache keys and logs.
func (w TimeWindow) String() string {
	if w.IsAll() {
		return "[all]"
	}
	return fmt.Sprintf("[%d,%d]", w.From, w.To)
}

// Options configures Open.
type Options struct {
	// Precompute builds the global demographic cube over the whole rating
	// log at open time (used by browse statistics and the E5 ablation).
	Precompute bool
	// CubeConfig is the candidate-group configuration used for the global
	// cube; per-query cubes are configured by the mining layer.
	CubeConfig cube.Config
	// CacheSize bounds the LRU result cache; 0 disables caching.
	CacheSize int
}

// DefaultOptions enables precomputation and a small result cache.
func DefaultOptions() Options {
	return Options{Precompute: true, CubeConfig: cube.DefaultConfig(), CacheSize: 256}
}

// Store is the opened, indexed dataset.
type Store struct {
	ds     *model.Dataset
	tuples []cube.Tuple // all ratings joined with reviewer demographics

	itemTuples map[int][]int32 // item ID -> tuple indices, sorted by time

	byGenre    map[string][]int // lower-cased genre -> item IDs
	byActor    map[string][]int
	byDirector map[string][]int
	byTitle    map[string][]int // lower-cased full title -> item IDs
	titleTerm  map[string][]int // lower-cased title word -> item IDs

	minUnix, maxUnix int64

	globalCube *cube.Cube // nil unless Options.Precompute
	cache      *LRU       // nil unless Options.CacheSize > 0
}

// Open indexes a dataset. The dataset must already be valid (see
// model.Dataset.Validate); Open trusts it and never mutates it.
func Open(ds *model.Dataset, opts Options) (*Store, error) {
	if ds == nil {
		return nil, fmt.Errorf("store: nil dataset")
	}
	s := &Store{
		ds:         ds,
		itemTuples: make(map[int][]int32),
		byGenre:    make(map[string][]int),
		byActor:    make(map[string][]int),
		byDirector: make(map[string][]int),
		byTitle:    make(map[string][]int),
		titleTerm:  make(map[string][]int),
	}

	s.tuples = make([]cube.Tuple, len(ds.Ratings))
	for i, r := range ds.Ratings {
		u := ds.UserByID(r.UserID)
		if u == nil {
			return nil, fmt.Errorf("store: rating %d references unknown user %d", i, r.UserID)
		}
		s.tuples[i] = cube.JoinRating(r, u)
		if s.minUnix == 0 || r.Unix < s.minUnix {
			s.minUnix = r.Unix
		}
		if r.Unix > s.maxUnix {
			s.maxUnix = r.Unix
		}
		s.itemTuples[r.ItemID] = append(s.itemTuples[r.ItemID], int32(i))
	}
	for id := range s.itemTuples {
		idxs := s.itemTuples[id]
		sort.Slice(idxs, func(a, b int) bool {
			ta, tb := s.tuples[idxs[a]].Unix, s.tuples[idxs[b]].Unix
			if ta != tb {
				return ta < tb
			}
			return idxs[a] < idxs[b]
		})
	}

	for i := range ds.Items {
		it := &ds.Items[i]
		s.byTitle[norm(it.Title)] = append(s.byTitle[norm(it.Title)], it.ID)
		for _, term := range tokenize(it.Title) {
			s.titleTerm[term] = appendUnique(s.titleTerm[term], it.ID)
		}
		for _, g := range it.Genres {
			s.byGenre[norm(g)] = append(s.byGenre[norm(g)], it.ID)
		}
		for _, a := range it.Actors {
			s.byActor[norm(a)] = append(s.byActor[norm(a)], it.ID)
		}
		for _, d := range it.Directors {
			s.byDirector[norm(d)] = append(s.byDirector[norm(d)], it.ID)
		}
	}

	if opts.Precompute {
		s.globalCube = cube.Build(s.tuples, opts.CubeConfig)
	}
	if opts.CacheSize > 0 {
		s.cache = NewLRU(opts.CacheSize)
	}
	return s, nil
}

func norm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// tokenize lower-cases a title and splits it into alphanumeric words, so
// punctuation ("Rings:" vs "rings") never blocks a term match.
func tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
}

func appendUnique(xs []int, v int) []int {
	if n := len(xs); n > 0 && xs[n-1] == v {
		return xs
	}
	return append(xs, v)
}

// Dataset returns the underlying dataset.
func (s *Store) Dataset() *model.Dataset { return s.ds }

// NumTuples returns the size of the joined rating log.
func (s *Store) NumTuples() int { return len(s.tuples) }

// TimeRange returns the [min,max] rating timestamps in the log.
func (s *Store) TimeRange() (int64, int64) { return s.minUnix, s.maxUnix }

// GlobalCube returns the precomputed whole-log cube, or nil when Open ran
// without precomputation.
func (s *Store) GlobalCube() *cube.Cube { return s.globalCube }

// Cache returns the store's result cache (nil when disabled).
func (s *Store) Cache() *LRU { return s.cache }

// ItemsByGenre returns the IDs of items tagged with the genre
// (case-insensitive), in catalog order.
func (s *Store) ItemsByGenre(genre string) []int { return cloneIDs(s.byGenre[norm(genre)]) }

// ItemsByActor returns the IDs of items featuring the actor.
func (s *Store) ItemsByActor(actor string) []int { return cloneIDs(s.byActor[norm(actor)]) }

// ItemsByDirector returns the IDs of items by the director.
func (s *Store) ItemsByDirector(director string) []int {
	return cloneIDs(s.byDirector[norm(director)])
}

// ItemsByTitle returns the IDs of items whose full title matches
// (case-insensitive).
func (s *Store) ItemsByTitle(title string) []int { return cloneIDs(s.byTitle[norm(title)]) }

// ItemsByTitleTerms returns the IDs of items whose title contains every
// word of the query (the Figure-1 search box behaviour).
func (s *Store) ItemsByTitleTerms(query string) []int {
	terms := tokenize(query)
	if len(terms) == 0 {
		return nil
	}
	// Intersect posting lists, rarest first.
	lists := make([][]int, len(terms))
	for i, t := range terms {
		lists[i] = s.titleTerm[t]
		if len(lists[i]) == 0 {
			return nil
		}
	}
	sort.Slice(lists, func(a, b int) bool { return len(lists[a]) < len(lists[b]) })
	out := cloneIDs(lists[0])
	for _, l := range lists[1:] {
		out = intersectSorted(out, l)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

func cloneIDs(ids []int) []int {
	if len(ids) == 0 {
		return nil
	}
	out := make([]int, len(ids))
	copy(out, ids)
	return out
}

func intersectSorted(a, b []int) []int {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// RatingCount returns the number of ratings an item received.
func (s *Store) RatingCount(itemID int) int { return len(s.itemTuples[itemID]) }

// TuplesForItems gathers R_I: every rating tuple of the given items inside
// the window. The result is a fresh slice; mutation is safe.
func (s *Store) TuplesForItems(itemIDs []int, w TimeWindow) []cube.Tuple {
	var out []cube.Tuple
	for _, id := range itemIDs {
		idxs := s.itemTuples[id]
		lo, hi := windowBounds(s.tuples, idxs, w)
		for _, ti := range idxs[lo:hi] {
			out = append(out, s.tuples[ti])
		}
	}
	return out
}

// windowBounds binary-searches the time-sorted tuple index list for the
// window's sub-range.
func windowBounds(tuples []cube.Tuple, idxs []int32, w TimeWindow) (int, int) {
	lo := 0
	if w.From != 0 {
		lo = sort.Search(len(idxs), func(i int) bool { return tuples[idxs[i]].Unix >= w.From })
	}
	hi := len(idxs)
	if w.To != 0 {
		hi = sort.Search(len(idxs), func(i int) bool { return tuples[idxs[i]].Unix > w.To })
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// ItemAgg returns the aggregate rating statistics for one item inside the
// window (the single overall value the paper argues is insufficient).
func (s *Store) ItemAgg(itemID int, w TimeWindow) cube.Agg {
	var agg cube.Agg
	idxs := s.itemTuples[itemID]
	lo, hi := windowBounds(s.tuples, idxs, w)
	for _, ti := range idxs[lo:hi] {
		agg.Add(s.tuples[ti].Score)
	}
	return agg
}
