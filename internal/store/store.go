// Package store is MapRat's in-memory rating store: the "aggressive data
// pre-processing, result pre-computation and caching" layer of §2.3. It
// joins every rating with its reviewer's demographics once at open time,
// maintains inverted indexes from item attributes (title, genre, actor,
// director) to items and from items to rating tuples sorted by time, keeps
// a global cube for browse-mode statistics (built lazily on first use),
// and offers an LRU result cache for repeated queries.
package store

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/cube"
	"repro/internal/model"
)

// TimeWindow restricts ratings to [From, To] (Unix seconds, inclusive).
// The zero TimeWindow means "all time". A non-zero bound is always active;
// a bound that is exactly 0 (the Unix epoch) is treated as unbounded
// unless the matching HasFrom/HasTo flag marks it explicit — historically
// an epoch bound was silently ignored. Prefer the Between/Since/Until
// constructors, which set the flags and so behave correctly for every
// timestamp, the epoch included.
type TimeWindow struct {
	From, To int64
	// HasFrom / HasTo mark the corresponding bound as explicitly set, so
	// a bound at Unix time 0 is honoured rather than read as "unbounded".
	HasFrom, HasTo bool
}

// Between returns the window [from, to], honouring bounds of 0.
func Between(from, to int64) TimeWindow {
	return TimeWindow{From: from, To: to, HasFrom: true, HasTo: true}
}

// Since returns the window [from, ∞).
func Since(from int64) TimeWindow { return TimeWindow{From: from, HasFrom: true} }

// Until returns the window (-∞, to].
func Until(to int64) TimeWindow { return TimeWindow{To: to, HasTo: true} }

// BoundedFrom reports whether the lower bound is active.
func (w TimeWindow) BoundedFrom() bool { return w.HasFrom || w.From != 0 }

// BoundedTo reports whether the upper bound is active.
func (w TimeWindow) BoundedTo() bool { return w.HasTo || w.To != 0 }

// Contains reports whether ts falls inside the window.
func (w TimeWindow) Contains(ts int64) bool {
	if w.BoundedFrom() && ts < w.From {
		return false
	}
	if w.BoundedTo() && ts > w.To {
		return false
	}
	return true
}

// IsAll reports whether the window is unbounded on both sides.
func (w TimeWindow) IsAll() bool { return !w.BoundedFrom() && !w.BoundedTo() }

// String renders the window for cache keys and logs; an inactive side
// renders as *.
func (w TimeWindow) String() string {
	if w.IsAll() {
		return "[all]"
	}
	from, to := "*", "*"
	if w.BoundedFrom() {
		from = fmt.Sprintf("%d", w.From)
	}
	if w.BoundedTo() {
		to = fmt.Sprintf("%d", w.To)
	}
	return fmt.Sprintf("[%s,%s]", from, to)
}

// Options configures Open.
type Options struct {
	// Precompute enables the global demographic cube over the whole rating
	// log (used by browse statistics and the E5 ablation). The cube is
	// built lazily on the first GlobalCube call rather than at open time,
	// so opening a store — in particular from a memory-mapped snapshot —
	// never pays for an aggregate the workload might not touch.
	Precompute bool
	// CubeConfig is the candidate-group configuration used for the global
	// cube; per-query cubes are configured by the mining layer.
	CubeConfig cube.Config
	// CacheSize bounds the LRU result cache; 0 disables caching.
	CacheSize int
	// PlanCacheTuples bounds the materialized query-plan cache — the tier
	// that shares resolved item IDs, the gathered R_I tuples and the built
	// candidate cube across Explain/Explore/Refine/DrillMine — by the
	// total tuple count held across cached plans. 0 disables the tier.
	PlanCacheTuples int
}

// DefaultOptions enables precomputation, a small result cache, and a
// plan-materialization budget of 2M tuples (roughly two whole-log plans
// at MovieLens-1M scale).
func DefaultOptions() Options {
	return Options{
		Precompute:      true,
		CubeConfig:      cube.DefaultConfig(),
		CacheSize:       256,
		PlanCacheTuples: 2 << 20,
	}
}

// Store is the opened, indexed dataset plus the live-ingestion state that
// grows it: the base log is epoch 1, and every accepted append batch
// advances the epoch by one. All log-reading accessors take the store's
// RW lock so reads stay consistent against a concurrent Append; the *At
// accessors additionally pin a historical epoch by filtering to the
// epoch's tuple watermark.
type Store struct {
	ds     *model.Dataset
	tuples []cube.Tuple // all ratings joined with reviewer demographics

	itemTuples map[int][]int32 // item ID -> tuple indices, sorted by time

	byGenre    map[string][]int // lower-cased genre -> item IDs
	byActor    map[string][]int
	byDirector map[string][]int
	byTitle    map[string][]int // lower-cased full title -> item IDs
	titleTerm  map[string][]int // lower-cased title word -> item IDs

	minUnix, maxUnix int64

	// mu guards the mutable log state (tuples, itemTuples, min/max, epoch,
	// bounds, the global cube). Readers take RLock; Append takes Lock.
	// Everything above that Append never touches (the item-attribute
	// indexes, ds) stays lock-free: the catalog is immutable under append.
	mu sync.RWMutex

	// epoch is the current data version: 1 for the base log, +1 per
	// accepted batch. bounds[e-1] freezes the log's extent at the end of
	// epoch e, so any past epoch can be served exactly.
	epoch  uint64
	bounds []epochMark

	// The global cube is enabled by Options.Precompute but built lazily:
	// the first GlobalCube call pays for it, concurrent callers share the
	// one build. Appends delta-patch it copy-on-write (see cube.Patch);
	// cubeEpoch records the epoch the current build reflects.
	cubeEnabled bool
	cubeCfg     cube.Config
	globalCube  *cube.Cube
	cubeEpoch   uint64

	cache *LRU       // nil unless Options.CacheSize > 0
	plans *PlanCache // nil unless Options.PlanCacheTuples > 0
}

// epochMark freezes the log's extent at the end of one epoch: the tuple
// watermark (results at that epoch only see tuples[:tuples]), the time
// range, and the batch's per-state aggregate delta feeding the browse
// view. Marks are immutable once appended.
type epochMark struct {
	tuples           int
	minUnix, maxUnix int64
	// states is this epoch's per-state aggregate delta, indexed by state
	// descriptor value (len = cube.Cardinality(cube.State)). The base
	// epoch's entry is the whole-log aggregate, built lazily on first
	// browse (see stateAggsLocked).
	states []cube.Agg
}

// openParallelMin is the rating count below which Open joins sequentially;
// goroutine fan-out over a small log costs more than the join.
const openParallelMin = 1 << 15

// Open indexes a dataset. The dataset must already be valid (see
// model.Dataset.Validate); Open trusts it and never mutates it.
//
// The expensive phases — the demographics join and the per-item time
// index — are sharded over rating partitions across GOMAXPROCS
// goroutines. The result is identical to a sequential open: shards are
// contiguous index ranges merged in order, and every sort below carries a
// total-order tie-break. The global cube (Options.Precompute) is deferred
// to the first GlobalCube call.
func Open(ds *model.Dataset, opts Options) (*Store, error) {
	if ds == nil {
		return nil, fmt.Errorf("store: nil dataset")
	}
	s := &Store{
		ds:         ds,
		itemTuples: make(map[int][]int32),
		byGenre:    make(map[string][]int),
		byActor:    make(map[string][]int),
		byDirector: make(map[string][]int),
		byTitle:    make(map[string][]int),
		titleTerm:  make(map[string][]int),
	}

	// The item-attribute indexes only read ds.Items; build them while the
	// rating join runs.
	var itemWG sync.WaitGroup
	itemWG.Add(1)
	go func() { //maprat:allow(ctxflow) startup join helper: bounded CPU work joined by itemWG.Wait before Open returns
		defer itemWG.Done()
		s.buildItemIndexes()
	}()

	if err := s.joinRatings(); err != nil {
		itemWG.Wait()
		return nil, err
	}
	itemWG.Wait()

	s.finishOpen(opts)
	return s, nil
}

// finishOpen runs the open-time stages that follow the join: arming the
// lazy global cube, building the caching tiers, and sealing the base log
// as epoch 1.
func (s *Store) finishOpen(opts Options) {
	s.cubeEnabled = opts.Precompute
	s.cubeCfg = opts.CubeConfig
	if opts.CacheSize > 0 {
		s.cache = NewLRU(opts.CacheSize)
	}
	if opts.PlanCacheTuples > 0 {
		s.plans = NewPlanCache(opts.PlanCacheTuples)
	}
	s.epoch = 1
	// The base mark's states delta (the whole-log per-state aggregate) is
	// built lazily by stateAggsLocked so open never pays for it.
	s.bounds = []epochMark{{tuples: len(s.tuples), minUnix: s.minUnix, maxUnix: s.maxUnix}}
}

// Prejoined carries the open-time artifacts a snapshot already holds:
// the demographics-joined tuple log in rating-log order, the per-item
// time-sorted index into it, and the rating time range. OpenPrejoined
// trusts these to match what joinRatings would derive — the snapshot
// writer produces them with the same ordering and tie-breaks.
type Prejoined struct {
	Tuples     []cube.Tuple
	ItemTuples map[int][]int32
	MinUnix    int64
	MaxUnix    int64
}

// OpenPrejoined is Open minus the join: the expensive tuple
// materialization and per-item sort are taken from pj (typically slices
// aliasing a memory-mapped snapshot), so only the item-attribute
// indexes and the optional precompute/caching tiers are built here. The
// store never mutates the tuple log or the index after open, so
// read-only mapped pages are safe underneath it.
func OpenPrejoined(ds *model.Dataset, opts Options, pj Prejoined) (*Store, error) {
	if ds == nil {
		return nil, fmt.Errorf("store: nil dataset")
	}
	if len(pj.Tuples) != len(ds.Ratings) {
		return nil, fmt.Errorf("store: prejoined log has %d tuples for %d ratings", len(pj.Tuples), len(ds.Ratings))
	}
	s := &Store{
		ds:         ds,
		tuples:     pj.Tuples,
		itemTuples: pj.ItemTuples,
		minUnix:    pj.MinUnix,
		maxUnix:    pj.MaxUnix,
		byGenre:    make(map[string][]int),
		byActor:    make(map[string][]int),
		byDirector: make(map[string][]int),
		byTitle:    make(map[string][]int),
		titleTerm:  make(map[string][]int),
	}
	if s.itemTuples == nil {
		s.itemTuples = make(map[int][]int32)
	}
	s.buildItemIndexes()
	s.finishOpen(opts)
	return s, nil
}

// joinRatings materializes the demographics-joined tuple log and the
// per-item time-sorted index, sharding the work over rating partitions.
func (s *Store) joinRatings() error {
	ds := s.ds
	s.tuples = make([]cube.Tuple, len(ds.Ratings))

	workers := runtime.GOMAXPROCS(0)
	if len(ds.Ratings) < openParallelMin {
		workers = 1
	}

	type shard struct {
		itemTuples       map[int][]int32
		minUnix, maxUnix int64
		seen             bool // shard processed at least one rating
		err              error
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(ds.Ratings) / workers
		hi := (w + 1) * len(ds.Ratings) / workers
		wg.Add(1)
		go func(sh *shard, lo, hi int) { //maprat:allow(ctxflow) startup join shard: bounded CPU work joined by wg.Wait before Open returns
			defer wg.Done()
			sh.itemTuples = make(map[int][]int32)
			for i := lo; i < hi; i++ {
				r := ds.Ratings[i]
				u := ds.UserByID(r.UserID)
				if u == nil {
					// First error of the shard == lowest rating index,
					// matching the sequential scan's report.
					sh.err = fmt.Errorf("store: rating %d references unknown user %d", i, r.UserID)
					return
				}
				s.tuples[i] = cube.JoinRating(r, u)
				if !sh.seen || r.Unix < sh.minUnix {
					sh.minUnix = r.Unix
				}
				if !sh.seen || r.Unix > sh.maxUnix {
					sh.maxUnix = r.Unix
				}
				sh.seen = true
				sh.itemTuples[r.ItemID] = append(sh.itemTuples[r.ItemID], int32(i))
			}
		}(&shards[w], lo, hi)
	}
	wg.Wait()

	// Merge in shard order: index lists stay ascending, and the first
	// failing shard carries the lowest-index error. The explicit seen
	// flag (not a 0 sentinel) keeps ratings at the Unix epoch in the
	// range, identical to the sequential scan.
	merged := false
	for w := range shards {
		sh := &shards[w]
		if sh.err != nil {
			return sh.err
		}
		if !sh.seen {
			continue
		}
		if !merged || sh.minUnix < s.minUnix {
			s.minUnix = sh.minUnix
		}
		if !merged || sh.maxUnix > s.maxUnix {
			s.maxUnix = sh.maxUnix
		}
		merged = true
		for id, idxs := range sh.itemTuples {
			s.itemTuples[id] = append(s.itemTuples[id], idxs...)
		}
	}

	// Time-sort each item's index list; items are independent, so spread
	// them over the same worker count.
	ids := make([]int, 0, len(s.itemTuples))
	for id := range s.itemTuples {
		ids = append(ids, id)
	}
	sortShard := func(ids []int) {
		for _, id := range ids {
			idxs := s.itemTuples[id]
			sort.Slice(idxs, func(a, b int) bool {
				ta, tb := s.tuples[idxs[a]].Unix, s.tuples[idxs[b]].Unix
				if ta != tb {
					return ta < tb
				}
				return idxs[a] < idxs[b]
			})
		}
	}
	if workers == 1 {
		sortShard(ids)
	} else {
		var sw sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * len(ids) / workers
			hi := (w + 1) * len(ids) / workers
			sw.Add(1)
			go func(part []int) { //maprat:allow(ctxflow) startup sort shard: bounded CPU work joined by sw.Wait before Open returns
				defer sw.Done()
				sortShard(part)
			}(ids[lo:hi])
		}
		sw.Wait()
	}
	return nil
}

// buildItemIndexes fills the item-attribute inverted indexes.
func (s *Store) buildItemIndexes() {
	for i := range s.ds.Items {
		it := &s.ds.Items[i]
		s.byTitle[norm(it.Title)] = append(s.byTitle[norm(it.Title)], it.ID)
		for _, term := range tokenize(it.Title) {
			s.titleTerm[term] = appendUnique(s.titleTerm[term], it.ID)
		}
		for _, g := range it.Genres {
			s.byGenre[norm(g)] = append(s.byGenre[norm(g)], it.ID)
		}
		for _, a := range it.Actors {
			s.byActor[norm(a)] = append(s.byActor[norm(a)], it.ID)
		}
		for _, d := range it.Directors {
			s.byDirector[norm(d)] = append(s.byDirector[norm(d)], it.ID)
		}
	}
}

func norm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// tokenize lower-cases a title and splits it into alphanumeric words, so
// punctuation ("Rings:" vs "rings") never blocks a term match.
func tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
}

func appendUnique(xs []int, v int) []int {
	if n := len(xs); n > 0 && xs[n-1] == v {
		return xs
	}
	return append(xs, v)
}

// Dataset returns the underlying dataset.
func (s *Store) Dataset() *model.Dataset { return s.ds }

// NumTuples returns the size of the joined rating log at the latest epoch.
func (s *Store) NumTuples() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tuples)
}

// NumTuplesAt returns the size of the joined rating log as of the given
// epoch (0 or an epoch at/beyond the current one means latest).
func (s *Store) NumTuplesAt(epoch uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.watermarkLocked(epoch)
}

// TimeRange returns the [min,max] rating timestamps in the log.
func (s *Store) TimeRange() (int64, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.minUnix, s.maxUnix
}

// TimeRangeAt returns the [min,max] rating timestamps as of the given
// epoch; 0 means latest.
func (s *Store) TimeRangeAt(epoch uint64) (int64, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.markLocked(epoch)
	return m.minUnix, m.maxUnix
}

// CurrentEpoch returns the store's data version: 1 for the base log, +1
// per accepted append batch.
func (s *Store) CurrentEpoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// markLocked resolves an epoch to its frozen extent. Callers hold mu.
// Epoch 0 and any epoch at or beyond the current one resolve to the
// latest mark; epoch validation (rejecting future epochs) is the mining
// layer's job.
func (s *Store) markLocked(epoch uint64) *epochMark {
	if epoch == 0 || epoch >= s.epoch {
		return &s.bounds[len(s.bounds)-1]
	}
	return &s.bounds[epoch-1]
}

// watermarkLocked returns the tuple count visible at an epoch.
func (s *Store) watermarkLocked(epoch uint64) int {
	if epoch == 0 || epoch >= s.epoch {
		return len(s.tuples)
	}
	return s.bounds[epoch-1].tuples
}

// GlobalCube returns the whole-log cube at the latest epoch, or nil when
// Open ran without precomputation. The cube is built on the first call
// (open itself never pays for it); concurrent callers block on the
// single build and then share the result. Appends patch it
// copy-on-write, so a returned cube is an immutable snapshot of the
// epoch it was obtained at — safe to read concurrently, stale after the
// next append.
func (s *Store) GlobalCube() *cube.Cube {
	if !s.cubeEnabled {
		return nil
	}
	s.mu.RLock()
	gc := s.globalCube
	s.mu.RUnlock()
	if gc != nil {
		return gc
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.globalCube == nil {
		s.globalCube = cube.Build(s.tuples, s.cubeCfg)
		s.cubeEpoch = s.epoch
	}
	return s.globalCube
}

// Cache returns the store's result cache (nil when disabled).
func (s *Store) Cache() *LRU { return s.cache }

// Plans returns the store's materialized query-plan cache (nil when
// disabled).
func (s *Store) Plans() *PlanCache { return s.plans }

// ItemsByGenre returns the IDs of items tagged with the genre
// (case-insensitive), in catalog order.
func (s *Store) ItemsByGenre(genre string) []int { return cloneIDs(s.byGenre[norm(genre)]) }

// ItemsByActor returns the IDs of items featuring the actor.
func (s *Store) ItemsByActor(actor string) []int { return cloneIDs(s.byActor[norm(actor)]) }

// ItemsByDirector returns the IDs of items by the director.
func (s *Store) ItemsByDirector(director string) []int {
	return cloneIDs(s.byDirector[norm(director)])
}

// ItemsByTitle returns the IDs of items whose full title matches
// (case-insensitive).
func (s *Store) ItemsByTitle(title string) []int { return cloneIDs(s.byTitle[norm(title)]) }

// ItemsByTitleTerms returns the IDs of items whose title contains every
// word of the query (the Figure-1 search box behaviour).
func (s *Store) ItemsByTitleTerms(query string) []int {
	terms := tokenize(query)
	if len(terms) == 0 {
		return nil
	}
	// Intersect posting lists, rarest first.
	lists := make([][]int, len(terms))
	for i, t := range terms {
		lists[i] = s.titleTerm[t]
		if len(lists[i]) == 0 {
			return nil
		}
	}
	sort.Slice(lists, func(a, b int) bool { return len(lists[a]) < len(lists[b]) })
	out := cloneIDs(lists[0])
	for _, l := range lists[1:] {
		out = intersectSorted(out, l)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

func cloneIDs(ids []int) []int {
	if len(ids) == 0 {
		return nil
	}
	out := make([]int, len(ids))
	copy(out, ids)
	return out
}

func intersectSorted(a, b []int) []int {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// RatingCount returns the number of ratings an item received.
func (s *Store) RatingCount(itemID int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.itemTuples[itemID])
}

// TuplesForItems gathers R_I at the latest epoch: every rating tuple of
// the given items inside the window. The result is a fresh slice;
// mutation is safe.
func (s *Store) TuplesForItems(itemIDs []int, w TimeWindow) []cube.Tuple {
	return s.TuplesForItemsAt(itemIDs, w, 0)
}

// TuplesForItemsAt gathers R_I as of an epoch: every rating tuple of the
// given items inside the window whose log position is below the epoch's
// tuple watermark. Epoch 0 (or the current epoch) is the latest view and
// pays no filtering. The result is a fresh slice; mutation is safe.
//
// The window sub-ranges are resolved in a first pass so the result is
// allocated exactly once — a whole-genre query gathers hundreds of
// thousands of tuples, and growing by append would copy the slice ~20
// times on the cold path. For a pinned epoch the count pass additionally
// walks the sub-range to count surviving indices: per-item lists are
// time-sorted, not log-ordered, so the watermark cut is a filter rather
// than a prefix.
func (s *Store) TuplesForItemsAt(itemIDs []int, w TimeWindow, epoch uint64) []cube.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mark := s.watermarkLocked(epoch)
	latest := mark == len(s.tuples)
	bounds := make([][2]int, len(itemIDs))
	total := 0
	for i, id := range itemIDs {
		idxs := s.itemTuples[id]
		lo, hi := windowBounds(s.tuples, idxs, w)
		bounds[i] = [2]int{lo, hi}
		if latest {
			total += hi - lo
			continue
		}
		for _, ti := range idxs[lo:hi] {
			if int(ti) < mark {
				total++
			}
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]cube.Tuple, 0, total)
	for i, id := range itemIDs {
		idxs := s.itemTuples[id]
		for _, ti := range idxs[bounds[i][0]:bounds[i][1]] {
			if !latest && int(ti) >= mark {
				continue
			}
			out = append(out, s.tuples[ti])
		}
	}
	return out
}

// windowBounds binary-searches the time-sorted tuple index list for the
// window's sub-range.
func windowBounds(tuples []cube.Tuple, idxs []int32, w TimeWindow) (int, int) {
	lo := 0
	if w.BoundedFrom() {
		lo = sort.Search(len(idxs), func(i int) bool { return tuples[idxs[i]].Unix >= w.From })
	}
	hi := len(idxs)
	if w.BoundedTo() {
		hi = sort.Search(len(idxs), func(i int) bool { return tuples[idxs[i]].Unix > w.To })
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// ItemAgg returns the aggregate rating statistics for one item inside the
// window (the single overall value the paper argues is insufficient).
func (s *Store) ItemAgg(itemID int, w TimeWindow) cube.Agg {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var agg cube.Agg
	idxs := s.itemTuples[itemID]
	lo, hi := windowBounds(s.tuples, idxs, w)
	for _, ti := range idxs[lo:hi] {
		agg.Add(s.tuples[ti].Score)
	}
	return agg
}

// StateAggsAt returns the per-state rating aggregates as of an epoch
// (index = state descriptor value), along with the minimum support a
// state must reach to surface in browse mode. ok is false when the store
// was opened without precomputation — browse statistics are an opt-in
// tier. Epoch 0 means latest. The result is a fresh slice.
//
// At the base epoch this is exactly the set of state-only groups the
// global cube surfaces (same aggregates, same MinSupport cut); at later
// epochs it folds in each batch's delta, so pinned browse reads are
// exact at every epoch.
func (s *Store) StateAggsAt(epoch uint64) (aggs []cube.Agg, minSupport int, ok bool) {
	if !s.cubeEnabled {
		return nil, 0, false
	}
	s.ensureBaseStates()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]cube.Agg, cube.Cardinality(cube.State))
	copy(out, s.bounds[0].states)
	last := s.epoch
	if epoch != 0 && epoch < last {
		last = epoch
	}
	for e := uint64(2); e <= last; e++ {
		for i, d := range s.bounds[e-1].states {
			out[i].Merge(d)
		}
	}
	return out, s.cubeCfg.MinSupport, true
}

// ensureBaseStates lazily builds the base epoch's whole-log per-state
// aggregate with double-checked locking.
func (s *Store) ensureBaseStates() {
	s.mu.RLock()
	built := s.bounds[0].states != nil
	s.mu.RUnlock()
	if built {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bounds[0].states != nil {
		return
	}
	states := make([]cube.Agg, cube.Cardinality(cube.State))
	for i := range s.bounds[0].tuples {
		t := &s.tuples[i]
		if st := t.Vals[cube.State]; st != cube.Wildcard {
			states[st].Add(t.Score)
		}
	}
	s.bounds[0].states = states
}
