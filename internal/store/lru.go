package store

import (
	"container/list"
	"sync"
)

// LRU is a thread-safe least-recently-used result cache. MapRat caches the
// mining result for each (query, settings, window) fingerprint so repeated
// demo interactions — the common case at a demo booth — skip the NP-hard
// optimization entirely (§2.3).
type LRU struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses uint64
}

type lruEntry struct {
	key string
	val any
}

// NewLRU builds a cache bounded to max entries (max must be positive).
func NewLRU(max int) *LRU {
	if max <= 0 {
		max = 1
	}
	return &LRU{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key and marks it most recently used.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry).val, true
	}
	c.misses++
	return nil, false
}

// Put stores a value, evicting the least recently used entry when full.
func (c *LRU) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&lruEntry{key: key, val: val})
	c.items[key] = el
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset clears the cache and its counters.
func (c *LRU) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.hits, c.misses = 0, 0
}
