package store

import (
	"fmt"
	"sort"

	"repro/internal/cube"
)

// Append applies one accepted ingest batch to the store at the given
// epoch, which must be exactly CurrentEpoch()+1 — the ingest layer
// serializes writers and assigns epochs, the store only enforces the
// sequence. The tuples must already be joined against the (immutable)
// catalog. Maintenance is incremental:
//
//   - the batch appends to the tuple log and each touched item's
//     time-sorted index list gains the new positions by sorted insert;
//   - a new epochMark freezes the log extent and carries the batch's
//     per-state aggregate delta for epoch-pinned browse reads;
//   - the global cube, if already built, is delta-patched copy-on-write
//     (see cube.Patch) — a failed patch just drops it back to lazy
//     rebuild;
//   - before the new epoch becomes visible (still under the write lock,
//     which orders before the s.epoch bump readers resolve "latest"
//     from), the plan cache seals exactly the live entries whose
//     resolved item set intersects the batch; untouched plans stay
//     warm. Sealing first is load-bearing: if readers could resolve the
//     new epoch while intersecting entries were still live, a stale
//     plan would satisfy lookups at the new epoch and its wrong results
//     would be cached under the new epoch's keys forever.
//
// The result cache is NOT flushed: engine cache keys include the
// resolved epoch, so entries for earlier epochs remain valid forever and
// latest-epoch reads miss onto fresh keys.
func (s *Store) Append(epoch uint64, tuples []cube.Tuple) error {
	if len(tuples) == 0 {
		return fmt.Errorf("store: empty append batch")
	}
	s.mu.Lock()
	if epoch != s.epoch+1 {
		cur := s.epoch
		s.mu.Unlock()
		return fmt.Errorf("store: append at epoch %d, want %d", epoch, cur+1)
	}
	base := len(s.tuples)
	s.tuples = append(s.tuples, tuples...)

	states := make([]cube.Agg, cube.Cardinality(cube.State))
	items := make(map[int]struct{}, len(tuples))
	for i := range tuples {
		t := &s.tuples[base+i]
		items[int(t.ItemID)] = struct{}{}
		s.insertItemIndexLocked(int(t.ItemID), int32(base+i), t.Unix)
		if base+i == 0 || t.Unix < s.minUnix {
			s.minUnix = t.Unix
		}
		if base+i == 0 || t.Unix > s.maxUnix {
			s.maxUnix = t.Unix
		}
		if st := t.Vals[cube.State]; st != cube.Wildcard {
			states[st].Add(t.Score)
		}
	}
	s.bounds = append(s.bounds, epochMark{
		tuples:  len(s.tuples),
		minUnix: s.minUnix,
		maxUnix: s.maxUnix,
		states:  states,
	})

	if s.globalCube != nil {
		if patched, ok := s.globalCube.Patch(s.tuples, base); ok {
			s.globalCube = patched
			s.cubeEpoch = epoch
		} else {
			// Derived tables the patch cannot extend were materialized;
			// fall back to a lazy rebuild on the next GlobalCube call.
			s.globalCube = nil
			s.cubeEpoch = 0
		}
	}

	// Seal intersecting plan-cache entries BEFORE publishing the epoch:
	// readers resolve "latest" from s.epoch under the read lock, so no
	// read can see the new epoch until after Advance has sealed every
	// stale entry. Advance only takes the plan cache's own mutex and
	// plan builds never run under it, so holding s.mu here is safe.
	if s.plans != nil {
		ids := make([]int, 0, len(items))
		for id := range items {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		s.plans.Advance(epoch, ids)
	}
	s.epoch = epoch
	s.mu.Unlock()
	return nil
}

// insertItemIndexLocked inserts a new tuple position into an item's
// time-sorted index list at the upper bound of its timestamp. New
// positions are larger than every existing one, so inserting at the
// upper bound preserves the (Unix, index) total order joinRatings
// established — including within a batch, where later entries insert
// after earlier ones carrying the same timestamp.
func (s *Store) insertItemIndexLocked(itemID int, idx int32, unix int64) {
	idxs := s.itemTuples[itemID]
	at := sort.Search(len(idxs), func(i int) bool { return s.tuples[idxs[i]].Unix > unix })
	idxs = append(idxs, 0)
	copy(idxs[at+1:], idxs[at:])
	idxs[at] = idx
	s.itemTuples[itemID] = idxs
}
