package store

import (
	"context"
	"testing"

	"repro/internal/cube"
	"repro/internal/model"
)

// appendBatch joins n synthetic ratings for an existing (user, item) pair
// at timestamps just past the log's current maximum, so the batch
// visibly extends the time range.
func appendBatch(t *testing.T, s *Store, n int) []cube.Tuple {
	t.Helper()
	ds := s.Dataset()
	r0 := ds.Ratings[0]
	u := ds.UserByID(r0.UserID)
	if u == nil {
		t.Fatal("fixture rating references unknown user")
	}
	_, maxUnix := s.TimeRange()
	out := make([]cube.Tuple, n)
	for i := range out {
		r := model.Rating{UserID: r0.UserID, ItemID: r0.ItemID, Score: 5, Unix: maxUnix + int64(i+1)}
		out[i] = cube.JoinRating(r, u)
	}
	return out
}

func TestAppendAdvancesEpochAndWatermark(t *testing.T) {
	s := openStore(t, DefaultOptions())
	base := s.NumTuples()
	_, baseMax := s.TimeRange()
	itemID := s.Dataset().Ratings[0].ItemID
	pinnedCount := len(s.TuplesForItemsAt([]int{itemID}, TimeWindow{}, 1))

	batch := appendBatch(t, s, 3)
	if err := s.Append(2, batch); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := s.CurrentEpoch(); got != 2 {
		t.Fatalf("epoch = %d, want 2", got)
	}
	if got := s.NumTuples(); got != base+3 {
		t.Fatalf("NumTuples = %d, want %d", got, base+3)
	}
	if got := s.NumTuplesAt(1); got != base {
		t.Fatalf("NumTuplesAt(1) = %d, want the base watermark %d", got, base)
	}
	if got := s.NumTuplesAt(0); got != base+3 {
		t.Fatalf("NumTuplesAt(0) = %d, want latest %d", got, base+3)
	}

	// The pinned time range is frozen; the latest range extends.
	if _, hi := s.TimeRangeAt(1); hi != baseMax {
		t.Fatalf("TimeRangeAt(1) hi = %d, want frozen %d", hi, baseMax)
	}
	if _, hi := s.TimeRangeAt(0); hi != baseMax+3 {
		t.Fatalf("TimeRangeAt(0) hi = %d, want %d", hi, baseMax+3)
	}

	// Epoch-pinned gathers filter at the watermark; latest sees the batch.
	if got := len(s.TuplesForItemsAt([]int{itemID}, TimeWindow{}, 1)); got != pinnedCount {
		t.Fatalf("pinned gather = %d tuples, want %d", got, pinnedCount)
	}
	if got := len(s.TuplesForItemsAt([]int{itemID}, TimeWindow{}, 0)); got != pinnedCount+3 {
		t.Fatalf("latest gather = %d tuples, want %d", got, pinnedCount+3)
	}
}

func TestAppendEnforcesEpochSequence(t *testing.T) {
	s := openStore(t, DefaultOptions())
	batch := appendBatch(t, s, 1)
	if err := s.Append(3, batch); err == nil {
		t.Fatal("epoch gap accepted")
	}
	if err := s.Append(1, batch); err == nil {
		t.Fatal("stale epoch accepted")
	}
	if err := s.Append(2, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if err := s.Append(2, batch); err != nil {
		t.Fatalf("in-sequence append rejected: %v", err)
	}
}

// TestAppendStateAggsDelta: the browse aggregates fold per-epoch deltas —
// pinned reads are frozen, the latest read gains exactly the batch.
func TestAppendStateAggsDelta(t *testing.T) {
	s := openStore(t, DefaultOptions())
	before, _, ok := s.StateAggsAt(0)
	if !ok {
		t.Fatal("precompute enabled but StateAggsAt not ok")
	}
	batch := appendBatch(t, s, 4)
	st := batch[0].Vals[cube.State]
	if st == cube.Wildcard {
		t.Fatal("fixture batch has no state; pick a geocoded reviewer")
	}
	if err := s.Append(2, batch); err != nil {
		t.Fatal(err)
	}
	pinned, _, _ := s.StateAggsAt(1)
	latest, _, _ := s.StateAggsAt(0)
	for i := range before {
		if pinned[i] != before[i] {
			t.Fatalf("state %d pinned agg changed: %+v -> %+v", i, before[i], pinned[i])
		}
		want := before[i]
		if int16(i) == st {
			for range batch {
				want.Add(5)
			}
		}
		if latest[i] != want {
			t.Fatalf("state %d latest agg = %+v, want %+v", i, latest[i], want)
		}
	}
}

// TestAppendPatchesGlobalCube: a built global cube is patched
// copy-on-write — the old snapshot stays intact for readers holding it.
func TestAppendPatchesGlobalCube(t *testing.T) {
	s := openStore(t, DefaultOptions())
	gc1 := s.GlobalCube()
	if gc1 == nil {
		t.Fatal("precompute enabled but GlobalCube nil")
	}
	n1 := len(gc1.Tuples)
	if err := s.Append(2, appendBatch(t, s, 3)); err != nil {
		t.Fatal(err)
	}
	gc2 := s.GlobalCube()
	if gc2 == gc1 {
		t.Fatal("append did not swap the global cube")
	}
	if len(gc1.Tuples) != n1 {
		t.Fatal("append mutated the pre-append cube snapshot")
	}
	if len(gc2.Tuples) != n1+3 {
		t.Fatalf("patched cube covers %d tuples, want %d", len(gc2.Tuples), n1+3)
	}
}

// TestPlanCacheAdvanceSurgical pins the invalidation contract: an append
// seals exactly the live entries whose item set intersects the batch,
// counts the split, and sealed versions keep serving their epoch range.
func TestPlanCacheAdvanceSurgical(t *testing.T) {
	pc := NewPlanCache(1000)
	ctx := context.Background()
	mk := func(items ...int) func() (*Plan, error) {
		return func() (*Plan, error) {
			return &Plan{ItemIDs: items, Tuples: make([]cube.Tuple, 10)}, nil
		}
	}
	if _, _, err := pc.GetOrBuildAt(ctx, "toy", 1, mk(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pc.GetOrBuildAt(ctx, "heat", 1, mk(5, 6)); err != nil {
		t.Fatal(err)
	}

	pc.Advance(2, []int{2, 3}) // batch touches item 2: seals "toy" only
	st := pc.Stats()
	if st.Invalidated != 1 || st.Surviving != 1 {
		t.Fatalf("split = invalidated %d / surviving %d, want 1/1", st.Invalidated, st.Surviving)
	}

	// The untouched plan stays warm at the new epoch.
	if _, hit, _ := pc.GetOrBuildAt(ctx, "heat", 2, mk(5, 6)); !hit {
		t.Fatal("disjoint plan was not warm after the append")
	}
	// The sealed version still serves reads pinned at its range...
	if _, hit, _ := pc.GetOrBuildAt(ctx, "toy", 1, mk(1, 2)); !hit {
		t.Fatal("sealed version no longer serves its pinned epoch")
	}
	// ...but a latest-epoch fetch rebuilds.
	rebuilt := false
	if _, hit, _ := pc.GetOrBuildAt(ctx, "toy", 2, func() (*Plan, error) {
		rebuilt = true
		return &Plan{ItemIDs: []int{1, 2}, Tuples: make([]cube.Tuple, 10)}, nil
	}); hit || !rebuilt {
		t.Fatalf("intersecting plan served stale: hit=%v rebuilt=%v", hit, rebuilt)
	}

	// Both versions of "toy" coexist under one key; a second disjoint
	// append leaves all three live-or-sealed entries in place and counts
	// the two live ones as surviving.
	if pc.Len() != 3 {
		t.Fatalf("entries = %d, want 3 (two toy versions + heat)", pc.Len())
	}
	pc.Advance(3, []int{99})
	st = pc.Stats()
	if st.Invalidated != 1 || st.Surviving != 3 {
		t.Fatalf("after disjoint append: invalidated %d / surviving %d, want 1/3", st.Invalidated, st.Surviving)
	}
}

// TestPlanCachePutSealsStaleBuild: a plan whose build started before an
// append lands is stored sealed to its build epoch, never serving later
// epochs it did not see.
func TestPlanCachePutSealsStaleBuild(t *testing.T) {
	pc := NewPlanCache(1000)
	ctx := context.Background()
	started := make(chan struct{})
	proceed := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		pc.GetOrBuildAt(ctx, "k", 1, func() (*Plan, error) {
			close(started)
			<-proceed
			return &Plan{ItemIDs: []int{1}, Tuples: make([]cube.Tuple, 5)}, nil
		})
	}()
	<-started
	pc.Advance(2, []int{1}) // append lands mid-build
	close(proceed)
	<-done

	// The stale build serves its own epoch but not the new one.
	if _, hit, _ := pc.GetOrBuildAt(ctx, "k", 1, func() (*Plan, error) {
		t.Fatal("epoch-1 fetch rebuilt over the sealed entry")
		return nil, nil
	}); !hit {
		t.Fatal("sealed stale build does not serve its own epoch")
	}
	rebuilt := false
	pc.GetOrBuildAt(ctx, "k", 2, func() (*Plan, error) {
		rebuilt = true
		return &Plan{ItemIDs: []int{1}, Tuples: make([]cube.Tuple, 5)}, nil
	})
	if !rebuilt {
		t.Fatal("epoch-2 fetch served a plan built against the epoch-1 watermark")
	}
}
