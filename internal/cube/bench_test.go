package cube

import (
	"testing"
)

func benchTuples(n int) []Tuple {
	return randomTuples(n, 42)
}

func BenchmarkBuildGeoAnchored(b *testing.B) {
	tuples := benchTuples(10_000)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Build(tuples, cfg)
		if c.Len() == 0 {
			b.Fatal("empty cube")
		}
	}
}

func BenchmarkBuildFramework(b *testing.B) {
	tuples := benchTuples(10_000)
	cfg := Config{RequireState: false, MinSupport: 12, MaxAVPairs: 3, SkipApex: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Build(tuples, cfg)
		if c.Len() == 0 {
			b.Fatal("empty cube")
		}
	}
}

// BenchmarkBuildPacked measures the packed two-pass cube build against
// the retained reference (map[Key]*cell) build on the identical input —
// the cold-path kernel the flat table and member arena optimize.
func BenchmarkBuildPacked(b *testing.B) {
	tuples := benchTuples(10_000)
	cfg := DefaultConfig()
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if c := Build(tuples, cfg); c.Len() == 0 {
				b.Fatal("empty cube")
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if c := BuildReference(tuples, cfg); c.Len() == 0 {
				b.Fatal("empty cube")
			}
		}
	})
}

func BenchmarkKeyMatches(b *testing.B) {
	k := KeyAll.With(Gender, 1).With(State, 7)
	vals := [NumAttrs]int16{1, 3, 12, 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Matches(vals) {
			b.Fatal("mismatch")
		}
	}
}

func BenchmarkSiblings(b *testing.B) {
	tuples := benchTuples(5_000)
	c := Build(tuples, Config{RequireState: true, MinSupport: 5, MaxAVPairs: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sibs := c.Siblings(); len(sibs) != c.Len() {
			b.Fatal("bad sibling table")
		}
	}
}

func BenchmarkAggAdd(b *testing.B) {
	var a Agg
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Add(int8(1 + i%5))
	}
	if a.Count != b.N {
		b.Fatal("count mismatch")
	}
}

func BenchmarkKeyPhrase(b *testing.B) {
	k := KeyAll.With(Gender, 1).With(Age, 0).With(Occupation, 10).With(State, StateIndex("NY"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(k.Phrase()) == 0 {
			b.Fatal("empty phrase")
		}
	}
}
