package cube

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Group is one materialized cube cell over the input tuples: a candidate
// explanation group. Members holds the indices (into the Cube's tuple
// slice) of the tuples the group covers, which the mining layer uses for
// coverage computation and drill-down.
type Group struct {
	Key     Key
	Agg     Agg
	Members []int32
}

// Mean is a convenience accessor for the group's average score.
func (g *Group) Mean() float64 { return g.Agg.Mean() }

// Support is the number of rating tuples the group covers.
func (g *Group) Support() int { return g.Agg.Count }

// MAD computes the mean absolute deviation of the group's scores around its
// mean — the alternative consistency error ablated against the O(1) σ.
// It needs a pass over the members, so it is not used on the mining hot
// path.
func (g *Group) MAD(tuples []Tuple) float64 {
	if len(g.Members) == 0 {
		return 0
	}
	m := g.Mean()
	var sum float64
	for _, ti := range g.Members {
		d := float64(tuples[ti].Score) - m
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(g.Members))
}

// Config controls candidate-group construction.
type Config struct {
	// RequireState restricts candidates to groups carrying a state
	// condition, the paper's demo mode ("each of the groups always specify
	// the state as their geo condition").
	RequireState bool
	// EnableCity lets the City attribute participate in candidate
	// enumeration (off by default: state-level mining then pays nothing
	// for the extra attribute).
	EnableCity bool
	// RequireCity restricts candidates to groups carrying a city
	// condition — drill-down mining inside a state group. Implies
	// EnableCity.
	RequireCity bool
	// MinSupport prunes cells covering fewer tuples. The paper requires
	// each returned group to "cover a reasonable fraction" of ratings;
	// pruning rare cells also keeps the candidate space tractable.
	MinSupport int
	// MaxAVPairs caps the description length (number of attribute-value
	// pairs, including the state condition) so labels stay "meaningful" and
	// readable. 0 means no cap.
	MaxAVPairs int
	// SkipApex excludes the fully unconstrained group ⟨all⟩, which explains
	// nothing (it is the overall average the paper argues against).
	SkipApex bool
}

// DefaultConfig mirrors the demo's setup: geo-anchored, readable labels.
func DefaultConfig() Config {
	return Config{RequireState: true, MinSupport: 12, MaxAVPairs: 3, SkipApex: true}
}

// Cube is the materialized set of candidate groups over a tuple set R_I.
type Cube struct {
	Tuples []Tuple
	Groups []Group
	Cfg    Config

	byKey map[Key]int

	// Lazily built, cached derived structures. Cubes are shared across
	// requests through the plan-materialization tier, so a structure built
	// for one pipeline stage (e.g. the solver's coverage bitsets) is
	// amortized across every later interaction on the same plan. The
	// atomic byte counters let SizeBytes stay safe against a concurrent
	// first build; bitsDone flips after the bitset table is fully
	// published so Patch can carry it forward without racing a build in
	// progress.
	bitsOnce  sync.Once
	bits      [][]uint64
	bitsBytes atomic.Int64
	bitsDone  atomic.Bool

	sibOnce  sync.Once
	sibs     [][]int
	sibBytes atomic.Int64

	// pending accumulates cells that appeared in append batches (see
	// Patch) but have not reached MinSupport yet. Build leaves it nil:
	// cells below the threshold at build time stay pruned until batch
	// deltas alone re-earn the support. Never mutated after the cube is
	// published — Patch copies it into the successor cube.
	pending map[Key]Agg
}

// parallelBuildMin is the tuple count below which Build stays sequential:
// sharding a small R_I costs more in goroutine start-up and table merging
// than the scan saves. Per-query cubes (hundreds to tens of thousands of
// tuples) stay on the fast single-threaded path; the store's whole-log
// precomputation goes wide.
const parallelBuildMin = 1 << 15

// Build materializes every cube cell with at least one tuple that passes
// cfg's pruning rules. This is the "set of groups that has at least one
// rating tuple in R_I are then constructed" step of §2.3.
//
// Each tuple contributes to every subset of its attribute values (2^4 cells,
// or 2^3 when the state condition is mandatory), so construction is
// O(|R_I| · 2^|UA|). The implementation is the packed two-pass build: cells
// live in a flat open-addressed table keyed by the mixed-radix cell code
// (see pack.go) rather than a map[Key]*cell, and member lists are laid out
// counting-sort style into one shared arena — pass one counts members per
// cell, pass two writes each tuple index at its cell's precomputed offset.
// No per-cell allocation, no map rehashing of 10-byte keys, no incremental
// slice growth.
//
// Large inputs are sharded across GOMAXPROCS goroutines; shard tables merge
// with the O(1) Agg merge and each shard writes its members at per-shard
// precomputed arena offsets, so the output is byte-identical to the
// sequential build (and to BuildReference): member lists stay ascending
// because shards are contiguous and ordered, and the final group order is
// re-established by the deterministic sort below.
func Build(tuples []Tuple, cfg Config) *Cube {
	workers := runtime.GOMAXPROCS(0)
	if len(tuples) < parallelBuildMin {
		workers = 1
	}
	return buildWith(tuples, cfg, workers)
}

func buildWith(tuples []Tuple, cfg Config, workers int) *Cube {
	lay := newPackLayout(cfg)
	if workers < 1 || len(tuples) < 2*workers {
		workers = 1
	}

	// Pass 1: count pass. Each shard accumulates (code → Agg) over its
	// contiguous tuple partition; Agg.Count doubles as the shard's member
	// count per cell.
	parts := make([]*packTable, workers)
	if workers == 1 {
		parts[0] = packCount(tuples, cfg, lay, 0, len(tuples))
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * len(tuples) / workers
			hi := (w + 1) * len(tuples) / workers
			wg.Add(1)
			go func(w, lo, hi int) { //maprat:allow(ctxflow) bounded CPU shard joined by wg.Wait before Build returns; callers check ctx between pipeline stages
				defer wg.Done()
				parts[w] = packCount(tuples, cfg, lay, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
	}

	// Merge shard tables. The global table must stay distinct from the
	// shard tables when sharded: the per-shard counts position each
	// shard's arena writes.
	global := parts[0]
	if workers > 1 {
		total := 0
		for _, p := range parts {
			total += p.n
		}
		global = newPackTable(total)
		for _, p := range parts {
			global.merge(p)
		}
	}

	// Prune and order cells: support descending, then key ascending. The
	// packed code is constructed so ascending code order is exactly
	// lessKey order, so the sort never needs to decode.
	type survivor struct {
		code uint64
		agg  Agg
	}
	survivors := make([]survivor, 0, global.n)
	arenaLen := 0
	for i, k := range global.keys {
		if k == 0 || global.aggs[i].Count < cfg.MinSupport {
			continue
		}
		survivors = append(survivors, survivor{code: k - 1, agg: global.aggs[i]})
		arenaLen += global.aggs[i].Count
	}
	sort.Slice(survivors, func(a, b int) bool {
		if survivors[a].agg.Count != survivors[b].agg.Count {
			return survivors[a].agg.Count > survivors[b].agg.Count
		}
		return survivors[a].code < survivors[b].code
	})

	// Lay out the member arena: each surviving cell owns the contiguous
	// range [offset, offset+count) of one shared []int32.
	arena := make([]int32, arenaLen)
	cb := &Cube{Tuples: tuples, Cfg: cfg, byKey: make(map[Key]int, len(survivors))}
	cb.Groups = make([]Group, len(survivors))
	off := 0
	for i, s := range survivors {
		cb.Groups[i] = Group{
			Key:     UnpackKey(s.code),
			Agg:     s.agg,
			Members: arena[off : off+s.agg.Count : off+s.agg.Count],
		}
		cb.byKey[cb.Groups[i].Key] = i
		off += s.agg.Count
	}

	// Per-shard write cursors: shard w's first write for a cell lands
	// after every earlier shard's members of that cell, keeping each
	// member list ascending exactly as one sequential scan would append.
	groupOf := make([]int32, len(global.keys)) // global slot → group index
	for i := range groupOf {
		groupOf[i] = -1
	}
	for gi, s := range survivors {
		groupOf[global.slot(s.code)] = int32(gi)
	}
	cursor := make([]int32, len(survivors))
	for gi := range cb.Groups {
		if gi > 0 {
			cursor[gi] = cursor[gi-1] + int32(cb.Groups[gi-1].Agg.Count)
		}
	}
	starts := make([][]int32, workers)
	for w, p := range parts {
		st := make([]int32, len(p.keys))
		for i, k := range p.keys {
			if k == 0 {
				st[i] = -1
				continue
			}
			gi := groupOf[global.slot(k-1)]
			if gi < 0 {
				st[i] = -1 // pruned by MinSupport
				continue
			}
			st[i] = cursor[gi]
			cursor[gi] += int32(p.aggs[i].Count)
		}
		starts[w] = st
	}

	// Pass 2: fill pass. Each shard re-scans its partition and writes
	// member indices at its precomputed offsets; shards touch disjoint
	// arena positions, so the parallel fill is race-free.
	if workers == 1 {
		packFill(tuples, cfg, lay, 0, len(tuples), parts[0], starts[0], arena)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * len(tuples) / workers
			hi := (w + 1) * len(tuples) / workers
			wg.Add(1)
			go func(w, lo, hi int) { //maprat:allow(ctxflow) bounded CPU shard joined by wg.Wait before Build returns; callers check ctx between pipeline stages
				defer wg.Done()
				packFill(tuples, cfg, lay, lo, hi, parts[w], starts[w], arena)
			}(w, lo, hi)
		}
		wg.Wait()
	}
	return cb
}

// packCount is the count pass: scan tuples[lo:hi] and accumulate each
// admissible (tuple, subset) cell into a flat packed table.
func packCount(tuples []Tuple, cfg Config, lay *packLayout, lo, hi int) *packTable {
	t := newPackTable(1024)
	var add [NumAttrs]uint64
	for ti := lo; ti < hi; ti++ {
		tp := &tuples[ti]
		base, missing, ok := packPrepare(tp, cfg, lay, &add)
		if !ok {
			continue
		}
		for mi := range lay.masks {
			m := &lay.masks[mi]
			if m.bits&missing != 0 {
				continue // tuple lacks a constrained attribute; skip cell
			}
			code := base
			for _, bi := range m.idx {
				code += add[bi]
			}
			t.add(code, tp.Score)
		}
	}
	return t
}

// packFill is the fill pass: re-scan tuples[lo:hi] and write each member
// index at its cell's next arena offset. starts is indexed by the shard
// table's slots (-1 marks a pruned cell).
func packFill(tuples []Tuple, cfg Config, lay *packLayout, lo, hi int, t *packTable, starts []int32, arena []int32) {
	var add [NumAttrs]uint64
	for ti := lo; ti < hi; ti++ {
		tp := &tuples[ti]
		base, missing, ok := packPrepare(tp, cfg, lay, &add)
		if !ok {
			continue
		}
		for mi := range lay.masks {
			m := &lay.masks[mi]
			if m.bits&missing != 0 {
				continue
			}
			code := base
			for _, bi := range m.idx {
				code += add[bi]
			}
			s := t.slot(code)
			if starts[s] < 0 {
				continue
			}
			arena[starts[s]] = int32(ti)
			starts[s]++
		}
	}
}

// packPrepare computes a tuple's base code (required state/city digits),
// its per-free-attribute code addends, and the mask of free attributes the
// tuple has no value for. ok is false when the tuple cannot satisfy the
// mandatory conditions at all.
func packPrepare(tp *Tuple, cfg Config, lay *packLayout, add *[NumAttrs]uint64) (base uint64, missing uint32, ok bool) {
	if cfg.RequireState {
		if tp.Vals[State] == Wildcard {
			return 0, 0, false // unresolvable zip: no geo-anchored group
		}
		base += uint64(tp.Vals[State]+1) * packWeight[State]
	}
	if cfg.RequireCity {
		if tp.Vals[City] == Wildcard {
			return 0, 0, false
		}
		base += uint64(tp.Vals[City]+1) * packWeight[City]
	}
	for bi, a := range lay.free {
		v := tp.Vals[a]
		if v == Wildcard {
			missing |= 1 << uint(bi)
			continue
		}
		add[bi] = uint64(v+1) * packWeight[a]
	}
	return base, missing, true
}

// cell accumulates one cube cell during the reference build.
type cell struct {
	agg     Agg
	members []int32
}

// BuildReference is the executable specification of Build: the original
// map[Key]*cell construction, one map insert and one member append per
// (tuple, subset). It is kept for differential testing — Build must
// produce a byte-identical cube — and as the readable statement of the
// cube semantics; production callers use Build.
func BuildReference(tuples []Tuple, cfg Config) *Cube {
	cells := buildCells(tuples, cfg, freeAttrs(cfg), 0, len(tuples))
	cb := &Cube{Tuples: tuples, Cfg: cfg, byKey: make(map[Key]int)}
	for k, c := range cells {
		if c.agg.Count < cfg.MinSupport {
			continue
		}
		cb.Groups = append(cb.Groups, Group{Key: k, Agg: c.agg, Members: c.members})
	}
	// Deterministic order: by support descending, then key for ties, so the
	// mining layer's seeded randomness is reproducible run to run.
	sort.Slice(cb.Groups, func(i, j int) bool {
		gi, gj := &cb.Groups[i], &cb.Groups[j]
		if gi.Agg.Count != gj.Agg.Count {
			return gi.Agg.Count > gj.Agg.Count
		}
		return lessKey(gi.Key, gj.Key)
	})
	for i := range cb.Groups {
		cb.byKey[cb.Groups[i].Key] = i
	}
	return cb
}

// buildCells scans tuples[lo:hi] and materializes their cells the
// reference way. Member indices are global tuple indices, appended in
// ascending order.
func buildCells(tuples []Tuple, cfg Config, free []Attr, lo, hi int) map[Key]*cell {
	cells := make(map[Key]*cell, 1024)
	for ti := lo; ti < hi; ti++ {
		t := &tuples[ti]
		if cfg.RequireState && t.Vals[State] == Wildcard {
			continue // unresolvable zip: cannot satisfy any geo-anchored group
		}
		if cfg.RequireCity && t.Vals[City] == Wildcard {
			continue
		}
		for mask := 0; mask < 1<<len(free); mask++ {
			k := KeyAll
			if cfg.RequireState {
				k[State] = t.Vals[State]
			}
			if cfg.RequireCity {
				k[City] = t.Vals[City]
			}
			n := k.NumConstrained()
			for bi, a := range free {
				if mask&(1<<bi) != 0 {
					if t.Vals[a] == Wildcard {
						n = -1 // tuple lacks this attribute; skip cell
						break
					}
					k[a] = t.Vals[a]
					n++
				}
			}
			if n < 0 {
				continue
			}
			if cfg.SkipApex && n == 0 {
				continue
			}
			if cfg.MaxAVPairs > 0 && n > cfg.MaxAVPairs {
				continue
			}
			c := cells[k]
			if c == nil {
				c = &cell{}
				cells[k] = c
			}
			c.agg.Add(t.Score)
			c.members = append(c.members, int32(ti))
		}
	}
	return cells
}

func freeAttrs(cfg Config) []Attr {
	free := make([]Attr, 0, NumAttrs)
	for a := 0; a < NumAttrs; a++ {
		switch {
		case cfg.RequireState && Attr(a) == State:
			continue
		case Attr(a) == City && (cfg.RequireCity || !cfg.EnableCity):
			continue
		}
		free = append(free, Attr(a))
	}
	return free
}

func lessKey(a, b Key) bool {
	for i := 0; i < NumAttrs; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Group returns the materialized cell for a descriptor, if it survived
// pruning.
func (c *Cube) Group(k Key) (*Group, bool) {
	if i, ok := c.byKey[k]; ok {
		return &c.Groups[i], true
	}
	return nil, false
}

// IndexOf returns the position of a descriptor's group in Groups, if it
// survived pruning.
func (c *Cube) IndexOf(k Key) (int, bool) {
	i, ok := c.byKey[k]
	return i, ok
}

// Len returns the number of candidate groups.
func (c *Cube) Len() int { return len(c.Groups) }

// Per-element sizes used by SizeBytes. TupleBytes is exported for callers
// that account for bare tuple slices (the store's plan cache).
const (
	TupleBytes = int64(unsafe.Sizeof(Tuple{}))
	groupBytes = int64(unsafe.Sizeof(Group{}))
	keyBytes   = int64(unsafe.Sizeof(Key{}))
)

// SizeBytes approximates the cube's resident memory — the tuple slice,
// the group headers with their member lists, the key index, and any
// lazily built caches (coverage bitsets, sibling table) — in O(|Groups|)
// time, cheap enough for cache accounting on every insert.
func (c *Cube) SizeBytes() int64 {
	b := int64(len(c.Tuples)) * TupleBytes
	for i := range c.Groups {
		b += groupBytes + int64(len(c.Groups[i].Members))*4
	}
	b += int64(len(c.byKey)) * (keyBytes + 8)
	b += c.bitsBytes.Load() + c.sibBytes.Load()
	return b
}

// Siblings returns, for each group index, the indices of its sibling groups
// (same constrained attributes, exactly one differing value). Diversity
// Mining weights sibling disagreement higher because the paper's canonical
// DM output is a sibling pair.
//
// The table is computed once per Cube and cached, so repeated solves and
// explorations on a materialized plan stop rebuilding the buckets.
func (c *Cube) Siblings() [][]int {
	c.sibOnce.Do(func() {
		c.sibs = c.buildSiblings()
		var b int64
		for _, s := range c.sibs {
			b += 24 + int64(len(s))*8 // slice header + elements
		}
		c.sibBytes.Store(b)
	})
	return c.sibs
}

func (c *Cube) buildSiblings() [][]int {
	// Bucket groups by (wildcard mask, values with one attribute blanked):
	// two groups are siblings iff they share a bucket for the blanked
	// attribute and differ there.
	type bucketKey struct {
		blank Attr
		k     Key
	}
	buckets := make(map[bucketKey][]int)
	for i := range c.Groups {
		k := c.Groups[i].Key
		for a := 0; a < NumAttrs; a++ {
			if k[a] == Wildcard {
				continue
			}
			bk := bucketKey{blank: Attr(a), k: k.With(Attr(a), Wildcard)}
			buckets[bk] = append(buckets[bk], i)
		}
	}
	out := make([][]int, len(c.Groups))
	for _, idxs := range buckets {
		if len(idxs) < 2 {
			continue
		}
		for _, i := range idxs {
			for _, j := range idxs {
				if i != j {
					out[i] = append(out[i], j)
				}
			}
		}
	}
	for i := range out {
		sort.Ints(out[i])
		out[i] = dedupInts(out[i])
	}
	return out
}

func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}

// String summarizes the cube for logs.
func (c *Cube) String() string {
	return fmt.Sprintf("cube{tuples=%d groups=%d cfg=%+v}", len(c.Tuples), len(c.Groups), c.Cfg)
}
