package cube

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"unsafe"
)

// Group is one materialized cube cell over the input tuples: a candidate
// explanation group. Members holds the indices (into the Cube's tuple
// slice) of the tuples the group covers, which the mining layer uses for
// coverage computation and drill-down.
type Group struct {
	Key     Key
	Agg     Agg
	Members []int32
}

// Mean is a convenience accessor for the group's average score.
func (g *Group) Mean() float64 { return g.Agg.Mean() }

// Support is the number of rating tuples the group covers.
func (g *Group) Support() int { return g.Agg.Count }

// MAD computes the mean absolute deviation of the group's scores around its
// mean — the alternative consistency error ablated against the O(1) σ.
// It needs a pass over the members, so it is not used on the mining hot
// path.
func (g *Group) MAD(tuples []Tuple) float64 {
	if len(g.Members) == 0 {
		return 0
	}
	m := g.Mean()
	var sum float64
	for _, ti := range g.Members {
		d := float64(tuples[ti].Score) - m
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(g.Members))
}

// Config controls candidate-group construction.
type Config struct {
	// RequireState restricts candidates to groups carrying a state
	// condition, the paper's demo mode ("each of the groups always specify
	// the state as their geo condition").
	RequireState bool
	// EnableCity lets the City attribute participate in candidate
	// enumeration (off by default: state-level mining then pays nothing
	// for the extra attribute).
	EnableCity bool
	// RequireCity restricts candidates to groups carrying a city
	// condition — drill-down mining inside a state group. Implies
	// EnableCity.
	RequireCity bool
	// MinSupport prunes cells covering fewer tuples. The paper requires
	// each returned group to "cover a reasonable fraction" of ratings;
	// pruning rare cells also keeps the candidate space tractable.
	MinSupport int
	// MaxAVPairs caps the description length (number of attribute-value
	// pairs, including the state condition) so labels stay "meaningful" and
	// readable. 0 means no cap.
	MaxAVPairs int
	// SkipApex excludes the fully unconstrained group ⟨all⟩, which explains
	// nothing (it is the overall average the paper argues against).
	SkipApex bool
}

// DefaultConfig mirrors the demo's setup: geo-anchored, readable labels.
func DefaultConfig() Config {
	return Config{RequireState: true, MinSupport: 12, MaxAVPairs: 3, SkipApex: true}
}

// Cube is the materialized set of candidate groups over a tuple set R_I.
type Cube struct {
	Tuples []Tuple
	Groups []Group
	Cfg    Config

	byKey map[Key]int
}

// parallelBuildMin is the tuple count below which Build stays sequential:
// sharding a small R_I costs more in goroutine start-up and map merging
// than the scan saves. Per-query cubes (hundreds to tens of thousands of
// tuples) stay on the fast single-threaded path; the store's whole-log
// precomputation goes wide.
const parallelBuildMin = 1 << 15

// cell accumulates one cube cell during construction.
type cell struct {
	agg     Agg
	members []int32
}

// Build materializes every cube cell with at least one tuple that passes
// cfg's pruning rules. This is the "set of groups that has at least one
// rating tuple in R_I are then constructed" step of §2.3.
//
// Each tuple contributes to every subset of its attribute values (2^4 cells,
// or 2^3 when the state condition is mandatory), so construction is
// O(|R_I| · 2^|UA|) with a single map insert per cell.
//
// Large inputs are sharded across GOMAXPROCS goroutines, each building the
// cells of a contiguous tuple partition; the partitions merge with the O(1)
// Agg merge. The output is byte-identical to the sequential build: Agg is
// integer-valued (so merging is associative), member lists stay ascending
// because partitions are contiguous and merged in order, and the final
// ordering is re-established by the deterministic sort below.
func Build(tuples []Tuple, cfg Config) *Cube {
	workers := runtime.GOMAXPROCS(0)
	if len(tuples) < parallelBuildMin {
		workers = 1
	}
	return buildWith(tuples, cfg, workers)
}

func buildWith(tuples []Tuple, cfg Config, workers int) *Cube {
	free := freeAttrs(cfg) // attributes allowed to vary in the subset mask

	var cells map[Key]*cell
	if workers <= 1 || len(tuples) < 2*workers {
		cells = buildCells(tuples, cfg, free, 0, len(tuples))
	} else {
		parts := make([]map[Key]*cell, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * len(tuples) / workers
			hi := (w + 1) * len(tuples) / workers
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				parts[w] = buildCells(tuples, cfg, free, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		// Merge in partition order so every member list stays ascending,
		// exactly as the sequential scan would have appended it.
		cells = parts[0]
		for _, part := range parts[1:] {
			for k, pc := range part {
				if c, ok := cells[k]; ok {
					c.agg.Merge(pc.agg)
					c.members = append(c.members, pc.members...)
				} else {
					cells[k] = pc
				}
			}
		}
	}

	cb := &Cube{Tuples: tuples, Cfg: cfg, byKey: make(map[Key]int)}
	for k, c := range cells {
		if c.agg.Count < cfg.MinSupport {
			continue
		}
		cb.Groups = append(cb.Groups, Group{Key: k, Agg: c.agg, Members: c.members})
	}
	// Deterministic order: by support descending, then key for ties, so the
	// mining layer's seeded randomness is reproducible run to run.
	sort.Slice(cb.Groups, func(i, j int) bool {
		gi, gj := &cb.Groups[i], &cb.Groups[j]
		if gi.Agg.Count != gj.Agg.Count {
			return gi.Agg.Count > gj.Agg.Count
		}
		return lessKey(gi.Key, gj.Key)
	})
	for i := range cb.Groups {
		cb.byKey[cb.Groups[i].Key] = i
	}
	return cb
}

// buildCells scans tuples[lo:hi] and materializes their cells. Member
// indices are global tuple indices, appended in ascending order.
func buildCells(tuples []Tuple, cfg Config, free []Attr, lo, hi int) map[Key]*cell {
	cells := make(map[Key]*cell, 1024)
	for ti := lo; ti < hi; ti++ {
		t := &tuples[ti]
		if cfg.RequireState && t.Vals[State] == Wildcard {
			continue // unresolvable zip: cannot satisfy any geo-anchored group
		}
		if cfg.RequireCity && t.Vals[City] == Wildcard {
			continue
		}
		for mask := 0; mask < 1<<len(free); mask++ {
			k := KeyAll
			if cfg.RequireState {
				k[State] = t.Vals[State]
			}
			if cfg.RequireCity {
				k[City] = t.Vals[City]
			}
			n := k.NumConstrained()
			for bi, a := range free {
				if mask&(1<<bi) != 0 {
					if t.Vals[a] == Wildcard {
						n = -1 // tuple lacks this attribute; skip cell
						break
					}
					k[a] = t.Vals[a]
					n++
				}
			}
			if n < 0 {
				continue
			}
			if cfg.SkipApex && n == 0 {
				continue
			}
			if cfg.MaxAVPairs > 0 && n > cfg.MaxAVPairs {
				continue
			}
			c := cells[k]
			if c == nil {
				c = &cell{}
				cells[k] = c
			}
			c.agg.Add(t.Score)
			c.members = append(c.members, int32(ti))
		}
	}
	return cells
}

func freeAttrs(cfg Config) []Attr {
	var free []Attr
	for a := 0; a < NumAttrs; a++ {
		switch {
		case cfg.RequireState && Attr(a) == State:
			continue
		case Attr(a) == City && (cfg.RequireCity || !cfg.EnableCity):
			continue
		}
		free = append(free, Attr(a))
	}
	return free
}

func lessKey(a, b Key) bool {
	for i := 0; i < NumAttrs; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Group returns the materialized cell for a descriptor, if it survived
// pruning.
func (c *Cube) Group(k Key) (*Group, bool) {
	if i, ok := c.byKey[k]; ok {
		return &c.Groups[i], true
	}
	return nil, false
}

// Len returns the number of candidate groups.
func (c *Cube) Len() int { return len(c.Groups) }

// Per-element sizes used by SizeBytes. City strings share their backing
// with the dataset, so tuples are costed by header alone. TupleBytes is
// exported for callers that account for bare tuple slices (the store's
// plan cache).
const (
	TupleBytes = int64(unsafe.Sizeof(Tuple{}))
	groupBytes = int64(unsafe.Sizeof(Group{}))
	keyBytes   = int64(unsafe.Sizeof(Key{}))
)

// SizeBytes approximates the cube's resident memory — the tuple slice,
// the group headers with their member lists, and the key index — in
// O(|Groups|) time, cheap enough for cache accounting on every insert.
func (c *Cube) SizeBytes() int64 {
	b := int64(len(c.Tuples)) * TupleBytes
	for i := range c.Groups {
		b += groupBytes + int64(len(c.Groups[i].Members))*4
	}
	b += int64(len(c.byKey)) * (keyBytes + 8)
	return b
}

// Siblings returns, for each group index, the indices of its sibling groups
// (same constrained attributes, exactly one differing value). Diversity
// Mining weights sibling disagreement higher because the paper's canonical
// DM output is a sibling pair.
func (c *Cube) Siblings() [][]int {
	// Bucket groups by (wildcard mask, values with one attribute blanked):
	// two groups are siblings iff they share a bucket for the blanked
	// attribute and differ there.
	type bucketKey struct {
		blank Attr
		k     Key
	}
	buckets := make(map[bucketKey][]int)
	for i := range c.Groups {
		k := c.Groups[i].Key
		for a := 0; a < NumAttrs; a++ {
			if k[a] == Wildcard {
				continue
			}
			bk := bucketKey{blank: Attr(a), k: k.With(Attr(a), Wildcard)}
			buckets[bk] = append(buckets[bk], i)
		}
	}
	out := make([][]int, len(c.Groups))
	for _, idxs := range buckets {
		if len(idxs) < 2 {
			continue
		}
		for _, i := range idxs {
			for _, j := range idxs {
				if i != j {
					out[i] = append(out[i], j)
				}
			}
		}
	}
	for i := range out {
		sort.Ints(out[i])
		out[i] = dedupInts(out[i])
	}
	return out
}

func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}

// String summarizes the cube for logs.
func (c *Cube) String() string {
	return fmt.Sprintf("cube{tuples=%d groups=%d cfg=%+v}", len(c.Tuples), len(c.Groups), c.Cfg)
}
