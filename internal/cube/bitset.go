package cube

import "math/bits"

// Coverage bitsets: each candidate group's member set as a dense
// []uint64 over the cube's tuple indices. The mining layer's coverage
// constraint ("the selected groups jointly cover ≥ α·|R_I| tuples") then
// reduces to word-wise OR and popcount instead of re-scanning member
// lists — the dominant cost of Randomized Hill Exploration's sampled
// neighbourhood evaluation.

// BitsetWords returns the number of 64-bit words a bitset over n tuples
// needs.
func BitsetWords(n int) int { return (n + 63) / 64 }

// MemberBits returns a dense bitset per dense group, bit ti set iff tuple
// ti is a member; the entry is nil for groups whose support is below the
// bitset word count. The cut is the break-even point of the coverage ops:
// OR-ing or AND-NOT-counting a dense group costs `words` word operations
// against `support` member-list operations, so a bitset only pays when
// support ≥ words — and materializing one per sparse group would also
// blow memory on large R_I (a whole-genre query has thousands of
// candidates of a hundred members each over 100k+ tuples; all-dense
// bitsets there cost ~100MB per cold build for structures that word-scan
// slower than the lists they replace). Sparse groups keep evaluating
// through their member lists against the dense base bitset.
//
// The table is built once per Cube — dense groups share one backing
// arena — and cached, so every solve on a materialized plan after the
// first (Explain, ExploreGroup, RefineGroup, DrillMine, each evolution
// window) gets it for free. The returned bitsets are shared and must be
// treated as immutable.
func (c *Cube) MemberBits() [][]uint64 {
	c.bitsOnce.Do(func() {
		words := BitsetWords(len(c.Tuples))
		dense := 0
		for i := range c.Groups {
			if len(c.Groups[i].Members) >= words {
				dense++
			}
		}
		arena := make([]uint64, words*dense)
		bits := make([][]uint64, len(c.Groups))
		next := 0
		for i := range c.Groups {
			if len(c.Groups[i].Members) < words {
				continue
			}
			b := arena[next*words : (next+1)*words : (next+1)*words]
			next++
			for _, ti := range c.Groups[i].Members {
				b[ti>>6] |= 1 << (uint(ti) & 63)
			}
			bits[i] = b
		}
		c.bits = bits
		c.bitsBytes.Store(int64(len(arena))*8 + int64(len(bits))*24)
		c.bitsDone.Store(true)
	})
	return c.bits
}

// OrInto ORs src into dst word-wise. The slices must have equal length.
func OrInto(dst, src []uint64) {
	if len(src) == 0 {
		return
	}
	_ = dst[len(src)-1]
	for i, w := range src {
		dst[i] |= w
	}
}

// PopCount returns the number of set bits in b.
func PopCount(b []uint64) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndNotCount returns |a \ b|: the number of bits set in a but not in b.
// The slices must have equal length.
func AndNotCount(a, b []uint64) int {
	if len(a) == 0 {
		return 0
	}
	_ = b[len(a)-1]
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w &^ b[i])
	}
	return n
}
