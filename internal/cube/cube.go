// Package cube implements the data-cube view of rating tuples that MapRat's
// group model is defined on (§2.1 of the paper, after Gray et al.'s data
// cube): a group is the set of rating tuples describable by a conjunction of
// reviewer attribute-value pairs, e.g. {⟨location, CA⟩, ⟨occupation,
// student⟩}. The package provides canonical group descriptors (Key), cube
// cell enumeration, O(1)-mergeable aggregates, and candidate-group
// construction with support and label-length pruning.
package cube

import (
	"fmt"
	"strings"

	"repro/internal/geo"
	"repro/internal/model"
)

// Attr enumerates the reviewer attributes a group description may condition
// on. State is derived from the reviewer's zip code; it is the geo-condition
// the paper's choropleth anchors on. City refines the state for the paper's
// drill-down ("if the original geo condition was over a state, the drill
// down provides city level statistics"); it only participates in candidate
// enumeration when a Config enables it, so state-level mining pays nothing
// for it.
type Attr uint8

// Reviewer attributes in descriptor order.
const (
	Gender Attr = iota
	Age
	Occupation
	State
	City
	NumAttrs int = iota
)

var attrNames = [NumAttrs]string{"gender", "age", "occupation", "state", "city"}

// String returns the lower-case attribute name.
func (a Attr) String() string {
	if int(a) < NumAttrs {
		return attrNames[a]
	}
	return fmt.Sprintf("Attr(%d)", uint8(a))
}

// ParseAttr resolves an attribute name ("gender", "age", "occupation",
// "state") to its Attr.
func ParseAttr(name string) (Attr, error) {
	for i, n := range attrNames {
		if n == name {
			return Attr(i), nil
		}
	}
	return 0, fmt.Errorf("cube: unknown attribute %q", name)
}

// stateCodes is the sorted state vocabulary; a descriptor stores a state as
// its index in this slice.
var stateCodes = geo.StateCodes()

var stateIndex = func() map[string]int16 {
	m := make(map[string]int16, len(stateCodes))
	for i, c := range stateCodes {
		m[c] = int16(i)
	}
	return m
}()

// StateIndex returns the descriptor value for a two-letter state code, or -1
// if the code is unknown.
func StateIndex(code string) int16 {
	if i, ok := stateIndex[code]; ok {
		return i
	}
	return -1
}

// StateCode returns the two-letter code for a descriptor state value.
func StateCode(idx int16) string {
	if idx >= 0 && int(idx) < len(stateCodes) {
		return stateCodes[idx]
	}
	return "??"
}

// cityNames is the global city vocabulary: every state's cities (named
// plus the catch-all), in (state, city) order. City names are unique
// across states by construction of the geo tables.
var cityNames = func() []string {
	var out []string
	for _, code := range geo.StateCodes() {
		out = append(out, geo.Cities(code)...)
	}
	return out
}()

var cityIndexByName = func() map[string]int16 {
	m := make(map[string]int16, len(cityNames))
	for i, c := range cityNames {
		m[c] = int16(i)
	}
	return m
}()

// CityIndex returns the descriptor value for a city name, or -1 if the
// city is not in the gazetteer.
func CityIndex(name string) int16 {
	if i, ok := cityIndexByName[name]; ok {
		return i
	}
	return -1
}

// CityName returns the city name for a descriptor city value.
func CityName(idx int16) string {
	if idx >= 0 && int(idx) < len(cityNames) {
		return cityNames[idx]
	}
	return "??"
}

// Cardinality returns the size of an attribute's value vocabulary.
func Cardinality(a Attr) int {
	switch a {
	case Gender:
		return model.NumGenders
	case Age:
		return model.NumAgeBuckets
	case Occupation:
		return model.NumOccupations
	case State:
		return len(stateCodes)
	case City:
		return len(cityNames)
	}
	return 0
}

// Wildcard marks an unconstrained attribute in a Key.
const Wildcard int16 = -1

// Key is a canonical, comparable group descriptor: Key[a] holds the value
// index of attribute a, or Wildcard when the group does not condition on a.
// Keys are valid map keys, which makes cube-cell accumulation a single map
// insert per cell.
type Key [NumAttrs]int16

// KeyAll is the fully unconstrained descriptor (the cube's apex cell).
var KeyAll = Key{Wildcard, Wildcard, Wildcard, Wildcard, Wildcard}

// With returns a copy of k with attribute a constrained to value v.
func (k Key) With(a Attr, v int16) Key {
	k[a] = v
	return k
}

// Has reports whether attribute a is constrained.
func (k Key) Has(a Attr) bool { return k[a] != Wildcard }

// NumConstrained returns the number of attribute-value pairs in the
// description (the label length the paper keeps small for readability).
func (k Key) NumConstrained() int {
	n := 0
	for _, v := range k {
		if v != Wildcard {
			n++
		}
	}
	return n
}

// Matches reports whether a tuple with attribute values vals belongs to the
// group described by k.
func (k Key) Matches(vals [NumAttrs]int16) bool {
	for a, v := range k {
		if v != Wildcard && vals[a] != v {
			return false
		}
	}
	return true
}

// Contains reports whether every tuple in the group described by other also
// belongs to the group described by k (i.e. k is an ancestor of other in the
// cube lattice, or equal).
func (k Key) Contains(other Key) bool {
	for a, v := range k {
		if v != Wildcard && other[a] != v {
			return false
		}
	}
	return true
}

// SiblingOf reports whether k and other constrain the same attributes and
// differ in exactly one attribute's value — the paper's Diversity Mining
// pattern ("male reviewers under 18" vs "female reviewers under 18").
// The second return value is the differing attribute.
func (k Key) SiblingOf(other Key) (Attr, bool) {
	diff := -1
	for a := 0; a < NumAttrs; a++ {
		kc, oc := k[a] != Wildcard, other[a] != Wildcard
		if kc != oc {
			return 0, false
		}
		if kc && k[a] != other[a] {
			if diff != -1 {
				return 0, false
			}
			diff = a
		}
	}
	if diff == -1 {
		return 0, false
	}
	return Attr(diff), true
}

// ValueLabel renders one attribute value as a human-readable string.
func ValueLabel(a Attr, v int16) string {
	switch a {
	case Gender:
		return model.Gender(v).Label()
	case Age:
		return model.AgeBucket(v).Label()
	case Occupation:
		return model.Occupation(v).Label()
	case State:
		return StateCode(v)
	case City:
		return CityName(v)
	}
	return fmt.Sprintf("%d", v)
}

// ParseValue resolves a value string for attribute a to its descriptor
// value. It accepts the same strings ValueLabel produces, plus the MovieLens
// raw encodings (gender "M"/"F", age codes such as "18").
func ParseValue(a Attr, s string) (int16, error) {
	switch a {
	case Gender:
		if g, err := model.ParseGender(s); err == nil {
			return int16(g), nil
		}
		switch strings.ToLower(s) {
		case "male":
			return int16(model.Male), nil
		case "female":
			return int16(model.Female), nil
		}
	case Age:
		for b := 0; b < model.NumAgeBuckets; b++ {
			if model.AgeBucket(b).Label() == s {
				return int16(b), nil
			}
		}
		var code int
		if _, err := fmt.Sscanf(s, "%d", &code); err == nil {
			if b, err := model.ParseAgeCode(code); err == nil {
				return int16(b), nil
			}
		}
	case Occupation:
		if o, ok := model.OccupationByLabel(s); ok {
			return int16(o), nil
		}
	case State:
		if i := StateIndex(strings.ToUpper(s)); i >= 0 {
			return i, nil
		}
	case City:
		if i := CityIndex(s); i >= 0 {
			return i, nil
		}
	}
	return 0, fmt.Errorf("cube: cannot parse %q as a %s value", s, a)
}

// String renders the descriptor as a compact conjunction, e.g.
// "gender=male ∧ age=under 18 ∧ state=CA". The apex cell renders as "⟨all⟩".
func (k Key) String() string {
	parts := make([]string, 0, NumAttrs)
	for a := 0; a < NumAttrs; a++ {
		if k[a] != Wildcard {
			parts = append(parts, Attr(a).String()+"="+ValueLabel(Attr(a), k[a]))
		}
	}
	if len(parts) == 0 {
		return "⟨all⟩"
	}
	return strings.Join(parts, " ∧ ")
}

// Phrase renders the descriptor the way the paper captions groups, e.g.
// "female teen student reviewers from New York" becomes
// "female under-18 K-12 student reviewers from NY".
func (k Key) Phrase() string {
	var b strings.Builder
	if k.Has(Gender) {
		b.WriteString(model.Gender(k[Gender]).Label())
		b.WriteByte(' ')
	}
	if k.Has(Age) {
		age := strings.ReplaceAll(model.AgeBucket(k[Age]).Label(), " ", "-")
		b.WriteString(age)
		b.WriteByte(' ')
	}
	if k.Has(Occupation) {
		b.WriteString(model.Occupation(k[Occupation]).Label())
		b.WriteByte(' ')
	}
	b.WriteString("reviewers")
	switch {
	case k.Has(City) && k.Has(State):
		b.WriteString(" from ")
		b.WriteString(CityName(k[City]))
		b.WriteString(", ")
		b.WriteString(StateCode(k[State]))
	case k.Has(City):
		b.WriteString(" from ")
		b.WriteString(CityName(k[City]))
	case k.Has(State):
		b.WriteString(" from ")
		if st := geo.StateByCode(StateCode(k[State])); st != nil {
			b.WriteString(st.Name)
		} else {
			b.WriteString(StateCode(k[State]))
		}
	}
	return b.String()
}

// Param renders the descriptor in the comma-separated form ParseKey
// accepts ("gender=male,age=under 18,state=NY") — the URL-safe encoding
// the web front-end round-trips group identities through.
func (k Key) Param() string {
	parts := make([]string, 0, NumAttrs)
	for a := 0; a < NumAttrs; a++ {
		if k[a] != Wildcard {
			parts = append(parts, Attr(a).String()+"="+ValueLabel(Attr(a), k[a]))
		}
	}
	return strings.Join(parts, ",")
}

// ParseKey parses a comma-separated descriptor such as
// "gender=F,age=under 18,state=NY". An empty string yields KeyAll.
func ParseKey(s string) (Key, error) {
	k := KeyAll
	if strings.TrimSpace(s) == "" {
		return k, nil
	}
	for _, part := range strings.Split(s, ",") {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return k, fmt.Errorf("cube: descriptor term %q is not attr=value", part)
		}
		a, err := ParseAttr(strings.TrimSpace(part[:eq]))
		if err != nil {
			return k, err
		}
		v, err := ParseValue(a, strings.TrimSpace(part[eq+1:]))
		if err != nil {
			return k, err
		}
		k[a] = v
	}
	return k, nil
}
