package cube

// Packed cell codes: a Key is a vector of small known-cardinality digits
// (gender×age×occupation×state×city, each possibly Wildcard), so the whole
// descriptor fits one mixed-radix integer. The cube builder keys its flat
// cell table by this code instead of hashing a 10-byte Key per insert, and
// the code doubles as a sort key: attribute 0 is the most significant
// digit and Wildcard packs below every real value, so ascending code order
// is exactly lessKey order.

// packRadix[a] is the digit base of attribute a: its vocabulary size plus
// one slot for Wildcard (digit 0).
var packRadix = func() [NumAttrs]uint64 {
	var r [NumAttrs]uint64
	for a := 0; a < NumAttrs; a++ {
		r[a] = uint64(Cardinality(Attr(a)) + 1)
	}
	return r
}()

// packWeight[a] is the positional weight of attribute a's digit: the
// product of the radices of all less-significant (higher-index) attributes.
// The full code space is Π packRadix ≈ 3.6M, far inside uint64 (and even
// uint32); the headroom keeps the encoding stable if vocabularies grow.
var packWeight = func() [NumAttrs]uint64 {
	var w [NumAttrs]uint64
	acc := uint64(1)
	for a := NumAttrs - 1; a >= 0; a-- {
		w[a] = acc
		acc *= packRadix[a]
	}
	return w
}()

// PackKey encodes a descriptor into its mixed-radix cell code. Every
// attribute value must be Wildcard or a valid index for its vocabulary.
func PackKey(k Key) uint64 {
	var code uint64
	for a := 0; a < NumAttrs; a++ {
		code += uint64(k[a]+1) * packWeight[a]
	}
	return code
}

// UnpackKey decodes a cell code back into the descriptor it encodes.
// UnpackKey(PackKey(k)) == k for every valid Key.
func UnpackKey(code uint64) Key {
	var k Key
	for a := 0; a < NumAttrs; a++ {
		k[a] = int16(code/packWeight[a]%packRadix[a]) - 1
	}
	return k
}

// packTable is an open-addressed hash table from cell code to aggregate —
// the flat replacement for map[Key]*cell in the cube build. Slots store
// code+1 so the zero value marks an empty slot (code 0 is the valid apex
// cell). Linear probing keeps collision chains in cache; the table grows
// at ~70% load.
type packTable struct {
	keys []uint64 // code+1; 0 = empty
	aggs []Agg
	mask uint64
	n    int // occupied slots
	lim  int // grow threshold
}

func newPackTable(hint int) *packTable {
	size := 64
	for size*7 < hint*10 {
		size <<= 1
	}
	t := &packTable{}
	t.init(size)
	return t
}

func (t *packTable) init(size int) {
	t.keys = make([]uint64, size)
	t.aggs = make([]Agg, size)
	t.mask = uint64(size - 1)
	t.lim = size * 7 / 10
}

// probe returns the slot holding key k (= code+1) or the empty slot where
// it belongs.
func (t *packTable) probe(k uint64) int {
	h := k * 0x9E3779B97F4A7C15 // Fibonacci scramble of the dense code space
	i := (h ^ h>>29) & t.mask
	for t.keys[i] != 0 && t.keys[i] != k {
		i = (i + 1) & t.mask
	}
	return int(i)
}

// add accumulates one score into the cell for code, inserting it on first
// touch.
func (t *packTable) add(code uint64, score int8) {
	if t.n >= t.lim {
		t.grow()
	}
	i := t.probe(code + 1)
	if t.keys[i] == 0 {
		t.keys[i] = code + 1
		t.n++
	}
	t.aggs[i].Add(score)
}

// slot returns the occupied slot index for code, or -1.
func (t *packTable) slot(code uint64) int {
	i := t.probe(code + 1)
	if t.keys[i] == 0 {
		return -1
	}
	return i
}

func (t *packTable) grow() {
	oldKeys, oldAggs := t.keys, t.aggs
	t.init(len(oldKeys) * 2)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := t.probe(k)
		t.keys[j] = k
		t.aggs[j] = oldAggs[i]
	}
}

// merge folds another table's cells into t with the O(1) Agg merge.
func (t *packTable) merge(other *packTable) {
	for i, k := range other.keys {
		if k == 0 {
			continue
		}
		if t.n >= t.lim {
			t.grow()
		}
		j := t.probe(k)
		if t.keys[j] == 0 {
			t.keys[j] = k
			t.n++
		}
		t.aggs[j].Merge(other.aggs[i])
	}
}

// packMask is one admissible free-attribute subset: the cells a tuple
// contributes to are base constraints plus any mask from this list.
type packMask struct {
	bits uint32  // bit bi set = free attr i constrained
	idx  []uint8 // positions of the set bits, for the code sum
}

// packLayout is the per-Config precomputation of the packed build: which
// attributes vary, and which subsets survive the apex / label-length
// pruning no matter the tuple. Tuple-dependent pruning (missing attribute
// values) stays in the scan via the missing-bit mask.
type packLayout struct {
	free  []Attr
	masks []packMask
}

func newPackLayout(cfg Config) *packLayout {
	l := &packLayout{free: freeAttrs(cfg)}
	baseN := 0
	if cfg.RequireState {
		baseN++
	}
	if cfg.RequireCity {
		baseN++
	}
	for bits := 0; bits < 1<<len(l.free); bits++ {
		n := baseN + popcount32(uint32(bits))
		if cfg.SkipApex && n == 0 {
			continue
		}
		if cfg.MaxAVPairs > 0 && n > cfg.MaxAVPairs {
			continue
		}
		m := packMask{bits: uint32(bits)}
		for bi := 0; bi < len(l.free); bi++ {
			if bits&(1<<bi) != 0 {
				m.idx = append(m.idx, uint8(bi))
			}
		}
		l.masks = append(l.masks, m)
	}
	return l
}

func popcount32(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
