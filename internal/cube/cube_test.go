package cube

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// randomTuples builds n tuples with fully resolved attributes using a seeded
// generator, so tests are deterministic.
func randomTuples(n int, seed int64) []Tuple {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]Tuple, n)
	for i := range tuples {
		var t Tuple
		t.Vals[Gender] = int16(rng.Intn(Cardinality(Gender)))
		t.Vals[Age] = int16(rng.Intn(Cardinality(Age)))
		t.Vals[Occupation] = int16(rng.Intn(Cardinality(Occupation)))
		t.Vals[State] = int16(rng.Intn(8)) // few states so cells get support
		t.Score = int8(1 + rng.Intn(5))
		t.Unix = int64(978300000 + rng.Intn(1000000))
		t.UserID = int32(i + 1)
		t.ItemID = 1
		tuples[i] = t
	}
	return tuples
}

func TestKeyWithAndHas(t *testing.T) {
	k := KeyAll
	if k.NumConstrained() != 0 {
		t.Fatalf("KeyAll constrained = %d", k.NumConstrained())
	}
	k = k.With(Gender, 1).With(State, 3)
	if !k.Has(Gender) || !k.Has(State) || k.Has(Age) {
		t.Errorf("Has wrong: %v", k)
	}
	if k.NumConstrained() != 2 {
		t.Errorf("NumConstrained = %d, want 2", k.NumConstrained())
	}
	// With must not mutate the receiver.
	if KeyAll.Has(Gender) {
		t.Error("With mutated KeyAll")
	}
}

func TestKeyMatchesAndContains(t *testing.T) {
	vals := [NumAttrs]int16{0, 2, 12, 5}
	if !KeyAll.Matches(vals) {
		t.Error("KeyAll should match everything")
	}
	k := KeyAll.With(Age, 2).With(State, 5)
	if !k.Matches(vals) {
		t.Error("matching key rejected")
	}
	if k.Matches([NumAttrs]int16{0, 3, 12, 5}) {
		t.Error("non-matching key accepted")
	}
	if !KeyAll.Contains(k) {
		t.Error("apex must contain every key")
	}
	if k.Contains(KeyAll) {
		t.Error("specific key cannot contain apex")
	}
	if !k.Contains(k.With(Gender, 1)) {
		t.Error("key must contain its refinement")
	}
}

func TestSiblingOf(t *testing.T) {
	a := KeyAll.With(Gender, 0).With(Age, 0).With(State, 3)
	b := a.With(Gender, 1)
	attr, ok := a.SiblingOf(b)
	if !ok || attr != Gender {
		t.Fatalf("SiblingOf = %v, %v; want Gender, true", attr, ok)
	}
	if _, ok := a.SiblingOf(a); ok {
		t.Error("a key is not its own sibling")
	}
	c := a.With(Gender, Wildcard)
	if _, ok := a.SiblingOf(c); ok {
		t.Error("different wildcard masks cannot be siblings")
	}
	d := b.With(Age, 1)
	if _, ok := a.SiblingOf(d); ok {
		t.Error("two differing values cannot be siblings")
	}
}

func TestSiblingSymmetryProperty(t *testing.T) {
	mk := func(g, ag, st int8) Key {
		return KeyAll.
			With(Gender, int16(abs8(g))%2).
			With(Age, int16(abs8(ag))%7).
			With(State, int16(abs8(st))%51)
	}
	f := func(g1, a1, s1, g2, a2, s2 int8) bool {
		ka, kb := mk(g1, a1, s1), mk(g2, a2, s2)
		aAttr, aOK := ka.SiblingOf(kb)
		bAttr, bOK := kb.SiblingOf(ka)
		return aOK == bOK && (!aOK || aAttr == bAttr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs8(x int8) int16 {
	v := int16(x)
	if v < 0 {
		return -v
	}
	return v
}

func TestKeyStringAndPhrase(t *testing.T) {
	k := KeyAll.With(Gender, int16(model.Female)).
		With(Age, int16(model.AgeUnder18)).
		With(Occupation, 10).
		With(State, StateIndex("NY"))
	s := k.String()
	want := "gender=female ∧ age=under 18 ∧ occupation=K-12 student ∧ state=NY"
	if s != want {
		t.Errorf("String() = %q, want %q", s, want)
	}
	p := k.Phrase()
	wantP := "female under-18 K-12 student reviewers from New York"
	if p != wantP {
		t.Errorf("Phrase() = %q, want %q", p, wantP)
	}
	if KeyAll.String() != "⟨all⟩" {
		t.Errorf("apex String() = %q", KeyAll.String())
	}
	if KeyAll.Phrase() != "reviewers" {
		t.Errorf("apex Phrase() = %q", KeyAll.Phrase())
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	k, err := ParseKey("gender=F,age=under 18,occupation=K-12 student,state=NY")
	if err != nil {
		t.Fatalf("ParseKey: %v", err)
	}
	want := KeyAll.With(Gender, int16(model.Female)).
		With(Age, int16(model.AgeUnder18)).
		With(Occupation, 10).
		With(State, StateIndex("NY"))
	if k != want {
		t.Errorf("ParseKey = %v, want %v", k, want)
	}
	if k2, err := ParseKey(""); err != nil || k2 != KeyAll {
		t.Errorf("ParseKey(\"\") = %v, %v", k2, err)
	}
	// MovieLens raw encodings.
	if k3, err := ParseKey("gender=M,age=18"); err != nil ||
		k3[Gender] != int16(model.Male) || k3[Age] != int16(model.Age18to24) {
		t.Errorf("raw encodings: %v, %v", k3, err)
	}
	for _, bad := range []string{"nope=3", "gender", "state=ZZ", "age=999"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) should fail", bad)
		}
	}
}

func TestKeyParamRoundTrip(t *testing.T) {
	keys := []Key{
		KeyAll,
		KeyAll.With(State, StateIndex("CA")),
		KeyAll.With(Gender, 0).With(Age, 3).With(Occupation, 12).With(State, StateIndex("TX")),
		KeyAll.With(Gender, 1).With(Age, 0),
	}
	for _, k := range keys {
		back, err := ParseKey(k.Param())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", k.Param(), err)
		}
		if back != k {
			t.Errorf("Param round trip: %v -> %q -> %v", k, k.Param(), back)
		}
	}
}

func TestStateIndexRoundTrip(t *testing.T) {
	for _, code := range []string{"CA", "NY", "TX", "DC"} {
		i := StateIndex(code)
		if i < 0 {
			t.Fatalf("StateIndex(%s) < 0", code)
		}
		if StateCode(i) != code {
			t.Errorf("round trip %s -> %d -> %s", code, i, StateCode(i))
		}
	}
	if StateIndex("ZZ") != -1 {
		t.Error("unknown state should map to -1")
	}
	if StateCode(-1) != "??" || StateCode(999) != "??" {
		t.Error("out-of-range StateCode should be ??")
	}
}

func TestAggMergeProperty(t *testing.T) {
	f := func(scores []uint8) bool {
		var whole, left, right Agg
		for i, s := range scores {
			sc := int8(1 + s%5)
			whole.Add(sc)
			if i%2 == 0 {
				left.Add(sc)
			} else {
				right.Add(sc)
			}
		}
		merged := left
		merged.Merge(right)
		return merged == whole
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggMoments(t *testing.T) {
	var a Agg
	for _, s := range []int8{1, 2, 3, 4, 5} {
		a.Add(s)
	}
	if a.Mean() != 3 {
		t.Errorf("Mean = %f", a.Mean())
	}
	if math.Abs(a.Variance()-2.0) > 1e-12 {
		t.Errorf("Variance = %f, want 2", a.Variance())
	}
	if math.Abs(a.Std()-math.Sqrt2) > 1e-12 {
		t.Errorf("Std = %f, want sqrt(2)", a.Std())
	}
	var empty Agg
	if empty.Mean() != 0 || empty.Variance() != 0 || empty.Std() != 0 {
		t.Error("empty aggregate moments must be zero")
	}
}

func TestBuildAgainstBruteForce(t *testing.T) {
	tuples := randomTuples(500, 7)
	cfg := Config{RequireState: true, MinSupport: 1, MaxAVPairs: 0, SkipApex: false}
	c := Build(tuples, cfg)
	if c.Len() == 0 {
		t.Fatal("no groups built")
	}
	for gi := range c.Groups {
		g := &c.Groups[gi]
		var want Agg
		members := map[int32]bool{}
		for ti := range tuples {
			if g.Key.Matches(tuples[ti].Vals) {
				want.Add(tuples[ti].Score)
				members[int32(ti)] = true
			}
		}
		if g.Agg != want {
			t.Fatalf("group %v agg = %+v, brute force = %+v", g.Key, g.Agg, want)
		}
		if len(g.Members) != len(members) {
			t.Fatalf("group %v members = %d, brute force = %d", g.Key, len(g.Members), len(members))
		}
		for _, m := range g.Members {
			if !members[m] {
				t.Fatalf("group %v contains non-matching tuple %d", g.Key, m)
			}
		}
	}
}

func TestBuildRequireState(t *testing.T) {
	tuples := randomTuples(200, 3)
	c := Build(tuples, Config{RequireState: true, MinSupport: 1})
	for i := range c.Groups {
		if !c.Groups[i].Key.Has(State) {
			t.Fatalf("geo-anchored cube produced stateless group %v", c.Groups[i].Key)
		}
	}
	free := Build(tuples, Config{RequireState: false, MinSupport: 1})
	foundStateless := false
	for i := range free.Groups {
		if !free.Groups[i].Key.Has(State) {
			foundStateless = true
			break
		}
	}
	if !foundStateless {
		t.Error("free cube should contain stateless groups")
	}
	if free.Len() <= c.Len() {
		t.Errorf("free cube (%d) should be larger than geo-anchored (%d)", free.Len(), c.Len())
	}
}

func TestBuildMinSupportPruning(t *testing.T) {
	tuples := randomTuples(300, 11)
	c := Build(tuples, Config{RequireState: true, MinSupport: 10})
	for i := range c.Groups {
		if c.Groups[i].Support() < 10 {
			t.Fatalf("group %v support %d below MinSupport", c.Groups[i].Key, c.Groups[i].Support())
		}
	}
}

func TestBuildMaxAVPairs(t *testing.T) {
	tuples := randomTuples(300, 13)
	c := Build(tuples, Config{RequireState: true, MinSupport: 1, MaxAVPairs: 2})
	for i := range c.Groups {
		if n := c.Groups[i].Key.NumConstrained(); n > 2 {
			t.Fatalf("group %v has %d AV pairs, cap is 2", c.Groups[i].Key, n)
		}
	}
}

func TestBuildSkipApex(t *testing.T) {
	tuples := randomTuples(100, 17)
	c := Build(tuples, Config{RequireState: false, MinSupport: 1, SkipApex: true})
	if _, ok := c.Group(KeyAll); ok {
		t.Error("apex present despite SkipApex")
	}
	c2 := Build(tuples, Config{RequireState: false, MinSupport: 1, SkipApex: false})
	g, ok := c2.Group(KeyAll)
	if !ok {
		t.Fatal("apex missing")
	}
	if g.Support() != len(tuples) {
		t.Errorf("apex support = %d, want %d", g.Support(), len(tuples))
	}
}

func TestBuildSkipsUnresolvedStates(t *testing.T) {
	tuples := randomTuples(50, 19)
	tuples[0].Vals[State] = Wildcard
	c := Build(tuples, Config{RequireState: true, MinSupport: 1})
	for i := range c.Groups {
		for _, m := range c.Groups[i].Members {
			if m == 0 {
				t.Fatal("tuple with unresolved state included in geo-anchored group")
			}
		}
	}
}

func TestBuildDeterministicOrder(t *testing.T) {
	tuples := randomTuples(400, 23)
	a := Build(tuples, DefaultConfig())
	b := Build(tuples, DefaultConfig())
	if a.Len() != b.Len() {
		t.Fatal("non-deterministic group count")
	}
	for i := range a.Groups {
		if a.Groups[i].Key != b.Groups[i].Key {
			t.Fatalf("order differs at %d: %v vs %v", i, a.Groups[i].Key, b.Groups[i].Key)
		}
	}
	for i := 1; i < a.Len(); i++ {
		if a.Groups[i].Support() > a.Groups[i-1].Support() {
			t.Fatal("groups not sorted by support descending")
		}
	}
}

func TestCubeSiblings(t *testing.T) {
	tuples := randomTuples(600, 29)
	c := Build(tuples, Config{RequireState: true, MinSupport: 5, MaxAVPairs: 2})
	sibs := c.Siblings()
	if len(sibs) != c.Len() {
		t.Fatalf("Siblings() length %d, want %d", len(sibs), c.Len())
	}
	// Cross-check against the pairwise predicate.
	for i := range c.Groups {
		want := map[int]bool{}
		for j := range c.Groups {
			if i == j {
				continue
			}
			if _, ok := c.Groups[i].Key.SiblingOf(c.Groups[j].Key); ok {
				want[j] = true
			}
		}
		if len(sibs[i]) != len(want) {
			t.Fatalf("group %d sibling count = %d, brute force = %d", i, len(sibs[i]), len(want))
		}
		for _, j := range sibs[i] {
			if !want[j] {
				t.Fatalf("group %d lists non-sibling %d", i, j)
			}
		}
	}
}

func TestGroupMAD(t *testing.T) {
	tuples := []Tuple{
		{Vals: [NumAttrs]int16{0, 0, 0, 1}, Score: 1},
		{Vals: [NumAttrs]int16{0, 0, 0, 1}, Score: 5},
	}
	c := Build(tuples, Config{RequireState: true, MinSupport: 1, MaxAVPairs: 1})
	g, ok := c.Group(KeyAll.With(State, 1))
	if !ok {
		t.Fatal("state group missing")
	}
	if mad := g.MAD(tuples); mad != 2 {
		t.Errorf("MAD = %f, want 2 (scores 1 and 5 around mean 3)", mad)
	}
}

func TestJoinRatingAndResolveUser(t *testing.T) {
	u := model.User{ID: 7, Gender: model.Female, Age: model.Age25to34, Occupation: 12, Zip: "94110"}
	ResolveUser(&u)
	if u.State != "CA" || u.City != "San Francisco" {
		t.Fatalf("ResolveUser: %+v", u)
	}
	r := model.Rating{UserID: 7, ItemID: 3, Score: 4, Unix: 978300000}
	tup := JoinRating(r, &u)
	if tup.Vals[Gender] != int16(model.Female) || tup.Vals[Age] != int16(model.Age25to34) ||
		tup.Vals[Occupation] != 12 || StateCode(tup.Vals[State]) != "CA" {
		t.Errorf("JoinRating vals = %v", tup.Vals)
	}
	if tup.Score != 4 || CityName(tup.Vals[City]) != "San Francisco" || tup.UserID != 7 || tup.ItemID != 3 {
		t.Errorf("JoinRating = %+v", tup)
	}
	bad := model.User{ID: 8, Zip: "00000"}
	ResolveUser(&bad)
	tup2 := JoinRating(model.Rating{UserID: 8, ItemID: 1, Score: 3}, &bad)
	if tup2.Vals[State] != Wildcard {
		t.Errorf("unresolvable zip should yield Wildcard state, got %d", tup2.Vals[State])
	}
}

func TestParseAttr(t *testing.T) {
	for a := 0; a < NumAttrs; a++ {
		got, err := ParseAttr(Attr(a).String())
		if err != nil || got != Attr(a) {
			t.Errorf("ParseAttr(%q) = %v, %v", Attr(a).String(), got, err)
		}
	}
	if _, err := ParseAttr("bogus"); err == nil {
		t.Error("ParseAttr(bogus) should fail")
	}
}

func TestCityVocabularyUnique(t *testing.T) {
	if Cardinality(City) < 100 {
		t.Fatalf("city vocabulary suspiciously small: %d", Cardinality(City))
	}
	seen := map[string]bool{}
	for i := 0; i < Cardinality(City); i++ {
		name := CityName(int16(i))
		if name == "??" || name == "" {
			t.Fatalf("city %d has no name", i)
		}
		if seen[name] {
			t.Fatalf("duplicate city name %q — the index would be ambiguous", name)
		}
		seen[name] = true
		if CityIndex(name) != int16(i) {
			t.Fatalf("city round trip failed for %q", name)
		}
	}
	if CityIndex("Atlantis") != -1 {
		t.Error("unknown city should map to -1")
	}
	if CityName(-1) != "??" {
		t.Error("invalid index should render ??")
	}
}

// cityTuples builds tuples inside one state with two cities and planted
// per-city means.
func cityTuples(n int) []Tuple {
	la, sf := CityIndex("Los Angeles"), CityIndex("San Francisco")
	ca := StateIndex("CA")
	tuples := make([]Tuple, n)
	for i := range tuples {
		var tp Tuple
		tp.Vals[Gender] = int16(i % 2)
		tp.Vals[Age] = int16(i % 3)
		tp.Vals[Occupation] = int16(i % 4)
		tp.Vals[State] = ca
		if i%2 == 0 {
			tp.Vals[City] = la
			tp.Score = 5
		} else {
			tp.Vals[City] = sf
			tp.Score = 2
		}
		tp.UserID = int32(i + 1)
		tp.Unix = 1_000_000 + int64(i)
		tuples[i] = tp
	}
	return tuples
}

func TestBuildWithCityDisabledIgnoresCity(t *testing.T) {
	tuples := cityTuples(100)
	c := Build(tuples, Config{RequireState: true, MinSupport: 1, MaxAVPairs: 3, SkipApex: true})
	for i := range c.Groups {
		if c.Groups[i].Key.Has(City) {
			t.Fatalf("city condition leaked into %v with EnableCity=false", c.Groups[i].Key)
		}
	}
}

func TestBuildRequireCity(t *testing.T) {
	tuples := cityTuples(100)
	c := Build(tuples, Config{RequireCity: true, MinSupport: 1, MaxAVPairs: 3, SkipApex: true})
	if c.Len() == 0 {
		t.Fatal("no city-anchored groups")
	}
	for i := range c.Groups {
		if !c.Groups[i].Key.Has(City) {
			t.Fatalf("group %v lacks the mandatory city condition", c.Groups[i].Key)
		}
	}
	la, ok := c.Group(KeyAll.With(City, CityIndex("Los Angeles")))
	if !ok {
		t.Fatal("LA group missing")
	}
	if la.Support() != 50 || la.Mean() != 5 {
		t.Errorf("LA group = %+v", la.Agg)
	}
	sf, ok := c.Group(KeyAll.With(City, CityIndex("San Francisco")))
	if !ok || sf.Mean() != 2 {
		t.Errorf("SF group wrong: %v", sf)
	}
}

func TestBuildEnableCityAgainstBruteForce(t *testing.T) {
	tuples := cityTuples(80)
	c := Build(tuples, Config{EnableCity: true, MinSupport: 1, MaxAVPairs: 2, SkipApex: true})
	foundCityCell := false
	for gi := range c.Groups {
		g := &c.Groups[gi]
		if g.Key.Has(City) {
			foundCityCell = true
		}
		var want Agg
		for ti := range tuples {
			if g.Key.Matches(tuples[ti].Vals) {
				want.Add(tuples[ti].Score)
			}
		}
		if g.Agg != want {
			t.Fatalf("group %v agg %+v, brute force %+v", g.Key, g.Agg, want)
		}
	}
	if !foundCityCell {
		t.Error("EnableCity produced no city cells")
	}
}

func TestPhraseWithCity(t *testing.T) {
	k := KeyAll.With(Gender, 0).
		With(State, StateIndex("CA")).
		With(City, CityIndex("Los Angeles"))
	if got := k.Phrase(); got != "male reviewers from Los Angeles, CA" {
		t.Errorf("Phrase = %q", got)
	}
	cityOnly := KeyAll.With(City, CityIndex("Chicago"))
	if got := cityOnly.Phrase(); got != "reviewers from Chicago" {
		t.Errorf("Phrase = %q", got)
	}
}

func TestParseKeyWithCity(t *testing.T) {
	k, err := ParseKey("state=CA,city=Los Angeles")
	if err != nil {
		t.Fatalf("ParseKey: %v", err)
	}
	if CityName(k[City]) != "Los Angeles" || StateCode(k[State]) != "CA" {
		t.Errorf("parsed %v", k)
	}
	back, err := ParseKey(k.Param())
	if err != nil || back != k {
		t.Errorf("Param round trip: %v, %v", back, err)
	}
	if _, err := ParseKey("city=Atlantis"); err == nil {
		t.Error("unknown city accepted")
	}
}
