package cube

import (
	"sync"
	"testing"
)

func TestMemberBitsMatchMemberLists(t *testing.T) {
	c := Build(randomTuples(1500, 61), Config{RequireState: true, MinSupport: 3, MaxAVPairs: 3, SkipApex: true})
	bits := c.MemberBits()
	if len(bits) != c.Len() {
		t.Fatalf("bitsets = %d, groups = %d", len(bits), c.Len())
	}
	words := BitsetWords(len(c.Tuples))
	sawDense, sawSparse := false, false
	for gi := range c.Groups {
		support := len(c.Groups[gi].Members)
		if support < words {
			// Sparse group: below the dense cut, no bitset materialized.
			sawSparse = true
			if bits[gi] != nil {
				t.Fatalf("group %d (support %d < %d words) has a dense bitset", gi, support, words)
			}
			continue
		}
		sawDense = true
		if len(bits[gi]) != words {
			t.Fatalf("group %d bitset has %d words, want %d", gi, len(bits[gi]), words)
		}
		if got := PopCount(bits[gi]); got != support {
			t.Fatalf("group %d popcount %d != member count %d", gi, got, support)
		}
		for _, ti := range c.Groups[gi].Members {
			if bits[gi][ti>>6]&(1<<(uint(ti)&63)) == 0 {
				t.Fatalf("group %d member %d not set in bitset", gi, ti)
			}
		}
	}
	if !sawDense || !sawSparse {
		t.Fatalf("fixture should exercise both sides of the dense cut (dense=%v sparse=%v)", sawDense, sawSparse)
	}
}

func TestMemberBitsCachedOnce(t *testing.T) {
	c := Build(randomTuples(500, 67), DefaultConfig())
	before := c.SizeBytes()
	a := c.MemberBits()
	mid := c.SizeBytes()
	b := c.MemberBits()
	if len(a) > 0 && &a[0] != &b[0] {
		t.Fatal("MemberBits rebuilt instead of returning the cached table")
	}
	if mid <= before {
		t.Errorf("SizeBytes did not grow after bitset build: %d -> %d", before, mid)
	}
	s1 := c.Siblings()
	after := c.SizeBytes()
	s2 := c.Siblings()
	if len(s1) > 0 && &s1[0] != &s2[0] {
		t.Fatal("Siblings rebuilt instead of returning the memoized table")
	}
	if after <= mid {
		t.Errorf("SizeBytes did not grow after sibling build: %d -> %d", mid, after)
	}
}

// TestLazyCachesConcurrent hammers the lazily built caches from many
// goroutines; run under -race this pins the sync.Once + atomic accounting
// against concurrent first use (the plan cache shares cubes across
// requests).
func TestLazyCachesConcurrent(t *testing.T) {
	c := Build(randomTuples(2000, 71), DefaultConfig())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bits := c.MemberBits()
			sibs := c.Siblings()
			if len(bits) != c.Len() || len(sibs) != c.Len() {
				t.Errorf("bad cache sizes: %d bits, %d sibs", len(bits), len(sibs))
			}
			if c.SizeBytes() <= 0 {
				t.Error("non-positive SizeBytes")
			}
		}()
	}
	wg.Wait()
}

func TestBitsetOps(t *testing.T) {
	a := []uint64{0b1011, 1 << 63}
	b := []uint64{0b0110, 0}
	if got := PopCount(a); got != 4 {
		t.Errorf("PopCount = %d, want 4", got)
	}
	if got := AndNotCount(a, b); got != 3 { // bits 0, 3, 127
		t.Errorf("AndNotCount = %d, want 3", got)
	}
	dst := make([]uint64, 2)
	OrInto(dst, a)
	OrInto(dst, b)
	if dst[0] != 0b1111 || dst[1] != 1<<63 {
		t.Errorf("OrInto = %b %b", dst[0], dst[1])
	}
	OrInto(nil, nil) // zero-length inputs must be no-ops
	if AndNotCount(nil, nil) != 0 || PopCount(nil) != 0 {
		t.Error("empty bitset ops should be zero")
	}
	if BitsetWords(0) != 0 || BitsetWords(1) != 1 || BitsetWords(64) != 1 || BitsetWords(65) != 2 {
		t.Errorf("BitsetWords wrong: %d %d %d %d",
			BitsetWords(0), BitsetWords(1), BitsetWords(64), BitsetWords(65))
	}
}
