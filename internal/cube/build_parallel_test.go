package cube

import (
	"reflect"
	"testing"
)

// TestBuildWithWorkersIsByteIdentical pins the sharded build's contract:
// for any worker count, the materialized cube — group order, keys,
// aggregates and member lists — equals the sequential scan exactly.
func TestBuildWithWorkersIsByteIdentical(t *testing.T) {
	tuples := randomTuples(5000, 77)
	// Plant a few wildcard states so the RequireState skip path is
	// exercised across partition boundaries too.
	for i := 0; i < len(tuples); i += 97 {
		tuples[i].Vals[State] = Wildcard
	}
	configs := []Config{
		{RequireState: true, MinSupport: 8, MaxAVPairs: 2, SkipApex: true},
		{RequireState: false, MinSupport: 5, MaxAVPairs: 3},
		{RequireState: false, MinSupport: 1}, // no pruning at all
	}
	for _, cfg := range configs {
		seq := buildWith(tuples, cfg, 1)
		for _, workers := range []int{2, 3, 4, 7, 16} {
			par := buildWith(tuples, cfg, workers)
			if len(par.Groups) != len(seq.Groups) {
				t.Fatalf("cfg %+v workers %d: %d groups vs %d sequential",
					cfg, workers, len(par.Groups), len(seq.Groups))
			}
			for i := range seq.Groups {
				if !reflect.DeepEqual(seq.Groups[i], par.Groups[i]) {
					t.Fatalf("cfg %+v workers %d: group %d differs:\nseq %+v\npar %+v",
						cfg, workers, i, seq.Groups[i], par.Groups[i])
				}
			}
		}
	}
}

// TestBuildWithMoreWorkersThanTuples covers the degenerate partitions
// (empty shards) the integer split produces.
func TestBuildWithMoreWorkersThanTuples(t *testing.T) {
	tuples := randomTuples(5, 3)
	cfg := Config{MinSupport: 1}
	seq := buildWith(tuples, cfg, 1)
	par := buildWith(tuples, cfg, 16)
	if !reflect.DeepEqual(seq.Groups, par.Groups) {
		t.Fatalf("tiny input diverged: %+v vs %+v", par.Groups, seq.Groups)
	}
}
