package cube

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/model"
)

// Tuple is a rating joined with its reviewer's demographic attributes — the
// unit the mining problems operate on. MapRat constructs the set of tuples
// R_I for the queried items and then builds cube cells over them.
//
// The reviewer's city is carried only as its descriptor value in
// Vals[City] (render it with CityName; an unresolved city is Wildcard),
// not as a string: the whole-log tuple slice and every cached plan hold
// millions of tuples, so a 16-byte string header per tuple would cost
// ~30% extra resident memory and make the plan cache's tuple-denominated
// budget dishonest.
type Tuple struct {
	Vals   [NumAttrs]int16 // reviewer attribute values (descriptor vocabulary)
	Score  int8            // rating score in [1,5]
	Unix   int64           // rating timestamp
	UserID int32
	ItemID int32
}

// JoinRating builds a Tuple from a rating and its reviewer. The reviewer's
// State/City fields must already be resolved (see geo.Locate); reviewers
// with unresolvable zips get a Wildcard state and never satisfy
// geo-anchored group descriptions.
func JoinRating(r model.Rating, u *model.User) Tuple {
	t := Tuple{
		Score:  int8(r.Score),
		Unix:   r.Unix,
		UserID: int32(r.UserID),
		ItemID: int32(r.ItemID),
	}
	t.Vals[Gender] = int16(u.Gender)
	t.Vals[Age] = int16(u.Age)
	t.Vals[Occupation] = int16(u.Occupation)
	t.Vals[State] = StateIndex(u.State)
	t.Vals[City] = CityIndex(u.City)
	return t
}

// ResolveUser fills a user's State and City from its zip code. Users whose
// zip does not resolve keep empty strings.
func ResolveUser(u *model.User) {
	if loc, ok := geo.Locate(u.Zip); ok {
		u.State = loc.State
		u.City = loc.City
	}
}

// Agg is the additive aggregate of a cube cell: enough to compute the
// count, mean and variance of the cell's scores in O(1), and to merge cells
// in O(1) — the property the paper's pre-computation relies on.
type Agg struct {
	Count int
	Sum   int64 // sum of scores
	SumSq int64 // sum of squared scores
}

// Add accumulates one score.
func (a *Agg) Add(score int8) {
	a.Count++
	a.Sum += int64(score)
	a.SumSq += int64(score) * int64(score)
}

// Merge accumulates another aggregate.
func (a *Agg) Merge(b Agg) {
	a.Count += b.Count
	a.Sum += b.Sum
	a.SumSq += b.SumSq
}

// Mean returns the average score (0 for an empty aggregate).
func (a Agg) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.Sum) / float64(a.Count)
}

// Variance returns the population variance of the scores. Floating-point
// cancellation is clamped at zero.
func (a Agg) Variance() float64 {
	if a.Count == 0 {
		return 0
	}
	m := a.Mean()
	v := float64(a.SumSq)/float64(a.Count) - m*m
	if v < 0 {
		v = 0
	}
	return v
}

// Std returns the population standard deviation of the scores.
func (a Agg) Std() float64 { return math.Sqrt(a.Variance()) }

// String renders the aggregate for logs: "n=12 μ=4.25 σ=0.43".
func (a Agg) String() string {
	return fmt.Sprintf("n=%d μ=%.2f σ=%.2f", a.Count, a.Mean(), a.Std())
}
