package cube

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestPackKeyRoundTripExhaustive walks the entire mixed-radix code space —
// every combination of every attribute's full vocabulary plus Wildcard in
// every position — and requires PackKey/UnpackKey to be mutually inverse.
func TestPackKeyRoundTripExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive code-space walk")
	}
	total := uint64(1)
	for a := 0; a < NumAttrs; a++ {
		total *= packRadix[a]
	}
	for code := uint64(0); code < total; code++ {
		k := UnpackKey(code)
		if got := PackKey(k); got != code {
			t.Fatalf("PackKey(UnpackKey(%d)) = %d", code, got)
		}
	}
	// And the reverse direction on the boundary keys of each attribute.
	for a := 0; a < NumAttrs; a++ {
		for _, v := range []int16{Wildcard, 0, int16(Cardinality(Attr(a)) - 1)} {
			k := KeyAll.With(Attr(a), v)
			if back := UnpackKey(PackKey(k)); back != k {
				t.Fatalf("UnpackKey(PackKey(%v)) = %v", k, back)
			}
		}
	}
}

// TestPackKeyOrderMatchesLessKey pins the property the packed build's sort
// relies on: ascending code order is exactly lessKey order.
func TestPackKeyOrderMatchesLessKey(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randKey := func() Key {
		var k Key
		for a := 0; a < NumAttrs; a++ {
			k[a] = int16(rng.Intn(Cardinality(Attr(a))+1)) - 1 // -1 = Wildcard
		}
		return k
	}
	for i := 0; i < 20000; i++ {
		a, b := randKey(), randKey()
		if lessKey(a, b) != (PackKey(a) < PackKey(b)) {
			t.Fatalf("order mismatch: %v (code %d) vs %v (code %d)",
				a, PackKey(a), b, PackKey(b))
		}
	}
}

// wildcardedTuples seeds a tuple set with unresolved states and cities so
// the packed build's missing-attribute skip paths are exercised.
func wildcardedTuples(n int, seed int64) []Tuple {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]Tuple, n)
	for i := range tuples {
		var t Tuple
		t.Vals[Gender] = int16(rng.Intn(Cardinality(Gender)))
		t.Vals[Age] = int16(rng.Intn(Cardinality(Age)))
		t.Vals[Occupation] = int16(rng.Intn(Cardinality(Occupation)))
		t.Vals[State] = int16(rng.Intn(6))
		t.Vals[City] = int16(rng.Intn(12))
		if i%17 == 0 {
			t.Vals[State] = Wildcard
		}
		if i%11 == 0 {
			t.Vals[City] = Wildcard
		}
		t.Score = int8(1 + rng.Intn(5))
		t.Unix = int64(978300000 + rng.Intn(1000000))
		t.UserID = int32(i + 1)
		t.ItemID = 1
		tuples[i] = t
	}
	return tuples
}

// TestBuildMatchesReference is the differential test behind the packed
// build: on seeded datasets — with city mining off, enabled, and required —
// Build must reproduce BuildReference group-for-group: identical order,
// keys, aggregates and member lists.
func TestBuildMatchesReference(t *testing.T) {
	datasets := map[string][]Tuple{
		"plain":      randomTuples(3000, 41),
		"wildcarded": wildcardedTuples(3000, 43),
		"tiny":       randomTuples(7, 47),
		"empty":      nil,
	}
	configs := []Config{
		{RequireState: true, MinSupport: 12, MaxAVPairs: 3, SkipApex: true}, // demo default
		{RequireState: false, MinSupport: 5, MaxAVPairs: 2, SkipApex: true}, // framework mode
		{RequireState: false, MinSupport: 1},                                // no pruning
		{RequireState: true, EnableCity: true, MinSupport: 3, MaxAVPairs: 3, SkipApex: true},
		{RequireCity: true, MinSupport: 3, MaxAVPairs: 4, SkipApex: true}, // drill-down mining
		{EnableCity: true, MinSupport: 2, MaxAVPairs: 1, SkipApex: false},
	}
	for name, tuples := range datasets {
		for _, cfg := range configs {
			ref := BuildReference(tuples, cfg)
			for _, workers := range []int{1, 4} {
				got := buildWith(tuples, cfg, workers)
				if got.Len() != ref.Len() {
					t.Fatalf("%s %+v workers=%d: %d groups, reference %d",
						name, cfg, workers, got.Len(), ref.Len())
				}
				for i := range ref.Groups {
					if !reflect.DeepEqual(got.Groups[i], ref.Groups[i]) {
						t.Fatalf("%s %+v workers=%d: group %d differs:\npacked    %+v\nreference %+v",
							name, cfg, workers, i, got.Groups[i], ref.Groups[i])
					}
				}
				for i := range ref.Groups {
					if j, ok := got.IndexOf(ref.Groups[i].Key); !ok || j != i {
						t.Fatalf("%s %+v: key index broken for %v", name, cfg, ref.Groups[i].Key)
					}
				}
			}
		}
	}
}

// TestPackTableGrowth forces the flat table through several rehashes and
// checks no cell is lost or double-counted.
func TestPackTableGrowth(t *testing.T) {
	tab := newPackTable(16)
	const n = 50000
	for i := 0; i < n; i++ {
		tab.add(uint64(i%9973)*3, int8(1+i%5))
	}
	if tab.n != 9973 {
		t.Fatalf("distinct cells = %d, want 9973", tab.n)
	}
	count := 0
	for i, k := range tab.keys {
		if k == 0 {
			continue
		}
		count += tab.aggs[i].Count
	}
	if count != n {
		t.Fatalf("total count across slots = %d, want %d", count, n)
	}
	if s := tab.slot(3 * 42); s < 0 || tab.keys[s] != 3*42+1 {
		t.Fatalf("slot lookup broken: %d", s)
	}
	if tab.slot(9973*3+1) != -1 {
		t.Fatal("absent code found")
	}
}

// TestMemberArenaIsolation verifies the shared member arena cannot leak
// writes across groups: every member list has capacity == length, so an
// append by a consumer reallocates instead of clobbering its neighbour.
func TestMemberArenaIsolation(t *testing.T) {
	c := Build(randomTuples(2000, 53), DefaultConfig())
	if c.Len() < 2 {
		t.Skip("need at least two groups")
	}
	for i := range c.Groups {
		m := c.Groups[i].Members
		if cap(m) != len(m) {
			t.Fatalf("group %d members cap %d != len %d — arena neighbour clobberable", i, cap(m), len(m))
		}
	}
	g0 := c.Groups[0].Members
	next := c.Groups[1].Members[0]
	_ = append(g0, -7) // must copy, not write into group 1's range
	if c.Groups[1].Members[0] != next {
		t.Fatal("append to one group's members overwrote the next group")
	}
}
