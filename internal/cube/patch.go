package cube

import "sort"

// Patch derives the cube for an extended tuple log without rebuilding it:
// all must be the cube's own tuple slice plus an appended batch, and from
// the length of the original log (all[:from] is what this cube was built
// over). It returns a new Cube over all; the receiver is never mutated,
// so readers holding it keep a consistent pre-append view — the store
// swaps the patched cube in under its write lock.
//
// Maintenance is incremental:
//
//   - the batch's cells are enumerated exactly as Build enumerates them
//     (shared buildCells path) and merged into existing groups via the
//     O(1) Agg merge plus a member append — member arenas are
//     capacity-capped, so the append copies the touched group's list and
//     leaves the shared arena intact;
//   - cells the original build pruned accumulate in a pending table; a
//     pending cell whose batch-delta support alone reaches MinSupport is
//     promoted by one exact full-log rescan, so a promoted group's
//     aggregate and member list are identical to what a fresh Build
//     would produce. Until the deltas alone re-earn the threshold a
//     pre-existing sub-threshold cell stays pruned — a deliberate,
//     conservative lag that keeps patching O(batch);
//   - materialized coverage bitsets extend lazily by whole words: each
//     dense row grows zero words to the new length and only the new
//     members' bits are set. Density classification is fixed at first
//     materialization; promoted groups evaluate through their member
//     lists. The sibling table is not carried — the successor rebuilds
//     it lazily if asked.
//
// Group positions are stable (existing indices keep their meaning for
// the carried bitsets) and promoted groups append at the end in
// ascending key order, so patching is deterministic; the build-time
// support-descending group order is a Build-only invariant that a
// patched cube intentionally trades for index stability.
//
// ok is false only when from does not match the receiver's log length —
// a caller bug; the receiver is returned unchanged.
func (c *Cube) Patch(all []Tuple, from int) (*Cube, bool) {
	if from != len(c.Tuples) || from > len(all) {
		return c, false
	}
	if from == len(all) {
		return c, true
	}
	cells := buildCells(all, c.Cfg, freeAttrs(c.Cfg), from, len(all))

	n2 := &Cube{
		Tuples: all,
		Cfg:    c.Cfg,
		Groups: make([]Group, len(c.Groups), len(c.Groups)+len(c.pending)),
		byKey:  make(map[Key]int, len(c.byKey)+4),
	}
	copy(n2.Groups, c.Groups)
	for k, i := range c.byKey {
		n2.byKey[k] = i
	}
	pending := make(map[Key]Agg, len(c.pending)+len(cells))
	for k, a := range c.pending {
		pending[k] = a
	}

	// Sorted key order keeps merge/promotion order — and therefore the
	// promoted groups' positions — independent of map iteration.
	keys := make([]Key, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })

	type touched struct {
		group   int
		members []int32
	}
	merged := make([]touched, 0, len(keys))
	for _, k := range keys {
		cl := cells[k]
		if gi, ok := n2.byKey[k]; ok {
			g := &n2.Groups[gi]
			g.Agg.Merge(cl.agg)
			// The member list is a capacity-capped arena slice, so this
			// append always copies; the original cube's arena is shared
			// untouched.
			g.Members = append(g.Members, cl.members...)
			merged = append(merged, touched{group: gi, members: cl.members})
			continue
		}
		p := pending[k]
		p.Merge(cl.agg)
		if p.Count < c.Cfg.MinSupport {
			pending[k] = p
			continue
		}
		// Promotion: one exact full-log rescan rebuilds the cell from
		// scratch, so the group carries its complete history — including
		// the base tuples the original build pruned it with.
		delete(pending, k)
		g := Group{Key: k}
		for ti := range all {
			if k.Matches(all[ti].Vals) {
				g.Agg.Add(all[ti].Score)
				g.Members = append(g.Members, int32(ti))
			}
		}
		n2.byKey[k] = len(n2.Groups)
		n2.Groups = append(n2.Groups, g)
	}
	if len(pending) > 0 {
		n2.pending = pending
	}

	// Carry materialized coverage bitsets forward, extended by whole
	// words. bitsDone flips only after a fully published table, so a
	// build racing this patch is simply not carried — the successor
	// rebuilds lazily on first use.
	if c.bitsDone.Load() {
		words := BitsetWords(len(all))
		bits := make([][]uint64, len(n2.Groups))
		var bytes int64
		for i, row := range c.bits {
			if row == nil {
				continue
			}
			nr := make([]uint64, words)
			copy(nr, row)
			bits[i] = nr
			bytes += int64(words) * 8
		}
		for _, t := range merged {
			row := bits[t.group]
			if row == nil {
				continue
			}
			for _, ti := range t.members {
				row[ti>>6] |= 1 << (uint(ti) & 63)
			}
		}
		n2.bitsOnce.Do(func() {
			n2.bits = bits
			n2.bitsBytes.Store(bytes + int64(len(bits))*24)
			n2.bitsDone.Store(true)
		})
	}
	return n2, true
}
