package cube

import (
	"reflect"
	"sort"
	"testing"
)

// groupSnapshot captures one group's identity-independent content: the
// aggregate and the sorted member set. Patched cubes keep base group
// positions stable and append promoted groups at the end, while Build
// orders by support — so differential comparisons go key-by-key.
type groupSnapshot struct {
	agg     Agg
	members []int32
}

func snapshotGroups(c *Cube) map[Key]groupSnapshot {
	out := make(map[Key]groupSnapshot, len(c.Groups))
	for i := range c.Groups {
		g := &c.Groups[i]
		m := append([]int32(nil), g.Members...)
		sort.Slice(m, func(a, b int) bool { return m[a] < m[b] })
		out[g.Key] = groupSnapshot{agg: g.Agg, members: m}
	}
	return out
}

// TestPatchEqualsBuildNoPruning: with MinSupport 1 there is no pending
// lag, so a patched cube's groups must be exactly a fresh build's.
func TestPatchEqualsBuildNoPruning(t *testing.T) {
	all := randomTuples(1200, 17)
	cfg := Config{RequireState: true, MinSupport: 1, MaxAVPairs: 2, SkipApex: true}
	base := Build(all[:900], cfg)
	patched, ok := base.Patch(all, 900)
	if !ok {
		t.Fatal("Patch rejected a matching from")
	}
	fresh := Build(all, cfg)
	got, want := snapshotGroups(patched), snapshotGroups(fresh)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("patched groups differ from fresh build: %d vs %d groups", len(got), len(want))
	}
	if len(patched.pending) != 0 {
		t.Fatalf("MinSupport 1 left %d pending cells", len(patched.pending))
	}
	// The receiver is untouched: copy-on-write.
	if len(base.Tuples) != 900 {
		t.Fatal("Patch mutated the receiver's tuple log")
	}
}

// TestPatchDifferentialWithPruning pins the documented conservative lag:
// every patched group matches the fresh build exactly, and any group the
// fresh build has that patching missed must have been pruned at base
// build time (its support re-earns the threshold only with base tuples
// the patch deliberately does not rescan).
func TestPatchDifferentialWithPruning(t *testing.T) {
	all := randomTuples(1500, 43)
	cfg := Config{RequireState: true, MinSupport: 4, MaxAVPairs: 3, SkipApex: true}
	base := Build(all[:1000], cfg)
	patched, ok := base.Patch(all, 1000)
	if !ok {
		t.Fatal("Patch rejected a matching from")
	}
	fresh := Build(all, cfg)
	got, want := snapshotGroups(patched), snapshotGroups(fresh)

	promoted := 0
	for k, g := range got {
		w, ok := want[k]
		if !ok {
			t.Fatalf("patched group %v absent from fresh build", k)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("group %v differs: patched %+v, fresh %+v", k, g, w)
		}
		if _, inBase := base.IndexOf(k); !inBase {
			promoted++
		}
	}
	for k := range want {
		if _, ok := got[k]; ok {
			continue
		}
		if _, inBase := base.IndexOf(k); inBase {
			t.Fatalf("fresh group %v was in the base cube but missing from the patch", k)
		}
	}
	if promoted == 0 {
		t.Fatal("fixture never exercised pending-cell promotion; grow the batch or lower MinSupport")
	}
	// Base group positions are stable under patching.
	for i := range base.Groups {
		if patched.Groups[i].Key != base.Groups[i].Key {
			t.Fatalf("group %d moved: %v -> %v", i, base.Groups[i].Key, patched.Groups[i].Key)
		}
	}
}

// TestPatchCarriesBitsets: bitsets materialized before the patch are
// extended, not rebuilt, and stay consistent with the member lists.
func TestPatchCarriesBitsets(t *testing.T) {
	all := randomTuples(1500, 61)
	cfg := Config{RequireState: true, MinSupport: 3, MaxAVPairs: 3, SkipApex: true}
	base := Build(all[:1200], cfg)
	base.MemberBits() // materialize pre-patch
	patched, ok := base.Patch(all, 1200)
	if !ok {
		t.Fatal("Patch failed")
	}
	bits := patched.MemberBits()
	if len(bits) != patched.Len() {
		t.Fatalf("bitsets = %d rows for %d groups", len(bits), patched.Len())
	}
	words := BitsetWords(len(all))
	for gi := range patched.Groups {
		row := bits[gi]
		if row == nil {
			continue
		}
		if len(row) != words {
			t.Fatalf("group %d bitset has %d words, want %d", gi, len(row), words)
		}
		if got := PopCount(row); got != len(patched.Groups[gi].Members) {
			t.Fatalf("group %d popcount %d != member count %d", gi, got, len(patched.Groups[gi].Members))
		}
		for _, ti := range patched.Groups[gi].Members {
			if row[ti>>6]&(1<<(uint(ti)&63)) == 0 {
				t.Fatalf("group %d member %d missing from carried bitset", gi, ti)
			}
		}
	}
	// The base cube's own bitsets are untouched (old word length).
	if got := len(base.MemberBits()); got != base.Len() {
		t.Fatalf("base bitset table resized: %d rows", got)
	}
}

// TestPatchPendingAccumulatesAcrossPatches: sub-threshold deltas carry
// from patch to patch and promote once they alone re-earn the threshold.
func TestPatchPendingAccumulatesAcrossPatches(t *testing.T) {
	mk := func(state int16, n int, from int) []Tuple {
		ts := make([]Tuple, n)
		for i := range ts {
			ts[i] = Tuple{Score: 4, Unix: 978300000 + int64(from+i), UserID: int32(from + i + 1), ItemID: 1}
			ts[i].Vals[State] = state
		}
		return ts
	}
	cfg := Config{RequireState: true, MinSupport: 4, MaxAVPairs: 0, SkipApex: true}
	// Base: state 1 well above threshold, state 2 absent.
	all := mk(1, 10, 0)
	c := Build(all, cfg)
	if _, ok := c.IndexOf(KeyAll.With(State, 2)); ok {
		t.Fatal("state 2 should not exist at base")
	}
	// First batch: 2 state-2 tuples — below threshold, stays pending.
	all = append(all, mk(2, 2, 10)...)
	c, ok := c.Patch(all, 10)
	if !ok {
		t.Fatal("patch 1 failed")
	}
	if _, found := c.IndexOf(KeyAll.With(State, 2)); found {
		t.Fatal("sub-threshold cell surfaced early")
	}
	// Second batch: 2 more — pending total 4 reaches MinSupport, promoted.
	all = append(all, mk(2, 2, 12)...)
	c, ok = c.Patch(all, 12)
	if !ok {
		t.Fatal("patch 2 failed")
	}
	gi, found := c.IndexOf(KeyAll.With(State, 2))
	if !found {
		t.Fatal("pending cell not promoted at threshold")
	}
	g := c.Groups[gi]
	if g.Agg.Count != 4 || len(g.Members) != 4 {
		t.Fatalf("promoted group = %+v, want all 4 state-2 tuples", g)
	}
}

func TestPatchRejectsMismatchedFrom(t *testing.T) {
	all := randomTuples(100, 7)
	c := Build(all[:80], Config{MinSupport: 1})
	if got, ok := c.Patch(all, 50); ok || got != c {
		t.Fatal("mismatched from accepted")
	}
	if got, ok := c.Patch(all[:70], 80); ok || got != c {
		t.Fatal("from beyond the log accepted")
	}
	if got, ok := c.Patch(all[:80], 80); !ok || got != c {
		t.Fatal("empty batch should return the receiver unchanged")
	}
}
