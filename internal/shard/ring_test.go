package shard

import "testing"

func TestRingEverySlotIsAFullPermutation(t *testing.T) {
	workers := []string{"w1:80", "w2:80", "w3:80", "w4:80"}
	ring := buildRing(workers, 64)
	if len(ring) != 64 {
		t.Fatalf("ring has %d slots, want 64", len(ring))
	}
	for s, order := range ring {
		seen := make(map[int]bool)
		for _, w := range order {
			if w < 0 || w >= len(workers) || seen[w] {
				t.Fatalf("slot %d order %v is not a permutation", s, order)
			}
			seen[w] = true
		}
		if len(seen) != len(workers) {
			t.Fatalf("slot %d order %v misses workers", s, order)
		}
	}
}

func TestRingSpreadsPrimaries(t *testing.T) {
	workers := []string{"w1:80", "w2:80", "w3:80"}
	ring := buildRing(workers, 64)
	counts := make([]int, len(workers))
	for _, order := range ring {
		counts[order[0]]++
	}
	for w, n := range counts {
		if n == 0 {
			t.Errorf("worker %d owns no slots as primary: %v", w, counts)
		}
	}
}

// Rendezvous stability: dropping one worker must only promote within
// each slot's existing order — every surviving worker keeps its
// relative rank, so only the dead worker's slots move.
func TestRingFailoverIsMinimal(t *testing.T) {
	all := []string{"w1:80", "w2:80", "w3:80"}
	ringAll := buildRing(all, 64)
	ringTwo := buildRing(all[:2], 64)
	for s := range ringAll {
		var survivors []int
		for _, w := range ringAll[s] {
			if w < 2 {
				survivors = append(survivors, w)
			}
		}
		for i, w := range ringTwo[s] {
			if survivors[i] != w {
				t.Fatalf("slot %d: removing w3 reordered survivors: %v vs %v", s, ringAll[s], ringTwo[s])
			}
		}
	}
}
