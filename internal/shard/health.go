package shard

import (
	"context"
	"time"

	"repro/internal/api"
)

// healthLoop walks the breakers on a fixed cadence and probes every
// worker whose circuit is not closed with the cheap /shard/info
// handshake. Queries already report outcomes for the workers they
// touch; the loop exists for the workers queries are AVOIDING — an open
// breaker would otherwise only be re-tested when routing happens to
// admit its half-open probe, so a recovered worker could sit unused
// behind an open circuit indefinitely on a quiet coordinator. The probe
// re-checks the fingerprint: a worker that came back serving different
// data (a redeploy against a new snapshot) must stay out of the ring,
// or merged plans would splice two datasets.
func (c *Coordinator) healthLoop(ctx context.Context) {
	want := api.FingerprintString(c.fp)
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for w := range c.clients {
			b := c.breakers[w]
			if b.current() == stateClosed {
				continue
			}
			if !b.Allow() {
				continue
			}
			info, err := c.shardInfo(ctx, w)
			if err != nil || info.Fingerprint != want {
				if ctx.Err() != nil {
					return
				}
				b.Failure()
				continue
			}
			b.Success()
		}
	}
}
