// Package shard is the scatter-gather serving tier: a Coordinator
// implements the full maprat.Miner surface over a fleet of
// maprat-server workers instead of a local store. Workers hold complete
// copies of one dataset (they shard query WORK, not data): the
// coordinator hash-partitions a query's resolved items into slots,
// routes each slot to a worker by rendezvous hashing, gathers the
// per-item tuple runs, splices them back into the exact single-node
// tuple order, and runs the unchanged RHE mining pipeline over the
// merged cube — so a distributed answer is byte-identical to a
// single-node one.
//
// The robustness machinery lives between those two halves: per-shard
// deadlines, capped-exponential retries with seeded jitter, hedged
// requests after a latency percentile, a per-worker circuit breaker fed
// by a health-check loop, one round of failover reassignment, and —
// when slots still cannot be gathered — graceful degradation: the
// coordinator mines what it has and labels the result with the missing
// shards rather than failing the query.
package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/api"
	"repro/internal/cube"
	"repro/internal/explore"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/pkg/client"
)

// Config parameterizes a Coordinator. The zero value of every field has
// a usable default (applied by New); Workers is the only required one.
type Config struct {
	// Workers are the worker base URLs, e.g. "http://10.0.0.1:8080".
	Workers []string
	// NumSlots is the consistent-hash slot-space size (default 64).
	// More slots spread load finer; the value must match across requests
	// but is internal to one coordinator.
	NumSlots int
	// Cube is the pre-adaptation candidate-cube config; zero value means
	// maprat.DefaultOptions().Cube.
	Cube cube.Config
	// Dataset selects the workers' mount ("" = their default).
	Dataset string

	// ShardTimeout bounds every single worker call (default 5s).
	ShardTimeout time.Duration
	// Attempts is the per-batch try budget, first try included
	// (default 2).
	Attempts int
	// Backoff is the base delay between retries, doubling per attempt,
	// capped at 2s, with seeded jitter (default 50ms).
	Backoff time.Duration
	// HedgeAfter is the floor for the hedging delay: a backup request is
	// launched when a batch's primary has been silent for
	// max(HedgeAfter, observed p95 batch latency). Negative disables
	// hedging; zero means the 30ms default.
	HedgeAfter time.Duration
	// BreakerFailures consecutive failures open a worker's circuit
	// (default 3); BreakerOpen is the open-state cooldown before a
	// half-open probe (default 2s).
	BreakerFailures int
	BreakerOpen     time.Duration
	// HealthInterval paces the background probe loop that walks
	// non-closed breakers (default 1s).
	HealthInterval time.Duration

	// PlanTuples is the coordinator's plan-cache budget in tuples
	// (default: the engine default; negative disables the tier).
	PlanTuples int
	// Seed feeds the jitter stream, so a test's retry timing is
	// reproducible (default 1).
	Seed int64
	// Transport overrides the workers' HTTP transport — the seam the
	// fault-injection tests use (nil = default transport).
	Transport http.RoundTripper
}

func (cfg Config) withDefaults() Config {
	if cfg.NumSlots <= 0 {
		cfg.NumSlots = 64
	}
	if cfg.Cube == (cube.Config{}) {
		cfg.Cube = maprat.DefaultOptions().Cube
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 5 * time.Second
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 2
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 30 * time.Millisecond
	}
	if cfg.BreakerFailures <= 0 {
		cfg.BreakerFailures = 3
	}
	if cfg.BreakerOpen <= 0 {
		cfg.BreakerOpen = 2 * time.Second
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.PlanTuples == 0 {
		cfg.PlanTuples = store.DefaultOptions().PlanCacheTuples
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Coordinator fans queries out over the worker fleet and mines merged
// results. It implements maprat.Miner (and the api transport's optional
// degraded-refine extension), so it mounts in a Registry exactly like a
// local engine.
type Coordinator struct {
	cfg      Config
	names    []string // display names, index-aligned with clients
	clients  []*client.Client
	breakers []*breaker
	ring     [][]int // slot -> worker indices, failover order

	fp     uint64
	dstats maprat.DatasetStats
	lo, hi int64

	plans *store.PlanCache
	mines atomic.Uint64

	// Scatter-gather counters (see Stats).
	gathers, degraded, failovers atomic.Uint64
	hedges, hedgeWins, retries   atomic.Uint64

	// jitter is the seeded backoff-jitter stream.
	jmu   sync.Mutex
	jrand *rand.Rand

	// lat is a ring of recent successful batch latencies feeding the
	// hedging percentile.
	latMu  sync.Mutex
	lat    []time.Duration
	latPos int
	latLen int

	cancel    context.CancelFunc
	closeOnce sync.Once
}

// New dials the workers, performs the boot handshake (at least one
// worker must answer /shard/info, and every worker that answers must
// report the same dataset fingerprint), and starts the health loop.
// Workers that are down at boot are admitted into the ring with an open
// breaker; the health loop folds them in when they recover.
func New(ctx context.Context, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("shard: no workers configured")
	}
	c := &Coordinator{
		cfg:   cfg,
		jrand: rng.New(cfg.Seed),
		lat:   make([]time.Duration, 64),
	}
	if cfg.PlanTuples > 0 {
		c.plans = store.NewPlanCache(cfg.PlanTuples)
	}
	hc := &http.Client{}
	if cfg.Transport != nil {
		hc = &http.Client{Transport: cfg.Transport}
	}
	for _, w := range cfg.Workers {
		// One attempt, no SDK backoff: the shard layer owns retries and
		// hedging, and double-retrying underneath it would blur the
		// breaker accounting.
		cl, err := client.New(w, client.WithHTTPClient(hc), client.WithRetry(1, 0))
		if err != nil {
			return nil, fmt.Errorf("shard: worker %q: %w", w, err)
		}
		c.clients = append(c.clients, cl)
		c.names = append(c.names, workerName(w))
		c.breakers = append(c.breakers, newBreaker(cfg.BreakerFailures, cfg.BreakerOpen))
	}
	c.ring = buildRing(c.names, cfg.NumSlots)

	if err := c.handshake(ctx); err != nil {
		return nil, err
	}

	// The health loop is tied to the coordinator's lifetime, not the boot
	// call's: a short boot deadline must not kill background probing.
	ictx, cancel := context.WithCancel(context.Background()) //maprat:allow(ctxflow) coordinator lifecycle root; Close cancels it
	c.cancel = cancel
	go c.healthLoop(ictx)
	return c, nil
}

// workerName derives the display/ring name of a worker: the URL host,
// which is also what fault-injection rules key on.
func workerName(raw string) string {
	if u, err := url.Parse(raw); err == nil && u.Host != "" {
		return u.Host
	}
	return raw
}

// handshake probes every worker once and records the fleet identity.
func (c *Coordinator) handshake(ctx context.Context) error {
	type boot struct {
		idx  int
		info *client.ShardInfoResponse
	}
	var reachable []boot
	var firstErr error
	for i := range c.clients {
		info, err := c.shardInfo(ctx, i)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("worker %s: %w", c.names[i], err)
			}
			// Start the outage bookkeeping now so routing avoids the
			// worker until the health loop sees it recover.
			for f := 0; f < c.cfg.BreakerFailures; f++ {
				c.breakers[i].Failure()
			}
			continue
		}
		reachable = append(reachable, boot{i, info})
	}
	if len(reachable) == 0 {
		return fmt.Errorf("shard: boot handshake: %w (%v)", maprat.ErrUnavailable, firstErr)
	}
	first := reachable[0]
	fp, err := parseFingerprint(first.info.Fingerprint)
	if err != nil {
		return fmt.Errorf("shard: worker %s: %w", c.names[first.idx], err)
	}
	for _, b := range reachable[1:] {
		if b.info.Fingerprint != first.info.Fingerprint {
			return fmt.Errorf("shard: fingerprint split-brain: worker %s serves %s, worker %s serves %s",
				c.names[first.idx], first.info.Fingerprint, c.names[b.idx], b.info.Fingerprint)
		}
	}
	c.fp = fp
	// MeanScore and the histogram are not part of the handshake; the
	// stats row carries the identity fields only.
	c.dstats = maprat.DatasetStats{
		Users:   first.info.Users,
		Items:   first.info.Items,
		Ratings: first.info.Ratings,
		MinUnix: first.info.MinUnix,
		MaxUnix: first.info.MaxUnix,
	}
	c.lo, c.hi = first.info.MinUnix, first.info.MaxUnix
	return nil
}

// shardInfo is one deadline-bounded identity probe.
func (c *Coordinator) shardInfo(ctx context.Context, w int) (*client.ShardInfoResponse, error) {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	return c.clients[w].ShardInfo(cctx)
}

func parseFingerprint(s string) (uint64, error) {
	var fp uint64
	if _, err := fmt.Sscanf(s, "%x", &fp); err != nil {
		return 0, fmt.Errorf("bad fingerprint %q: %w", s, err)
	}
	return fp, nil
}

// jitter draws from [0, max) on the seeded stream.
func (c *Coordinator) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	c.jmu.Lock()
	defer c.jmu.Unlock()
	return time.Duration(c.jrand.Int63n(int64(max)))
}

// observeLatency feeds the hedging percentile window.
func (c *Coordinator) observeLatency(d time.Duration) {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	c.lat[c.latPos] = d
	c.latPos = (c.latPos + 1) % len(c.lat)
	if c.latLen < len(c.lat) {
		c.latLen++
	}
}

// hedgeDelay is max(HedgeAfter, p95 of the recent batch latencies) — a
// fixed floor alone either hedges everything (too low) or nothing (too
// high) as the fleet's baseline drifts.
func (c *Coordinator) hedgeDelay() time.Duration {
	c.latMu.Lock()
	n := c.latLen
	window := append([]time.Duration(nil), c.lat[:n]...)
	c.latMu.Unlock()
	d := c.cfg.HedgeAfter
	if n == 0 {
		return d
	}
	sort.Slice(window, func(a, b int) bool { return window[a] < window[b] })
	if p95 := window[(n*95)/100]; p95 > d {
		d = p95
	}
	return d
}

// degradedPlan is the sentinel error a degraded gather rides through
// the plan cache: GetOrBuild never caches build errors, so wrapping the
// partial plan in one keeps it out of the cache — a later request must
// retry the missing shards rather than be served the partial result
// from cache after the fleet has recovered.
type degradedPlan struct {
	plan    *store.Plan
	missing []string
}

func (d *degradedPlan) Error() string {
	return fmt.Sprintf("shard: degraded plan (missing %v)", d.missing)
}

// buildPlan runs the distributed pre-mining pipeline: scatter-gather
// R_I, then rebuild the candidate cube locally exactly as a single-node
// engine would over the same tuples.
func (c *Coordinator) buildPlan(ctx context.Context, q maprat.Query, base cube.Config) (*store.Plan, []string, error) {
	out, err := c.gather(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	if len(out.items) == 0 {
		if len(out.missing) > 0 {
			// The surviving shards saw nothing, but the missing ones own
			// unknown items: "no items" cannot be distinguished from "the
			// items were on the dead shards".
			return nil, nil, fmt.Errorf("shard: %d worker(s) unreachable and no items from the rest: %w", len(out.missing), maprat.ErrUnavailable)
		}
		return nil, nil, maprat.ErrNoItems
	}
	if len(out.tuples) == 0 {
		if len(out.missing) > 0 {
			return nil, nil, fmt.Errorf("shard: no ratings from surviving workers (missing %v): %w", out.missing, maprat.ErrUnavailable)
		}
		return nil, nil, maprat.ErrNoRatings
	}
	p := &store.Plan{
		ItemIDs: out.items,
		Tuples:  out.tuples,
		Cube:    cube.Build(out.tuples, maprat.AdaptCubeConfig(base, len(out.tuples))),
	}
	for i := range out.tuples {
		p.Overall.Add(out.tuples[i].Score)
	}
	return p, out.missing, nil
}

// planFor fetches the plan for (q, base) from the coordinator's plan
// cache, gathering and building on a miss. Complete plans are cached
// under the same key a local engine would use; degraded plans are
// returned but never cached (see degradedPlan).
func (c *Coordinator) planFor(ctx context.Context, q maprat.Query, base cube.Config, bypass bool) (*store.Plan, []string, error) {
	if c.plans == nil || bypass {
		return c.buildPlan(ctx, q, base)
	}
	p, _, err := c.plans.GetOrBuild(ctx, maprat.PlanKey(q, base), func() (*store.Plan, error) {
		bp, missing, err := c.buildPlan(ctx, q, base)
		if err != nil {
			return nil, err
		}
		if len(missing) > 0 {
			return nil, &degradedPlan{plan: bp, missing: missing}
		}
		return bp, nil
	})
	if err != nil {
		var dp *degradedPlan
		if errors.As(err, &dp) {
			return dp.plan, dp.missing, nil
		}
		return nil, nil, err
	}
	return p, nil, nil //maprat:allow(clonecheck) store.Plan is immutable by contract; consumers only read, so the shared pointer is safe
}

// ExplainContext implements maprat.Miner over the gathered plan. The
// mining stage is maprat.MinePlan — the same function the local engine
// runs — which is what makes a complete distributed result
// byte-identical to the single-node one.
func (c *Coordinator) ExplainContext(ctx context.Context, req maprat.ExplainRequest) (*maprat.Explanation, error) {
	start := time.Now()
	p, missing, err := c.planFor(ctx, req.Query, c.baseCube(req.CubeConfig), req.DisableCache)
	if err != nil {
		return nil, err
	}
	ex, err := maprat.MinePlan(ctx, p, req)
	if err != nil {
		return nil, err
	}
	ex.Degraded = missing
	ex.Elapsed = time.Since(start)
	c.mines.Add(1)
	return ex, nil
}

func (c *Coordinator) baseCube(override *cube.Config) cube.Config {
	if override != nil {
		return *override
	}
	return c.cfg.Cube
}

// ExploreFullContext implements maprat.Miner.
func (c *Coordinator) ExploreFullContext(ctx context.Context, q maprat.Query, key maprat.Key, buckets, refineLimit int) (*maprat.GroupExploration, error) {
	p, missing, err := c.planFor(ctx, q, maprat.GroupCubeConfig(c.cfg.Cube, key), false)
	if err != nil {
		return nil, err
	}
	ge, err := maprat.ExplorePlan(ctx, p, q, key, buckets, refineLimit)
	if err != nil {
		return nil, err
	}
	ge.Degraded = missing
	return ge, nil
}

// RefineGroupContext implements maprat.Miner.
func (c *Coordinator) RefineGroupContext(ctx context.Context, q maprat.Query, key maprat.Key, limit int) ([]maprat.Refinement, error) {
	refs, _, err := c.RefineGroupDegraded(ctx, q, key, limit)
	return refs, err
}

// RefineGroupDegraded is the degraded-aware refine the api transport
// dispatches to (its return shape has room for the missing-shard list,
// which RefineGroupContext's does not).
func (c *Coordinator) RefineGroupDegraded(ctx context.Context, q maprat.Query, key maprat.Key, limit int) ([]maprat.Refinement, []string, error) {
	p, missing, err := c.planFor(ctx, q, maprat.GroupCubeConfig(c.cfg.Cube, key), false)
	if err != nil {
		return nil, nil, err
	}
	refs, err := maprat.RefinePlan(p, q, key, limit)
	if err != nil {
		return nil, nil, err
	}
	return refs, missing, nil
}

// DrillMineContext implements maprat.Miner.
func (c *Coordinator) DrillMineContext(ctx context.Context, q maprat.Query, parent maprat.Key, task maprat.Task, s maprat.Settings) (*maprat.TaskResult, error) {
	p, missing, err := c.planFor(ctx, q, maprat.GroupCubeConfig(c.cfg.Cube, parent), false)
	if err != nil {
		return nil, err
	}
	tr, err := maprat.DrillPlan(ctx, p, q, parent, task, s)
	if err != nil {
		return nil, err
	}
	tr.Degraded = missing
	c.mines.Add(1)
	return tr, nil
}

// EvolutionContext implements maprat.Miner: the same yearly sweep the
// engine runs, each window answered by a (cached or gathered) plan.
func (c *Coordinator) EvolutionContext(ctx context.Context, req maprat.ExplainRequest) ([]maprat.EvolutionPoint, error) {
	lo, hi := c.lo, c.hi
	w := req.Query.Window
	if w.BoundedFrom() {
		lo = w.From
	}
	if w.BoundedTo() {
		hi = w.To
	}
	windows := explore.YearWindows(lo, hi)
	if len(windows) == 0 {
		return nil, fmt.Errorf("shard: empty time range")
	}
	out := make([]maprat.EvolutionPoint, 0, len(windows))
	for _, win := range windows {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		r := req
		r.Query.Window = win
		ex, err := c.ExplainContext(ctx, r)
		out = append(out, maprat.EvolutionPoint{Window: win, Explanation: ex, Err: err})
	}
	return out, nil
}

// BrowseStates implements maprat.Miner by proxying the whole-log
// choropleth from the first routable worker (any worker serves it: the
// browse overview is whole-log, not query-sharded). The additive
// aggregates are reconstructed from the wire's (mean, std, count) rows.
// Returns nil when no worker is reachable — the same "browse
// unavailable" signal a precompute-disabled engine gives.
func (c *Coordinator) BrowseStates() []maprat.StateOverview {
	for w := range c.clients {
		if !c.breakers[w].Routable() {
			continue
		}
		cctx, cancel := context.WithTimeout(context.Background(), c.cfg.ShardTimeout) //maprat:allow(ctxflow) Miner.BrowseStates has no ctx parameter (interface parity with Engine); the call is deadline-bounded
		resp, err := c.clients[w].Browse(cctx)
		cancel()
		if err != nil {
			continue
		}
		out := make([]maprat.StateOverview, 0, len(resp.States))
		for _, s := range resp.States {
			out = append(out, maprat.StateOverview{State: s.State, Agg: aggFromMoments(s.Count, s.Mean, s.Std)})
		}
		return out
	}
	return nil
}

// aggFromMoments inverts Agg.Mean/Std: Sum = mean·n, SumSq = (σ²+μ²)·n.
// Scores are integers so both round exactly for any genuine aggregate.
func aggFromMoments(count int, mean, std float64) cube.Agg {
	n := float64(count)
	return cube.Agg{
		Count: count,
		Sum:   int64(math.Round(mean * n)),
		SumSq: int64(math.Round((std*std + mean*mean) * n)),
	}
}

// TimeRange implements maprat.Miner from the handshake identity.
func (c *Coordinator) TimeRange() (int64, int64) { return c.lo, c.hi }

// Fingerprint implements maprat.Miner: the fleet-agreed dataset
// fingerprint, so coordinator ETags match single-node ones.
func (c *Coordinator) Fingerprint() uint64 { return c.fp }

// DatasetStats implements maprat.Miner (identity fields only —
// MeanScore and the histogram do not travel in the handshake).
func (c *Coordinator) DatasetStats() maprat.DatasetStats { return c.dstats }

// PlanStats implements maprat.Miner.
func (c *Coordinator) PlanStats() store.PlanStats {
	if c.plans != nil {
		return c.plans.Stats()
	}
	return store.PlanStats{}
}

// MineCount implements maprat.Miner.
func (c *Coordinator) MineCount() uint64 { return c.mines.Load() }

// Close implements maprat.Miner: stops the health loop. Idempotent.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(c.cancel)
	return nil
}

// ShardStats snapshots the scatter-gather counters for /statsz.
func (c *Coordinator) ShardStats() Stats {
	st := Stats{
		Slots:     c.cfg.NumSlots,
		Gathers:   c.gathers.Load(),
		Degraded:  c.degraded.Load(),
		Failovers: c.failovers.Load(),
		Hedges:    c.hedges.Load(),
		HedgeWins: c.hedgeWins.Load(),
		Retries:   c.retries.Load(),
	}
	for i, b := range c.breakers {
		row := b.snapshot()
		row.Name = c.names[i]
		st.Workers = append(st.Workers, row)
	}
	return st
}

// Compile-time checks: the full Miner surface plus the transport's
// optional degraded-refine extension.
var (
	_ maprat.Miner        = (*Coordinator)(nil)
	_ api.DegradedRefiner = (*Coordinator)(nil)
)
