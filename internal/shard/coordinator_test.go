package shard

import (
	"context"
	"errors"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/api"
	"repro/internal/fault"
)

// The suite shares one small dataset and one single-node reference
// engine; worker fleets are cheap httptest servers over that engine
// (workers hold full dataset copies, so sharing the engine matches the
// deployment model and keeps the suite fast).
var (
	engOnce sync.Once
	engMemo *maprat.Engine
	hdlMemo *api.Handler
)

func testEngine(t *testing.T) *maprat.Engine {
	t.Helper()
	engOnce.Do(func() {
		ds, err := maprat.Generate(maprat.SmallGenConfig())
		if err != nil {
			panic(err)
		}
		engMemo, err = maprat.Open(ds, nil)
		if err != nil {
			panic(err)
		}
		hdlMemo = api.New(engMemo, api.Config{})
	})
	return engMemo
}

// startWorkers brings up n workers serving the shared dataset and
// returns their base URLs and host names.
func startWorkers(t *testing.T, n int) (urls, hosts []string) {
	t.Helper()
	testEngine(t)
	for i := 0; i < n; i++ {
		ts := httptest.NewServer(hdlMemo)
		t.Cleanup(ts.Close)
		u, err := url.Parse(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		urls = append(urls, ts.URL)
		hosts = append(hosts, u.Host)
	}
	return urls, hosts
}

func testCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustParse(t *testing.T, s string) maprat.Query {
	t.Helper()
	q, err := testEngine(t).ParseQuery(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// normalize strips the result-neutral fields (timing, cache provenance)
// before a byte-identity comparison.
func normalize(ex *maprat.Explanation) *maprat.Explanation {
	out := ex.Clone()
	out.Elapsed = 0
	out.FromCache = false
	return out
}

// TestCoordinatorMatchesSingleNode is the determinism contract: all
// five pipelines, mined through a coordinator over 2 and 4 shards, must
// be identical to the single-node engine's results — same groups, same
// objective values, same byte representation after stripping timing.
func TestCoordinatorMatchesSingleNode(t *testing.T) {
	eng := testEngine(t)
	lo, hi := eng.TimeRange()
	queries := []maprat.Query{
		mustParse(t, "genre:Drama"),
		mustParse(t, `movie:"Toy Story"`),
	}
	// A windowed variant exercises the explicit window fields on the
	// gather wire.
	windowed := mustParse(t, "genre:Drama")
	windowed.Window = maprat.TimeWindow{From: lo + (hi-lo)/4, To: hi, HasFrom: true, HasTo: true}
	queries = append(queries, windowed)

	ctx := context.Background()
	for _, shards := range []int{2, 4} {
		urls, _ := startWorkers(t, shards)
		coord := testCoordinator(t, Config{Workers: urls, HedgeAfter: -1})
		for _, q := range queries {
			req := maprat.ExplainRequest{Query: q}

			want, err := eng.ExplainContext(ctx, req)
			if err != nil {
				t.Fatalf("%d shards, %s: single-node explain: %v", shards, q, err)
			}
			got, err := coord.ExplainContext(ctx, req)
			if err != nil {
				t.Fatalf("%d shards, %s: coordinator explain: %v", shards, q, err)
			}
			if len(got.Degraded) != 0 {
				t.Fatalf("%d shards, %s: healthy fleet answered degraded: %v", shards, q, got.Degraded)
			}
			if !reflect.DeepEqual(normalize(want), normalize(got)) {
				t.Errorf("%d shards, %s: explain diverged:\nsingle-node %+v\ncoordinator %+v", shards, q, normalize(want), normalize(got))
			}
			if coord.Fingerprint() != eng.Fingerprint() {
				t.Fatalf("fingerprint mismatch: %x vs %x", coord.Fingerprint(), eng.Fingerprint())
			}

			// The remaining pipelines hang off an explain group.
			if len(want.Results) == 0 || len(want.Results[0].Groups) == 0 {
				continue
			}
			key := want.Results[0].Groups[0].Key

			wantGE, err1 := eng.ExploreFullContext(ctx, q, key, 10, 5)
			gotGE, err2 := coord.ExploreFullContext(ctx, q, key, 10, 5)
			if err1 != nil || err2 != nil {
				t.Fatalf("%d shards, %s: explore: %v vs %v", shards, q, err1, err2)
			}
			if !reflect.DeepEqual(wantGE, gotGE) {
				t.Errorf("%d shards, %s: explore diverged", shards, q)
			}

			wantRefs, err1 := eng.RefineGroupContext(ctx, q, key, 3)
			gotRefs, err2 := coord.RefineGroupContext(ctx, q, key, 3)
			if err1 != nil || err2 != nil {
				t.Fatalf("%d shards, %s: refine: %v vs %v", shards, q, err1, err2)
			}
			if !reflect.DeepEqual(wantRefs, gotRefs) {
				t.Errorf("%d shards, %s: refine diverged", shards, q)
			}

			wantTR, err1 := eng.DrillMineContext(ctx, q, key, maprat.SimilarityMining, maprat.Settings{})
			gotTR, err2 := coord.DrillMineContext(ctx, q, key, maprat.SimilarityMining, maprat.Settings{})
			if err1 != nil || err2 != nil {
				t.Fatalf("%d shards, %s: drill: %v vs %v", shards, q, err1, err2)
			}
			if !reflect.DeepEqual(wantTR, gotTR) {
				t.Errorf("%d shards, %s: drill diverged", shards, q)
			}
		}

		// Evolution once per fleet size (it is the expensive sweep).
		req := maprat.ExplainRequest{Query: queries[0]}
		wantEvo, err1 := eng.EvolutionContext(ctx, req)
		gotEvo, err2 := coord.EvolutionContext(ctx, req)
		if err1 != nil || err2 != nil {
			t.Fatalf("%d shards: evolution: %v vs %v", shards, err1, err2)
		}
		if len(wantEvo) != len(gotEvo) {
			t.Fatalf("%d shards: evolution has %d points, want %d", shards, len(gotEvo), len(wantEvo))
		}
		for i := range wantEvo {
			w, g := wantEvo[i], gotEvo[i]
			if w.Window != g.Window || (w.Err == nil) != (g.Err == nil) {
				t.Errorf("%d shards: evolution point %d differs: %+v vs %+v", shards, i, w, g)
				continue
			}
			if w.Err == nil && !reflect.DeepEqual(normalize(w.Explanation), normalize(g.Explanation)) {
				t.Errorf("%d shards: evolution point %d explanation diverged", shards, i)
			}
		}

		// BrowseStates proxies the worker's whole-log choropleth; the
		// additive aggregates must reconstruct exactly.
		if want, got := eng.BrowseStates(), coord.BrowseStates(); !reflect.DeepEqual(want, got) {
			t.Errorf("%d shards: browse states diverged:\n%v\n%v", shards, want, got)
		}
	}
}

// chaosConfig is the fast-failing coordinator profile the fault tests
// use: one try per batch, immediate breaker trips, and a short
// per-worker deadline so a wedged worker cannot stall the suite.
func chaosConfig(urls []string, tr *fault.Transport) Config {
	return Config{
		Workers:         urls,
		Transport:       tr,
		ShardTimeout:    500 * time.Millisecond,
		Attempts:        1,
		Backoff:         5 * time.Millisecond,
		HedgeAfter:      -1,
		BreakerFailures: 1,
		BreakerOpen:     50 * time.Millisecond,
		HealthInterval:  20 * time.Millisecond,
		Seed:            1,
	}
}

// TestFailoverRecoversFromOneDeadWorker: a worker that drops every
// gather is routed around — the second round reassigns its slots and
// the result is complete and identical to single-node.
func TestFailoverRecoversFromOneDeadWorker(t *testing.T) {
	eng := testEngine(t)
	urls, hosts := startWorkers(t, 3)
	tr := fault.New(1, nil, fault.Rule{Host: hosts[0], Path: "/shard/gather", P: 1, Action: fault.Drop})
	coord := testCoordinator(t, chaosConfig(urls, tr))

	ctx := context.Background()
	req := maprat.ExplainRequest{Query: mustParse(t, "genre:Drama")}
	got, err := coord.ExplainContext(ctx, req)
	if err != nil {
		t.Fatalf("explain with one dead worker: %v", err)
	}
	if len(got.Degraded) != 0 {
		t.Fatalf("failover available but result degraded: %v", got.Degraded)
	}
	want, err := eng.ExplainContext(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(want), normalize(got)) {
		t.Error("failover result diverged from single-node")
	}
	st := coord.ShardStats()
	if st.Failovers == 0 {
		t.Errorf("no failovers counted: %+v", st)
	}
	if tr.Injected(fault.Drop) == 0 {
		t.Fatal("fault schedule never fired")
	}
}

// TestDegradedResultWhenFailoverExhausted: when the dead worker's slots
// cannot be recovered (the survivors fail the failover round too), the
// coordinator answers a partial result naming the missing shard instead
// of failing — and the partial plan is never cached, so a later request
// with a recovered fleet is complete again.
func TestDegradedResultWhenFailoverExhausted(t *testing.T) {
	eng := testEngine(t)
	urls, hosts := startWorkers(t, 3)
	// Worker 0 drops its first gather; workers 1 and 2 answer their
	// first gather and drop their second — so round 1 succeeds for them
	// and the failover round (their second request) fails. The windows
	// then close and the fleet is healthy for the recovery check below.
	tr := fault.New(1, nil,
		fault.Rule{Host: hosts[0], Path: "/shard/gather", To: 1, P: 1, Action: fault.Drop},
		fault.Rule{Host: hosts[1], Path: "/shard/gather", From: 1, To: 2, P: 1, Action: fault.Drop},
		fault.Rule{Host: hosts[2], Path: "/shard/gather", From: 1, To: 2, P: 1, Action: fault.Drop},
	)
	coord := testCoordinator(t, chaosConfig(urls, tr))

	ctx := context.Background()
	req := maprat.ExplainRequest{Query: mustParse(t, "genre:Drama")}
	got, err := coord.ExplainContext(ctx, req)
	if err != nil {
		t.Fatalf("degraded explain failed outright: %v", err)
	}
	if len(got.Degraded) != 1 || got.Degraded[0] != hosts[0] {
		t.Fatalf("Degraded = %v, want [%s]", got.Degraded, hosts[0])
	}
	if len(got.Results) == 0 {
		t.Fatal("degraded explanation mined no results")
	}
	full, err := eng.ExplainContext(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRatings >= full.NumRatings {
		t.Errorf("degraded result has %d ratings, full has %d — nothing was actually missing", got.NumRatings, full.NumRatings)
	}
	st := coord.ShardStats()
	if st.Degraded == 0 {
		t.Errorf("degraded gather not counted: %+v", st)
	}

	// Breaker lifecycle: worker 0 tripped open; the health loop's
	// /shard/info probes (unmatched by the fault rules) must walk it
	// open → half-open → closed.
	deadline := time.Now().Add(3 * time.Second)
	for {
		rows := coord.ShardStats().Workers
		allClosed := true
		for _, w := range rows {
			if w.State != "closed" {
				allClosed = false
			}
		}
		if allClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breakers never recovered: %+v", rows)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var w0 WorkerStats
	for _, w := range coord.ShardStats().Workers {
		if w.Name == hosts[0] {
			w0 = w
		}
	}
	if w0.Opened == 0 || w0.HalfOpened == 0 {
		t.Errorf("worker 0 breaker skipped the open/half-open cycle: %+v", w0)
	}

	// The fleet is healthy again (fault windows closed) and the partial
	// plan must not have been cached: the same query now completes.
	got2, err := coord.ExplainContext(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Degraded) != 0 {
		t.Fatalf("recovered fleet still degraded: %v", got2.Degraded)
	}
	if !reflect.DeepEqual(normalize(full), normalize(got2)) {
		t.Error("post-recovery result diverged from single-node")
	}
}

// TestHedgedRequestRescuesWedgedWorker: a worker that accepts
// connections and hangs is the case per-batch hedging exists for — the
// backup answers the batch and the wedged primary's cancellation is not
// charged to its breaker.
func TestHedgedRequestRescuesWedgedWorker(t *testing.T) {
	eng := testEngine(t)
	urls, hosts := startWorkers(t, 2)
	tr := fault.New(1, nil, fault.Rule{Host: hosts[0], Path: "/shard/gather", P: 1, Action: fault.Hang})
	cfg := chaosConfig(urls, tr)
	cfg.HedgeAfter = time.Millisecond
	cfg.ShardTimeout = 5 * time.Second // only hedging can save this batch quickly
	coord := testCoordinator(t, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req := maprat.ExplainRequest{Query: mustParse(t, "genre:Drama")}
	start := time.Now()
	got, err := coord.ExplainContext(ctx, req)
	if err != nil {
		t.Fatalf("hedged explain: %v", err)
	}
	if len(got.Degraded) != 0 {
		t.Fatalf("hedge available but result degraded: %v", got.Degraded)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Errorf("hedge did not cut the wedged wait: took %v", elapsed)
	}
	want, err := eng.ExplainContext(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(want), normalize(got)) {
		t.Error("hedged result diverged from single-node")
	}
	st := coord.ShardStats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Errorf("hedge counters not recorded: %+v", st)
	}
	for _, w := range st.Workers {
		if w.Name == hosts[0] && w.Failures != 0 {
			t.Errorf("lost hedge race charged to the wedged worker's breaker: %+v", w)
		}
	}
}

// TestUnavailableWhenAllWorkersFail: total fleet loss is an error (the
// 503-mapped sentinel), not a silent empty answer.
func TestUnavailableWhenAllWorkersFail(t *testing.T) {
	urls, _ := startWorkers(t, 2)
	tr := fault.New(1, nil, fault.Rule{Path: "/shard/gather", P: 1, Action: fault.Drop})
	coord := testCoordinator(t, chaosConfig(urls, tr))
	_, err := coord.ExplainContext(context.Background(), maprat.ExplainRequest{Query: mustParse(t, "genre:Drama")})
	if !errors.Is(err, maprat.ErrUnavailable) {
		t.Fatalf("total fleet loss returned %v, want ErrUnavailable", err)
	}
}

// TestDeadlinePropagates: with every worker wedged and hedging off, the
// caller's deadline still bounds the request — the coordinator never
// hangs past it.
func TestDeadlinePropagates(t *testing.T) {
	urls, _ := startWorkers(t, 2)
	tr := fault.New(1, nil, fault.Rule{Path: "/shard/gather", P: 1, Action: fault.Hang})
	cfg := chaosConfig(urls, tr)
	cfg.ShardTimeout = time.Minute
	coord := testCoordinator(t, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := coord.ExplainContext(ctx, maprat.ExplainRequest{Query: mustParse(t, "genre:Drama")})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wedged fleet returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("request outlived its deadline by far: %v", elapsed)
	}
}

// TestBootHandshakeRejectsSplitBrain: workers serving different
// datasets must be refused at boot — merging their slices would splice
// two datasets into one cube.
func TestBootHandshakeRejectsSplitBrain(t *testing.T) {
	urls, _ := startWorkers(t, 1)
	cfg := maprat.SmallGenConfig()
	cfg.Seed = 99
	other, err := maprat.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := maprat.Open(other, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng2.Close() })
	ts := httptest.NewServer(api.New(eng2, api.Config{}))
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := New(ctx, Config{Workers: append(urls, ts.URL)}); err == nil {
		t.Fatal("split-brain fleet accepted at boot")
	}
}

// TestBootRequiresAWorker: a fleet with every worker down fails boot
// with the unavailable sentinel.
func TestBootRequiresAWorker(t *testing.T) {
	ts := httptest.NewServer(nil)
	url := ts.URL
	ts.Close() // nothing listens here anymore
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := New(ctx, Config{Workers: []string{url}, ShardTimeout: 300 * time.Millisecond})
	if !errors.Is(err, maprat.ErrUnavailable) {
		t.Fatalf("dead fleet boot returned %v, want ErrUnavailable", err)
	}
}
