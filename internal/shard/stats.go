package shard

import "repro/internal/api"

// Stats is the coordinator's /statsz section: scatter-gather counters
// plus one row per worker with its circuit-breaker state. The concrete
// type lives in internal/api with the rest of the wire surface, so the
// HTTP server can render it without importing this package (which would
// close an import cycle through pkg/client).
type Stats = api.ShardStats

// WorkerStats is one worker's health row.
type WorkerStats = api.ShardWorkerStats
