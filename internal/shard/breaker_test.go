package shard

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := newBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.Failure()
	if b.Allow() {
		t.Error("breaker still admits after hitting the threshold")
	}
	if got := b.snapshot(); got.State != "open" || got.Opened != 1 {
		t.Errorf("snapshot = %+v, want open with Opened=1", got)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := newBreaker(2, time.Hour)
	b.Failure()
	b.Success()
	b.Failure()
	if !b.Allow() {
		t.Error("non-consecutive failures opened the breaker")
	}
}

func TestBreakerHalfOpenProbeLifecycle(t *testing.T) {
	b := newBreaker(1, 10*time.Millisecond)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no half-open probe admitted")
	}
	// The probe slot is consumed: no second probe within the cooldown.
	if b.Allow() {
		t.Error("half-open admitted a second probe immediately")
	}
	b.Success()
	if !b.Allow() {
		t.Error("probe success did not close the breaker")
	}
	st := b.snapshot()
	if st.State != "closed" || st.HalfOpened != 1 {
		t.Errorf("snapshot = %+v, want closed with HalfOpened=1", st)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := newBreaker(1, 5*time.Millisecond)
	b.Failure()
	time.Sleep(10 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe admitted")
	}
	b.Failure()
	if b.Allow() {
		t.Error("failed probe did not re-open the breaker")
	}
	if st := b.snapshot(); st.Opened != 2 {
		t.Errorf("Opened = %d, want 2", st.Opened)
	}
}

func TestBreakerAbandonedProbeSelfHeals(t *testing.T) {
	b := newBreaker(1, 5*time.Millisecond)
	b.Failure()
	time.Sleep(10 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe admitted")
	}
	// The admitted probe is never reported (hedge race loss, unused
	// routing decision). The slot must re-arm on its own.
	time.Sleep(10 * time.Millisecond)
	if !b.Allow() {
		t.Error("abandoned probe wedged the half-open state")
	}
}

func TestBreakerRoutableHasNoSideEffects(t *testing.T) {
	b := newBreaker(1, 5*time.Millisecond)
	b.Failure()
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if !b.Routable() {
			t.Fatal("cooled-down breaker not routable")
		}
	}
	// Routable consumed nothing: the actual probe is still available.
	if !b.Allow() {
		t.Error("Routable consumed the half-open probe slot")
	}
}
