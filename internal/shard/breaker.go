package shard

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stateClosed:
		return "closed"
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is a per-worker circuit breaker. Closed admits everything;
// `threshold` consecutive failures open it; an open breaker rejects
// until `cooldown` has elapsed, then half-opens and admits probes at
// most one per cooldown interval until one succeeds (closing the
// circuit) or fails (re-opening it). Pacing probes by time rather than
// by an in-flight flag means an admitted-but-abandoned probe (a hedge
// race loss, a routing decision that assigned the worker no slots)
// cannot wedge the half-open state: the slot simply re-arms after the
// cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state    breakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probeAt  time.Time // last half-open probe admission

	// Counters surfaced in WorkerStats.
	successes, failures uint64
	opened, halfOpened  uint64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a call may proceed, consuming the half-open
// probe slot when it admits one. In the open state the first Allow
// after the cooldown transitions to half-open and admits its probe.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = stateHalfOpen
		b.halfOpened++
		b.probeAt = time.Now()
		return true
	default: // half-open
		if time.Since(b.probeAt) < b.cooldown {
			return false
		}
		b.probeAt = time.Now()
		return true
	}
}

// Routable is Allow without side effects: would a call be admitted
// right now? Used to pick hedge targets and browse proxies without
// consuming the half-open probe slot.
func (b *breaker) Routable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		return time.Since(b.openedAt) >= b.cooldown
	default:
		return time.Since(b.probeAt) >= b.cooldown
	}
}

// current returns the state for the health loop's triage.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Success reports a completed call; any non-closed state closes.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.successes++
	b.fails = 0
	b.state = stateClosed
}

// Failure reports a failed call. A half-open probe failure re-opens
// immediately; closed failures open once the consecutive-failure
// threshold is hit. Callers must not report a failure caused by their
// own context ending (a lost hedge race, a caller hangup) — that says
// nothing about the worker.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case stateHalfOpen:
		b.state = stateOpen
		b.openedAt = time.Now()
		b.opened++
	case stateClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = stateOpen
			b.openedAt = time.Now()
			b.opened++
		}
	case stateOpen:
		// A straggler from before the trip; the circuit is already open.
	}
}

// snapshot fills a WorkerStats row (Name is the caller's).
func (b *breaker) snapshot() WorkerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return WorkerStats{
		State:      b.state.String(),
		Failures:   b.failures,
		Successes:  b.successes,
		Opened:     b.opened,
		HalfOpened: b.halfOpened,
	}
}
