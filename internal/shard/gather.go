package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/api"
	"repro/internal/cube"
	"repro/internal/query"
)

// gatherOut is a completed scatter-gather: the resolved item IDs
// (ascending) and their tuple runs in exact single-node order, plus the
// names of workers whose slots could not be gathered.
type gatherOut struct {
	items   []int
	tuples  []cube.Tuple
	missing []string
}

// slotBatch is one worker's share of a gather round.
type slotBatch struct {
	worker int
	slots  []int
}

// gatherDone is one successfully fetched batch, decoded.
type gatherDone struct {
	items  []int
	counts []int
	tuples []cube.Tuple
}

// gather fans a query out across the fleet and reassembles the R_I
// slice. Round 1 routes every slot to its first breaker-admitted
// rendezvous owner, with per-batch retries and a hedged backup after
// the latency threshold. Round 2 reassigns the slots of failed batches
// to the next owner in each slot's rendezvous order, excluding the
// workers that just failed. Slots still unserved after round 2 are the
// degradation: their round-1 owner's name lands in missing and the
// merge proceeds without them.
func (c *Coordinator) gather(ctx context.Context, q maprat.Query) (*gatherOut, error) {
	c.gathers.Add(1)
	reqT := api.ShardGatherRequest{
		// The window travels in explicit fields; Q is predicates only
		// (the parser does not accept window syntax).
		Q:        query.Query{Op: q.Op, Preds: q.Preds}.String(),
		NumSlots: c.cfg.NumSlots,
		From:     q.Window.From,
		To:       q.Window.To,
		HasFrom:  q.Window.HasFrom,
		HasTo:    q.Window.HasTo,
		Dataset:  c.cfg.Dataset,
	}

	// Round 1 routing. Allow() is consulted at most once per worker per
	// gather (memoized), and only when the worker is the best candidate
	// for some slot — so an admitted half-open probe always has a batch
	// to ride on.
	n := c.cfg.NumSlots
	allowCache := make(map[int]bool)
	allow := func(w int) bool {
		v, ok := allowCache[w]
		if !ok {
			v = c.breakers[w].Allow()
			allowCache[w] = v
		}
		return v
	}
	batches := make(map[int][]int)
	slotOwner := make([]int, n) // round-1 owner, for missing attribution
	var unserved []int          // slots with no admissible worker at all
	for s := 0; s < n; s++ {
		slotOwner[s] = c.ring[s][0]
		w := -1
		for _, cand := range c.ring[s] {
			if allow(cand) {
				w = cand
				break
			}
		}
		if w < 0 {
			unserved = append(unserved, s)
			continue
		}
		slotOwner[s] = w
		batches[w] = append(batches[w], s)
	}

	var (
		mu     sync.Mutex
		oks    []gatherDone
		failed []slotBatch
	)
	runRound := func(round map[int][]int, hedge bool) {
		var wg sync.WaitGroup
		for w, slots := range round {
			wg.Add(1)
			go func(ctx context.Context, w int, slots []int) {
				defer wg.Done()
				resp, err := c.runBatch(ctx, w, slots, reqT, hedge)
				var d gatherDone
				if err == nil {
					d, err = decodeBatch(resp)
				}
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					failed = append(failed, slotBatch{w, slots})
					return
				}
				oks = append(oks, d)
			}(ctx, w, slots)
		}
		wg.Wait()
	}
	runRound(batches, true)
	if err := ctx.Err(); err != nil {
		// The caller hung up; the incomplete gather is cancellation, not
		// degradation.
		return nil, err
	}

	// Round 2: failover. Failed workers are excluded outright — their
	// breakers have been charged, but a half-open admission must not
	// route the same slots straight back into the worker that just
	// dropped them.
	if len(failed) > 0 {
		bad := make(map[int]bool)
		var retry []int
		for _, f := range failed {
			bad[f.worker] = true
			retry = append(retry, f.slots...)
		}
		failed = nil
		again := make(map[int][]int)
		allowCache2 := make(map[int]bool)
		allow2 := func(w int) bool {
			v, ok := allowCache2[w]
			if !ok {
				v = c.breakers[w].Allow()
				allowCache2[w] = v
			}
			return v
		}
		for _, s := range retry {
			w := -1
			for _, cand := range c.ring[s] {
				if bad[cand] {
					continue
				}
				if allow2(cand) {
					w = cand
					break
				}
			}
			if w < 0 {
				unserved = append(unserved, s)
				continue
			}
			again[w] = append(again[w], s)
		}
		if len(again) > 0 {
			c.failovers.Add(uint64(len(again)))
			runRound(again, false)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for _, f := range failed {
				unserved = append(unserved, f.slots...)
			}
		}
	}

	out := mergeBatches(oks)
	if len(unserved) > 0 {
		names := make(map[string]bool)
		for _, s := range unserved {
			names[c.names[slotOwner[s]]] = true
		}
		for name := range names {
			out.missing = append(out.missing, name)
		}
		sort.Strings(out.missing)
		c.degraded.Add(1)
	}
	return out, nil
}

// runBatch fetches one worker's slot batch, optionally racing a hedged
// backup: if the primary is still silent after the hedging delay, the
// same batch is fired at the next distinct routable owner and the first
// success wins. The loser is canceled, and cancellation is never
// charged to its breaker (gatherRetry checks its context before
// reporting a failure).
func (c *Coordinator) runBatch(ctx context.Context, w int, slots []int, reqT api.ShardGatherRequest, hedge bool) (*api.ShardGatherResponse, error) {
	backup := -1
	if hedge && c.cfg.HedgeAfter >= 0 {
		backup = c.hedgeTarget(w, slots[0])
	}
	if backup < 0 {
		return c.gatherRetry(ctx, w, slots, reqT)
	}

	type res struct {
		resp   *api.ShardGatherResponse
		err    error
		worker int
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan res, 2) // buffered: the loser's send must not block
	go func(ctx context.Context) {
		resp, err := c.gatherRetry(ctx, w, slots, reqT)
		ch <- res{resp, err, w}
	}(rctx)

	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	launched := false
	pending := 1
	var firstErr error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				if launched && r.worker == backup {
					c.hedgeWins.Add(1)
				}
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if pending == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if !launched {
				launched = true
				pending++
				c.hedges.Add(1)
				go func(ctx context.Context) {
					resp, err := c.gatherRetry(ctx, backup, slots, reqT)
					ch <- res{resp, err, backup}
				}(rctx)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// hedgeTarget picks the backup worker for a batch: the next distinct
// owner in the batch's first slot's rendezvous order that looks
// routable. Routable (not Allow) on purpose — a hedge is speculative
// and must not consume a half-open probe slot.
func (c *Coordinator) hedgeTarget(primary, slot int) int {
	for _, w := range c.ring[slot] {
		if w == primary {
			continue
		}
		if c.breakers[w].Routable() {
			return w
		}
	}
	return -1
}

// gatherRetry is the per-batch retry loop: up to Attempts tries, each
// under its own ShardTimeout deadline, with capped exponential backoff
// and seeded jitter between them. Outcomes are charged to the worker's
// breaker — except when this call's own context ended, which reports
// the caller's cancellation (hedge race lost, query abandoned), not the
// worker's health.
func (c *Coordinator) gatherRetry(ctx context.Context, w int, slots []int, reqT api.ShardGatherRequest) (*api.ShardGatherResponse, error) {
	req := reqT
	req.Slots = slots
	want := api.FingerprintString(c.fp)
	var lastErr error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			d := c.cfg.Backoff << (attempt - 1)
			if d > 2*time.Second {
				d = 2 * time.Second
			}
			d = d/2 + c.jitter(d/2)
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			t.Stop()
		}
		start := time.Now()
		cctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
		resp, err := c.clients[w].GatherShard(cctx, req)
		cancel()
		if err == nil && resp.Fingerprint != want {
			err = fmt.Errorf("shard: worker %s fingerprint drift: serves %s, fleet agreed on %s", c.names[w], resp.Fingerprint, want)
		}
		if err == nil {
			c.breakers[w].Success()
			c.observeLatency(time.Since(start))
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
		c.breakers[w].Failure()
	}
	return nil, lastErr
}

// decodeBatch unpacks and validates one worker response.
func decodeBatch(resp *api.ShardGatherResponse) (gatherDone, error) {
	if len(resp.Items) != len(resp.Counts) {
		return gatherDone{}, fmt.Errorf("shard: response items/counts length mismatch: %d != %d", len(resp.Items), len(resp.Counts))
	}
	ts, err := api.DecodeTuples(resp.Tuples)
	if err != nil {
		return gatherDone{}, err
	}
	total := 0
	for _, n := range resp.Counts {
		total += n
	}
	if total != len(ts) {
		return gatherDone{}, fmt.Errorf("shard: response counts sum to %d but %d tuples decoded", total, len(ts))
	}
	return gatherDone{items: resp.Items, counts: resp.Counts, tuples: ts}, nil
}

// mergeBatches splices per-worker slices back into the single-node
// order: a k-way merge on ascending item ID (batches own disjoint slot
// sets, so their item sets are disjoint), appending each item's
// already-time-sorted tuple run as it is taken. The result is exactly
// what store.TuplesForItems(allIDs, window) would have produced on one
// node — the property the byte-identical-results guarantee rests on.
func mergeBatches(batches []gatherDone) *gatherOut {
	out := &gatherOut{}
	idx := make([]int, len(batches))  // per-batch item cursor
	offs := make([]int, len(batches)) // per-batch tuple offset
	for {
		best := -1
		for bi := range batches {
			if idx[bi] >= len(batches[bi].items) {
				continue
			}
			if best < 0 || batches[bi].items[idx[bi]] < batches[best].items[idx[best]] {
				best = bi
			}
		}
		if best < 0 {
			return out
		}
		b := &batches[best]
		i := idx[best]
		n := b.counts[i]
		out.items = append(out.items, b.items[i])
		out.tuples = append(out.tuples, b.tuples[offs[best]:offs[best]+n]...)
		idx[best]++
		offs[best] += n
	}
}
