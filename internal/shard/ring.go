package shard

import (
	"hash/fnv"
	"sort"

	"repro/internal/rng"
)

// buildRing computes the rendezvous (highest-random-weight) owner order
// for every slot: ring[slot] lists worker indices by descending
// Mix(slot, workerHash) weight, so ring[slot][0] is the slot's primary
// and the tail is its failover order. Rendezvous rather than a ketama
// ring because the worker set is small and static per coordinator: the
// full table is precomputed once, and removing one worker reassigns
// only that worker's slots (each slot just promotes its next-ranked
// owner), which keeps failover routing and plan-cache locality stable
// through a worker outage.
func buildRing(workers []string, numSlots int) [][]int {
	hashes := make([]uint64, len(workers))
	for i, w := range workers {
		h := fnv.New64a()
		h.Write([]byte(w))
		hashes[i] = h.Sum64()
	}
	ring := make([][]int, numSlots)
	for s := range ring {
		weights := make([]uint64, len(workers))
		for w := range workers {
			weights[w] = rng.Mix(uint64(s), hashes[w])
		}
		order := make([]int, len(workers))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			if weights[order[a]] != weights[order[b]] {
				return weights[order[a]] > weights[order[b]]
			}
			return order[a] < order[b]
		})
		ring[s] = order
	}
	return ring
}
