package server

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
)

// testEngine reuses the memoized test server's engine-building path but
// returns a raw engine for lifecycle tests that need their own Server.
func testEngineOnly(t *testing.T) *maprat.Engine {
	t.Helper()
	ds, err := maprat.Generate(maprat.SmallGenConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	eng, err := maprat.Open(ds, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return eng
}

// TestRequestTimeoutAnswers504 runs the server with an unmeetable
// deadline; the mining handlers must answer 504 Gateway Timeout instead
// of hanging or mislabelling the failure as a 404.
func TestRequestTimeoutAnswers504(t *testing.T) {
	eng := testEngineOnly(t)
	srv := httptest.NewServer(NewWithConfig(eng, Config{RequestTimeout: time.Nanosecond}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/explain?q=genre:Drama")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusGatewayTimeout)
	}
}

// TestGracefulShutdown starts Serve on an ephemeral port, confirms it
// answers, cancels the lifecycle context, and expects a clean nil return
// plus a refused connection afterwards.
func TestGracefulShutdown(t *testing.T) {
	eng := testEngineOnly(t)
	s := New(eng)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	// The server must be answering before we shut it down.
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get("http://" + addr + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}

// TestNegativeTimeoutDisablesDeadline covers the opt-out: with a negative
// RequestTimeout the handler context is the bare request context and a
// normal query succeeds.
func TestNegativeTimeoutDisablesDeadline(t *testing.T) {
	eng := testEngineOnly(t)
	srv := httptest.NewServer(NewWithConfig(eng, Config{RequestTimeout: -1}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/explain?q=genre:Drama")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
}
