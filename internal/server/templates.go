package server

import "html/template"

var baseCSS = `
body { font-family: Helvetica, Arial, sans-serif; margin: 24px; color: #222; }
h1 { font-size: 22px; } h2 { font-size: 17px; margin-top: 28px; }
a { color: #1a53a0; }
form label { display: inline-block; margin: 6px 14px 6px 0; font-size: 14px; }
input[type=text] { width: 420px; padding: 5px; }
input[type=number] { width: 70px; padding: 4px; }
table { border-collapse: collapse; margin-top: 8px; }
th, td { border: 1px solid #ccc; padding: 5px 10px; font-size: 13px; text-align: left; }
th { background: #f2f2f2; }
.chip { display: inline-block; width: 12px; height: 12px; border: 1px solid #666; margin-right: 6px; }
.meta { color: #666; font-size: 12px; }
.bar { background: #4a7; height: 13px; display: inline-block; }
.err { color: #a22; }
`

// mustTmpl registers the shared helpers before parsing, so templates can
// format fractions as percentages via mulf.
func mustTmpl(name, body string) *template.Template {
	return template.Must(template.New(name).Funcs(template.FuncMap{
		"mulf": func(a, b float64) float64 { return a * b },
	}).Parse(body))
}

var indexTmpl = mustTmpl("index", `<!DOCTYPE html>
<html><head><title>MapRat</title><style>`+baseCSS+`</style></head>
<body>
<h1>MapRat — Meaningful Explanation, Interactive Exploration and Geo-Visualization of Collaborative Ratings</h1>
<p class="meta">{{.Ratings}} ratings · {{.Items}} movies · {{.Users}} reviewers · {{.FromYear}}–{{.ToYear}}</p>
<form action="/explain" method="get">
  <label>Query<br><input type="text" name="q" value="movie:&quot;Toy Story&quot;"></label><br>
  <label>Max groups <input type="number" name="k" value="3" min="1" max="12"></label>
  <label>Rating coverage <input type="number" name="coverage" value="0.20" min="0" max="1" step="0.05"></label>
  <label>From year <input type="number" name="from" placeholder="{{.FromYear}}"></label>
  <label>To year <input type="number" name="to" placeholder="{{.ToYear}}"></label><br>
  <label>Profile (optional, e.g. <code>gender=female,age=under 18</code>)<br>
    <input type="text" name="profile" value=""></label><br>
  <label><input type="checkbox" name="geo" value="off"> framework mode (groups without geo-condition)</label><br>
  <button type="submit">Explain Ratings</button>
</form>
<h2>Example queries</h2>
<ul>
  <li><a href="/explain?q=movie%3A%22Toy+Story%22">movie:"Toy Story"</a></li>
  <li><a href="/explain?q=movie%3A%22The+Twilight+Saga%3A+Eclipse%22&geo=off&coverage=0.10&k=2">the controversial title, framework mode</a></li>
  <li><a href="/explain?q=actor%3A%22Tom+Hanks%22">actor:"Tom Hanks"</a></li>
  <li><a href="/explain?q=director%3A%22Steven+Spielberg%22+AND+genre%3AThriller">thrillers directed by Steven Spielberg</a></li>
  <li><a href="/explain?q=title%3A%22lord+rings%22">The Lord of the Rings trilogy</a></li>
  <li><a href="/evolution?q=movie%3A%22Toy+Story%22">Toy Story over time</a></li>
  <li><a href="/browse">browse: overall rating behaviour by state</a></li>
</ul>
</body></html>`)

var explainTmpl = mustTmpl("explain", `<!DOCTYPE html>
<html><head><title>MapRat — {{.Query}}</title><style>`+baseCSS+`</style></head>
<body>
<p><a href="/">← new query</a> · <a href="/evolution?{{.URLQuery}}">over time</a></p>
<h1>{{.Query}}</h1>
<p class="meta">
  {{len .Items}} item(s): {{range $i, $t := .Items}}{{if $i}}, {{end}}{{$t}}{{end}}<br>
  {{.NumRatings}} ratings · overall μ = {{printf "%.2f" .Overall.Mean}} · σ = {{printf "%.2f" .Overall.Std}}
  · computed in {{.Elapsed}}{{if .FromCache}} (cached){{end}}
</p>
{{range .Tabs}}
<h2>{{if eq .Title "SM"}}Similarity Mining — reviewer groups that agree{{else}}Diversity Mining — reviewer groups that disagree{{end}}</h2>
<p class="meta">objective = {{printf "%.4f" .Result.Objective}} · coverage = {{printf "%.0f%%" (mulf .Result.Coverage 100.0)}}
  (α enforced: {{printf "%.0f%%" (mulf .Result.RelaxedCoverage 100.0)}})</p>
{{.SVG}}
<table>
<tr><th>group</th><th>icons</th><th>μ</th><th>σ</th><th>ratings</th><th>share</th><th></th></tr>
{{range .Groups}}
<tr>
  <td>{{.Phrase}}</td><td>{{.Icons}}</td>
  <td>{{printf "%.2f" .Agg.Mean}}</td><td>{{printf "%.2f" .Agg.Std}}</td>
  <td>{{.Agg.Count}}</td><td>{{printf "%.1f%%" (mulf .Share 100.0)}}</td>
  <td><a href="/group?q={{$.RawQuery}}&key={{.Key.Param}}">explore</a></td>
</tr>
{{end}}
</table>
{{end}}
</body></html>`)

var groupTmpl = mustTmpl("group", `<!DOCTYPE html>
<html><head><title>MapRat — group</title><style>`+baseCSS+`</style></head>
<body>
<p><a href="/explain?{{.URLQuery}}">← back to results</a></p>
<h1>{{.Stats.Phrase}}</h1>
<p class="meta">query {{.Query}} · μ = {{printf "%.2f" .Stats.Agg.Mean}} · σ = {{printf "%.2f" .Stats.Agg.Std}}
 · {{.Stats.Agg.Count}} ratings · {{printf "%.1f%%" (mulf .Stats.Share 100.0)}} of the query's ratings</p>

<h2>Rating distribution</h2>
<table>
{{range .Bars}}<tr><td>{{.Score}}★</td><td style="border:none"><span class="bar" style="width:{{.Width}}px"></span> {{.Count}}</td></tr>{{end}}
</table>

{{if .Stats.Cities}}
<h2>City drill-down</h2>
<table>
<tr><th>city</th><th>μ</th><th>σ</th><th>ratings</th></tr>
{{range .Stats.Cities}}<tr><td>{{.City}}</td><td>{{printf "%.2f" .Agg.Mean}}</td><td>{{printf "%.2f" .Agg.Std}}</td><td>{{.Agg.Count}}</td></tr>{{end}}
</table>
{{end}}

<h2>Rating evolution</h2>
<table>
<tr><th>period</th><th>μ</th><th>ratings</th></tr>
{{range .Stats.Timeline}}<tr><td>{{.Label}}</td><td>{{if .Agg.Count}}{{printf "%.2f" .Agg.Mean}}{{else}}—{{end}}</td><td>{{.Agg.Count}}</td></tr>{{end}}
</table>

{{if .Refinements}}
<h2>Drill deeper (most deviant refinements)</h2>
<table>
<tr><th>refinement</th><th>adds</th><th>μ</th><th>Δ vs group</th><th>ratings</th><th></th></tr>
{{range .Refinements}}
<tr><td>{{.Group.Phrase}}</td><td>{{.Added}}</td>
<td>{{printf "%.2f" .Group.Agg.Mean}}</td><td>{{printf "%+.2f" .Delta}}</td><td>{{.Group.Agg.Count}}</td>
<td><a href="/group?q={{$.RawQuery}}&key={{.Group.Key.Param}}">explore</a></td></tr>
{{end}}
</table>
{{else}}
<h2>Drill deeper (most deviant refinements)</h2>
<p class="meta">drill-down unavailable: this group has no deeper refinements</p>
{{end}}

{{if .Related}}
<h2>Related groups (differ in one attribute)</h2>
<table>
<tr><th>group</th><th>μ</th><th>ratings</th><th></th></tr>
{{range .Related}}
<tr><td>{{.Phrase}}</td><td>{{printf "%.2f" .Agg.Mean}}</td><td>{{.Agg.Count}}</td>
<td><a href="/group?q={{$.RawQuery}}&key={{.Key.Param}}">explore</a></td></tr>
{{end}}
</table>
{{end}}
</body></html>`)

var browseTmpl = mustTmpl("browse", `<!DOCTYPE html>
<html><head><title>MapRat — browse</title><style>`+baseCSS+`</style></head>
<body>
<p><a href="/">← new query</a></p>
<h1>Browse — overall rating behaviour by state</h1>
{{.SVG}}
<table>
<tr><th>state</th><th>μ</th><th>σ</th><th>ratings</th></tr>
{{range .States}}<tr><td>{{.State}}</td><td>{{printf "%.2f" .Agg.Mean}}</td><td>{{printf "%.2f" .Agg.Std}}</td><td>{{.Agg.Count}}</td></tr>{{end}}
</table>
</body></html>`)

var evolutionTmpl = mustTmpl("evolution", `<!DOCTYPE html>
<html><head><title>MapRat — evolution</title><style>`+baseCSS+`</style></head>
<body>
<p><a href="/">← new query</a></p>
<h1>{{.Query}} — best Similarity-Mining groups per year</h1>
<table>
<tr><th>year</th><th>groups</th></tr>
{{range .Rows}}
<tr><td>{{.Year}}</td><td>
{{if .Empty}}<span class="meta">no ratings / no feasible groups</span>{{else}}
{{range .Groups}}{{.Phrase}} (μ={{printf "%.2f" .Agg.Mean}}, n={{.Agg.Count}})<br>{{end}}
{{end}}
</td></tr>
{{end}}
</table>
</body></html>`)
