package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

// TestLegacyAliasInstrumented pins the satellite: the deprecated
// /api/explain alias routes through the v1 middleware stack, so its
// traffic shows up in the /statsz "api" counters (with the request-ID
// header the stack adds) like every native v1 endpoint.
func TestLegacyAliasInstrumented(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/explain?q=" + url.QueryEscape(`movie:"Toy Story"`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy alias status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("legacy alias bypassed the middleware stack: no X-Request-ID")
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy alias lost its Deprecation header")
	}

	code, body := get(t, ts, "/statsz")
	if code != http.StatusOK {
		t.Fatalf("statsz status %d", code)
	}
	var stats struct {
		API map[string]struct {
			Requests uint64            `json:"requests"`
			Status   map[string]uint64 `json:"status"`
		} `json:"api"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("statsz json: %v", err)
	}
	ep, ok := stats.API["legacy_explain"]
	if !ok || ep.Requests == 0 || ep.Status["2xx"] == 0 {
		t.Fatalf("statsz has no legacy_explain counters: %+v", stats.API)
	}
}

// TestStatszJobGauges submits a job through the server mux and checks
// the jobs section of /statsz accounts for it.
func TestStatszJobGauges(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"op":"explain","q":"movie:\"Toy Story\"","k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		r2, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r2.Body).Decode(&st)
		r2.Body.Close()
		if st.State == "done" || st.State == "failed" || st.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("job state %q, want done", st.State)
	}

	_, body := get(t, ts, "/statsz")
	var stats struct {
		Jobs jobs.Stats `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("statsz json: %v", err)
	}
	if stats.Jobs.Submitted == 0 || stats.Jobs.Completed == 0 || stats.Jobs.Workers == 0 {
		t.Fatalf("statsz jobs section not reporting: %+v", stats.Jobs)
	}
}

// TestShutdownDrainsJobs pins the drain contract: a job running when
// shutdown starts still completes, and its result stays retrievable
// until the listener actually closes.
func TestShutdownDrainsJobs(t *testing.T) {
	eng := testEngineOnly(t)
	gate := make(chan struct{}, 1)
	s := NewWithConfig(eng, Config{Jobs: jobs.Config{Workers: 1, Queue: 4, Gate: gate}})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	var ready bool
	for i := 0; i < 100 && !ready; i++ {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			ready = true
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !ready {
		t.Fatal("server never came up")
	}

	resp, err := http.Post(base+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"op":"explain","q":"movie:\"Toy Story\"","k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	// Let the worker start the job, then shut down while it may still be
	// running: Serve must return nil (clean drain, not a timeout).
	gate <- struct{}{}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after draining jobs", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never returned")
	}
	// The manager was drained: the job finished rather than being left
	// queued forever.
	snap := s.api.JobStats()
	if snap.Running != 0 || snap.Queued != 0 {
		t.Fatalf("jobs not drained: %+v", snap)
	}
	if snap.Completed+snap.Canceled != 1 {
		t.Fatalf("job neither completed nor canceled on shutdown: %+v", snap)
	}
}
