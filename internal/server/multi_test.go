package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro"
)

// TestStatszDatasets pins the /statsz datasets section on a server that
// mounts one snapshot-opened and one directly-opened dataset: each entry
// carries the mount name, its fingerprint, entity counts, source and
// open cost.
func TestStatszDatasets(t *testing.T) {
	cfg := maprat.SmallGenConfig()
	cfg.Users = 300
	cfg.Movies = 120
	cfg.Ratings = 6000
	ds, err := maprat.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := maprat.Open(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.msnap")
	if err := maprat.WriteSnapshot(path, ds, maprat.SnapshotMeta{Source: "generated"}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	snapped, err := maprat.OpenSnapshot(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer snapped.Close()

	reg := maprat.NewRegistry()
	if err := reg.Add("live", direct, maprat.DatasetInfo{Source: "generated"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("snap", snapped, maprat.DatasetInfo{
		Source: "snapshot", Path: path, FileSize: 123, OpenDuration: time.Since(start),
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMulti(reg, Config{}))
	defer ts.Close()

	code, body := get(t, ts, "/statsz")
	if code != http.StatusOK {
		t.Fatalf("statsz status %d", code)
	}
	var stats struct {
		Datasets []struct {
			Name        string  `json:"name"`
			Fingerprint string  `json:"fingerprint"`
			Users       int     `json:"users"`
			Items       int     `json:"items"`
			Ratings     int     `json:"ratings"`
			Source      string  `json:"source"`
			FileSize    int64   `json:"file_size"`
			OpenMS      float64 `json:"open_ms"`
		} `json:"datasets"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("statsz json: %v\n%s", err, body)
	}
	if len(stats.Datasets) != 2 {
		t.Fatalf("got %d dataset entries, want 2: %s", len(stats.Datasets), body)
	}
	live, snap := stats.Datasets[0], stats.Datasets[1]
	if live.Name != "live" || snap.Name != "snap" {
		t.Fatalf("mount order lost: %q, %q", live.Name, snap.Name)
	}
	// Same underlying dataset: identical fingerprints, identical counts.
	if live.Fingerprint != snap.Fingerprint || len(live.Fingerprint) != 16 {
		t.Errorf("fingerprints %q vs %q (want equal, 16 hex chars)", live.Fingerprint, snap.Fingerprint)
	}
	st := ds.Stats()
	if snap.Users != st.Users || snap.Items != st.Items || snap.Ratings != st.Ratings {
		t.Errorf("snapshot mount counts %d/%d/%d, want %d/%d/%d",
			snap.Users, snap.Items, snap.Ratings, st.Users, st.Items, st.Ratings)
	}
	if live.Source != "generated" || snap.Source != "snapshot" {
		t.Errorf("sources %q/%q, want generated/snapshot", live.Source, snap.Source)
	}
	if snap.FileSize != 123 {
		t.Errorf("file size %d, want 123", snap.FileSize)
	}
	if snap.OpenMS <= 0 {
		t.Errorf("open_ms %v, want > 0", snap.OpenMS)
	}

	// The HTML pages serve the default (first) mount.
	code, _ = get(t, ts, "/")
	if code != http.StatusOK {
		t.Fatalf("index over a multi-mount server: status %d", code)
	}
}
