// Package server is MapRat's web front-end (§3, Figures 1–3): a search
// form over item attributes with mining settings and a time restriction,
// tabbed SM/DM choropleth result pages, a per-group exploration page with
// statistics and the city drill-down, a time-slider page, and the
// versioned JSON API mounted from internal/api. It is a stdlib net/http
// application; the choropleths are the inline SVG documents produced by
// internal/viz.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"log"
	"net"
	"net/http"
	"time"

	"repro"
	"repro/internal/api"
	"repro/internal/jobs"
	"repro/internal/store"
	"repro/internal/viz"
)

// Config tunes the server's request lifecycle.
type Config struct {
	// RequestTimeout bounds each mining request; the request's context is
	// cancelled at the deadline and the handler answers 504. Zero means
	// DefaultRequestTimeout; negative disables the per-request deadline.
	RequestTimeout time.Duration
	// ShutdownGrace bounds how long ListenAndServe waits for in-flight
	// requests after its context ends. Zero means DefaultShutdownGrace.
	ShutdownGrace time.Duration
	// MaxBatch caps /api/v1/batch (zero means api.DefaultMaxBatch).
	MaxBatch int
	// AccessLog receives the v1 surface's access log; nil disables it.
	// Panic reports go to the process logger regardless.
	AccessLog *log.Logger
	// Jobs tunes the async job subsystem mounted under /api/v1/jobs
	// (zero value = the jobs package defaults).
	Jobs jobs.Config
	// EnableGzip lets API clients negotiate gzip responses via
	// Accept-Encoding.
	EnableGzip bool
}

// The lifecycle defaults: generous for full-scale mining, finite so a
// stuck request cannot pin a connection forever.
const (
	DefaultRequestTimeout = 30 * time.Second
	DefaultShutdownGrace  = 10 * time.Second
)

// Server routes MapRat's HTTP endpoints. Every mining handler derives its
// context from the request (so a client that disconnects cancels its mine
// mid-restart) bounded by Config.RequestTimeout.
type Server struct {
	// def is the default mount: a local engine on maprat-server, a
	// scatter-gather coordinator on maprat-coord. The HTML pages and the
	// legacy API serve it.
	def maprat.Miner
	// eng is def when it is a local engine, nil otherwise; it gates the
	// few features that need direct store/dataset access (item titles,
	// result-cache stats).
	eng *maprat.Engine
	reg *maprat.Registry
	mux *http.ServeMux
	cfg Config
	api *api.Handler
}

// New builds a server over an opened engine with default lifecycle
// settings.
func New(eng *maprat.Engine) *Server { return NewWithConfig(eng, Config{}) }

// NewWithConfig builds a single-dataset server with explicit lifecycle
// settings.
func NewWithConfig(eng *maprat.Engine, cfg Config) *Server {
	return NewMulti(maprat.NewSingleRegistry("default", eng, maprat.DatasetInfo{}), cfg)
}

// NewMulti builds a server over a registry of mounted datasets. The v1
// API selects a dataset per request (?dataset= / X-Maprat-Dataset); the
// HTML pages serve the default (first) mount.
func NewMulti(reg *maprat.Registry, cfg Config) *Server {
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.ShutdownGrace == 0 {
		cfg.ShutdownGrace = DefaultShutdownGrace
	}
	def := reg.Default().Engine
	eng, _ := def.(*maprat.Engine)
	s := &Server{def: def, eng: eng, reg: reg, mux: http.NewServeMux(), cfg: cfg}
	s.api = api.NewMulti(reg, api.Config{
		RequestTimeout: cfg.RequestTimeout,
		MaxBatch:       cfg.MaxBatch,
		Logger:         cfg.AccessLog,
		Jobs:           cfg.Jobs,
		EnableGzip:     cfg.EnableGzip,
	})
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/group", s.handleGroup)
	s.mux.HandleFunc("/evolution", s.handleEvolution)
	s.mux.HandleFunc("/browse", s.handleBrowse)
	s.mux.Handle("/api/v1/", s.api)
	// /api/explain predates the versioned surface; it keeps its original
	// JSON shape as a deprecated alias for one release. Mounting it
	// through the v1 middleware stack means its traffic shows up in the
	// /statsz "api" latency/status counters like every v1 endpoint.
	s.mux.Handle("/api/explain", s.api.Instrument("legacy_explain", http.HandlerFunc(s.handleAPIExplain)))
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/statsz", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ListenAndServe serves on addr until ctx ends, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// Config.ShutdownGrace to finish. It returns nil on a clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener (which it takes
// ownership of and closes).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// Request contexts deliberately do not descend from ctx: shutdown
	// must drain in-flight mines, not cancel them. A mine that outlives
	// ShutdownGrace is cut off when Shutdown gives up and the process
	// exits; per-request deadlines already bound each mine anyway.
	srv := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	grace, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace) //maprat:allow(ctxflow) shutdown grace window: ctx is already done here, the drain deadline must outlive it
	defer cancel()
	err := srv.Shutdown(grace)
	// Drain the job subsystem too: queued jobs are canceled, running
	// jobs get the rest of the grace window to finish before their
	// contexts are cut.
	if cerr := s.api.Close(grace); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	<-errc // always http.ErrServerClosed after a Shutdown
	return nil
}

// requestContext derives the mining context for one request.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout < 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// statusForError maps a mining failure to an HTTP status. The mapping is
// owned by internal/api so the HTML pages and the v1 surface cannot
// drift: timeouts are the gateway's fault (504), disconnects get the
// nginx-style 499, and only the errors meaning "the client asked for
// something that doesn't exist" — no items, no ratings in the window, no
// such group — are 404s. Everything else is an internal mining failure
// and must surface as a 500, not be blamed on the client.
func statusForError(err error) int { return api.StatusForError(err) }

// htmlError is the HTML front-end's single text-error seam. The result
// pages speak plain-text errors (their contract predates the v1
// envelope, and browsers render them fine), but every status they carry
// still comes from the same api.StatusForError mapping as the v1
// surface, so the two front-ends cannot drift. Every other error path in
// this package must go through this helper or the api envelope writers —
// maprat-vet's envelope analyzer enforces it.
func htmlError(w http.ResponseWriter, msg string, status int) {
	http.Error(w, msg, status) //maprat:allow(envelope) the HTML front-end's one sanctioned text-error seam; statuses still come from api.StatusForError
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleStats exposes the engine's caching tiers and the v1 surface's
// per-endpoint counters as JSON for monitoring: the plan materialization
// tier (hit/miss/builds/tuple budget/bytes), the result LRU, the explain
// singleflight, the mining-run counter, and per-endpoint latency/status
// metrics. The payload is encoded into a buffer before any header is
// written, so an encode failure still produces a clean 500.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	type datasetStat struct {
		Name        string `json:"name"`
		Fingerprint string `json:"fingerprint"`
		Users       int    `json:"users"`
		Items       int    `json:"items"`
		Ratings     int    `json:"ratings"`
		// Source is how the dataset was opened: snapshot, text or
		// generated ("" when the server was built without mount info).
		Source   string  `json:"source,omitempty"`
		Path     string  `json:"path,omitempty"`
		FileSize int64   `json:"file_size,omitempty"`
		OpenMS   float64 `json:"open_ms,omitempty"`
	}
	resp := struct {
		PlanCache store.PlanStats `json:"plan_cache"`
		Result    struct {
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
			Entries int    `json:"entries"`
		} `json:"result_cache"`
		Mines    uint64                          `json:"mines"`
		API      map[string]api.EndpointSnapshot `json:"api"`
		Jobs     jobs.Stats                      `json:"jobs"`
		Datasets []datasetStat                   `json:"datasets"`
		Shards   *api.ShardStats                 `json:"shards,omitempty"`
		Ingest   *maprat.IngestStats             `json:"ingest,omitempty"`
	}{
		PlanCache: s.def.PlanStats(),
		Mines:     s.def.MineCount(),
		API:       s.api.MetricsSnapshot(),
		Jobs:      s.api.JobStats(),
	}
	// A coordinator mount contributes its scatter-gather counters
	// (per-worker breaker state, hedges, degraded responses).
	if sp, ok := s.def.(interface{ ShardStats() api.ShardStats }); ok {
		st := sp.ShardStats()
		resp.Shards = &st
	}
	// A write-armed engine contributes its live-ingestion section (epoch
	// clock, batch/tuple counters, WAL size, plan invalidation split).
	if ip, ok := s.def.(interface {
		IngestStats() (maprat.IngestStats, bool)
	}); ok {
		if st, on := ip.IngestStats(); on {
			resp.Ingest = &st
		}
	}
	for _, m := range s.reg.Mounts() {
		st := m.Engine.DatasetStats()
		resp.Datasets = append(resp.Datasets, datasetStat{
			Name:        m.Name,
			Fingerprint: fmt.Sprintf("%016x", m.Engine.Fingerprint()),
			Users:       st.Users,
			Items:       st.Items,
			Ratings:     st.Ratings,
			Source:      m.Info.Source,
			Path:        m.Info.Path,
			FileSize:    m.Info.FileSize,
			OpenMS:      float64(m.Info.OpenDuration.Microseconds()) / 1000,
		})
	}
	if s.eng != nil {
		if c := s.eng.Store().Cache(); c != nil {
			resp.Result.Hits, resp.Result.Misses = c.Stats()
			resp.Result.Entries = c.Len()
		}
	}
	api.WriteJSON(w, resp)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	stats := s.def.DatasetStats()
	lo, hi := s.def.TimeRange()
	render(w, indexTmpl, map[string]any{
		"Users":    stats.Users,
		"Items":    stats.Items,
		"Ratings":  stats.Ratings,
		"FromYear": time.Unix(lo, 0).UTC().Year(),
		"ToYear":   time.Unix(hi, 0).UTC().Year(),
	})
}

// parseRequest reads the Figure-1 form fields shared by all result pages
// through the same decoder the v1 surface uses, so the two front-ends
// accept exactly the same knob set.
func (s *Server) parseRequest(r *http.Request) (api.Params, maprat.ExplainRequest, error) {
	p, err := api.DecodeParams(r)
	if err != nil {
		return p, maprat.ExplainRequest{}, err
	}
	req, err := p.ExplainRequest()
	return p, req, err
}

// requireGet guards the HTML result pages: their forms submit with GET,
// so any other method answers 405 (the v1 surface is the place for POST
// bodies) instead of reaching the decoder's JSON-body path.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET")
	htmlError(w, "method "+r.Method+" not allowed (use GET)", http.StatusMethodNotAllowed)
	return false
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	_, req, err := s.parseRequest(r)
	if err != nil {
		htmlError(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	ex, err := s.def.ExplainContext(ctx, req)
	if err != nil {
		htmlError(w, err.Error(), statusForError(err))
		return
	}
	v := maprat.RenderExploration(ex)
	type tab struct {
		Title  string
		SVG    template.HTML
		Groups []maprat.GroupResult
		Result maprat.TaskResult
	}
	var tabs []tab
	for i, tr := range ex.Results {
		tabs = append(tabs, tab{
			Title:  tr.Task.String(),
			SVG:    template.HTML(v.Maps[i].SVG()),
			Groups: tr.Groups,
			Result: tr,
		})
	}
	titles := make([]string, 0, len(ex.ItemIDs))
	if s.eng != nil { // a coordinator has no local item catalog
		for _, id := range ex.ItemIDs {
			if it := s.eng.Dataset().ItemByID(id); it != nil {
				titles = append(titles, fmt.Sprintf("%s (%d)", it.Title, it.Year))
			}
		}
	}
	render(w, explainTmpl, map[string]any{
		"Query":      ex.Query.String(),
		"RawQuery":   r.URL.Query().Get("q"),
		"Items":      titles,
		"NumRatings": ex.NumRatings,
		"Overall":    ex.Overall,
		"Tabs":       tabs,
		"Elapsed":    ex.Elapsed.Round(time.Millisecond).String(),
		"FromCache":  ex.FromCache,
		"URLQuery":   template.URL(r.URL.RawQuery),
	})
}

func (s *Server) handleGroup(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	p, req, err := s.parseRequest(r)
	if err != nil {
		htmlError(w, err.Error(), http.StatusBadRequest)
		return
	}
	key, err := p.GroupKey()
	if err != nil {
		htmlError(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	// One unified call serves stats, related groups and refinements from
	// the same materialized plan. A context deadline or disconnect in any
	// stage propagates as 504/499 — refinements are no longer a separate
	// best-effort call whose cancellation was silently swallowed.
	ge, err := s.def.ExploreFullContext(ctx, req.Query, key, 0, 8)
	if err != nil {
		htmlError(w, err.Error(), statusForError(err))
		return
	}
	st := ge.Stats
	type bar struct {
		Score int
		Count int
		Width int
	}
	maxCount := 1
	for _, c := range st.Histogram {
		if c > maxCount {
			maxCount = c
		}
	}
	var bars []bar
	for sc := 1; sc < len(st.Histogram); sc++ {
		bars = append(bars, bar{Score: sc, Count: st.Histogram[sc], Width: 300 * st.Histogram[sc] / maxCount})
	}
	render(w, groupTmpl, map[string]any{
		"Query":       req.Query.String(),
		"RawQuery":    r.URL.Query().Get("q"),
		"Stats":       st,
		"Bars":        bars,
		"Related":     ge.Related,
		"Refinements": ge.Refinements,
		"URLQuery":    template.URL(r.URL.RawQuery),
	})
}

// handleBrowse renders the whole-log per-state choropleth from the
// precomputed global cube — browse mode before any query is entered.
func (s *Server) handleBrowse(w http.ResponseWriter, r *http.Request) {
	states := s.def.BrowseStates()
	if states == nil {
		htmlError(w, "browse mode needs the precomputed global cube", http.StatusServiceUnavailable)
		return
	}
	m := viz.Map{Title: "All ratings by state (whole log)"}
	for _, st := range states {
		m.Shades = append(m.Shades, viz.Shade{
			State:   st.State,
			Mean:    st.Agg.Mean(),
			Support: st.Agg.Count,
			Label:   "reviewers from " + st.State,
			Icons:   "all reviewers",
		})
	}
	render(w, browseTmpl, map[string]any{
		"SVG":    template.HTML(m.SVG()),
		"States": states,
	})
}

func (s *Server) handleEvolution(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	_, req, err := s.parseRequest(r)
	if err != nil {
		htmlError(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	points, err := s.def.EvolutionContext(ctx, req)
	if err != nil {
		htmlError(w, err.Error(), statusForError(err))
		return
	}
	type row struct {
		Year   int
		Groups []maprat.GroupResult
		Empty  bool
	}
	var rows []row
	for _, p := range points {
		y := time.Unix(p.Window.From, 0).UTC().Year()
		if p.Err != nil || p.Explanation == nil {
			rows = append(rows, row{Year: y, Empty: true})
			continue
		}
		var groups []maprat.GroupResult
		if sm := p.Explanation.Result(maprat.SimilarityMining); sm != nil {
			groups = sm.Groups
		}
		rows = append(rows, row{Year: y, Groups: groups})
	}
	render(w, evolutionTmpl, map[string]any{
		"Query": req.Query.String(),
		"Rows":  rows,
	})
}

// handleAPIExplain is the deprecated pre-v1 endpoint, kept as an alias
// for one release with its original JSON shape. New clients should use
// /api/v1/explain.
func (s *Server) handleAPIExplain(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</api/v1/explain>; rel="successor-version"`)
	_, req, err := s.parseRequest(r)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	ex, err := s.def.ExplainContext(ctx, req)
	if err != nil {
		writeJSONError(w, statusForError(err), err)
		return
	}
	type apiGroup struct {
		Key    string  `json:"key"`
		Phrase string  `json:"phrase"`
		State  string  `json:"state,omitempty"`
		Mean   float64 `json:"mean"`
		Count  int     `json:"count"`
		Std    float64 `json:"std"`
		Share  float64 `json:"share"`
	}
	type apiTask struct {
		Task      string     `json:"task"`
		Objective float64    `json:"objective"`
		Coverage  float64    `json:"coverage"`
		Groups    []apiGroup `json:"groups"`
	}
	resp := struct {
		Query      string    `json:"query"`
		ItemIDs    []int     `json:"item_ids"`
		NumRatings int       `json:"num_ratings"`
		Mean       float64   `json:"overall_mean"`
		Tasks      []apiTask `json:"tasks"`
		FromCache  bool      `json:"from_cache"`
		ElapsedMS  float64   `json:"elapsed_ms"`
	}{
		Query:      ex.Query.String(),
		ItemIDs:    ex.ItemIDs,
		NumRatings: ex.NumRatings,
		Mean:       ex.Overall.Mean(),
		FromCache:  ex.FromCache,
		ElapsedMS:  float64(ex.Elapsed.Microseconds()) / 1000,
	}
	for _, tr := range ex.Results {
		at := apiTask{Task: tr.Task.String(), Objective: tr.Objective, Coverage: tr.Coverage}
		for _, g := range tr.Groups {
			at.Groups = append(at.Groups, apiGroup{
				Key: g.Key.Param(), Phrase: g.Phrase, State: g.State,
				Mean: g.Agg.Mean(), Count: g.Agg.Count, Std: g.Agg.Std(), Share: g.Share,
			})
		}
		resp.Tasks = append(resp.Tasks, at)
	}
	api.WriteJSON(w, resp)
}

func writeJSONError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Best effort: the status code already carries the failure.
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func render(w http.ResponseWriter, t *template.Template, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := t.Execute(w, data); err != nil {
		htmlError(w, err.Error(), http.StatusInternalServerError)
	}
}
