package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro"
)

var (
	srvOnce sync.Once
	srvMemo *httptest.Server
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srvOnce.Do(func() {
		ds, err := maprat.Generate(maprat.SmallGenConfig())
		if err != nil {
			panic(err)
		}
		eng, err := maprat.Open(ds, nil)
		if err != nil {
			panic(err)
		}
		srvMemo = httptest.NewServer(New(eng))
	})
	return srvMemo
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexPage(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"MapRat", "Explain Ratings", "coverage", "Toy Story"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestIndexNotFound(t *testing.T) {
	ts := testServer(t)
	if code, _ := get(t, ts, "/nope"); code != http.StatusNotFound {
		t.Errorf("status %d, want 404", code)
	}
}

func TestHealth(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
}

func explainPath(q string, extra string) string {
	p := "/explain?q=" + url.QueryEscape(q)
	if extra != "" {
		p += "&" + extra
	}
	return p
}

func TestExplainPage(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, explainPath(`movie:"Toy Story"`, ""))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	for _, want := range []string{
		"Similarity Mining", "Diversity Mining", "<svg", "reviewers from",
		"overall μ", "explore",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("explain page missing %q", want)
		}
	}
}

func TestExplainBadRequests(t *testing.T) {
	ts := testServer(t)
	cases := []string{
		"/explain",                                     // missing q
		explainPath("notafield:x", ""),                 // bad query
		explainPath(`movie:"Toy Story"`, "k=99"),       // k out of range
		explainPath(`movie:"Toy Story"`, "coverage=7"), // bad coverage
		explainPath(`movie:"Toy Story"`, "from=abcd"),  // bad year
		explainPath(`movie:"Toy Story"`, "profile=zz%3D1"),
	}
	for _, p := range cases {
		if code, _ := get(t, ts, p); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", p, code)
		}
	}
}

func TestExplainUnknownMovie(t *testing.T) {
	ts := testServer(t)
	if code, _ := get(t, ts, explainPath(`movie:"Zyzzyva The Unfilmed"`, "")); code != http.StatusNotFound {
		t.Errorf("unknown movie status %d, want 404", code)
	}
}

func TestGroupPageFlow(t *testing.T) {
	ts := testServer(t)
	// Pull a group key out of the JSON API, then explore it.
	code, body := get(t, ts, "/api/explain?q="+url.QueryEscape(`movie:"Toy Story"`))
	if code != http.StatusOK {
		t.Fatalf("api status %d", code)
	}
	var resp struct {
		Tasks []struct {
			Groups []struct {
				Key string `json:"key"`
			} `json:"groups"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("api json: %v", err)
	}
	if len(resp.Tasks) == 0 || len(resp.Tasks[0].Groups) == 0 {
		t.Fatal("api returned no groups")
	}
	key := resp.Tasks[0].Groups[0].Key
	p := "/group?q=" + url.QueryEscape(`movie:"Toy Story"`) + "&key=" + url.QueryEscape(key)
	code, page := get(t, ts, p)
	if code != http.StatusOK {
		t.Fatalf("group page %d: %s", code, page)
	}
	for _, want := range []string{"Rating distribution", "Rating evolution", "reviewers"} {
		if !strings.Contains(page, want) {
			t.Errorf("group page missing %q", want)
		}
	}
}

func TestGroupPageBadKey(t *testing.T) {
	ts := testServer(t)
	p := "/group?q=" + url.QueryEscape(`movie:"Toy Story"`) + "&key=" + url.QueryEscape("bogus")
	if code, _ := get(t, ts, p); code != http.StatusBadRequest {
		t.Errorf("bad key status %d, want 400", code)
	}
	p = "/group?q=" + url.QueryEscape(`movie:"Toy Story"`) + "&key=" + url.QueryEscape("state=WY,occupation=farmer")
	if code, _ := get(t, ts, p); code != http.StatusNotFound {
		t.Errorf("absent group status %d, want 404", code)
	}
}

func TestEvolutionPage(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/evolution?q="+url.QueryEscape(`movie:"Toy Story"`))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "per year") {
		t.Error("evolution page missing title")
	}
	// At least a few year rows.
	if strings.Count(body, "<tr>") < 4 {
		t.Errorf("evolution page has too few rows:\n%s", body)
	}
}

func TestAPIExplainShape(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/api/explain?q="+url.QueryEscape(`actor:"Tom Hanks"`)+"&k=4")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Query      string  `json:"query"`
		NumRatings int     `json:"num_ratings"`
		Mean       float64 `json:"overall_mean"`
		Tasks      []struct {
			Task     string  `json:"task"`
			Coverage float64 `json:"coverage"`
			Groups   []struct {
				Key    string  `json:"key"`
				Phrase string  `json:"phrase"`
				Mean   float64 `json:"mean"`
				Count  int     `json:"count"`
				Share  float64 `json:"share"`
			} `json:"groups"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("json: %v", err)
	}
	if resp.NumRatings == 0 || resp.Mean == 0 {
		t.Errorf("api stats empty: %+v", resp)
	}
	if len(resp.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(resp.Tasks))
	}
	for _, task := range resp.Tasks {
		if task.Task != "SM" && task.Task != "DM" {
			t.Errorf("unexpected task %q", task.Task)
		}
		if len(task.Groups) == 0 || len(task.Groups) > 4 {
			t.Errorf("%s groups = %d, want 1..4", task.Task, len(task.Groups))
		}
		for _, g := range task.Groups {
			if g.Key == "" || g.Phrase == "" || g.Count == 0 {
				t.Errorf("incomplete group %+v", g)
			}
		}
	}
}

func TestAPIExplainErrors(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/api/explain")
	if code != http.StatusBadRequest {
		t.Fatalf("status %d", code)
	}
	var e map[string]string
	if err := json.Unmarshal([]byte(body), &e); err != nil || e["error"] == "" {
		t.Errorf("error payload: %q", body)
	}
}

func TestExplainFrameworkMode(t *testing.T) {
	ts := testServer(t)
	p := explainPath(`movie:"The Twilight Saga: Eclipse"`, "geo=off&coverage=0.10&k=2")
	code, body := get(t, ts, p)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if !strings.Contains(body, "Diversity Mining") {
		t.Error("framework-mode page incomplete")
	}
}

func TestExplainWithWindow(t *testing.T) {
	ts := testServer(t)
	code, _ := get(t, ts, explainPath(`movie:"Toy Story"`, "from=1999&to=2001"))
	if code != http.StatusOK {
		t.Fatalf("windowed explain status %d", code)
	}
}

func TestBrowsePage(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/browse")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"<svg", "by state", "CA"} {
		if !strings.Contains(body, want) {
			t.Errorf("browse page missing %q", want)
		}
	}
	// One table row per state plus header.
	if n := strings.Count(body, "<tr>"); n < 40 {
		t.Errorf("browse page has only %d rows", n)
	}
}

// TestStatusForError pins the HTTP status contract: only "the thing you
// asked for doesn't exist" errors are 404s; internal mining failures are
// 500s, never blamed on the client.
func TestStatusForError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"wrapped deadline", fmt.Errorf("mining: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{"canceled", context.Canceled, 499},
		{"no items", maprat.ErrNoItems, http.StatusNotFound},
		{"no ratings", maprat.ErrNoRatings, http.StatusNotFound},
		{"no group", fmt.Errorf("%w: state=ZZ", maprat.ErrNoGroup), http.StatusNotFound},
		{"internal mining failure", errors.New("core: solver exploded"), http.StatusInternalServerError},
		{"wrapped internal failure", fmt.Errorf("SM: %w", errors.New("boom")), http.StatusInternalServerError},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := statusForError(c.err); got != c.want {
				t.Errorf("statusForError(%v) = %d, want %d", c.err, got, c.want)
			}
		})
	}
}

// TestHandlerStatusContract drives the contract through real handlers:
// not-found-style requests answer 404 and nothing in the suite turns an
// internal error into one.
func TestHandlerStatusContract(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name string
		path string
		want int
	}{
		{"unknown movie", explainPath(`movie:"Zyzzyva The Unfilmed"`, ""), http.StatusNotFound},
		{"window without ratings", explainPath(`movie:"Toy Story"`, "from=1901&to=1902"), http.StatusNotFound},
		{"absent group", "/group?q=" + url.QueryEscape(`movie:"Toy Story"`) +
			"&key=" + url.QueryEscape("state=WY,occupation=farmer"), http.StatusNotFound},
		{"api unknown movie", "/api/explain?q=" + url.QueryEscape(`movie:"Zyzzyva The Unfilmed"`), http.StatusNotFound},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if code, body := get(t, ts, c.path); code != c.want {
				t.Errorf("GET %s = %d, want %d\n%s", c.path, code, c.want, body)
			}
		})
	}
}

// TestStatsEndpoint checks /statsz exposes the materialization tier and
// result cache counters, and that a repeated interaction moves them.
func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	// One explain plus a group view on the same query: the plan tier must
	// record at least one build and one hit.
	if code, _ := get(t, ts, explainPath(`movie:"Heat"`, "")); code != http.StatusOK {
		t.Fatalf("explain status %d", code)
	}
	code, body := get(t, ts, "/api/explain?q="+url.QueryEscape(`movie:"Heat"`))
	if code != http.StatusOK {
		t.Fatalf("api explain status %d", code)
	}
	if code, _ := get(t, ts, "/api/v1/explain?q="+url.QueryEscape(`movie:"Heat"`)); code != http.StatusOK {
		t.Fatalf("v1 explain status %d", code)
	}

	code, body = get(t, ts, "/statsz")
	if code != http.StatusOK {
		t.Fatalf("statsz status %d", code)
	}
	var resp struct {
		PlanCache struct {
			Hits      uint64 `json:"hits"`
			Builds    uint64 `json:"builds"`
			Tuples    int    `json:"tuples"`
			MaxTuples int    `json:"max_tuples"`
			Bytes     int64  `json:"bytes"`
		} `json:"plan_cache"`
		Result struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"result_cache"`
		Mines uint64 `json:"mines"`
		API   map[string]struct {
			Requests uint64            `json:"requests"`
			Status   map[string]uint64 `json:"status"`
		} `json:"api"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("statsz json: %v\n%s", err, body)
	}
	if resp.PlanCache.Builds == 0 || resp.PlanCache.Tuples == 0 || resp.PlanCache.MaxTuples == 0 {
		t.Errorf("plan tier not reporting: %+v", resp.PlanCache)
	}
	if resp.PlanCache.Bytes == 0 {
		t.Errorf("plan bytes accounting empty: %+v", resp.PlanCache)
	}
	if resp.Mines == 0 {
		t.Errorf("mine counter empty: %+v", resp)
	}
	// The second explain of the same query hits the result cache.
	if resp.Result.Hits == 0 {
		t.Errorf("result cache saw no hits: %+v", resp.Result)
	}
	// The v1 surface's per-endpoint counters ride along.
	if ep, ok := resp.API["explain"]; !ok || ep.Requests == 0 || ep.Status["2xx"] == 0 {
		t.Errorf("statsz missing v1 endpoint metrics: %+v", resp.API)
	}
}

// TestV1MountedThroughServer checks the versioned surface is reachable
// through the server mux with the shared error envelope.
func TestV1MountedThroughServer(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/api/v1/explain?q="+url.QueryEscape(`movie:"Toy Story"`))
	if code != http.StatusOK {
		t.Fatalf("v1 explain status %d: %s", code, body)
	}
	var resp struct {
		Tasks []struct {
			Task   string `json:"task"`
			Groups []struct {
				Key string `json:"key"`
			} `json:"groups"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("v1 json: %v", err)
	}
	if len(resp.Tasks) != 2 || len(resp.Tasks[0].Groups) == 0 {
		t.Fatalf("v1 payload incomplete: %s", body)
	}

	for _, p := range []string{"/api/v1/group", "/api/v1/refine", "/api/v1/drill", "/api/v1/evolution", "/api/v1/browse"} {
		q := ""
		if p != "/api/v1/browse" {
			q = "?q=" + url.QueryEscape(`movie:"Toy Story"`) + "&key=" + url.QueryEscape(resp.Tasks[0].Groups[0].Key)
		}
		if code, body := get(t, ts, p+q); code != http.StatusOK {
			t.Errorf("GET %s = %d: %s", p, code, body)
		}
	}

	code, body = get(t, ts, "/api/v1/explain")
	if code != http.StatusBadRequest {
		t.Fatalf("v1 missing q status %d", code)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error.Code != "bad_request" {
		t.Errorf("v1 error envelope: %q (err %v)", body, err)
	}
}

// TestHTMLPagesGetOnly checks the form pages reject non-GET methods with
// 405 instead of feeding them into the decoder's JSON-body path.
func TestHTMLPagesGetOnly(t *testing.T) {
	ts := testServer(t)
	for _, p := range []string{"/explain", "/group", "/evolution"} {
		resp, err := http.Post(ts.URL+p+"?q="+url.QueryEscape(`movie:"Toy Story"`), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", p, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "GET" {
			t.Errorf("POST %s Allow = %q, want GET", p, allow)
		}
	}
}

// TestLegacyAPIExplainDeprecated checks the pre-v1 endpoint still serves
// its original shape but advertises the successor.
func TestLegacyAPIExplainDeprecated(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/explain?q=" + url.QueryEscape(`movie:"Toy Story"`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy endpoint missing Deprecation header")
	}
	if !strings.Contains(resp.Header.Get("Link"), "/api/v1/explain") {
		t.Errorf("legacy endpoint Link = %q", resp.Header.Get("Link"))
	}
}

// TestGroupPageRefinementNote checks a group without drill-deeper
// children renders the unavailable note instead of an empty section.
func TestGroupPageRefinementNote(t *testing.T) {
	ts := testServer(t)
	// Descend the refinement lattice from CA until a leaf: groups at the
	// cube's MaxAVPairs bound have no drill-deeper children.
	key := "state=CA"
	for i := 0; i < 4; i++ {
		code, body := get(t, ts, "/api/v1/refine?q="+url.QueryEscape(`movie:"Toy Story"`)+
			"&key="+url.QueryEscape(key)+"&limit=1")
		if code != http.StatusOK {
			t.Fatalf("refine %q status %d: %s", key, code, body)
		}
		var refs struct {
			Refinements []struct {
				Group struct {
					Key string `json:"key"`
				} `json:"group"`
			} `json:"refinements"`
		}
		if err := json.Unmarshal([]byte(body), &refs); err != nil {
			t.Fatalf("refine json: %v", err)
		}
		if len(refs.Refinements) == 0 {
			break // key is a leaf
		}
		key = refs.Refinements[0].Group.Key
	}
	code, page := get(t, ts, "/group?q="+url.QueryEscape(`movie:"Toy Story"`)+"&key="+url.QueryEscape(key))
	if code != http.StatusOK {
		t.Fatalf("leaf group page %d", code)
	}
	if !strings.Contains(page, "drill-down unavailable") {
		t.Error("leaf group page missing the drill-down-unavailable note")
	}
}

func TestGroupPageShowsRefinements(t *testing.T) {
	ts := testServer(t)
	// The CA state group always has demographic refinements.
	p := "/group?q=" + url.QueryEscape(`movie:"Toy Story"`) + "&key=" + url.QueryEscape("state=CA")
	code, page := get(t, ts, p)
	if code != http.StatusOK {
		t.Fatalf("group page %d", code)
	}
	if !strings.Contains(page, "Drill deeper") {
		t.Error("group page missing the refinement section")
	}
}
