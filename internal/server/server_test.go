package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro"
)

var (
	srvOnce sync.Once
	srvMemo *httptest.Server
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srvOnce.Do(func() {
		ds, err := maprat.Generate(maprat.SmallGenConfig())
		if err != nil {
			panic(err)
		}
		eng, err := maprat.Open(ds, nil)
		if err != nil {
			panic(err)
		}
		srvMemo = httptest.NewServer(New(eng))
	})
	return srvMemo
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexPage(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"MapRat", "Explain Ratings", "coverage", "Toy Story"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestIndexNotFound(t *testing.T) {
	ts := testServer(t)
	if code, _ := get(t, ts, "/nope"); code != http.StatusNotFound {
		t.Errorf("status %d, want 404", code)
	}
}

func TestHealth(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
}

func explainPath(q string, extra string) string {
	p := "/explain?q=" + url.QueryEscape(q)
	if extra != "" {
		p += "&" + extra
	}
	return p
}

func TestExplainPage(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, explainPath(`movie:"Toy Story"`, ""))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	for _, want := range []string{
		"Similarity Mining", "Diversity Mining", "<svg", "reviewers from",
		"overall μ", "explore",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("explain page missing %q", want)
		}
	}
}

func TestExplainBadRequests(t *testing.T) {
	ts := testServer(t)
	cases := []string{
		"/explain",                                     // missing q
		explainPath("notafield:x", ""),                 // bad query
		explainPath(`movie:"Toy Story"`, "k=99"),       // k out of range
		explainPath(`movie:"Toy Story"`, "coverage=7"), // bad coverage
		explainPath(`movie:"Toy Story"`, "from=abcd"),  // bad year
		explainPath(`movie:"Toy Story"`, "profile=zz%3D1"),
	}
	for _, p := range cases {
		if code, _ := get(t, ts, p); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", p, code)
		}
	}
}

func TestExplainUnknownMovie(t *testing.T) {
	ts := testServer(t)
	if code, _ := get(t, ts, explainPath(`movie:"Zyzzyva The Unfilmed"`, "")); code != http.StatusNotFound {
		t.Errorf("unknown movie status %d, want 404", code)
	}
}

func TestGroupPageFlow(t *testing.T) {
	ts := testServer(t)
	// Pull a group key out of the JSON API, then explore it.
	code, body := get(t, ts, "/api/explain?q="+url.QueryEscape(`movie:"Toy Story"`))
	if code != http.StatusOK {
		t.Fatalf("api status %d", code)
	}
	var resp struct {
		Tasks []struct {
			Groups []struct {
				Key string `json:"key"`
			} `json:"groups"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("api json: %v", err)
	}
	if len(resp.Tasks) == 0 || len(resp.Tasks[0].Groups) == 0 {
		t.Fatal("api returned no groups")
	}
	key := resp.Tasks[0].Groups[0].Key
	p := "/group?q=" + url.QueryEscape(`movie:"Toy Story"`) + "&key=" + url.QueryEscape(key)
	code, page := get(t, ts, p)
	if code != http.StatusOK {
		t.Fatalf("group page %d: %s", code, page)
	}
	for _, want := range []string{"Rating distribution", "Rating evolution", "reviewers"} {
		if !strings.Contains(page, want) {
			t.Errorf("group page missing %q", want)
		}
	}
}

func TestGroupPageBadKey(t *testing.T) {
	ts := testServer(t)
	p := "/group?q=" + url.QueryEscape(`movie:"Toy Story"`) + "&key=" + url.QueryEscape("bogus")
	if code, _ := get(t, ts, p); code != http.StatusBadRequest {
		t.Errorf("bad key status %d, want 400", code)
	}
	p = "/group?q=" + url.QueryEscape(`movie:"Toy Story"`) + "&key=" + url.QueryEscape("state=WY,occupation=farmer")
	if code, _ := get(t, ts, p); code != http.StatusNotFound {
		t.Errorf("absent group status %d, want 404", code)
	}
}

func TestEvolutionPage(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/evolution?q="+url.QueryEscape(`movie:"Toy Story"`))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "per year") {
		t.Error("evolution page missing title")
	}
	// At least a few year rows.
	if strings.Count(body, "<tr>") < 4 {
		t.Errorf("evolution page has too few rows:\n%s", body)
	}
}

func TestAPIExplainShape(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/api/explain?q="+url.QueryEscape(`actor:"Tom Hanks"`)+"&k=4")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Query      string  `json:"query"`
		NumRatings int     `json:"num_ratings"`
		Mean       float64 `json:"overall_mean"`
		Tasks      []struct {
			Task     string  `json:"task"`
			Coverage float64 `json:"coverage"`
			Groups   []struct {
				Key    string  `json:"key"`
				Phrase string  `json:"phrase"`
				Mean   float64 `json:"mean"`
				Count  int     `json:"count"`
				Share  float64 `json:"share"`
			} `json:"groups"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("json: %v", err)
	}
	if resp.NumRatings == 0 || resp.Mean == 0 {
		t.Errorf("api stats empty: %+v", resp)
	}
	if len(resp.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(resp.Tasks))
	}
	for _, task := range resp.Tasks {
		if task.Task != "SM" && task.Task != "DM" {
			t.Errorf("unexpected task %q", task.Task)
		}
		if len(task.Groups) == 0 || len(task.Groups) > 4 {
			t.Errorf("%s groups = %d, want 1..4", task.Task, len(task.Groups))
		}
		for _, g := range task.Groups {
			if g.Key == "" || g.Phrase == "" || g.Count == 0 {
				t.Errorf("incomplete group %+v", g)
			}
		}
	}
}

func TestAPIExplainErrors(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/api/explain")
	if code != http.StatusBadRequest {
		t.Fatalf("status %d", code)
	}
	var e map[string]string
	if err := json.Unmarshal([]byte(body), &e); err != nil || e["error"] == "" {
		t.Errorf("error payload: %q", body)
	}
}

func TestExplainFrameworkMode(t *testing.T) {
	ts := testServer(t)
	p := explainPath(`movie:"The Twilight Saga: Eclipse"`, "geo=off&coverage=0.10&k=2")
	code, body := get(t, ts, p)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if !strings.Contains(body, "Diversity Mining") {
		t.Error("framework-mode page incomplete")
	}
}

func TestExplainWithWindow(t *testing.T) {
	ts := testServer(t)
	code, _ := get(t, ts, explainPath(`movie:"Toy Story"`, "from=1999&to=2001"))
	if code != http.StatusOK {
		t.Fatalf("windowed explain status %d", code)
	}
}

func TestBrowsePage(t *testing.T) {
	ts := testServer(t)
	code, body := get(t, ts, "/browse")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"<svg", "by state", "CA"} {
		if !strings.Contains(body, want) {
			t.Errorf("browse page missing %q", want)
		}
	}
	// One table row per state plus header.
	if n := strings.Count(body, "<tr>"); n < 40 {
		t.Errorf("browse page has only %d rows", n)
	}
}

func TestGroupPageShowsRefinements(t *testing.T) {
	ts := testServer(t)
	// The CA state group always has demographic refinements.
	p := "/group?q=" + url.QueryEscape(`movie:"Toy Story"`) + "&key=" + url.QueryEscape("state=CA")
	code, page := get(t, ts, p)
	if code != http.StatusOK {
		t.Fatalf("group page %d", code)
	}
	if !strings.Contains(page, "Drill deeper") {
		t.Error("group page missing the refinement section")
	}
}
