package viz

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cube"
	"repro/internal/geo"
)

func TestLikertEndpoints(t *testing.T) {
	r, g, b := Likert(1.0)
	if r != 170 || g != 25 || b != 25 {
		t.Errorf("Likert(1) = %d,%d,%d, want dark red", r, g, b)
	}
	r, g, b = Likert(5.0)
	if r != 22 || g != 128 || b != 44 {
		t.Errorf("Likert(5) = %d,%d,%d, want dark green", r, g, b)
	}
	rm, gm, _ := Likert(3.0)
	if rm < 200 || gm < 150 {
		t.Errorf("Likert(3) = %d,%d, want amber midpoint", rm, gm)
	}
}

func TestLikertClamps(t *testing.T) {
	r1, g1, b1 := Likert(0.0)
	r2, g2, b2 := Likert(1.0)
	if r1 != r2 || g1 != g2 || b1 != b2 {
		t.Error("Likert below scale should clamp to 1.0")
	}
	r1, g1, b1 = Likert(9.9)
	r2, g2, b2 = Likert(5.0)
	if r1 != r2 || g1 != g2 || b1 != b2 {
		t.Error("Likert above scale should clamp to 5.0")
	}
}

func TestLikertMonotoneGreenness(t *testing.T) {
	// Moving up the scale must never make the colour redder relative to
	// green: g-r is monotone nondecreasing.
	f := func(a, b uint8) bool {
		x := 1 + 4*float64(a)/255
		y := 1 + 4*float64(b)/255
		if x > y {
			x, y = y, x
		}
		rx, gx, _ := Likert(x)
		ry, gy, _ := Likert(y)
		return int(gy)-int(ry) >= int(gx)-int(rx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHexFormat(t *testing.T) {
	h := Hex(5.0)
	if h != "#16802c" {
		t.Errorf("Hex(5) = %q", h)
	}
	if len(Hex(2.2)) != 7 || Hex(2.2)[0] != '#' {
		t.Errorf("Hex(2.2) = %q", Hex(2.2))
	}
}

func TestIcons(t *testing.T) {
	k := cube.KeyAll.
		With(cube.Gender, 1).
		With(cube.Age, 0).
		With(cube.Occupation, 10).
		With(cube.State, cube.StateIndex("NY"))
	got := Icons(k)
	want := "♀ · under 18 · K-12 student"
	if got != want {
		t.Errorf("Icons = %q, want %q", got, want)
	}
	male := cube.KeyAll.With(cube.Gender, 0).With(cube.State, cube.StateIndex("CA"))
	if Icons(male) != "♂" {
		t.Errorf("Icons(male CA) = %q", Icons(male))
	}
	stateOnly := cube.KeyAll.With(cube.State, cube.StateIndex("CA"))
	if Icons(stateOnly) != "all reviewers" {
		t.Errorf("Icons(state only) = %q", Icons(stateOnly))
	}
}

func testShades() []Shade {
	return []Shade{
		{State: "CA", Mean: 4.4, Support: 812, Label: "male reviewers from California", Icons: "♂"},
		{State: "MA", Mean: 4.1, Support: 233, Label: "male reviewers from Massachusetts", Icons: "♂"},
		{State: "NY", Mean: 3.6, Support: 187, Label: "female under-18 K-12 student reviewers from New York", Icons: "♀ · under 18 · K-12 student"},
	}
}

func TestSVGStructure(t *testing.T) {
	m := Map{Title: "Similarity Mining — Toy Story", Shades: testShades()}
	svg := m.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	for _, want := range []string{
		"Similarity Mining", "CA", "MA", "NY", "WY", // all states drawn
		Hex(4.4), Hex(4.1), Hex(3.6), // shaded fills present
		"male reviewers from California",
		"♀ · under 18 · K-12 student",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One rect per state tile at minimum.
	if n := strings.Count(svg, "<rect"); n < geo.NumStates() {
		t.Errorf("only %d rects for %d states", n, geo.NumStates())
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	m := Map{Title: `<script>alert("x")</script>`, Shades: []Shade{
		{State: "CA", Mean: 3, Support: 1, Label: `a<b & "c"`, Icons: "♂"},
	}}
	svg := m.SVG()
	if strings.Contains(svg, "<script>") {
		t.Error("title not escaped")
	}
	if strings.Contains(svg, `a<b`) {
		t.Error("label not escaped")
	}
}

func TestASCIIPlain(t *testing.T) {
	m := Map{Title: "SM — Toy Story", Shades: testShades()}
	out := m.ASCII(false)
	if strings.Contains(out, "\x1b[") {
		t.Error("plain ASCII contains ANSI escapes")
	}
	for _, want := range []string{"SM — Toy Story", "CA 4.4", "MA 4.1", "NY 3.6", "μ=4.40", "n=812"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII missing %q", want)
		}
	}
	// Unshaded states render lowercase.
	if !strings.Contains(out, " tx ") {
		t.Error("unshaded TX tile missing")
	}
}

func TestASCIIColor(t *testing.T) {
	m := Map{Title: "t", Shades: testShades()}
	out := m.ASCII(true)
	if !strings.Contains(out, "\x1b[48;2;") {
		t.Error("colored ASCII lacks 24-bit background escapes")
	}
	if !strings.Contains(out, "\x1b[0m") {
		t.Error("colored ASCII lacks resets")
	}
}

func TestDominantShadePerState(t *testing.T) {
	m := Map{Shades: []Shade{
		{State: "CA", Mean: 2.0, Support: 10, Label: "small"},
		{State: "CA", Mean: 4.5, Support: 400, Label: "big"},
	}}
	svg := m.SVG()
	if !strings.Contains(svg, Hex(4.5)) {
		t.Error("dominant (larger) shade should fill the tile")
	}
	// Both groups still listed in the legend.
	if !strings.Contains(svg, "small") || !strings.Contains(svg, "big") {
		t.Error("legend must list every shade")
	}
}

func TestShadeFor(t *testing.T) {
	g := &cube.Group{
		Key: cube.KeyAll.With(cube.Gender, 0).With(cube.State, cube.StateIndex("CA")),
	}
	g.Agg.Add(4)
	g.Agg.Add(5)
	sh := ShadeFor(g)
	if sh.State != "CA" || sh.Support != 2 || sh.Mean != 4.5 {
		t.Errorf("ShadeFor = %+v", sh)
	}
	if sh.Label != "male reviewers from California" {
		t.Errorf("label = %q", sh.Label)
	}
	stateless := &cube.Group{Key: cube.KeyAll.With(cube.Gender, 1)}
	if ShadeFor(stateless).State != "" {
		t.Error("stateless group must yield empty state")
	}
}

func TestExplorationASCII(t *testing.T) {
	e := Exploration{
		Query: `movie:"Toy Story"`,
		Maps: []Map{
			{Title: "Similarity Mining", Shades: testShades()},
			{Title: "Diversity Mining", Shades: testShades()[:1]},
		},
	}
	out := e.ASCII(false)
	if !strings.Contains(out, `movie:"Toy Story"`) ||
		!strings.Contains(out, "Similarity Mining") ||
		!strings.Contains(out, "Diversity Mining") {
		t.Errorf("exploration output incomplete:\n%s", out)
	}
}

func BenchmarkSVG(b *testing.B) {
	m := Map{Title: "bench", Shades: testShades()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.SVG()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkASCIIColor(b *testing.B) {
	m := Map{Title: "bench", Shades: testShades()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.ASCII(true)) == 0 {
			b.Fatal("empty")
		}
	}
}
