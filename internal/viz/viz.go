// Package viz renders MapRat's choropleth visualizations (§2.3): each
// explanation group is anchored on its state geo-condition and shaded on a
// red→green Likert scale by its average rating — dark red for 1.0, dark
// green for 5.0 — with the remaining attribute-value pairs annotated as
// icons. Two renderers share the same tile-grid cartogram of the US: a
// self-contained SVG (for the web front-end) and an ANSI terminal view
// (for the CLI), both stdlib-only.
package viz

import (
	"fmt"
	"html"
	"strings"

	"repro/internal/cube"
	"repro/internal/geo"
	"repro/internal/model"
)

// Likert maps a mean score in [1,5] to the paper's red→green gradient.
// Values outside the scale clamp to its ends.
func Likert(mean float64) (r, g, b uint8) {
	t := (mean - float64(model.MinScore)) / float64(model.MaxScore-model.MinScore)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// Three stops: dark red → amber → dark green.
	const (
		r0, g0, b0 = 170, 25, 25
		r1, g1, b1 = 228, 188, 44
		r2, g2, b2 = 22, 128, 44
	)
	lerp := func(a, b float64, t float64) uint8 { return uint8(a + (b-a)*t + 0.5) }
	if t < 0.5 {
		u := t * 2
		return lerp(r0, r1, u), lerp(g0, g1, u), lerp(b0, b1, u)
	}
	u := (t - 0.5) * 2
	return lerp(r1, r2, u), lerp(g1, g2, u), lerp(b1, b2, u)
}

// Hex renders the Likert colour as a #rrggbb string.
func Hex(mean float64) string {
	r, g, b := Likert(mean)
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// Icons renders the non-geo attribute-value pairs of a group description
// the way the demo annotates pins: gender symbol, age range, occupation.
func Icons(k cube.Key) string {
	var parts []string
	if k.Has(cube.Gender) {
		switch model.Gender(k[cube.Gender]) {
		case model.Male:
			parts = append(parts, "♂")
		case model.Female:
			parts = append(parts, "♀")
		}
	}
	if k.Has(cube.Age) {
		parts = append(parts, model.AgeBucket(k[cube.Age]).Label())
	}
	if k.Has(cube.Occupation) {
		parts = append(parts, model.Occupation(k[cube.Occupation]).Label())
	}
	if len(parts) == 0 {
		return "all reviewers"
	}
	return strings.Join(parts, " · ")
}

// Shade is one group rendered on the map.
type Shade struct {
	State   string  // two-letter code from the group's geo-condition
	Mean    float64 // average group rating (drives the fill colour)
	Support int     // number of ratings in the group
	Label   string  // full human caption, e.g. the cube.Key phrase
	Icons   string  // compact attribute annotation (see Icons)
}

// ShadeFor builds a Shade from a candidate group.
func ShadeFor(g *cube.Group) Shade {
	state := ""
	if g.Key.Has(cube.State) {
		state = cube.StateCode(g.Key[cube.State])
	}
	return Shade{
		State:   state,
		Mean:    g.Mean(),
		Support: g.Support(),
		Label:   g.Key.Phrase(),
		Icons:   Icons(g.Key),
	}
}

// Map is one choropleth: a titled set of shaded states (one rating
// interpretation object in the paper's terms).
type Map struct {
	Title  string
	Shades []Shade
}

// dominant returns, per state, the shade that wins the tile fill (largest
// support), preserving all shades for the legend.
func (m *Map) dominant() map[string]Shade {
	out := map[string]Shade{}
	for _, s := range m.Shades {
		if s.State == "" {
			continue
		}
		if cur, ok := out[s.State]; !ok || s.Support > cur.Support {
			out[s.State] = s
		}
	}
	return out
}

// SVG geometry constants.
const (
	tile    = 62
	pad     = 4
	headerH = 34
	legendH = 46
)

// SVG renders the map as a self-contained SVG document.
func (m *Map) SVG() string {
	states := geo.States()
	maxRow, maxCol := 0, 0
	for _, s := range states {
		if s.Row > maxRow {
			maxRow = s.Row
		}
		if s.Col > maxCol {
			maxCol = s.Col
		}
	}
	width := (maxCol+1)*tile + 2*pad
	gridH := (maxRow + 1) * tile
	entryH := 18
	height := headerH + gridH + legendH + entryH*len(m.Shades) + 2*pad

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="Helvetica,Arial,sans-serif">`, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#ffffff"/>`, width, height)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="16" font-weight="bold">%s</text>`, pad, html.EscapeString(m.Title))

	dom := m.dominant()
	for _, s := range states {
		x := pad + s.Col*tile
		y := headerH + s.Row*tile
		fill := "#ededed"
		if sh, ok := dom[s.Code]; ok {
			fill = Hex(sh.Mean)
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#888" stroke-width="1" rx="4"/>`,
			x, y, tile-4, tile-4, fill)
		textFill := "#333"
		if _, ok := dom[s.Code]; ok {
			textFill = "#ffffff"
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" font-weight="bold" fill="%s">%s</text>`,
			x+8, y+22, textFill, s.Code)
		if sh, ok := dom[s.Code]; ok {
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="#ffffff">%.1f★</text>`,
				x+8, y+40, sh.Mean)
		}
	}

	// Legend: the red→green Likert gradient.
	ly := headerH + gridH + 16
	steps := 40
	lw := 200
	for i := 0; i < steps; i++ {
		mean := 1 + 4*float64(i)/float64(steps-1)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="12" fill="%s"/>`,
			pad+i*lw/steps, ly, lw/steps+1, Hex(mean))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">1.0</text>`, pad, ly+24)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">5.0</text>`, pad+lw-14, ly+24)

	// Group entries with colour chips and icon annotations.
	ey := ly + legendH - 8
	for i, sh := range m.Shades {
		y := ey + i*entryH
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s" stroke="#666"/>`,
			pad, y-10, Hex(sh.Mean))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s — %s (μ=%.2f, n=%d)</text>`,
			pad+18, y, html.EscapeString(sh.Label), html.EscapeString(sh.Icons), sh.Mean, sh.Support)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// ASCII renders the map for a terminal. With color=true the tiles carry
// 24-bit ANSI background colours; otherwise shaded tiles show their mean.
func (m *Map) ASCII(color bool) string {
	states := geo.States()
	maxRow, maxCol := 0, 0
	for _, s := range states {
		if s.Row > maxRow {
			maxRow = s.Row
		}
		if s.Col > maxCol {
			maxCol = s.Col
		}
	}
	grid := make([][]*geo.State, maxRow+1)
	for r := range grid {
		grid[r] = make([]*geo.State, maxCol+1)
	}
	for i := range states {
		s := states[i]
		grid[s.Row][s.Col] = &states[i]
	}
	dom := m.dominant()

	var b strings.Builder
	b.WriteString(m.Title)
	b.WriteByte('\n')
	for r := 0; r <= maxRow; r++ {
		for c := 0; c <= maxCol; c++ {
			s := grid[r][c]
			if s == nil {
				b.WriteString("      ")
				continue
			}
			if sh, ok := dom[s.Code]; ok {
				cell := fmt.Sprintf("%s %.1f", s.Code, sh.Mean)
				if color {
					cr, cg, cb := Likert(sh.Mean)
					fmt.Fprintf(&b, "\x1b[48;2;%d;%d;%dm\x1b[97m%-6s\x1b[0m", cr, cg, cb, cell)
				} else {
					fmt.Fprintf(&b, "%-6s", cell)
				}
			} else {
				fmt.Fprintf(&b, " %s   ", strings.ToLower(s.Code))
			}
		}
		b.WriteByte('\n')
	}
	for _, sh := range m.Shades {
		fmt.Fprintf(&b, "  [%s] %-52s %s  μ=%.2f n=%d\n",
			sh.State, sh.Label, sh.Icons, sh.Mean, sh.Support)
	}
	return b.String()
}

// Exploration is the paper's "set of Choropleth maps formed from the same
// input": one map per mining sub-problem, rendered as tabs in the UI.
type Exploration struct {
	Query string
	Maps  []Map
}

// ASCII renders every map in sequence for the terminal.
func (e *Exploration) ASCII(color bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Exploration: %s\n\n", e.Query)
	for i := range e.Maps {
		b.WriteString(e.Maps[i].ASCII(color))
		b.WriteByte('\n')
	}
	return b.String()
}
