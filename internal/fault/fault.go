// Package fault is a deterministic fault-injection HTTP transport for
// chaos-testing the scatter-gather tier. It sits behind the SDK's
// http.RoundTripper seam (client.WithHTTPClient), so the code under test
// is the real coordinator talking to real workers — only the network
// between them misbehaves, on a seeded schedule that replays
// identically run after run.
package fault

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// Action is what a firing rule does to the request.
type Action int

const (
	// Drop fails the request immediately with a synthetic connection
	// error, like a RST or an unreachable host.
	Drop Action = iota
	// Delay adds latency, then forwards the request.
	Delay
	// Error answers a synthetic HTTP error (Rule.Status, default 502)
	// without forwarding.
	Error
	// Hang blocks until the request's context ends — a wedged worker
	// that accepts the connection and then goes silent. This is the case
	// per-shard deadlines exist for.
	Hang
)

// String names the action for counters and logs.
func (a Action) String() string {
	switch a {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case Hang:
		return "hang"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Rule matches a subset of requests and injects one failure mode. The
// first matching rule whose window and probability admit the request
// wins; later rules are not consulted for it.
type Rule struct {
	// Host and Path select requests: Host matches the URL host exactly
	// ("" = any), Path is a substring match on the URL path ("" = any).
	Host string
	Path string
	// From/To bound the rule to a window of matching requests, counted
	// per rule from 0: the rule can fire while From <= seq < To. To == 0
	// means unbounded. The sequence number advances on every match, even
	// when the window or probability passes the request through — "the
	// 3rd request onward" stays the 3rd request regardless of P.
	From, To int
	// P is the probability the rule fires inside its window, drawn from
	// the transport's seeded stream (<= 0 never fires, >= 1 always).
	P float64
	// Action is the injected failure mode.
	Action Action
	// Delay is the added latency for Delay rules.
	Delay time.Duration
	// Status is the synthetic status for Error rules (default 502).
	Status int
}

func (r *Rule) matches(req *http.Request) bool {
	if r.Host != "" && req.URL.Host != r.Host {
		return false
	}
	return r.Path == "" || strings.Contains(req.URL.Path, r.Path)
}

// Transport is the injecting http.RoundTripper. Determinism contract:
// with a fixed seed, fixed rules, and a fixed per-rule sequence of
// matching requests, the same requests fail the same way — the
// probability draws come from one seeded stream consumed in
// rule-sequence order, not from wall-clock or global randomness.
// Concurrent callers racing for the same draw are serialized by the
// mutex; schedules for tests that must be exactly reproducible should
// key rules on disjoint hosts (one worker = one host), which makes each
// worker's draw sequence independent of goroutine interleaving.
type Transport struct {
	next http.RoundTripper

	mu    sync.Mutex
	rules []Rule
	seq   []int
	draws []*rand.Rand
	// injected counts fired rules by action, for test assertions.
	injected map[Action]int
}

// New builds a transport injecting rules on top of next (nil next =
// http.DefaultTransport). Each rule draws from its own SplitMix64
// substream of seed, so one rule's firing pattern is independent of how
// often the others match.
func New(seed int64, next http.RoundTripper, rules ...Rule) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	t := &Transport{
		next:     next,
		rules:    rules,
		seq:      make([]int, len(rules)),
		draws:    make([]*rand.Rand, len(rules)),
		injected: make(map[Action]int),
	}
	for i := range rules {
		t.draws[i] = rng.Sub(seed, int64(i))
	}
	return t
}

// Injected returns how many times rules with the action fired.
func (t *Transport) Injected(a Action) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected[a]
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	var fired *Rule
	t.mu.Lock()
	for i := range t.rules {
		r := &t.rules[i]
		if !r.matches(req) {
			continue
		}
		s := t.seq[i]
		t.seq[i]++
		if s < r.From || (r.To > 0 && s >= r.To) {
			continue
		}
		if r.P < 1 && t.draws[i].Float64() >= r.P {
			continue
		}
		fired = r
		t.injected[r.Action]++
		break
	}
	t.mu.Unlock()
	if fired == nil {
		return t.next.RoundTrip(req)
	}
	switch fired.Action {
	case Drop:
		return nil, fmt.Errorf("fault: dropped %s %s", req.Method, req.URL)
	case Delay:
		timer := time.NewTimer(fired.Delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.next.RoundTrip(req)
	case Error:
		status := fired.Status
		if status == 0 {
			status = http.StatusBadGateway
		}
		body := fmt.Sprintf(`{"error":{"code":"internal","message":"fault: injected %d"}}`, status)
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
			StatusCode:    status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case Hang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	default:
		return t.next.RoundTrip(req)
	}
}
