package fault

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// recordingNext counts forwarded requests and answers 200.
type recordingNext struct{ calls int }

func (n *recordingNext) RoundTrip(req *http.Request) (*http.Response, error) {
	n.calls++
	return &http.Response{
		StatusCode: http.StatusOK,
		Status:     "200 OK",
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader("ok")),
		Request:    req,
	}, nil
}

func get(t *testing.T, tr *Transport, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr.RoundTrip(req)
}

func TestDropAndWindow(t *testing.T) {
	next := &recordingNext{}
	// Drop requests 1 and 2 (0-indexed window [1,3)); pass the rest.
	tr := New(1, next, Rule{Host: "w1", From: 1, To: 3, P: 1, Action: Drop})
	var errs []bool
	for i := 0; i < 5; i++ {
		_, err := get(t, tr, "http://w1/api/v1/shard/gather")
		errs = append(errs, err != nil)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Errorf("request %d: failed=%v, want %v", i, errs[i], want[i])
		}
	}
	if got := tr.Injected(Drop); got != 2 {
		t.Errorf("Injected(Drop) = %d, want 2", got)
	}
	if next.calls != 3 {
		t.Errorf("forwarded %d requests, want 3", next.calls)
	}
}

func TestHostAndPathSelectors(t *testing.T) {
	tr := New(1, &recordingNext{}, Rule{Host: "w1", Path: "/gather", P: 1, Action: Drop})
	if _, err := get(t, tr, "http://w2/api/v1/shard/gather"); err != nil {
		t.Errorf("other host injected: %v", err)
	}
	if _, err := get(t, tr, "http://w1/api/v1/shard/info"); err != nil {
		t.Errorf("other path injected: %v", err)
	}
	if _, err := get(t, tr, "http://w1/api/v1/shard/gather"); err == nil {
		t.Error("matching request not dropped")
	}
}

func TestProbabilisticScheduleIsSeeded(t *testing.T) {
	run := func(seed int64) []bool {
		tr := New(seed, &recordingNext{}, Rule{P: 0.5, Action: Drop})
		var pattern []bool
		for i := 0; i < 64; i++ {
			_, err := get(t, tr, "http://w1/x")
			pattern = append(pattern, err != nil)
		}
		return pattern
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 64-request schedule")
	}
}

func TestErrorSynthesizesEnvelope(t *testing.T) {
	next := &recordingNext{}
	tr := New(1, next, Rule{P: 1, Action: Error, Status: 503})
	resp, err := get(t, tr, "http://w1/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("body is not the JSON envelope: %v", err)
	}
	if env.Error.Code == "" {
		t.Error("synthetic error body carries no envelope code")
	}
	if next.calls != 0 {
		t.Error("Error action forwarded the request")
	}
}

func TestDelayForwardsAndHonorsContext(t *testing.T) {
	next := &recordingNext{}
	tr := New(1, next, Rule{P: 1, Action: Delay, Delay: 10 * time.Millisecond})
	start := time.Now()
	if _, err := get(t, tr, "http://w1/x"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("delayed request returned after %v, want >= 10ms", d)
	}
	if next.calls != 1 {
		t.Error("Delay did not forward")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://w1/x", nil)
	tr2 := New(1, next, Rule{P: 1, Action: Delay, Delay: time.Minute})
	if _, err := tr2.RoundTrip(req); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("canceled delay returned %v, want DeadlineExceeded", err)
	}
}

func TestHangBlocksUntilContextEnds(t *testing.T) {
	tr := New(1, &recordingNext{}, Rule{P: 1, Action: Hang})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://w1/x", nil)
	start := time.Now()
	_, err := tr.RoundTrip(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("hang returned %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("hang returned after %v, before the context deadline", d)
	}
}
