// Package ingest implements the durable half of MapRat's live-append
// path: a CRC-checksummed write-ahead log of accepted rating batches.
// Each batch carries the monotonic epoch the store assigned it, so a
// restart replays the log and lands on exactly the pre-crash epoch —
// every served result stays a pure function of (query, epoch) across
// crashes. Batches are fsynced before they are acknowledged; a torn or
// corrupt tail is therefore unacknowledged work and is truncated away on
// open.
//
// On-disk layout (all integers little-endian):
//
//	header:  "MWAL" magic | u32 version (currently 1)
//	record:  u32 payloadLen | u32 crc32c(payload) | payload
//	payload: u64 epoch | u32 count | count × (i64 user, i64 item, i64 unix, u8 score)
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/model"
)

const (
	walMagic   = "MWAL"
	walVersion = 1

	headerLen    = 8
	recHeaderLen = 8  // payloadLen + crc
	ratingLen    = 25 // user + item + unix + score

	// maxPayload bounds a record's declared payload so a corrupt length
	// field cannot drive a huge allocation (~2.6M ratings per batch, far
	// beyond any admitted batch).
	maxPayload = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Batch is one replayed WAL record: the epoch the batch was accepted at
// and its ratings in submission order.
type Batch struct {
	Epoch   uint64
	Ratings []model.Rating
}

// WAL is an open write-ahead log positioned at its end. It is not
// internally synchronized: the ingest layer admits one writer at a time,
// so Append must not be called concurrently (Size and Path are safe from
// any goroutine).
type WAL struct {
	f    *os.File
	path string
	size atomic.Int64
	// poisoned is set when a failed append could not be rolled back
	// (truncate/seek to the last known-good offset failed): the file may
	// end in partial or unsynced garbage, and writing a valid record
	// after it would make replay stop at the garbage and silently drop
	// the acknowledged records behind it. Every later Append fails.
	// Only the single admitted writer touches it.
	poisoned bool
}

// ErrPoisoned reports an Append against a WAL whose earlier failed
// append could not be rolled back; the log must be reopened (Open
// repairs the tail) before it can accept writes again.
var ErrPoisoned = errors.New("ingest: wal poisoned by unrecoverable append failure; reopen to repair")

// Open opens (or creates) the log at path and replays it. base is the
// epoch of the data the log extends — the opened store's base epoch —
// and the first record must carry base+1, each further record the next
// epoch in sequence. Replay stops at the first torn, checksum-failing,
// or out-of-sequence record and truncates the file there: everything
// past the last good record was never acknowledged. The returned batches
// are ready to re-apply in order.
func Open(path string, base uint64) (*WAL, []Batch, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: stat wal: %w", err)
	}
	w := &WAL{f: f, path: path}
	if st.Size() < headerLen {
		// Fresh (or torn before the header finished): start clean.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: reset wal: %w", err)
		}
		var hdr [headerLen]byte
		copy(hdr[:4], walMagic)
		binary.LittleEndian.PutUint32(hdr[4:], walVersion)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: write wal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: sync wal header: %w", err)
		}
		if _, err := f.Seek(headerLen, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
		w.size.Store(headerLen)
		return w, nil, nil
	}
	batches, good, err := replay(f, base)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if good < st.Size() {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: truncate corrupt wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: sync truncated wal: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.size.Store(good)
	return w, batches, nil
}

// ReadLog replays the log at path read-only, with the same tail
// tolerance as Open but without repairing the file — the compaction path
// uses it against a live or copied log.
func ReadLog(path string, base uint64) ([]Batch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: open wal: %w", err)
	}
	defer f.Close()
	batches, _, err := replay(f, base)
	return batches, err
}

// replay validates the header and decodes records until the first bad
// one, returning the batches and the offset just past the last good
// record. Only a malformed header is an error: a bad record is the
// expected crash artifact, a bad header means this is not a WAL.
func replay(f *os.File, base uint64) ([]Batch, int64, error) {
	var hdr [headerLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, 0, fmt.Errorf("ingest: read wal header: %w", err)
	}
	if string(hdr[:4]) != walMagic {
		return nil, 0, fmt.Errorf("ingest: bad wal magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != walVersion {
		return nil, 0, fmt.Errorf("ingest: unsupported wal version %d", v)
	}

	var batches []Batch
	off := int64(headerLen)
	next := base + 1
	for {
		var rh [recHeaderLen]byte
		if _, err := f.ReadAt(rh[:], off); err != nil {
			return batches, off, nil // clean EOF or torn record header
		}
		payloadLen := binary.LittleEndian.Uint32(rh[:4])
		crc := binary.LittleEndian.Uint32(rh[4:])
		if payloadLen < 12 || payloadLen > maxPayload {
			return batches, off, nil
		}
		payload := make([]byte, payloadLen)
		if _, err := f.ReadAt(payload, off+recHeaderLen); err != nil {
			return batches, off, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return batches, off, nil
		}
		b, ok := decodeBatch(payload)
		if !ok || b.Epoch != next {
			return batches, off, nil
		}
		batches = append(batches, b)
		off += recHeaderLen + int64(payloadLen)
		next++
	}
}

func decodeBatch(payload []byte) (Batch, bool) {
	epoch := binary.LittleEndian.Uint64(payload[:8])
	count := binary.LittleEndian.Uint32(payload[8:12])
	if int(count) == 0 || len(payload) != 12+int(count)*ratingLen {
		return Batch{}, false
	}
	rs := make([]model.Rating, count)
	p := payload[12:]
	for i := range rs {
		rs[i] = model.Rating{
			UserID: int(int64(binary.LittleEndian.Uint64(p[:8]))),
			ItemID: int(int64(binary.LittleEndian.Uint64(p[8:16]))),
			Unix:   int64(binary.LittleEndian.Uint64(p[16:24])),
			Score:  int(p[24]),
		}
		p = p[ratingLen:]
	}
	return Batch{Epoch: epoch, Ratings: rs}, true
}

// Append encodes, writes, and fsyncs one batch record. The record is
// durable — and the batch may be acknowledged — when Append returns nil.
// On a failed write or sync the record is rolled back: the file is
// truncated to the last known-good offset so the next Append never lands
// a valid record after partial or unsynced garbage (replay stops at the
// first bad record, so garbage mid-log would silently discard every
// acknowledged batch after it, and an unsynced-but-persisted record
// would replay an unacknowledged batch at an epoch the live process
// reassigned). If the rollback itself fails the WAL is poisoned and all
// later appends return ErrPoisoned.
func (w *WAL) Append(epoch uint64, ratings []model.Rating) error {
	if w.poisoned {
		return ErrPoisoned
	}
	if len(ratings) == 0 {
		return errors.New("ingest: empty batch")
	}
	payloadLen := 12 + len(ratings)*ratingLen
	if payloadLen > maxPayload {
		return fmt.Errorf("ingest: batch of %d ratings exceeds the record bound", len(ratings))
	}
	buf := make([]byte, recHeaderLen+payloadLen)
	payload := buf[recHeaderLen:]
	binary.LittleEndian.PutUint64(payload[:8], epoch)
	binary.LittleEndian.PutUint32(payload[8:12], uint32(len(ratings)))
	p := payload[12:]
	for _, r := range ratings {
		binary.LittleEndian.PutUint64(p[:8], uint64(int64(r.UserID)))
		binary.LittleEndian.PutUint64(p[8:16], uint64(int64(r.ItemID)))
		binary.LittleEndian.PutUint64(p[16:24], uint64(r.Unix))
		p[24] = byte(r.Score)
		p = p[ratingLen:]
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.f.Write(buf); err != nil {
		w.rollback()
		return fmt.Errorf("ingest: append wal record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.rollback()
		return fmt.Errorf("ingest: sync wal: %w", err)
	}
	w.size.Add(int64(len(buf)))
	return nil
}

// rollback restores the file to the last known-good extent after a
// failed write or sync: whatever partial or unsynced bytes the attempt
// left are truncated away and the offset re-seeks to the good tail, so a
// later Append writes a valid log. (A sync-failed record may have partly
// persisted; truncating removes it either way, so a crash before the
// next successful sync cannot replay an unacknowledged batch.) If the
// truncate or seek fails the tail state is unknown and the WAL is
// poisoned — no record may ever be written after a dirty tail.
func (w *WAL) rollback() {
	good := w.size.Load()
	if err := w.f.Truncate(good); err != nil {
		w.poisoned = true
		return
	}
	if _, err := w.f.Seek(good, io.SeekStart); err != nil {
		w.poisoned = true
	}
}

// Size returns the log's current byte length (header included).
func (w *WAL) Size() int64 { return w.size.Load() }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close closes the log file.
func (w *WAL) Close() error { return w.f.Close() }
