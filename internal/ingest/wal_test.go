package ingest

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/model"
)

// testBatch builds n distinct ratings; base offsets the IDs so batches
// are distinguishable after a replay.
func testBatch(n, base int) []model.Rating {
	rs := make([]model.Rating, n)
	for i := range rs {
		rs[i] = model.Rating{
			UserID: base + i + 1,
			ItemID: base + i + 100,
			Score:  1 + (base+i)%5,
			Unix:   978300000 + int64(base+i),
		}
	}
	return rs
}

func tempWAL(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "ingest.wal")
}

func TestWALRoundTrip(t *testing.T) {
	path := tempWAL(t)
	w, batches, err := Open(path, 1)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	if len(batches) != 0 {
		t.Fatalf("fresh log replayed %d batches", len(batches))
	}
	if w.Size() != headerLen {
		t.Fatalf("fresh log size = %d, want %d", w.Size(), headerLen)
	}
	b2, b3 := testBatch(3, 0), testBatch(5, 50)
	if err := w.Append(2, b2); err != nil {
		t.Fatalf("Append epoch 2: %v", err)
	}
	if err := w.Append(3, b3); err != nil {
		t.Fatalf("Append epoch 3: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, replayed, err := Open(path, 1)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	want := []Batch{{Epoch: 2, Ratings: b2}, {Epoch: 3, Ratings: b3}}
	if !reflect.DeepEqual(replayed, want) {
		t.Fatalf("replay = %+v, want %+v", replayed, want)
	}
}

func TestWALEmptyBatchRejected(t *testing.T) {
	w, _, err := Open(tempWAL(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(2, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestWALCorruptTailTruncated: a record whose checksum fails is
// unacknowledged work — replay stops before it, Open truncates it away,
// and the log accepts the epoch again.
func TestWALCorruptTailTruncated(t *testing.T) {
	path := tempWAL(t)
	w, _, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, testBatch(3, 0)); err != nil {
		t.Fatal(err)
	}
	goodSize := w.Size()
	if err := w.Append(3, testBatch(4, 10)); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Flip one payload byte of the second record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[goodSize+recHeaderLen+2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, batches, err := Open(path, 1)
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	if len(batches) != 1 || batches[0].Epoch != 2 {
		t.Fatalf("replay = %+v, want exactly the epoch-2 batch", batches)
	}
	if w2.Size() != goodSize {
		t.Fatalf("size after repair = %d, want truncated to %d", w2.Size(), goodSize)
	}
	if st, _ := os.Stat(path); st.Size() != goodSize {
		t.Fatalf("file not truncated: %d bytes", st.Size())
	}
	// The repaired log accepts epoch 3 again and replays both batches.
	b3 := testBatch(2, 40)
	if err := w2.Append(3, b3); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, batches, err = Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 || !reflect.DeepEqual(batches[1].Ratings, b3) {
		t.Fatalf("replay after re-append = %+v", batches)
	}
}

// TestWALTornRecordTruncated: a crash mid-write leaves a short record;
// replay treats it as clean EOF.
func TestWALTornRecordTruncated(t *testing.T) {
	path := tempWAL(t)
	w, _, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, testBatch(3, 0)); err != nil {
		t.Fatal(err)
	}
	goodSize := w.Size()
	if err := w.Append(3, testBatch(3, 10)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := os.Truncate(path, goodSize+5); err != nil {
		t.Fatal(err)
	}
	w2, batches, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(batches) != 1 || w2.Size() != goodSize {
		t.Fatalf("torn record: %d batches, size %d (want 1, %d)", len(batches), w2.Size(), goodSize)
	}
}

// TestWALOutOfSequenceStops: replay requires consecutive epochs from
// base+1; a gap marks everything after it unacknowledged.
func TestWALOutOfSequenceStops(t *testing.T) {
	path := tempWAL(t)
	w, _, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, testBatch(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(5, testBatch(2, 10)); err != nil { // gap: want 3
		t.Fatal(err)
	}
	w.Close()
	_, batches, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 || batches[0].Epoch != 2 {
		t.Fatalf("out-of-sequence replay = %+v", batches)
	}
}

func TestWALBadMagicRejected(t *testing.T) {
	path := tempWAL(t)
	if err := os.WriteFile(path, []byte("NOTAWAL_plus_padding"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, 1); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestWALShortHeaderReset: a file torn before the header finished is
// indistinguishable from fresh — Open starts it clean.
func TestWALShortHeaderReset(t *testing.T) {
	path := tempWAL(t)
	if err := os.WriteFile(path, []byte{'M', 'W'}, 0o644); err != nil {
		t.Fatal(err)
	}
	w, batches, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(batches) != 0 || w.Size() != headerLen {
		t.Fatalf("short header: %d batches, size %d", len(batches), w.Size())
	}
}

// TestWALRollbackRestoresTail: after a failed append leaves partial
// bytes at the tail, rollback truncates back to the last known-good
// offset and re-seeks, so the next Append writes a valid record there —
// replay must never stop at garbage and silently drop acknowledged
// records written after it.
func TestWALRollbackRestoresTail(t *testing.T) {
	path := tempWAL(t)
	w, _, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	b2 := testBatch(3, 0)
	if err := w.Append(2, b2); err != nil {
		t.Fatal(err)
	}
	goodSize := w.Size()

	// Simulate a failed append's partial write: garbage lands at the
	// tail and the file offset moves past it.
	if _, err := w.f.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01}); err != nil {
		t.Fatal(err)
	}
	w.rollback()
	if w.poisoned {
		t.Fatal("rollback poisoned a recoverable WAL")
	}
	if st, _ := os.Stat(path); st.Size() != goodSize {
		t.Fatalf("rollback left %d bytes, want %d", st.Size(), goodSize)
	}

	// The next Append lands at the good tail and both records replay.
	b3 := testBatch(2, 40)
	if err := w.Append(3, b3); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, batches, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Batch{{Epoch: 2, Ratings: b2}, {Epoch: 3, Ratings: b3}}
	if !reflect.DeepEqual(batches, want) {
		t.Fatalf("replay after rollback = %+v, want %+v", batches, want)
	}
}

// TestWALPoisonedAfterUnrecoverableFailure: when the rollback itself
// fails the tail state is unknown, so every later Append must refuse
// with ErrPoisoned rather than risk writing after a dirty tail.
func TestWALPoisonedAfterUnrecoverableFailure(t *testing.T) {
	path := tempWAL(t)
	w, _, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, testBatch(2, 0)); err != nil {
		t.Fatal(err)
	}
	// Closing the file makes the write fail AND the rollback's truncate
	// fail — the unrecoverable case.
	w.f.Close()
	if err := w.Append(3, testBatch(2, 10)); err == nil {
		t.Fatal("append on closed file succeeded")
	}
	if !w.poisoned {
		t.Fatal("failed rollback did not poison the WAL")
	}
	if err := w.Append(3, testBatch(2, 10)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append on poisoned WAL = %v, want ErrPoisoned", err)
	}
}

// TestReadLogDoesNotRepair: the compaction-path reader tolerates a
// corrupt tail but leaves the file alone.
func TestReadLogDoesNotRepair(t *testing.T) {
	path := tempWAL(t)
	w, _, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	b2 := testBatch(3, 0)
	if err := w.Append(2, b2); err != nil {
		t.Fatal(err)
	}
	goodSize := w.Size()
	if err := w.Append(3, testBatch(3, 10)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	raw, _ := os.ReadFile(path)
	raw[goodSize+recHeaderLen] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	sizeBefore := int64(len(raw))

	batches, err := ReadLog(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 || !reflect.DeepEqual(batches[0].Ratings, b2) {
		t.Fatalf("ReadLog = %+v", batches)
	}
	if st, _ := os.Stat(path); st.Size() != sizeBefore {
		t.Fatalf("ReadLog repaired the file: %d -> %d bytes", sizeBefore, st.Size())
	}
}
