// Package rng centralizes the repository's deterministic random number
// generation. Every randomized component (the synthetic dataset generator,
// the RHE solver, the random baseline) seeds through this package so that
//
//   - a fixed seed reproduces the same stream on every run, and
//   - independent sub-streams can be derived for parallel workers without
//     the streams overlapping or correlating.
//
// New(seed) is stream-compatible with the historical
// rand.New(rand.NewSource(seed)) seeding, so datasets generated before the
// refactor are byte-identical. Sub(seed, stream) mixes the stream index
// through SplitMix64 before seeding, so per-restart generators handed to
// worker goroutines are decorrelated even for adjacent seeds — the naive
// seed+stream (or seed⊕stream without mixing) would make seed 2/stream 0
// collide with seed 1/stream 1.
package rng

import "math/rand"

// golden is the SplitMix64 increment (⌊2⁶⁴/φ⌋), used to spread stream
// indices across the 64-bit space before mixing.
const golden = 0x9E3779B97F4A7C15

// New returns a deterministic generator for seed (stream-compatible with
// the pre-refactor rand.NewSource seeding). The returned *rand.Rand is not
// safe for concurrent use; derive one per goroutine with Sub.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Sub returns the generator for the stream-th independent sub-stream of
// seed. Callers fan restarts or shards across goroutines by giving worker
// i the generator Sub(seed, i); results are then independent of how the
// streams are scheduled onto goroutines.
func Sub(seed, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(Mix(uint64(seed), uint64(stream)))))
}

// Mix hashes a (seed, stream) pair into a well-distributed 64-bit value
// using SplitMix64's finalizer.
func Mix(seed, stream uint64) uint64 {
	z := seed + stream*golden + golden
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
