package rng

import (
	"math/rand"
	"testing"
)

func TestNewMatchesHistoricalSeeding(t *testing.T) {
	// Datasets generated before the rng package existed must stay
	// byte-identical: New(seed) must produce the math/rand stream.
	for _, seed := range []int64{1, 7, 42, -3} {
		want := rand.New(rand.NewSource(seed))
		got := New(seed)
		for i := 0; i < 100; i++ {
			if w, g := want.Int63(), got.Int63(); w != g {
				t.Fatalf("seed %d: draw %d: got %d, want %d", seed, i, g, w)
			}
		}
	}
}

func TestSubIsDeterministic(t *testing.T) {
	a := Sub(5, 3)
	b := Sub(5, 3)
	for i := 0; i < 100; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}

func TestSubStreamsDiffer(t *testing.T) {
	// Adjacent streams of one seed, and the colliding naive pairs
	// (seed+1, stream) vs (seed, stream+1), must all produce distinct
	// streams.
	pairs := [][2][2]int64{
		{{1, 0}, {1, 1}},
		{{1, 1}, {2, 0}},
		{{0, 1}, {1, 0}},
	}
	for _, pr := range pairs {
		a := Sub(pr[0][0], pr[0][1])
		b := Sub(pr[1][0], pr[1][1])
		same := true
		for i := 0; i < 16; i++ {
			if a.Int63() != b.Int63() {
				same = false
				break
			}
		}
		if same {
			t.Errorf("streams %v and %v coincide", pr[0], pr[1])
		}
	}
}

func TestMixSpreadsLowBits(t *testing.T) {
	seen := make(map[uint64]bool)
	for s := uint64(0); s < 1000; s++ {
		v := Mix(1, s)
		if seen[v] {
			t.Fatalf("collision at stream %d", s)
		}
		seen[v] = true
	}
}
