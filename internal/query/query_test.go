package query

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/store"
)

var (
	stOnce sync.Once
	stMemo *store.Store
)

func testStore(t testing.TB) *store.Store {
	t.Helper()
	stOnce.Do(func() {
		ds, err := dataset.Generate(dataset.SmallGenConfig())
		if err != nil {
			panic(err)
		}
		stMemo, err = store.Open(ds, store.Options{})
		if err != nil {
			panic(err)
		}
	})
	return stMemo
}

func TestParseSimple(t *testing.T) {
	q, err := Parse(`movie:"Toy Story"`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := Query{Op: And, Preds: []Pred{{Field: Movie, Value: "Toy Story"}}}
	if !reflect.DeepEqual(q, want) {
		t.Errorf("Parse = %+v, want %+v", q, want)
	}
}

func TestParseConjunction(t *testing.T) {
	q, err := Parse(`director:"Steven Spielberg" AND genre:Thriller`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Op != And || len(q.Preds) != 2 {
		t.Fatalf("Parse = %+v", q)
	}
	if q.Preds[0] != (Pred{Director, "Steven Spielberg"}) {
		t.Errorf("pred 0 = %+v", q.Preds[0])
	}
	if q.Preds[1] != (Pred{Genre, "Thriller"}) {
		t.Errorf("pred 1 = %+v", q.Preds[1])
	}
}

func TestParseDisjunction(t *testing.T) {
	q, err := Parse(`movie:"The Two Towers" or movie:"Jaws" OR actor:"Tom Hanks"`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Op != Or || len(q.Preds) != 3 {
		t.Fatalf("Parse = %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		`movie:"Toy Story" AND`,
		`AND movie:Jaws`,
		`movie:"A" AND movie:"B" OR movie:"C"`, // mixed operators
		`movie:"unterminated`,
		`:novalue`,
		`movie:`,
		`badfield:value`,
		`movie:"A" movie:"B"`, // missing operator
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		`movie:"Toy Story"`,
		`actor:"Tom Hanks" AND genre:Thriller`,
		`genre:Action OR genre:Western`,
	} {
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse(%q): %v", q.String(), err)
		}
		if q.Op != q2.Op || !reflect.DeepEqual(q.Preds, q2.Preds) {
			t.Errorf("round trip: %q -> %q -> %+v", s, q.String(), q2)
		}
	}
}

func TestQueryStringIncludesWindow(t *testing.T) {
	q := Query{Preds: []Pred{{Movie, "Jaws"}}, Window: store.TimeWindow{From: 5, To: 9}}
	if got := q.String(); got != "movie:Jaws @[5,9]" {
		t.Errorf("String = %q", got)
	}
}

func TestResolveExactTitle(t *testing.T) {
	s := testStore(t)
	q, _ := Parse(`movie:"Toy Story"`)
	ids, err := Resolve(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("Toy Story resolved to %d items", len(ids))
	}
	if s.Dataset().ItemByID(ids[0]).Title != "Toy Story" {
		t.Errorf("wrong item %v", ids[0])
	}
}

func TestResolveMovieFallsBackToTerms(t *testing.T) {
	s := testStore(t)
	// Not an exact title; term matching should find the three LOTR films.
	q, _ := Parse(`movie:"Lord of the Rings"`)
	ids, err := Resolve(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("LOTR term fallback matched %d items, want 3", len(ids))
	}
}

func TestResolveConjunction(t *testing.T) {
	s := testStore(t)
	q, _ := Parse(`director:"Steven Spielberg" AND genre:Thriller`)
	ids, err := Resolve(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("Spielberg thrillers missing")
	}
	for _, id := range ids {
		it := s.Dataset().ItemByID(id)
		hasThriller, hasSpielberg := false, false
		for _, g := range it.Genres {
			if g == "Thriller" {
				hasThriller = true
			}
		}
		for _, d := range it.Directors {
			if d == "Steven Spielberg" {
				hasSpielberg = true
			}
		}
		if !hasThriller || !hasSpielberg {
			t.Errorf("item %q fails the conjunction", it.Title)
		}
	}
}

func TestResolveDisjunction(t *testing.T) {
	s := testStore(t)
	qa, _ := Parse(`actor:"Tom Hanks"`)
	qd, _ := Parse(`director:"Woody Allen"`)
	both, _ := Parse(`actor:"Tom Hanks" OR director:"Woody Allen"`)
	a, _ := Resolve(s, qa)
	d, _ := Resolve(s, qd)
	u, err := Resolve(s, both)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, id := range append(a, d...) {
		seen[id] = true
	}
	if len(u) != len(seen) {
		t.Errorf("union size %d, want %d", len(u), len(seen))
	}
	for _, id := range u {
		if !seen[id] {
			t.Errorf("item %d not in either side", id)
		}
	}
	for i := 1; i < len(u); i++ {
		if u[i-1] >= u[i] {
			t.Fatal("Resolve result not sorted")
		}
	}
}

func TestResolveEmptyIntersection(t *testing.T) {
	s := testStore(t)
	q, _ := Parse(`director:"Woody Allen" AND genre:Western`)
	ids, err := Resolve(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("Woody Allen westerns: %v", ids)
	}
}

func TestResolveNoPreds(t *testing.T) {
	s := testStore(t)
	if _, err := Resolve(s, Query{}); err == nil {
		t.Error("Resolve with no predicates should fail")
	}
}

func TestParseFieldRoundTrip(t *testing.T) {
	for _, f := range []Field{Movie, Title, Actor, Director, Genre} {
		got, err := ParseField(f.String())
		if err != nil || got != f {
			t.Errorf("ParseField(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseField("studio"); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestParseUnicodeValues(t *testing.T) {
	q, err := Parse(`movie:"Léon: The Professional" AND genre:Drama`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Preds[0].Value != "Léon: The Professional" {
		t.Errorf("unicode value = %q", q.Preds[0].Value)
	}
}

func TestParseWhitespaceHandling(t *testing.T) {
	q, err := Parse("  movie:Jaws \t AND \n genre:Horror  ")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Preds) != 2 || q.Op != And {
		t.Errorf("parsed %+v", q)
	}
}

func TestParseCaseInsensitiveOperators(t *testing.T) {
	for _, s := range []string{"movie:A and movie:B", "movie:A AND movie:B", "movie:A And movie:B"} {
		q, err := Parse(s)
		if err != nil || q.Op != And || len(q.Preds) != 2 {
			t.Errorf("Parse(%q) = %+v, %v", s, q, err)
		}
	}
}

func TestResolveWindowPreserved(t *testing.T) {
	s := testStore(t)
	q, _ := Parse(`movie:"Toy Story"`)
	lo, hi := s.TimeRange()
	q.Window = store.TimeWindow{From: lo, To: lo + (hi-lo)/2}
	ids, err := Resolve(s, q)
	if err != nil || len(ids) != 1 {
		t.Fatalf("Resolve: %v (%d)", err, len(ids))
	}
	// Resolve does not filter by time — gathering does.
	tuples := s.TuplesForItems(ids, q.Window)
	all := s.TuplesForItems(ids, store.TimeWindow{})
	if len(tuples) >= len(all) {
		t.Errorf("window did not restrict: %d vs %d", len(tuples), len(all))
	}
}
