// Package query implements MapRat's item-selection queries (§3.1, Figure
// 1): a user enters one or more attribute-value predicates over item
// attributes (movie title, actor, director, genre), combined conjunctively
// or disjunctively, optionally restricted to a time interval.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/store"
)

// Field is an item attribute a predicate can test.
type Field int

// Queryable item attributes. Movie matches the full title exactly (the
// form's "Movie Name" type) with a word-match fallback; Title always
// word-matches.
const (
	Movie Field = iota
	Title
	Actor
	Director
	Genre
)

var fieldNames = map[Field]string{
	Movie: "movie", Title: "title", Actor: "actor", Director: "director", Genre: "genre",
}

// String returns the field's query-syntax name.
func (f Field) String() string {
	if n, ok := fieldNames[f]; ok {
		return n
	}
	return fmt.Sprintf("Field(%d)", int(f))
}

// ParseField resolves a query-syntax field name.
func ParseField(s string) (Field, error) {
	for f, n := range fieldNames {
		if n == strings.ToLower(s) {
			return f, nil
		}
	}
	return 0, fmt.Errorf("query: unknown field %q", s)
}

// Pred is one attribute-value predicate.
type Pred struct {
	Field Field
	Value string
}

// String renders the predicate in query syntax.
func (p Pred) String() string {
	if strings.ContainsAny(p.Value, " \t") {
		return fmt.Sprintf("%s:%q", p.Field, p.Value)
	}
	return fmt.Sprintf("%s:%s", p.Field, p.Value)
}

// Op combines predicates.
type Op int

// The paper's two combinators: a query is conjunctive or disjunctive.
const (
	And Op = iota
	Or
)

// String returns the operator keyword.
func (o Op) String() string {
	if o == Or {
		return "OR"
	}
	return "AND"
}

// Query is a parsed item query plus its optional time restriction.
type Query struct {
	Op     Op
	Preds  []Pred
	Window store.TimeWindow
	// Epoch pins the query to a store data version under live ingestion;
	// 0 means latest. The mining layer resolves it before execution.
	// Epoch deliberately does NOT participate in String(): the plan cache
	// keys on the epoch-free text and versions entries by epoch range, so
	// an append invalidates plans surgically instead of colding every
	// key; result-cache keys fold the resolved epoch in separately.
	Epoch uint64
}

// String renders the query canonically (predicates in input order joined
// by the operator, window appended when bounded) — also the cache key.
func (q Query) String() string {
	parts := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		parts[i] = p.String()
	}
	s := strings.Join(parts, " "+q.Op.String()+" ")
	if !q.Window.IsAll() {
		s += " @" + q.Window.String()
	}
	return s
}

// Parse parses query syntax: one or more `field:value` terms joined by AND
// or OR (case-insensitive). Values containing spaces are double-quoted:
//
//	movie:"Toy Story"
//	actor:"Tom Hanks" AND genre:Thriller
//	movie:"The Two Towers" OR movie:"The Return of the King"
//
// Mixing AND and OR in one query is rejected — the paper's interface
// offers conjunctive or disjunctive queries, not arbitrary boolean trees.
func Parse(s string) (Query, error) {
	toks, err := lex(s)
	if err != nil {
		return Query{}, err
	}
	if len(toks) == 0 {
		return Query{}, fmt.Errorf("query: empty query")
	}
	q := Query{}
	opSet := false
	expectTerm := true
	for _, tok := range toks {
		upper := strings.ToUpper(tok)
		if upper == "AND" || upper == "OR" {
			if expectTerm {
				return Query{}, fmt.Errorf("query: operator %s without preceding term", upper)
			}
			op := And
			if upper == "OR" {
				op = Or
			}
			if opSet && q.Op != op {
				return Query{}, fmt.Errorf("query: cannot mix AND and OR in one query")
			}
			q.Op = op
			opSet = true
			expectTerm = true
			continue
		}
		if !expectTerm {
			return Query{}, fmt.Errorf("query: missing AND/OR before %q", tok)
		}
		pred, err := parseTerm(tok)
		if err != nil {
			return Query{}, err
		}
		q.Preds = append(q.Preds, pred)
		expectTerm = false
	}
	if expectTerm {
		return Query{}, fmt.Errorf("query: dangling operator")
	}
	return q, nil
}

// lex splits the query into terms and operators, keeping quoted values
// (including the whole field:"..." term) as single tokens.
func lex(s string) ([]string, error) {
	var toks []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '"':
			inQuote = !inQuote
		case !inQuote && (r == ' ' || r == '\t' || r == '\n'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("query: unterminated quote")
	}
	flush()
	return toks, nil
}

func parseTerm(tok string) (Pred, error) {
	colon := strings.IndexByte(tok, ':')
	if colon <= 0 {
		return Pred{}, fmt.Errorf("query: term %q is not field:value", tok)
	}
	f, err := ParseField(tok[:colon])
	if err != nil {
		return Pred{}, err
	}
	val := strings.TrimSpace(tok[colon+1:])
	if val == "" {
		return Pred{}, fmt.Errorf("query: empty value in term %q", tok)
	}
	return Pred{Field: f, Value: val}, nil
}

// Resolve evaluates the query against a store and returns the matching
// item IDs, sorted ascending. A conjunctive query intersects each
// predicate's item set; a disjunctive query unions them.
func Resolve(s *store.Store, q Query) ([]int, error) {
	if len(q.Preds) == 0 {
		return nil, fmt.Errorf("query: no predicates")
	}
	var acc map[int]bool
	for i, p := range q.Preds {
		ids := resolvePred(s, p)
		set := make(map[int]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		switch {
		case i == 0:
			acc = set
		case q.Op == And:
			for id := range acc {
				if !set[id] {
					delete(acc, id)
				}
			}
		default: // Or
			for id := range set {
				acc[id] = true
			}
		}
		if q.Op == And && len(acc) == 0 {
			return nil, nil
		}
	}
	out := make([]int, 0, len(acc))
	for id := range acc {
		out = append(out, id)
	}
	sort.Ints(out)
	return out, nil
}

func resolvePred(s *store.Store, p Pred) []int {
	switch p.Field {
	case Movie:
		if ids := s.ItemsByTitle(p.Value); len(ids) > 0 {
			return ids
		}
		return s.ItemsByTitleTerms(p.Value)
	case Title:
		return s.ItemsByTitleTerms(p.Value)
	case Actor:
		return s.ItemsByActor(p.Value)
	case Director:
		return s.ItemsByDirector(p.Value)
	case Genre:
		return s.ItemsByGenre(p.Value)
	}
	return nil
}
