package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// wait polls a job until its state turns terminal (or the test deadline).
func wait(t *testing.T, j *Job) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s := j.Snapshot(); s.State.Terminal() {
			return s
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state: %v", j.ID(), j.Snapshot().State)
	return Snapshot{}
}

func TestLifecycleDone(t *testing.T) {
	m := NewManager(Config{Workers: 1, Queue: 4})
	defer m.Close(context.Background())

	j, err := m.Submit("test", func(ctx context.Context, report func(Progress)) (any, error) {
		report(Progress{Done: 1, Total: 2})
		report(Progress{Done: 2, Total: 2})
		return "result", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := wait(t, j)
	if s.State != Done || s.Result != "result" || s.Err != nil {
		t.Fatalf("snapshot = %+v, want Done/result", s)
	}
	if !s.HasProgress || s.Progress != (Progress{Done: 2, Total: 2}) {
		t.Fatalf("progress = %+v, want 2/2", s.Progress)
	}
	if s.Started.IsZero() || s.Finished.IsZero() || s.Finished.Before(s.Started) {
		t.Fatalf("timestamps out of order: %+v", s)
	}
	if got, ok := m.Get(j.ID()); !ok || got != j {
		t.Fatal("Get lost the job")
	}
}

func TestLifecycleFailed(t *testing.T) {
	m := NewManager(Config{Workers: 1, Queue: 4})
	defer m.Close(context.Background())

	boom := errors.New("boom")
	j, err := m.Submit("test", func(ctx context.Context, report func(Progress)) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := wait(t, j); s.State != Failed || !errors.Is(s.Err, boom) {
		t.Fatalf("snapshot = %+v, want Failed/boom", s)
	}
	if st := m.Stats(); st.Failed != 1 {
		t.Fatalf("stats = %+v, want Failed=1", st)
	}
}

func TestQueueFullAndCancelQueued(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(Config{Workers: 1, Queue: 1, Gate: gate})
	defer m.Close(context.Background())

	fn := func(ctx context.Context, report func(Progress)) (any, error) { return nil, nil }
	j1, err := m.Submit("a", fn)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the (gated) worker to pull j1 off the queue so the next
	// submit deterministically occupies the only queue slot.
	for i := 0; i < 1000 && m.Stats().Queued != 0; i++ {
		time.Sleep(time.Millisecond)
	}
	j2, err := m.Submit("b", fn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("c", fn); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	if st := m.Stats(); st.Rejected != 1 || st.Queued != 1 {
		t.Fatalf("stats = %+v, want Rejected=1 Queued=1", st)
	}

	// Cancel the queued job before it ever runs.
	if _, ok := m.Cancel(j2.ID()); !ok {
		t.Fatal("cancel of queued job reported no-op")
	}
	if s := j2.Snapshot(); s.State != Canceled {
		t.Fatalf("queued job state = %v, want Canceled", s.State)
	}

	close(gate)
	if s := wait(t, j1); s.State != Done {
		t.Fatalf("gated job finished as %v", s.State)
	}
	// The worker must drop the canceled j2 without running it.
	if s := wait(t, j2); s.State != Canceled {
		t.Fatalf("canceled job reran: %v", s.State)
	}
}

func TestCancelRunning(t *testing.T) {
	m := NewManager(Config{Workers: 1, Queue: 4})
	defer m.Close(context.Background())

	started := make(chan struct{})
	j, err := m.Submit("test", func(ctx context.Context, report func(Progress)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := m.Cancel(j.ID()); !ok {
		t.Fatal("cancel of running job reported no-op")
	}
	if s := wait(t, j); s.State != Canceled || !errors.Is(s.Err, context.Canceled) {
		t.Fatalf("snapshot = %+v, want Canceled", s)
	}
	// Terminal jobs are immune to further cancels.
	if _, ok := m.Cancel(j.ID()); ok {
		t.Fatal("cancel of terminal job reported effect")
	}
}

func TestJobTimeout(t *testing.T) {
	m := NewManager(Config{Workers: 1, Queue: 4, JobTimeout: 20 * time.Millisecond})
	defer m.Close(context.Background())

	j, err := m.Submit("slow", func(ctx context.Context, report func(Progress)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	// The deadline fired, not a cancel request: that is a Failed job.
	if s := wait(t, j); s.State != Failed || !errors.Is(s.Err, context.DeadlineExceeded) {
		t.Fatalf("snapshot = %+v, want Failed/deadline", s)
	}
}

func TestResultTTLExpiry(t *testing.T) {
	m := NewManager(Config{Workers: 1, Queue: 4, ResultTTL: 10 * time.Millisecond})
	defer m.Close(context.Background())

	j, err := m.Submit("test", func(ctx context.Context, report func(Progress)) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := m.Get(j.ID()); !ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never expired")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubscribeWakes(t *testing.T) {
	m := NewManager(Config{Workers: 1, Queue: 4})
	defer m.Close(context.Background())

	release := make(chan struct{})
	j, err := m.Submit("test", func(ctx context.Context, report func(Progress)) (any, error) {
		report(Progress{Done: 1, Total: 3})
		<-release
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wake, unsub := j.Subscribe()
	defer unsub()

	sawProgress, sawDone := false, false
	last := uint64(0)
	timeout := time.After(10 * time.Second)
	for !sawDone {
		s := j.Snapshot()
		if s.Version != last {
			last = s.Version
			if s.HasProgress {
				sawProgress = true
				select {
				case release <- struct{}{}:
				default:
				}
			}
			if s.State.Terminal() {
				sawDone = true
				break
			}
		}
		select {
		case <-wake:
		case <-timeout:
			t.Fatal("subscriber never woke to the terminal state")
		}
	}
	if !sawProgress {
		t.Fatal("subscriber observed no progress before the terminal state")
	}
}

// TestConcurrentSubmitPollCancel exercises the public surface under
// -race: many goroutines submitting, polling, canceling and subscribing
// at once.
func TestConcurrentSubmitPollCancel(t *testing.T) {
	m := NewManager(Config{Workers: 4, Queue: 64})
	defer m.Close(context.Background())

	var wg sync.WaitGroup
	var mu sync.Mutex
	var ids []string
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := m.Submit("w", func(ctx context.Context, report func(Progress)) (any, error) {
				for d := 1; d <= 4; d++ {
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					report(Progress{Done: d, Total: 4})
				}
				return i, nil
			})
			if errors.Is(err, ErrQueueFull) {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			ids = append(ids, j.ID())
			mu.Unlock()
			wake, unsub := j.Subscribe()
			defer unsub()
			if i%3 == 0 {
				m.Cancel(j.ID())
			}
			for !j.Snapshot().State.Terminal() {
				select {
				case <-wake:
				case <-time.After(5 * time.Second):
					t.Errorf("job %s stuck", j.ID())
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := m.Stats()
	if st.Completed+st.Failed+st.Canceled != uint64(len(ids)) {
		t.Fatalf("stats %+v don't account for %d jobs", st, len(ids))
	}
}

func TestCloseDrains(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(Config{Workers: 1, Queue: 8, Gate: gate})

	started := make(chan struct{}, 1)
	running, err := m.Submit("long", func(ctx context.Context, report func(Progress)) (any, error) {
		started <- struct{}{}
		time.Sleep(20 * time.Millisecond) // finishes within the grace window
		return "drained", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // let the worker start job 1
	<-started
	queued, err := m.Submit("never-runs", func(ctx context.Context, report func(Progress)) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if s := running.Snapshot(); s.State != Done || s.Result != "drained" {
		t.Fatalf("running job was not drained: %+v", s)
	}
	if s := queued.Snapshot(); s.State != Canceled {
		t.Fatalf("queued job not canceled on shutdown: %+v", s)
	}
	if _, err := m.Submit("late", func(ctx context.Context, report func(Progress)) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}
