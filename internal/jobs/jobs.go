// Package jobs is MapRat's asynchronous execution subsystem: a bounded
// admission queue feeding a fixed worker pool, with a per-job state
// machine (queued → running → done/failed/canceled), TTL'd retention of
// finished jobs, cancellation wired into the standard context plumbing,
// and a lossy-progress/lossless-terminal event feed for streaming
// observers (the SSE endpoint).
//
// The package is transport- and engine-agnostic: a job is just a
// function func(ctx, report) (any, error). The HTTP layer in internal/api
// builds those closures over the mining pipelines and owns the wire
// shapes; this package owns admission, execution and lifecycle.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's lifecycle position.
type State string

// The state machine: Queued → Running → one of the three terminal
// states. A queued job canceled before a worker picks it up goes
// straight to Canceled.
const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Progress is the latest solver progress a job has reported.
type Progress struct {
	// Done and Total count restarts of the solve currently executing.
	// A job that mines several sub-problems (two tasks, coverage
	// relaxation, an evolution sweep) resets Done between solves; the
	// pair is a liveness signal, not a global percentage.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Fn is the work a job executes. It must honor ctx (cancellation and the
// job timeout arrive through it) and may call report — which is safe for
// concurrent use — as often as it likes.
type Fn func(ctx context.Context, report func(Progress)) (any, error)

// Errors surfaced by Submit.
var (
	// ErrQueueFull reports that admission control rejected the job: the
	// queue already holds Config.Queue jobs. The transport layer answers
	// it with 429 + Retry-After.
	ErrQueueFull = errors.New("jobs: admission queue full")
	// ErrClosed reports a submit after Close began; the manager no
	// longer admits work.
	ErrClosed = errors.New("jobs: manager closed")
)

// Config tunes a Manager.
type Config struct {
	// Workers is the number of jobs that execute concurrently
	// (default DefaultWorkers).
	Workers int
	// Queue bounds how many admitted jobs may wait for a worker
	// (default DefaultQueue). Submits beyond it fail with ErrQueueFull.
	Queue int
	// ResultTTL is how long a finished job (and its result) stays
	// retrievable (default DefaultResultTTL); negative retains forever.
	ResultTTL time.Duration
	// JobTimeout bounds one job's execution (default DefaultJobTimeout);
	// negative disables the deadline.
	JobTimeout time.Duration
	// Gate, when non-nil, is received from by each worker immediately
	// before it starts a job — a deterministic test seam for holding the
	// pool still while the queue is filled. Production configs leave it
	// nil.
	Gate <-chan struct{}
}

// The lifecycle defaults. The job timeout is deliberately far larger
// than the synchronous surface's request timeout: detaching long mines
// from the HTTP connection is the point of the subsystem.
const (
	DefaultWorkers    = 2
	DefaultQueue      = 32
	DefaultResultTTL  = 15 * time.Minute
	DefaultJobTimeout = 5 * time.Minute
)

// Job is one submitted unit of work. All mutable state is guarded by the
// manager-shared mutex; readers use Snapshot.
type Job struct {
	id   string
	kind string
	fn   Fn

	m *Manager

	// Guarded by m.mu.
	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	progress Progress
	hasProg  bool
	version  uint64 // bumped on every observable change
	result   any
	err      error
	cancel   context.CancelFunc // non-nil while running
	cancelRq bool               // Cancel was requested
	subs     map[int]chan struct{}
	nextSub  int
	expire   *time.Timer
}

// Snapshot is a consistent read of a job's observable state.
type Snapshot struct {
	ID       string
	Kind     string
	State    State
	Created  time.Time
	Started  time.Time // zero until the job runs
	Finished time.Time // zero until terminal
	// Progress is the latest report; HasProgress distinguishes "no
	// report yet" from a genuine zero.
	Progress    Progress
	HasProgress bool
	// Version increments on every observable change — pollers and the
	// SSE loop use it to detect "anything new since last look".
	Version uint64
	Result  any   // set when State == Done
	Err     error // set when State == Failed or Canceled
}

// Stats is the manager's gauge/counter snapshot for /statsz.
type Stats struct {
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_cap"`
	// Gauges.
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Retained int `json:"retained"`
	// Monotonic counters.
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
}

// Manager owns the queue, the worker pool and the job table.
type Manager struct {
	cfg Config

	mu   sync.Mutex
	jobs map[string]*Job

	queue chan *Job
	stop  chan struct{}
	wg    sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	seq     atomic.Uint64
	running atomic.Int64
	closed  atomic.Bool

	submitted, rejected, completed, failed, canceled atomic.Uint64
}

// NewManager starts the worker pool.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	if cfg.ResultTTL == 0 {
		cfg.ResultTTL = DefaultResultTTL
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = DefaultJobTimeout
	}
	m := &Manager{
		cfg:   cfg,
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, cfg.Queue),
		stop:  make(chan struct{}),
	}
	// The manager is the lifecycle root for every job it runs: jobs
	// outlive the submitting request by design, so their contexts hang
	// off this manager-owned context (canceled by Close), not off any
	// request context.
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background()) //maprat:allow(ctxflow) manager-owned lifecycle root; Close cancels it and drains the pool
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker(m.baseCtx)
	}
	return m
}

// Submit admits a job, or rejects it with ErrQueueFull/ErrClosed without
// blocking — admission control must answer instantly, never hang the
// caller behind a full queue. The closed check and the enqueue happen
// under the manager mutex so a concurrent Close cannot drain the queue
// between them and strand the job in Queued forever (Close barriers on
// the same mutex before draining).
func (m *Manager) Submit(kind string, fn Fn) (*Job, error) {
	j := &Job{
		id:      fmt.Sprintf("job-%06d", m.seq.Add(1)),
		kind:    kind,
		fn:      fn,
		m:       m,
		state:   Queued,
		created: time.Now(),
		subs:    map[int]chan struct{}{},
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed.Load() {
		m.rejected.Add(1)
		return nil, ErrClosed
	}
	select {
	case m.queue <- j:
		m.jobs[j.id] = j
		m.submitted.Add(1)
		return j, nil
	default:
		m.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Config returns the effective configuration, with the defaults the
// constructor filled in — callers deriving hints (e.g. Retry-After) must
// read this, not the Config they passed.
func (m *Manager) Config() Config { return m.cfg }

// Get returns a job by ID (false once it was never submitted or its
// retention expired).
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Stats returns the current gauges and counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	retained := len(m.jobs)
	m.mu.Unlock()
	return Stats{
		Workers:   m.cfg.Workers,
		QueueCap:  m.cfg.Queue,
		Queued:    len(m.queue),
		Running:   int(m.running.Load()),
		Retained:  retained,
		Submitted: m.submitted.Load(),
		Rejected:  m.rejected.Load(),
		Completed: m.completed.Load(),
		Failed:    m.failed.Load(),
		Canceled:  m.canceled.Load(),
	}
}

// Close drains the pool: no new submits are admitted, queued jobs that
// never started are canceled, and running jobs get until ctx ends to
// finish before their contexts are cut. Close returns once every worker
// has exited.
func (m *Manager) Close(ctx context.Context) error {
	if m.closed.Swap(true) {
		m.wg.Wait()
		return nil
	}
	close(m.stop)
	// Barrier: any Submit that won the race against the closed flag holds
	// the mutex until its job is enqueued; acquiring it here guarantees
	// the drain below sees every admitted job.
	m.mu.Lock()
	m.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	// Workers stop dequeuing at the stop signal; everything still queued
	// is canceled administratively.
	for {
		select {
		case j := <-m.queue:
			j.finishCanceled(errors.New("jobs: server shutting down"))
		default:
			goto drained
		}
	}
drained:
	workersDone := make(chan struct{})
	go func() { m.wg.Wait(); close(workersDone) }() //maprat:allow(ctxflow) shutdown waiter: converts wg.Wait into a channel the select below can race against ctx
	select {
	case <-workersDone:
	case <-ctx.Done():
		m.baseCancel() // cut running jobs loose
		<-workersDone
	}
	m.baseCancel()
	return nil
}

func (m *Manager) worker(ctx context.Context) {
	defer m.wg.Done()
	for {
		// Prefer the stop signal over more queued work, so Close can
		// cancel the backlog instead of racing the pool for it.
		select {
		case <-m.stop:
			return
		default:
		}
		select {
		case <-m.stop:
			return
		case j := <-m.queue:
			if m.cfg.Gate != nil {
				select {
				case <-m.cfg.Gate:
				case <-m.stop:
					j.finishCanceled(errors.New("jobs: server shutting down"))
					return
				}
			}
			m.run(ctx, j)
		}
	}
}

func (m *Manager) run(base context.Context, j *Job) {
	var ctx context.Context
	var cancel context.CancelFunc
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(base, m.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	defer cancel()

	m.mu.Lock()
	if j.state != Queued { // canceled while queued
		m.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	j.cancel = cancel
	j.bumpLocked()
	m.mu.Unlock()

	m.running.Add(1)
	result, err := j.fn(ctx, j.report)
	m.running.Add(-1)

	m.mu.Lock()
	defer m.mu.Unlock()
	j.cancel = nil
	j.finished = time.Now()
	switch {
	// A context.Canceled return counts as a cancellation when somebody
	// actually asked for one — the client via Cancel, or shutdown cutting
	// running jobs loose (closed + baseCancel). Otherwise it is the job's
	// own failure.
	case (j.cancelRq || m.closed.Load()) && err != nil && errors.Is(err, context.Canceled):
		j.state = Canceled
		j.err = err
		m.canceled.Add(1)
	case err != nil:
		j.state = Failed
		j.err = err
		m.failed.Add(1)
	default:
		j.state = Done
		j.result = result
		m.completed.Add(1)
	}
	j.bumpLocked()
	m.scheduleExpiryLocked(j)
}

// Cancel requests cancellation: a queued job is terminally canceled on
// the spot, a running job has its context cut (it reaches Canceled when
// its Fn returns), and a terminal job is left untouched. The returned
// bool reports whether the request did anything.
func (m *Manager) Cancel(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false
	}
	switch j.state {
	case Queued:
		// The worker that eventually pops it sees the terminal state and
		// drops it.
		j.cancelRq = true
		j.state = Canceled
		j.err = context.Canceled
		j.finished = time.Now()
		m.canceled.Add(1)
		j.bumpLocked()
		m.scheduleExpiryLocked(j)
		return j, true
	case Running:
		j.cancelRq = true
		if j.cancel != nil {
			j.cancel()
		}
		return j, true
	default:
		return j, false
	}
}

// finishCanceled administratively cancels a job that will never run
// (shutdown drained it from the queue).
func (j *Job) finishCanceled(cause error) {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = Canceled
	j.err = cause
	j.finished = time.Now()
	j.m.canceled.Add(1)
	j.bumpLocked()
	j.m.scheduleExpiryLocked(j)
}

// scheduleExpiryLocked arms the retention timer for a terminal job.
func (m *Manager) scheduleExpiryLocked(j *Job) {
	if m.cfg.ResultTTL < 0 {
		return
	}
	j.expire = time.AfterFunc(m.cfg.ResultTTL, func() {
		m.mu.Lock()
		delete(m.jobs, j.id)
		m.mu.Unlock()
	})
}

// report is the progress sink handed to Fn. Progress is coalescing and
// lossy by design: observers are woken and read the latest snapshot, so
// a slow subscriber only ever misses intermediate points, never the
// terminal transition.
func (j *Job) report(p Progress) {
	j.m.mu.Lock()
	j.progress = p
	j.hasProg = true
	j.bumpLocked()
	j.m.mu.Unlock()
}

// bumpLocked advances the version and wakes every subscriber.
func (j *Job) bumpLocked() {
	j.version++
	for _, ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default: // already signaled; the wake coalesces
		}
	}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Kind returns the label the job was submitted under.
func (j *Job) Kind() string { return j.kind }

// Snapshot returns a consistent copy of the job's observable state.
func (j *Job) Snapshot() Snapshot {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	return Snapshot{
		ID:          j.id,
		Kind:        j.kind,
		State:       j.state,
		Created:     j.created,
		Started:     j.started,
		Finished:    j.finished,
		Progress:    j.progress,
		HasProgress: j.hasProg,
		Version:     j.version,
		Result:      j.result,
		Err:         j.err,
	}
}

// Subscribe registers a wake channel (capacity 1, coalescing): it
// receives a signal whenever the job's observable state changes. The
// returned func unsubscribes; callers pair it with Snapshot reads.
func (j *Job) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	j.m.mu.Lock()
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	m := j.m
	j.m.mu.Unlock()
	return ch, func() {
		m.mu.Lock()
		delete(j.subs, id)
		m.mu.Unlock()
	}
}
