package explore

import (
	"testing"
	"time"

	"repro/internal/cube"
	"repro/internal/model"
)

// fixtureTuples builds a small deterministic tuple set: CA tuples split
// between two cities with known scores and timestamps, plus NY noise.
func fixtureTuples() []cube.Tuple {
	ca := cube.StateIndex("CA")
	ny := cube.StateIndex("NY")
	base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	year := int64(365 * 24 * 3600)
	mk := func(state int16, city string, score int8, at int64) cube.Tuple {
		var t cube.Tuple
		t.Vals[cube.Gender] = 0
		t.Vals[cube.Age] = 2
		t.Vals[cube.Occupation] = 12
		t.Vals[cube.State] = state
		t.Vals[cube.City] = cube.CityIndex(city)
		t.Score = score
		t.Unix = at
		return t
	}
	return []cube.Tuple{
		mk(ca, "Los Angeles", 5, base),
		mk(ca, "Los Angeles", 4, base+year),
		mk(ca, "San Francisco", 3, base+2*year),
		mk(ca, "San Francisco", 5, base+3*year),
		mk(ca, "Los Angeles", 4, base+3*year),
		mk(ny, "New York City", 2, base),
		mk(ny, "New York City", 1, base+year),
		mk(ny, "New York City", 2, base+2*year),
	}
}

func buildFixture(t *testing.T) (*cube.Cube, []cube.Tuple) {
	t.Helper()
	tuples := fixtureTuples()
	c := cube.Build(tuples, cube.Config{RequireState: true, MinSupport: 1, MaxAVPairs: 1})
	if c.Len() == 0 {
		t.Fatal("empty fixture cube")
	}
	return c, tuples
}

func caGroup(t *testing.T, c *cube.Cube) *cube.Group {
	t.Helper()
	g, ok := c.Group(cube.KeyAll.With(cube.State, cube.StateIndex("CA")))
	if !ok {
		t.Fatal("CA group missing")
	}
	return g
}

func TestStatsBasics(t *testing.T) {
	c, tuples := buildFixture(t)
	g := caGroup(t, c)
	st := Stats(tuples, g, 4)

	if st.Agg.Count != 5 {
		t.Fatalf("CA count = %d, want 5", st.Agg.Count)
	}
	wantShare := 5.0 / 8.0
	if st.Share != wantShare {
		t.Errorf("Share = %f, want %f", st.Share, wantShare)
	}
	if st.Histogram[5] != 2 || st.Histogram[4] != 2 || st.Histogram[3] != 1 {
		t.Errorf("histogram = %v", st.Histogram)
	}
	if st.Histogram[1] != 0 || st.Histogram[2] != 0 {
		t.Errorf("histogram has foreign scores: %v", st.Histogram)
	}
	if st.Phrase != "reviewers from California" {
		t.Errorf("Phrase = %q", st.Phrase)
	}
}

func TestStatsCityDrillDown(t *testing.T) {
	c, tuples := buildFixture(t)
	st := Stats(tuples, caGroup(t, c), 4)
	if len(st.Cities) != 2 {
		t.Fatalf("cities = %+v, want LA and SF", st.Cities)
	}
	if st.Cities[0].City != "Los Angeles" || st.Cities[0].Agg.Count != 3 {
		t.Errorf("top city = %+v", st.Cities[0])
	}
	if st.Cities[1].City != "San Francisco" || st.Cities[1].Agg.Count != 2 {
		t.Errorf("second city = %+v", st.Cities[1])
	}
	// City aggregates must sum to the group aggregate.
	var total cube.Agg
	for _, cs := range st.Cities {
		total.Merge(cs.Agg)
	}
	if total != st.Agg {
		t.Errorf("city sum %+v != group %+v", total, st.Agg)
	}
}

func TestStatsTimeline(t *testing.T) {
	c, tuples := buildFixture(t)
	st := Stats(tuples, caGroup(t, c), 4)
	if len(st.Timeline) != 4 {
		t.Fatalf("timeline buckets = %d, want 4", len(st.Timeline))
	}
	total := 0
	for i, b := range st.Timeline {
		total += b.Agg.Count
		if !b.End.After(b.Start) {
			t.Errorf("bucket %d empty span %v..%v", i, b.Start, b.End)
		}
		if i > 0 && !st.Timeline[i-1].End.Equal(b.Start) {
			t.Errorf("bucket %d not contiguous", i)
		}
	}
	if total != st.Agg.Count {
		t.Errorf("timeline total = %d, want %d", total, st.Agg.Count)
	}
	// First bucket holds the base-time score 5.
	if st.Timeline[0].Agg.Count == 0 {
		t.Error("first bucket empty")
	}
}

// TestStatsPreEpochTimeline is the regression test for the maxUnix
// seeding bug: a group whose ratings all predate 1970 (negative Unix)
// must get a timeline spanning exactly its own ratings, not one stretched
// forward to the epoch by a zero-initialized upper bound.
func TestStatsPreEpochTimeline(t *testing.T) {
	ca := cube.StateIndex("CA")
	day := int64(24 * 3600)
	mk := func(score int8, at int64) cube.Tuple {
		var t cube.Tuple
		t.Vals[cube.State] = ca
		t.Vals[cube.City] = cube.CityIndex("Los Angeles")
		t.Score = score
		t.Unix = at
		return t
	}
	tuples := []cube.Tuple{
		mk(5, -300*day),
		mk(4, -200*day),
		mk(3, -100*day),
	}
	c := cube.Build(tuples, cube.Config{RequireState: true, MinSupport: 1, MaxAVPairs: 1})
	st := Stats(tuples, caGroup(t, c), 4)

	if len(st.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	first, last := st.Timeline[0], st.Timeline[len(st.Timeline)-1]
	if got := first.Start.Unix(); got != -300*day {
		t.Errorf("timeline starts at %d, want the earliest rating %d", got, -300*day)
	}
	// The span must end just past the latest rating; before the fix the
	// zero-seeded maxUnix stretched it to the epoch.
	if got := last.End.Unix(); got != -100*day+1 {
		t.Errorf("timeline ends at %d, want %d (not the epoch)", got, -100*day+1)
	}
	total := 0
	for _, b := range st.Timeline {
		total += b.Agg.Count
	}
	if total != 3 {
		t.Errorf("timeline total = %d, want 3", total)
	}
}

func TestStatsDefaultBuckets(t *testing.T) {
	c, tuples := buildFixture(t)
	st := Stats(tuples, caGroup(t, c), 0)
	if len(st.Timeline) != 8 {
		t.Errorf("default buckets = %d, want 8", len(st.Timeline))
	}
}

func TestStatsStatelessGroupSkipsCities(t *testing.T) {
	tuples := fixtureTuples()
	c := cube.Build(tuples, cube.Config{RequireState: false, MinSupport: 1, MaxAVPairs: 1})
	g, ok := c.Group(cube.KeyAll.With(cube.Gender, 0))
	if !ok {
		t.Fatal("gender group missing")
	}
	st := Stats(tuples, g, 2)
	if len(st.Cities) != 0 {
		t.Errorf("stateless group produced city drill-down: %+v", st.Cities)
	}
}

func TestTimeBucketLabel(t *testing.T) {
	y := TimeBucket{
		Start: time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	if y.Label() != "1998" {
		t.Errorf("year label = %q", y.Label())
	}
	p := TimeBucket{
		Start: time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2002, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	if p.Label() != "2001-07..2002-01" {
		t.Errorf("partial label = %q", p.Label())
	}
}

func TestRelated(t *testing.T) {
	c, _ := buildFixture(t)
	ca := caGroup(t, c)
	rel := Related(c, ca)
	if len(rel) != 1 {
		t.Fatalf("related = %d groups, want just NY", len(rel))
	}
	if cube.StateCode(rel[0].Key[cube.State]) != "NY" {
		t.Errorf("related group = %v", rel[0].Key)
	}
}

func TestRelatedSortedBySupport(t *testing.T) {
	// Three states; CA's siblings are NY (3 tuples) and TX (1 tuple).
	tuples := fixtureTuples()
	var tx cube.Tuple
	tx.Vals[cube.State] = cube.StateIndex("TX")
	tx.Vals[cube.City] = cube.CityIndex("Houston")
	tx.Score = 3
	tuples = append(tuples, tx)
	c := cube.Build(tuples, cube.Config{RequireState: true, MinSupport: 1, MaxAVPairs: 1})
	g, _ := c.Group(cube.KeyAll.With(cube.State, cube.StateIndex("CA")))
	rel := Related(c, g)
	if len(rel) != 2 {
		t.Fatalf("related = %d, want 2", len(rel))
	}
	if rel[0].Support() < rel[1].Support() {
		t.Error("related groups not sorted by support")
	}
}

func TestYearWindows(t *testing.T) {
	from := time.Date(1999, 6, 1, 0, 0, 0, 0, time.UTC).Unix()
	to := time.Date(2002, 3, 1, 0, 0, 0, 0, time.UTC).Unix()
	ws := YearWindows(from, to)
	if len(ws) != 4 { // 1999, 2000, 2001, 2002
		t.Fatalf("windows = %d, want 4", len(ws))
	}
	if ws[0].From != from {
		t.Errorf("first window start = %d, want clamp to %d", ws[0].From, from)
	}
	if ws[len(ws)-1].To != to {
		t.Errorf("last window end = %d, want clamp to %d", ws[len(ws)-1].To, to)
	}
	for i, w := range ws {
		if w.To < w.From {
			t.Errorf("window %d inverted: %+v", i, w)
		}
		if i > 0 && ws[i-1].To+1 != w.From {
			t.Errorf("window %d not contiguous with %d", i, i-1)
		}
	}
	if YearWindows(to, from) != nil {
		t.Error("inverted range should yield nil")
	}
}

func TestSlidingWindows(t *testing.T) {
	ws := SlidingWindows(0, 99, 4)
	if len(ws) != 4 {
		t.Fatalf("windows = %d", len(ws))
	}
	if ws[0].From != 0 || ws[3].To != 99 {
		t.Errorf("bounds: %+v", ws)
	}
	covered := int64(0)
	for _, w := range ws {
		covered += w.To - w.From + 1
	}
	if covered != 100 {
		t.Errorf("windows cover %d seconds, want 100", covered)
	}
	if SlidingWindows(0, 99, 0) != nil {
		t.Error("n=0 should yield nil")
	}
	// Degenerate: more windows than seconds.
	tiny := SlidingWindows(10, 12, 9)
	if len(tiny) != 3 {
		t.Errorf("tiny windows = %+v", tiny)
	}
}

func TestStatsHistogramMatchesModelBounds(t *testing.T) {
	c, tuples := buildFixture(t)
	st := Stats(tuples, caGroup(t, c), 2)
	sum := 0
	for s := model.MinScore; s <= model.MaxScore; s++ {
		sum += st.Histogram[s]
	}
	if sum != st.Agg.Count {
		t.Errorf("histogram sums to %d, want %d", sum, st.Agg.Count)
	}
}
