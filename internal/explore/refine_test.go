package explore

import (
	"math"
	"testing"

	"repro/internal/cube"
)

// refineFixture: CA parent with gender split (males high, females low),
// plus NY noise so the cube has unrelated cells.
func refineFixture(t *testing.T) (*cube.Cube, []cube.Tuple) {
	t.Helper()
	ca, ny := cube.StateIndex("CA"), cube.StateIndex("NY")
	mk := func(state, gender, age int16, score int8, uid int32) cube.Tuple {
		var tp cube.Tuple
		tp.Vals[cube.Gender] = gender
		tp.Vals[cube.Age] = age
		tp.Vals[cube.Occupation] = 0
		tp.Vals[cube.State] = state
		tp.Score = score
		tp.UserID = uid
		tp.Unix = 1_000_000 + int64(uid)
		return tp
	}
	tuples := []cube.Tuple{
		mk(ca, 0, 1, 5, 1), mk(ca, 0, 1, 5, 2), mk(ca, 0, 2, 4, 3),
		mk(ca, 1, 1, 2, 4), mk(ca, 1, 2, 1, 5),
		mk(ny, 0, 1, 3, 6), mk(ny, 1, 2, 3, 7),
	}
	c := cube.Build(tuples, cube.Config{RequireState: true, MinSupport: 1, MaxAVPairs: 3})
	return c, tuples
}

func TestRefinements(t *testing.T) {
	c, _ := refineFixture(t)
	parent, ok := c.Group(cube.KeyAll.With(cube.State, cube.StateIndex("CA")))
	if !ok {
		t.Fatal("CA group missing")
	}
	refs := Refinements(c, parent)
	if len(refs) == 0 {
		t.Fatal("no refinements")
	}
	for _, r := range refs {
		// Every refinement adds exactly one condition to the parent.
		if n := r.Group.Key.NumConstrained(); n != parent.Key.NumConstrained()+1 {
			t.Errorf("refinement %v has %d conditions, want %d", r.Group.Key, n, parent.Key.NumConstrained()+1)
		}
		if !parent.Key.Contains(r.Group.Key) {
			t.Errorf("refinement %v not contained in parent", r.Group.Key)
		}
		wantDelta := r.Group.Mean() - parent.Mean()
		if math.Abs(r.Delta-wantDelta) > 1e-12 {
			t.Errorf("delta = %f, want %f", r.Delta, wantDelta)
		}
	}
	// Ordered by |Delta| descending.
	for i := 1; i < len(refs); i++ {
		if math.Abs(refs[i].Delta) > math.Abs(refs[i-1].Delta)+1e-12 {
			t.Fatal("refinements not ordered by |delta|")
		}
	}
	// The gender split must rank near the top: female-CA deviates hard.
	top := refs[0]
	if !top.Group.Key.Has(cube.Gender) && !top.Group.Key.Has(cube.Age) {
		t.Errorf("top refinement %v does not add a demographic", top.Group.Key)
	}
}

func TestRefinementsExcludeNonChildren(t *testing.T) {
	c, _ := refineFixture(t)
	parent, _ := c.Group(cube.KeyAll.With(cube.State, cube.StateIndex("CA")))
	refs := Refinements(c, parent)
	for _, r := range refs {
		if r.Group.Key[cube.State] != cube.StateIndex("CA") {
			t.Errorf("refinement %v escaped the parent's state", r.Group.Key)
		}
	}
	// A two-levels-deeper group (gender+age) must not appear.
	for _, r := range refs {
		if r.Group.Key.Has(cube.Gender) && r.Group.Key.Has(cube.Age) {
			t.Errorf("grandchild %v returned as refinement", r.Group.Key)
		}
	}
}

func TestRefinesBy(t *testing.T) {
	parent := cube.KeyAll.With(cube.State, 3)
	child := parent.With(cube.Gender, 1)
	attr, ok := refinesBy(parent, child)
	if !ok || attr != cube.Gender {
		t.Errorf("refinesBy = %v, %v", attr, ok)
	}
	if _, ok := refinesBy(parent, parent); ok {
		t.Error("a key does not refine itself")
	}
	if _, ok := refinesBy(parent, child.With(cube.Age, 2)); ok {
		t.Error("two added conditions accepted")
	}
	if _, ok := refinesBy(parent, cube.KeyAll.With(cube.State, 4).With(cube.Gender, 1)); ok {
		t.Error("disagreeing state accepted")
	}
	if _, ok := refinesBy(child, parent); ok {
		t.Error("parent accepted as refinement of child")
	}
}

func TestCompare(t *testing.T) {
	c, tuples := refineFixture(t)
	maleCA, ok1 := c.Group(cube.KeyAll.With(cube.State, cube.StateIndex("CA")).With(cube.Gender, 0))
	femaleCA, ok2 := c.Group(cube.KeyAll.With(cube.State, cube.StateIndex("CA")).With(cube.Gender, 1))
	if !ok1 || !ok2 {
		t.Fatal("gender groups missing")
	}
	cmp := Compare(tuples, maleCA, femaleCA)
	if !cmp.SiblingRelated || cmp.SiblingAttr != cube.Gender {
		t.Errorf("sibling detection: %+v", cmp)
	}
	wantGap := maleCA.Mean() - femaleCA.Mean()
	if math.Abs(cmp.MeanGap-wantGap) > 1e-12 {
		t.Errorf("gap = %f, want %f", cmp.MeanGap, wantGap)
	}
	if cmp.HistA[5] != 2 || cmp.HistA[4] != 1 {
		t.Errorf("histA = %v", cmp.HistA)
	}
	if cmp.HistB[2] != 1 || cmp.HistB[1] != 1 {
		t.Errorf("histB = %v", cmp.HistB)
	}
	if cmp.OverlapUsers != 0 {
		t.Errorf("disjoint gender groups overlap: %d", cmp.OverlapUsers)
	}
}

func TestCompareOverlap(t *testing.T) {
	c, tuples := refineFixture(t)
	ca, _ := c.Group(cube.KeyAll.With(cube.State, cube.StateIndex("CA")))
	maleCA, _ := c.Group(cube.KeyAll.With(cube.State, cube.StateIndex("CA")).With(cube.Gender, 0))
	cmp := Compare(tuples, ca, maleCA)
	// Every male-CA reviewer is also a CA reviewer.
	if cmp.OverlapUsers != maleCA.Support() {
		t.Errorf("overlap = %d, want %d", cmp.OverlapUsers, maleCA.Support())
	}
	if cmp.SiblingRelated {
		t.Error("parent/child are not siblings")
	}
}
