// Package explore implements MapRat's interactive exploration (§2.3 and
// Figure 3): per-group rating statistics, the state→city drill-down, the
// evolution of a group's rating over time, and comparison against related
// (sibling) groups.
package explore

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cube"
	"repro/internal/model"
	"repro/internal/store"
)

// CityStat is one row of the city-level drill-down.
type CityStat struct {
	City string
	Agg  cube.Agg
}

// TimeBucket is one point of a group's rating-evolution series.
type TimeBucket struct {
	Start time.Time // bucket start (inclusive)
	End   time.Time // bucket end (exclusive)
	Agg   cube.Agg
}

// Label renders the bucket span compactly ("1998" for a calendar year,
// otherwise "2001-07..2002-01").
func (b TimeBucket) Label() string {
	if b.Start.Month() == time.January && b.Start.Day() == 1 &&
		b.End.Equal(b.Start.AddDate(1, 0, 0)) {
		return fmt.Sprintf("%d", b.Start.Year())
	}
	return b.Start.Format("2006-01") + ".." + b.End.Format("2006-01")
}

// GroupStats is the Figure-3 payload for one explanation group.
type GroupStats struct {
	Key    cube.Key
	Phrase string
	Agg    cube.Agg
	// Share is the fraction of the query's rating tuples this group
	// covers (the coverage the paper requires to be "reasonable").
	Share float64
	// Histogram[s] counts ratings with score s (index 0 unused).
	Histogram [model.MaxScore + 1]int
	// Cities is the state→city drill-down, sorted by rating count
	// descending. Empty when the group carries no state condition.
	Cities []CityStat
	// Timeline is the rating evolution across equal time buckets.
	Timeline []TimeBucket
}

// Stats computes the exploration payload for one group over the query's
// tuple set. buckets controls the timeline resolution (0 defaults to 8,
// matching the default dataset's eight-year window).
func Stats(tuples []cube.Tuple, g *cube.Group, buckets int) GroupStats {
	if buckets <= 0 {
		buckets = 8
	}
	st := GroupStats{Key: g.Key, Phrase: g.Key.Phrase(), Agg: g.Agg}
	if len(tuples) > 0 {
		st.Share = float64(len(g.Members)) / float64(len(tuples))
	}

	var minUnix, maxUnix int64
	// Keyed by the descriptor city value (Wildcard = unresolved city,
	// excluded like the pre-descriptor empty string was); names are
	// rendered once per city, not per tuple.
	cities := map[int16]*cube.Agg{}
	for i, ti := range g.Members {
		t := &tuples[ti]
		st.Histogram[t.Score]++
		if g.Key.Has(cube.State) && t.Vals[cube.City] != cube.Wildcard {
			a := cities[t.Vals[cube.City]]
			if a == nil {
				a = &cube.Agg{}
				cities[t.Vals[cube.City]] = a
			}
			a.Add(t.Score)
		}
		// Both bounds seed from the first member: a zero-initialized
		// maxUnix would stretch an all-pre-1970 group's timeline to the
		// epoch (mirroring the TimeWindow epoch-bound fix).
		if i == 0 || t.Unix < minUnix {
			minUnix = t.Unix
		}
		if i == 0 || t.Unix > maxUnix {
			maxUnix = t.Unix
		}
	}
	for city, agg := range cities {
		st.Cities = append(st.Cities, CityStat{City: cube.CityName(city), Agg: *agg})
	}
	sort.Slice(st.Cities, func(a, b int) bool {
		if st.Cities[a].Agg.Count != st.Cities[b].Agg.Count {
			return st.Cities[a].Agg.Count > st.Cities[b].Agg.Count
		}
		return st.Cities[a].City < st.Cities[b].City
	})

	if len(g.Members) > 0 {
		st.Timeline = timeline(tuples, g.Members, minUnix, maxUnix, buckets)
	}
	return st
}

// timeline buckets the group's ratings into equal spans of [minUnix,
// maxUnix].
func timeline(tuples []cube.Tuple, members []int32, minUnix, maxUnix int64, buckets int) []TimeBucket {
	span := maxUnix - minUnix + 1
	if span < int64(buckets) {
		buckets = 1
	}
	out := make([]TimeBucket, buckets)
	width := span / int64(buckets)
	if width == 0 {
		width = 1
	}
	for i := range out {
		startU := minUnix + int64(i)*width
		endU := startU + width
		if i == buckets-1 {
			endU = maxUnix + 1
		}
		out[i].Start = time.Unix(startU, 0).UTC()
		out[i].End = time.Unix(endU, 0).UTC()
	}
	for _, ti := range members {
		t := &tuples[ti]
		idx := int((t.Unix - minUnix) / width)
		if idx >= buckets {
			idx = buckets - 1
		}
		out[idx].Agg.Add(t.Score)
	}
	return out
}

// Related returns the sibling groups of g present in the cube (identical
// description except one attribute's value), sorted by support descending —
// Figure 3's "compare the rating patterns of related groups". For groups
// materialized in the cube it reads the cube's memoized sibling table
// (built once per cube, amortized across a plan's explorations) instead
// of scanning every group pairwise.
func Related(c *cube.Cube, g *cube.Group) []*cube.Group {
	var out []*cube.Group
	if gi, ok := c.IndexOf(g.Key); ok {
		for _, j := range c.Siblings()[gi] {
			out = append(out, &c.Groups[j])
		}
	} else {
		// A group from outside this cube: fall back to the pairwise scan.
		for i := range c.Groups {
			other := &c.Groups[i]
			if other.Key == g.Key {
				continue
			}
			if _, ok := g.Key.SiblingOf(other.Key); ok {
				out = append(out, other)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Support() != out[b].Support() {
			return out[a].Support() > out[b].Support()
		}
		return out[a].Key.String() < out[b].Key.String()
	})
	return out
}

// YearWindows splits [from, to] into consecutive calendar-year windows —
// the discrete positions of the §3.1 time slider.
func YearWindows(from, to int64) []store.TimeWindow {
	if to < from {
		return nil
	}
	start := time.Unix(from, 0).UTC()
	end := time.Unix(to, 0).UTC()
	var out []store.TimeWindow
	for y := start.Year(); y <= end.Year(); y++ {
		lo := time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
		hi := time.Date(y+1, 1, 1, 0, 0, 0, 0, time.UTC).Unix() - 1
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		out = append(out, store.Between(lo, hi))
	}
	return out
}

// SlidingWindows splits [from, to] into n equal windows (a finer-grained
// slider for short ranges).
func SlidingWindows(from, to int64, n int) []store.TimeWindow {
	if n <= 0 || to < from {
		return nil
	}
	span := to - from + 1
	width := span / int64(n)
	if width == 0 {
		width = 1
		n = int(span)
	}
	out := make([]store.TimeWindow, 0, n)
	for i := 0; i < n; i++ {
		lo := from + int64(i)*width
		hi := lo + width - 1
		if i == n-1 {
			hi = to
		}
		out = append(out, store.Between(lo, hi))
	}
	return out
}
