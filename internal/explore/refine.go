package explore

import (
	"math"
	"sort"

	"repro/internal/cube"
	"repro/internal/model"
)

// Refinement is a child of a group in the cube lattice: the group's
// description plus exactly one more attribute-value pair. Interactive
// exploration surfaces the refinements whose rating behaviour deviates
// most from the parent — "drill deeper" in the paper's terms.
type Refinement struct {
	Group *cube.Group
	// Added is the attribute the refinement constrains beyond the parent.
	Added cube.Attr
	// Delta is the refinement's mean minus the parent's mean; large
	// absolute deltas mark sub-populations that disagree with the group
	// as a whole.
	Delta float64
}

// Refinements returns g's children present in the cube, ordered by
// |Delta| descending (ties: larger support first). The cube's MaxAVPairs
// pruning bounds how deep refinement can go.
func Refinements(c *cube.Cube, g *cube.Group) []Refinement {
	parentMean := g.Mean()
	var out []Refinement
	for i := range c.Groups {
		child := &c.Groups[i]
		if child.Key == g.Key {
			continue
		}
		added, ok := refinesBy(g.Key, child.Key)
		if !ok {
			continue
		}
		out = append(out, Refinement{
			Group: child,
			Added: added,
			Delta: child.Mean() - parentMean,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		da, db := math.Abs(out[a].Delta), math.Abs(out[b].Delta)
		if da != db {
			return da > db
		}
		if out[a].Group.Support() != out[b].Group.Support() {
			return out[a].Group.Support() > out[b].Group.Support()
		}
		return cubeKeyLess(out[a].Group.Key, out[b].Group.Key)
	})
	return out
}

// refinesBy reports whether child constrains exactly the parent's
// attributes plus one more, agreeing on all shared values.
func refinesBy(parent, child cube.Key) (cube.Attr, bool) {
	added := -1
	for a := 0; a < cube.NumAttrs; a++ {
		switch {
		case parent[a] == cube.Wildcard && child[a] != cube.Wildcard:
			if added != -1 {
				return 0, false // more than one new condition
			}
			added = a
		case parent[a] != child[a]:
			return 0, false // disagreement or a dropped condition
		}
	}
	if added == -1 {
		return 0, false
	}
	return cube.Attr(added), true
}

func cubeKeyLess(a, b cube.Key) bool {
	for i := 0; i < cube.NumAttrs; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Comparison contrasts two groups' rating behaviour over the same query —
// the paper's "convenient way to compare the rating patterns of related
// groups" (Figure 3).
type Comparison struct {
	A, B cube.Key
	// MeanGap is mean(A) − mean(B).
	MeanGap float64
	// HistA and HistB are the per-score rating counts.
	HistA, HistB [model.MaxScore + 1]int
	// OverlapUsers counts reviewers present in both groups (a reviewer
	// can belong to both only when the descriptions are non-exclusive).
	OverlapUsers int
	// SiblingAttr is set when the groups are siblings (one attribute
	// apart); it names the attribute the controversy pivots on.
	SiblingAttr    cube.Attr
	SiblingRelated bool
}

// Compare builds the comparison payload for two groups of the same cube.
func Compare(tuples []cube.Tuple, a, b *cube.Group) Comparison {
	cmp := Comparison{A: a.Key, B: b.Key, MeanGap: a.Mean() - b.Mean()}
	if attr, ok := a.Key.SiblingOf(b.Key); ok {
		cmp.SiblingAttr = attr
		cmp.SiblingRelated = true
	}
	usersA := map[int32]bool{}
	for _, ti := range a.Members {
		cmp.HistA[tuples[ti].Score]++
		usersA[tuples[ti].UserID] = true
	}
	seenOverlap := map[int32]bool{}
	for _, ti := range b.Members {
		cmp.HistB[tuples[ti].Score]++
		uid := tuples[ti].UserID
		if usersA[uid] && !seenOverlap[uid] {
			seenOverlap[uid] = true
			cmp.OverlapUsers++
		}
	}
	return cmp
}
