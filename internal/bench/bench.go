// Package bench is the experiment harness behind EXPERIMENTS.md: one
// function per experiment (E1–E9 in DESIGN.md), each regenerating the
// functional content of a paper figure or claim and printing the measured
// table. cmd/maprat-bench runs them all; the root bench_test.go wraps the
// same workloads in testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/query"
)

// Report is one experiment's rendered result.
type Report struct {
	ID    string
	Title string
	Lines []string
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Print writes the report with a header rule.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s — %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintln(w, l)
	}
}

// Experiment pairs an experiment ID with its runner.
type Experiment struct {
	ID  string
	Run func(*maprat.Engine) Report
}

// Experiments is the single ordered registry of every experiment; RunAll
// and cmd/maprat-bench both iterate it, so a new experiment registered
// here appears in default runs, -only lookup, and JSON snapshots alike.
var Experiments = []Experiment{
	{"E1", E1Queries}, {"E2", E2SimilarityToyStory}, {"E3", E3Exploration},
	{"E4", E4Controversial}, {"E5", E5Caching}, {"E6", E6QualityVsBaselines},
	{"E7", E7Scalability}, {"E8", E8Rendering}, {"E9", E9TimeSlider},
	{"E10", E10Ablations}, {"E11", E11ColdPath}, {"E12", E12Snapshot},
}

// RunAll executes every experiment against the engine and streams the
// reports.
func RunAll(eng *maprat.Engine, w io.Writer) {
	for _, e := range Experiments {
		rep := e.Run(eng)
		rep.Print(w)
	}
}

// timeIt returns the median wall time of reps runs of f.
func timeIt(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	ds := make([]time.Duration, reps)
	for i := range ds {
		start := time.Now()
		f()
		ds[i] = time.Since(start)
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return ds[reps/2]
}

func mustParse(eng *maprat.Engine, s string) maprat.Query {
	q, err := eng.ParseQuery(s)
	if err != nil {
		panic(fmt.Sprintf("bench: parse %q: %v", s, err))
	}
	return q
}

// E1QueryMix is the Figure-1 workload: the query forms the search UI
// supports (single title, actor, conjunctive director∧genre, disjunctive
// trilogy).
var E1QueryMix = []string{
	`movie:"Toy Story"`,
	`actor:"Tom Hanks"`,
	`director:"Steven Spielberg" AND genre:Thriller`,
	`movie:"The Lord of the Rings: The Fellowship of the Ring" OR movie:"The Lord of the Rings: The Two Towers" OR movie:"The Lord of the Rings: The Return of the King"`,
	`genre:Animation`,
}

// E1Queries measures query resolution (parse → item set → R_I gather) for
// the Figure-1 query mix.
func E1Queries(eng *maprat.Engine) Report {
	r := Report{ID: "E1", Title: "Figure 1 — query forms: resolution latency"}
	r.addf("%-72s %7s %9s %12s", "query", "items", "ratings", "resolve+gather")
	for _, qs := range E1QueryMix {
		q := mustParse(eng, qs)
		var ids []int
		var tuples int
		med := timeIt(5, func() {
			ids, _ = query.Resolve(eng.Store(), q)
			tuples = len(eng.Store().TuplesForItems(ids, q.Window))
		})
		r.addf("%-72s %7d %9d %12s", truncate(qs, 72), len(ids), tuples, med)
	}
	return r
}

// E2SimilarityToyStory regenerates Figure 2: the best-3 Similarity-Mining
// groups for Toy Story, checking the figure's qualitative shape (three
// geo-anchored, internally consistent, positively rated groups).
func E2SimilarityToyStory(eng *maprat.Engine) Report {
	r := Report{ID: "E2", Title: "Figure 2 — Similarity Mining for movie:\"Toy Story\""}
	q := mustParse(eng, `movie:"Toy Story"`)
	req := maprat.ExplainRequest{
		Query: q, Tasks: []maprat.Task{maprat.SimilarityMining}, DisableCache: true,
	}
	var ex *maprat.Explanation
	med := timeIt(3, func() {
		var err error
		ex, err = eng.Explain(req)
		if err != nil {
			panic(err)
		}
	})
	sm := ex.Result(maprat.SimilarityMining)
	r.addf("ratings=%d overall μ=%.2f — mined in %s", ex.NumRatings, ex.Overall.Mean(), med)
	r.addf("objective (weighted σ) = %.4f, coverage = %.1f%% (α = %.0f%%)",
		sm.Objective, sm.Coverage*100, sm.RelaxedCoverage*100)
	r.addf("%-62s %-6s %6s %6s %6s %7s", "group", "state", "μ", "σ", "n", "share")
	allPositive, allGeo := true, true
	for _, g := range sm.Groups {
		r.addf("%-62s %-6s %6.2f %6.2f %6d %6.1f%%",
			truncate(g.Phrase, 62), g.State, g.Agg.Mean(), g.Agg.Std(), g.Agg.Count, g.Share*100)
		if g.Agg.Mean() < 3.0 {
			allPositive = false
		}
		if g.State == "" {
			allGeo = false
		}
	}
	r.addf("shape check: %d groups (paper: 3) | all geo-anchored: %v (paper: yes) | all positive: %v (paper: yes)",
		len(sm.Groups), allGeo, allPositive)
	return r
}

// E3Exploration regenerates Figure 3: drill into the top SM group —
// histogram, city drill-down, rating evolution, related groups.
func E3Exploration(eng *maprat.Engine) Report {
	r := Report{ID: "E3", Title: "Figure 3 — exploration of the top Similarity group"}
	q := mustParse(eng, `movie:"Toy Story"`)
	ex, err := eng.Explain(maprat.ExplainRequest{Query: q, Tasks: []maprat.Task{maprat.SimilarityMining}})
	if err != nil {
		panic(err)
	}
	top := ex.Result(maprat.SimilarityMining).Groups[0]
	var st *maprat.GroupStats
	var related []maprat.GroupResult
	med := timeIt(5, func() {
		st, related, err = eng.ExploreGroup(q, top.Key, 8)
		if err != nil {
			panic(err)
		}
	})
	r.addf("group: %s — explored in %s", st.Phrase, med)
	r.addf("μ=%.2f σ=%.2f n=%d share=%.1f%%", st.Agg.Mean(), st.Agg.Std(), st.Agg.Count, st.Share*100)
	hist := "histogram:"
	for s := 1; s < len(st.Histogram); s++ {
		hist += fmt.Sprintf(" %d★=%d", s, st.Histogram[s])
	}
	r.Lines = append(r.Lines, hist)
	if len(st.Cities) > 0 {
		n := len(st.Cities)
		if n > 4 {
			n = 4
		}
		for _, c := range st.Cities[:n] {
			r.addf("  city %-20s μ=%.2f n=%d", c.City, c.Agg.Mean(), c.Agg.Count)
		}
	}
	shown := 0
	for _, b := range st.Timeline {
		if b.Agg.Count == 0 {
			continue
		}
		r.addf("  %s μ=%.2f n=%d", b.Label(), b.Agg.Mean(), b.Agg.Count)
		shown++
	}
	r.addf("timeline points=%d, related groups=%d", shown, len(related))
	return r
}

// FrameworkCube is the un-anchored candidate configuration used by the
// intro's controversial-title analysis.
func FrameworkCube() cube.Config {
	return cube.Config{RequireState: false, MinSupport: 10, MaxAVPairs: 2, SkipApex: true}
}

// E4Controversial regenerates the intro example: Diversity Mining on the
// polarized title must surface a sibling pair with a large gap while the
// overall average looks mediocre (paper: 4.8/10 ≈ 2.4/5).
func E4Controversial(eng *maprat.Engine) Report {
	r := Report{ID: "E4", Title: "Intro example — Diversity Mining on the controversial title"}
	q := mustParse(eng, `movie:"The Twilight Saga: Eclipse"`)
	s := maprat.DefaultSettings()
	s.K = 2
	s.Coverage = 0.10
	free := FrameworkCube()
	req := maprat.ExplainRequest{
		Query: q, Settings: s, Tasks: []maprat.Task{maprat.DiversityMining},
		CubeConfig: &free, DisableCache: true,
	}
	var ex *maprat.Explanation
	med := timeIt(3, func() {
		var err error
		ex, err = eng.Explain(req)
		if err != nil {
			panic(err)
		}
	})
	dm := ex.Result(maprat.DiversityMining)
	r.addf("overall μ=%.2f over %d ratings (paper: ≈2.4/5) — mined in %s",
		ex.Overall.Mean(), ex.NumRatings, med)
	for _, g := range dm.Groups {
		r.addf("  %-48s μ=%.2f n=%d", truncate(g.Phrase, 48), g.Agg.Mean(), g.Agg.Count)
	}
	gap := 0.0
	for i := range dm.Groups {
		for j := i + 1; j < len(dm.Groups); j++ {
			if d := math.Abs(dm.Groups[i].Agg.Mean() - dm.Groups[j].Agg.Mean()); d > gap {
				gap = d
			}
		}
	}
	sibling := false
	if len(dm.Groups) >= 2 {
		_, sibling = dm.Groups[0].Key.SiblingOf(dm.Groups[1].Key)
	}
	r.addf("shape check: max pair gap = %.2f stars (paper: love vs hate) | sibling pair: %v", gap, sibling)

	// The intro's exact pair (male vs female under-18) covers only ~4% of
	// the audience, so it needs the coverage constraint dropped further.
	s.Coverage = 0.03
	req.Settings = s
	ex2, err := eng.Explain(req)
	if err == nil {
		dm2 := ex2.Result(maprat.DiversityMining)
		r.addf("with α=3%% (the intro pair is a small slice of the audience):")
		for _, g := range dm2.Groups {
			r.addf("  %-48s μ=%.2f n=%d", truncate(g.Phrase, 48), g.Agg.Mean(), g.Agg.Count)
		}
	}
	return r
}

// E5Caching measures the §2.3 latency claim: the same query cold (no
// cache), warm (explanation cache) — and reports the store-open
// precomputation cost amortized across queries.
func E5Caching(eng *maprat.Engine) Report {
	r := Report{ID: "E5", Title: "§2.3 — pre-computation and caching ablation"}
	q := mustParse(eng, `actor:"Tom Hanks"`)
	cold := timeIt(3, func() {
		if _, err := eng.Explain(maprat.ExplainRequest{Query: q, DisableCache: true}); err != nil {
			panic(err)
		}
	})
	// Prime, then measure warm hits.
	if _, err := eng.Explain(maprat.ExplainRequest{Query: q}); err != nil {
		panic(err)
	}
	warm := timeIt(5, func() {
		ex, err := eng.Explain(maprat.ExplainRequest{Query: q})
		if err != nil || !ex.FromCache {
			panic(fmt.Sprintf("expected cache hit, err=%v", err))
		}
	})
	r.addf("cold (full mining)      : %12s", cold)
	r.addf("warm (result cache hit) : %12s", warm)
	if warm > 0 {
		r.addf("speedup                 : %11.0fx", float64(cold)/float64(warm))
	}
	hits, misses := eng.Store().Cache().Stats()
	r.addf("cache stats: %d hits / %d misses", hits, misses)
	return r
}

// E6QualityVsBaselines compares RHE to the exhaustive optimum (small
// instances) and to greedy / best-of-N random selections (full instances):
// the inherited claim from ref [2] that randomized hill exploration is the
// right solver for these NP-hard problems.
func E6QualityVsBaselines(eng *maprat.Engine) Report {
	r := Report{ID: "E6", Title: "ref [2] — RHE vs exhaustive / greedy / random"}
	queries := []string{
		`movie:"Toy Story"`, `movie:"Forrest Gump"`, `movie:"Jurassic Park"`,
		`movie:"Heat"`, `movie:"The Green Mile"`, `movie:"Apollo 13"`,
	}

	// Part 1: optimality gap on small instances (K=2, pruned candidates).
	r.addf("-- optimality gap (K=2, coarse candidates, exact optimum by enumeration) --")
	r.addf("%-28s %5s %10s %10s %8s", "query", "cands", "RHE obj", "OPT obj", "gap")
	gapSum, gapN := 0.0, 0
	for _, qs := range queries {
		p := buildProblem(eng, qs, core.SimilarityMining, func(s *maprat.Settings) {
			s.K = 2
			s.Coverage = 0.10
		}, coarseCube())
		if p == nil {
			continue
		}
		opt, err := p.SolveExhaustive()
		if err != nil || !opt.Feasible {
			continue
		}
		rhe := p.SolveRHE()
		gap := rhe.Objective - opt.Objective
		r.addf("%-28s %5d %10.4f %10.4f %8.4f", truncate(qs, 28), len(p.Candidates()), rhe.Objective, opt.Objective, gap)
		gapSum += gap
		gapN++
	}
	if gapN > 0 {
		r.addf("mean optimality gap over %d instances: %.4f (0 = always optimal)", gapN, gapSum/float64(gapN))
	}

	// Part 2: RHE vs greedy vs random at demo settings, both tasks.
	for _, task := range []core.Task{core.SimilarityMining, core.DiversityMining} {
		r.addf("-- %s at demo settings (K=3) --", task)
		r.addf("%-28s %12s %12s %12s | %10s %10s %10s", "query",
			"RHE obj", "greedy obj", "random obj", "RHE", "greedy", "random")
		for _, qs := range queries {
			p := buildProblem(eng, qs, task, nil, nil)
			if p == nil {
				continue
			}
			var rhe, greedy, random core.Solution
			tRHE := timeIt(3, func() { rhe = p.SolveRHE() })
			tGreedy := timeIt(3, func() { greedy = p.SolveGreedy() })
			tRandom := timeIt(3, func() { random = p.SolveRandom(p.Settings.Restarts) })
			r.addf("%-28s %12.4f %12.4f %12.4f | %10s %10s %10s",
				truncate(qs, 28), feasObj(rhe), feasObj(greedy), feasObj(random),
				tRHE, tGreedy, tRandom)
		}
	}
	r.addf("(objectives: lower is better; NaN marks an infeasible heuristic result)")
	return r
}

func feasObj(s core.Solution) float64 {
	if !s.Feasible {
		return math.NaN()
	}
	return s.Objective
}

func coarseCube() *cube.Config {
	c := cube.Config{RequireState: true, MinSupport: 0, MaxAVPairs: 1, SkipApex: true}
	return &c
}

// buildProblem resolves a query and constructs a mining problem directly
// (bypassing Explain) so solvers can be compared on identical instances.
// MinSupport 0 in the override means "adaptive like the engine".
func buildProblem(eng *maprat.Engine, qs string, task core.Task, tweak func(*maprat.Settings), cfgOverride *cube.Config) *core.Problem {
	q := mustParse(eng, qs)
	ids, err := query.Resolve(eng.Store(), q)
	if err != nil || len(ids) == 0 {
		return nil
	}
	tuples := eng.Store().TuplesForItems(ids, q.Window)
	if len(tuples) == 0 {
		return nil
	}
	cfg := cube.DefaultConfig()
	if cfgOverride != nil {
		cfg = *cfgOverride
	}
	if cfg.MinSupport == 0 {
		cfg.MinSupport = len(tuples) / 50
		if cfg.MinSupport < 3 {
			cfg.MinSupport = 3
		}
	}
	cfg = maprat.AdaptCubeConfig(cfg, len(tuples))
	// Coarse instances for exhaustive search need aggressive pruning.
	if cfgOverride != nil && cfgOverride.MaxAVPairs == 1 {
		cfg.MinSupport = len(tuples) / 60
		if cfg.MinSupport < 8 {
			cfg.MinSupport = 8
		}
	}
	c := cube.Build(tuples, cfg)
	s := maprat.DefaultSettings()
	if tweak != nil {
		tweak(&s)
	}
	p, err := core.NewProblem(task, c, s)
	if err != nil {
		return nil
	}
	return p
}

// E7Scalability sweeps mining latency against |R_I| and K — the §2.3
// concern that thousands of candidate groups over ~1M ratings must stay
// interactive.
func E7Scalability(eng *maprat.Engine) Report {
	r := Report{ID: "E7", Title: "§2.3 — mining latency vs |R_I| and vs K"}
	r.addf("-- latency vs |R_I| (SM, demo settings) --")
	r.addf("%-44s %9s %7s %12s", "query", "ratings", "cands", "RHE median")
	for _, qs := range []string{
		`movie:"Heat"`,
		`movie:"Toy Story"`,
		`actor:"Tom Hanks"`,
		`director:"Steven Spielberg"`,
		`genre:Animation`,
		`genre:Drama`,
	} {
		p := buildProblem(eng, qs, core.SimilarityMining, nil, nil)
		if p == nil {
			continue
		}
		med := timeIt(3, func() { p.SolveRHE() })
		r.addf("%-44s %9d %7d %12s", truncate(qs, 44), p.NumTuples(), len(p.Candidates()), med)
	}
	r.addf("-- latency vs K (SM on actor:\"Tom Hanks\") --")
	r.addf("%3s %12s %10s", "K", "RHE median", "objective")
	for _, k := range []int{2, 3, 4, 5, 6} {
		p := buildProblem(eng, `actor:"Tom Hanks"`, core.SimilarityMining, func(s *maprat.Settings) {
			s.K = k
			s.Coverage = 0.15 // two disjoint state groups top out near 19%
		}, nil)
		if p == nil {
			continue
		}
		var sol core.Solution
		med := timeIt(3, func() { sol = p.SolveRHE() })
		r.addf("%3d %12s %10.4f", k, med, sol.Objective)
	}
	return r
}

// E8Rendering measures the visualization module: SVG and ASCII choropleth
// rendering of a full two-tab exploration.
func E8Rendering(eng *maprat.Engine) Report {
	r := Report{ID: "E8", Title: "§2.3 Visualization — choropleth rendering"}
	q := mustParse(eng, `movie:"Toy Story"`)
	ex, err := eng.Explain(maprat.ExplainRequest{Query: q})
	if err != nil {
		panic(err)
	}
	v := eng.RenderExploration(ex)
	var svgLen, asciiLen int
	svgMed := timeIt(9, func() {
		svgLen = 0
		for i := range v.Maps {
			svgLen += len(v.Maps[i].SVG())
		}
	})
	asciiMed := timeIt(9, func() { asciiLen = len(v.ASCII(true)) })
	r.addf("SVG   (both tabs): %7d bytes in %s", svgLen, svgMed)
	r.addf("ASCII (both tabs): %7d bytes in %s", asciiLen, asciiMed)
	return r
}

// E9TimeSlider regenerates the §3.1 time-slider: per-year Similarity
// Mining for Toy Story, showing how the groups and the reception drift.
func E9TimeSlider(eng *maprat.Engine) Report {
	r := Report{ID: "E9", Title: "§3.1 — time slider: Toy Story per year"}
	q := mustParse(eng, `movie:"Toy Story"`)
	var points []maprat.EvolutionPoint
	med := timeIt(1, func() {
		var err error
		points, err = eng.Evolution(maprat.ExplainRequest{
			Query: q, Tasks: []maprat.Task{maprat.SimilarityMining}, DisableCache: true,
		})
		if err != nil {
			panic(err)
		}
	})
	r.addf("%d yearly windows mined in %s", len(points), med)
	var firstMean, lastMean float64
	for _, p := range points {
		year := time.Unix(p.Window.From, 0).UTC().Year()
		if p.Err != nil || p.Explanation == nil {
			r.addf("%d: no feasible mining (%v)", year, p.Err)
			continue
		}
		m := p.Explanation.Overall.Mean()
		// Partial edge windows carry too few ratings to witness the trend.
		if p.Explanation.NumRatings >= 50 {
			if firstMean == 0 {
				firstMean = m
			}
			lastMean = m
		}
		top := ""
		if sm := p.Explanation.Result(maprat.SimilarityMining); sm != nil && len(sm.Groups) > 0 {
			top = sm.Groups[0].Phrase
		}
		r.addf("%d: n=%-6d μ=%.2f  top group: %s", year, p.Explanation.NumRatings, m, top)
	}
	r.addf("shape check: drift %.2f → %.2f (planted −0.30 drift ⇒ negative trend)", firstMean, lastMean)
	return r
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// E11ColdPath measures the cold first-response pipeline the packed-key
// cube build and the bitset coverage engine target: a full Explain with
// every cache tier disabled, plus the two kernels in isolation against
// their retained reference implementations. Snapshots of this report
// (BENCH_PR3.json) track the cold-path trajectory across PRs.
func E11ColdPath(eng *maprat.Engine) Report {
	r := Report{ID: "E11", Title: "cold path — packed cube build + bitset coverage"}

	r.addf("-- cold Explain (all cache tiers disabled) --")
	r.addf("%-44s %9s %12s", "query", "ratings", "median")
	for _, qs := range []string{
		`movie:"Toy Story"`,
		`actor:"Tom Hanks"`,
		`genre:Animation`,
	} {
		q := mustParse(eng, qs)
		req := maprat.ExplainRequest{Query: q, DisableCache: true}
		var ex *maprat.Explanation
		med := timeIt(3, func() {
			var err error
			ex, err = eng.Explain(req)
			if err != nil {
				panic(err)
			}
		})
		r.addf("%-44s %9d %12s", truncate(qs, 44), ex.NumRatings, med)
	}

	// Kernel isolation on a mid-size R_I: the packed build and the bitset
	// coverage engine against their executable reference specifications.
	q := mustParse(eng, `actor:"Tom Hanks"`)
	ids, _ := query.Resolve(eng.Store(), q)
	tuples := eng.Store().TuplesForItems(ids, q.Window)
	cfg := maprat.AdaptCubeConfig(cube.DefaultConfig(), len(tuples))
	r.addf("-- cube build over %d tuples --", len(tuples))
	packed := timeIt(5, func() { cube.Build(tuples, cfg) })
	reference := timeIt(5, func() { cube.BuildReference(tuples, cfg) })
	r.addf("packed two-pass build   : %12s", packed)
	r.addf("reference map build     : %12s", reference)
	if packed > 0 {
		r.addf("speedup                 : %11.1fx", float64(reference)/float64(packed))
	}

	c := cube.Build(tuples, cfg)
	p, err := core.NewProblem(core.SimilarityMining, c, maprat.DefaultSettings())
	if err != nil {
		r.addf("coverage kernel skipped: %v", err)
		return r
	}
	r.addf("-- RHE solve (%d candidates, %d tuples) --", len(p.Candidates()), p.NumTuples())
	solve := timeIt(3, func() { p.SolveRHE() })
	r.addf("bitset coverage engine  : %12s", solve)
	return r
}

// E10Ablations measures the design choices DESIGN.md calls out: geo-
// anchored vs framework candidates, the DM sibling boost, and σ vs MAD as
// the consistency error.
func E10Ablations(eng *maprat.Engine) Report {
	r := Report{ID: "E10", Title: "design-choice ablations"}

	// (a) geo-anchoring: candidate space and SM outcome on Toy Story.
	q := mustParse(eng, `movie:"Toy Story"`)
	ids, _ := query.Resolve(eng.Store(), q)
	tuples := eng.Store().TuplesForItems(ids, q.Window)
	r.addf("-- (a) geo-anchored vs framework candidates (SM, Toy Story) --")
	r.addf("%-12s %8s %12s %12s", "mode", "cands", "objective", "RHE median")
	for _, mode := range []struct {
		name string
		cfg  cube.Config
	}{
		{"geo", cube.Config{RequireState: true, MinSupport: 12, MaxAVPairs: 3, SkipApex: true}},
		{"framework", cube.Config{RequireState: false, MinSupport: 12, MaxAVPairs: 3, SkipApex: true}},
	} {
		c := cube.Build(tuples, mode.cfg)
		p, err := core.NewProblem(core.SimilarityMining, c, maprat.DefaultSettings())
		if err != nil {
			r.addf("%-12s %8d %12s %12s", mode.name, c.Len(), "infeasible", "-")
			continue
		}
		var sol core.Solution
		med := timeIt(3, func() { sol = p.SolveRHE() })
		r.addf("%-12s %8d %12.4f %12s", mode.name, c.Len(), sol.Objective, med)
	}

	// (b) sibling boost on the controversial title (DM, α=3%).
	r.addf("-- (b) DM sibling boost on the controversial title (α=3%%, K=2) --")
	eq := mustParse(eng, `movie:"The Twilight Saga: Eclipse"`)
	for _, boost := range []float64{1.0, 2.0} {
		s := maprat.DefaultSettings()
		s.K = 2
		s.Coverage = 0.03
		s.SiblingBoost = boost
		free := FrameworkCube()
		ex, err := eng.Explain(maprat.ExplainRequest{
			Query: eq, Settings: s, Tasks: []maprat.Task{maprat.DiversityMining},
			CubeConfig: &free, DisableCache: true,
		})
		if err != nil {
			r.addf("w=%.0f: %v", boost, err)
			continue
		}
		dm := ex.Result(maprat.DiversityMining)
		sib := false
		if len(dm.Groups) >= 2 {
			_, sib = dm.Groups[0].Key.SiblingOf(dm.Groups[1].Key)
		}
		pair := ""
		for i, g := range dm.Groups {
			if i > 0 {
				pair += "  vs  "
			}
			pair += fmt.Sprintf("%s (μ=%.2f)", g.Phrase, g.Agg.Mean())
		}
		r.addf("w=%.0f: sibling=%v  %s", boost, sib, pair)
	}

	// (c) σ vs MAD over the Toy Story candidates: agreement of the two
	// consistency errors on candidate ordering.
	r.addf("-- (c) σ vs MAD as the consistency error (Toy Story candidates) --")
	cfg := maprat.AdaptCubeConfig(cube.DefaultConfig(), len(tuples))
	c := cube.Build(tuples, cfg)
	type pairErr struct{ sigma, mad float64 }
	errs := make([]pairErr, 0, c.Len())
	for i := range c.Groups {
		g := &c.Groups[i]
		errs = append(errs, pairErr{sigma: g.Agg.Std(), mad: g.MAD(tuples)})
	}
	// Pearson correlation + pairwise order agreement on a bounded sample.
	var sx, sy, sxx, syy, sxy float64
	for _, e := range errs {
		sx += e.sigma
		sy += e.mad
		sxx += e.sigma * e.sigma
		syy += e.mad * e.mad
		sxy += e.sigma * e.mad
	}
	n := float64(len(errs))
	denom := math.Sqrt(n*sxx-sx*sx) * math.Sqrt(n*syy-sy*sy)
	pearson := 0.0
	if denom > 0 {
		pearson = (n*sxy - sx*sy) / denom
	}
	agree, totalPairs := 0, 0
	step := len(errs)/400 + 1
	for i := 0; i < len(errs); i += step {
		for j := i + step; j < len(errs); j += step {
			totalPairs++
			if (errs[i].sigma < errs[j].sigma) == (errs[i].mad < errs[j].mad) {
				agree++
			}
		}
	}
	r.addf("candidates=%d  Pearson(σ, MAD)=%.3f  pairwise order agreement=%.1f%% (%d pairs)",
		len(errs), pearson, 100*float64(agree)/float64(max(1, totalPairs)), totalPairs)
	r.addf("σ is O(1) from additive aggregates; MAD needs a member pass — hot path uses σ")
	return r
}
