package bench

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

var (
	engOnce sync.Once
	engMemo *maprat.Engine
)

func smallEngine(t *testing.T) *maprat.Engine {
	t.Helper()
	engOnce.Do(func() {
		ds, err := maprat.Generate(maprat.SmallGenConfig())
		if err != nil {
			panic(err)
		}
		engMemo, err = maprat.Open(ds, nil)
		if err != nil {
			panic(err)
		}
	})
	return engMemo
}

// runExperiment guards against panics inside an experiment so a failure
// reads as a test failure, not a crashed process.
func runExperiment(t *testing.T, name string, f func(*maprat.Engine) Report) (rep Report) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s panicked: %v", name, r)
		}
	}()
	return f(smallEngine(t))
}

func TestEveryExperimentRuns(t *testing.T) {
	cases := []struct {
		id  string
		f   func(*maprat.Engine) Report
		key string // a string the report must mention
	}{
		{"E1", E1Queries, "Toy Story"},
		{"E2", E2SimilarityToyStory, "shape check"},
		{"E3", E3Exploration, "histogram"},
		{"E4", E4Controversial, "pair gap"},
		{"E5", E5Caching, "speedup"},
		{"E6", E6QualityVsBaselines, "optimality gap"},
		{"E7", E7Scalability, "latency vs"},
		{"E8", E8Rendering, "SVG"},
		{"E9", E9TimeSlider, "yearly windows"},
		{"E10", E10Ablations, "sibling"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			rep := runExperiment(t, c.id, c.f)
			if rep.ID != c.id {
				t.Errorf("report ID = %q, want %q", rep.ID, c.id)
			}
			if len(rep.Lines) == 0 {
				t.Fatal("empty report")
			}
			joined := strings.Join(rep.Lines, "\n")
			if !strings.Contains(joined, c.key) {
				t.Errorf("report missing %q:\n%s", c.key, joined)
			}
		})
	}
}

func TestReportPrint(t *testing.T) {
	rep := Report{ID: "EX", Title: "demo", Lines: []string{"a", "b"}}
	var buf bytes.Buffer
	rep.Print(&buf)
	out := buf.String()
	for _, want := range []string{"=== EX", "demo", "a\n", "b\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("print missing %q in %q", want, out)
		}
	}
}

func TestRunAllStreamsEveryExperiment(t *testing.T) {
	var buf bytes.Buffer
	RunAll(smallEngine(t), &buf)
	out := buf.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"} {
		if !strings.Contains(out, "=== "+id+" ") {
			t.Errorf("RunAll missing experiment %s", id)
		}
	}
}

func TestE2ShapeHoldsOnSmallScale(t *testing.T) {
	rep := runExperiment(t, "E2", E2SimilarityToyStory)
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "all geo-anchored: true") {
		t.Errorf("E2 lost geo anchoring:\n%s", joined)
	}
	if !strings.Contains(joined, "all positive: true") {
		t.Errorf("E2 lost positivity:\n%s", joined)
	}
}

func TestE6RHENeverLoses(t *testing.T) {
	rep := runExperiment(t, "E6", E6QualityVsBaselines)
	joined := strings.Join(rep.Lines, "\n")
	// The optimality-gap section must report a zero mean gap: RHE with the
	// default restart budget finds the optimum on these tiny instances.
	if !strings.Contains(joined, "mean optimality gap") {
		t.Fatalf("E6 missing the optimality section:\n%s", joined)
	}
	if !strings.Contains(joined, ": 0.0000") {
		t.Errorf("E6 mean optimality gap nonzero:\n%s", joined)
	}
}

func TestTimeIt(t *testing.T) {
	calls := 0
	d := timeIt(5, func() { calls++; time.Sleep(time.Microsecond) })
	if calls != 5 {
		t.Errorf("timeIt ran %d times, want 5", calls)
	}
	if d <= 0 {
		t.Errorf("median duration %v", d)
	}
	if timeIt(0, func() {}) < 0 {
		t.Error("reps clamp failed")
	}
}

func TestTruncate(t *testing.T) {
	if truncate("hello", 10) != "hello" {
		t.Error("no-op truncate failed")
	}
	if got := truncate("hello world", 8); len(got) > 10 || !strings.HasSuffix(got, "…") {
		t.Errorf("truncate = %q", got)
	}
}
