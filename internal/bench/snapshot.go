package bench

import (
	"os"
	"path/filepath"
	"time"

	"repro"
)

// E12Snapshot measures the snapshot cold path against the text cold
// path over the engine's own dataset: write both representations to a
// temp directory, then time text parse+join (LoadDir → Open) versus
// snapshot open (mmap → OpenSnapshot), and verify the two opens agree on
// the dataset fingerprint. The open speedup is the PR's perf bar (≥10×).
func E12Snapshot(eng *maprat.Engine) Report {
	r := Report{ID: "E12", Title: "Columnar snapshot vs text cold path"}
	ds := eng.Dataset()

	tmp, err := os.MkdirTemp("", "maprat-e12-*")
	if err != nil {
		r.addf("temp dir: %v", err)
		return r
	}
	defer os.RemoveAll(tmp)
	dir := filepath.Join(tmp, "text")
	snapPath := filepath.Join(tmp, "data.msnap")

	wText := timeIt(1, func() {
		if err := maprat.WriteDir(dir, ds); err != nil {
			panic(err)
		}
	})
	wSnap := timeIt(1, func() {
		if err := maprat.WriteSnapshot(snapPath, ds, maprat.SnapshotMeta{Source: "bench"}); err != nil {
			panic(err)
		}
	})
	textSize := dirSize(dir)
	snapSize := int64(0)
	if fi, err := os.Stat(snapPath); err == nil {
		snapSize = fi.Size()
	}
	st := ds.Stats()
	r.addf("dataset: %d ratings / %d movies / %d users", st.Ratings, st.Items, st.Users)
	r.addf("%-28s %12s %14s", "representation", "bytes", "write")
	r.addf("%-28s %12d %14s", "text (4 .dat files)", textSize, wText.Round(time.Millisecond))
	r.addf("%-28s %12d %14s", "snapshot (.msnap)", snapSize, wSnap.Round(time.Millisecond))

	// The cold path under measure: bytes on disk → a mining-ready engine.
	var textEng, snapEng *maprat.Engine
	tText := timeIt(3, func() {
		loaded, err := maprat.LoadDir(dir)
		if err != nil {
			panic(err)
		}
		textEng, err = maprat.Open(loaded, nil)
		if err != nil {
			panic(err)
		}
	})
	tSnap := timeIt(3, func() {
		if snapEng != nil {
			snapEng.Close()
		}
		var err error
		snapEng, err = maprat.OpenSnapshot(snapPath, nil)
		if err != nil {
			panic(err)
		}
	})
	defer snapEng.Close()

	r.addf("")
	r.addf("%-28s %14s", "cold path (median of 3)", "open")
	r.addf("%-28s %14s", "text: LoadDir + Open", tText.Round(time.Millisecond))
	r.addf("%-28s %14s", "snapshot: OpenSnapshot", tSnap.Round(time.Microsecond))
	speedup := float64(tText) / float64(max(1, int(tSnap)))
	r.addf("open speedup: %.1fx (bar: >= 10x)", speedup)

	fpText, fpSnap := textEng.Fingerprint(), snapEng.Fingerprint()
	r.addf("fingerprints: text %016x, snapshot %016x, equal=%v", fpText, fpSnap, fpText == fpSnap)
	return r
}

func dirSize(dir string) int64 {
	var total int64
	_ = filepath.Walk(dir, func(_ string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() {
			total += fi.Size()
		}
		return nil
	})
	return total
}
