// Package geo resolves US zip codes to states and cities so that every
// reviewer group can carry the geo-condition MapRat anchors its choropleth
// visualization on. Resolution uses the public allocation of 3-digit ZIP
// prefixes to states; city resolution refines a state's prefix ranges into
// named metropolitan areas (a deterministic substitute for a full gazetteer,
// sufficient for the paper's state→city drill-down).
package geo

import (
	"fmt"
	"sort"
)

// State describes one choropleth-renderable region.
type State struct {
	Code string // two-letter USPS code, e.g. "CA"
	Name string // full name, e.g. "California"
	// Row and Col place the state's tile in the grid cartogram used by
	// internal/viz (the standard 11x8 US tile-map layout).
	Row, Col int
}

// states lists the 50 US states plus DC with their tile-cartogram positions.
// Tile positions follow the conventional US tile grid (Alaska top-left,
// Florida bottom-right).
var states = []State{
	{"AK", "Alaska", 0, 0},
	{"ME", "Maine", 0, 10},
	{"VT", "Vermont", 1, 9},
	{"NH", "New Hampshire", 1, 10},
	{"WA", "Washington", 2, 0},
	{"ID", "Idaho", 2, 1},
	{"MT", "Montana", 2, 2},
	{"ND", "North Dakota", 2, 3},
	{"MN", "Minnesota", 2, 4},
	{"WI", "Wisconsin", 2, 5},
	{"MI", "Michigan", 2, 7},
	{"NY", "New York", 2, 9},
	{"MA", "Massachusetts", 2, 10},
	{"OR", "Oregon", 3, 0},
	{"NV", "Nevada", 3, 1},
	{"WY", "Wyoming", 3, 2},
	{"SD", "South Dakota", 3, 3},
	{"IA", "Iowa", 3, 4},
	{"IL", "Illinois", 3, 5},
	{"IN", "Indiana", 3, 6},
	{"OH", "Ohio", 3, 7},
	{"PA", "Pennsylvania", 3, 8},
	{"NJ", "New Jersey", 3, 9},
	{"CT", "Connecticut", 3, 10},
	{"RI", "Rhode Island", 2, 11},
	{"CA", "California", 4, 0},
	{"UT", "Utah", 4, 1},
	{"CO", "Colorado", 4, 2},
	{"NE", "Nebraska", 4, 3},
	{"MO", "Missouri", 4, 4},
	{"KY", "Kentucky", 4, 5},
	{"WV", "West Virginia", 4, 6},
	{"VA", "Virginia", 4, 7},
	{"MD", "Maryland", 4, 8},
	{"DE", "Delaware", 4, 9},
	{"AZ", "Arizona", 5, 1},
	{"NM", "New Mexico", 5, 2},
	{"KS", "Kansas", 5, 3},
	{"AR", "Arkansas", 5, 4},
	{"TN", "Tennessee", 5, 5},
	{"NC", "North Carolina", 5, 6},
	{"SC", "South Carolina", 5, 7},
	{"DC", "District of Columbia", 5, 8},
	{"OK", "Oklahoma", 6, 3},
	{"LA", "Louisiana", 6, 4},
	{"MS", "Mississippi", 6, 5},
	{"AL", "Alabama", 6, 6},
	{"GA", "Georgia", 6, 7},
	{"HI", "Hawaii", 7, 0},
	{"TX", "Texas", 7, 3},
	{"FL", "Florida", 7, 8},
}

// prefixRange maps an inclusive range of 3-digit ZIP prefixes to a state.
type prefixRange struct {
	lo, hi int // inclusive prefix bounds, e.g. 900..961
	state  string
}

// prefixRanges is the public allocation of 3-digit ZIP prefixes to states
// (continental gaps and military prefixes resolve to no state).
var prefixRanges = []prefixRange{
	{5, 5, "NY"},
	{10, 27, "MA"},
	{28, 29, "RI"},
	{30, 38, "NH"},
	{39, 49, "ME"},
	{50, 59, "VT"},
	{60, 69, "CT"},
	{70, 89, "NJ"},
	{100, 149, "NY"},
	{150, 196, "PA"},
	{197, 199, "DE"},
	{200, 205, "DC"},
	{206, 219, "MD"},
	{220, 246, "VA"},
	{247, 268, "WV"},
	{270, 289, "NC"},
	{290, 299, "SC"},
	{300, 319, "GA"},
	{320, 349, "FL"},
	{350, 369, "AL"},
	{370, 385, "TN"},
	{386, 397, "MS"},
	{398, 399, "GA"},
	{400, 427, "KY"},
	{430, 459, "OH"},
	{460, 479, "IN"},
	{480, 499, "MI"},
	{500, 528, "IA"},
	{530, 549, "WI"},
	{550, 567, "MN"},
	{570, 577, "SD"},
	{580, 588, "ND"},
	{590, 599, "MT"},
	{600, 629, "IL"},
	{630, 658, "MO"},
	{660, 679, "KS"},
	{680, 693, "NE"},
	{700, 714, "LA"},
	{716, 729, "AR"},
	{730, 749, "OK"},
	{750, 799, "TX"},
	{800, 816, "CO"},
	{820, 831, "WY"},
	{832, 838, "ID"},
	{840, 847, "UT"},
	{850, 865, "AZ"},
	{870, 884, "NM"},
	{885, 885, "TX"},
	{889, 898, "NV"},
	{900, 961, "CA"},
	{967, 968, "HI"},
	{970, 979, "OR"},
	{980, 994, "WA"},
	{995, 999, "AK"},
}

// City is a named metropolitan area inside a state, used by the paper's
// state→city drill-down. Each city owns a set of 3-digit ZIP prefixes.
type City struct {
	Name     string
	State    string
	Prefixes []int
}

// cityDefs assigns named cities to a subset of each state's prefixes. Zips
// whose prefix is allocated to the state but not to a named city resolve to
// the state's catch-all "Rest of <state>" city, so Locate is total over
// allocated prefixes.
var cityDefs = []City{
	{"Los Angeles", "CA", []int{900, 901, 902, 903, 904, 905, 906, 907, 908}},
	{"San Diego", "CA", []int{919, 920, 921}},
	{"San Francisco", "CA", []int{940, 941}},
	{"San Jose", "CA", []int{950, 951}},
	{"Sacramento", "CA", []int{942, 956, 957, 958}},
	{"New York City", "NY", []int{100, 101, 102, 103, 104, 110, 111, 112, 113, 114, 116}},
	{"Buffalo", "NY", []int{140, 141, 142}},
	{"Rochester", "NY", []int{144, 145, 146}},
	{"Albany", "NY", []int{120, 121, 122}},
	{"Boston", "MA", []int{21, 22}},
	{"Worcester", "MA", []int{16}},
	{"Springfield", "MA", []int{10, 11}},
	{"Chicago", "IL", []int{606, 607, 608}},
	{"Springfield IL", "IL", []int{625, 626}},
	{"Houston", "TX", []int{770, 772}},
	{"Dallas", "TX", []int{752, 753}},
	{"Austin", "TX", []int{786, 787}},
	{"San Antonio", "TX", []int{781, 782}},
	{"Seattle", "WA", []int{980, 981}},
	{"Spokane", "WA", []int{990, 991, 992}},
	{"Philadelphia", "PA", []int{190, 191}},
	{"Pittsburgh", "PA", []int{150, 151, 152}},
	{"Miami", "FL", []int{330, 331, 332, 333}},
	{"Orlando", "FL", []int{327, 328}},
	{"Tampa", "FL", []int{335, 336}},
	{"Atlanta", "GA", []int{300, 301, 302, 303}},
	{"Savannah", "GA", []int{313, 314}},
	{"Detroit", "MI", []int{481, 482}},
	{"Grand Rapids", "MI", []int{493, 494, 495}},
	{"Minneapolis", "MN", []int{553, 554, 555}},
	{"Denver", "CO", []int{800, 801, 802}},
	{"Phoenix", "AZ", []int{850, 852, 853}},
	{"Tucson", "AZ", []int{856, 857}},
	{"Portland", "OR", []int{970, 971, 972}},
	{"Las Vegas", "NV", []int{889, 890, 891}},
	{"Baltimore", "MD", []int{210, 211, 212}},
	{"Washington", "DC", []int{200, 202, 203, 204, 205}},
	{"Cleveland", "OH", []int{440, 441}},
	{"Columbus", "OH", []int{430, 432}},
	{"Cincinnati", "OH", []int{450, 451, 452}},
	{"Indianapolis", "IN", []int{460, 461, 462}},
	{"Nashville", "TN", []int{370, 371, 372}},
	{"Memphis", "TN", []int{375, 380, 381}},
	{"St. Louis", "MO", []int{630, 631}},
	{"Kansas City", "MO", []int{640, 641}},
	{"New Orleans", "LA", []int{700, 701}},
	{"Milwaukee", "WI", []int{530, 531, 532}},
	{"Charlotte", "NC", []int{280, 281, 282}},
	{"Raleigh", "NC", []int{275, 276}},
	{"Salt Lake City", "UT", []int{840, 841}},
	{"Newark", "NJ", []int{70, 71, 72}},
	{"Boise", "ID", []int{836, 837}},
	{"Anchorage", "AK", []int{995}},
	{"Honolulu", "HI", []int{967, 968}},
	{"Louisville", "KY", []int{400, 402}},
	{"Oklahoma City", "OK", []int{730, 731}},
	{"Tulsa", "OK", []int{740, 741}},
	{"Birmingham", "AL", []int{350, 352}},
	{"Des Moines", "IA", []int{500, 502, 503}},
	{"Omaha", "NE", []int{680, 681}},
	{"Wichita", "KS", []int{670, 672}},
	{"Little Rock", "AR", []int{720, 721, 722}},
	{"Jackson", "MS", []int{390, 392}},
	{"Providence", "RI", []int{28, 29}},
	{"Hartford", "CT", []int{60, 61}},
	{"Manchester", "NH", []int{31, 32}},
	{"Burlington", "VT", []int{54}},
	{"Portland ME", "ME", []int{39, 40, 41}},
	{"Charleston WV", "WV", []int{250, 251, 252, 253}},
	{"Charleston SC", "SC", []int{294}},
	{"Columbia", "SC", []int{290, 291, 292}},
	{"Richmond", "VA", []int{231, 232}},
	{"Virginia Beach", "VA", []int{234, 235, 236}},
	{"Wilmington", "DE", []int{197, 198}},
	{"Billings", "MT", []int{590, 591}},
	{"Fargo", "ND", []int{580, 581}},
	{"Sioux Falls", "SD", []int{570, 571}},
	{"Cheyenne", "WY", []int{820}},
	{"Albuquerque", "NM", []int{870, 871}},
	{"Santa Fe", "NM", []int{875}},
}

var (
	stateByCode  = map[string]*State{}
	prefixState  [1000]string // prefix -> state code ("" if unallocated)
	prefixCity   [1000]string // prefix -> named city ("" if none)
	citiesByCode = map[string][]string{}
)

func init() {
	for i := range states {
		stateByCode[states[i].Code] = &states[i]
	}
	for _, pr := range prefixRanges {
		for p := pr.lo; p <= pr.hi; p++ {
			prefixState[p] = pr.state
		}
	}
	for _, c := range cityDefs {
		for _, p := range c.Prefixes {
			if prefixState[p] != c.State {
				panic(fmt.Sprintf("geo: city %s prefix %03d allocated to %q, not %q",
					c.Name, p, prefixState[p], c.State))
			}
			prefixCity[p] = c.Name
		}
		citiesByCode[c.State] = append(citiesByCode[c.State], c.Name)
	}
	for code := range citiesByCode {
		sort.Strings(citiesByCode[code])
	}
	// Every state gets a catch-all city for prefixes without a named city.
	for _, s := range states {
		citiesByCode[s.Code] = append(citiesByCode[s.Code], restOf(s.Code))
	}
}

func restOf(code string) string { return "Rest of " + code }

// States returns all renderable states in tile order (row-major).
func States() []State {
	out := make([]State, len(states))
	copy(out, states)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Row != out[j].Row {
			return out[i].Row < out[j].Row
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// StateByCode returns the state for a two-letter code, or nil if unknown.
func StateByCode(code string) *State { return stateByCode[code] }

// NumStates is the number of renderable regions (50 states + DC).
func NumStates() int { return len(states) }

// StateCodes returns all two-letter state codes in a deterministic order.
func StateCodes() []string {
	codes := make([]string, 0, len(states))
	for _, s := range states {
		codes = append(codes, s.Code)
	}
	sort.Strings(codes)
	return codes
}

// Cities returns the named cities (plus the catch-all) of a state, sorted.
func Cities(stateCode string) []string {
	out := make([]string, len(citiesByCode[stateCode]))
	copy(out, citiesByCode[stateCode])
	return out
}

// Location is a resolved zip code.
type Location struct {
	State string // two-letter code, "" if the prefix is unallocated
	City  string // named city or "Rest of <state>"
}

// Locate resolves a 5-digit zip code (or any string whose first three bytes
// are digits) to a state and city. The second return value is false when the
// prefix is malformed or not allocated to any state.
func Locate(zip string) (Location, bool) {
	p, ok := Prefix(zip)
	if !ok {
		return Location{}, false
	}
	st := prefixState[p]
	if st == "" {
		return Location{}, false
	}
	city := prefixCity[p]
	if city == "" {
		city = restOf(st)
	}
	return Location{State: st, City: city}, true
}

// Prefix extracts the integer 3-digit prefix of a zip code.
func Prefix(zip string) (int, bool) {
	if len(zip) < 3 {
		return 0, false
	}
	p := 0
	for i := 0; i < 3; i++ {
		c := zip[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		p = p*10 + int(c-'0')
	}
	return p, true
}

// PrefixesFor returns the 3-digit prefixes allocated to a state, sorted.
// Useful for synthesizing realistic zip codes.
func PrefixesFor(stateCode string) []int {
	var out []int
	for p, st := range prefixState {
		if st == stateCode {
			out = append(out, p)
		}
	}
	return out
}

// PrefixesForCity returns the prefixes of a named city, or the state
// prefixes without a named city for the catch-all.
func PrefixesForCity(stateCode, city string) []int {
	if city == restOf(stateCode) {
		var out []int
		for p, st := range prefixState {
			if st == stateCode && prefixCity[p] == "" {
				out = append(out, p)
			}
		}
		return out
	}
	for _, c := range cityDefs {
		if c.State == stateCode && c.Name == city {
			out := make([]int, len(c.Prefixes))
			copy(out, c.Prefixes)
			sort.Ints(out)
			return out
		}
	}
	return nil
}
