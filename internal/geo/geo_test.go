package geo

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStatesComplete(t *testing.T) {
	if NumStates() != 51 {
		t.Fatalf("NumStates() = %d, want 51 (50 states + DC)", NumStates())
	}
	seen := map[string]bool{}
	for _, s := range States() {
		if len(s.Code) != 2 {
			t.Errorf("state code %q not two letters", s.Code)
		}
		if seen[s.Code] {
			t.Errorf("duplicate state %q", s.Code)
		}
		seen[s.Code] = true
		if s.Name == "" {
			t.Errorf("state %q has no name", s.Code)
		}
	}
	for _, want := range []string{"CA", "NY", "MA", "TX", "DC", "AK", "HI"} {
		if !seen[want] {
			t.Errorf("missing state %q", want)
		}
	}
}

func TestStatesTileOrder(t *testing.T) {
	prev := States()[0]
	for _, s := range States()[1:] {
		if s.Row < prev.Row || (s.Row == prev.Row && s.Col < prev.Col) {
			t.Fatalf("States() not row-major: %+v after %+v", s, prev)
		}
		prev = s
	}
}

func TestTilePositionsUnique(t *testing.T) {
	type pos struct{ r, c int }
	seen := map[pos]string{}
	for _, s := range States() {
		p := pos{s.Row, s.Col}
		if other, dup := seen[p]; dup {
			t.Errorf("states %s and %s share tile (%d,%d)", other, s.Code, s.Row, s.Col)
		}
		seen[p] = s.Code
	}
}

func TestStateByCode(t *testing.T) {
	ca := StateByCode("CA")
	if ca == nil || ca.Name != "California" {
		t.Errorf("StateByCode(CA) = %+v", ca)
	}
	if StateByCode("ZZ") != nil {
		t.Error("StateByCode(ZZ) should be nil")
	}
}

func TestLocateKnownZips(t *testing.T) {
	cases := []struct {
		zip   string
		state string
		city  string
	}{
		{"90210", "CA", "Los Angeles"},
		{"94110", "CA", "San Francisco"},
		{"10001", "NY", "New York City"},
		{"02139", "MA", "Boston"},
		{"60614", "IL", "Chicago"},
		{"77005", "TX", "Houston"},
		{"98101", "WA", "Seattle"},
		{"33101", "FL", "Miami"},
		{"20500", "DC", "Washington"},
		{"30301", "GA", "Atlanta"},
		{"55401", "MN", "Minneapolis"},
		{"80202", "CO", "Denver"},
	}
	for _, c := range cases {
		loc, ok := Locate(c.zip)
		if !ok {
			t.Errorf("Locate(%q) failed", c.zip)
			continue
		}
		if loc.State != c.state || loc.City != c.city {
			t.Errorf("Locate(%q) = %+v, want {%s %s}", c.zip, loc, c.state, c.city)
		}
	}
}

func TestLocateCatchAllCity(t *testing.T) {
	// 93xxx is CA (900-961 allocation) but not assigned to a named city.
	loc, ok := Locate("93401")
	if !ok || loc.State != "CA" {
		t.Fatalf("Locate(93401) = %+v, %v", loc, ok)
	}
	if loc.City != "Rest of CA" {
		t.Errorf("catch-all city = %q, want \"Rest of CA\"", loc.City)
	}
}

func TestLocateInvalid(t *testing.T) {
	for _, zip := range []string{"", "1", "12", "abcde", "12a45", "96600" /* military */, "00000"} {
		if loc, ok := Locate(zip); ok {
			t.Errorf("Locate(%q) = %+v, want failure", zip, loc)
		}
	}
}

func TestPrefixParsing(t *testing.T) {
	if p, ok := Prefix("90210"); !ok || p != 902 {
		t.Errorf("Prefix(90210) = %d, %v", p, ok)
	}
	if p, ok := Prefix("00501"); !ok || p != 5 {
		t.Errorf("Prefix(00501) = %d, %v", p, ok)
	}
	if _, ok := Prefix("9x210"); ok {
		t.Error("Prefix with letter accepted")
	}
}

func TestLocateNeverPanicsProperty(t *testing.T) {
	f := func(zip string) bool {
		loc, ok := Locate(zip)
		if !ok {
			return loc.State == "" && loc.City == ""
		}
		return StateByCode(loc.State) != nil && loc.City != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEveryStateHasPrefixes(t *testing.T) {
	for _, s := range States() {
		if len(PrefixesFor(s.Code)) == 0 {
			t.Errorf("state %s has no ZIP prefixes", s.Code)
		}
	}
}

func TestPrefixesRoundTrip(t *testing.T) {
	// Every prefix allocated to a state must locate back to that state.
	for _, s := range States() {
		for _, p := range PrefixesFor(s.Code) {
			zip := fmtZip(p)
			loc, ok := Locate(zip)
			if !ok || loc.State != s.Code {
				t.Fatalf("Locate(%s) = %+v, %v; want state %s", zip, loc, ok, s.Code)
			}
		}
	}
}

func fmtZip(prefix int) string {
	return string([]byte{
		byte('0' + prefix/100),
		byte('0' + (prefix/10)%10),
		byte('0' + prefix%10),
		'0', '1',
	})
}

func TestCitiesCoverState(t *testing.T) {
	for _, s := range States() {
		cities := Cities(s.Code)
		if len(cities) == 0 {
			t.Errorf("state %s has no cities", s.Code)
			continue
		}
		hasCatchAll := false
		for _, c := range cities {
			if strings.HasPrefix(c, "Rest of ") {
				hasCatchAll = true
			}
		}
		if !hasCatchAll {
			t.Errorf("state %s lacks a catch-all city", s.Code)
		}
	}
}

func TestCityPrefixesPartitionState(t *testing.T) {
	// The union of all city prefixes (named + catch-all) must equal the
	// state's allocation, with no overlap.
	for _, s := range States() {
		owned := map[int]string{}
		for _, city := range Cities(s.Code) {
			for _, p := range PrefixesForCity(s.Code, city) {
				if prev, dup := owned[p]; dup {
					t.Errorf("%s: prefix %03d owned by both %q and %q", s.Code, p, prev, city)
				}
				owned[p] = city
			}
		}
		all := PrefixesFor(s.Code)
		if len(owned) != len(all) {
			t.Errorf("%s: cities own %d prefixes, state allocates %d", s.Code, len(owned), len(all))
		}
		for _, p := range all {
			if _, ok := owned[p]; !ok {
				t.Errorf("%s: prefix %03d not owned by any city", s.Code, p)
			}
		}
	}
}

func TestCitiesAreSortedAndDeterministic(t *testing.T) {
	a := Cities("CA")
	b := Cities("CA")
	if len(a) != len(b) {
		t.Fatal("Cities not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Cities not deterministic")
		}
	}
	// Mutating the returned slice must not affect the package state.
	a[0] = "MUTATED"
	if Cities("CA")[0] == "MUTATED" {
		t.Error("Cities returns an aliased slice")
	}
}

func TestStateCodesSorted(t *testing.T) {
	codes := StateCodes()
	if len(codes) != NumStates() {
		t.Fatalf("StateCodes len = %d", len(codes))
	}
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			t.Fatalf("StateCodes not strictly sorted at %d: %v", i, codes)
		}
	}
}

func BenchmarkLocate(b *testing.B) {
	zips := []string{"90210", "10001", "02139", "60614", "77005", "98101", "33101", "55401"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Locate(zips[i%len(zips)]); !ok {
			b.Fatal("miss")
		}
	}
}
