package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/cube"
)

// TestParallelRHEMatchesSequential is the determinism contract of the
// worker-pool solver: for any fixed seed, the Solution must be
// byte-identical no matter how many workers execute the restarts.
func TestParallelRHEMatchesSequential(t *testing.T) {
	tuples := miningTuples(900, 31)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 8, MaxAVPairs: 2})
	for _, task := range []Task{SimilarityMining, DiversityMining} {
		for seed := int64(1); seed <= 4; seed++ {
			s := DefaultSettings()
			s.Seed = seed
			s.Restarts = 12

			s.Workers = 1
			seq := newProblem(t, task, c, s).SolveRHE()

			for _, workers := range []int{2, 4, 8} {
				s.Workers = workers
				par := newProblem(t, task, c, s).SolveRHE()
				if !reflect.DeepEqual(seq, par) {
					t.Fatalf("%v seed %d: workers=%d diverged:\nseq %+v\npar %+v",
						task, seed, workers, seq, par)
				}
			}
		}
	}
}

// TestParallelRHESharedProblem exercises the documented internal
// parallelism on a single Problem value (workers clone scratch; the
// instance data is shared read-only). Mostly a -race canary.
func TestParallelRHESharedProblem(t *testing.T) {
	tuples := miningTuples(700, 37)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 8, MaxAVPairs: 2})
	s := DefaultSettings()
	s.Workers = 4
	s.Restarts = 16
	p := newProblem(t, DiversityMining, c, s)
	first := p.SolveRHE()
	if !first.Feasible {
		t.Fatal("infeasible")
	}
	second := p.SolveRHE()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("repeated parallel solves diverged: %+v vs %+v", first, second)
	}
}

func TestSolveRHECtxPreCancelled(t *testing.T) {
	tuples := miningTuples(500, 41)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 8, MaxAVPairs: 2})
	p := newProblem(t, SimilarityMining, c, DefaultSettings())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.SolveRHECtx(ctx); err != context.Canceled {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
}

// TestSolveRHECtxCancelMidMine gives an oversized instance a deadline far
// shorter than its sequential runtime; the solver must notice and bail
// with the context error instead of running to completion.
func TestSolveRHECtxCancelMidMine(t *testing.T) {
	tuples := miningTuples(4000, 43)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 4, MaxAVPairs: 3})
	s := DefaultSettings()
	s.Restarts = 10_000
	s.MaxIters = 10_000
	s.Workers = 2
	p := newProblem(t, SimilarityMining, c, s)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.SolveRHECtx(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("got err %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; solver is not checking the context", elapsed)
	}
}

// TestWorkersDoNotChangeEvals pins the work-accounting invariant the
// experiments rely on: Evals is a schedule-independent measure.
func TestWorkersDoNotChangeEvals(t *testing.T) {
	tuples := miningTuples(600, 47)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 8, MaxAVPairs: 2})
	s := DefaultSettings()
	s.Workers = 1
	base := newProblem(t, SimilarityMining, c, s).SolveRHE().Evals
	s.Workers = 6
	if got := newProblem(t, SimilarityMining, c, s).SolveRHE().Evals; got != base {
		t.Fatalf("Evals varies with workers: %d vs %d", got, base)
	}
}
