package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cube"
)

func benchInstance(b *testing.B, task Task) *Problem {
	b.Helper()
	tuples := miningTuples(5_000, 99)
	c := cube.Build(tuples, cube.Config{RequireState: true, MinSupport: 25, MaxAVPairs: 3, SkipApex: true})
	s := DefaultSettings()
	p, err := NewProblem(task, c, s)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkEvaluate(b *testing.B) {
	p := benchInstance(b, SimilarityMining)
	sel := p.Candidates()[:3]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Evaluate(sel)
	}
}

func BenchmarkSolveRHE_SM(b *testing.B) {
	p := benchInstance(b, SimilarityMining)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sol := p.SolveRHE(); !sol.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkSolveRHE_DM(b *testing.B) {
	p := benchInstance(b, DiversityMining)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sol := p.SolveRHE(); !sol.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkSolveRHEWorkers shows the multi-restart speedup: identical
// Solutions, wall clock scaling with the worker pool (compare workers=1
// against workers=GOMAXPROCS).
func BenchmarkSolveRHEWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := benchInstance(b, SimilarityMining)
			p.Settings.Restarts = 32
			p.Settings.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sol := p.SolveRHE(); !sol.Feasible {
					b.Fatal("infeasible")
				}
			}
		})
	}
}

// BenchmarkRHECoverage measures the coverage engine behind RHE's sampled
// neighbourhood: one full solve on the bitset engine (word-wise OR +
// popcount, incremental swap evaluation) against the epoch-marking
// reference that re-scans every selected group's member list per trial.
func BenchmarkRHECoverage(b *testing.B) {
	run := func(b *testing.B, reference bool) {
		p := benchInstance(b, SimilarityMining)
		p.Settings.Restarts = 4
		if reference {
			p.useReferenceCoverage()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if sol := p.SolveRHE(); !sol.Feasible {
				b.Fatal("infeasible")
			}
		}
	}
	b.Run("bitset", func(b *testing.B) { run(b, false) })
	b.Run("reference", func(b *testing.B) { run(b, true) })
}

func BenchmarkSolveGreedy(b *testing.B) {
	p := benchInstance(b, SimilarityMining)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sol := p.SolveGreedy(); !sol.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkCoverageOf(b *testing.B) {
	p := benchInstance(b, SimilarityMining)
	sel := p.Candidates()
	if len(sel) > 6 {
		sel = sel[:6]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cov := p.CoverageOf(sel); cov <= 0 {
			b.Fatal("zero coverage")
		}
	}
}
