// Package core implements MapRat's rating-mining layer (§2.2): the
// Similarity Mining (SM) and Diversity Mining (DM) optimization problems
// over candidate reviewer groups, and the Randomized Hill Exploration (RHE)
// algorithm of the MRI paper [2] used to solve them, plus the exhaustive,
// greedy and random baselines the experiments compare against.
//
// Both problems select at most K describable groups that together cover at
// least an α fraction of the query's rating tuples. SM minimizes the
// size-weighted within-group standard deviation (groups that agree
// internally); DM additionally rewards far-apart group means, with sibling
// groups (identical descriptions except one attribute value) weighted
// higher because they read as a controversy ("male under 18 hate it,
// female under 18 love it"). Both are NP-hard — the coverage constraint
// embeds set cover — which is why the system uses randomized search.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/cube"
)

// Task selects the mining sub-problem.
type Task int

// The two sub-problems of §2.2.
const (
	SimilarityMining Task = iota
	DiversityMining
)

// String names the task the way the paper abbreviates it.
func (t Task) String() string {
	switch t {
	case SimilarityMining:
		return "SM"
	case DiversityMining:
		return "DM"
	}
	return fmt.Sprintf("Task(%d)", int(t))
}

// Settings are the optimization knobs exposed by the Figure-1 search form
// plus the solver parameters.
type Settings struct {
	// K is the maximum number of returned groups ("small enough, not to
	// overwhelm a user"; the demo shows the best three).
	K int
	// Coverage is α: the fraction of R_I the selected groups must jointly
	// cover (the form's "rating coverage" setting).
	Coverage float64
	// Lambda weighs internal consistency inside the DM objective.
	Lambda float64
	// SiblingBoost is the DM pair weight for sibling groups (>1 prefers
	// the paper's same-demographic-except-one-attribute controversies).
	SiblingBoost float64
	// Profile optionally constrains candidates to groups the querying
	// user self-identifies with (§3.1): a candidate is kept only when its
	// description does not contradict any attribute the profile fixes.
	Profile cube.Key

	// Restarts, MaxIters and SampleSize parameterize RHE: the number of
	// randomized restarts, the hill-climb step cap per restart, and the
	// number of candidate replacements examined per position per step.
	Restarts   int
	MaxIters   int
	SampleSize int
	// Seed makes every solver deterministic.
	Seed int64
	// Workers bounds the goroutines SolveRHE spreads its restarts over
	// (0 = GOMAXPROCS, 1 = sequential). Every restart draws from its own
	// sub-seeded generator, so Workers never changes the Solution — only
	// the wall clock.
	Workers int
	// Progress, when non-nil, is invoked after each restart completes
	// with the number of finished restarts and the total for this solve.
	// With Workers > 1 it is called from multiple goroutines, so the
	// callback must be safe for concurrent use. It observes the solve, it
	// must not influence it — and when nil the solver pays nothing for
	// it. Progress is result-neutral and deliberately excluded from every
	// cache key.
	Progress func(done, total int)
}

// DefaultSettings mirrors the demo defaults: the best 3 groups covering at
// least 20% of the ratings (three disjoint state-anchored groups can cover
// at most ~26% of a national audience, so 30% would be unsatisfiable).
func DefaultSettings() Settings {
	return Settings{
		K:            3,
		Coverage:     0.20,
		Lambda:       1.0,
		SiblingBoost: 2.0,
		Profile:      cube.KeyAll,
		Restarts:     16,
		MaxIters:     60,
		SampleSize:   48,
		Seed:         1,
	}
}

func (s *Settings) normalize() error {
	if s.K <= 0 {
		return fmt.Errorf("core: K = %d must be positive", s.K)
	}
	if s.Coverage < 0 || s.Coverage > 1 {
		return fmt.Errorf("core: coverage α = %f outside [0,1]", s.Coverage)
	}
	if s.Restarts <= 0 {
		s.Restarts = 1
	}
	if s.MaxIters <= 0 {
		s.MaxIters = 1
	}
	if s.SampleSize <= 0 {
		s.SampleSize = 16
	}
	if s.SiblingBoost <= 0 {
		s.SiblingBoost = 1
	}
	return nil
}

// ErrNoCandidates is returned when the cube has no groups compatible with
// the settings — typically a query with too few ratings for MinSupport.
var ErrNoCandidates = errors.New("core: no candidate groups")

// ErrInfeasible is returned when no selection of at most K candidates can
// reach the coverage threshold.
var ErrInfeasible = errors.New("core: coverage constraint unsatisfiable with K groups")

// Problem is one constructed optimization instance over a candidate cube.
// A Problem is not safe for concurrent use by multiple callers (it reuses
// scratch buffers); build one per goroutine. SolveRHE parallelizes
// internally by giving each of its workers a private scratch clone.
type Problem struct {
	Task     Task
	Cube     *cube.Cube
	Settings Settings

	cands []int // indices into Cube.Groups passing the profile filter
	// byExtreme re-orders cands by |group mean − overall mean| descending;
	// the DM neighbourhood samples its head (see sampleCandidates).
	byExtreme []int

	total int // |R_I|

	// Coverage engine state (see coverage.go). bits is the cube's cached
	// per-group member bitset table, shared read-only across every Problem
	// on the same cube; cover and base are this instance's scratch
	// bitsets; the trial buffers back the solver's neighbourhood scans.
	bits     [][]uint64
	cover    []uint64
	base     []uint64
	trialBuf []int
	dropBuf  []int

	// reference coverage engine (differential tests): epoch marking over
	// tuples
	refCoverage bool
	mark        []int32
	epoch       int32
}

// NewProblem builds an instance. It fails fast when no candidate survives
// the profile filter or when even the K highest-coverage candidates cannot
// reach the coverage threshold (a cheap upper-bound check; the exact
// question is the NP-hard part).
func NewProblem(task Task, c *cube.Cube, s Settings) (*Problem, error) {
	if err := s.normalize(); err != nil {
		return nil, err
	}
	words := cube.BitsetWords(len(c.Tuples))
	p := &Problem{
		Task:     task,
		Cube:     c,
		Settings: s,
		total:    len(c.Tuples),
		bits:     c.MemberBits(),
		cover:    make([]uint64, words),
		base:     make([]uint64, words),
	}
	for i := range c.Groups {
		if compatible(c.Groups[i].Key, s.Profile) {
			p.cands = append(p.cands, i)
		}
	}
	if len(p.cands) == 0 {
		return nil, ErrNoCandidates
	}
	if task == DiversityMining && s.K < 2 {
		return nil, fmt.Errorf("core: DM needs K ≥ 2, got %d", s.K)
	}
	if task == DiversityMining {
		var overall cube.Agg
		for i := range c.Tuples {
			overall.Add(c.Tuples[i].Score)
		}
		mean := overall.Mean()
		p.byExtreme = append([]int(nil), p.cands...)
		sort.Slice(p.byExtreme, func(a, b int) bool {
			da := math.Abs(c.Groups[p.byExtreme[a]].Mean() - mean)
			db := math.Abs(c.Groups[p.byExtreme[b]].Mean() - mean)
			if da != db {
				return da > db
			}
			return p.byExtreme[a] < p.byExtreme[b]
		})
	}
	// Optimistic feasibility bound: the K largest candidates, ignoring
	// overlap, must reach the threshold … otherwise nothing can.
	// (Candidates are support-sorted by cube.Build, profile filtering
	// preserves that order.)
	bound := 0
	for i := 0; i < len(p.cands) && i < s.K; i++ {
		bound += c.Groups[p.cands[i]].Support()
	}
	if float64(bound) < p.required() {
		// The bound ignores overlap, so exact union coverage of the top-K
		// prefix decides; if even optimism fails, report infeasible.
		return nil, ErrInfeasible
	}
	return p, nil
}

// scratchClone returns a shallow copy sharing the immutable instance data
// (cube, candidate orders, member bitsets) but owning fresh coverage and
// trial scratch, so solver workers can evaluate selections concurrently.
func (p *Problem) scratchClone() *Problem {
	q := *p
	words := cube.BitsetWords(len(p.Cube.Tuples))
	q.cover = make([]uint64, words)
	q.base = make([]uint64, words)
	q.trialBuf, q.dropBuf = nil, nil
	if p.refCoverage {
		q.mark = make([]int32, len(p.Cube.Tuples))
		q.epoch = 0
	}
	return &q
}

// required returns the absolute tuple count the coverage constraint needs.
func (p *Problem) required() float64 {
	return p.Settings.Coverage * float64(p.total)
}

// compatible reports whether a group description could apply to a user
// with the given profile: every attribute both constrain must agree.
func compatible(group, profile cube.Key) bool {
	for a := 0; a < cube.NumAttrs; a++ {
		if profile[a] != cube.Wildcard && group[a] != cube.Wildcard && group[a] != profile[a] {
			return false
		}
	}
	return true
}

// Candidates returns the candidate group indices (into Cube.Groups) this
// problem optimizes over.
func (p *Problem) Candidates() []int {
	out := make([]int, len(p.cands))
	copy(out, p.cands)
	return out
}

// NumTuples returns |R_I|.
func (p *Problem) NumTuples() int { return p.total }

// CoverageOf computes the exact union coverage of a selection of group
// indices (into Cube.Groups) as a fraction of |R_I|.
func (p *Problem) CoverageOf(sel []int) float64 {
	return float64(p.coveredCount(sel)) / float64(max(1, p.total))
}

// Objective computes the task objective for a selection (lower is better
// for both tasks; DM internally negates the disagreement reward).
func (p *Problem) Objective(sel []int) float64 {
	switch p.Task {
	case SimilarityMining:
		return p.smError(sel)
	case DiversityMining:
		return p.Settings.Lambda*p.smError(sel) - p.pairGap(sel)
	}
	return math.Inf(1)
}

// smError is the size-weighted within-group standard deviation.
func (p *Problem) smError(sel []int) float64 {
	if len(sel) == 0 {
		return math.Inf(1)
	}
	var num, den float64
	for _, gi := range sel {
		g := &p.Cube.Groups[gi]
		n := float64(g.Support())
		num += n * g.Agg.Std()
		den += n
	}
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// pairGap rewards between-group disagreement: the mean of w(g,g')·|μ−μ'|
// over all pairs, where sibling pairs carry SiblingBoost. Dividing by the
// pair count (not Σw) keeps the boost effective even for a single pair —
// the paper's canonical DM output is one sibling controversy.
func (p *Problem) pairGap(sel []int) float64 {
	if len(sel) < 2 {
		return 0
	}
	var num float64
	pairs := 0
	for i := 0; i < len(sel); i++ {
		gi := &p.Cube.Groups[sel[i]]
		for j := i + 1; j < len(sel); j++ {
			gj := &p.Cube.Groups[sel[j]]
			w := 1.0
			if _, ok := gi.Key.SiblingOf(gj.Key); ok {
				w = p.Settings.SiblingBoost
			}
			num += w * math.Abs(gi.Mean()-gj.Mean())
			pairs++
		}
	}
	return num / float64(pairs)
}

// minGroups is the smallest admissible selection size for the task.
func (p *Problem) minGroups() int {
	if p.Task == DiversityMining {
		return 2
	}
	return 1
}

// Feasible reports whether a selection satisfies all constraints.
func (p *Problem) Feasible(sel []int) bool {
	if len(sel) < p.minGroups() || len(sel) > p.Settings.K {
		return false
	}
	seen := map[int]bool{}
	for _, gi := range sel {
		if seen[gi] {
			return false
		}
		seen[gi] = true
	}
	return float64(p.coveredCount(sel)) >= p.required()
}

// Evaluate returns the objective, exact coverage fraction and feasibility
// of a selection in one pass.
func (p *Problem) Evaluate(sel []int) (obj, coverage float64, feasible bool) {
	covered := p.coveredCount(sel)
	coverage = float64(covered) / float64(max(1, p.total))
	obj = p.Objective(sel)
	feasible = len(sel) >= p.minGroups() && len(sel) <= p.Settings.K &&
		float64(covered) >= p.required() && !hasDup(sel)
	return obj, coverage, feasible
}

func hasDup(sel []int) bool {
	for i := 0; i < len(sel); i++ {
		for j := i + 1; j < len(sel); j++ {
			if sel[i] == sel[j] {
				return true
			}
		}
	}
	return false
}

// Solution is a solver output: the chosen groups with their score.
type Solution struct {
	// Groups holds indices into Cube.Groups, sorted by support descending
	// for presentation stability.
	Groups []int
	// Objective is the task objective (lower is better for both tasks).
	Objective float64
	// Coverage is the exact fraction of R_I the groups jointly cover.
	Coverage float64
	// Feasible reports whether all constraints hold. Solvers only return
	// infeasible solutions when the instance itself is infeasible.
	Feasible bool
	// Evals counts objective evaluations spent (the experiments' work
	// metric, independent of wall clock).
	Evals int
}

// Better reports whether s beats other under (feasibility, objective).
func (s Solution) Better(other Solution) bool {
	if s.Feasible != other.Feasible {
		return s.Feasible
	}
	return s.Objective < other.Objective
}
