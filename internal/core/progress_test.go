package core

import (
	"sync"
	"testing"

	"repro/internal/cube"
)

// TestProgressSequential checks the sequential solver reports one event
// per restart with a monotonic done count and never changes the Solution.
func TestProgressSequential(t *testing.T) {
	c := buildCube(t, miningTuples(400, 1), cube.Config{RequireState: true, MinSupport: 5, MaxAVPairs: 2})
	s := DefaultSettings()
	s.Workers = 1
	s.Restarts = 7

	base := newProblem(t, SimilarityMining, c, s).SolveRHE()

	var events [][2]int
	s.Progress = func(done, total int) { events = append(events, [2]int{done, total}) }
	got := newProblem(t, SimilarityMining, c, s).SolveRHE()

	if len(events) != s.Restarts {
		t.Fatalf("got %d progress events, want %d", len(events), s.Restarts)
	}
	for i, ev := range events {
		if ev[0] != i+1 || ev[1] != s.Restarts {
			t.Fatalf("event %d = %v, want {%d, %d}", i, ev, i+1, s.Restarts)
		}
	}
	if got.Objective != base.Objective || got.Coverage != base.Coverage || len(got.Groups) != len(base.Groups) {
		t.Fatalf("progress callback changed the solution: %+v vs %+v", got, base)
	}
}

// TestProgressParallel checks the parallel path reports exactly Restarts
// events with done counts covering 1..Restarts (each exactly once), and
// that the solution stays byte-identical to the sequential one.
func TestProgressParallel(t *testing.T) {
	c := buildCube(t, miningTuples(400, 1), cube.Config{RequireState: true, MinSupport: 5, MaxAVPairs: 2})
	s := DefaultSettings()
	s.Workers = 1
	s.Restarts = 12
	base := newProblem(t, SimilarityMining, c, s).SolveRHE()

	var mu sync.Mutex
	seen := map[int]int{}
	s.Workers = 4
	s.Progress = func(done, total int) {
		if total != 12 {
			t.Errorf("total = %d, want 12", total)
		}
		mu.Lock()
		seen[done]++
		mu.Unlock()
	}
	got := newProblem(t, SimilarityMining, c, s).SolveRHE()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != s.Restarts {
		t.Fatalf("saw %d distinct done counts, want %d", len(seen), s.Restarts)
	}
	for d := 1; d <= s.Restarts; d++ {
		if seen[d] != 1 {
			t.Fatalf("done=%d reported %d times, want once", d, seen[d])
		}
	}
	if got.Objective != base.Objective || len(got.Groups) != len(base.Groups) {
		t.Fatalf("parallel+progress diverged from sequential: %+v vs %+v", got, base)
	}
}
