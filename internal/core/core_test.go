package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
)

// miningTuples builds a deterministic tuple set with planted consistency
// structure: per (gender,state) blocks with distinct means and low noise,
// so SM has consistent groups to find.
func miningTuples(n int, seed int64) []cube.Tuple {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]cube.Tuple, n)
	for i := range tuples {
		var t cube.Tuple
		t.Vals[cube.Gender] = int16(rng.Intn(2))
		t.Vals[cube.Age] = int16(rng.Intn(7))
		t.Vals[cube.Occupation] = int16(rng.Intn(21))
		t.Vals[cube.State] = int16(rng.Intn(6))
		base := 2.0 + float64(t.Vals[cube.Gender]) + float64(t.Vals[cube.State])*0.3
		score := int(base + rng.Float64()*1.2)
		if score < 1 {
			score = 1
		}
		if score > 5 {
			score = 5
		}
		t.Score = int8(score)
		t.UserID = int32(i + 1)
		t.ItemID = 1
		t.Unix = 1_000_000 + int64(i)
		tuples[i] = t
	}
	return tuples
}

// polarizedTuples plants the intro's Twilight structure: male-under-18 in
// every state hates (score 1-2), female-under-18 loves (4-5), everyone
// else sits in the middle.
func polarizedTuples(n int, seed int64) []cube.Tuple {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]cube.Tuple, n)
	for i := range tuples {
		var t cube.Tuple
		t.Vals[cube.Gender] = int16(rng.Intn(2))
		t.Vals[cube.Age] = int16(rng.Intn(3)) // young population
		t.Vals[cube.Occupation] = int16(rng.Intn(4))
		t.Vals[cube.State] = int16(rng.Intn(4))
		switch {
		case t.Vals[cube.Gender] == 0 && t.Vals[cube.Age] == 0:
			t.Score = int8(1 + rng.Intn(2)) // male under 18: hates
		case t.Vals[cube.Gender] == 1 && t.Vals[cube.Age] == 0:
			t.Score = int8(4 + rng.Intn(2)) // female under 18: loves
		default:
			t.Score = 3
		}
		t.UserID = int32(i + 1)
		t.ItemID = 7
		t.Unix = 1_000_000 + int64(i)
		tuples[i] = t
	}
	return tuples
}

func buildCube(t testing.TB, tuples []cube.Tuple, cfg cube.Config) *cube.Cube {
	t.Helper()
	c := cube.Build(tuples, cfg)
	if c.Len() == 0 {
		t.Fatal("fixture cube has no groups")
	}
	return c
}

func newProblem(t testing.TB, task Task, c *cube.Cube, s Settings) *Problem {
	t.Helper()
	p, err := NewProblem(task, c, s)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

func TestNewProblemValidation(t *testing.T) {
	c := buildCube(t, miningTuples(400, 1), cube.Config{RequireState: true, MinSupport: 5, MaxAVPairs: 2})

	s := DefaultSettings()
	s.K = 0
	if _, err := NewProblem(SimilarityMining, c, s); err == nil {
		t.Error("K=0 accepted")
	}
	s = DefaultSettings()
	s.Coverage = 1.5
	if _, err := NewProblem(SimilarityMining, c, s); err == nil {
		t.Error("coverage > 1 accepted")
	}
	s = DefaultSettings()
	s.K = 1
	if _, err := NewProblem(DiversityMining, c, s); err == nil {
		t.Error("DM with K=1 accepted")
	}
	// A profile nothing matches: no candidates.
	s = DefaultSettings()
	s.Profile = cube.KeyAll.With(cube.State, 40) // state index absent from fixture
	if _, err := NewProblem(SimilarityMining, c, s); err != ErrNoCandidates {
		t.Errorf("want ErrNoCandidates, got %v", err)
	}
	// Unreachable coverage.
	small := buildCube(t, miningTuples(400, 1), cube.Config{RequireState: true, MinSupport: 5, MaxAVPairs: 3})
	s = DefaultSettings()
	s.K = 1
	s.Coverage = 0.99
	if _, err := NewProblem(SimilarityMining, small, s); err != ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestCompatible(t *testing.T) {
	maleCA := cube.KeyAll.With(cube.Gender, 0).With(cube.State, cube.StateIndex("CA"))
	profileMale := cube.KeyAll.With(cube.Gender, 0)
	profileFemale := cube.KeyAll.With(cube.Gender, 1)
	if !compatible(maleCA, profileMale) {
		t.Error("male group should fit male profile")
	}
	if compatible(maleCA, profileFemale) {
		t.Error("male group should not fit female profile")
	}
	if !compatible(maleCA, cube.KeyAll) {
		t.Error("empty profile must accept everything")
	}
	stateOnly := cube.KeyAll.With(cube.State, cube.StateIndex("NY"))
	if !compatible(stateOnly, profileFemale) {
		t.Error("group without gender condition fits any gender")
	}
}

func TestEvaluateCoverageAgainstBruteForce(t *testing.T) {
	tuples := miningTuples(500, 3)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 5, MaxAVPairs: 2})
	p := newProblem(t, SimilarityMining, c, DefaultSettings())

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		k := 1 + rng.Intn(4)
		sel := map[int]bool{}
		for len(sel) < k {
			sel[rng.Intn(c.Len())] = true
		}
		var selIdx []int
		for gi := range sel {
			selIdx = append(selIdx, gi)
		}
		union := map[int32]bool{}
		for _, gi := range selIdx {
			for _, ti := range c.Groups[gi].Members {
				union[ti] = true
			}
		}
		want := float64(len(union)) / float64(len(tuples))
		if got := p.CoverageOf(selIdx); math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: coverage %f, brute force %f", trial, got, want)
		}
	}
}

func TestSMErrorHandComputed(t *testing.T) {
	// Two groups: one perfectly consistent (all 4s), one split (1s and 5s).
	tuples := []cube.Tuple{
		{Vals: [cube.NumAttrs]int16{0, 0, 0, 1}, Score: 4},
		{Vals: [cube.NumAttrs]int16{0, 0, 0, 1}, Score: 4},
		{Vals: [cube.NumAttrs]int16{1, 0, 0, 2}, Score: 1},
		{Vals: [cube.NumAttrs]int16{1, 0, 0, 2}, Score: 5},
	}
	c := cube.Build(tuples, cube.Config{RequireState: true, MinSupport: 1, MaxAVPairs: 1})
	s := DefaultSettings()
	s.K = 2
	s.Coverage = 0
	p := newProblem(t, SimilarityMining, c, s)

	g1, ok1 := c.Group(cube.KeyAll.With(cube.State, 1))
	g2, ok2 := c.Group(cube.KeyAll.With(cube.State, 2))
	if !ok1 || !ok2 {
		t.Fatal("state groups missing")
	}
	idx := func(g *cube.Group) int {
		for i := range c.Groups {
			if c.Groups[i].Key == g.Key {
				return i
			}
		}
		return -1
	}
	// σ(state1) = 0, σ(state2) = 2 → weighted (2·0 + 2·2)/4 = 1.
	obj := p.Objective([]int{idx(g1), idx(g2)})
	if math.Abs(obj-1.0) > 1e-12 {
		t.Errorf("SM objective = %f, want 1.0", obj)
	}
	if o := p.Objective([]int{idx(g1)}); o != 0 {
		t.Errorf("consistent group objective = %f, want 0", o)
	}
	if !math.IsInf(p.Objective(nil), 1) {
		t.Error("empty selection must have infinite SM error")
	}
}

func TestDMObjectiveRewardsGap(t *testing.T) {
	tuples := polarizedTuples(600, 5)
	c := buildCube(t, tuples, cube.Config{RequireState: false, MinSupport: 10, MaxAVPairs: 2})
	s := DefaultSettings()
	s.Coverage = 0
	s.K = 2
	p := newProblem(t, DiversityMining, c, s)

	maleU18 := cube.KeyAll.With(cube.Gender, 0).With(cube.Age, 0)
	femaleU18 := cube.KeyAll.With(cube.Gender, 1).With(cube.Age, 0)
	neutralA := cube.KeyAll.With(cube.Age, 1)
	neutralB := cube.KeyAll.With(cube.Age, 2)
	gi := func(k cube.Key) int {
		for i := range c.Groups {
			if c.Groups[i].Key == k {
				return i
			}
		}
		t.Fatalf("group %v missing", k)
		return -1
	}
	split := p.Objective([]int{gi(maleU18), gi(femaleU18)})
	boring := p.Objective([]int{gi(neutralA), gi(neutralB)})
	if split >= boring {
		t.Errorf("DM objective should prefer the polarized pair: split=%f boring=%f", split, boring)
	}
}

func TestFeasibleRejectsDuplicatesAndSize(t *testing.T) {
	c := buildCube(t, miningTuples(300, 7), cube.Config{RequireState: true, MinSupport: 5, MaxAVPairs: 2})
	s := DefaultSettings()
	s.Coverage = 0
	p := newProblem(t, SimilarityMining, c, s)
	if p.Feasible([]int{0, 0}) {
		t.Error("duplicate selection accepted")
	}
	if p.Feasible([]int{}) {
		t.Error("empty selection accepted")
	}
	if p.Feasible([]int{0, 1, 2, 3}) {
		t.Error("selection larger than K accepted")
	}
	if !p.Feasible([]int{0}) {
		t.Error("single group with α=0 should be feasible")
	}
}

func TestRHEFeasibleAndDeterministic(t *testing.T) {
	tuples := miningTuples(800, 11)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 8, MaxAVPairs: 2})
	s := DefaultSettings()
	s.Restarts = 8
	p := newProblem(t, SimilarityMining, c, s)

	sol := p.SolveRHE()
	if !sol.Feasible {
		t.Fatalf("RHE infeasible: %+v", sol)
	}
	if len(sol.Groups) > s.K {
		t.Fatalf("RHE returned %d groups, K=%d", len(sol.Groups), s.K)
	}
	if sol.Coverage < s.Coverage-1e-12 {
		t.Fatalf("RHE coverage %f < α %f", sol.Coverage, s.Coverage)
	}
	if sol.Evals <= 0 {
		t.Error("RHE reported no evaluations")
	}

	p2 := newProblem(t, SimilarityMining, c, s)
	sol2 := p2.SolveRHE()
	if len(sol.Groups) != len(sol2.Groups) || sol.Objective != sol2.Objective {
		t.Fatalf("RHE not deterministic: %+v vs %+v", sol, sol2)
	}
	for i := range sol.Groups {
		if sol.Groups[i] != sol2.Groups[i] {
			t.Fatalf("RHE groups differ: %v vs %v", sol.Groups, sol2.Groups)
		}
	}
}

func TestRHESolutionGroupsAreCandidates(t *testing.T) {
	tuples := miningTuples(500, 13)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 8, MaxAVPairs: 2})
	s := DefaultSettings()
	s.Profile = cube.KeyAll.With(cube.Gender, 0) // male profile
	p := newProblem(t, SimilarityMining, c, s)
	sol := p.SolveRHE()
	if !sol.Feasible {
		t.Fatal("infeasible")
	}
	candSet := map[int]bool{}
	for _, gi := range p.Candidates() {
		candSet[gi] = true
	}
	for _, gi := range sol.Groups {
		if !candSet[gi] {
			t.Fatalf("solution group %d not a candidate", gi)
		}
		key := c.Groups[gi].Key
		if key.Has(cube.Gender) && key[cube.Gender] != 0 {
			t.Fatalf("profile violated by group %v", key)
		}
	}
}

func TestRHEMatchesExhaustiveOnSmallInstances(t *testing.T) {
	// Tiny candidate spaces: exhaustive optimum must never beat RHE by a
	// noticeable margin (RHE with enough restarts should find the optimum).
	ran := 0
	for seed := int64(1); seed <= 5; seed++ {
		tuples := miningTuples(220, seed)
		c := cube.Build(tuples, cube.Config{RequireState: true, MinSupport: 25, MaxAVPairs: 1})
		if c.Len() < 3 || c.Len() > 18 {
			continue
		}
		s := DefaultSettings()
		s.K = 2
		s.Coverage = 0.25
		s.Restarts = 24
		p, err := NewProblem(SimilarityMining, c, s)
		if err != nil {
			continue
		}
		opt, err := p.SolveExhaustive()
		if err != nil {
			t.Fatalf("seed %d: exhaustive: %v", seed, err)
		}
		rhe := p.SolveRHE()
		if !opt.Feasible {
			continue
		}
		ran++
		if !rhe.Feasible {
			t.Fatalf("seed %d: optimum feasible but RHE infeasible", seed)
		}
		if rhe.Objective < opt.Objective-1e-9 {
			t.Fatalf("seed %d: RHE %f beat the exhaustive optimum %f", seed, rhe.Objective, opt.Objective)
		}
		if rhe.Objective > opt.Objective+0.15 {
			t.Errorf("seed %d: RHE %f far from optimum %f", seed, rhe.Objective, opt.Objective)
		}
	}
	if ran == 0 {
		t.Fatal("no instance qualified for the exhaustive comparison; fixture drifted")
	}
}

func TestExhaustiveRefusesLargeInstances(t *testing.T) {
	tuples := miningTuples(3000, 17)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 2, MaxAVPairs: 3})
	s := DefaultSettings()
	s.K = 4
	p := newProblem(t, SimilarityMining, c, s)
	if c.Len() < 100 {
		t.Skipf("fixture too small (%d candidates)", c.Len())
	}
	if _, err := p.SolveExhaustive(); err == nil {
		t.Error("exhaustive search accepted a huge instance")
	}
}

func TestGreedyAndRandomFeasible(t *testing.T) {
	tuples := miningTuples(800, 19)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 8, MaxAVPairs: 2})
	for _, task := range []Task{SimilarityMining, DiversityMining} {
		s := DefaultSettings()
		p := newProblem(t, task, c, s)
		greedy := p.SolveGreedy()
		if !greedy.Feasible {
			t.Errorf("%v: greedy infeasible: %+v", task, greedy)
		}
		random := p.SolveRandom(10)
		if !random.Feasible {
			t.Errorf("%v: random infeasible: %+v", task, random)
		}
		rhe := p.SolveRHE()
		if !rhe.Feasible {
			t.Errorf("%v: RHE infeasible", task)
		}
		// RHE must not lose to the best-of-10 random control.
		if rhe.Objective > random.Objective+1e-9 {
			t.Errorf("%v: RHE %f worse than random %f", task, rhe.Objective, random.Objective)
		}
	}
}

func TestDMFindsPolarizedSiblingPair(t *testing.T) {
	tuples := polarizedTuples(900, 23)
	c := buildCube(t, tuples, cube.Config{RequireState: false, MinSupport: 10, MaxAVPairs: 2})
	s := DefaultSettings()
	s.K = 2
	s.Coverage = 0.05
	s.Restarts = 24
	p := newProblem(t, DiversityMining, c, s)
	sol := p.SolveRHE()
	if !sol.Feasible || len(sol.Groups) < 2 {
		t.Fatalf("DM solution unusable: %+v", sol)
	}
	// The two selected groups must disagree strongly.
	means := make([]float64, len(sol.Groups))
	for i, gi := range sol.Groups {
		means[i] = c.Groups[gi].Mean()
	}
	maxGap := 0.0
	for i := range means {
		for j := i + 1; j < len(means); j++ {
			if gap := math.Abs(means[i] - means[j]); gap > maxGap {
				maxGap = gap
			}
		}
	}
	if maxGap < 1.5 {
		t.Errorf("DM best pair gap = %.2f, want ≥ 1.5 on the polarized fixture", maxGap)
	}
}

func TestSolutionBetterOrdering(t *testing.T) {
	feasLow := Solution{Feasible: true, Objective: 0.1}
	feasHigh := Solution{Feasible: true, Objective: 0.9}
	infeas := Solution{Feasible: false, Objective: -5}
	if !feasLow.Better(feasHigh) || feasHigh.Better(feasLow) {
		t.Error("objective ordering broken")
	}
	if !feasHigh.Better(infeas) {
		t.Error("feasible must beat infeasible")
	}
	if infeas.Better(feasLow) {
		t.Error("infeasible beat feasible")
	}
}

func TestCoverageOfProperty(t *testing.T) {
	tuples := miningTuples(300, 29)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 3, MaxAVPairs: 2})
	s := DefaultSettings()
	s.Coverage = 0
	p := newProblem(t, SimilarityMining, c, s)
	f := func(picks []uint16) bool {
		if len(picks) == 0 {
			return p.CoverageOf(nil) == 0
		}
		k := len(picks)%5 + 1
		if k > len(picks) {
			k = len(picks)
		}
		sel := make([]int, 0, k)
		for _, pk := range picks[:k] {
			sel = append(sel, int(pk)%c.Len())
		}
		cov := p.CoverageOf(sel)
		if cov < 0 || cov > 1 {
			return false
		}
		// Coverage is monotone: adding a group cannot reduce it.
		bigger := append(clone(sel), 0)
		return p.CoverageOf(bigger) >= cov
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTaskString(t *testing.T) {
	if SimilarityMining.String() != "SM" || DiversityMining.String() != "DM" {
		t.Error("task names")
	}
}

func TestByExtremeOrdering(t *testing.T) {
	tuples := polarizedTuples(700, 31)
	c := buildCube(t, tuples, cube.Config{RequireState: false, MinSupport: 10, MaxAVPairs: 2})
	s := DefaultSettings()
	s.Coverage = 0.05
	p := newProblem(t, DiversityMining, c, s)
	if len(p.byExtreme) != len(p.cands) {
		t.Fatalf("byExtreme has %d entries, cands %d", len(p.byExtreme), len(p.cands))
	}
	var overall cube.Agg
	for i := range tuples {
		overall.Add(tuples[i].Score)
	}
	mean := overall.Mean()
	for i := 1; i < len(p.byExtreme); i++ {
		prev := math.Abs(c.Groups[p.byExtreme[i-1]].Mean() - mean)
		cur := math.Abs(c.Groups[p.byExtreme[i]].Mean() - mean)
		if cur > prev+1e-12 {
			t.Fatalf("byExtreme not sorted at %d: %f then %f", i, prev, cur)
		}
	}
	// SM problems skip the extra ordering work.
	pSM := newProblem(t, SimilarityMining, c, s)
	if pSM.byExtreme != nil {
		t.Error("SM problem built byExtreme needlessly")
	}
}

func TestRHEFindsRareExtremePair(t *testing.T) {
	// The polarized fixture's under-18 sibling pair is a small fraction of
	// the candidates; the DM-aware sampling must still find a selection at
	// least as good as that pair's objective.
	tuples := polarizedTuples(900, 37)
	c := buildCube(t, tuples, cube.Config{RequireState: false, MinSupport: 10, MaxAVPairs: 2})
	s := DefaultSettings()
	s.K = 2
	s.Coverage = 0.05
	p := newProblem(t, DiversityMining, c, s)

	maleU18 := cube.KeyAll.With(cube.Gender, 0).With(cube.Age, 0)
	femaleU18 := cube.KeyAll.With(cube.Gender, 1).With(cube.Age, 0)
	gi := func(k cube.Key) int {
		for i := range c.Groups {
			if c.Groups[i].Key == k {
				return i
			}
		}
		t.Skipf("group %v pruned in this fixture", k)
		return -1
	}
	pairObj, _, feasible := p.Evaluate([]int{gi(maleU18), gi(femaleU18)})
	if !feasible {
		t.Skip("planted pair infeasible under the coverage constraint")
	}
	sol := p.SolveRHE()
	if !sol.Feasible {
		t.Fatal("RHE infeasible")
	}
	if sol.Objective > pairObj+1e-9 {
		t.Errorf("RHE objective %.4f worse than the known pair %.4f", sol.Objective, pairObj)
	}
}

func TestDMExhaustiveAgreement(t *testing.T) {
	tuples := polarizedTuples(400, 41)
	c := cube.Build(tuples, cube.Config{RequireState: false, MinSupport: 40, MaxAVPairs: 1})
	if c.Len() < 3 || c.Len() > 20 {
		t.Skipf("fixture yields %d candidates", c.Len())
	}
	s := DefaultSettings()
	s.K = 2
	s.Coverage = 0.10
	p, err := NewProblem(DiversityMining, c, s)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	opt, err := p.SolveExhaustive()
	if err != nil || !opt.Feasible {
		t.Fatalf("exhaustive: %v (%+v)", err, opt)
	}
	rhe := p.SolveRHE()
	if rhe.Objective < opt.Objective-1e-9 {
		t.Fatalf("RHE %.6f beat the optimum %.6f", rhe.Objective, opt.Objective)
	}
	if rhe.Objective > opt.Objective+0.05 {
		t.Errorf("RHE %.4f far from DM optimum %.4f", rhe.Objective, opt.Objective)
	}
}

func TestProfileFiltersCandidates(t *testing.T) {
	tuples := miningTuples(600, 43)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 5, MaxAVPairs: 2})
	s := DefaultSettings()
	s.Profile = cube.KeyAll.With(cube.Gender, 1)
	p := newProblem(t, SimilarityMining, c, s)
	free := newProblem(t, SimilarityMining, c, DefaultSettings())
	if len(p.Candidates()) >= len(free.Candidates()) {
		t.Errorf("profile did not narrow candidates: %d vs %d",
			len(p.Candidates()), len(free.Candidates()))
	}
	for _, gi := range p.Candidates() {
		k := c.Groups[gi].Key
		if k.Has(cube.Gender) && k[cube.Gender] != 1 {
			t.Fatalf("candidate %v contradicts the profile", k)
		}
	}
}

func TestEvalsAccounting(t *testing.T) {
	tuples := miningTuples(400, 47)
	c := buildCube(t, tuples, cube.Config{RequireState: true, MinSupport: 8, MaxAVPairs: 2})
	p := newProblem(t, SimilarityMining, c, DefaultSettings())
	rhe := p.SolveRHE()
	greedy := p.SolveGreedy()
	rnd := p.SolveRandom(10)
	if rhe.Evals <= rnd.Evals {
		t.Errorf("RHE evals %d should exceed random's %d", rhe.Evals, rnd.Evals)
	}
	if greedy.Evals <= 0 || rnd.Evals <= 0 {
		t.Error("baselines reported no work")
	}
}
