package core

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// rhePatience is how many fresh neighbourhood samples a restart draws
// after one shows no improving move, before declaring a local optimum.
// The neighbourhood is sampled, so a single empty sample is weak evidence
// of local optimality when the candidate set is much larger than the
// sample.
const rhePatience = 3

// SolveRHE runs Randomized Hill Exploration: repeated randomized restarts,
// each drawing a random coverage-repaired selection and hill-climbing over
// a sampled swap/add/drop neighbourhood until no sampled move improves the
// objective while staying feasible. The best local optimum across restarts
// wins.
//
// Each restart r draws from its own sub-seeded generator (rng.Sub(Seed, r)),
// so the result is a pure function of Settings.Seed regardless of how many
// worker goroutines (Settings.Workers; 0 means GOMAXPROCS) execute the
// restarts: the parallel and sequential paths return byte-identical
// Solutions.
func (p *Problem) SolveRHE() Solution {
	sol, _ := p.SolveRHECtx(context.Background()) //maprat:allow(ctxflow) compat wrapper: preserves the pre-context API; cancellable callers use SolveRHECtx
	return sol
}

// SolveRHECtx is SolveRHE with cancellation: it stops between hill-climb
// iterations once ctx is done and returns ctx.Err(). The partial best is
// discarded — a cancelled mine has no useful answer to cache.
func (p *Problem) SolveRHECtx(ctx context.Context) (Solution, error) {
	workers := p.Settings.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.Settings.Restarts {
		workers = p.Settings.Restarts
	}

	if workers <= 1 {
		var fold rheFold
		for r := 0; r < p.Settings.Restarts; r++ {
			if ctx.Err() != nil {
				return Solution{}, ctx.Err()
			}
			fold.add(p.runRestart(ctx, r), r)
			if p.Settings.Progress != nil {
				p.Settings.Progress(r+1, p.Settings.Restarts)
			}
		}
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		return p.finish(fold), nil
	}

	// Work-stealing over restart indices: the restart's generator depends
	// only on its index, and each worker climbs on a private scratch
	// clone, so the schedule cannot influence the outcome. Each worker
	// folds its own running best (O(workers) memory, not O(restarts));
	// the index tie-break in rheFold makes the merged result identical
	// to the sequential first-wins fold.
	folds := make([]rheFold, workers)
	var next, completed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(fold *rheFold) {
			defer wg.Done()
			q := p.scratchClone()
			for ctx.Err() == nil {
				r := int(next.Add(1)) - 1
				if r >= p.Settings.Restarts {
					return
				}
				fold.add(q.runRestart(ctx, r), r)
				if p.Settings.Progress != nil {
					// done is the count of completed restarts, not which
					// ones: under work stealing the indices finish out of
					// order, but the count is still monotonic.
					p.Settings.Progress(int(completed.Add(1)), p.Settings.Restarts)
				}
			}
		}(&folds[w])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Solution{}, err
	}
	var merged rheFold
	for w := range folds {
		merged.merge(folds[w])
	}
	return p.finish(merged), nil
}

// restartResult is one restart's local optimum. ok is false when the
// restart could not even draw a feasible initial selection.
type restartResult struct {
	sol   Solution
	evals int
	ok    bool
}

// rheFold accumulates restart results into the running best. It keeps the
// originating restart index so merging partial folds reproduces the
// sequential loop exactly: Better is a preorder (feasibility, then strict
// objective), and the sequential loop keeps the earlier restart on ties,
// so (Better, lowest-index) is the total order both paths minimize.
type rheFold struct {
	best    Solution
	bestIdx int // restart index of best; -1 while empty
	evals   int

	inited bool
}

func (f *rheFold) add(r restartResult, idx int) {
	if !f.inited {
		f.bestIdx, f.inited = -1, true
	}
	f.evals += r.evals
	if !r.ok {
		return
	}
	if f.bestIdx < 0 || betterAt(r.sol, idx, f.best, f.bestIdx) {
		f.best, f.bestIdx = r.sol, idx
	}
}

func (f *rheFold) merge(other rheFold) {
	if !f.inited {
		f.bestIdx, f.inited = -1, true
	}
	f.evals += other.evals
	if other.bestIdx < 0 {
		return
	}
	if f.bestIdx < 0 || betterAt(other.best, other.bestIdx, f.best, f.bestIdx) {
		f.best, f.bestIdx = other.best, other.bestIdx
	}
}

// betterAt orders (solution, restart index) pairs: Better first, earliest
// restart on ties.
func betterAt(a Solution, ai int, b Solution, bi int) bool {
	if a.Better(b) {
		return true
	}
	if b.Better(a) {
		return false
	}
	return ai < bi
}

// finish converts a completed fold into the returned Solution.
func (p *Problem) finish(f rheFold) Solution {
	best := f.best
	if f.bestIdx < 0 {
		best = Solution{Objective: math.Inf(1)}
	}
	best.Evals = f.evals
	p.sortForPresentation(best.Groups)
	return best
}

// runRestart executes restart r: sub-seeded random init, then sampled hill
// climbing. It uses p's scratch buffers, so concurrent callers must operate
// on distinct scratch clones.
func (p *Problem) runRestart(ctx context.Context, r int) restartResult {
	gen := rng.Sub(p.Settings.Seed, int64(r))
	sel, ok := p.randomFeasibleInit(gen)
	if !ok {
		return restartResult{}
	}
	obj, _, _ := p.Evaluate(sel)
	evals := 1
	// Re-sampling only helps when the sample cannot already cover the
	// whole candidate set.
	patience := rhePatience
	if p.Settings.SampleSize >= len(p.cands) {
		patience = 1
	}
	misses := 0
	for iter := 0; iter < p.Settings.MaxIters && misses < patience; iter++ {
		if ctx.Err() != nil {
			return restartResult{}
		}
		newSel, newObj, e, moved := p.bestSampledMove(gen, sel, obj)
		evals += e
		if !moved {
			misses++
			continue
		}
		misses = 0
		sel, obj = newSel, newObj
	}
	cand := Solution{Groups: clone(sel)}
	cand.Objective, cand.Coverage, cand.Feasible = p.Evaluate(cand.Groups)
	evals++
	return restartResult{sol: cand, evals: evals, ok: true}
}

// randomFeasibleInit draws K random candidates biased toward high support,
// then greedily repairs coverage by swapping the group with the smallest
// unique contribution for the unused candidate with the highest marginal
// coverage.
func (p *Problem) randomFeasibleInit(rng *rand.Rand) ([]int, bool) {
	k := p.Settings.K
	if k > len(p.cands) {
		k = len(p.cands)
	}
	if k < p.minGroups() {
		return nil, false
	}
	// Support-biased sampling: candidates are support-sorted, so a squared
	// uniform index skews toward the head.
	sel := make([]int, 0, k)
	used := map[int]bool{}
	for attempts := 0; len(sel) < k && attempts < 64*k; attempts++ {
		u := rng.Float64()
		idx := int(u * u * float64(len(p.cands)))
		if idx >= len(p.cands) {
			idx = len(p.cands) - 1
		}
		gi := p.cands[idx]
		if !used[gi] {
			used[gi] = true
			sel = append(sel, gi)
		}
	}
	if len(sel) < p.minGroups() {
		return nil, false
	}
	// Greedy coverage repair.
	for repair := 0; repair < 4*k; repair++ {
		if float64(p.coveredCount(sel)) >= p.required() {
			return sel, true
		}
		worst := p.leastUniqueIndex(sel)
		p.markSelection(sel, worst)
		bestCand, bestGain := -1, -1
		for _, gi := range p.cands {
			if used[gi] {
				continue
			}
			if gain := p.unmarkedCount(gi); gain > bestGain {
				bestGain, bestCand = gain, gi
			}
		}
		if bestCand < 0 {
			break
		}
		delete(used, sel[worst])
		used[bestCand] = true
		sel[worst] = bestCand
	}
	return sel, float64(p.coveredCount(sel)) >= p.required()
}

// bestSampledMove examines a sampled neighbourhood — swapping each position
// with SampleSize candidates, dropping a position, adding a candidate — and
// returns the best feasible selection that improves on curObj.
//
// Coverage is evaluated incrementally: for each position, the union bitset
// of the other selected groups is built once (markSelection), and every
// sampled replacement then costs a single AND-NOT popcount of the
// candidate's bitset against that base — instead of re-marking all K
// groups' member lists per trial as the reference scan does. Trials reuse
// one scratch selection, and the objective is only computed for feasible
// trials; the trial order, the evaluation count and every number compared
// are identical to the reference, so the chosen move is too.
func (p *Problem) bestSampledMove(rng *rand.Rand, sel []int, curObj float64) (newSel []int, obj float64, evals int, moved bool) {
	if p.refCoverage {
		return p.bestSampledMoveRef(rng, sel, curObj)
	}
	bestObj := curObj
	var bestSel []int

	inSel := map[int]bool{}
	for _, gi := range sel {
		inSel[gi] = true
	}
	required := p.required()
	// consider scores one trial whose exact union coverage is already
	// known; the trial slice is scratch and cloned only on improvement.
	consider := func(covered int, trial []int) {
		evals++
		if len(trial) < p.minGroups() || len(trial) > p.Settings.K ||
			float64(covered) < required || hasDup(trial) {
			return
		}
		if o := p.Objective(trial); o < bestObj-1e-12 {
			bestObj, bestSel = o, clone(trial)
		}
	}

	sample := p.sampleCandidates(rng, inSel)
	trial := append(p.trialBuf[:0], sel...)
	for pos := range sel {
		p.markSelection(sel, pos) // base = union of sel minus pos
		others := p.baseCount()
		for _, cand := range sample {
			trial[pos] = cand
			consider(others+p.unmarkedCount(cand), trial)
		}
		trial[pos] = sel[pos]
		if len(sel) > p.minGroups() {
			drop := append(p.dropBuf[:0], sel[:pos]...)
			drop = append(drop, sel[pos+1:]...)
			consider(others, drop)
			p.dropBuf = drop
		}
	}
	if len(sel) < p.Settings.K {
		p.markSelection(sel, -1) // base = union of the whole selection
		all := p.baseCount()
		grow := append(trial, 0)
		for _, cand := range sample {
			grow[len(grow)-1] = cand
			consider(all+p.unmarkedCount(cand), grow)
		}
		trial = grow[:len(sel)]
	}
	p.trialBuf = trial

	if bestSel == nil {
		return sel, curObj, evals, false
	}
	return bestSel, bestObj, evals, true
}

// bestSampledMoveRef is the reference neighbourhood scan: every trial is
// evaluated from scratch through Evaluate. Kept for the differential
// tests; bestSampledMove must select the identical move.
func (p *Problem) bestSampledMoveRef(rng *rand.Rand, sel []int, curObj float64) (newSel []int, obj float64, evals int, moved bool) {
	bestObj := curObj
	var bestSel []int

	inSel := map[int]bool{}
	for _, gi := range sel {
		inSel[gi] = true
	}
	try := func(trial []int) {
		o, _, feasible := p.Evaluate(trial)
		evals++
		if feasible && o < bestObj-1e-12 {
			bestObj, bestSel = o, trial
		}
	}

	sample := p.sampleCandidates(rng, inSel)
	for pos := range sel {
		for _, cand := range sample {
			trial := clone(sel)
			trial[pos] = cand
			try(trial)
		}
		if len(sel) > p.minGroups() {
			trial := make([]int, 0, len(sel)-1)
			trial = append(trial, sel[:pos]...)
			try(append(trial, sel[pos+1:]...))
		}
	}
	if len(sel) < p.Settings.K {
		for _, cand := range sample {
			trial := make([]int, 0, len(sel)+1)
			trial = append(trial, sel...)
			try(append(trial, cand))
		}
	}

	if bestSel == nil {
		return sel, curObj, evals, false
	}
	return bestSel, bestObj, evals, true
}

// sampleCandidates draws up to SampleSize distinct candidates outside the
// current selection: the support-sorted head (always worth trying), for
// Diversity Mining additionally the extreme-mean head (small groups with
// far-out averages are exactly what the DM reward wants, and uniform
// sampling almost never surfaces them), and uniform random exploration for
// the rest.
func (p *Problem) sampleCandidates(rng *rand.Rand, inSel map[int]bool) []int {
	n := p.Settings.SampleSize
	out := make([]int, 0, n)
	seen := map[int]bool{}
	take := func(list []int, quota int) {
		for _, gi := range list {
			if len(out) >= quota {
				return
			}
			if !inSel[gi] && !seen[gi] {
				seen[gi] = true
				out = append(out, gi)
			}
		}
	}
	take(p.cands, n/3)
	if p.Task == DiversityMining {
		take(p.byExtreme, 2*n/3)
	}
	for attempts := 0; len(out) < n && attempts < 4*n; attempts++ {
		gi := p.cands[rng.Intn(len(p.cands))]
		if !inSel[gi] && !seen[gi] {
			seen[gi] = true
			out = append(out, gi)
		}
	}
	return out
}

func (p *Problem) sortForPresentation(sel []int) {
	sort.Slice(sel, func(a, b int) bool {
		ga, gb := &p.Cube.Groups[sel[a]], &p.Cube.Groups[sel[b]]
		if ga.Support() != gb.Support() {
			return ga.Support() > gb.Support()
		}
		return sel[a] < sel[b]
	})
}

func clone(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	return out
}
