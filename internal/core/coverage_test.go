package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cube"
)

// cityMiningTuples plants per-city structure inside a couple of states so
// the drill-down (RequireCity) configuration has cells to mine.
func cityMiningTuples(n int, seed int64) []cube.Tuple {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]cube.Tuple, n)
	for i := range tuples {
		var t cube.Tuple
		t.Vals[cube.Gender] = int16(rng.Intn(2))
		t.Vals[cube.Age] = int16(rng.Intn(5))
		t.Vals[cube.Occupation] = int16(rng.Intn(8))
		t.Vals[cube.State] = int16(rng.Intn(3))
		t.Vals[cube.City] = int16(rng.Intn(8))
		t.Score = int8(1 + (int(t.Vals[cube.City])+rng.Intn(2))%5)
		t.UserID = int32(i + 1)
		t.ItemID = 1
		t.Unix = 1_000_000 + int64(i)
		tuples[i] = t
	}
	return tuples
}

// TestCoverageEnginesAgree drives the bitset engine and the epoch-marking
// reference engine over random selections and demands identical integers,
// cross-checked against a brute-force set union.
func TestCoverageEnginesAgree(t *testing.T) {
	c := buildCube(t, miningTuples(900, 3), cube.Config{RequireState: true, MinSupport: 4, MaxAVPairs: 3})
	p := newProblem(t, SimilarityMining, c, DefaultSettings())
	ref := newProblem(t, SimilarityMining, c, DefaultSettings())
	ref.useReferenceCoverage()

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(5)
		sel := make([]int, 0, k)
		for len(sel) < k {
			sel = append(sel, rng.Intn(c.Len()))
		}
		want := map[int32]bool{}
		for _, gi := range sel {
			for _, ti := range c.Groups[gi].Members {
				want[ti] = true
			}
		}
		if got := p.coveredCount(sel); got != len(want) {
			t.Fatalf("bitset coveredCount(%v) = %d, brute force %d", sel, got, len(want))
		}
		if got := ref.coveredCount(sel); got != len(want) {
			t.Fatalf("reference coveredCount(%v) = %d, brute force %d", sel, got, len(want))
		}

		skip := rng.Intn(len(sel)+1) - 1 // -1..len-1
		p.markSelection(sel, skip)
		ref.markSelection(sel, skip)
		gi := rng.Intn(c.Len())
		if a, b := p.unmarkedCount(gi), ref.unmarkedCount(gi); a != b {
			t.Fatalf("unmarkedCount(%d) after mark(%v, %d): bitset %d, reference %d", gi, sel, skip, a, b)
		}
		if a, b := p.leastUniqueIndex(sel), ref.leastUniqueIndex(sel); a != b {
			t.Fatalf("leastUniqueIndex(%v): bitset %d, reference %d", sel, a, b)
		}
	}
}

// TestSolversMatchReferenceEngine is the end-to-end differential test: for
// fixed seeds, every solver must return a byte-identical Solution with the
// new kernels on (packed build + bitset coverage + incremental
// neighbourhood scan) and off (reference map build + epoch marking +
// from-scratch evaluation) — across SM and DM, the city drill-down
// configuration, and evolution-style time-window slices.
func TestSolversMatchReferenceEngine(t *testing.T) {
	type instance struct {
		name   string
		tuples []cube.Tuple
		cfg    cube.Config
		tweak  func(*Settings)
	}
	instances := []instance{
		{"sm-default", miningTuples(1200, 11), cube.Config{RequireState: true, MinSupport: 10, MaxAVPairs: 3, SkipApex: true}, nil},
		{"framework", polarizedTuples(900, 13), cube.Config{RequireState: false, MinSupport: 8, MaxAVPairs: 2, SkipApex: true},
			func(s *Settings) { s.K = 2; s.Coverage = 0.05 }},
		{"city-drill", cityMiningTuples(1000, 17), cube.Config{RequireCity: true, MinSupport: 5, MaxAVPairs: 3, SkipApex: true},
			func(s *Settings) { s.Coverage = 0.10 }},
	}
	// Evolution-style windows: consecutive slices of one log (tuples are
	// Unix-ordered by construction), each mined as its own instance.
	evo := miningTuples(1500, 19)
	for i, lo := 0, 0; i < 3; i++ {
		hi := (i + 1) * len(evo) / 3
		instances = append(instances, instance{
			name:   "evo-window-" + string(rune('0'+i)),
			tuples: evo[lo:hi],
			cfg:    cube.Config{RequireState: true, MinSupport: 6, MaxAVPairs: 3, SkipApex: true},
		})
		lo = hi
	}

	for _, inst := range instances {
		for _, task := range []Task{SimilarityMining, DiversityMining} {
			s := DefaultSettings()
			s.Restarts = 6
			if inst.tweak != nil {
				inst.tweak(&s)
			}
			packed := cube.Build(inst.tuples, inst.cfg)
			refCube := cube.BuildReference(inst.tuples, inst.cfg)

			p, err := NewProblem(task, packed, s)
			ref, rerr := NewProblem(task, refCube, s)
			if (err == nil) != (rerr == nil) {
				t.Fatalf("%s/%v: constructor divergence: %v vs %v", inst.name, task, err, rerr)
			}
			if err != nil {
				continue
			}
			ref.useReferenceCoverage()

			got, want := p.SolveRHE(), ref.SolveRHE()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%v: RHE diverged:\nnew kernels %+v\nreference   %+v", inst.name, task, got, want)
			}
			if g, w := p.SolveGreedy(), ref.SolveGreedy(); !reflect.DeepEqual(g, w) {
				t.Fatalf("%s/%v: greedy diverged:\nnew kernels %+v\nreference   %+v", inst.name, task, g, w)
			}
			if g, w := p.SolveRandom(8), ref.SolveRandom(8); !reflect.DeepEqual(g, w) {
				t.Fatalf("%s/%v: random diverged:\nnew kernels %+v\nreference   %+v", inst.name, task, g, w)
			}
		}
	}
}

// TestParallelRHEMatchesReference pins the full matrix: the worker-pool
// solver on the bitset engine equals the sequential reference run.
func TestParallelRHEMatchesReference(t *testing.T) {
	c := buildCube(t, miningTuples(1000, 23), cube.Config{RequireState: true, MinSupport: 8, MaxAVPairs: 3, SkipApex: true})
	s := DefaultSettings()
	s.Restarts = 8

	ref := newProblem(t, DiversityMining, cube.BuildReference(c.Tuples, c.Cfg), s)
	ref.useReferenceCoverage()
	want := ref.SolveRHE()

	for _, workers := range []int{1, 2, 4} {
		s.Workers = workers
		p := newProblem(t, DiversityMining, c, s)
		if got := p.SolveRHE(); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from reference:\n%+v\n%+v", workers, got, want)
		}
	}
}
