package core

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// MaxExhaustiveSubsets bounds SolveExhaustive's enumeration so tests and
// experiments cannot accidentally melt a laptop; the experiments only use
// the exact optimum on small candidate sets.
const MaxExhaustiveSubsets = 2_000_000

// SolveExhaustive enumerates every selection of minGroups..K candidate
// groups and returns the exact optimum. It fails when the instance would
// exceed MaxExhaustiveSubsets evaluations.
func (p *Problem) SolveExhaustive() (Solution, error) {
	n := len(p.cands)
	totalSubsets := 0
	for k := p.minGroups(); k <= p.Settings.K && k <= n; k++ {
		totalSubsets += binomial(n, k)
		if totalSubsets > MaxExhaustiveSubsets || totalSubsets < 0 {
			return Solution{}, fmt.Errorf(
				"core: exhaustive search needs > %d evaluations (n=%d, K=%d)",
				MaxExhaustiveSubsets, n, p.Settings.K)
		}
	}

	best := Solution{Objective: math.Inf(1)}
	evals := 0
	sel := make([]int, 0, p.Settings.K)
	var recurse func(start, k int)
	recurse = func(start, k int) {
		if k == 0 {
			obj, cov, feasible := p.Evaluate(sel)
			evals++
			cand := Solution{Objective: obj, Coverage: cov, Feasible: feasible}
			if cand.Better(best) {
				cand.Groups = clone(sel)
				best = cand
			}
			return
		}
		for i := start; i <= len(p.cands)-k; i++ {
			sel = append(sel, p.cands[i])
			recurse(i+1, k-1)
			sel = sel[:len(sel)-1]
		}
	}
	for k := p.minGroups(); k <= p.Settings.K && k <= n; k++ {
		recurse(0, k)
	}
	best.Evals = evals
	p.sortForPresentation(best.Groups)
	return best, nil
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
		if res < 0 || res > MaxExhaustiveSubsets*8 {
			return MaxExhaustiveSubsets + 1 // saturate: caller only thresholds
		}
	}
	return res
}

// SolveGreedy builds a selection by repeatedly adding the candidate with
// the best marginal score: coverage gain scaled by an objective penalty.
// It is the natural set-cover-style heuristic the experiments compare RHE
// against — fast, but blind to group interactions (especially DM's
// pairwise structure).
func (p *Problem) SolveGreedy() Solution {
	// Presized to the minimum group count; greedy selections rarely run
	// past it before the coverage constraint stops them.
	sel := make([]int, 0, p.minGroups())
	used := map[int]bool{}
	evals := 0

	for len(sel) < p.Settings.K {
		p.markSelection(sel, -1)
		bestCand := -1
		bestScore := math.Inf(-1)
		for _, gi := range p.cands {
			if used[gi] {
				continue
			}
			gain := float64(p.unmarkedCount(gi))
			g := &p.Cube.Groups[gi]
			var score float64
			switch p.Task {
			case SimilarityMining:
				// Prefer large new coverage from internally consistent
				// groups: gain discounted by the group's own σ.
				score = gain / (0.25 + g.Agg.Std())
			case DiversityMining:
				// Prefer coverage plus distance from the already selected
				// means (a pairwise-blind proxy for the DM reward).
				dist := 0.0
				for _, sj := range sel {
					dist += math.Abs(g.Mean() - p.Cube.Groups[sj].Mean())
				}
				if len(sel) > 0 {
					dist /= float64(len(sel))
				}
				score = gain / (0.25 + g.Agg.Std()) * (0.5 + dist)
			}
			evals++
			if score > bestScore {
				bestScore, bestCand = score, gi
			}
		}
		if bestCand < 0 {
			break
		}
		used[bestCand] = true
		sel = append(sel, bestCand)
		// Stop early once the coverage constraint holds and the minimum
		// group count is met — greedily adding more only dilutes SM.
		if len(sel) >= p.minGroups() && float64(p.coveredCount(sel)) >= p.required() {
			if p.Task == SimilarityMining {
				break
			}
			if len(sel) >= 2 {
				break
			}
		}
	}

	sol := Solution{Groups: sel, Evals: evals}
	sol.Objective, sol.Coverage, sol.Feasible = p.Evaluate(sel)
	p.sortForPresentation(sol.Groups)
	return sol
}

// SolveRandom returns the best of n random coverage-repaired selections —
// the "how much does hill climbing add" control for E6.
func (p *Problem) SolveRandom(n int) Solution {
	gen := rng.New(p.Settings.Seed)
	best := Solution{Objective: math.Inf(1)}
	evals := 0
	for i := 0; i < n; i++ {
		sel, ok := p.randomFeasibleInit(gen)
		if !ok {
			continue
		}
		cand := Solution{Groups: clone(sel)}
		cand.Objective, cand.Coverage, cand.Feasible = p.Evaluate(sel)
		evals++
		if cand.Better(best) {
			best = cand
		}
	}
	best.Evals = evals
	p.sortForPresentation(best.Groups)
	return best
}
