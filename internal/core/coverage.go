package core

import "repro/internal/cube"

// Coverage engine: every constraint check in SM/DM reduces to "how many
// tuples does this selection of groups jointly cover". The production
// engine works on dense scratch bitsets over R_I, fed by the cube's
// cached per-group bitsets (cube.MemberBits): a selection's coverage is a
// word-wise OR into scratch plus a popcount, and a dense group's marginal
// contribution against a marked base is a single AND-NOT popcount pass.
// Groups sparser than the bitset word count (no cached bitset) evaluate
// through their member lists against the same dense base — per group, the
// engine always takes min(words, support) operations. The original
// epoch-marking engine — re-scanning every selected group's member list
// per evaluation — is kept below as the executable reference;
// differential tests drive both and require identical integers, which
// also keeps every solver's output byte-identical across engines.

// orGroup ORs group gi's member set into a bitset: word-wise for dense
// groups, by setting each member's bit for sparse ones (their list is
// shorter than the word scan would be).
func (p *Problem) orGroup(dst []uint64, gi int) {
	if b := p.bits[gi]; b != nil {
		cube.OrInto(dst, b)
		return
	}
	for _, ti := range p.Cube.Groups[gi].Members {
		dst[ti>>6] |= 1 << (uint(ti) & 63)
	}
}

// marginal counts group gi's members not covered by base — AND-NOT
// popcount for dense groups, a member-list probe of base for sparse ones.
func (p *Problem) marginal(gi int, base []uint64) int {
	if b := p.bits[gi]; b != nil {
		return cube.AndNotCount(b, base)
	}
	n := 0
	for _, ti := range p.Cube.Groups[gi].Members {
		if base[ti>>6]&(1<<(uint(ti)&63)) == 0 {
			n++
		}
	}
	return n
}

// coveredCount returns the exact union coverage (tuple count) of a
// selection of group indices.
func (p *Problem) coveredCount(sel []int) int {
	if p.refCoverage {
		return p.coveredCountRef(sel)
	}
	clear(p.cover)
	for _, gi := range sel {
		p.orGroup(p.cover, gi)
	}
	return cube.PopCount(p.cover)
}

// markSelection marks the members of every selected group except the one
// at position skip (pass -1 to mark all): it builds the base coverage
// bitset later unmarkedCount calls are measured against.
func (p *Problem) markSelection(sel []int, skip int) {
	if p.refCoverage {
		p.markSelectionRef(sel, skip)
		return
	}
	clear(p.base)
	for i, gi := range sel {
		if i == skip {
			continue
		}
		p.orGroup(p.base, gi)
	}
}

// unmarkedCount counts a group's members not covered by the marked base —
// its marginal coverage against the marked selection.
func (p *Problem) unmarkedCount(gi int) int {
	if p.refCoverage {
		return p.unmarkedCountRef(gi)
	}
	return p.marginal(gi, p.base)
}

// baseCount returns the coverage of the currently marked base selection.
// Only valid on the bitset engine (the reference engine never needs it:
// its callers re-evaluate selections from scratch).
func (p *Problem) baseCount() int { return cube.PopCount(p.base) }

// leastUniqueIndex returns the selection position whose group contributes
// the fewest tuples nobody else covers.
func (p *Problem) leastUniqueIndex(sel []int) int {
	worst, worstUnique := 0, int(^uint(0)>>1)
	for i := range sel {
		p.markSelection(sel, i)
		if u := p.unmarkedCount(sel[i]); u < worstUnique {
			worstUnique, worst = u, i
		}
	}
	return worst
}

// useReferenceCoverage switches this Problem to the epoch-marking
// reference engine (and the reference neighbourhood scan). Test-only: the
// differential suite solves the same instance on both engines and demands
// byte-identical Solutions.
func (p *Problem) useReferenceCoverage() {
	p.refCoverage = true
	p.mark = make([]int32, len(p.Cube.Tuples))
	p.epoch = 0
}

// ---- reference engine (original implementation, kept as the spec) ----

func (p *Problem) coveredCountRef(sel []int) int {
	p.epoch++
	covered := 0
	for _, gi := range sel {
		for _, ti := range p.Cube.Groups[gi].Members {
			if p.mark[ti] != p.epoch {
				p.mark[ti] = p.epoch
				covered++
			}
		}
	}
	return covered
}

func (p *Problem) markSelectionRef(sel []int, skip int) {
	p.epoch++
	for i, gi := range sel {
		if i == skip {
			continue
		}
		for _, ti := range p.Cube.Groups[gi].Members {
			p.mark[ti] = p.epoch
		}
	}
}

func (p *Problem) unmarkedCountRef(gi int) int {
	n := 0
	for _, ti := range p.Cube.Groups[gi].Members {
		if p.mark[ti] != p.epoch {
			n++
		}
	}
	return n
}
