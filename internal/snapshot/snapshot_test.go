package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/model"
)

// testDataset builds one small synthetic dataset per process: generation
// dominates the suite's cost and every test only reads it.
var testDS = func() *model.Dataset {
	cfg := dataset.SmallGenConfig()
	cfg.Users = 300
	cfg.Movies = 120
	cfg.Ratings = 6000
	ds, err := dataset.Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ds
}()

func writeTestSnapshot(t *testing.T, meta Meta) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.msnap")
	if err := WriteFile(path, testDS, meta); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	meta := Meta{Source: "generated", Provenance: 0xdeadbeef, Extra: map[string]string{"k": "v"}}
	path := writeTestSnapshot(t, meta)
	snap, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer snap.Close()

	got := snap.Dataset()
	if !reflect.DeepEqual(got.Users, testDS.Users) {
		t.Error("users differ after round trip")
	}
	if !reflect.DeepEqual(got.Items, testDS.Items) {
		t.Error("items differ after round trip")
	}
	if !reflect.DeepEqual(got.Ratings, testDS.Ratings) {
		t.Error("ratings differ after round trip")
	}

	h := snap.Header()
	if int(h.Users) != len(testDS.Users) || int(h.Items) != len(testDS.Items) || int(h.Ratings) != len(testDS.Ratings) {
		t.Errorf("header counts %d/%d/%d != dataset %d/%d/%d",
			h.Users, h.Items, h.Ratings, len(testDS.Users), len(testDS.Items), len(testDS.Ratings))
	}
	lo, hi := snap.TimeRange()
	if want := model.Fingerprint(testDS, lo, hi); snap.Fingerprint() != want {
		t.Errorf("fingerprint %016x != recomputed %016x", snap.Fingerprint(), want)
	}
	if want := model.LogHash(testDS.Ratings); h.LogHash != want {
		t.Errorf("log hash %016x != recomputed %016x", h.LogHash, want)
	}
	if snap.Provenance() != 0xdeadbeef {
		t.Errorf("provenance %x != deadbeef", snap.Provenance())
	}
	if snap.Source() != "generated" {
		t.Errorf("source %q != generated", snap.Source())
	}
	if snap.Meta()["k"] != "v" {
		t.Errorf("meta extra lost: %v", snap.Meta())
	}
	if len(snap.Tuples()) != len(testDS.Ratings) {
		t.Errorf("tuple log has %d entries, want %d", len(snap.Tuples()), len(testDS.Ratings))
	}

	// Every rating must appear in its item's index exactly once, sorted
	// by timestamp.
	total := 0
	for id, idxs := range snap.ItemTuples() {
		total += len(idxs)
		last := int64(-1 << 62)
		for _, ti := range idxs {
			tp := snap.Tuples()[ti]
			if int(tp.ItemID) != id {
				t.Fatalf("item index for %d points at tuple of item %d", id, tp.ItemID)
			}
			if tp.Unix < last {
				t.Fatalf("item %d index not time-sorted", id)
			}
			last = tp.Unix
		}
	}
	if total != len(testDS.Ratings) {
		t.Errorf("item index covers %d tuples, want %d", total, len(testDS.Ratings))
	}
}

// TestFallbackParity pins the three open paths — mmap+alias, mmap with
// copying decode, and plain read — to identical results.
func TestFallbackParity(t *testing.T) {
	path := writeTestSnapshot(t, Meta{Source: "generated"})
	base, err := OpenWith(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer base.Close()
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"no-alias", Options{DisableAlias: true}},
		{"no-mmap", Options{DisableMmap: true}},
		{"no-mmap-no-alias", Options{DisableMmap: true, DisableAlias: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			snap, err := OpenWith(path, tc.opts)
			if err != nil {
				t.Fatalf("OpenWith(%+v): %v", tc.opts, err)
			}
			defer snap.Close()
			if tc.opts.DisableMmap && snap.Mapped() {
				t.Error("DisableMmap but snapshot is mapped")
			}
			if tc.opts.DisableAlias && snap.Aliased() {
				t.Error("DisableAlias but tuples are aliased")
			}
			if !reflect.DeepEqual(snap.Dataset(), base.Dataset()) {
				t.Error("dataset differs from the mmap+alias open")
			}
			if !reflect.DeepEqual(snap.Tuples(), base.Tuples()) {
				t.Error("tuple log differs from the mmap+alias open")
			}
			if !reflect.DeepEqual(snap.ItemTuples(), base.ItemTuples()) {
				t.Error("item index differs from the mmap+alias open")
			}
			if snap.Fingerprint() != base.Fingerprint() {
				t.Error("fingerprint differs from the mmap+alias open")
			}
		})
	}
}

func TestWriteDeterministic(t *testing.T) {
	meta := Meta{Source: "generated", Provenance: 7, Extra: map[string]string{"b": "2", "a": "1"}}
	var one, two bytes.Buffer
	if err := Write(&one, testDS, meta); err != nil {
		t.Fatal(err)
	}
	if err := Write(&two, testDS, meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Error("two writes of the same dataset differ byte-wise")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	path := writeTestSnapshot(t, Meta{Source: "generated"})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reopen := func(t *testing.T, mutate func(b []byte) []byte) error {
		t.Helper()
		b := mutate(append([]byte(nil), raw...))
		p := filepath.Join(t.TempDir(), "bad.msnap")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		snap, err := Open(p)
		if err == nil {
			snap.Close()
		}
		return err
	}

	t.Run("bad-magic", func(t *testing.T) {
		err := reopen(t, func(b []byte) []byte { b[0] = 'X'; return b })
		if !errors.Is(err, ErrBadMagic) {
			t.Errorf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("future-version", func(t *testing.T) {
		err := reopen(t, func(b []byte) []byte {
			le.PutUint32(b[4:], Version+1)
			return b
		})
		if !errors.Is(err, ErrVersion) {
			t.Errorf("got %v, want ErrVersion", err)
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		err := reopen(t, func(b []byte) []byte { return b[:40] })
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated-body", func(t *testing.T) {
		err := reopen(t, func(b []byte) []byte { return b[:len(b)/2] })
		if err == nil {
			t.Error("half a snapshot opened cleanly")
		}
	})
	t.Run("flipped-header-byte", func(t *testing.T) {
		// Any header mutation (here: the rating count) must fail the
		// header CRC, not produce a wrong-shaped dataset.
		err := reopen(t, func(b []byte) []byte { b[32] ^= 0xff; return b })
		if !errors.Is(err, ErrChecksum) {
			t.Errorf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("flipped-section-byte", func(t *testing.T) {
		h, err := decodeHeader(raw)
		if err != nil {
			t.Fatal(err)
		}
		for _, sec := range h.Sections {
			if sec.Length == 0 {
				continue
			}
			t.Run(sec.Name(), func(t *testing.T) {
				err := reopen(t, func(b []byte) []byte {
					b[sec.Offset+sec.Length/2] ^= 0x01
					return b
				})
				if !errors.Is(err, ErrChecksum) {
					t.Errorf("got %v, want ErrChecksum", err)
				}
			})
		}
	})
	t.Run("empty-file", func(t *testing.T) {
		err := reopen(t, func(b []byte) []byte { return nil })
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v, want ErrTruncated", err)
		}
	})
}

// TestCloseIdempotent guards the munmap path: double Close must not
// panic or unmap twice.
func TestCloseIdempotent(t *testing.T) {
	path := writeTestSnapshot(t, Meta{})
	snap, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := snap.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestTimeRange pins the header's time range to the rating extremes.
func TestTimeRange(t *testing.T) {
	path := writeTestSnapshot(t, Meta{})
	snap, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	var lo, hi int64 = 1<<62 - 1, -(1 << 62)
	for _, r := range testDS.Ratings {
		if r.Unix < lo {
			lo = r.Unix
		}
		if r.Unix > hi {
			hi = r.Unix
		}
	}
	glo, ghi := snap.TimeRange()
	if glo != lo || ghi != hi {
		t.Errorf("time range [%s, %s], want [%s, %s]",
			time.Unix(glo, 0), time.Unix(ghi, 0), time.Unix(lo, 0), time.Unix(hi, 0))
	}
}
