//go:build !(linux || darwin)

package snapshot

import "os"

// mapFile reports "no mapping available" on platforms without the unix
// mmap path; Open falls back to reading the file into memory.
func mapFile(f *os.File, size int64) ([]byte, bool, error) { return nil, false, nil }

func unmapFile(b []byte) error { return nil }
