// Package snapshot is MapRat's versioned binary on-disk dataset format
// (.msnap): a checksummed, little-endian columnar layout that Write
// produces from a *model.Dataset and Open memory-maps back into a
// dataset plus the pre-joined rating tuple log the store mines over —
// zero per-tuple parsing on the hot columns, so a process opens a
// MovieLens-1M-scale dataset in milliseconds instead of re-parsing text,
// and two processes mounting the same file share its read-only pages.
//
// File layout (all integers little-endian):
//
//	offset 0      magic "MSNP"
//	offset 4      format version (u32)
//	offset 8      section count (u32)
//	offset 12     flags (u32, reserved)
//	offset 16     users, items, ratings (u64 each)
//	offset 40     minUnix, maxUnix (i64 each)
//	offset 56     fingerprint (u64)  — strided dataset identity (ETags)
//	offset 64     logHash (u64)      — full-log FNV-64a identity
//	offset 72     provenance (u64)   — builder config hash (0 = unknown)
//	offset 80     reserved (16 bytes)
//	offset 96     section table: count × {id u32, crc u32, offset u64, length u64}
//	then          header CRC-32C (u32) over everything above it
//	then          sections, each 64-byte aligned, CRC-32C checksummed
//
// Sections: a string-intern table (every descriptor string stored once),
// columnar user/item/rating tuples, the pre-joined 32-byte cube.Tuple
// log, the per-item time-sorted tuple index (offsets + one flat arena),
// and a free-form key=value meta block.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies a .msnap file.
const Magic = "MSNP"

// Version is the current format version. Open rejects files from the
// future; older versions are readable as long as their layout is.
const Version = 1

// Section IDs. Unknown IDs are ignored by Open so later versions can add
// sections without breaking old readers.
const (
	secStrings   = 1 // intern table: count, offsets u32[count+1], blob
	secUsers     = 2 // id i32[n] | gender,age,occ u8[n] | zip,state,city u32[n]
	secItems     = 3 // id,year i32[n] | title u32[n] | 3× list columns
	secRatings   = 4 // unix i64[n] | user,item i32[n] | score i8[n]
	secTuples    = 5 // n × 32-byte packed cube.Tuple records
	secItemIndex = 6 // offsets u32[items+1] | arena i32[ratings]
	secMeta      = 7 // count, then {klen u32, vlen u32, key, value}×count
)

const (
	headerFixedBytes = 96
	sectionEntrySize = 24
	sectionAlign     = 64
	tupleRecordSize  = 32
)

// Sentinel errors Open classifies failures with (wrapped with detail).
var (
	ErrBadMagic  = errors.New("snapshot: bad magic (not a .msnap file)")
	ErrVersion   = errors.New("snapshot: unsupported format version")
	ErrChecksum  = errors.New("snapshot: checksum mismatch")
	ErrTruncated = errors.New("snapshot: file truncated")
)

// castagnoli is the CRC-32C table; Castagnoli is hardware-accelerated on
// both amd64 and arm64, so checksumming tens of MB costs milliseconds.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SectionInfo is one section-table entry, exported for `maprat snap info`.
type SectionInfo struct {
	ID     uint32
	CRC    uint32
	Offset uint64
	Length uint64
}

// Name returns a human label for the section ID.
func (s SectionInfo) Name() string {
	switch s.ID {
	case secStrings:
		return "strings"
	case secUsers:
		return "users"
	case secItems:
		return "items"
	case secRatings:
		return "ratings"
	case secTuples:
		return "tuples"
	case secItemIndex:
		return "item-index"
	case secMeta:
		return "meta"
	}
	return fmt.Sprintf("section-%d", s.ID)
}

// Header is the decoded snapshot header.
type Header struct {
	Version          uint32
	Users            uint64
	Items            uint64
	Ratings          uint64
	MinUnix, MaxUnix int64
	// Fingerprint is the strided dataset identity — the exact value a
	// text-opened engine computes via model.Fingerprint, so ETags agree
	// across open paths.
	Fingerprint uint64
	// LogHash is the full-log FNV-64a identity (model.LogHash).
	LogHash uint64
	// Provenance is the builder's config hash: for generated snapshots a
	// hash of (GenConfig, seed), for packed text dirs a hash of the
	// source files. Zero means unknown.
	Provenance uint64
	Sections   []SectionInfo
}

// headerBytes returns the encoded size of the header + section table,
// excluding the trailing CRC.
func headerBytes(sections int) int {
	return headerFixedBytes + sections*sectionEntrySize
}

func alignUp(n, align int) int {
	return (n + align - 1) / align * align
}

// le is the format's byte order.
var le = binary.LittleEndian

// decodeHeader parses and CRC-verifies the header from the start of b.
func decodeHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < headerFixedBytes+4 {
		return h, fmt.Errorf("%w: %d bytes is smaller than any header", ErrTruncated, len(b))
	}
	if string(b[0:4]) != Magic {
		return h, fmt.Errorf("%w: got %q", ErrBadMagic, string(b[0:4]))
	}
	h.Version = le.Uint32(b[4:])
	if h.Version > Version {
		return h, fmt.Errorf("%w: file is version %d, this build reads <= %d", ErrVersion, h.Version, Version)
	}
	nsec := int(le.Uint32(b[8:]))
	hb := headerBytes(nsec)
	if len(b) < hb+4 {
		return h, fmt.Errorf("%w: header claims %d sections but the file ends inside the table", ErrTruncated, nsec)
	}
	if got, want := crc32.Checksum(b[:hb], castagnoli), le.Uint32(b[hb:]); got != want {
		return h, fmt.Errorf("%w: header crc %08x, want %08x", ErrChecksum, got, want)
	}
	h.Users = le.Uint64(b[16:])
	h.Items = le.Uint64(b[24:])
	h.Ratings = le.Uint64(b[32:])
	h.MinUnix = int64(le.Uint64(b[40:]))
	h.MaxUnix = int64(le.Uint64(b[48:]))
	h.Fingerprint = le.Uint64(b[56:])
	h.LogHash = le.Uint64(b[64:])
	h.Provenance = le.Uint64(b[72:])
	h.Sections = make([]SectionInfo, nsec)
	for i := 0; i < nsec; i++ {
		e := b[headerFixedBytes+i*sectionEntrySize:]
		h.Sections[i] = SectionInfo{
			ID:     le.Uint32(e[0:]),
			CRC:    le.Uint32(e[4:]),
			Offset: le.Uint64(e[8:]),
			Length: le.Uint64(e[16:]),
		}
	}
	return h, nil
}

// section locates and CRC-verifies one section's bytes inside the file.
// A missing required section is a format error.
func (h *Header) section(b []byte, id uint32) ([]byte, error) {
	for _, s := range h.Sections {
		if s.ID != id {
			continue
		}
		end := s.Offset + s.Length
		if end < s.Offset || end > uint64(len(b)) {
			return nil, fmt.Errorf("%w: section %s [%d,%d) exceeds the %d-byte file",
				ErrTruncated, s.Name(), s.Offset, end, len(b))
		}
		data := b[s.Offset:end]
		if got := crc32.Checksum(data, castagnoli); got != s.CRC {
			return nil, fmt.Errorf("%w: section %s crc %08x, want %08x", ErrChecksum, s.Name(), got, s.CRC)
		}
		return data, nil
	}
	return nil, fmt.Errorf("snapshot: required section %d missing", id)
}
