package snapshot

import (
	"fmt"
	"os"

	"repro/internal/cube"
	"repro/internal/model"
)

// Options tunes Open, mostly for tests and diagnostics.
type Options struct {
	// DisableMmap forces the copying fallback (the whole file is read
	// into heap memory) even where mmap is available.
	DisableMmap bool
	// DisableAlias forces the tuple log and item-index arena to be
	// decoded field-by-field instead of aliased over the raw bytes, even
	// when the in-memory layout is compatible.
	DisableAlias bool
}

// Snapshot is an opened .msnap file: the reconstructed dataset plus the
// pre-joined artifacts the store otherwise derives at open time. When the
// file is memory-mapped and the host layout is compatible, Tuples and the
// item-index arena alias the mapped pages directly — they stay valid
// until Close, and a second process opening the same file shares the
// pages read-only.
type Snapshot struct {
	hdr    Header
	data   []byte
	mapped bool

	ds         *model.Dataset
	tuples     []cube.Tuple
	itemTuples map[int][]int32
	aliased    bool
	size       int64
	meta       map[string]string
}

// Open opens a snapshot with default options: mmap where the platform
// supports it, zero-copy aliasing where the layout allows it, and a safe
// copying fallback everywhere else.
func Open(path string) (*Snapshot, error) { return OpenWith(path, Options{}) }

// OpenWith is Open with explicit options.
func OpenWith(path string, opts Options) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}

	var data []byte
	mapped := false
	if !opts.DisableMmap && fi.Size() > 0 {
		if b, ok, err := mapFile(f, fi.Size()); err == nil && ok {
			data, mapped = b, true
		}
	}
	if data == nil {
		// Copying fallback: non-unix platforms, tiny files, or an mmap
		// refused by the kernel.
		if data, err = os.ReadFile(path); err != nil {
			return nil, err
		}
	}

	s, err := decode(data, mapped, opts)
	if err != nil {
		if mapped {
			_ = unmapFile(data)
		}
		return nil, err
	}
	s.size = fi.Size()
	return s, nil
}

// decode reconstructs the dataset and pre-joined artifacts from the raw
// snapshot bytes, verifying every checksum on the way in.
func decode(data []byte, mapped bool, opts Options) (*Snapshot, error) {
	hdr, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	// Every record costs at least one byte, so any count beyond the file
	// size is corrupt. Rejecting here also keeps the int conversions and
	// size arithmetic below from overflowing on a hostile header.
	if n := uint64(len(data)); hdr.Users > n || hdr.Items > n || hdr.Ratings > n {
		return nil, fmt.Errorf("%w: header counts %d/%d/%d exceed the %d-byte file",
			ErrTruncated, hdr.Users, hdr.Items, hdr.Ratings, len(data))
	}
	s := &Snapshot{hdr: hdr, data: data, mapped: mapped}

	strSec, err := hdr.section(data, secStrings)
	if err != nil {
		return nil, err
	}
	strs, err := decodeStrings(strSec)
	if err != nil {
		return nil, err
	}

	userSec, err := hdr.section(data, secUsers)
	if err != nil {
		return nil, err
	}
	users, err := decodeUsers(userSec, int(hdr.Users), strs)
	if err != nil {
		return nil, err
	}
	itemSec, err := hdr.section(data, secItems)
	if err != nil {
		return nil, err
	}
	items, err := decodeItems(itemSec, int(hdr.Items), strs)
	if err != nil {
		return nil, err
	}
	ratingSec, err := hdr.section(data, secRatings)
	if err != nil {
		return nil, err
	}
	ratings, err := decodeRatings(ratingSec, int(hdr.Ratings))
	if err != nil {
		return nil, err
	}
	s.ds, err = model.NewDataset(users, items, ratings)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}

	tupleSec, err := hdr.section(data, secTuples)
	if err != nil {
		return nil, err
	}
	if len(tupleSec) != tupleRecordSize*int(hdr.Ratings) {
		return nil, fmt.Errorf("snapshot: tuple section is %d bytes, want %d for %d ratings",
			len(tupleSec), tupleRecordSize*int(hdr.Ratings), hdr.Ratings)
	}
	if !opts.DisableAlias {
		s.tuples, s.aliased = aliasTuples(tupleSec)
	}
	if s.tuples == nil {
		s.tuples = decodeTuples(tupleSec)
	}

	idxSec, err := hdr.section(data, secItemIndex)
	if err != nil {
		return nil, err
	}
	s.itemTuples, err = decodeItemIndex(idxSec, items, int(hdr.Ratings), opts)
	if err != nil {
		return nil, err
	}

	metaSec, err := hdr.section(data, secMeta)
	if err != nil {
		return nil, err
	}
	if s.meta, err = decodeMeta(metaSec); err != nil {
		return nil, err
	}
	return s, nil
}

// Dataset returns the reconstructed dataset. It stays valid until Close.
func (s *Snapshot) Dataset() *model.Dataset { return s.ds }

// Tuples returns the pre-joined rating log in load order. When Aliased
// reports true the slice points into the mapped file and must not be
// mutated; it is invalid after Close.
func (s *Snapshot) Tuples() []cube.Tuple { return s.tuples }

// ItemTuples returns the per-item time-sorted tuple index (item ID →
// indices into Tuples). The inner slices may alias the mapped file.
func (s *Snapshot) ItemTuples() map[int][]int32 { return s.itemTuples }

// Header returns the decoded header (counts, identities, section table).
func (s *Snapshot) Header() Header { return s.hdr }

// TimeRange returns the [min, max] rating timestamps from the header.
func (s *Snapshot) TimeRange() (int64, int64) { return s.hdr.MinUnix, s.hdr.MaxUnix }

// Fingerprint returns the strided dataset identity stamped at write
// time — equal to what model.Fingerprint computes over the data.
func (s *Snapshot) Fingerprint() uint64 { return s.hdr.Fingerprint }

// Provenance returns the builder's config hash (0 = unknown).
func (s *Snapshot) Provenance() uint64 { return s.hdr.Provenance }

// Source returns the meta section's source label ("" if absent).
func (s *Snapshot) Source() string { return s.meta["source"] }

// Meta returns the snapshot's key=value metadata.
func (s *Snapshot) Meta() map[string]string { return s.meta }

// Mapped reports whether the file is memory-mapped (vs copied to heap).
func (s *Snapshot) Mapped() bool { return s.mapped }

// Aliased reports whether the tuple log aliases the raw file bytes
// (zero-copy) rather than having been decoded.
func (s *Snapshot) Aliased() bool { return s.aliased }

// Size returns the snapshot file's size in bytes.
func (s *Snapshot) Size() int64 { return s.size }

// Close releases the mapping. Any aliased slices (Tuples, the item-index
// arena) and, transitively, a store opened over them are invalid
// afterwards. Close is idempotent.
func (s *Snapshot) Close() error {
	data, mapped := s.data, s.mapped
	s.data, s.mapped = nil, false
	if mapped && data != nil {
		return unmapFile(data)
	}
	return nil
}

func decodeStrings(b []byte) ([]string, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: string table", ErrTruncated)
	}
	n := int(le.Uint32(b))
	if n < 1 || len(b) < 4+4*(n+1) {
		return nil, fmt.Errorf("%w: string table claims %d entries", ErrTruncated, n)
	}
	offs := b[4 : 4+4*(n+1)]
	blob := b[4+4*(n+1):]
	strs := make([]string, n)
	prev := uint32(0)
	for i := 0; i < n; i++ {
		lo, hi := le.Uint32(offs[4*i:]), le.Uint32(offs[4*(i+1):])
		if lo != prev || hi < lo || hi > uint32(len(blob)) {
			return nil, fmt.Errorf("snapshot: string table offsets corrupt at entry %d", i)
		}
		strs[i] = string(blob[lo:hi])
		prev = hi
	}
	return strs, nil
}

func strAt(strs []string, id uint32, what string) (string, error) {
	if int(id) >= len(strs) {
		return "", fmt.Errorf("snapshot: %s references string %d of %d", what, id, len(strs))
	}
	return strs[id], nil
}

func decodeUsers(b []byte, n int, strs []string) ([]model.User, error) {
	if len(b) != 19*n {
		return nil, fmt.Errorf("snapshot: user section is %d bytes, want %d for %d users", len(b), 19*n, n)
	}
	ids := b[0 : 4*n]
	genders := b[4*n : 5*n]
	ages := b[5*n : 6*n]
	occs := b[6*n : 7*n]
	zips := b[7*n : 11*n]
	states := b[11*n : 15*n]
	cities := b[15*n : 19*n]
	users := make([]model.User, n)
	for i := 0; i < n; i++ {
		zip, err := strAt(strs, le.Uint32(zips[4*i:]), "user zip")
		if err != nil {
			return nil, err
		}
		state, err := strAt(strs, le.Uint32(states[4*i:]), "user state")
		if err != nil {
			return nil, err
		}
		city, err := strAt(strs, le.Uint32(cities[4*i:]), "user city")
		if err != nil {
			return nil, err
		}
		users[i] = model.User{
			ID:         int(int32(le.Uint32(ids[4*i:]))),
			Gender:     model.Gender(genders[i]),
			Age:        model.AgeBucket(ages[i]),
			Occupation: model.Occupation(occs[i]),
			Zip:        zip,
			State:      state,
			City:       city,
		}
	}
	return users, nil
}

func decodeItems(b []byte, n int, strs []string) ([]model.Item, error) {
	if len(b) < 12*n {
		return nil, fmt.Errorf("%w: item section", ErrTruncated)
	}
	ids := b[0 : 4*n]
	years := b[4*n : 8*n]
	titles := b[8*n : 12*n]
	items := make([]model.Item, n)
	for i := 0; i < n; i++ {
		title, err := strAt(strs, le.Uint32(titles[4*i:]), "item title")
		if err != nil {
			return nil, err
		}
		items[i] = model.Item{
			ID:    int(int32(le.Uint32(ids[4*i:]))),
			Year:  int(int32(le.Uint32(years[4*i:]))),
			Title: title,
		}
	}
	rest := b[12*n:]
	for _, set := range []func(it *model.Item, list []string){
		func(it *model.Item, list []string) { it.Genres = list },
		func(it *model.Item, list []string) { it.Actors = list },
		func(it *model.Item, list []string) { it.Directors = list },
	} {
		if len(rest) < 4*(n+1) {
			return nil, fmt.Errorf("%w: item list column", ErrTruncated)
		}
		offs := rest[0 : 4*(n+1)]
		total := int(le.Uint32(offs[4*n:]))
		rest = rest[4*(n+1):]
		if len(rest) < 4*total {
			return nil, fmt.Errorf("%w: item list column ids", ErrTruncated)
		}
		idsCol := rest[0 : 4*total]
		rest = rest[4*total:]
		prev := uint32(0)
		for i := 0; i < n; i++ {
			lo, hi := le.Uint32(offs[4*i:]), le.Uint32(offs[4*(i+1):])
			if lo != prev || hi < lo || hi > uint32(total) {
				return nil, fmt.Errorf("snapshot: item list offsets corrupt at item %d", i)
			}
			prev = hi
			if hi == lo {
				continue
			}
			list := make([]string, 0, hi-lo)
			for j := lo; j < hi; j++ {
				s, err := strAt(strs, le.Uint32(idsCol[4*j:]), "item list entry")
				if err != nil {
					return nil, err
				}
				list = append(list, s)
			}
			set(&items[i], list)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes in item section", len(rest))
	}
	return items, nil
}

func decodeRatings(b []byte, n int) ([]model.Rating, error) {
	if len(b) != 17*n {
		return nil, fmt.Errorf("snapshot: rating section is %d bytes, want %d for %d ratings", len(b), 17*n, n)
	}
	unix := b[0 : 8*n]
	userIDs := b[8*n : 12*n]
	itemIDs := b[12*n : 16*n]
	scores := b[16*n : 17*n]
	ratings := make([]model.Rating, n)
	for i := 0; i < n; i++ {
		ratings[i] = model.Rating{
			UserID: int(int32(le.Uint32(userIDs[4*i:]))),
			ItemID: int(int32(le.Uint32(itemIDs[4*i:]))),
			Score:  int(int8(scores[i])),
			Unix:   int64(le.Uint64(unix[8*i:])),
		}
	}
	return ratings, nil
}

// decodeTuples is the copying fallback for the tuple log, used when the
// host layout rules out aliasing (big-endian, or a differently padded
// cube.Tuple) or when Options disabled it.
func decodeTuples(b []byte) []cube.Tuple {
	n := len(b) / tupleRecordSize
	tuples := make([]cube.Tuple, n)
	for i := 0; i < n; i++ {
		rec := b[i*tupleRecordSize:]
		t := &tuples[i]
		for a := 0; a < cube.NumAttrs; a++ {
			t.Vals[a] = int16(le.Uint16(rec[2*a:]))
		}
		t.Score = int8(rec[10])
		t.Unix = int64(le.Uint64(rec[16:]))
		t.UserID = int32(le.Uint32(rec[24:]))
		t.ItemID = int32(le.Uint32(rec[28:]))
	}
	return tuples
}

// decodeItemIndex rebuilds the item ID → tuple-indices map by slicing
// the flat arena per the offsets column. The arena itself is aliased
// over the file bytes when possible, so the map's inner slices cost no
// copies.
func decodeItemIndex(b []byte, items []model.Item, ratings int, opts Options) (map[int][]int32, error) {
	n := len(items)
	want := 4*(n+1) + 4*ratings
	if len(b) != want {
		return nil, fmt.Errorf("snapshot: item index is %d bytes, want %d", len(b), want)
	}
	offs := b[0 : 4*(n+1)]
	arenaBytes := b[4*(n+1):]
	var arena []int32
	if !opts.DisableAlias {
		arena, _ = aliasInt32(arenaBytes)
	}
	if arena == nil {
		arena = make([]int32, ratings)
		for i := range arena {
			arena[i] = int32(le.Uint32(arenaBytes[4*i:]))
		}
	}
	// The arena holds indices into the tuple log; reject any that point
	// outside it, or a corrupted file would panic consumers at mining
	// time instead of failing here.
	for i, v := range arena {
		if v < 0 || int(v) >= ratings {
			return nil, fmt.Errorf("snapshot: item index entry %d is %d, outside the %d-tuple log", i, v, ratings)
		}
	}
	m := make(map[int][]int32, n)
	prev := uint32(0)
	for i := 0; i < n; i++ {
		lo, hi := le.Uint32(offs[4*i:]), le.Uint32(offs[4*(i+1):])
		if lo != prev || hi < lo || hi > uint32(ratings) {
			return nil, fmt.Errorf("snapshot: item index offsets corrupt at item %d", i)
		}
		prev = hi
		if hi > lo {
			m[items[i].ID] = arena[lo:hi:hi]
		}
	}
	if int(prev) != ratings {
		return nil, fmt.Errorf("snapshot: item index covers %d of %d tuples", prev, ratings)
	}
	return m, nil
}

func decodeMeta(b []byte) (map[string]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: meta section", ErrTruncated)
	}
	n := int(le.Uint32(b))
	b = b[4:]
	// Each entry needs at least its two length words, so a count beyond
	// len(b)/8 cannot be satisfied; bounding it here keeps a corrupt count
	// from becoming a huge allocation via the map size hint below.
	if n > len(b)/8 {
		return nil, fmt.Errorf("%w: meta section claims %d entries in %d bytes", ErrTruncated, n, len(b))
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("%w: meta entry %d", ErrTruncated, i)
		}
		klen, vlen := int(le.Uint32(b)), int(le.Uint32(b[4:]))
		b = b[8:]
		if len(b) < klen+vlen {
			return nil, fmt.Errorf("%w: meta entry %d", ErrTruncated, i)
		}
		m[string(b[:klen])] = string(b[klen : klen+vlen])
		b = b[klen+vlen:]
	}
	return m, nil
}
