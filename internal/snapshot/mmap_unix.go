//go:build linux || darwin

package snapshot

import (
	"math"
	"os"
	"syscall"
)

// mapFile memory-maps the file read-only and shared: the kernel pages
// the snapshot in on demand, and every process mapping the same file
// shares one copy of the resident pages.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size <= 0 || size > math.MaxInt {
		return nil, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func unmapFile(b []byte) error { return syscall.Munmap(b) }
