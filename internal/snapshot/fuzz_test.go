package snapshot

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

// fuzzSnapshotBytes is one small valid snapshot, encoded once: the seed
// the fuzzer mutates from.
var fuzzSnapshotBytes = func() []byte {
	cfg := dataset.SmallGenConfig()
	cfg.Users = 30
	cfg.Movies = 25
	cfg.Ratings = 300
	ds, err := dataset.Generate(cfg)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ds, Meta{Source: "fuzz", Extra: map[string]string{"k": "v"}}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}()

// fixCRCs recomputes the header and section checksums over (a copy of)
// b, so a mutated count or section byte survives the CRC gates and
// reaches the decoders instead of dying at the first checksum compare.
// Returns nil when b is too far from a snapshot for fixing to apply.
func fixCRCs(b []byte) []byte {
	if len(b) < headerFixedBytes+4 || string(b[0:4]) != Magic {
		return nil
	}
	out := append([]byte(nil), b...)
	nsec := int(le.Uint32(out[8:]))
	if nsec < 0 || nsec > 64 {
		return nil
	}
	hb := headerBytes(nsec)
	if len(out) < hb+4 {
		return nil
	}
	for i := 0; i < nsec; i++ {
		e := out[headerFixedBytes+i*sectionEntrySize:]
		off, length := le.Uint64(e[8:]), le.Uint64(e[16:])
		end := off + length
		if end < off || end > uint64(len(out)) {
			continue
		}
		le.PutUint32(e[4:], crc32.Checksum(out[off:end], castagnoli))
	}
	le.PutUint32(out[hb:], crc32.Checksum(out[:hb], castagnoli))
	return out
}

// FuzzSnapshotOpen feeds corrupted snapshot files to Open: any input may
// be rejected with an error, but none may panic, over-read, or produce a
// snapshot whose artifacts disagree with its header.
func FuzzSnapshotOpen(f *testing.F) {
	valid := fuzzSnapshotBytes
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:headerFixedBytes+4])
	f.Add([]byte{})
	f.Add([]byte("MSNP"))
	f.Add([]byte("not a snapshot at all"))
	// A count mutation with repaired checksums, so the decoders (not the
	// CRC compare) see it.
	mut := append([]byte(nil), valid...)
	mut[16] ^= 0xff // users count low byte
	if fixed := fixCRCs(mut); fixed != nil {
		f.Add(fixed)
	}

	// One scratch dir for the whole run, reusing the same file names each
	// exec: t.TempDir() per exec creates and tears down a directory tree
	// every input, which stalls fuzz workers to a handful of execs/sec.
	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		for i, variant := range [][]byte{data, fixCRCs(data)} {
			if variant == nil {
				continue
			}
			path := filepath.Join(dir, fmt.Sprintf("in%d.msnap", i))
			if err := os.WriteFile(path, variant, 0o644); err != nil {
				t.Fatal(err)
			}
			for _, opts := range []Options{{}, {DisableMmap: true, DisableAlias: true}} {
				snap, err := OpenWith(path, opts)
				if err != nil {
					continue
				}
				checkOpened(t, snap)
				if err := snap.Close(); err != nil {
					t.Errorf("Close after successful open: %v", err)
				}
			}
		}
	})
}

// TestOpenCorruptionSweep is the deterministic cousin of
// FuzzSnapshotOpen: a seeded sweep of random byte flips and truncations,
// each tried both raw and with repaired checksums so the decoders (not
// just the CRC compares) face the corruption. It reproduces the two bug
// classes fuzzing found — unvalidated item-index arena entries, and
// header counts whose size arithmetic overflowed — without needing fuzz
// mode.
func TestOpenCorruptionSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	valid := fuzzSnapshotBytes
	dir := t.TempDir()
	for iter := 0; iter < 2500; iter++ {
		data := append([]byte(nil), valid...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		if rng.Intn(2) == 0 {
			data = data[:rng.Intn(len(data)+1)]
		}
		for i, variant := range [][]byte{data, fixCRCs(data)} {
			if variant == nil {
				continue
			}
			path := filepath.Join(dir, fmt.Sprintf("in%d.msnap", i))
			if err := os.WriteFile(path, variant, 0o644); err != nil {
				t.Fatal(err)
			}
			for _, opts := range []Options{{}, {DisableMmap: true, DisableAlias: true}} {
				snap, err := OpenWith(path, opts)
				if err != nil {
					continue
				}
				checkOpened(t, snap)
				if err := snap.Close(); err != nil {
					t.Errorf("Close after successful open: %v", err)
				}
			}
		}
	}
}

// checkOpened asserts the cross-section invariants on a snapshot the
// decoder accepted: whatever the bytes were, an accepted file must be
// self-consistent.
func checkOpened(t *testing.T, s *Snapshot) {
	t.Helper()
	h := s.Header()
	ds := s.Dataset()
	if ds == nil {
		t.Fatal("accepted snapshot has nil dataset")
	}
	if len(ds.Users) != int(h.Users) || len(ds.Items) != int(h.Items) || len(ds.Ratings) != int(h.Ratings) {
		t.Errorf("dataset %d/%d/%d disagrees with header %d/%d/%d",
			len(ds.Users), len(ds.Items), len(ds.Ratings), h.Users, h.Items, h.Ratings)
	}
	if len(s.Tuples()) != int(h.Ratings) {
		t.Errorf("tuple log has %d entries, header says %d", len(s.Tuples()), h.Ratings)
	}
	total := 0
	for id, idxs := range s.ItemTuples() {
		total += len(idxs)
		for _, idx := range idxs {
			if idx < 0 || int(idx) >= len(s.Tuples()) {
				t.Fatalf("item %d index %d out of range [0,%d)", id, idx, len(s.Tuples()))
			}
		}
	}
	if total != int(h.Ratings) {
		t.Errorf("item index covers %d tuples, header says %d", total, h.Ratings)
	}
}
