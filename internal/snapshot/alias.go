package snapshot

import (
	"unsafe"

	"repro/internal/cube"
)

// tupleLayoutCompatible reports whether cube.Tuple's in-memory layout on
// this build matches the on-disk 32-byte record exactly, so the tuple
// section can be reinterpreted in place. Every assumption the alias
// leans on is checked explicitly: if the struct is ever reordered, an
// attribute added, or the build targets a big-endian machine, Open
// silently falls back to the decoding path instead of serving garbage.
var tupleLayoutCompatible = func() bool {
	var t cube.Tuple
	return unsafe.Sizeof(t) == tupleRecordSize &&
		unsafe.Offsetof(t.Vals) == 0 &&
		unsafe.Offsetof(t.Score) == 10 &&
		unsafe.Offsetof(t.Unix) == 16 &&
		unsafe.Offsetof(t.UserID) == 24 &&
		unsafe.Offsetof(t.ItemID) == 28 &&
		cube.NumAttrs == 5 &&
		hostLittleEndian()
}()

func hostLittleEndian() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}

// aliasTuples reinterprets the raw tuple section as a []cube.Tuple
// without copying. It declines (ok=false) unless the layout is
// compatible and the base pointer satisfies the struct's alignment.
func aliasTuples(b []byte) ([]cube.Tuple, bool) {
	if !tupleLayoutCompatible || len(b) == 0 || len(b)%tupleRecordSize != 0 {
		return nil, false
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%unsafe.Alignof(cube.Tuple{}) != 0 {
		return nil, false
	}
	return unsafe.Slice((*cube.Tuple)(p), len(b)/tupleRecordSize), true
}

// aliasInt32 reinterprets raw bytes as a []int32 without copying, under
// the same endianness and alignment guards.
func aliasInt32(b []byte) ([]int32, bool) {
	if !hostLittleEndian() || len(b) == 0 || len(b)%4 != 0 {
		return nil, false
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%unsafe.Alignof(int32(0)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*int32)(p), len(b)/4), true
}
