package snapshot

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

// The open benchmarks measure bytes-on-disk → decoded dataset + tuple
// log, the cold path a server boot pays. BenchmarkOpenText is the
// baseline (parse 4 text files); the snapshot variants replace it.
func benchFixtures(b *testing.B) (textDir, snapPath string) {
	b.Helper()
	tmp := b.TempDir()
	textDir = filepath.Join(tmp, "text")
	snapPath = filepath.Join(tmp, "data.msnap")
	if err := dataset.WriteDir(textDir, testDS); err != nil {
		b.Fatal(err)
	}
	if err := WriteFile(snapPath, testDS, Meta{Source: "bench"}); err != nil {
		b.Fatal(err)
	}
	return textDir, snapPath
}

func BenchmarkOpenText(b *testing.B) {
	textDir, _ := benchFixtures(b)
	var size int64
	_ = filepath.Walk(textDir, func(_ string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() {
			size += fi.Size()
		}
		return nil
	})
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.LoadDir(textDir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenSnapshot(b *testing.B) {
	_, snapPath := benchFixtures(b)
	fi, err := os.Stat(snapPath)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := Open(snapPath)
		if err != nil {
			b.Fatal(err)
		}
		snap.Close()
	}
}

func BenchmarkOpenSnapshotFallback(b *testing.B) {
	_, snapPath := benchFixtures(b)
	fi, err := os.Stat(snapPath)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := OpenWith(snapPath, Options{DisableMmap: true, DisableAlias: true})
		if err != nil {
			b.Fatal(err)
		}
		snap.Close()
	}
}
