package snapshot

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/cube"
	"repro/internal/model"
)

// Meta is the builder-supplied identity a snapshot carries beyond the
// data itself.
type Meta struct {
	// Source records how the dataset came to be: "text" (packed from a
	// MovieLens directory), "generated" (synthetic), or any other label.
	Source string
	// Provenance is the builder's config hash — for the generator a hash
	// of (GenConfig, seed), for a packed directory a hash of the source
	// files — so byte-identical inputs produce snapshots that declare the
	// same origin. Zero means unknown.
	Provenance uint64
	// Extra is carried verbatim in the meta section (sorted by key).
	Extra map[string]string
}

// WriteFile writes ds as a snapshot at path (atomically: a temp file in
// the same directory renamed into place).
func WriteFile(path string, ds *model.Dataset, meta Meta) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".msnap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, ds, meta); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Write encodes ds into the snapshot format. The whole file is assembled
// in memory first (≈60 MB at MovieLens-1M scale) so the output is a
// single sequential write with every checksum already in place.
//
// Write performs the same demographics join and per-item time sort the
// store performs at open time, in the same order with the same
// tie-breaks, so an engine opened from the snapshot is indistinguishable
// from one opened over the original dataset.
func Write(w io.Writer, ds *model.Dataset, meta Meta) error {
	if ds == nil {
		return fmt.Errorf("snapshot: nil dataset")
	}
	tuples, offsets, arena, minUnix, maxUnix, err := joinForWrite(ds)
	if err != nil {
		return err
	}

	in := newInterner()
	secs := []struct {
		id   uint32
		data []byte
	}{
		{secUsers, encodeUsers(ds.Users, in)},
		{secItems, encodeItems(ds.Items, in)},
		{secRatings, encodeRatings(ds.Ratings)},
		{secTuples, encodeTuples(tuples)},
		{secItemIndex, encodeItemIndex(offsets, arena)},
		{secMeta, encodeMeta(meta)},
	}
	// The intern table is encoded last (every other section feeds it) but
	// stored first, so the reader resolves strings before anything else.
	secs = append([]struct {
		id   uint32
		data []byte
	}{{secStrings, in.encode()}}, secs...)

	hb := headerBytes(len(secs))
	off := alignUp(hb+4, sectionAlign)
	total := off
	sections := make([]SectionInfo, len(secs))
	for i, s := range secs {
		sections[i] = SectionInfo{
			ID:     s.id,
			CRC:    crc32.Checksum(s.data, castagnoli),
			Offset: uint64(total),
			Length: uint64(len(s.data)),
		}
		total = alignUp(total+len(s.data), sectionAlign)
	}

	out := make([]byte, total)
	copy(out[0:4], Magic)
	le.PutUint32(out[4:], Version)
	le.PutUint32(out[8:], uint32(len(secs)))
	le.PutUint64(out[16:], uint64(len(ds.Users)))
	le.PutUint64(out[24:], uint64(len(ds.Items)))
	le.PutUint64(out[32:], uint64(len(ds.Ratings)))
	le.PutUint64(out[40:], uint64(minUnix))
	le.PutUint64(out[48:], uint64(maxUnix))
	le.PutUint64(out[56:], model.Fingerprint(ds, minUnix, maxUnix))
	le.PutUint64(out[64:], model.LogHash(ds.Ratings))
	le.PutUint64(out[72:], meta.Provenance)
	for i, s := range sections {
		e := out[headerFixedBytes+i*sectionEntrySize:]
		le.PutUint32(e[0:], s.ID)
		le.PutUint32(e[4:], s.CRC)
		le.PutUint64(e[8:], s.Offset)
		le.PutUint64(e[16:], s.Length)
	}
	le.PutUint32(out[hb:], crc32.Checksum(out[:hb], castagnoli))
	for i, s := range secs {
		copy(out[sections[i].Offset:], s.data)
	}
	_, err = w.Write(out)
	return err
}

// joinForWrite materializes the demographics-joined tuple log, the
// per-item index arena (tuple indices grouped by item position, each
// group sorted by (time, index)), and the rating time range — exactly
// what store.Open derives, so the snapshot's precomputation substitutes
// for the store's.
func joinForWrite(ds *model.Dataset) (tuples []cube.Tuple, offsets []uint32, arena []int32, minUnix, maxUnix int64, err error) {
	tuples = make([]cube.Tuple, len(ds.Ratings))
	perItem := make(map[int][]int32)
	seen := false
	for i := range ds.Ratings {
		r := ds.Ratings[i]
		u := ds.UserByID(r.UserID)
		if u == nil {
			return nil, nil, nil, 0, 0, fmt.Errorf("snapshot: rating %d references unknown user %d", i, r.UserID)
		}
		tuples[i] = cube.JoinRating(r, u)
		if !seen || r.Unix < minUnix {
			minUnix = r.Unix
		}
		if !seen || r.Unix > maxUnix {
			maxUnix = r.Unix
		}
		seen = true
		perItem[r.ItemID] = append(perItem[r.ItemID], int32(i))
	}

	offsets = make([]uint32, len(ds.Items)+1)
	arena = make([]int32, 0, len(ds.Ratings))
	for i := range ds.Items {
		idxs := perItem[ds.Items[i].ID]
		// The same (time, index) total order the store sorts with.
		sort.Slice(idxs, func(a, b int) bool {
			ta, tb := tuples[idxs[a]].Unix, tuples[idxs[b]].Unix
			if ta != tb {
				return ta < tb
			}
			return idxs[a] < idxs[b]
		})
		arena = append(arena, idxs...)
		offsets[i+1] = uint32(len(arena))
	}
	if len(arena) != len(ds.Ratings) {
		return nil, nil, nil, 0, 0, fmt.Errorf("snapshot: %d of %d ratings reference unknown items", len(ds.Ratings)-len(arena), len(ds.Ratings))
	}
	return tuples, offsets, arena, minUnix, maxUnix, nil
}

// interner assigns dense IDs to strings; ID 0 is always "".
type interner struct {
	ids  map[string]uint32
	list []string
}

func newInterner() *interner {
	return &interner{ids: map[string]uint32{"": 0}, list: []string{""}}
}

func (in *interner) id(s string) uint32 {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := uint32(len(in.list))
	in.ids[s] = id
	in.list = append(in.list, s)
	return id
}

// encode emits the intern table: count, offsets u32[count+1], blob.
func (in *interner) encode() []byte {
	blob := 0
	for _, s := range in.list {
		blob += len(s)
	}
	out := make([]byte, 0, 4+4*(len(in.list)+1)+blob)
	out = le.AppendUint32(out, uint32(len(in.list)))
	off := uint32(0)
	for _, s := range in.list {
		out = le.AppendUint32(out, off)
		off += uint32(len(s))
	}
	out = le.AppendUint32(out, off)
	for _, s := range in.list {
		out = append(out, s...)
	}
	return out
}

func encodeUsers(users []model.User, in *interner) []byte {
	n := len(users)
	out := make([]byte, 0, 19*n)
	for i := range users {
		out = le.AppendUint32(out, uint32(int32(users[i].ID)))
	}
	for i := range users {
		out = append(out, byte(users[i].Gender))
	}
	for i := range users {
		out = append(out, byte(users[i].Age))
	}
	for i := range users {
		out = append(out, byte(users[i].Occupation))
	}
	for i := range users {
		out = le.AppendUint32(out, in.id(users[i].Zip))
	}
	for i := range users {
		out = le.AppendUint32(out, in.id(users[i].State))
	}
	for i := range users {
		out = le.AppendUint32(out, in.id(users[i].City))
	}
	return out
}

// encodeItems emits the item columns: id, year, title, then the three
// string-list columns (genres, actors, directors), each as offsets
// u32[n+1] plus a flat run of string IDs.
func encodeItems(items []model.Item, in *interner) []byte {
	var out []byte
	for i := range items {
		out = le.AppendUint32(out, uint32(int32(items[i].ID)))
	}
	for i := range items {
		out = le.AppendUint32(out, uint32(int32(items[i].Year)))
	}
	for i := range items {
		out = le.AppendUint32(out, in.id(items[i].Title))
	}
	lists := []func(it *model.Item) []string{
		func(it *model.Item) []string { return it.Genres },
		func(it *model.Item) []string { return it.Actors },
		func(it *model.Item) []string { return it.Directors },
	}
	for _, get := range lists {
		total := uint32(0)
		for i := range items {
			out = le.AppendUint32(out, total)
			total += uint32(len(get(&items[i])))
		}
		out = le.AppendUint32(out, total)
		for i := range items {
			for _, s := range get(&items[i]) {
				out = le.AppendUint32(out, in.id(s))
			}
		}
	}
	return out
}

func encodeRatings(ratings []model.Rating) []byte {
	n := len(ratings)
	out := make([]byte, 0, 17*n)
	for i := range ratings {
		out = le.AppendUint64(out, uint64(ratings[i].Unix))
	}
	for i := range ratings {
		out = le.AppendUint32(out, uint32(int32(ratings[i].UserID)))
	}
	for i := range ratings {
		out = le.AppendUint32(out, uint32(int32(ratings[i].ItemID)))
	}
	for i := range ratings {
		out = append(out, byte(int8(ratings[i].Score)))
	}
	return out
}

// encodeTuples emits the pre-joined log as fixed 32-byte records whose
// layout mirrors cube.Tuple's in-memory layout on little-endian
// platforms, padding zeroed — the hot section Open aliases without
// copying.
func encodeTuples(tuples []cube.Tuple) []byte {
	out := make([]byte, tupleRecordSize*len(tuples))
	for i := range tuples {
		t := &tuples[i]
		rec := out[i*tupleRecordSize:]
		for a := 0; a < cube.NumAttrs; a++ {
			le.PutUint16(rec[2*a:], uint16(t.Vals[a]))
		}
		rec[10] = byte(t.Score)
		// rec[11:16] stays zero (struct padding).
		le.PutUint64(rec[16:], uint64(t.Unix))
		le.PutUint32(rec[24:], uint32(t.UserID))
		le.PutUint32(rec[28:], uint32(t.ItemID))
	}
	return out
}

func encodeItemIndex(offsets []uint32, arena []int32) []byte {
	out := make([]byte, 0, 4*(len(offsets)+len(arena)))
	for _, o := range offsets {
		out = le.AppendUint32(out, o)
	}
	for _, v := range arena {
		out = le.AppendUint32(out, uint32(v))
	}
	return out
}

func encodeMeta(meta Meta) []byte {
	kv := map[string]string{}
	for k, v := range meta.Extra {
		kv[k] = v
	}
	if meta.Source != "" {
		kv["source"] = meta.Source
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := le.AppendUint32(nil, uint32(len(keys)))
	for _, k := range keys {
		out = le.AppendUint32(out, uint32(len(k)))
		out = le.AppendUint32(out, uint32(len(kv[k])))
		out = append(out, k...)
		out = append(out, kv[k]...)
	}
	return out
}
