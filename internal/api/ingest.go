package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro"
	"repro/internal/jobs"
	"repro/internal/model"
)

// RatingInput is one rating of an append batch. The client supplies the
// timestamp: the server never stamps time, so replaying the write-ahead
// log is deterministic.
type RatingInput struct {
	UserID int   `json:"user_id"`
	ItemID int   `json:"item_id"`
	Score  int   `json:"score"`
	Unix   int64 `json:"unix"`
}

// AppendRequest is the POST /api/v1/ratings body: one batch of new
// ratings, applied all-or-nothing.
type AppendRequest struct {
	// Dataset selects the mounted dataset ("" = the default mount).
	Dataset string        `json:"dataset,omitempty"`
	Ratings []RatingInput `json:"ratings"`
}

// AppendResponse is the 202 payload: the epoch the batch was accepted
// at. Reads pinned at this epoch (or later) observe the batch; reads
// pinned earlier never do.
type AppendResponse struct {
	Epoch    uint64 `json:"epoch"`
	Accepted int    `json:"accepted"`
}

// appender is the optional write-path interface a mounted engine may
// implement; a coordinator (or an engine without EnableIngest) does not,
// and answers the ingest-disabled envelope.
type appender interface {
	AppendRatings(ctx context.Context, ratings []model.Rating) (uint64, error)
}

// handleAppend is POST /api/v1/ratings: validate the batch, admit it
// through the job queue (writes share the same admission control as
// async mining — a full queue answers 429 with Retry-After), apply it,
// and answer 202 with the assigned epoch. The batch is WAL-durable
// before the response is written.
func (h *Handler) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost, "appending ratings requires POST")
		return
	}
	var req AppendRequest
	if err := decodeBody(r, &req); err != nil {
		decodeFail(w, err)
		return
	}
	if len(req.Ratings) == 0 {
		decodeFail(w, badRequestf("empty ratings batch"))
		return
	}
	eng, ok := h.resolveEngine(w, r, req.Dataset)
	if !ok {
		return
	}
	app, ok := eng.(appender)
	if !ok {
		writeError(w, maprat.ErrIngestDisabled)
		return
	}
	ratings := make([]model.Rating, len(req.Ratings))
	for i, in := range req.Ratings {
		ratings[i] = model.Rating{UserID: in.UserID, ItemID: in.ItemID, Score: in.Score, Unix: in.Unix}
	}
	j, err := h.jobs.Submit("append", func(ctx context.Context, _ func(jobs.Progress)) (any, error) {
		epoch, err := app.AppendRatings(ctx, ratings)
		if err != nil {
			return nil, err
		}
		return &AppendResponse{Epoch: epoch, Accepted: len(ratings)}, nil
	})
	if err != nil {
		w.Header().Set("Retry-After", fmt.Sprint(h.retryAfterSeconds()))
		writeEnvelope(w, CodeQueueFull, err.Error())
		return
	}
	// The handler waits for the apply synchronously — the 202 must carry
	// the assigned epoch — but the job keeps running if the client
	// disconnects: an admitted batch is never half-abandoned.
	wake, unsub := j.Subscribe()
	defer unsub()
	for {
		s := j.Snapshot()
		if s.State.Terminal() {
			if s.Err != nil {
				writeError(w, s.Err)
				return
			}
			resp, _ := s.Result.(*AppendResponse)
			if resp == nil {
				writeEnvelope(w, CodeInternal, "append job returned no result")
				return
			}
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(resp); err != nil {
				writeEnvelope(w, CodeInternal, "encoding response: "+err.Error())
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			_, _ = w.Write(buf.Bytes())
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			// The client went away; the admitted batch still applies (and
			// is WAL-durable once it does). Nothing useful to write.
			return
		}
	}
}
