package api

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// TestV1MiddlewareRecovery pins the panic guard: a panicking endpoint
// answers the internal envelope instead of tearing the connection down.
func TestV1MiddlewareRecovery(t *testing.T) {
	h := New(testEngine(t), Config{ErrorLog: log.New(io.Discard, "", 0)})
	boom := h.wrap("boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	w := httptest.NewRecorder()
	boom.ServeHTTP(w, httptest.NewRequest("GET", "/api/v1/boom", nil))
	if w.Code != 500 {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if got := envelopeCode(t, w.Body.String()); got != CodeInternal {
		t.Errorf("code %q, want %q", got, CodeInternal)
	}
	snap := h.MetricsSnapshot()["boom"]
	if snap.Requests != 1 || snap.Errors != 1 || snap.Status["5xx"] != 1 {
		t.Errorf("panic not counted: %+v", snap)
	}
}

// TestV1MiddlewareRequestID pins the request-ID contract: every response
// carries one, and a caller-supplied ID is echoed back.
func TestV1MiddlewareRequestID(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/v1/browse")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/browse", nil)
	req.Header.Set("X-Request-ID", "caller-supplied-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-supplied-42" {
		t.Errorf("X-Request-ID = %q, want the caller's", got)
	}
}

// TestV1MiddlewareMetrics pins the per-endpoint counters the server
// surfaces under /statsz.
func TestV1MiddlewareMetrics(t *testing.T) {
	testEngine(t)
	before := hdlMemo.MetricsSnapshot()["explain"]
	if code, _ := get(t, "/api/v1/explain?q="+url.QueryEscape(`movie:"Toy Story"`)); code != 200 {
		t.Fatalf("explain status %d", code)
	}
	if code, _ := get(t, "/api/v1/explain"); code != 400 {
		t.Fatalf("bad explain status %d", code)
	}
	after := hdlMemo.MetricsSnapshot()["explain"]
	if after.Requests < before.Requests+2 {
		t.Errorf("requests %d -> %d, want +2", before.Requests, after.Requests)
	}
	if after.Errors < before.Errors+1 {
		t.Errorf("errors %d -> %d, want +1", before.Errors, after.Errors)
	}
	if after.Status["2xx"] <= before.Status["2xx"] || after.Status["4xx"] <= before.Status["4xx"] {
		t.Errorf("status classes did not move: %+v -> %+v", before, after)
	}
}
