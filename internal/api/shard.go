package api

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"net/http"
	"strings"

	"repro"
	"repro/internal/cube"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/store"
)

// This file is the worker side of the scatter-gather tier plus its wire
// contract. It lives in internal/api (not internal/shard) because the
// coordinator reaches workers through pkg/client, which depends on this
// package for the wire types — defining them here keeps the dependency
// graph acyclic: shard → client → api.

// ShardInfoResponse is the /api/v1/shard/info payload: the worker's
// dataset identity, used by the coordinator's boot handshake and health
// loop. All workers of one coordinator must agree on Fingerprint — they
// hold full copies of the same dataset and shard query work, not data.
type ShardInfoResponse struct {
	Dataset     string `json:"dataset"`
	Fingerprint string `json:"fingerprint"` // %016x of the engine fingerprint
	Users       int    `json:"users"`
	Items       int    `json:"items"`
	Ratings     int    `json:"ratings"`
	MinUnix     int64  `json:"min_unix"`
	MaxUnix     int64  `json:"max_unix"`
}

// ShardGatherRequest asks a worker for the R_I slice of a query owned by
// a set of hash slots. The window travels explicitly (not inside Q) so
// the worker never has to parse window syntax.
type ShardGatherRequest struct {
	// Q is the predicate-only query string (no window suffix).
	Q string `json:"q"`
	// NumSlots is the slot-space size; SlotOf(item, NumSlots) must agree
	// between coordinator and worker or slices would overlap or leak.
	NumSlots int `json:"num_slots"`
	// Slots are the slot indices this worker owns for the request.
	Slots []int `json:"slots"`
	// The optional time window, mirroring store.TimeWindow.
	From    int64 `json:"from,omitempty"`
	To      int64 `json:"to,omitempty"`
	HasFrom bool  `json:"has_from,omitempty"`
	HasTo   bool  `json:"has_to,omitempty"`
	// Dataset picks the worker's mount ("" = default).
	Dataset string `json:"dataset,omitempty"`
}

// ShardGatherResponse carries one worker's slice of the gather. Items
// are ALL resolved item IDs owned by the requested slots, ascending —
// including items with zero ratings in the window, because the
// single-node pipeline's ItemIDs also keeps them. Counts is
// index-aligned with Items; Tuples concatenates each item's time-sorted
// rating run in Items order, exactly as store.TuplesForItems would, so
// the coordinator can splice shard slices back into the single-node
// tuple order (which mining is sensitive to).
type ShardGatherResponse struct {
	Fingerprint string `json:"fingerprint"`
	Items       []int  `json:"items"`
	Counts      []int  `json:"counts"`
	// Tuples is the packed little-endian tuple log, base64-encoded.
	Tuples string `json:"tuples"`
}

// SlotOf maps an item ID onto one of n scatter slots. SplitMix64 rather
// than modulo on the raw ID: synthetic IDs are dense integers, and a
// plain mod would shard them in lockstep with generation order.
func SlotOf(itemID, n int) int {
	return int(rng.Mix(uint64(int64(itemID)), 0x51075) % uint64(n))
}

// tupleWireBytes is the packed size of one cube.Tuple on the wire:
// NumAttrs little-endian int16 values, the int8 score, the int64 unix
// timestamp, and the two int32 IDs.
const tupleWireBytes = 2*cube.NumAttrs + 1 + 8 + 4 + 4

// EncodeTuples packs tuples into the base64 wire form.
func EncodeTuples(ts []cube.Tuple) string {
	buf := make([]byte, len(ts)*tupleWireBytes)
	off := 0
	for i := range ts {
		t := &ts[i]
		for a := 0; a < cube.NumAttrs; a++ {
			binary.LittleEndian.PutUint16(buf[off:], uint16(t.Vals[a]))
			off += 2
		}
		buf[off] = byte(t.Score)
		off++
		binary.LittleEndian.PutUint64(buf[off:], uint64(t.Unix))
		off += 8
		binary.LittleEndian.PutUint32(buf[off:], uint32(t.UserID))
		off += 4
		binary.LittleEndian.PutUint32(buf[off:], uint32(t.ItemID))
		off += 4
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// DecodeTuples unpacks the base64 wire form produced by EncodeTuples.
func DecodeTuples(s string) ([]cube.Tuple, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("shard tuples: %w", err)
	}
	if len(buf)%tupleWireBytes != 0 {
		return nil, fmt.Errorf("shard tuples: %d bytes is not a multiple of the %d-byte record", len(buf), tupleWireBytes)
	}
	ts := make([]cube.Tuple, len(buf)/tupleWireBytes)
	off := 0
	for i := range ts {
		t := &ts[i]
		for a := 0; a < cube.NumAttrs; a++ {
			t.Vals[a] = int16(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
		}
		t.Score = int8(buf[off])
		off++
		t.Unix = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		t.UserID = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		t.ItemID = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return ts, nil
}

// FingerprintString renders an engine fingerprint in the wire form both
// shard endpoints use.
func FingerprintString(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// handleShardInfo answers the worker identity handshake. It works on any
// mounted miner — the fields all come from the Miner surface.
func (h *Handler) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
	default:
		methodNotAllowed(w, "GET", "method "+r.Method+" not allowed (use GET)")
		return
	}
	m, ok := h.reg.Lookup(datasetName(r, ""))
	if !ok {
		writeEnvelope(w, CodeDatasetNotFound, datasetNotFoundMsg(datasetName(r, ""), h.reg.Names()))
		return
	}
	st := m.Engine.DatasetStats()
	lo, hi := m.Engine.TimeRange()
	WriteJSON(w, &ShardInfoResponse{
		Dataset:     m.Name,
		Fingerprint: FingerprintString(m.Engine.Fingerprint()),
		Users:       st.Users,
		Items:       st.Items,
		Ratings:     st.Ratings,
		MinUnix:     lo,
		MaxUnix:     hi,
	})
}

// handleShardGather serves one worker's slice of a scatter-gather query:
// resolve the query locally, keep the items whose slot the request owns,
// and return their tuple runs. Requires a local engine — a coordinator
// cannot be a gather worker for another coordinator.
func (h *Handler) handleShardGather(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost, "shard gather requires POST")
		return
	}
	var req ShardGatherRequest
	if err := decodeBody(r, &req); err != nil {
		decodeFail(w, err)
		return
	}
	if req.NumSlots <= 0 {
		decodeFail(w, badRequestf("num_slots must be positive"))
		return
	}
	if len(req.Slots) == 0 {
		decodeFail(w, badRequestf("empty slot set"))
		return
	}
	m, ok := h.resolveEngine(w, r, req.Dataset)
	if !ok {
		return
	}
	eng, ok := m.(*maprat.Engine)
	if !ok {
		writeEnvelope(w, CodeBadRequest, "shard gather requires a worker with a local engine")
		return
	}
	q, err := query.Parse(req.Q)
	if err != nil {
		decodeFail(w, badRequestf("%v", err))
		return
	}
	q.Window = store.TimeWindow{From: req.From, To: req.To, HasFrom: req.HasFrom, HasTo: req.HasTo}
	ids, err := query.Resolve(eng.Store(), q)
	if err != nil {
		writeError(w, err)
		return
	}
	owned := make(map[int]bool, len(req.Slots))
	for _, s := range req.Slots {
		if s < 0 || s >= req.NumSlots {
			decodeFail(w, badRequestf("slot %d out of range [0,%d)", s, req.NumSlots))
			return
		}
		owned[s] = true
	}
	var mine []int
	for _, id := range ids {
		if owned[SlotOf(id, req.NumSlots)] {
			mine = append(mine, id)
		}
	}
	tuples := eng.Store().TuplesForItems(mine, q.Window)
	// TuplesForItems appends one time-sorted run per item, in item order;
	// recover the per-item boundaries with a single pass.
	counts := make([]int, len(mine))
	pos := 0
	for i, id := range mine {
		n := 0
		for pos < len(tuples) && tuples[pos].ItemID == int32(id) {
			n++
			pos++
		}
		counts[i] = n
	}
	WriteJSON(w, &ShardGatherResponse{
		Fingerprint: FingerprintString(eng.Fingerprint()),
		Items:       mine,
		Counts:      counts,
		Tuples:      EncodeTuples(tuples),
	})
}

// ShardStats is the coordinator's "shards" /statsz section:
// scatter-gather counters plus one row per worker with its
// circuit-breaker state. Defined here (not in internal/shard) so the
// HTTP server renders it without importing the coordinator package.
type ShardStats struct {
	// Slots is the size of the consistent-hash slot space.
	Slots int `json:"slots"`
	// Gathers counts completed scatter-gather rounds (plan builds that
	// reached the fan-out, successful or degraded).
	Gathers uint64 `json:"gathers"`
	// Degraded counts gathers that completed with missing shards.
	Degraded uint64 `json:"degraded"`
	// Failovers counts slot batches reassigned to a backup worker after
	// their primary failed a gather round.
	Failovers uint64 `json:"failovers"`
	// Hedges counts backup requests launched because a primary crossed
	// the hedging latency threshold; HedgeWins counts the backups whose
	// response was actually used.
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	// Retries counts per-batch retry attempts beyond the first try.
	Retries uint64 `json:"retries"`

	Workers []ShardWorkerStats `json:"workers"`
}

// ShardWorkerStats is one worker's health row.
type ShardWorkerStats struct {
	Name string `json:"name"`
	// State is the circuit-breaker state: "closed", "open" or
	// "half-open".
	State string `json:"state"`
	// Failures/Successes count breaker-visible call outcomes (canceled
	// hedges and parent-context cancellations are not charged).
	Failures  uint64 `json:"failures"`
	Successes uint64 `json:"successes"`
	// Opened/HalfOpened count state transitions into open / half-open.
	Opened     uint64 `json:"opened"`
	HalfOpened uint64 `json:"half_opened"`
}

// DegradedHeader flags a partial (degraded) response and carries the
// missing shard list; the middleware suppresses the strong ETag when it
// is set, because a degraded representation must never validate a later
// 304 for the complete one.
const DegradedHeader = "X-Maprat-Degraded"

// markDegraded marks a response as degraded when the missing-shard list
// is non-empty. Degraded responses are also made uncacheable.
func markDegraded(w http.ResponseWriter, missing []string) {
	if len(missing) == 0 {
		return
	}
	w.Header().Set(DegradedHeader, strings.Join(missing, ","))
	w.Header().Set("Cache-Control", "no-store")
}

// DegradedRefiner is the optional Miner extension a distributed tier
// implements so the refine pipeline can report missing shards —
// RefineGroupContext's return shape has nowhere to carry them.
type DegradedRefiner interface {
	RefineGroupDegraded(ctx context.Context, q maprat.Query, key maprat.Key, limit int) ([]maprat.Refinement, []string, error)
}

// refineWithDegraded runs the refine pipeline, using the degraded-aware
// form when the miner provides one. Both the HTTP handler and the async
// job op call through here.
func refineWithDegraded(ctx context.Context, m maprat.Miner, q maprat.Query, key maprat.Key, limit int) ([]maprat.Refinement, []string, error) {
	if dr, ok := m.(DegradedRefiner); ok {
		return dr.RefineGroupDegraded(ctx, q, key, limit)
	}
	refs, err := m.RefineGroupContext(ctx, q, key, limit)
	return refs, nil, err
}
