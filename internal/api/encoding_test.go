package api

import (
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// rawGet issues a GET without the transport's transparent gzip handling,
// so the test observes the on-the-wire encoding.
func rawGet(t *testing.T, ts *httptest.Server, path string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestGzipGoldenUnchanged pins the compression contract: with gzip
// enabled and a client that accepts it, the explain endpoint answers
// Content-Encoding: gzip and the decompressed bytes are the exact
// golden-file payload the uncompressed endpoint serves.
func TestGzipGoldenUnchanged(t *testing.T) {
	eng := testEngine(t)
	h := New(eng, Config{EnableGzip: true})
	ts := httptest.NewServer(h)
	defer ts.Close()

	path := "/api/v1/explain?q=" + url.QueryEscape(`movie:"Toy Story"`) + "&k=2"
	resp := rawGet(t, ts, path, map[string]string{"Accept-Encoding": "gzip"})
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	if vary := resp.Header.Get("Vary"); !strings.Contains(vary, "Accept-Encoding") {
		t.Fatalf("Vary = %q, want Accept-Encoding", vary)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("gzip reader: %v", err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "explain.golden.json"))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	if got := string(scrub(t, string(plain))); got != string(want) {
		t.Errorf("decompressed payload diverges from the golden contract:\n%s", got)
	}

	// A client that does not accept gzip gets identity bytes — including
	// an explicit refusal via qvalue 0 (RFC 9110 §12.4.2).
	for _, hdr := range []map[string]string{nil, {"Accept-Encoding": "gzip;q=0"}} {
		r := rawGet(t, ts, path, hdr)
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if enc := r.Header.Get("Content-Encoding"); enc != "" {
			t.Fatalf("identity request %v answered Content-Encoding %q", hdr, enc)
		}
	}
	resp2 := rawGet(t, ts, path, nil)
	defer resp2.Body.Close()
	plain2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(scrub(t, string(plain2))) != string(want) {
		t.Error("identity payload diverges from the golden contract")
	}
}

// TestGzipCompressesErrors checks the envelope path is encoded too — the
// decision is per-response, not per-handler outcome.
func TestGzipCompressesErrors(t *testing.T) {
	eng := testEngine(t)
	h := New(eng, Config{EnableGzip: true})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp := rawGet(t, ts, "/api/v1/explain", map[string]string{"Accept-Encoding": "gzip"})
	defer resp.Body.Close()
	if resp.StatusCode != 400 || resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("error response: status=%d enc=%q, want 400 gzip", resp.StatusCode, resp.Header.Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if envelopeCode(t, string(body)) != CodeBadRequest {
		t.Fatalf("decompressed envelope: %s", body)
	}
}

// TestETagConditionalRequests pins the conditional-request contract on
// the deterministic GET endpoints: a strong tag on 200, a 304 with no
// body on If-None-Match, different tags for different requests, and no
// tag on error responses.
func TestETagConditionalRequests(t *testing.T) {
	ts := testServer(t)
	path := "/api/v1/explain?q=" + url.QueryEscape(`movie:"Toy Story"`) + "&k=2"

	resp := rawGet(t, ts, path, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tag := resp.Header.Get("ETag")
	if resp.StatusCode != 200 || tag == "" {
		t.Fatalf("first GET: status=%d etag=%q", resp.StatusCode, tag)
	}
	if !strings.HasPrefix(tag, `"`) || strings.HasPrefix(tag, "W/") {
		t.Fatalf("tag %q is not a strong entity tag", tag)
	}

	// A conditional revalidation: 304, empty body, no mining.
	mines := testEngine(t).MineCount()
	resp = rawGet(t, ts, path, map[string]string{"If-None-Match": tag})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("conditional GET: status=%d body=%q, want 304 empty", resp.StatusCode, body)
	}
	if got := resp.Header.Get("ETag"); got != tag {
		t.Fatalf("304 ETag = %q, want %q", got, tag)
	}
	if after := testEngine(t).MineCount(); after != mines {
		t.Fatalf("revalidation ran the pipeline: mines %d -> %d", mines, after)
	}

	// The wildcard is not honored (it would 304 even invalid requests,
	// since the short-circuit runs before validation); a stale tag
	// re-serves the representation.
	resp = rawGet(t, ts, path, map[string]string{"If-None-Match": "*"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("wildcard: status=%d, want 200 (wildcard unsupported)", resp.StatusCode)
	}
	resp = rawGet(t, ts, "/api/v1/explain", map[string]string{"If-None-Match": "*"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("wildcard on an invalid request: status=%d, want 400", resp.StatusCode)
	}
	resp = rawGet(t, ts, path, map[string]string{"If-None-Match": `"stale"`})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stale tag: status=%d, want 200", resp.StatusCode)
	}

	// Different knobs, different tag.
	resp = rawGet(t, ts, "/api/v1/explain?q="+url.QueryEscape(`movie:"Toy Story"`)+"&k=3", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if other := resp.Header.Get("ETag"); other == "" || other == tag {
		t.Fatalf("k=3 tag %q should differ from k=2 tag %q", other, tag)
	}

	// Errors carry no tag.
	resp = rawGet(t, ts, "/api/v1/explain", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("ETag"); resp.StatusCode != 400 || got != "" {
		t.Fatalf("error response: status=%d etag=%q, want 400 without a tag", resp.StatusCode, got)
	}
}
