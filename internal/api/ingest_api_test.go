package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// ingestServer mounts a fresh engine with live ingestion armed — the
// shared test engine must stay immutable for the golden suites.
func ingestServer(t *testing.T) (*httptest.Server, *maprat.Engine) {
	t.Helper()
	ds, err := maprat.Generate(maprat.SmallGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := maprat.Open(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.EnableIngest(filepath.Join(t.TempDir(), "ingest.wal")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{}))
	t.Cleanup(ts.Close)
	return ts, eng
}

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(out)
}

func appendBody(t *testing.T, eng *maprat.Engine, score int) string {
	t.Helper()
	ds := eng.Dataset()
	_, maxUnix := eng.TimeRange()
	req := AppendRequest{Ratings: []RatingInput{{
		UserID: ds.Users[0].ID,
		ItemID: ds.ItemsByTitle("Toy Story")[0].ID,
		Score:  score,
		Unix:   maxUnix + 1,
	}}}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestAppendEndpointLifecycle drives the write path over HTTP: 202 with
// the assigned epoch, ETag rollover on the live view (the satellite
// regression: a previously tagged GET re-mines after a write), stable
// pinned tags, and epoch-pinned browse.
func TestAppendEndpointLifecycle(t *testing.T) {
	ts, eng := ingestServer(t)
	explainPath := "/api/v1/explain?q=" + url.QueryEscape(`movie:"Toy Story"`) + "&k=2"

	// Tag the pre-append representation.
	resp := rawGet(t, ts, explainPath, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	liveTag := resp.Header.Get("ETag")
	if resp.StatusCode != 200 || liveTag == "" {
		t.Fatalf("prime GET: status=%d etag=%q", resp.StatusCode, liveTag)
	}
	pinnedPath := explainPath + "&epoch=1"
	resp = rawGet(t, ts, pinnedPath, nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	pinnedTag := resp.Header.Get("ETag")
	if resp.StatusCode != 200 || pinnedTag == "" {
		t.Fatalf("pinned GET: status=%d etag=%q", resp.StatusCode, pinnedTag)
	}

	// Append one rating: 202 + epoch 2.
	code, body := postJSON(t, ts, "/api/v1/ratings", appendBody(t, eng, 5))
	if code != http.StatusAccepted {
		t.Fatalf("append: status=%d body=%s", code, body)
	}
	var ar AppendResponse
	if err := json.Unmarshal([]byte(body), &ar); err != nil {
		t.Fatalf("append response: %v\n%s", err, body)
	}
	if ar.Epoch != 2 || ar.Accepted != 1 {
		t.Fatalf("append response = %+v, want epoch 2, accepted 1", ar)
	}

	// The satellite-1 regression: the pre-append tag is stale — a
	// conditional GET re-mines (200, fresh tag) instead of answering 304.
	mines := eng.MineCount()
	resp = rawGet(t, ts, explainPath, map[string]string{"If-None-Match": liveTag})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stale-tag GET after append: status=%d, want 200", resp.StatusCode)
	}
	if eng.MineCount() == mines {
		t.Fatal("stale-tag GET did not re-mine")
	}
	newTag := resp.Header.Get("ETag")
	if newTag == "" || newTag == liveTag {
		t.Fatalf("ETag did not roll: %q -> %q", liveTag, newTag)
	}

	// The pinned tag stays valid: same epoch, same bytes, 304.
	resp = rawGet(t, ts, pinnedPath, map[string]string{"If-None-Match": pinnedTag})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("pinned conditional GET: status=%d, want 304", resp.StatusCode)
	}

	// Epoch-pinned browse serves the frozen view; a future epoch is a
	// client error.
	for _, tc := range []struct {
		path string
		code int
	}{
		{"/api/v1/browse?epoch=1", 200},
		{"/api/v1/browse?epoch=2", 200},
		{"/api/v1/browse?epoch=99", 400},
		{"/api/v1/explain?q=x&epoch=banana", 400},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("GET %s: status=%d, want %d", tc.path, resp.StatusCode, tc.code)
		}
	}
}

func TestAppendEndpointRejectsBadBatches(t *testing.T) {
	ts, eng := ingestServer(t)
	cases := []struct {
		name, body string
		wantCode   ErrorCode
	}{
		{"empty batch", `{"ratings":[]}`, CodeBadRequest},
		{"malformed json", `{"ratings":`, CodeBadRequest},
		{"unknown user", `{"ratings":[{"user_id":99999999,"item_id":1,"score":5,"unix":978300000}]}`, CodeBadRequest},
		{"unknown dataset", `{"dataset":"nope","ratings":[{"user_id":1,"item_id":1,"score":5,"unix":978300000}]}`, CodeDatasetNotFound},
	}
	for _, tc := range cases {
		code, body := postJSON(t, ts, "/api/v1/ratings", tc.body)
		if code < 400 || code >= 500 {
			t.Errorf("%s: status=%d, want a 4xx", tc.name, code)
			continue
		}
		if got := envelopeCode(t, body); got != tc.wantCode {
			t.Errorf("%s: code=%q, want %q", tc.name, got, tc.wantCode)
		}
	}
	if eng.CurrentEpoch() != 1 {
		t.Fatalf("rejected batches advanced the epoch to %d", eng.CurrentEpoch())
	}

	// GET is not a write.
	resp, err := http.Get(ts.URL + "/api/v1/ratings")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ratings: status=%d, want 405", resp.StatusCode)
	}
}

// TestAppendEndpointDisabledEngine: the shared server's engine never
// armed ingestion, so a write answers the unavailable envelope — the
// deployment may simply route writes elsewhere.
func TestAppendEndpointDisabledEngine(t *testing.T) {
	code, body := post(t, "/api/v1/ratings",
		`{"ratings":[{"user_id":1,"item_id":1,"score":5,"unix":978300000}]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status=%d, want 503\n%s", code, body)
	}
	if got := envelopeCode(t, body); got != CodeUnavailable {
		t.Fatalf("code=%q, want %q", got, CodeUnavailable)
	}
}
