package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
)

// The api tests share one small engine and one mounted handler: dataset
// generation dominates the suite's cost and every endpoint is safe for
// concurrent use.
var (
	engOnce sync.Once
	engMemo *maprat.Engine
	hdlMemo *Handler
	srvMemo *httptest.Server
)

func testEngine(t *testing.T) *maprat.Engine {
	t.Helper()
	engOnce.Do(func() {
		ds, err := maprat.Generate(maprat.SmallGenConfig())
		if err != nil {
			panic(err)
		}
		engMemo, err = maprat.Open(ds, nil)
		if err != nil {
			panic(err)
		}
		hdlMemo = New(engMemo, Config{})
		srvMemo = httptest.NewServer(hdlMemo)
	})
	return engMemo
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	testEngine(t)
	return srvMemo
}

func get(t *testing.T, path string) (int, string) {
	t.Helper()
	ts := testServer(t)
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body)
}

func post(t *testing.T, path, body string) (int, string) {
	t.Helper()
	ts := testServer(t)
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(out)
}

// envelopeCode extracts the machine-readable code from an error response.
func envelopeCode(t *testing.T, body string) ErrorCode {
	t.Helper()
	var env ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("error envelope json: %v\n%s", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("incomplete error envelope: %s", body)
	}
	return env.Error.Code
}

// scrub normalizes the non-deterministic response fields (elapsed_ms,
// from_cache — timing and cache state depend on test order) so payloads
// can be compared byte-for-byte and pinned in golden files.
func scrub(t *testing.T, raw string) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal([]byte(raw), &v); err != nil {
		t.Fatalf("response json: %v\n%s", err, raw)
	}
	scrubValue(v)
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	return append(out, '\n')
}

func scrubValue(v any) {
	switch x := v.(type) {
	case map[string]any:
		if _, ok := x["elapsed_ms"]; ok {
			x["elapsed_ms"] = 0.0
		}
		if _, ok := x["from_cache"]; ok {
			x["from_cache"] = false
		}
		for _, child := range x {
			scrubValue(child)
		}
	case []any:
		for _, child := range x {
			scrubValue(child)
		}
	}
}
