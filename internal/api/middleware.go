package api

import (
	"compress/gzip"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// endpointMetrics accumulates one endpoint's counters. All fields are
// atomics: the handlers never take a lock on the request path.
type endpointMetrics struct {
	requests    atomic.Uint64
	errors      atomic.Uint64    // responses with status >= 400
	byClass     [6]atomic.Uint64 // [1..5] = 1xx..5xx
	totalMicros atomic.Int64
}

// EndpointSnapshot is the /statsz view of one endpoint's counters.
type EndpointSnapshot struct {
	Requests uint64 `json:"requests"`
	// Errors counts responses with a 4xx/5xx status (499 included).
	Errors uint64 `json:"errors"`
	// AvgMS is the mean wall-clock latency across all requests.
	AvgMS float64 `json:"avg_ms"`
	// Status buckets responses by class, e.g. {"2xx": 41, "5xx": 1}.
	Status map[string]uint64 `json:"status,omitempty"`
}

func (m *endpointMetrics) snapshot() EndpointSnapshot {
	s := EndpointSnapshot{
		Requests: m.requests.Load(),
		Errors:   m.errors.Load(),
	}
	if s.Requests > 0 {
		s.AvgMS = float64(m.totalMicros.Load()) / 1000 / float64(s.Requests)
	}
	for class := 1; class <= 5; class++ {
		if n := m.byClass[class].Load(); n > 0 {
			if s.Status == nil {
				s.Status = map[string]uint64{}
			}
			s.Status[fmt.Sprintf("%dxx", class)] = n
		}
	}
	return s
}

// MetricsSnapshot returns the per-endpoint latency/status counters, keyed
// by endpoint name — the payload the server surfaces under /statsz.
func (h *Handler) MetricsSnapshot() map[string]EndpointSnapshot {
	out := make(map[string]EndpointSnapshot, len(h.metrics))
	for name, m := range h.metrics {
		out[name] = m.snapshot()
	}
	return out
}

// statusRecorder captures the response status so the middleware can count
// it and the panic handler can tell whether headers already went out. It
// also defers the ETag header until the status is known: the tag only
// belongs on a successful representation, never on an error envelope.
type statusRecorder struct {
	http.ResponseWriter
	status  int
	written bool
	etag    string // set on 200 responses just before headers go out
}

func (r *statusRecorder) beforeHeaders(code int) {
	// A degraded (partial) response never gets the strong ETag: the tag
	// is a function of (dataset, request) and would also validate the
	// complete representation, so a 304 after the fleet recovers would
	// wrongly revalidate the partial payload a client cached.
	if r.etag != "" && code == http.StatusOK && r.Header().Get(DegradedHeader) == "" {
		r.ResponseWriter.Header().Set("ETag", r.etag)
	}
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.written {
		r.beforeHeaders(code)
		r.status = code
		r.written = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.written {
		r.beforeHeaders(http.StatusOK)
		r.status = http.StatusOK
		r.written = true
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers (the SSE
// job events endpoint) can push each event out immediately.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// gzipWriter transparently compresses the response body when the client
// opted in via Accept-Encoding. The encoding decision is deferred to the
// first header write so bodyless responses (304) stay unencoded.
type gzipWriter struct {
	http.ResponseWriter
	gz          *gzip.Writer
	wroteHeader bool
}

func (g *gzipWriter) WriteHeader(code int) {
	if !g.wroteHeader {
		g.wroteHeader = true
		if code != http.StatusNoContent && code != http.StatusNotModified {
			g.Header().Set("Content-Encoding", "gzip")
			g.Header().Del("Content-Length")
			g.gz = gzip.NewWriter(g.ResponseWriter)
		}
	}
	g.ResponseWriter.WriteHeader(code)
}

func (g *gzipWriter) Write(b []byte) (int, error) {
	if !g.wroteHeader {
		g.WriteHeader(http.StatusOK)
	}
	if g.gz != nil {
		return g.gz.Write(b)
	}
	return g.ResponseWriter.Write(b)
}

// Close flushes the gzip trailer after the handler returns.
func (g *gzipWriter) Close() error {
	if g.gz != nil {
		return g.gz.Close()
	}
	return nil
}

func (g *gzipWriter) Flush() {
	if g.gz != nil {
		_ = g.gz.Flush()
	}
	if f, ok := g.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// acceptsGzip reports whether the request opted into a gzip response.
// A qvalue of 0 means "not acceptable" (RFC 9110 §12.4.2), so
// `gzip;q=0` is an explicit refusal, not an opt-in.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if enc = strings.TrimSpace(enc); enc != "gzip" && enc != "*" {
			continue
		}
		q, ok := strings.CutPrefix(strings.ReplaceAll(strings.TrimSpace(params), " ", ""), "q=")
		if ok {
			if v, err := strconv.ParseFloat(q, 64); err == nil && v == 0 {
				continue
			}
		}
		return true
	}
	return false
}

// etagEndpoints names the deterministic GET endpoints that participate
// in conditional requests: seeded mining is a pure function of (request,
// dataset), so their representations are cacheable under a strong tag.
// The jobs surface is deliberately absent — job state is anything but
// deterministic.
var etagEndpoints = map[string]bool{
	"explain":   true,
	"group":     true,
	"refine":    true,
	"drill":     true,
	"evolution": true,
	"browse":    true,
}

// etagFor derives the strong entity tag for a GET request: a hash of the
// endpoint, the canonical (sorted) query string, and the fingerprint of
// the dataset the request addresses. Any change to the knobs or the data
// underneath yields a different tag. The second return is false when the
// request names a dataset that is not mounted — no tag exists, and the
// handler's own resolution will answer the 404 envelope.
func (h *Handler) etagFor(name string, r *http.Request) (string, bool) {
	eng, ok := h.lookupEngine(datasetName(r, ""))
	if !ok {
		return "", false
	}
	// Under live ingestion the fingerprint folds the epoch in: an unpinned
	// tag rolls over on every accepted append batch (a write invalidates
	// cached 304s), while a ?epoch=-pinned tag is a function of the pinned
	// epoch and stays valid across later appends.
	fp := eng.Fingerprint()
	if v := r.URL.Query().Get("epoch"); v != "" {
		if ep, err := strconv.ParseUint(v, 10, 64); err == nil && ep > 0 {
			if pin, ok := eng.(interface{ FingerprintAt(uint64) uint64 }); ok {
				fp = pin.FingerprintAt(ep)
			}
		}
		// Garbage (or 0 = latest) falls through to the live fingerprint;
		// the handler's own decode answers the 400 for garbage, and a
		// client can never hold a tag for a request that answered 400.
	}
	f := fnv.New64a()
	f.Write([]byte(name))
	f.Write([]byte{0})
	f.Write([]byte(r.URL.Query().Encode()))
	f.Write([]byte{0})
	fmt.Fprintf(f, "%016x", fp)
	return fmt.Sprintf(`"mr64-%016x"`, f.Sum64()), true
}

// etagMatches implements the If-None-Match comparison for a strong tag:
// any listed tag equal to ours. The `*` wildcard is deliberately NOT
// honored: the 304 short-circuit runs before request validation, and a
// wildcard would turn requests that should answer 400/404 into 304s. A
// client can only hold a concrete tag it was handed on a previous 200,
// so exact matches cannot hit that trap.
func etagMatches(header, tag string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.TrimSpace(part) == tag {
			return true
		}
	}
	return false
}

// Instrument routes an out-of-package handler through the v1 middleware
// stack under its own endpoint name, so its traffic shows up in the
// /statsz "api" latency/status counters exactly like a native v1
// endpoint. The server uses it to mount the deprecated /api/explain
// alias. It must be called during setup, before the handler serves.
func (h *Handler) Instrument(name string, next http.Handler) http.Handler {
	return h.wrap(name, next.ServeHTTP)
}

// wrap applies the v1 middleware stack to one endpoint: request ID,
// panic recovery, opt-in gzip encoding, conditional-request handling on
// the deterministic GET endpoints, access log, and per-endpoint
// latency/status counters.
func (h *Handler) wrap(name string, fn http.HandlerFunc) http.Handler {
	m := &endpointMetrics{}
	h.metrics[name] = m
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("v1-%06d", h.reqID.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		// The SSE stream must never be buffered behind a compressor;
		// every other endpoint may negotiate gzip when enabled.
		var gzw *gzipWriter
		if h.cfg.EnableGzip && name != "jobs_events" {
			w.Header().Set("Vary", "Accept-Encoding")
			if acceptsGzip(r) {
				gzw = &gzipWriter{ResponseWriter: w}
				w = gzw
			}
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// The stdlib's deliberate silent-abort mechanism:
					// re-panic so net/http suppresses it as intended.
					panic(p)
				}
				h.errorf("%s %s id=%s panic: %v\n%s", r.Method, r.URL.Path, id, p, debug.Stack())
				if !rec.written {
					writeEnvelope(rec, CodeInternal, "internal error")
				}
			}
			if gzw != nil {
				_ = gzw.Close()
			}
			elapsed := time.Since(start)
			m.requests.Add(1)
			m.totalMicros.Add(elapsed.Microseconds())
			if class := rec.status / 100; class >= 1 && class <= 5 {
				m.byClass[class].Add(1)
				if class >= 4 {
					m.errors.Add(1)
				}
			}
			h.logf("%s %s id=%s status=%d elapsed=%s", r.Method, r.URL.Path, id, rec.status, elapsed.Round(time.Microsecond))
		}()
		// Conditional requests: a matching If-None-Match answers 304
		// without running the pipeline at all — the tag covers both the
		// request knobs and the dataset, so a match proves the client
		// already holds exactly what mining would recompute.
		if etagEndpoints[name] && (r.Method == http.MethodGet || r.Method == http.MethodHead) {
			if tag, ok := h.etagFor(name, r); ok {
				if etagMatches(r.Header.Get("If-None-Match"), tag) {
					rec.Header().Set("ETag", tag)
					rec.WriteHeader(http.StatusNotModified)
					return
				}
				rec.etag = tag
			}
		}
		fn(rec, r)
	})
}

func (h *Handler) logf(format string, args ...any) {
	if h.cfg.Logger != nil {
		h.cfg.Logger.Printf(format, args...)
	}
}

// errorf reports a crash. Unlike the access log it is never silent: with
// no ErrorLog configured it falls back to the process logger, so turning
// the access log off cannot hide recurring panics.
func (h *Handler) errorf(format string, args ...any) {
	l := h.cfg.ErrorLog
	if l == nil {
		l = log.Default()
	}
	l.Printf(format, args...)
}
