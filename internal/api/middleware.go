package api

import (
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// endpointMetrics accumulates one endpoint's counters. All fields are
// atomics: the handlers never take a lock on the request path.
type endpointMetrics struct {
	requests    atomic.Uint64
	errors      atomic.Uint64    // responses with status >= 400
	byClass     [6]atomic.Uint64 // [1..5] = 1xx..5xx
	totalMicros atomic.Int64
}

// EndpointSnapshot is the /statsz view of one endpoint's counters.
type EndpointSnapshot struct {
	Requests uint64 `json:"requests"`
	// Errors counts responses with a 4xx/5xx status (499 included).
	Errors uint64 `json:"errors"`
	// AvgMS is the mean wall-clock latency across all requests.
	AvgMS float64 `json:"avg_ms"`
	// Status buckets responses by class, e.g. {"2xx": 41, "5xx": 1}.
	Status map[string]uint64 `json:"status,omitempty"`
}

func (m *endpointMetrics) snapshot() EndpointSnapshot {
	s := EndpointSnapshot{
		Requests: m.requests.Load(),
		Errors:   m.errors.Load(),
	}
	if s.Requests > 0 {
		s.AvgMS = float64(m.totalMicros.Load()) / 1000 / float64(s.Requests)
	}
	for class := 1; class <= 5; class++ {
		if n := m.byClass[class].Load(); n > 0 {
			if s.Status == nil {
				s.Status = map[string]uint64{}
			}
			s.Status[fmt.Sprintf("%dxx", class)] = n
		}
	}
	return s
}

// MetricsSnapshot returns the per-endpoint latency/status counters, keyed
// by endpoint name — the payload the server surfaces under /statsz.
func (h *Handler) MetricsSnapshot() map[string]EndpointSnapshot {
	out := make(map[string]EndpointSnapshot, len(h.metrics))
	for name, m := range h.metrics {
		out[name] = m.snapshot()
	}
	return out
}

// statusRecorder captures the response status so the middleware can count
// it and the panic handler can tell whether headers already went out.
type statusRecorder struct {
	http.ResponseWriter
	status  int
	written bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.written {
		r.status = code
		r.written = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.written {
		r.status = http.StatusOK
		r.written = true
	}
	return r.ResponseWriter.Write(b)
}

// wrap applies the v1 middleware stack to one endpoint: request ID,
// panic recovery, access log, and per-endpoint latency/status counters.
func (h *Handler) wrap(name string, fn http.HandlerFunc) http.Handler {
	m := &endpointMetrics{}
	h.metrics[name] = m
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("v1-%06d", h.reqID.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler {
					// The stdlib's deliberate silent-abort mechanism:
					// re-panic so net/http suppresses it as intended.
					panic(p)
				}
				h.errorf("%s %s id=%s panic: %v\n%s", r.Method, r.URL.Path, id, p, debug.Stack())
				if !rec.written {
					writeEnvelope(rec, CodeInternal, "internal error")
				}
			}
			elapsed := time.Since(start)
			m.requests.Add(1)
			m.totalMicros.Add(elapsed.Microseconds())
			if class := rec.status / 100; class >= 1 && class <= 5 {
				m.byClass[class].Add(1)
				if class >= 4 {
					m.errors.Add(1)
				}
			}
			h.logf("%s %s id=%s status=%d elapsed=%s", r.Method, r.URL.Path, id, rec.status, elapsed.Round(time.Microsecond))
		}()
		fn(rec, r)
	})
}

func (h *Handler) logf(format string, args ...any) {
	if h.cfg.Logger != nil {
		h.cfg.Logger.Printf(format, args...)
	}
}

// errorf reports a crash. Unlike the access log it is never silent: with
// no ErrorLog configured it falls back to the process logger, so turning
// the access log off cannot hide recurring panics.
func (h *Handler) errorf(format string, args ...any) {
	l := h.cfg.ErrorLog
	if l == nil {
		l = log.Default()
	}
	l.Printf(format, args...)
}
