package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro"
)

// ErrorCode is the machine-readable failure classification every v1 error
// response carries. Clients dispatch on the code; the message is for
// humans and carries no contract.
type ErrorCode string

// The complete v1 error vocabulary. The mining codes are derived from
// the engine's sentinel errors (ErrNoItems, ErrNoRatings, ErrNoGroup)
// and the request lifecycle (context deadline / cancellation); anything
// else out of a pipeline is an internal mining failure. The two routing
// codes cover requests that never reached a pipeline, so a client can
// tell "fix your parameters" from "this endpoint/method does not exist".
const (
	CodeBadRequest ErrorCode = "bad_request"
	CodeNoItems    ErrorCode = "no_items"
	CodeNoRatings  ErrorCode = "no_ratings"
	CodeNoGroup    ErrorCode = "no_group"
	CodeTimeout    ErrorCode = "timeout"
	CodeCanceled   ErrorCode = "canceled"
	CodeInternal   ErrorCode = "internal"
	// Routing failures.
	CodeNotFound         ErrorCode = "not_found"
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	// Async job surface: admission control rejected the submit (the
	// response carries Retry-After), or the job ID does not exist —
	// never submitted, or its result retention expired.
	CodeQueueFull   ErrorCode = "queue_full"
	CodeJobNotFound ErrorCode = "job_not_found"
	// Multi-dataset serving: the request named a dataset that is not
	// mounted on this server.
	CodeDatasetNotFound ErrorCode = "dataset_not_found"
	// Distributed serving: the coordinator could not reach enough workers
	// to answer at all (partial failures degrade instead — see the
	// `degraded` response field). 503; clients should retry.
	CodeUnavailable ErrorCode = "unavailable"
)

// ErrorBody is the inner error object.
type ErrorBody struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// ErrorEnvelope is the single structured error shape every v1 endpoint
// answers failures with: {"error": {"code": ..., "message": ...}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// CodeForError classifies a pipeline failure. Decode failures are the
// caller's to classify as CodeBadRequest before the pipeline runs.
func CodeForError(err error) ErrorCode {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, maprat.ErrNoItems):
		return CodeNoItems
	case errors.Is(err, maprat.ErrNoRatings):
		return CodeNoRatings
	case errors.Is(err, maprat.ErrNoGroup):
		return CodeNoGroup
	case errors.Is(err, maprat.ErrUnavailable):
		return CodeUnavailable
	// Live ingestion: a bad batch or a read pinned past the current epoch
	// is the client's to fix; an engine whose write path was never armed
	// answers 503 so clients route writes elsewhere.
	case errors.Is(err, maprat.ErrBadRating), errors.Is(err, maprat.ErrFutureEpoch):
		return CodeBadRequest
	case errors.Is(err, maprat.ErrIngestDisabled):
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

// HTTPStatus maps a code to its response status. 499 is the nginx-style
// "client closed request" status the HTML front-end already uses.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNoItems, CodeNoRatings, CodeNoGroup, CodeNotFound, CodeJobNotFound, CodeDatasetNotFound:
		return http.StatusNotFound
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeTimeout:
		return http.StatusGatewayTimeout
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeCanceled:
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// StatusForError is the one error→status mapping shared by the v1 surface
// and the HTML front-end: timeouts are the gateway's fault (504),
// disconnects get 499, and only the errors meaning "the client asked for
// something that doesn't exist" are 404s. Everything else is an internal
// mining failure and surfaces as a 500, never blamed on the client.
func StatusForError(err error) int { return CodeForError(err).HTTPStatus() }

// writeEnvelope writes a v1 error response. The envelope is tiny, so the
// encode cannot meaningfully fail after the header is out.
func writeEnvelope(w http.ResponseWriter, code ErrorCode, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code.HTTPStatus()) //maprat:allow(envelope) this IS the envelope writer: the one place a mapped status legitimately reaches the wire
	_ = json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg}})
}

// writeError classifies err and writes its envelope.
func writeError(w http.ResponseWriter, err error) {
	writeEnvelope(w, CodeForError(err), err.Error())
}

// writeEnvelopeStatus writes the envelope with an explicit status for
// the rare failure whose status is not the code's default (413 for an
// oversized body).
func writeEnvelopeStatus(w http.ResponseWriter, status int, code ErrorCode, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg}})
}

// notFound answers 404 for a path that does not exist under /api/v1/.
func notFound(w http.ResponseWriter, msg string) {
	writeEnvelope(w, CodeNotFound, msg)
}

// methodNotAllowed answers 405 with the Allow header.
func methodNotAllowed(w http.ResponseWriter, allow, msg string) {
	w.Header().Set("Allow", allow)
	writeEnvelope(w, CodeMethodNotAllowed, msg)
}

// errorBodyFor builds the inner error object for embedding in composite
// payloads (evolution points, batch results).
func errorBodyFor(err error) *ErrorBody {
	return &ErrorBody{Code: CodeForError(err), Message: err.Error()}
}
