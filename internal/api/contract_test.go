package api

import (
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// -update regenerates the golden contract files:
//
//	go test ./internal/api -run Contract -update
var update = flag.Bool("update", false, "rewrite golden contract files")

// TestV1ContractGolden pins the exact JSON every /api/v1 endpoint
// returns for a fixed dataset, seed and knob set. The non-deterministic
// fields (elapsed_ms, from_cache) are scrubbed; everything else —
// field names, group ordering, GeoJSON geometry, error gaps in the
// evolution sweep — is part of the versioned contract and may only
// change with a new API version (or a deliberate re-baseline via
// -update).
func TestV1ContractGolden(t *testing.T) {
	toyStory := url.QueryEscape(`movie:"Toy Story"`)
	caKey := url.QueryEscape("state=CA")
	cases := []struct {
		name   string
		golden string
		path   string   // GET path, when set
		post   []string // POST path + body, when set
	}{
		{
			name:   "explain",
			golden: "explain.golden.json",
			path:   "/api/v1/explain?q=" + toyStory + "&k=2",
		},
		{
			name:   "explain framework mode",
			golden: "explain_geo_off.golden.json",
			path:   "/api/v1/explain?q=" + toyStory + "&geo=off&coverage=0.10&k=2",
		},
		{
			name:   "group",
			golden: "group.golden.json",
			path:   "/api/v1/group?q=" + toyStory + "&key=" + caKey + "&buckets=4&limit=3",
		},
		{
			name:   "refine",
			golden: "refine.golden.json",
			path:   "/api/v1/refine?q=" + toyStory + "&key=" + caKey + "&limit=5",
		},
		{
			name:   "drill",
			golden: "drill.golden.json",
			path:   "/api/v1/drill?q=" + toyStory + "&key=" + caKey + "&k=2",
		},
		{
			name:   "evolution",
			golden: "evolution.golden.json",
			path:   "/api/v1/evolution?q=" + toyStory + "&from=1999&to=2001&k=2&tasks=sm",
		},
		{
			name:   "browse",
			golden: "browse.golden.json",
			path:   "/api/v1/browse",
		},
		{
			name:   "batch",
			golden: "batch.golden.json",
			post: []string{"/api/v1/batch", `{"requests":[
				{"q":"movie:\"Toy Story\"","k":2},
				{"q":"movie:\"Zyzzyva The Unfilmed\""},
				{"q":"notafield:x"}
			]}`},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var code int
			var body string
			if c.post != nil {
				code, body = post(t, c.post[0], c.post[1])
			} else {
				code, body = get(t, c.path)
			}
			if code != 200 {
				t.Fatalf("status %d: %s", code, body)
			}
			got := scrub(t, body)
			goldenPath := filepath.Join("testdata", c.golden)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("contract drift for %s (re-baseline deliberately with -update):\n--- got\n%s\n--- want\n%s",
					c.name, got, want)
			}
		})
	}
}

// TestV1ContractErrorCodes drives every machine-readable error code
// through the live handlers and pins the envelope shape plus the
// code→status mapping.
func TestV1ContractErrorCodes(t *testing.T) {
	toyStory := url.QueryEscape(`movie:"Toy Story"`)
	cases := []struct {
		name       string
		path       string
		wantStatus int
		wantCode   ErrorCode
	}{
		{"missing q", "/api/v1/explain", 400, CodeBadRequest},
		{"bad knob", "/api/v1/explain?q=" + toyStory + "&k=99", 400, CodeBadRequest},
		{"unknown endpoint", "/api/v1/nope", 404, CodeNotFound},
		{"no items", "/api/v1/explain?q=" + url.QueryEscape(`movie:"Zyzzyva The Unfilmed"`), 404, CodeNoItems},
		{"no ratings", "/api/v1/explain?q=" + toyStory + "&from=1901&to=1902", 404, CodeNoRatings},
		{"no group", "/api/v1/group?q=" + toyStory + "&key=" + url.QueryEscape("state=WY,occupation=farmer"), 404, CodeNoGroup},
		{"missing key", "/api/v1/group?q=" + toyStory, 400, CodeBadRequest},
		{"refine no group", "/api/v1/refine?q=" + toyStory + "&key=" + url.QueryEscape("state=WY,occupation=farmer"), 404, CodeNoGroup},
		{"drill bad task", "/api/v1/drill?q=" + toyStory + "&key=" + url.QueryEscape("state=CA") + "&task=zz", 400, CodeBadRequest},
		{"batch via GET", "/api/v1/batch", 405, CodeMethodNotAllowed},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, body := get(t, c.path)
			if code != c.wantStatus {
				t.Fatalf("status %d, want %d: %s", code, c.wantStatus, body)
			}
			if got := envelopeCode(t, body); got != c.wantCode {
				t.Errorf("code %q, want %q", got, c.wantCode)
			}
		})
	}

	// An unsupported method answers 405 and names the allowed ones, on
	// decoding endpoints and on /browse alike.
	for _, path := range []string{"/api/v1/explain?q=" + toyStory, "/api/v1/browse"} {
		req, _ := http.NewRequest(http.MethodDelete, testServer(t).URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("DELETE %s status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") || !strings.Contains(allow, "POST") {
			t.Errorf("DELETE %s Allow = %q, want GET and POST", path, allow)
		}
	}

	// An oversized POST body answers 413, not a misleading bad-JSON 400.
	big := `{"q":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	code, body := post(t, "/api/v1/explain", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", code)
	}
	if got := envelopeCode(t, body); got != CodeBadRequest {
		t.Errorf("oversized body code %q", got)
	}
}

// TestV1ContractTimeout pins the timeout envelope: a deadline shorter
// than any mine answers 504 with code "timeout".
func TestV1ContractTimeout(t *testing.T) {
	h := New(testEngine(t), Config{RequestTimeout: time.Nanosecond})
	r := httptest.NewRequest("GET", "/api/v1/explain?q="+url.QueryEscape(`movie:"Heat"`)+"&seed=999", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != 504 {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	if got := envelopeCode(t, w.Body.String()); got != CodeTimeout {
		t.Errorf("code %q, want %q", got, CodeTimeout)
	}
}

// TestV1ContractCanceled pins the disconnect envelope: a client that
// goes away mid-mine answers 499 with code "canceled".
func TestV1ContractCanceled(t *testing.T) {
	h := New(testEngine(t), Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest("GET", "/api/v1/explain?q="+url.QueryEscape(`movie:"Heat"`)+"&seed=998", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != 499 {
		t.Fatalf("status %d, want 499: %s", w.Code, w.Body.String())
	}
	if got := envelopeCode(t, w.Body.String()); got != CodeCanceled {
		t.Errorf("code %q, want %q", got, CodeCanceled)
	}
}

// TestV1ContractGeoJSON sanity-checks the client-renderable choropleth
// layer: FeatureCollection of state Polygons with precomputed fills.
func TestV1ContractGeoJSON(t *testing.T) {
	code, body := get(t, "/api/v1/browse")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var resp struct {
		GeoJSON struct {
			Type     string `json:"type"`
			Features []struct {
				Type     string `json:"type"`
				Geometry struct {
					Type        string         `json:"type"`
					Coordinates [][][2]float64 `json:"coordinates"`
				} `json:"geometry"`
				Properties struct {
					State string  `json:"state"`
					Name  string  `json:"name"`
					Mean  float64 `json:"mean"`
					Fill  string  `json:"fill"`
				} `json:"properties"`
			} `json:"features"`
		} `json:"geojson"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("json: %v", err)
	}
	if resp.GeoJSON.Type != "FeatureCollection" || len(resp.GeoJSON.Features) < 40 {
		t.Fatalf("geojson = %s / %d features", resp.GeoJSON.Type, len(resp.GeoJSON.Features))
	}
	for _, f := range resp.GeoJSON.Features {
		if f.Type != "Feature" || f.Geometry.Type != "Polygon" {
			t.Fatalf("feature shape: %+v", f)
		}
		ring := f.Geometry.Coordinates[0]
		if len(ring) != 5 || ring[0] != ring[4] {
			t.Errorf("%s: ring not closed: %v", f.Properties.State, ring)
		}
		if !strings.HasPrefix(f.Properties.Fill, "#") || f.Properties.Name == "" {
			t.Errorf("%s: incomplete properties: %+v", f.Properties.State, f.Properties)
		}
	}
	// The explain payload carries the same layer per task.
	code, body = get(t, "/api/v1/explain?q="+url.QueryEscape(`movie:"Toy Story"`))
	if code != 200 {
		t.Fatalf("explain status %d", code)
	}
	var ex struct {
		Tasks []struct {
			GeoJSON *GeoJSON `json:"geojson"`
			Groups  []Group  `json:"groups"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal([]byte(body), &ex); err != nil {
		t.Fatal(err)
	}
	for i, task := range ex.Tasks {
		if task.GeoJSON == nil || len(task.GeoJSON.Features) == 0 {
			t.Errorf("task %d: missing geojson layer", i)
		}
	}
}
